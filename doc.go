// Package repro is a from-scratch Go reproduction of "Beyond the
// Socket: NUMA-Aware GPUs" (Milic et al., MICRO-50, 2017): a
// cycle-level multi-socket GPU simulator, the paper's locality-
// optimized runtime, its two adaptive NUMA mechanisms (dynamic
// asymmetric inter-GPU links and NUMA-aware L1/L2 cache partitioning),
// the 41-workload evaluation suite, and a harness that regenerates
// every table and figure of the paper's evaluation.
//
// The benchmarks in this package (bench_test.go) regenerate the paper's
// experiments at a reduced scale; the cmd/numagpu binary runs them at
// full scale, and the cmd/numagpud daemon serves them over HTTP/JSON
// with a persistent result cache. See README.md for usage,
// ARCHITECTURE.md for the layering and determinism contract, and
// docs/EXPERIMENTS.md for what each experiment reproduces.
package repro
