// Benchmarks regenerating every table and figure of Milic et al.
// (MICRO 2017) at a reduced scale. One benchmark iteration executes the
// complete experiment; the headline quantities of each figure are
// attached as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints, next to the usual ns/op, the reproduced speedups and
// efficiencies to compare against the paper (see README.md).
// Simulation runs are memoized across benchmarks within one process,
// mirroring how the figures share baselines in the paper, and each
// experiment's sweep executes on the harness worker pool (one
// goroutine per core; override with -exp.j).
package repro

import (
	"flag"
	"runtime"
	"sync"
	"testing"

	"repro/internal/exp"
)

var benchParallelism = flag.Int("exp.j", runtime.GOMAXPROCS(0),
	"simulations the benchmark harness runs in parallel")

var (
	runnerOnce sync.Once
	runner     *exp.Runner
)

// benchRunner returns the shared reduced-scale harness.
func benchRunner() *exp.Runner {
	runnerOnce.Do(func() {
		runner = exp.NewRunner(exp.Options{Divisor: 8, IterScale: 0.25, Parallelism: *benchParallelism})
	})
	return runner
}

// report attaches every summary value of an experiment as a benchmark
// metric.
func report(b *testing.B, res exp.Result) {
	b.Helper()
	for k, v := range res.Summary {
		b.ReportMetric(v, k)
	}
	if res.Table.Rows() == 0 {
		b.Fatal("experiment produced no rows")
	}
}

func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Table1(benchRunner()))
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Table2(benchRunner()))
	}
}

// BenchmarkFigure2Occupancy: percentage of workloads able to fill 1-8×
// larger GPUs (paper: ≈100/90/85/80%).
func BenchmarkFigure2Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Figure2(benchRunner()))
	}
}

// BenchmarkFigure3Locality: traditional vs locality-optimized runtime
// on 4 sockets vs the 4× monolithic GPU.
func BenchmarkFigure3Locality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Figure3(benchRunner()))
	}
}

// BenchmarkFigure5LinkProfile: per-GPU link utilization phases of
// HPC-HPGMG-UVM (the phenomenon motivating Section 4).
func BenchmarkFigure5LinkProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Figure5(benchRunner()))
	}
}

// BenchmarkFigure6LinkAdaptivity: dynamic lane balancing vs sample
// time, with the 2× bandwidth upper bound (paper: +14% avg @5K).
func BenchmarkFigure6LinkAdaptivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Figure6(benchRunner()))
	}
}

// BenchmarkFigure8CachePartitioning: the four L2 organizations of
// Figure 7 (paper: static +54%, NUMA-aware +76% over memory-side).
func BenchmarkFigure8CachePartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Figure8(benchRunner()))
	}
}

// BenchmarkFigure9CoherenceOverhead: cost of extending SW coherence
// into the L2 (paper: ≈10% average).
func BenchmarkFigure9CoherenceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Figure9(benchRunner()))
	}
}

// BenchmarkFigure10Combined: both mechanisms together vs each alone
// (paper: 2.1× over single GPU, +80% over the SW baseline).
func BenchmarkFigure10Combined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Figure10(benchRunner()))
	}
}

// BenchmarkFigure11Scalability: the headline result — 2/4/8-socket
// NUMA-aware GPUs vs 2/4/8× monolithic GPUs over all 41 workloads
// (paper: 1.5×/2.3×/3.2× at 89/84/76% efficiency).
func BenchmarkFigure11Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Figure11(benchRunner()))
	}
}

// BenchmarkSwitchTimeSensitivity: lane turn cost of 10/100/500 cycles
// (paper §4.1: <2% loss even at 500).
func BenchmarkSwitchTimeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.SwitchTimeSensitivity(benchRunner()))
	}
}

// BenchmarkWritePolicy: write-back vs write-through coherent L2
// (paper §5.2: WB wins by ≈9%).
func BenchmarkWritePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.WritePolicy(benchRunner()))
	}
}

// BenchmarkPowerModel: interconnect power at 10pJ/b (paper §6:
// ≈30W baseline → ≈14W NUMA-aware on average).
func BenchmarkPowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Power(benchRunner()))
	}
}

// BenchmarkLaneGranularity: ablation — 4 coarse lanes vs 8 fine lanes
// at equal total bandwidth under the dynamic balancer.
func BenchmarkLaneGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.LaneGranularity(benchRunner()))
	}
}

// BenchmarkMultiTenancy: Section 6 discussion — how much of the whole
// NUMA GPU a 1/4 partition already delivers for small grids.
func BenchmarkMultiTenancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.MultiTenancy(benchRunner()))
	}
}
