// Command numagpu regenerates the tables and figures of "Beyond the
// Socket: NUMA-Aware GPUs" (Milic et al., MICRO 2017) from the Go
// reproduction in this repository.
//
// Usage:
//
//	numagpu [flags] <experiment>...
//
// Experiments: table1 table2 fig2 fig3 fig5 fig6 fig8 fig9 fig10 fig11
// switchtime writepolicy power all
//
// Flags:
//
//	-iterscale f   scale workload iteration counts (default 1.0)
//	-divisor n     architecture scale divisor vs the paper machine (default 8)
//	-quick         shorthand for -iterscale 0.25
//	-j n           simulations to run in parallel (default GOMAXPROCS)
//	-csv dir       also write each experiment's table as CSV into dir
//	-v             per-run progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/exp"
)

var experiments = []struct {
	name string
	desc string
	run  func(*exp.Runner) exp.Result
}{
	{"table1", "simulation parameters", exp.Table1},
	{"table2", "workload inventory", exp.Table2},
	{"fig2", "workloads filling larger GPUs", exp.Figure2},
	{"fig3", "SW locality vs traditional policies", exp.Figure3},
	{"fig5", "link utilization profile (HPGMG-UVM)", exp.Figure5},
	{"fig6", "dynamic link adaptivity vs sample time", exp.Figure6},
	{"fig8", "cache organizations", exp.Figure8},
	{"fig9", "SW coherence overhead in L2", exp.Figure9},
	{"fig10", "combined improvement", exp.Figure10},
	{"fig11", "2/4/8-socket scalability", exp.Figure11},
	{"switchtime", "lane turn time sensitivity (Sec 4.1)", exp.SwitchTimeSensitivity},
	{"writepolicy", "write-back vs write-through L2 (Sec 5.2)", exp.WritePolicy},
	{"power", "interconnect power (Sec 6)", exp.Power},
	{"lanegran", "lane granularity ablation", exp.LaneGranularity},
	{"tenancy", "small workloads on partitioned GPUs (Sec 6)", exp.MultiTenancy},
}

func main() {
	iterScale := flag.Float64("iterscale", 1.0, "workload iteration scale")
	divisor := flag.Int("divisor", 8, "architecture scale divisor")
	quick := flag.Bool("quick", false, "quick mode (iterscale 0.25)")
	parallel := flag.Int("j", runtime.GOMAXPROCS(0), "simulations to run in parallel")
	csvDir := flag.String("csv", "", "also write each experiment's table as CSV into this directory")
	verbose := flag.Bool("v", false, "per-run progress on stderr")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	opts := exp.Options{Divisor: *divisor, IterScale: *iterScale, Parallelism: *parallel}
	if *quick {
		opts.IterScale = 0.25
	}
	if *verbose {
		opts.Progress = os.Stderr
	}
	runner := exp.NewRunner(opts)

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = nil
		for _, e := range experiments {
			names = append(names, e.name)
		}
	}
	for _, name := range names {
		found := false
		for _, e := range experiments {
			if e.name != name {
				continue
			}
			found = true
			start := time.Now()
			res := e.run(runner)
			fmt.Println(res.Table.String())
			if *csvDir != "" {
				path := filepath.Join(*csvDir, e.name+".csv")
				if err := os.WriteFile(path, []byte(res.Table.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
			fmt.Printf("summary:")
			for _, k := range sortedKeys(res.Summary) {
				fmt.Printf(" %s=%.3f", k, res.Summary[k])
			}
			fmt.Printf("\nelapsed: %s\n\n", time.Since(start).Round(time.Millisecond))
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: numagpu [flags] <experiment>...\n\nexperiments:\n")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(os.Stderr, "  %-12s run everything\n\nflags:\n", "all")
	flag.PrintDefaults()
}
