// Command numagpu regenerates the tables and figures of "Beyond the
// Socket: NUMA-Aware GPUs" (Milic et al., MICRO 2017) from the Go
// reproduction in this repository.
//
// Usage:
//
//	numagpu [flags] <experiment>...
//
// Experiments: table1 table2 fig2 fig3 fig5 fig6 fig8 fig9 fig10 fig11
// switchtime writepolicy power lanegran tenancy all
//
// Flags:
//
//	-iterscale f   scale workload iteration counts (default 1.0)
//	-divisor n     architecture scale divisor vs the paper machine (default 8)
//	-quick         shorthand for -iterscale 0.25
//	-j n           simulations to run in parallel (default GOMAXPROCS)
//	-topology f    load an explicit link-graph topology from a JSON file
//	               (docs/TOPOLOGY.md) and apply it to every configuration
//	               whose socket count matches; nil keeps the synthesized
//	               symmetric crossbar
//	-validate      with -topology: parse + validate the file, print its
//	               canonical encoding, and exit (nonzero on schema errors)
//	-dump-topology p  print the effective topology of preset p (base,
//	               traditional, numa-aware or monolithic) as JSON and exit
//	-remote url    execute the simulations on a numagpud sweep-fabric
//	               coordinator instead of in-process; tables are still
//	               rendered locally, byte-identical to a local run.
//	               Raise -j to the cluster's total worker window to
//	               keep a multi-worker fabric busy
//	-follow        render one line per completed run on stderr as
//	               results land (workload, how it resolved — simulated,
//	               cached, remote, coalesced — and cycles). Stdout is
//	               untouched: final tables stay byte-identical
//	-obs-dir dir   enable the observability layer: write each run's
//	               time series (series.csv + series.json) into
//	               dir/<workload>-<key hash>/. Sampling is read-only
//	               and results stay byte-identical; observed runs
//	               always simulate locally (cache reads and -remote
//	               are bypassed for them). See docs/OBSERVABILITY.md
//	-trace         with -obs-dir: also write a Chrome/Perfetto
//	               trace.json per run (kernel waves, cross-socket
//	               transfers, drain phases)
//	-csv dir       also write each experiment's table as CSV into dir
//	-json          print each experiment as a JSON object instead of text
//	-golden        print each experiment in the golden-master fixture
//	               format (internal/exp/testdata/golden), for byte
//	               comparison against the committed fixtures
//	-cpuprofile f  write a CPU profile of the run to f
//	-memprofile f  write a heap profile (after GC) to f on exit
//	-v             per-run progress on stderr
//
// See docs/EXPERIMENTS.md for what each experiment reproduces and the
// meaning of its summary keys. The long-running numagpud daemon
// (cmd/numagpud) serves the same experiments over HTTP with a
// persistent result cache and coordinates the distributed sweep fabric
// behind -remote.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected for tests: it parses args,
// executes the requested experiments, and returns the process exit code
// (0 success, 1 runtime failure, 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("numagpu", flag.ContinueOnError)
	fs.SetOutput(stderr)
	iterScale := fs.Float64("iterscale", 1.0, "workload iteration scale")
	divisor := fs.Int("divisor", 8, "architecture scale divisor")
	quick := fs.Bool("quick", false, "quick mode (iterscale 0.25)")
	parallel := fs.Int("j", runtime.GOMAXPROCS(0), "simulations to run in parallel")
	shards := fs.Int("shards", 1, "engine shards per simulation (results are byte-identical to -shards 1)")
	remote := fs.String("remote", "", "numagpud coordinator URL: execute simulations on the sweep fabric")
	follow := fs.Bool("follow", false, "render per-run completions on stderr as results land")
	topoPath := fs.String("topology", "", "topology JSON file replacing the synthesized crossbar (docs/TOPOLOGY.md)")
	validate := fs.Bool("validate", false, "with -topology: validate the file, print its canonical encoding, and exit")
	dumpPreset := fs.String("dump-topology", "", "print the effective topology of this preset (base|traditional|numa-aware|monolithic) and exit")
	obsDir := fs.String("obs-dir", "", "write per-run observability time series into this directory (enables sampling)")
	traceOut := fs.Bool("trace", false, "with -obs-dir: also write a Chrome/Perfetto trace.json per run")
	csvDir := fs.String("csv", "", "also write each experiment's table as CSV into this directory")
	jsonOut := fs.Bool("json", false, "print each experiment as a JSON object instead of text")
	golden := fs.Bool("golden", false, "print each experiment in the golden-master fixture format")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
	verbose := fs.Bool("v", false, "per-run progress on stderr")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/--help is a success, matching the old ExitOnError behaviour
		}
		return 2
	}

	var topology *topo.Topology
	if *topoPath != "" {
		data, err := os.ReadFile(*topoPath)
		if err != nil {
			fmt.Fprintf(stderr, "topology: %v\n", err)
			return 1
		}
		topology, err = topo.Parse(data)
		if err != nil {
			fmt.Fprintf(stderr, "topology: %s: %v\n", *topoPath, err)
			return 1
		}
	}
	if *validate {
		if topology == nil {
			fmt.Fprintf(stderr, "-validate requires -topology\n")
			return 2
		}
		fmt.Fprintf(stdout, "%s: valid (%d sockets, %d switches, %d links)\ncanonical: %s\n",
			*topoPath, len(topology.Sockets), topology.Switches, len(topology.Links), topology.Canonical())
		return 0
	}
	if *dumpPreset != "" {
		return dumpTopology(*dumpPreset, *divisor, topology, stdout, stderr)
	}

	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *jsonOut && *golden {
		fmt.Fprintf(stderr, "-json and -golden are mutually exclusive\n")
		return 2
	}
	if *traceOut && *obsDir == "" {
		fmt.Fprintf(stderr, "-trace requires -obs-dir\n")
		return 2
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
		}()
	}
	opts := exp.Options{Divisor: *divisor, IterScale: *iterScale, Parallelism: *parallel, Topology: topology, EngineShards: *shards}
	if *quick {
		opts.IterScale = 0.25
	}
	if *verbose {
		opts.Progress = stderr
	}
	if *remote != "" {
		opts.Backend = service.NewFabricClient(*remote)
	}
	if *follow {
		// Per-run completions stream to stderr; stdout (tables, JSON,
		// golden output) stays byte-identical with or without the flag.
		opts.OnResult = func(key string, res core.Result, src exp.RunSource) {
			fmt.Fprintf(stderr, "done %-28s %-10s %12d cycles\n", res.Name, src, res.Cycles)
		}
	}
	var obsMu sync.Mutex
	var obsErr error
	if *obsDir != "" {
		if err := os.MkdirAll(*obsDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "obs-dir: %v\n", err)
			return 1
		}
		opts.Obs = arch.ObsSpec{Series: true, Trace: *traceOut}
		dir := *obsDir
		opts.ObsSink = func(key string, spec workload.Spec, col *obs.Collector) {
			if err := writeObs(dir, key, spec.Name, col); err != nil {
				obsMu.Lock()
				if obsErr == nil {
					obsErr = err
				}
				obsMu.Unlock()
			}
		}
	}
	runner := exp.NewRunner(opts)

	names := fs.Args()
	if len(names) == 1 && names[0] == "all" {
		names = nil
		for _, e := range exp.Experiments() {
			names = append(names, e.Name)
		}
	}
	for _, name := range names {
		e, ok := exp.ExperimentByName(name)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q\n", name)
			fs.Usage()
			return 2
		}
		start := time.Now()
		res, err := runExperiment(e, runner)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", e.Name, err)
			return 1
		}
		if *golden {
			stdout.Write(exp.RenderGolden(res))
		} else if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(e.Named(res)); err != nil {
				fmt.Fprintf(stderr, "json: %v\n", err)
				return 1
			}
		} else {
			fmt.Fprintln(stdout, res.Table.String())
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, e.Name+".csv")
			if err := os.WriteFile(path, []byte(res.Table.CSV()), 0o644); err != nil {
				fmt.Fprintf(stderr, "csv: %v\n", err)
				return 1
			}
		}
		if !*jsonOut && !*golden {
			fmt.Fprintf(stdout, "summary:")
			for _, k := range sortedKeys(res.Summary) {
				fmt.Fprintf(stdout, " %s=%.3f", k, res.Summary[k])
			}
			fmt.Fprintf(stdout, "\nelapsed: %s\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if obsErr != nil {
		fmt.Fprintf(stderr, "obs: %v\n", obsErr)
		return 1
	}
	if *obsDir != "" {
		fmt.Fprintf(stderr, "observability output in %s\n", *obsDir)
	}
	return 0
}

// writeObs flushes one observed run's collector into its own
// subdirectory, named by workload plus a short hash of the run key so
// the same workload under different configurations lands in different
// directories and reruns land in the same ones.
func writeObs(dir, key, specName string, col *obs.Collector) error {
	sum := sha256.Sum256([]byte(key))
	sub := filepath.Join(dir, fmt.Sprintf("%s-%x", specName, sum[:4]))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	write := func(name string, flush func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(sub, name))
		if err != nil {
			return err
		}
		if err := flush(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("series.csv", col.WriteSeriesCSV); err != nil {
		return err
	}
	if err := write("series.json", col.WriteSeriesJSON); err != nil {
		return err
	}
	if col.Trace() != nil {
		if err := write("trace.json", col.WriteTrace); err != nil {
			return err
		}
	}
	return nil
}

// dumpTopology prints the effective topology of one configuration
// preset — the explicit one when -topology matches its socket count,
// the synthesized symmetric crossbar otherwise — as indented JSON plus
// its canonical encoding, for debugging what a run will actually route
// over.
func dumpTopology(preset string, divisor int, topology *topo.Topology, stdout, stderr io.Writer) int {
	r := exp.NewRunner(exp.Options{Divisor: divisor, Topology: topology})
	var cfg arch.Config
	switch preset {
	case "base":
		cfg = r.Base(4)
	case "traditional":
		cfg = r.Traditional(4)
	case "numa-aware":
		cfg = r.NUMAAware(4)
	case "monolithic":
		cfg = r.Monolithic(4)
	default:
		fmt.Fprintf(stderr, "unknown preset %q (want base, traditional, numa-aware or monolithic)\n", preset)
		return 2
	}
	if cfg.Sockets < 2 {
		fmt.Fprintf(stdout, "%s: single-socket configuration, no inter-socket fabric\n", preset)
		return 0
	}
	top := cfg.Topology
	if top == nil {
		top = topo.Crossbar(cfg.Sockets, cfg.LanesPerDir, cfg.LaneBandwidth, cfg.LinkLatency)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(top); err != nil {
		fmt.Fprintf(stderr, "dump-topology: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "canonical: %s\n", top.Canonical())
	return 0
}

// runExperiment converts a panicking run — an invalid configuration
// reaching core.MustSystem, or a failed remote backend — into an error
// and a clean nonzero exit instead of a crash with a stack trace.
func runExperiment(e exp.Experiment, runner *exp.Runner) (res exp.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment failed: %v", p)
		}
	}()
	return e.Run(runner), nil
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func usage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "usage: numagpu [flags] <experiment>...\n\nexperiments:\n")
	for _, e := range exp.Experiments() {
		fmt.Fprintf(w, "  %-12s %s\n", e.Name, e.Desc)
	}
	fmt.Fprintf(w, "  %-12s run everything\n\nflags:\n", "all")
	fs.PrintDefaults()
}
