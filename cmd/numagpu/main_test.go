package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range exp.Experiments() {
		if e.Name == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment name %q", e.Name)
		}
		if e.Name == "all" {
			t.Fatal("'all' is reserved")
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"table1", "table2", "fig2", "fig3", "fig5", "fig6",
		"fig8", "fig9", "fig10", "fig11", "switchtime", "writepolicy", "power",
		"lanegran", "tenancy"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 2, "a": 1, "c": 3}
	keys := sortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("sortedKeys = %v", keys)
	}
}

// The run() tests below only use experiments that need no simulation
// (table1, table2, fig2 are pure config/metadata), so they are fast
// even at full default scale.

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunNoArgsUsage(t *testing.T) {
	code, _, stderr := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage: numagpu") || !strings.Contains(stderr, "lanegran") {
		t.Fatalf("usage must list every experiment:\n%s", stderr)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit %d, want 0 (scripts smoke-test with it)", code)
	}
	if !strings.Contains(stderr, "usage: numagpu") {
		t.Fatalf("-h must print usage:\n%s", stderr)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	code, _, stderr := runCLI(t, "figNaN")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown experiment "figNaN"`) {
		t.Fatalf("stderr missing unknown-experiment diagnostic:\n%s", stderr)
	}
}

func TestRunBadFlag(t *testing.T) {
	code, _, stderr := runCLI(t, "-j", "not-a-number", "fig2")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "invalid value") {
		t.Fatalf("stderr missing flag parse error:\n%s", stderr)
	}
}

func TestRunTextOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-j", "2", "fig2")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(stdout, "Figure 2") || !strings.Contains(stdout, "summary:") {
		t.Fatalf("text output missing table or summary:\n%s", stdout)
	}
}

func TestRunJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "fig2")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var payload struct {
		Experiment string `json:"experiment"`
		Table      struct {
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"table"`
		Summary map[string]float64 `json:"summary"`
	}
	if err := json.Unmarshal([]byte(stdout), &payload); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
	}
	if payload.Experiment != "fig2" || len(payload.Table.Columns) != 4 || len(payload.Table.Rows) != 4 {
		t.Fatalf("unexpected JSON payload: %+v", payload)
	}
	if payload.Summary["fill_1x_pct"] != 100 {
		t.Fatalf("summary lost in JSON: %v", payload.Summary)
	}
	if strings.Contains(stdout, "summary:") || strings.Contains(stdout, "elapsed:") {
		t.Fatalf("-json must suppress the text epilogue:\n%s", stdout)
	}
}

// TestRunFollowOutput pins the -follow contract: stderr gains one
// "done <workload> <source> <cycles>" line per unique completed run,
// and stdout stays byte-identical to a run without the flag.
func TestRunFollowOutput(t *testing.T) {
	args := []string{"-iterscale", "0.01", "-divisor", "16", "-j", "1", "-golden", "fig3"}
	code, plain, _ := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("baseline exit %d, want 0", code)
	}
	code, followed, stderr := runCLI(t, append([]string{"-follow"}, args...)...)
	if code != 0 {
		t.Fatalf("-follow exit %d, want 0", code)
	}
	if followed != plain {
		t.Fatalf("-follow changed stdout:\n--- without ---\n%s\n--- with ---\n%s", plain, followed)
	}
	lines := 0
	for _, line := range strings.Split(stderr, "\n") {
		if !strings.HasPrefix(line, "done ") {
			continue
		}
		lines++
		if !strings.Contains(line, "simulated") || !strings.Contains(line, "cycles") {
			t.Fatalf("malformed -follow line: %q", line)
		}
	}
	// fig3 runs the full workload set across three policy configs; every
	// unique run reports exactly once.
	if lines == 0 {
		t.Fatalf("-follow produced no per-run lines:\n%s", stderr)
	}
}

func TestRunJSONDeterministic(t *testing.T) {
	_, a, _ := runCLI(t, "-json", "table2")
	_, b, _ := runCLI(t, "-json", "table2")
	if a != b {
		t.Fatal("-json output must be byte-identical across runs")
	}
}

func TestRunGoldenOutput(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-golden", "fig2")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	// The golden format is table + "summary:" block + "-- csv --" block,
	// with no elapsed line (it must be byte-stable across runs).
	for _, want := range []string{"Figure 2", "\nsummary:\n", "-- csv --\n"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("-golden output missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "elapsed:") {
		t.Fatalf("-golden output must be time-independent:\n%s", stdout)
	}
	_, again, _ := runCLI(t, "-golden", "fig2")
	if stdout != again {
		t.Fatal("-golden output must be byte-identical across runs")
	}
}

func TestRunShardedGoldenIdentical(t *testing.T) {
	// -shards is execution policy: the golden rendering of a sharded run
	// must be byte-identical to the serial run of the same experiment.
	code, serial, stderr := runCLI(t, "-quick", "-golden", "fig2")
	if code != 0 {
		t.Fatalf("serial exit %d, want 0 (stderr: %s)", code, stderr)
	}
	code, sharded, stderr := runCLI(t, "-quick", "-shards", "4", "-golden", "fig2")
	if code != 0 {
		t.Fatalf("sharded exit %d, want 0 (stderr: %s)", code, stderr)
	}
	if serial != sharded {
		t.Fatal("-shards 4 output diverged from serial -golden output")
	}
}

func TestRunGoldenJSONExclusive(t *testing.T) {
	code, _, stderr := runCLI(t, "-golden", "-json", "fig2")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("stderr missing exclusivity diagnostic:\n%s", stderr)
	}
}

func TestRunRemoteUnreachable(t *testing.T) {
	// A dead coordinator must fail the experiment with a clean exit
	// code and diagnostic, not silently simulate locally (the user
	// asked for remote execution) and not crash with a stack trace.
	code, _, stderr := runCLI(t, "-remote", "http://127.0.0.1:1", "-iterscale", "0.01", "fig3")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "fig3:") || !strings.Contains(stderr, "fabric submit") {
		t.Fatalf("stderr missing remote failure diagnostic:\n%s", stderr)
	}
}

func TestRunTopologyValidate(t *testing.T) {
	// The shipped example topologies must validate — CI loops every
	// examples/*.json through this exact invocation.
	for _, f := range []string{"asym-pairs.json", "crossbar-4.json"} {
		path := filepath.Join("..", "..", "examples", f)
		code, stdout, stderr := runCLI(t, "-topology", path, "-validate")
		if code != 0 {
			t.Fatalf("%s: exit %d, want 0 (stderr: %s)", f, code, stderr)
		}
		if !strings.Contains(stdout, "valid") || !strings.Contains(stdout, "canonical: n4.") {
			t.Fatalf("%s: validate output missing verdict or canonical:\n%s", f, stdout)
		}
	}
}

func TestRunTopologyInvalid(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"sockets":[{},{}],"links":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-topology", bad, "-validate")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "topology:") {
		t.Fatalf("stderr missing topology diagnostic:\n%s", stderr)
	}
	code, _, _ = runCLI(t, "-topology", filepath.Join(t.TempDir(), "nope.json"), "-validate")
	if code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
}

func TestRunValidateRequiresTopology(t *testing.T) {
	code, _, stderr := runCLI(t, "-validate")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-validate requires -topology") {
		t.Fatalf("stderr missing diagnostic:\n%s", stderr)
	}
}

func TestRunDumpTopology(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-dump-topology", "base")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	// The synthesized crossbar: 4 socket links into one switch node.
	if !strings.Contains(stdout, `"switches": 1`) || !strings.Contains(stdout, "canonical: n4.x1.") {
		t.Fatalf("dump missing synthesized crossbar:\n%s", stdout)
	}
	// An explicit -topology flows through to matching presets.
	code, stdout, _ = runCLI(t, "-topology", filepath.Join("..", "..", "examples", "asym-pairs.json"), "-dump-topology", "numa-aware")
	if code != 0 || !strings.Contains(stdout, "canonical: n4.x0.") {
		t.Fatalf("dump must show the explicit topology (exit %d):\n%s", code, stdout)
	}
	// Monolithic has no inter-socket fabric.
	code, stdout, _ = runCLI(t, "-dump-topology", "monolithic")
	if code != 0 || !strings.Contains(stdout, "no inter-socket fabric") {
		t.Fatalf("monolithic dump (exit %d):\n%s", code, stdout)
	}
	code, _, stderr = runCLI(t, "-dump-topology", "nope")
	if code != 2 || !strings.Contains(stderr, "unknown preset") {
		t.Fatalf("unknown preset: exit %d, stderr:\n%s", code, stderr)
	}
}

func TestRunTraceRequiresObsDir(t *testing.T) {
	code, _, stderr := runCLI(t, "-trace", "fig2")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "-trace requires -obs-dir") {
		t.Fatalf("stderr missing diagnostic:\n%s", stderr)
	}
}

func TestRunObsOutput(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t, "-iterscale", "0.01", "-divisor", "16", "-obs-dir", dir, "-trace", "fig3")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "observability output in") {
		t.Fatalf("stderr missing obs note:\n%s", stderr)
	}
	runs, err := filepath.Glob(filepath.Join(dir, "*", "series.csv"))
	if err != nil || len(runs) == 0 {
		t.Fatalf("no series.csv written under %s (err %v)", dir, err)
	}
	sub := filepath.Dir(runs[0])
	b, err := os.ReadFile(runs[0])
	if err != nil || !strings.HasPrefix(string(b), "series,cycle,value\n") {
		t.Fatalf("series.csv header wrong (err %v): %.40q", err, string(b))
	}
	var doc struct {
		SamplePeriod int `json:"sample_period"`
		Series       []struct {
			Name    string       `json:"name"`
			Samples [][2]float64 `json:"samples"`
		} `json:"series"`
	}
	jb, err := os.ReadFile(filepath.Join(sub, "series.json"))
	if err != nil {
		t.Fatalf("series.json not written: %v", err)
	}
	if err := json.Unmarshal(jb, &doc); err != nil || doc.SamplePeriod == 0 || len(doc.Series) == 0 {
		t.Fatalf("series.json malformed (err %v): %.80q", err, string(jb))
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	tb, err := os.ReadFile(filepath.Join(sub, "trace.json"))
	if err != nil {
		t.Fatalf("trace.json not written: %v", err)
	}
	if err := json.Unmarshal(tb, &trace); err != nil || len(trace.TraceEvents) == 0 {
		t.Fatalf("trace.json malformed (err %v): %.80q", err, string(tb))
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t, "-csv", dir, "table2")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	b, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(b), "Workload,") {
		t.Fatalf("csv header wrong: %q", string(b[:40]))
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, stderr := runCLI(t, "-cpuprofile", cpu, "-memprofile", mem, "table1")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunCPUProfileBadPath(t *testing.T) {
	code, _, stderr := runCLI(t, "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir"), "table1")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "cpuprofile:") {
		t.Fatalf("stderr missing cpuprofile error:\n%s", stderr)
	}
}

func TestRunCSVBadDir(t *testing.T) {
	code, _, stderr := runCLI(t, "-csv", filepath.Join(t.TempDir(), "missing", "nested"), "table1")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "csv:") {
		t.Fatalf("stderr missing csv error:\n%s", stderr)
	}
}
