package main

import "testing"

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if seen[e.name] {
			t.Fatalf("duplicate experiment name %q", e.name)
		}
		if e.name == "all" {
			t.Fatal("'all' is reserved")
		}
		seen[e.name] = true
	}
	for _, want := range []string{"table1", "table2", "fig2", "fig3", "fig5", "fig6",
		"fig8", "fig9", "fig10", "fig11", "switchtime", "writepolicy", "power"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 2, "a": 1, "c": 3}
	keys := sortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("sortedKeys = %v", keys)
	}
}
