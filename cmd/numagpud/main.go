// Command numagpud is the long-running simulation service: it serves
// the paper's experiments and arbitrary (config, workload) sweeps over
// an HTTP/JSON API, shares one concurrent singleflight harness across
// all requests, and persists every simulation result in a
// content-addressed disk cache so warm results survive restarts.
//
// Usage:
//
//	numagpud [flags]
//
// Flags:
//
//	-addr host:port   listen address (default 127.0.0.1:8377)
//	-cache dir        persistent result cache directory (default
//	                  "numagpud-cache" under the current directory);
//	                  empty disables persistence
//	-iterscale f      scale workload iteration counts (default 1.0)
//	-divisor n        architecture scale divisor vs the paper machine (default 8)
//	-maxctas n        cap grid sizes (0 = uncapped)
//	-quick            shorthand for -iterscale 0.25
//	-j n              simulations to run in parallel per sweep (default GOMAXPROCS)
//	-workers n        concurrent jobs (default 2)
//	-v                mirror per-run progress to stderr
//
// A quick session:
//
//	numagpud -cache /var/cache/numagpud &
//	curl -X POST localhost:8377/v1/experiments/fig11
//	curl localhost:8377/v1/jobs/job-1
//	curl localhost:8377/v1/jobs/job-1/result
//	curl localhost:8377/metrics
//
// See the internal/service package documentation for the full API and
// README.md ("Running the service") for a walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/exp"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	cacheDir := flag.String("cache", "numagpud-cache", "persistent result cache directory (empty disables)")
	iterScale := flag.Float64("iterscale", 1.0, "workload iteration scale")
	divisor := flag.Int("divisor", 8, "architecture scale divisor")
	maxCTAs := flag.Int("maxctas", 0, "cap grid sizes (0 = uncapped)")
	quick := flag.Bool("quick", false, "quick mode (iterscale 0.25)")
	parallel := flag.Int("j", runtime.GOMAXPROCS(0), "simulations to run in parallel per sweep")
	workers := flag.Int("workers", 2, "jobs executing concurrently")
	verbose := flag.Bool("v", false, "mirror per-run progress to stderr")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: numagpud [flags]\n\nflags:\n")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := exp.Options{
		Divisor:     *divisor,
		IterScale:   *iterScale,
		MaxCTAs:     *maxCTAs,
		Parallelism: *parallel,
	}
	if *quick {
		opts.IterScale = 0.25
	}
	cfg := service.Config{Options: opts, CacheDir: *cacheDir, Workers: *workers}
	if *verbose {
		cfg.Mirror = os.Stderr
	}
	srv, err := service.New(cfg)
	if err != nil {
		log.Fatalf("numagpud: %v", err)
	}

	if *cacheDir != "" {
		log.Printf("numagpud: result cache at %s", *cacheDir)
	} else {
		log.Printf("numagpud: persistent cache disabled")
	}
	log.Printf("numagpud: listening on http://%s (divisor %d, iterscale %g, %d workers × %d-way sweeps)",
		*addr, *divisor, opts.IterScale, *workers, *parallel)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: srv}
	go func() {
		<-ctx.Done()
		hs.Shutdown(context.Background())
	}()
	err = hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		log.Printf("numagpud: shutdown signal received, draining jobs")
		srv.Close() // waits for queued and running jobs
		return
	}
	log.Fatalf("numagpud: %v", err)
}
