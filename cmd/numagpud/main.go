// Command numagpud is the long-running simulation service: it serves
// the paper's experiments and arbitrary (config, workload) sweeps over
// an HTTP/JSON API, shares one concurrent singleflight harness across
// all requests, and persists every simulation result in a
// content-addressed disk cache so warm results survive restarts.
//
// Every daemon is also a sweep-fabric coordinator: other numagpud
// processes started with -worker register with it, lease shards of its
// sweeps, and ship results back, scaling a sweep out across machines
// while the coordinator's disk cache stays the single source of truth.
//
// Usage:
//
//	numagpud [flags]
//
// Flags:
//
//	-addr host:port     listen address (default 127.0.0.1:8377)
//	-cache dir          persistent result cache directory (default
//	                    "numagpud-cache" under the current directory);
//	                    empty disables persistence
//	-state-dir dir      durable coordinator state (job + lease journal;
//	                    default "state" under -cache). A restarted
//	                    coordinator replays it and resumes in-flight
//	                    sweeps; empty with no -cache disables durability
//	-max-queue n        bound on queued-but-not-running jobs (default 64);
//	                    beyond it submissions get 429 + Retry-After
//	-tenant-quota f     per-tenant admission quota in jobs/minute, keyed
//	                    by the X-Tenant header (0 = unlimited)
//	-iterscale f        scale workload iteration counts (default 1.0)
//	-divisor n          architecture scale divisor vs the paper machine (default 8)
//	-maxctas n          cap grid sizes (0 = uncapped)
//	-quick              shorthand for -iterscale 0.25
//	-j n                simulations to run in parallel per sweep (default GOMAXPROCS)
//	-workers n          concurrent jobs (default 2)
//	-lease-ttl d        declare a fabric worker dead after this long
//	                    without a poll (default 15s)
//	-v                  mirror per-run progress to stderr
//
// Worker mode:
//
//	-worker             join a coordinator as a fabric worker instead of
//	                    serving the full API (requires -coordinator-url);
//	                    -addr then serves only /healthz and /metrics, and
//	                    -cache is ignored (the coordinator owns the cache)
//	-coordinator-url u  coordinator base URL, e.g. http://host:8377
//	-window n           max in-flight simulations to lease (default GOMAXPROCS)
//	-worker-name s      worker display name (default host-pid)
//
// A quick session:
//
//	numagpud -cache /var/cache/numagpud &
//	numagpud -addr 127.0.0.1:8378 -worker -coordinator-url http://127.0.0.1:8377 &
//	numagpud -addr 127.0.0.1:8379 -worker -coordinator-url http://127.0.0.1:8377 &
//	numagpu -quick -remote http://127.0.0.1:8377 -j 8 fig3
//	curl localhost:8377/v1/fabric
//
// Sweeps submitted to POST /v1/sweeps may set an "obs" field (see
// arch.ObsSpec and docs/OBSERVABILITY.md) to sample per-socket and
// per-link time series — and optionally a Chrome trace — during each
// run; the series ride back in the job result JSON alongside the
// results. Observed runs simulate locally on the coordinator so the
// probes execute (the fabric and warm cache reads are bypassed);
// results are byte-identical either way.
//
// On SIGINT/SIGTERM a coordinator drains its queued jobs and a worker
// drains its leased shards (finishing and shipping in-flight results,
// then deregistering) before exiting.
//
// See the internal/service package documentation for the full API and
// README.md ("Running the service", "Cluster quickstart") for a
// walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	cacheDir := flag.String("cache", "numagpud-cache", "persistent result cache directory (empty disables)")
	stateDir := flag.String("state-dir", "", "durable coordinator state directory (default: \"state\" under -cache)")
	maxQueue := flag.Int("max-queue", 64, "max queued jobs before submissions are shed with 429")
	tenantQuota := flag.Float64("tenant-quota", 0, "per-tenant admission quota in jobs/minute, keyed by X-Tenant (0 = unlimited)")
	iterScale := flag.Float64("iterscale", 1.0, "workload iteration scale")
	divisor := flag.Int("divisor", 8, "architecture scale divisor")
	maxCTAs := flag.Int("maxctas", 0, "cap grid sizes (0 = uncapped)")
	quick := flag.Bool("quick", false, "quick mode (iterscale 0.25)")
	parallel := flag.Int("j", runtime.GOMAXPROCS(0), "simulations to run in parallel per sweep")
	workers := flag.Int("workers", 2, "jobs executing concurrently")
	shards := flag.Int("shards", 1, "engine shards per simulation (results are byte-identical to -shards 1)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "declare a fabric worker dead after this long without a poll")
	worker := flag.Bool("worker", false, "run as a fabric worker for -coordinator-url")
	coordURL := flag.String("coordinator-url", "", "coordinator base URL (worker mode)")
	window := flag.Int("window", runtime.GOMAXPROCS(0), "worker max in-flight simulations")
	workerName := flag.String("worker-name", "", "worker display name (default host-pid)")
	verbose := flag.Bool("v", false, "mirror per-run progress to stderr")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: numagpud [flags]\n\nflags:\n")
		flag.PrintDefaults()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *worker {
		if *coordURL == "" {
			log.Fatalf("numagpud: -worker requires -coordinator-url")
		}
		wcfg := service.WorkerConfig{
			CoordinatorURL: *coordURL,
			Name:           *workerName,
			Window:         *window,
			EngineShards:   *shards,
		}
		if *verbose {
			wcfg.Mirror = os.Stderr
		}
		w := service.NewWorker(wcfg)
		hs := &http.Server{Addr: *addr, Handler: w.Handler()}
		go func() {
			if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("numagpud: %v", err)
			}
		}()
		log.Printf("numagpud: worker %q joining coordinator %s (window %d, status on http://%s)",
			w.Name(), *coordURL, *window, *addr)
		err := w.Run(ctx) // drains leased shards and deregisters on SIGINT/SIGTERM
		hs.Shutdown(context.Background())
		if err != nil {
			log.Fatalf("numagpud: worker: %v", err)
		}
		log.Printf("numagpud: worker %q drained and deregistered", w.Name())
		return
	}

	opts := exp.Options{
		Divisor:      *divisor,
		IterScale:    *iterScale,
		MaxCTAs:      *maxCTAs,
		Parallelism:  *parallel,
		EngineShards: *shards,
	}
	if *quick {
		opts.IterScale = 0.25
	}
	cfg := service.Config{
		Options:     opts,
		CacheDir:    *cacheDir,
		StateDir:    *stateDir,
		TenantQuota: *tenantQuota,
		Workers:     *workers,
		QueueDepth:  *maxQueue,
		LeaseTTL:    *leaseTTL,
	}
	if *verbose {
		cfg.Mirror = os.Stderr
	}
	srv, err := service.New(cfg)
	if err != nil {
		log.Fatalf("numagpud: %v", err)
	}

	if *cacheDir != "" {
		log.Printf("numagpud: result cache at %s", *cacheDir)
	} else {
		log.Printf("numagpud: persistent cache disabled")
	}
	log.Printf("numagpud: listening on http://%s (divisor %d, iterscale %g, %d workers × %d-way sweeps, fabric lease TTL %s)",
		*addr, *divisor, opts.IterScale, *workers, *parallel, *leaseTTL)
	hs := &http.Server{Addr: *addr, Handler: srv}
	go func() {
		<-ctx.Done()
		hs.Shutdown(context.Background())
	}()
	err = hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		log.Printf("numagpud: shutdown signal received, draining jobs")
		srv.Close() // waits for queued and running jobs
		return
	}
	log.Fatalf("numagpud: %v", err)
}
