#!/usr/bin/env bash
# scripts/bench.sh — measure the simulation core and the model datapath,
# emitting BENCH_sim.json: engine microbenchmarks (ns/event, allocs/event,
# events/sec) for the bucketed scheduler and the reference heap it
# replaced, model-level datapath benchmarks (ns and allocs per access
# pattern, internal/gpu), the wall-clock time of regenerating every
# experiment at -quick scale, and an append-only `history` array that
# preserves the headline numbers across runs/PRs. See docs/PERF.md for
# how to read the output.
#
#   scripts/bench.sh            # full run: 1s benchtime + the -quick suite
#   scripts/bench.sh --fast     # CI smoke: 100ms benchtime, no -quick suite
#   scripts/bench.sh --no-quick # full benchtime, skip the -quick suite
#   scripts/bench.sh --fabric   # also time fig3 locally vs a 2-worker
#                               # sweep-fabric cluster (needs curl + jq)
#
# BENCHTIME=2s scripts/bench.sh overrides the benchmark time.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
RUN_QUICK=1
RUN_FABRIC=0
for arg in "$@"; do
  case "$arg" in
    --fast) BENCHTIME=100ms; RUN_QUICK=0 ;;
    --no-quick) RUN_QUICK=0 ;;
    --fabric) RUN_FABRIC=1 ;;
    *) echo "usage: scripts/bench.sh [--fast] [--no-quick] [--fabric]" >&2; exit 2 ;;
  esac
done

out=BENCH_sim.json
engbench=$(go test -run '^$' -bench Engine -benchmem -benchtime "$BENCHTIME" ./internal/sim)
printf '%s\n' "$engbench"
modelbench=$(go test -run '^$' -bench Model -benchmem -benchtime "$BENCHTIME" ./internal/gpu)
printf '%s\n' "$modelbench"

quick_wall=null
fig8_serial_wall=null
fig8_shards4_wall=null
fig3_obs_off_wall=null
fig3_obs_on_wall=null
obs_overhead_pct=null
if [ "$RUN_QUICK" = 1 ]; then
  echo "timing numagpu -quick all (full 15-experiment suite)..." >&2
  bin=$(mktemp -t numagpu.XXXXXX)
  go build -o "$bin" ./cmd/numagpu
  start=$(date +%s%N)
  "$bin" -quick all > /dev/null
  end=$(date +%s%N)
  quick_wall=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.1f", (e-s)/1e9 }')

  # Parallel-engine wall clock: fig8 serial vs -shards 4 on the same
  # binary, byte-compared. On a single-CPU runner this measures sharding
  # overhead, not speedup — the cmp is the point (see docs/PERF.md).
  echo "timing numagpu -quick fig8: serial vs -shards 4 (byte-compared)..." >&2
  pq=$(mktemp -d -t parbench.XXXXXX)
  start=$(date +%s%N)
  "$bin" -quick -j 1 -golden fig8 > "$pq/fig8.serial"
  end=$(date +%s%N)
  fig8_serial_wall=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.1f", (e-s)/1e9 }')
  start=$(date +%s%N)
  "$bin" -quick -j 1 -shards 4 -golden fig8 > "$pq/fig8.shards4"
  end=$(date +%s%N)
  fig8_shards4_wall=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.1f", (e-s)/1e9 }')
  cmp "$pq/fig8.serial" "$pq/fig8.shards4"
  rm -rf "$pq"

  # Observability sampling overhead: fig3 with the series probes on
  # (no -trace: tracing additionally writes a multi-MB trace.json per
  # run, which is artifact I/O, not sampling cost) vs off on the same
  # binary. The obs contract is byte-inert output (the cmp) and a
  # sampling budget of < 2% wall (see docs/OBSERVABILITY.md);
  # obs_overhead_pct lands in the history array so regressions in the
  # sampling path show up as a trajectory, not an anecdote. Runs
  # alternate off/on three times and the minima are compared, since a
  # single pair is dominated by machine noise on shared runners.
  echo "timing numagpu -quick fig3: sampling off vs -obs-dir, min of 3 (byte-compared)..." >&2
  od=$(mktemp -d -t obsbench.XXXXXX)
  for _ in 1 2 3; do
    start=$(date +%s%N)
    "$bin" -quick -j 1 -golden fig3 > "$od/fig3.off"
    end=$(date +%s%N)
    w=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.1f", (e-s)/1e9 }')
    fig3_obs_off_wall=$(awk -v a="$fig3_obs_off_wall" -v b="$w" \
      'BEGIN { printf "%.1f", (a == "null" || b+0 < a+0 ? b : a) }')
    rm -rf "$od/obs"
    start=$(date +%s%N)
    "$bin" -quick -j 1 -golden -obs-dir "$od/obs" fig3 > "$od/fig3.on"
    end=$(date +%s%N)
    w=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.1f", (e-s)/1e9 }')
    fig3_obs_on_wall=$(awk -v a="$fig3_obs_on_wall" -v b="$w" \
      'BEGIN { printf "%.1f", (a == "null" || b+0 < a+0 ? b : a) }')
    cmp "$od/fig3.off" "$od/fig3.on"
  done
  obs_overhead_pct=$(awk -v off="$fig3_obs_off_wall" -v on="$fig3_obs_on_wall" \
    'BEGIN { printf "%.1f", (off > 0 ? (on-off)/off*100 : 0) }')
  echo "obs sampling overhead: fig3 ${fig3_obs_off_wall}s off vs ${fig3_obs_on_wall}s on (${obs_overhead_pct}%)" >&2
  rm -rf "$od"
  rm -f "$bin"
fi

# --fabric: boot one coordinator + two workers on loopback and time
# `numagpu -quick fig3` executed locally (-j 1) vs through the fabric
# (-remote, -j 8). The two runs are byte-compared, so the timing doubles
# as a correctness check. Results land under the "fabric" key and in the
# history entry; see docs/PERF.md ("The sweep fabric").
fabric_json=null
if [ "$RUN_FABRIC" = 1 ]; then
  if ! command -v curl >/dev/null 2>&1 || ! command -v jq >/dev/null 2>&1; then
    echo "--fabric needs curl and jq; skipping the fabric timing" >&2
  else
    echo "timing the sweep fabric (fig3: local -j 1 vs coordinator + 2 workers)..." >&2
    gpubin=$(mktemp -t numagpu.XXXXXX)
    gpudbin=$(mktemp -t numagpud.XXXXXX)
    go build -o "$gpubin" ./cmd/numagpu
    go build -o "$gpudbin" ./cmd/numagpud
    workdir=$(mktemp -d -t fabric-bench.XXXXXX)
    coord=127.0.0.1:8397
    fabric_pids=()
    cleanup_fabric() {
      kill "${fabric_pids[@]}" 2>/dev/null || true
      wait "${fabric_pids[@]}" 2>/dev/null || true
      rm -f "$gpubin" "$gpudbin"
      rm -rf "$workdir"
    }
    trap cleanup_fabric EXIT

    "$gpudbin" -addr "$coord" -cache "$workdir/coord-cache" >"$workdir/coord.log" 2>&1 &
    fabric_pids+=($!)
    "$gpudbin" -addr 127.0.0.1:8398 -worker -coordinator-url "http://$coord" -window 2 >"$workdir/w1.log" 2>&1 &
    fabric_pids+=($!)
    "$gpudbin" -addr 127.0.0.1:8399 -worker -coordinator-url "http://$coord" -window 2 >"$workdir/w2.log" 2>&1 &
    fabric_pids+=($!)
    for _ in $(seq 100); do
      n=$(curl -fs "http://$coord/v1/fabric" 2>/dev/null | jq '.workers | length' 2>/dev/null || echo 0)
      [ "$n" = 2 ] && break
      sleep 0.1
    done
    if [ "$n" != 2 ]; then
      echo "fabric workers never registered (see $workdir/*.log)" >&2
      exit 1
    fi

    start=$(date +%s%N)
    "$gpubin" -quick -j 1 -golden fig3 > "$workdir/fig3.local"
    end=$(date +%s%N)
    local_wall=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.1f", (e-s)/1e9 }')

    start=$(date +%s%N)
    "$gpubin" -quick -j 8 -golden -remote "http://$coord" fig3 > "$workdir/fig3.remote"
    end=$(date +%s%N)
    cluster_wall=$(awk -v s="$start" -v e="$end" 'BEGIN { printf "%.1f", (e-s)/1e9 }')

    cmp "$workdir/fig3.local" "$workdir/fig3.remote"
    shards=$(curl -fs "http://$coord/metrics" | awk '$1 == "numagpud_fabric_shards_total" {print $2}')
    cleanup_fabric
    trap - EXIT
    fabric_json=$(printf '{"workers": 2, "fig3_unique_runs": %s, "local_j1_fig3_wall_seconds": %s, "cluster2_fig3_wall_seconds": %s}' \
      "${shards:-0}" "$local_wall" "$cluster_wall")
    echo "fabric: fig3 local -j 1 ${local_wall}s vs 2-worker cluster ${cluster_wall}s (byte-identical, ${shards:-0} unique runs)" >&2
  fi
fi

current=$(printf '%s\n%s\n' "$engbench" "$modelbench" | awk \
  -v quick_wall="$quick_wall" \
  -v fig8_serial_wall="$fig8_serial_wall" \
  -v fig8_shards4_wall="$fig8_shards4_wall" \
  -v fig3_obs_off_wall="$fig3_obs_off_wall" \
  -v fig3_obs_on_wall="$fig3_obs_on_wall" \
  -v obs_overhead_pct="$obs_overhead_pct" \
  -v benchtime="$BENCHTIME" \
  -v goversion="$(go env GOVERSION)" \
  -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns[name] = $i
    if ($(i+1) == "allocs/op") al[name] = $i
  }
}
function entry(name,    s) {
  s = sprintf("{\"ns_per_event\": %s, \"allocs_per_event\": %s", ns[name], al[name])
  if (ns[name] + 0 > 0)
    s = s sprintf(", \"events_per_sec\": %.0f", 1e9 / ns[name])
  return s "}"
}
function mentry(name) {
  return sprintf("{\"ns_per_op\": %s, \"allocs_per_op\": %s}", ns[name], al[name])
}
END {
  printf "{\n"
  printf "  \"generated_by\": \"scripts/bench.sh\",\n"
  printf "  \"date\": \"%s\",\n", date
  printf "  \"go\": \"%s\",\n", goversion
  printf "  \"benchtime\": \"%s\",\n", benchtime
  printf "  \"engine\": {\n"
  printf "    \"steady_state\": %s,\n",   entry("BenchmarkEngineSteadyState")
  printf "    \"mixed_delays\": %s,\n",   entry("BenchmarkEngineMixedDelays")
  printf "    \"same_cycle_fifo\": %s,\n", entry("BenchmarkEngineSameCycleFIFO")
  printf "    \"schedule_arg\": %s,\n",   entry("BenchmarkEngineScheduleArg")
  printf "    \"far_future\": %s\n",      entry("BenchmarkEngineFarFuture")
  printf "  },\n"
  printf "  \"reference_engine\": {\n"
  printf "    \"steady_state\": %s,\n", entry("BenchmarkReferenceEngineSteadyState")
  printf "    \"mixed_delays\": %s,\n", entry("BenchmarkReferenceEngineMixedDelays")
  printf "    \"far_future\": %s\n",    entry("BenchmarkReferenceEngineFarFuture")
  printf "  },\n"
  printf "  \"speedup_steady_state\": %.2f,\n", ns["BenchmarkReferenceEngineSteadyState"] / ns["BenchmarkEngineSteadyState"]
  printf "  \"speedup_mixed_delays\": %.2f,\n", ns["BenchmarkReferenceEngineMixedDelays"] / ns["BenchmarkEngineMixedDelays"]
  printf "  \"parallel\": {\n"
  printf "    \"windowed_1shard\": %s,\n", entry("BenchmarkParallelEngineShards1")
  printf "    \"windowed_2shard\": %s,\n", entry("BenchmarkParallelEngineShards2")
  printf "    \"windowed_4shard\": %s,\n", entry("BenchmarkParallelEngineShards4")
  printf "    \"lockstep_4shard\": %s,\n", entry("BenchmarkParallelEngineLockstep4")
  printf "    \"fig8_quick_serial_wall_seconds\": %s,\n", fig8_serial_wall
  printf "    \"fig8_quick_shards4_wall_seconds\": %s\n", fig8_shards4_wall
  printf "  },\n"
  printf "  \"model\": {\n"
  printf "    \"l1_hit\": %s,\n",         mentry("BenchmarkModelL1Hit")
  printf "    \"l2_hit\": %s,\n",         mentry("BenchmarkModelL2Hit")
  printf "    \"l2_miss\": %s,\n",        mentry("BenchmarkModelL2Miss")
  printf "    \"remote_read\": %s,\n",    mentry("BenchmarkModelRemoteRead")
  printf "    \"store\": %s,\n",          mentry("BenchmarkModelStore")
  printf "    \"mshr_merge\": %s,\n",     mentry("BenchmarkModelMSHRMerge")
  printf "    \"socket_workload\": %s\n", mentry("BenchmarkModelSocketWorkload")
  printf "  },\n"
  printf "  \"obs\": {\n"
  printf "    \"fig3_quick_wall_off_seconds\": %s,\n", fig3_obs_off_wall
  printf "    \"fig3_quick_wall_on_seconds\": %s,\n", fig3_obs_on_wall
  printf "    \"overhead_pct\": %s\n", obs_overhead_pct
  printf "  },\n"
  printf "  \"quick_all_wall_seconds\": %s\n", quick_wall
  printf "}\n"
}')

# Merge with the previous snapshot: model_pre_refactor is preserved
# verbatim (the measured "before" side of the datapath rewrite), and a
# headline entry is appended to the history array so the perf trajectory
# across PRs survives regeneration. Without jq (or with a corrupt
# previous file) the merge degrades to a fresh snapshot.
if command -v jq >/dev/null 2>&1; then
  prev='{}'
  if [ -f "$out" ] && jq -e . "$out" >/dev/null 2>&1; then
    prev=$(cat "$out")
  fi
  printf '%s' "$current" | jq --argjson prev "$prev" --argjson fabric "$fabric_json" '
    . as $cur
    | $cur
    + (if $prev.model_pre_refactor then {model_pre_refactor: $prev.model_pre_refactor} else {} end)
    + (if $fabric != null then {fabric: $fabric}
       elif $prev.fabric then {fabric: $prev.fabric}
       else {} end)
    + {history: (($prev.history // []) + [({
        date: $cur.date,
        benchtime: $cur.benchtime,
        quick_all_wall_seconds: $cur.quick_all_wall_seconds,
        engine_steady_ns_per_event: $cur.engine.steady_state.ns_per_event,
        parallel_windowed4_ns_per_event: $cur.parallel.windowed_4shard.ns_per_event,
        parallel_lockstep4_ns_per_event: $cur.parallel.lockstep_4shard.ns_per_event,
        fig8_quick_shards4_wall_seconds: $cur.parallel.fig8_quick_shards4_wall_seconds,
        obs_overhead_pct: $cur.obs.overhead_pct,
        model_l1_hit_ns: $cur.model.l1_hit.ns_per_op,
        model_l2_miss_ns: $cur.model.l2_miss.ns_per_op,
        model_mshr_merge_ns: $cur.model.mshr_merge.ns_per_op,
        model_socket_workload_ns: $cur.model.socket_workload.ns_per_op
      } + (if $fabric != null then {
        fabric_local_j1_fig3_wall_seconds: $fabric.local_j1_fig3_wall_seconds,
        fabric_cluster2_fig3_wall_seconds: $fabric.cluster2_fig3_wall_seconds
      } else {} end))])}' > "$out.tmp"
  mv "$out.tmp" "$out"
else
  echo "jq not found: writing snapshot without history preservation" >&2
  printf '%s\n' "$current" > "$out"
fi

echo "wrote $out" >&2
cat "$out"
