#!/usr/bin/env bash
# scripts/profile.sh — profile the simulator and print where the time
# and the allocations go. Two modes:
#
#   scripts/profile.sh [experiment]   # profile `numagpu -quick <experiment>`
#                                     # (default: fig6, a simulation-heavy one)
#   scripts/profile.sh --model        # profile the model-level benchmarks
#                                     # (internal/gpu BenchmarkModel*)
#
# Profiles land in $PROFILE_DIR (default /tmp/numagpu-prof) and are
# summarized with `go tool pprof -top`. Open one interactively with e.g.
#
#   go tool pprof -http=:8080 /tmp/numagpu-prof/cpu.pprof
#
# See docs/PERF.md ("Model datapath") for how to read the result.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${PROFILE_DIR:-/tmp/numagpu-prof}"
mkdir -p "$out"

if [ "${1:-}" = "--model" ]; then
  go test -run '^$' -bench Model -benchtime "${BENCHTIME:-1s}" -benchmem \
    -cpuprofile "$out/cpu.pprof" -memprofile "$out/mem.pprof" \
    -o "$out/gpu.test" ./internal/gpu
  bin="$out/gpu.test"
else
  experiment="${1:-fig6}"
  go build -o "$out/numagpu" ./cmd/numagpu
  "$out/numagpu" -quick -cpuprofile "$out/cpu.pprof" -memprofile "$out/mem.pprof" \
    "$experiment" > /dev/null
  bin="$out/numagpu"
fi

echo
echo "=== CPU: top 15 ($out/cpu.pprof) ==="
go tool pprof -top -nodecount 15 "$bin" "$out/cpu.pprof"
echo
echo "=== Heap: top 15 by allocated objects ($out/mem.pprof) ==="
go tool pprof -top -nodecount 15 -sample_index=alloc_objects "$bin" "$out/mem.pprof"
