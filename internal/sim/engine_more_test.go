package sim

import "testing"

// TestPendingExecutedAccounting pins the bookkeeping across both levels
// of the calendar queue: ring events, far-heap events, and migration
// between them must keep Pending + Executed consistent.
func TestPendingExecutedAccounting(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func(Time) {}) // ring
	}
	for i := 0; i < 5; i++ {
		e.Schedule(ringSize+Time(i*100), func(Time) {}) // far heap
	}
	if got := e.Pending(); got != 15 {
		t.Fatalf("Pending %d, want 15", got)
	}
	if got := e.Executed(); got != 0 {
		t.Fatalf("Executed %d before running, want 0", got)
	}
	for i := 1; i <= 3; i++ {
		e.Step()
	}
	if got := e.Pending(); got != 12 {
		t.Fatalf("Pending %d after 3 steps, want 12", got)
	}
	if got := e.Executed(); got != 3 {
		t.Fatalf("Executed %d after 3 steps, want 3", got)
	}
	e.Run()
	if got, want := e.Pending(), 0; got != want {
		t.Fatalf("Pending %d after drain, want %d", got, want)
	}
	if got := e.Executed(); got != 15 {
		t.Fatalf("Executed %d after drain, want 15", got)
	}
}

// TestRingBoundaryDelays exercises delays straddling the ring window:
// exactly ringSize-1 (last ring bucket), ringSize and beyond (far
// heap), and events that migrate across as the clock advances.
func TestRingBoundaryDelays(t *testing.T) {
	e := New()
	var order []int
	for i, d := range []Time{ringSize - 1, ringSize, ringSize + 1, 1, 2 * ringSize} {
		i := i
		e.Schedule(d, func(Time) { order = append(order, i) })
	}
	e.Run()
	want := []int{3, 0, 1, 2, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if e.Now() != 2*ringSize {
		t.Fatalf("final clock %d, want %d", e.Now(), 2*ringSize)
	}
}

// TestSameCycleFIFOAcrossVariants pins FIFO order within one cycle when
// the three scheduling variants interleave.
func TestSameCycleFIFOAcrossVariants(t *testing.T) {
	e := New()
	var order []int
	rec := func(i int) func(Time) { return func(Time) { order = append(order, i) } }
	e.Schedule(7, rec(0))
	e.ScheduleThunk(7, func() { order = append(order, 1) })
	e.ScheduleArg(7, func(_ Time, arg int) { order = append(order, arg) }, 2)
	e.At(7, rec(3))
	e.AtThunk(7, func() { order = append(order, 4) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("variant interleave broke same-cycle FIFO: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d events, want 5", len(order))
	}
}

// TestEngineReuseAcrossRuns documents that an Engine keeps working
// across scheduling waves: Run, schedule more, Run again, with the
// clock carrying forward (this is how core.System's kernel boundaries
// already use it).
func TestEngineReuseAcrossRuns(t *testing.T) {
	e := New()
	e.Schedule(10, func(Time) {})
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("clock %d after first run, want 10", e.Now())
	}
	var at Time
	e.Schedule(5, func(now Time) { at = now })
	e.Run()
	if at != 15 {
		t.Fatalf("second wave ran at %d, want 15 (clock continues)", at)
	}
	if e.Executed() != 2 {
		t.Fatalf("Executed %d, want 2", e.Executed())
	}
}

// TestResetDiscardsPendingEvents pins the Reset contract: events left
// queued — in the ring and the far heap, e.g. by a RunUntil stop or a
// stopped Ticker — are discarded, not leaked into the next run. This
// is what makes Engine reuse safe with pooled bucket storage.
func TestResetDiscardsPendingEvents(t *testing.T) {
	e := New()
	leaked := false
	for i := 0; i < 20; i++ {
		e.Schedule(Time(50+i), func(Time) { leaked = true })
	}
	e.Schedule(ringSize*3, func(Time) { leaked = true })
	if !e.RunUntil(10) {
		// expected: deadline stops execution with events still queued
	} else {
		t.Fatal("queue should not drain by t=10")
	}
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Executed() != 0 {
		t.Fatalf("Reset left state: now=%d pending=%d executed=%d", e.Now(), e.Pending(), e.Executed())
	}
	// A fresh simulation on the reused engine: only its own events run.
	var ran []Time
	e.Schedule(3, func(now Time) { ran = append(ran, now) })
	e.Run()
	if leaked {
		t.Fatal("Reset leaked a pre-reset event into the new run")
	}
	if len(ran) != 1 || ran[0] != 3 {
		t.Fatalf("post-reset run saw %v, want [3]", ran)
	}
	if e.Executed() != 1 {
		t.Fatalf("Executed %d after reset+run, want 1", e.Executed())
	}
}

// TestResetReference pins the same contract on the reference engine so
// the two stay interchangeable in the differential tests.
func TestResetReference(t *testing.T) {
	e := NewReference()
	e.Schedule(100, func(Time) { t.Fatal("leaked") })
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 {
		t.Fatalf("reference Reset left state: pending=%d now=%d", e.Pending(), e.Now())
	}
	e.Run()
}

// TestRunUntilParksClockAndMigrates pins that a deadline stop parks the
// clock at the deadline (original engine behaviour) and that scheduling
// relative to the parked clock works across the ring window.
func TestRunUntilParksClockAndMigrates(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(ringSize+500, func(Time) { count++ })
	if e.RunUntil(ringSize) {
		t.Fatal("queue should not drain by the window edge")
	}
	if e.Now() != ringSize {
		t.Fatalf("clock %d after deadline stop, want %d", e.Now(), ringSize)
	}
	// The far event is now within the ring window of the parked clock;
	// a new same-cycle insert after it must still run after it.
	ran := []int{}
	e.At(ringSize+500, func(Time) { ran = append(ran, 2) })
	e.Schedule(0, func(Time) { ran = append(ran, 1) })
	e.Run()
	if count != 1 {
		t.Fatalf("far event ran %d times, want 1", count)
	}
	if len(ran) != 2 || ran[0] != 1 || ran[1] != 2 {
		t.Fatalf("post-park ordering %v, want [1 2]", ran)
	}
}

// TestRunUntilPastDeadline pins that a deadline behind the clock is a
// pure no-op: nothing executes, the clock stays put, and queued events
// later run at their scheduled times. (Without the clamp the bucketed
// engine would rewind the clock, shift the ring window, and execute
// the queued event at an aliased earlier cycle.)
func TestRunUntilPastDeadline(t *testing.T) {
	for _, eng := range []schedulerAPI{New(), NewReference()} {
		e := eng
		e.Schedule(500, func(Time) {})
		e.Run() // park the clock at 500
		var ran Time
		e.At(1200, func(now Time) { ran = now })
		if e.RunUntil(100) {
			t.Fatal("past deadline with a queued event must report not drained")
		}
		if e.Now() != 500 {
			t.Fatalf("past deadline moved the clock: %d, want 500", e.Now())
		}
		if e.Pending() != 1 {
			t.Fatalf("past deadline disturbed the queue: %d pending, want 1", e.Pending())
		}
		e.Run()
		if ran != 1200 {
			t.Fatalf("event ran at %d, want 1200", ran)
		}
		if !e.RunUntil(3) { // drained engine: past deadline reports drained
			t.Fatal("past deadline on a drained engine must report drained")
		}
	}
}

// TestTicker pins the recurring-clock helper: period, callback clock,
// and the stop-is-a-flag cancellation semantics.
func TestTicker(t *testing.T) {
	e := New()
	var fires []Time
	tk := NewTicker(e, 10, func(now Time) { fires = append(fires, now) })
	tk.Start()
	e.RunUntil(35)
	if len(fires) != 3 || fires[0] != 10 || fires[1] != 20 || fires[2] != 30 {
		t.Fatalf("ticker fired at %v, want [10 20 30]", fires)
	}
	tk.Stop()
	e.Run() // the queued tick fires as a no-op and does not reschedule
	if len(fires) != 3 {
		t.Fatalf("stopped ticker kept firing: %v", fires)
	}
	if e.Pending() != 0 {
		t.Fatalf("stopped ticker left %d events pending after drain", e.Pending())
	}
}

// TestTickerMinimumPeriod guards against a zero-period livelock.
func TestTickerMinimumPeriod(t *testing.T) {
	e := New()
	n := 0
	tk := NewTicker(e, 0, func(Time) {
		n++
		if n >= 5 {
			e.RunUntil(e.Now()) // no-op; just to have a body
		}
	})
	tk.Start()
	e.RunUntil(5)
	tk.Stop()
	e.Run()
	if n != 5 {
		t.Fatalf("period-0 ticker (clamped to 1) fired %d times by t=5, want 5", n)
	}
}

// TestAtArg pins the pooled absolute-time variant: argument delivery,
// FIFO order against other same-cycle events, and past clamping.
func TestAtArg(t *testing.T) {
	e := New()
	var got []int
	rec := func(_ Time, arg int) { got = append(got, arg) }
	e.AtArg(10, rec, 1)
	e.At(10, func(Time) { got = append(got, 2) })
	e.AtArg(10, rec, 3)
	e.Schedule(20, func(Time) {
		e.AtArg(5, rec, 4) // past: clamps to now=20, runs this cycle
	})
	e.Run()
	if len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("AtArg order/args %v, want [1 2 3 4]", got)
	}
	if e.Now() != 20 {
		t.Fatalf("final clock %d, want 20", e.Now())
	}
}
