package sim

// Ticker drives a recurring component clock: fn runs every period
// cycles until Stop. It replaces the hand-rolled self-rescheduling
// closures of the policy samplers (link balancer, cache partition
// controller, link profiler) with one allocation for the lifetime of
// the ticker instead of one per Start.
//
// Ordering is exactly that of the pattern it replaces: the first tick
// fires period cycles after Start, and each tick reschedules itself
// *after* fn returns, so events scheduled by fn at the same future
// cycle as the next tick keep their historical insertion order. A
// stopped ticker's already-queued tick still fires but does nothing —
// cancellation is a flag, never a queue surgery, which keeps the
// engine's accounting (Pending, Executed) simple and deterministic.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      Event
	stopped bool
	tick    Event // the one long-lived self-rescheduling callback
}

// NewTicker prepares a ticker on eng with the given period in cycles
// (minimum 1). It does not start ticking until Start.
func NewTicker(eng *Engine, period Time, fn Event) *Ticker {
	if period < 1 {
		period = 1
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.tick = func(now Time) {
		if t.stopped {
			return
		}
		t.fn(now)
		t.eng.Schedule(t.period, t.tick)
	}
	return t
}

// Start (re)arms the ticker: the next tick fires period cycles from
// now. Calling Start on a running ticker adds another tick train; the
// policy components only ever start a ticker once per simulation.
func (t *Ticker) Start() {
	t.stopped = false
	t.eng.Schedule(t.period, t.tick)
}

// Stop halts ticking. The tick already in the queue fires as a no-op;
// no further ones are scheduled.
func (t *Ticker) Stop() { t.stopped = true }
