package sim

import "math"

// Server models a serializing bandwidth-limited resource: a DRAM channel
// group, an on-chip crossbar, or one direction of an inter-GPU link.
//
// A transfer of size S bytes occupies the server for S/Bandwidth cycles
// (serialization) and then pays Latency cycles of pipeline delay before
// completion is signalled. Occupancy is tracked at sub-cycle resolution
// so many small messages can share one cycle of a wide resource;
// back-to-back transfers queue implicitly via the busy-until
// bookkeeping, so queueing delay under contention emerges without
// modelling explicit queues.
type Server struct {
	eng *Engine

	bandwidth float64 // bytes per cycle
	latency   Time

	nextFree float64 // fractional cycle when the wire frees up
}

// NewServer creates a server with the given bandwidth (bytes/cycle) and
// latency (cycles) attached to engine eng.
func NewServer(eng *Engine, bandwidth float64, latency int) *Server {
	return &Server{eng: eng, bandwidth: bandwidth, latency: Time(latency)}
}

// SetBandwidth changes the server's bandwidth from now on. In-flight
// transfers keep their original completion times; the link balancer uses
// this when lanes are re-pointed.
func (s *Server) SetBandwidth(bw float64) { s.bandwidth = bw }

// Bandwidth reports the current bandwidth in bytes/cycle.
func (s *Server) Bandwidth() float64 { return s.bandwidth }

// Latency reports the fixed pipeline latency in cycles.
func (s *Server) Latency() Time { return s.latency }

// BusyUntil reports the cycle at which the serialization stage frees up.
func (s *Server) BusyUntil() Time { return Time(math.Ceil(s.nextFree)) }

// Transfer enqueues a transfer of size bytes and schedules done when the
// last byte has arrived (serialization + latency). done may be nil for
// fire-and-forget traffic whose completion is tracked elsewhere. It
// returns the completion time.
func (s *Server) Transfer(size int, done Event) Time {
	complete := s.occupy(size)
	if done != nil {
		s.eng.At(complete, done)
	}
	return complete
}

// TransferFunc is Transfer for a clock-ignoring completion callback:
// the caller's existing func() is queued directly instead of being
// wrapped in a fresh func(Time) closure.
func (s *Server) TransferFunc(size int, done func()) Time {
	complete := s.occupy(size)
	if done != nil {
		s.eng.AtThunk(complete, done)
	}
	return complete
}

// TransferArg is Transfer for a long-lived ArgEvent callback plus an
// integer argument: the completion path for pooled continuations (the
// memory datapath passes a transaction index through fn's arg instead
// of allocating a closure per message).
func (s *Server) TransferArg(size int, fn ArgEvent, arg int) Time {
	complete := s.occupy(size)
	s.eng.AtArg(complete, fn, arg)
	return complete
}

// occupy books size bytes of serialization time and returns the cycle
// at which the transfer completes.
func (s *Server) occupy(size int) Time {
	now := float64(s.eng.Now())
	start := s.nextFree
	if start < now {
		start = now
	}
	dur := 0.0
	if s.bandwidth > 0 {
		dur = float64(size) / s.bandwidth
	}
	s.nextFree = start + dur
	return Time(math.Ceil(s.nextFree)) + s.latency
}

// Stall reserves the server for the given number of cycles without
// transferring data: used for lane turnaround penalties.
func (s *Server) Stall(cycles int) {
	now := float64(s.eng.Now())
	if s.nextFree < now {
		s.nextFree = now
	}
	s.nextFree += float64(cycles)
}
