package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// schedulerAPI is the surface shared by the bucketed Engine and the
// ReferenceEngine, letting one program drive both implementations.
type schedulerAPI interface {
	Now() Time
	Executed() uint64
	Pending() int
	Schedule(Time, Event)
	ScheduleThunk(Time, func())
	ScheduleArg(Time, ArgEvent, int)
	At(Time, Event)
	AtThunk(Time, func())
	AtArg(Time, ArgEvent, int)
	Step() bool
	Run() Time
	RunUntil(Time) bool
	Reset()
}

var (
	_ schedulerAPI = (*Engine)(nil)
	_ schedulerAPI = (*ReferenceEngine)(nil)
)

// traceEntry records one observed event execution: which program op
// spawned it and the clock it saw.
type traceEntry struct {
	id int
	at Time
}

// opInterp replays an opcode program on a scheduler. Every executed
// event appends to the trace and consumes further opcodes, so programs
// exercise nested scheduling (events scheduling events), zero delays,
// far-future delays across the ring window, At clamping into the past,
// and flag-based cancellation (the model's idiom: a stop flag checked
// at fire time, as used by Ticker and the policy samplers).
type opInterp struct {
	eng    schedulerAPI
	ops    []byte
	pc     int
	nextID int
	trace  []traceEntry
	flags  [4]bool // cancellation flags toggled by the program
}

func (in *opInterp) next() (byte, bool) {
	if in.pc >= len(in.ops) {
		return 0, false
	}
	b := in.ops[in.pc]
	in.pc++
	return b, true
}

// exec consumes and performs one opcode, returning false when the
// program is exhausted.
func (in *opInterp) exec() bool {
	op, ok := in.next()
	if !ok {
		return false
	}
	val, _ := in.next() // zero if the program ends mid-op
	id := in.nextID
	in.nextID++
	record := func(now Time) {
		in.trace = append(in.trace, traceEntry{id: id, at: now})
		in.exec() // nested: each event performs the next program op
	}
	switch op % 9 {
	case 0: // small constant delay — the bucket hot path
		in.eng.Schedule(Time(val%64), record)
	case 1: // zero delay — same-cycle FIFO
		in.eng.Schedule(0, record)
	case 2: // far future — crosses the ring window into the heap
		in.eng.Schedule(ringSize+Time(val)*13, record)
	case 3: // ring boundary straddle
		in.eng.Schedule(ringSize-2+Time(val%5), record)
	case 4: // absolute time, sometimes in the past (clamps to now)
		at := Time(val) * 7
		in.eng.At(at, record)
	case 5: // thunk variant (no clock argument)
		in.eng.ScheduleThunk(Time(val%100), func() { record(in.eng.Now()) })
	case 6: // arg variant
		in.eng.ScheduleArg(Time(val%100), func(now Time, arg int) {
			in.trace = append(in.trace, traceEntry{id: arg, at: now})
			in.exec()
		}, id)
	case 7: // absolute-time arg variant, sometimes clamped to the past
		in.eng.AtArg(Time(val)*7, func(now Time, arg int) {
			in.trace = append(in.trace, traceEntry{id: arg, at: now})
			in.exec()
		}, id)
	case 8: // cancellable event: fires, but a flag decides if it acts
		f := int(val) % len(in.flags)
		if val%2 == 0 {
			in.flags[f] = !in.flags[f] // toggle now…
			in.eng.Schedule(Time(val%32), record)
		} else {
			in.eng.Schedule(Time(val%32), func(now Time) { // …or check at fire time
				if in.flags[f] {
					return // cancelled: no trace, no nested op
				}
				record(now)
			})
		}
	}
	return true
}

// runProgram replays ops on eng: it seeds the queue with up to 8
// initial ops (the rest are consumed by executing events), then drains
// the engine in RunUntil slices to exercise deadline stops, returning
// the execution trace and final state.
func runProgram(eng schedulerAPI, ops []byte) ([]traceEntry, Time, uint64, int) {
	in := &opInterp{eng: eng, ops: ops}
	for i := 0; i < 8 && in.exec(); i++ {
	}
	// Drain in uneven deadline slices so RunUntil's clock-parking path
	// (setting now to a cycle with no event) is part of the comparison.
	// Each slice also issues a deadline in the past, which must execute
	// nothing and leave all state untouched.
	for d := Time(100); !eng.RunUntil(d); d = d*3 + 41 {
		eng.RunUntil(d / 2)
	}
	eng.RunUntil(0)
	eng.Run()
	return in.trace, eng.Now(), eng.Executed(), eng.Pending()
}

// diffTraces fails t on the first divergence between the two engines'
// observations.
func diffTraces(t *testing.T, ops []byte, bkt, ref []traceEntry) {
	t.Helper()
	n := len(bkt)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if bkt[i] != ref[i] {
			t.Fatalf("ops %x: execution traces diverge at %d: bucketed ran op %d @%d, reference op %d @%d",
				ops, i, bkt[i].id, bkt[i].at, ref[i].id, ref[i].at)
		}
	}
	if len(bkt) != len(ref) {
		t.Fatalf("ops %x: trace lengths diverge: bucketed %d events, reference %d", ops, len(bkt), len(ref))
	}
}

func checkEquivalence(t *testing.T, ops []byte) {
	t.Helper()
	bt, bNow, bExec, bPend := runProgram(New(), ops)
	rt, rNow, rExec, rPend := runProgram(NewReference(), ops)
	diffTraces(t, ops, bt, rt)
	if bNow != rNow {
		t.Fatalf("ops %x: final clock %d vs reference %d", ops, bNow, rNow)
	}
	if bExec != rExec {
		t.Fatalf("ops %x: Executed %d vs reference %d", ops, bExec, rExec)
	}
	if bPend != 0 || rPend != 0 {
		t.Fatalf("ops %x: events left pending after drain: bucketed %d, reference %d", ops, bPend, rPend)
	}
}

// TestSchedulerEquivalence differential-tests the bucketed engine
// against the reference heap on a deterministic battery of random
// event programs: same inputs must produce identical execution traces,
// clocks, and accounting.
func TestSchedulerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 300; round++ {
		ops := make([]byte, rng.Intn(400))
		rng.Read(ops)
		checkEquivalence(t, ops)
	}
}

// FuzzSchedulerEquivalence lets the fuzzer hunt for an event program on
// which the bucketed scheduler and the reference heap disagree. Run
// longer with: go test -fuzz=FuzzSchedulerEquivalence ./internal/sim
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 5, 1, 0, 2, 3, 3, 255, 4, 9, 5, 70, 6, 12, 7, 3})
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096] // bound program size, not coverage
		}
		checkEquivalence(t, ops)
	})
}

// TestEquivalenceKnownHardCases pins programs that target the seams of
// the bucketed design specifically.
func TestEquivalenceKnownHardCases(t *testing.T) {
	cases := map[string][]byte{
		// Everything lands on one far cycle: heap FIFO by seq.
		"far-same-cycle": {2, 1, 2, 1, 2, 1, 2, 1},
		// Alternate ring and heap inserts at the window edge.
		"window-edge": {3, 0, 3, 1, 3, 2, 3, 3, 3, 4, 3, 0},
		// Past-At clamping intermixed with zero delays.
		"past-at": {0, 20, 4, 0, 1, 0, 4, 1, 1, 0},
		// Deep nesting: every event schedules the next.
		"chain": func() []byte {
			var b []byte
			for i := 0; i < 200; i++ {
				b = append(b, byte(i%8), byte(i*11))
			}
			return b
		}(),
	}
	for name, ops := range cases {
		t.Run(name, func(t *testing.T) { checkEquivalence(t, ops) })
	}
}

// TestMigrationPreservesInsertionOrder pins the subtlest ordering case:
// an event scheduled long in advance (via the far heap) and an event
// scheduled later but directly into the ring for the same cycle must
// run in insertion order — the heap migration may not reorder them.
func TestMigrationPreservesInsertionOrder(t *testing.T) {
	e := New()
	var got []string
	const target = ringSize + 500
	e.Schedule(target, func(Time) { got = append(got, "far-first") }) // heap
	e.Schedule(600, func(Time) {
		// now = 600; target is now inside [600, 600+ringSize) — this
		// insert goes straight into the ring bucket the far event
		// migrates into.
		e.At(target, func(Time) { got = append(got, "ring-second") })
	})
	e.Run()
	if fmt.Sprint(got) != "[far-first ring-second]" {
		t.Fatalf("migration broke insertion order: %v", got)
	}
	if e.Now() != target {
		t.Fatalf("final clock %d, want %d", e.Now(), target)
	}
}
