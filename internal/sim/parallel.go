package sim

import (
	"fmt"
	"sync"
)

// ParallelEngine runs N Engine shards — in the GPU model, one per
// socket plus a fabric/home shard — under a conservative parallel
// discrete-event protocol. Cross-shard traffic must respect a lookahead
// bound L (the minimum inter-socket path latency, derived from the
// fabric topology): an event sent from one shard can only affect
// another shard at least L cycles in the future, which is exactly the
// classical conservative-PDES null-message guarantee.
//
// The engine has two execution modes:
//
//   - Windowed (NewParallel): shards free-run independently inside
//     synchronization windows [floor, floor+L-1], where floor is the
//     earliest pending event across all shards. Cross-shard events go
//     through per-source mailboxes (pooled, zero-alloc slots) and are
//     merged at the window barrier in deterministic (time, srcShard,
//     sendSeq) order, so the schedule is reproducible regardless of how
//     many OS threads execute the window (SetWorkers). Within a window
//     shards only observe their own state, so this mode is safe for
//     true concurrency — the race job runs it under -race.
//
//   - Lockstep (NewLockstep): all shards share a single stamp counter
//     and the executor always runs the globally next (time, seq) event,
//     advancing every shard clock together. The observable schedule is
//     byte-identical to one serial Engine carrying all events — by
//     construction, not by luck — which is what lets the GPU model run
//     sharded under the golden-master tier. Cross-shard interactions
//     still must respect L; xlink.Fabric stamps every routed message
//     and NoteCross panics on a sub-bound delivery, so the conservative
//     bound is validated on every sharded model run even though the
//     lockstep executor would tolerate violating it.
//
// The model uses lockstep because its sockets are synchronously coupled
// outside the event queue (first-touch page placement, home-side L2/DRAM
// service, the drain counter); the windowed mode is the execution path
// for decoupled programs and is held to the lockstep/serial contract by
// TestParallelEquivalence and FuzzParallelEquivalence.
type ParallelEngine struct {
	shards    []*Engine
	lookahead Time
	lockstep  bool
	workers   int

	clock Time   // lockstep: global clock; windowed: floor of the last window
	gseq  uint64 // lockstep: shared stamp counter (shards' seqp points here)

	// Windowed mode: per-source mailboxes and the barrier merge buffer.
	// Slots are pooled — slices keep their capacity and entries are
	// zeroed after the merge so callback references are released without
	// per-window allocation.
	outbox  [][]crossMsg
	sendSeq []uint64
	merged  []crossMsg

	windows uint64 // synchronization windows executed (windowed mode)
	crossN  uint64 // cross-shard events delivered (both modes)

	// Lockstep head cache: pickLockstep would otherwise re-scan every
	// shard's ring per event. A shard's cached head (at, seq, ok) stays
	// valid while its insert counter (seq) and execution counter (nRun)
	// are unchanged — clock advances don't move heads, so the snapshot
	// check is the only invalidation needed.
	headAt   []Time
	headSeq  []uint64
	headOK   []bool
	snapSeq  []uint64
	snapRun  []uint64
	headInit []bool
}

// crossMsg is one pooled cross-shard mailbox slot: a scheduled event
// plus its deterministic merge stamp.
type crossMsg struct {
	at  Time
	src int32
	dst int32
	seq uint64 // per-source send sequence
	fn  Event
	tfn func()
	afn ArgEvent
	arg int
}

// NewParallel returns a windowed-mode engine with n shards and the
// given lookahead bound. It panics if n < 1 or lookahead < 1: a zero
// lookahead admits same-cycle cross-shard causality, which no
// conservative window can order.
func NewParallel(n int, lookahead Time) *ParallelEngine {
	pe := newParallelEngine(n, lookahead)
	pe.outbox = make([][]crossMsg, n)
	pe.sendSeq = make([]uint64, n)
	return pe
}

// NewLockstep returns a lockstep-mode engine with n shards and the
// given lookahead bound (panicking on n < 1 or lookahead < 1, like
// NewParallel). All shards stamp events from one shared counter; the
// executor interleaves them exactly as a single serial Engine would.
func NewLockstep(n int, lookahead Time) *ParallelEngine {
	pe := newParallelEngine(n, lookahead)
	pe.lockstep = true
	for _, sh := range pe.shards {
		sh.seqp = &pe.gseq
	}
	return pe
}

func newParallelEngine(n int, lookahead Time) *ParallelEngine {
	if n < 1 {
		panic("sim: ParallelEngine needs at least one shard")
	}
	if lookahead < 1 {
		panic("sim: zero lookahead rejected: cross-shard events need a positive minimum latency")
	}
	pe := &ParallelEngine{lookahead: lookahead, workers: 1}
	for i := 0; i < n; i++ {
		pe.shards = append(pe.shards, New())
	}
	pe.headAt = make([]Time, n)
	pe.headSeq = make([]uint64, n)
	pe.headOK = make([]bool, n)
	pe.snapSeq = make([]uint64, n)
	pe.snapRun = make([]uint64, n)
	pe.headInit = make([]bool, n)
	return pe
}

// SetLookahead replaces the lookahead bound — the model derives it from
// the fabric topology (xlink.Fabric.MinPathCost) after construction.
// It panics on a zero bound, like the constructors.
func (pe *ParallelEngine) SetLookahead(l Time) {
	if l < 1 {
		panic("sim: zero lookahead rejected: cross-shard events need a positive minimum latency")
	}
	pe.lookahead = l
}

// Lookahead reports the current lookahead bound.
func (pe *ParallelEngine) Lookahead() Time { return pe.lookahead }

// SetWorkers selects how windowed-mode windows execute: 1 (the default)
// runs shards sequentially in shard order; above 1 each shard of a
// window runs on its own goroutine (the Go scheduler maps them onto
// GOMAXPROCS threads). The merged schedule is identical either way.
// Lockstep mode is inherently serial and ignores the setting.
func (pe *ParallelEngine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	pe.workers = n
}

// NumShards reports the shard count.
func (pe *ParallelEngine) NumShards() int { return len(pe.shards) }

// Shard returns shard i's engine. Components bound to shard i schedule
// their intra-shard events here; the shard engines must only be driven
// (Run/RunUntil/Step) through the ParallelEngine.
func (pe *ParallelEngine) Shard(i int) *Engine { return pe.shards[i] }

// Now reports the global virtual time: the lockstep clock, or in
// windowed mode the furthest shard clock (shards are never more than a
// window apart).
func (pe *ParallelEngine) Now() Time {
	if pe.lockstep {
		return pe.clock
	}
	var t Time
	for _, sh := range pe.shards {
		if sh.now > t {
			t = sh.now
		}
	}
	return t
}

// Executed reports the total events run across all shards.
func (pe *ParallelEngine) Executed() uint64 {
	var n uint64
	for _, sh := range pe.shards {
		n += sh.nRun
	}
	return n
}

// ShardExecuted reports how many events shard i has run — the per-shard
// half of the event-count parity check against a serial run.
func (pe *ParallelEngine) ShardExecuted(i int) uint64 { return pe.shards[i].nRun }

// Pending reports queued events across all shards plus undelivered
// mailbox messages.
func (pe *ParallelEngine) Pending() int {
	n := 0
	for _, sh := range pe.shards {
		n += sh.Pending()
	}
	for _, ob := range pe.outbox {
		n += len(ob)
	}
	return n
}

// Windows reports how many synchronization windows windowed mode has
// executed.
func (pe *ParallelEngine) Windows() uint64 { return pe.windows }

// CrossDelivered reports how many cross-shard events have been
// delivered (mailbox merges in windowed mode, Send insertions and
// NoteCross records in lockstep mode).
func (pe *ParallelEngine) CrossDelivered() uint64 { return pe.crossN }

// checkSend validates one cross-shard send and returns its absolute
// delivery time.
func (pe *ParallelEngine) checkSend(src, dst int, delay Time) Time {
	if src == dst {
		panic("sim: cross-shard send to own shard; use Shard(i).Schedule for intra-shard events")
	}
	if delay < pe.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send below the lookahead bound: delay %d < lookahead %d (shard %d → %d)",
			delay, pe.lookahead, src, dst))
	}
	return pe.shards[src].now + delay
}

// Send schedules fn on shard dst, delay cycles after shard src's
// present. delay must be at least the lookahead bound: the send models
// a physical transfer whose minimum latency the bound was derived from,
// and anything faster would have to be ordered inside the current
// window, which the protocol forbids — so it panics. In windowed mode
// the event is buffered in src's mailbox and delivered at the next
// window barrier; Send may be called from the shard's own events while
// a window executes concurrently. In lockstep mode it is inserted
// directly with the shared stamp.
func (pe *ParallelEngine) Send(src, dst int, delay Time, fn Event) {
	pe.send(src, dst, delay, crossMsg{fn: fn})
}

// SendThunk is Send for a clock-ignoring callback.
func (pe *ParallelEngine) SendThunk(src, dst int, delay Time, fn func()) {
	pe.send(src, dst, delay, crossMsg{tfn: fn})
}

// SendArg is Send for a long-lived ArgEvent callback plus argument.
func (pe *ParallelEngine) SendArg(src, dst int, delay Time, fn ArgEvent, arg int) {
	pe.send(src, dst, delay, crossMsg{afn: fn, arg: arg})
}

func (pe *ParallelEngine) send(src, dst int, delay Time, m crossMsg) {
	at := pe.checkSend(src, dst, delay)
	if pe.lockstep {
		pe.shards[dst].insert(at, scheduled{fn: m.fn, tfn: m.tfn, afn: m.afn, arg: m.arg})
		pe.crossN++
		return
	}
	m.at = at
	m.src = int32(src)
	m.dst = int32(dst)
	pe.sendSeq[src]++
	m.seq = pe.sendSeq[src]
	pe.outbox[src] = append(pe.outbox[src], m)
}

// NoteCross records a cross-shard delivery carried by model machinery
// outside Send — an xlink.Fabric route completion executing on the
// destination's timeline — and asserts it respected the lookahead
// bound. sentAt is the stamp taken when the message entered the fabric.
// A sub-bound delivery means the derived lookahead was wrong (or the
// fabric found a faster path than MinPathCost), which would corrupt a
// windowed run silently; it panics instead.
func (pe *ParallelEngine) NoteCross(src, dst int, sentAt Time) {
	if src == dst {
		return
	}
	now := pe.Now()
	if now-sentAt < pe.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delivery below the lookahead bound: sent @%d, delivered @%d, elapsed %d < lookahead %d (shard %d → %d)",
			sentAt, now, now-sentAt, pe.lookahead, src, dst))
	}
	pe.crossN++
}

// Run executes events until every shard drains and all mailboxes are
// empty, returning the final global time.
func (pe *ParallelEngine) Run() Time {
	if pe.lockstep {
		for pe.stepLockstep(^Time(0)) == stepRan {
		}
		return pe.clock
	}
	pe.runWindows(0, false)
	return pe.Now()
}

// RunUntil executes events with time ≤ deadline. It returns true if
// everything drained, false if the deadline stopped execution first
// (leaving every shard clock parked at deadline and later events still
// queued). A deadline in the past executes nothing — virtual time never
// moves backward — and reports whether the engine is drained, matching
// Engine.RunUntil.
func (pe *ParallelEngine) RunUntil(deadline Time) bool {
	if pe.lockstep {
		if deadline < pe.clock {
			return pe.Pending() == 0
		}
		for {
			switch pe.stepLockstep(deadline) {
			case stepRan:
			case stepDrained:
				return true
			case stepDeadline:
				pe.clock = deadline
				for _, sh := range pe.shards {
					sh.setNow(deadline)
				}
				return false
			}
		}
	}
	if deadline < pe.Now() {
		return pe.Pending() == 0
	}
	return pe.runWindows(deadline, true)
}

// Reset returns every shard to its zero state and clears mailboxes,
// counters, and the shared clock, like Engine.Reset.
func (pe *ParallelEngine) Reset() {
	for i, sh := range pe.shards {
		sh.Reset()
		pe.headInit[i] = false
	}
	for i := range pe.outbox {
		pe.outbox[i] = clearMsgs(pe.outbox[i])
		pe.sendSeq[i] = 0
	}
	pe.merged = clearMsgs(pe.merged)
	pe.clock, pe.gseq, pe.windows, pe.crossN = 0, 0, 0, 0
}

// clearMsgs zeroes a mailbox's used slots (releasing callback
// references) and truncates it, keeping the backing array pooled.
func clearMsgs(msgs []crossMsg) []crossMsg {
	for i := range msgs {
		msgs[i] = crossMsg{}
	}
	return msgs[:0]
}

// ---------------------------------------------------------------------
// Lockstep executor.
// ---------------------------------------------------------------------

type stepResult int

const (
	stepRan stepResult = iota
	stepDrained
	stepDeadline
)

// stepLockstep executes the globally next (time, seq) event if its time
// is ≤ deadline, advancing all shard clocks together first so every
// shard observes the same present (the property the synchronously
// coupled model relies on when one shard's event calls into another
// shard's components).
func (pe *ParallelEngine) stepLockstep(deadline Time) stepResult {
	best := -1
	var bt Time
	var bs uint64
	for i, sh := range pe.shards {
		if !pe.headInit[i] || pe.snapSeq[i] != sh.seq || pe.snapRun[i] != sh.nRun {
			pe.headAt[i], pe.headSeq[i], pe.headOK[i] = sh.peekHead()
			pe.snapSeq[i], pe.snapRun[i], pe.headInit[i] = sh.seq, sh.nRun, true
		}
		if !pe.headOK[i] {
			continue
		}
		if best == -1 || pe.headAt[i] < bt || (pe.headAt[i] == bt && pe.headSeq[i] < bs) {
			best, bt, bs = i, pe.headAt[i], pe.headSeq[i]
		}
	}
	if best == -1 {
		return stepDrained
	}
	if bt > deadline {
		return stepDeadline
	}
	if bt > pe.clock {
		pe.clock = bt
		for _, sh := range pe.shards {
			sh.setNow(bt)
		}
	}
	pe.shards[best].Step()
	return stepRan
}

// ---------------------------------------------------------------------
// Windowed executor.
// ---------------------------------------------------------------------

// runWindows drains the shards in conservative windows; with bounded
// set it stops at deadline (parking shard clocks there) and reports
// whether the engine drained.
func (pe *ParallelEngine) runWindows(deadline Time, bounded bool) bool {
	for {
		pe.mergeOutboxes()
		floor, ok := pe.minNext()
		if !ok {
			return true
		}
		if bounded && floor > deadline {
			for _, sh := range pe.shards {
				if sh.now < deadline {
					sh.setNow(deadline)
				}
			}
			return false
		}
		end := floor + pe.lookahead - 1
		if end < floor {
			end = ^Time(0) // lookahead overflow: single unbounded window
		}
		if bounded && end > deadline {
			end = deadline
		}
		pe.windows++
		pe.runWindow(end)
	}
}

// minNext reports the earliest pending event time across all shards.
func (pe *ParallelEngine) minNext() (Time, bool) {
	var floor Time
	found := false
	for _, sh := range pe.shards {
		if t, ok := sh.peek(); ok && (!found || t < floor) {
			floor, found = t, true
		}
	}
	return floor, found
}

// runWindow executes one window: every shard runs its events with time
// ≤ end. Events only touch their own shard's state (cross-shard effects
// go through Send into the source mailbox), so with workers > 1 the
// shards run on concurrent goroutines; the barrier at the end restores
// a single-threaded view before mailboxes merge.
func (pe *ParallelEngine) runWindow(end Time) {
	if pe.workers <= 1 || len(pe.shards) == 1 {
		for _, sh := range pe.shards {
			sh.RunUntil(end)
		}
		return
	}
	var wg sync.WaitGroup
	for _, sh := range pe.shards {
		wg.Add(1)
		go func(sh *Engine) {
			defer wg.Done()
			sh.RunUntil(end)
		}(sh)
	}
	wg.Wait()
}

// mergeOutboxes drains every source mailbox into the destination
// shards in (time, srcShard, sendSeq) order — the deterministic merge
// that makes the schedule independent of shard execution interleaving.
// Delivery times at least lookahead past the send point can never land
// inside an already-executed window, so each insert targets the
// destination's strict future; the clamp below only applies to sends
// issued from outside Run against a shard that has already drained
// further ahead, mirroring Engine.At's monotonic-time contract.
func (pe *ParallelEngine) mergeOutboxes() {
	total := 0
	for i := range pe.outbox {
		total += len(pe.outbox[i])
	}
	if total == 0 {
		return
	}
	pe.merged = pe.merged[:0]
	for i := range pe.outbox {
		pe.merged = append(pe.merged, pe.outbox[i]...)
		pe.outbox[i] = clearMsgs(pe.outbox[i])
	}
	sortMsgs(pe.merged)
	for i := range pe.merged {
		m := &pe.merged[i]
		dst := pe.shards[m.dst]
		at := m.at
		if at < dst.now {
			at = dst.now
		}
		dst.insert(at, scheduled{fn: m.fn, tfn: m.tfn, afn: m.afn, arg: m.arg})
		pe.crossN++
	}
	pe.merged = clearMsgs(pe.merged)
}

// sortMsgs orders messages by (at, src, seq) — insertion sort, since a
// window's cross-shard traffic is small and the slice is nearly sorted
// per source already; avoids sort.Interface boxing on the pooled slice.
func sortMsgs(msgs []crossMsg) {
	for i := 1; i < len(msgs); i++ {
		m := msgs[i]
		j := i - 1
		for j >= 0 && msgLess(m, msgs[j]) {
			msgs[j+1] = msgs[j]
			j--
		}
		msgs[j+1] = m
	}
}

func msgLess(a, b crossMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}
