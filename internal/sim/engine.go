// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual cycle clock by executing scheduled events
// in (time, insertion-order) order. All components of the GPU model share
// one engine; the simulation is single-threaded, which makes runs exactly
// reproducible.
//
// Internally the engine is a two-level bucketed calendar queue: a ring
// of per-cycle FIFO buckets covering the near future plus an overflow
// heap for everything beyond it (see the scheduling invariant on
// Engine). Nearly every delay in the GPU model is a small constant —
// cache latencies, NoC hops, compute delays — so almost all traffic
// takes the O(1) bucket path; only long timers (policy samplers) and
// deeply backlogged transfers touch the heap.
package sim

// Time is a point in virtual time, measured in clock cycles.
// The system clock is 1GHz, so one cycle is one nanosecond and a
// bandwidth of 1GB/s equals 1 byte/cycle.
type Time uint64

// Event is a callback scheduled to run at a specific virtual time.
type Event func(now Time)

// ArgEvent is an event callback carrying a small integer argument.
// Hot paths that wake per-slot state machines (e.g. warp slots in
// smcore) schedule one long-lived ArgEvent function value with varying
// arguments instead of allocating a fresh closure per event.
type ArgEvent func(now Time, arg int)

// ringBits sizes the near-future ring: 2^ringBits consecutive cycles
// have their own FIFO bucket. 1024 cycles covers every fixed latency in
// the model (L1 28, L2 96, DRAM 100, link 128, lane turnaround 100…);
// the 5K-cycle policy samplers and far-backlogged transfer completions
// overflow into the far heap, which is exactly as fast as the engine
// this design replaced.
const (
	ringBits = 10
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// scheduled is one queued event. Exactly one of fn, tfn, afn is set;
// the three variants exist so call sites can schedule what they already
// hold (an Event, a plain completion func(), or a shared ArgEvent plus
// argument) without wrapping it in a fresh closure.
type scheduled struct {
	at  Time
	seq uint64
	fn  Event
	tfn func()
	afn ArgEvent
	arg int
}

func (s *scheduled) call(now Time) {
	switch {
	case s.fn != nil:
		s.fn(now)
	case s.afn != nil:
		s.afn(now, s.arg)
	default:
		s.tfn()
	}
}

// bucket is the FIFO of one ring cycle: items[head:] are pending,
// items[:head] have run. The backing array is retained across cycles
// (head==len resets to items[:0]), so a warmed-up engine schedules and
// executes bucket events with zero allocations.
type bucket struct {
	items []scheduled
	head  int
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
//
// Scheduling invariant: every queued event with time in [now, now+ringSize)
// lives in ring bucket (time & ringMask); every event at or beyond
// now+ringSize lives in the far heap, ordered by (time, seq). Whenever
// the clock advances, far events whose time has entered the window
// migrate into their buckets — in (time, seq) order, and always before
// any event of the new cycle executes — so bucket FIFO order is seq
// order and the global (time, insertion-order) contract holds exactly.
//
// An Engine may keep running across multiple scheduling waves: after
// Run drains the queue, more events can be scheduled and Run called
// again, with the clock continuing from where it stopped. To reuse an
// Engine for an unrelated fresh simulation, call Reset — never rely on
// a drained queue alone, since a RunUntil stop or a stopped Ticker can
// leave events pending that would leak into the next run.
type Engine struct {
	now   Time
	seq   uint64
	nRun  uint64
	ringN int // events currently resident in ring buckets
	far   farHeap
	ring  [ringSize]bucket

	// seqp, when non-nil, is a stamp counter shared with other engines:
	// every insert takes its seq from *seqp instead of the local counter.
	// The ParallelEngine's lockstep mode points all shards at one counter
	// so the shard-spanning (time, seq) order is exactly the insertion
	// order a single serial engine would have produced. e.seq still
	// increments per insert and doubles as a local change counter.
	seqp *uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far; useful for
// performance accounting in benchmarks.
func (e *Engine) Executed() uint64 { return e.nRun }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return e.ringN + len(e.far) }

// insert queues it at absolute time at (which must be >= e.now).
func (e *Engine) insert(at Time, it scheduled) {
	e.seq++
	it.at = at
	if e.seqp != nil {
		*e.seqp++
		it.seq = *e.seqp
	} else {
		it.seq = e.seq
	}
	if at < e.now+ringSize {
		b := &e.ring[at&ringMask]
		b.items = append(b.items, it)
		e.ringN++
		return
	}
	e.far.push(it)
}

// Schedule runs fn after delay cycles. A delay of zero runs fn later in
// the current cycle, after all previously scheduled events for this cycle.
func (e *Engine) Schedule(delay Time, fn Event) {
	e.insert(e.now+delay, scheduled{fn: fn})
}

// ScheduleThunk is Schedule for a callback that ignores the clock:
// completion notifications that already close over their state can be
// queued directly instead of being wrapped in a func(Time) adapter.
func (e *Engine) ScheduleThunk(delay Time, fn func()) {
	e.insert(e.now+delay, scheduled{tfn: fn})
}

// ScheduleArg runs fn(now, arg) after delay cycles. fn is typically a
// single function value stored for the lifetime of a component, with
// arg selecting the slot/lane/index to act on — the allocation-free
// alternative to a per-event closure.
func (e *Engine) ScheduleArg(delay Time, fn ArgEvent, arg int) {
	e.insert(e.now+delay, scheduled{afn: fn, arg: arg})
}

// At runs fn at absolute time at. If at is in the past it runs at the
// current time (never before: virtual time is monotonic).
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.insert(at, scheduled{fn: fn})
}

// AtThunk is At for a clock-ignoring callback; see ScheduleThunk.
func (e *Engine) AtThunk(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.insert(at, scheduled{tfn: fn})
}

// AtArg runs fn(now, arg) at absolute time at (clamped to the present);
// the At counterpart of ScheduleArg. Bandwidth servers use it to queue
// pooled continuations at a transfer's completion time without wrapping
// them in a closure.
func (e *Engine) AtArg(at Time, fn ArgEvent, arg int) {
	if at < e.now {
		at = e.now
	}
	e.insert(at, scheduled{afn: fn, arg: arg})
}

// setNow advances the clock to t and restores the scheduling invariant:
// far events whose time entered [t, t+ringSize) migrate into their ring
// buckets. The heap pops in (time, seq) order and migration for a given
// cycle always happens before anything can append to that cycle's
// bucket directly, so FIFO-by-seq order within every bucket survives.
func (e *Engine) setNow(t Time) {
	e.now = t
	horizon := t + ringSize
	for len(e.far) > 0 && e.far[0].at < horizon {
		it := e.far.pop()
		b := &e.ring[it.at&ringMask]
		b.items = append(b.items, it)
		e.ringN++
	}
}

// advance moves the clock to the time of the next queued event,
// reporting whether one existed.
func (e *Engine) advance() bool {
	t, ok := e.peek()
	if !ok {
		return false
	}
	e.setNow(t)
	return true
}

// peek reports the time of the next queued event without running it.
func (e *Engine) peek() (Time, bool) {
	if e.ringN > 0 {
		// The next event is in the ring (far events are all ≥ now+ringSize)
		// and within the window, so this scan terminates in ≤ ringSize
		// probes; buckets of already-executed cycles are reset to empty,
		// so starting at now is safe even after the current cycle drains.
		for t := e.now; ; t++ {
			b := &e.ring[t&ringMask]
			if b.head < len(b.items) {
				return t, true
			}
		}
	}
	if len(e.far) > 0 {
		return e.far[0].at, true
	}
	return 0, false
}

// peekHead reports the (time, seq) stamp of the next queued event
// without running it. The ParallelEngine's lockstep executor compares
// shard heads by this stamp to pick the globally next event; within a
// ring bucket FIFO order is seq order (see the Engine invariant), so
// the head of the first non-empty cycle carries the shard's minimum.
func (e *Engine) peekHead() (Time, uint64, bool) {
	if e.ringN > 0 {
		for t := e.now; ; t++ {
			b := &e.ring[t&ringMask]
			if b.head < len(b.items) {
				return t, b.items[b.head].seq, true
			}
		}
	}
	if len(e.far) > 0 {
		return e.far[0].at, e.far[0].seq, true
	}
	return 0, 0, false
}

// Step executes the single next event and reports whether one existed.
func (e *Engine) Step() bool {
	b := &e.ring[e.now&ringMask]
	if b.head >= len(b.items) {
		if !e.advance() {
			return false
		}
		b = &e.ring[e.now&ringMask]
	}
	it := b.items[b.head]
	b.items[b.head] = scheduled{} // release callback references
	b.head++
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
	}
	e.ringN--
	e.nRun++
	it.call(e.now)
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline. It returns true if the
// queue drained, false if the deadline stopped execution first (leaving
// the clock at deadline and later events still queued). A deadline in
// the past executes nothing and leaves the clock where it is — virtual
// time never moves backward.
func (e *Engine) RunUntil(deadline Time) bool {
	if deadline < e.now {
		return e.Pending() == 0
	}
	for {
		t, ok := e.peek()
		if !ok {
			return true
		}
		if t > deadline {
			e.setNow(deadline)
			return false
		}
		e.Step()
	}
}

// Reset returns the engine to its zero state: clock at zero, no pending
// events, counters cleared. Use it before reusing an Engine for a fresh
// simulation — any events still queued (after a RunUntil stop, a
// stopped Ticker, or an abandoned run) are discarded rather than leaking
// into the next run. Bucket backing arrays are released along with the
// event callbacks they reference.
func (e *Engine) Reset() {
	for i := range e.ring {
		e.ring[i] = bucket{}
	}
	e.far = nil
	e.now, e.seq, e.nRun, e.ringN = 0, 0, 0, 0
}

// farHeap is the overflow level: a binary min-heap of events at or
// beyond the ring window, ordered by (time, seq). Hand-rolled rather
// than container/heap so pushes stay free of interface boxing.
type farHeap []scheduled

func (h farHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *farHeap) push(it scheduled) {
	*h = append(*h, it)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *farHeap) pop() scheduled {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = scheduled{} // release callback references
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}
