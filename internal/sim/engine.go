// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual cycle clock by executing scheduled events
// in (time, insertion-order) order. All components of the GPU model share
// one engine; the simulation is single-threaded, which makes runs exactly
// reproducible.
package sim

import "container/heap"

// Time is a point in virtual time, measured in clock cycles.
// The system clock is 1GHz, so one cycle is one nanosecond and a
// bandwidth of 1GB/s equals 1 byte/cycle.
type Time uint64

// Event is a callback scheduled to run at a specific virtual time.
type Event func(now Time)

type scheduled struct {
	at  Time
	seq uint64
	fn  Event
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(scheduled)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = scheduled{}
	*h = old[:n-1]
	return it
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	nRun   uint64
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have run so far; useful for
// performance accounting in benchmarks.
func (e *Engine) Executed() uint64 { return e.nRun }

// Pending reports how many events are waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay cycles. A delay of zero runs fn later in
// the current cycle, after all previously scheduled events for this cycle.
func (e *Engine) Schedule(delay Time, fn Event) {
	e.seq++
	heap.Push(&e.events, scheduled{at: e.now + delay, seq: e.seq, fn: fn})
}

// At runs fn at absolute time at. If at is in the past it runs at the
// current time (never before: virtual time is monotonic).
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, scheduled{at: at, seq: e.seq, fn: fn})
}

// Step executes the single next event and reports whether one existed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	it := heap.Pop(&e.events).(scheduled)
	e.now = it.at
	e.nRun++
	it.fn(e.now)
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline. It returns true if the
// queue drained, false if the deadline stopped execution first.
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			e.now = deadline
			return false
		}
		e.Step()
	}
	return true
}
