package sim

// Engine microbenchmarks: every benchmark executes exactly one event
// per iteration, so ns/op is ns/event and allocs/op is allocs/event,
// and events/sec = 1e9 / (ns/op). scripts/bench.sh parses these into
// BENCH_sim.json. The BenchmarkReference* twins run the same pattern on
// the original container/heap scheduler — the baseline the bucketed
// engine must beat ≥2× on the steady-state path.

import "testing"

// warmup laps the ring once so bucket backing arrays reach their
// steady-state capacity before measurement: the engine's hot path is
// allocation-free only once warmed, exactly like a long simulation.
func warmup(e *Engine) {
	for i := 0; i < 2*ringSize; i++ {
		e.Schedule(Time(i%64)+1, func(Time) {})
	}
	e.Run()
}

// BenchmarkEngineSteadyState is the hottest real pattern: a
// self-rescheduling +1-cycle tick, the shape of the SM issue loop.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := New()
	warmup(e)
	n := 0
	var tick Event
	tick = func(Time) {
		n++
		if n < b.N {
			e.Schedule(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(1, tick)
	e.Run()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "events/sec")
	}
}

func BenchmarkReferenceEngineSteadyState(b *testing.B) {
	e := NewReference()
	n := 0
	var tick Event
	tick = func(Time) {
		n++
		if n < b.N {
			e.Schedule(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(1, tick)
	e.Run()
}

// BenchmarkEngineMixedDelays schedules bursts across a spread of small
// constant delays — the cache/NoC/DRAM latency mix — and drains them.
func BenchmarkEngineMixedDelays(b *testing.B) {
	e := New()
	warmup(e)
	delays := [8]Time{1, 12, 28, 64, 96, 100, 128, 200}
	fn := Event(func(Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		burst := 512
		if b.N-done < burst {
			burst = b.N - done
		}
		for i := 0; i < burst; i++ {
			e.Schedule(delays[i&7], fn)
		}
		e.Run()
		done += burst
	}
}

func BenchmarkReferenceEngineMixedDelays(b *testing.B) {
	e := NewReference()
	delays := [8]Time{1, 12, 28, 64, 96, 100, 128, 200}
	fn := Event(func(Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		burst := 512
		if b.N-done < burst {
			burst = b.N - done
		}
		for i := 0; i < burst; i++ {
			e.Schedule(delays[i&7], fn)
		}
		e.Run()
		done += burst
	}
}

// BenchmarkEngineSameCycleFIFO measures the zero-delay FIFO path: many
// events piling onto the current cycle (warp wakeups, MSHR fanout).
func BenchmarkEngineSameCycleFIFO(b *testing.B) {
	e := New()
	warmup(e)
	fn := Event(func(Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		burst := 256
		if b.N-done < burst {
			burst = b.N - done
		}
		for i := 0; i < burst; i++ {
			e.Schedule(0, fn)
		}
		e.Run()
		done += burst
	}
}

// BenchmarkEngineScheduleArg measures the pooled typed-event path used
// by the SM warp wakeups: one long-lived ArgEvent, varying arg.
func BenchmarkEngineScheduleArg(b *testing.B) {
	e := New()
	warmup(e)
	sink := 0
	fn := ArgEvent(func(_ Time, arg int) { sink += arg })
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		burst := 256
		if b.N-done < burst {
			burst = b.N - done
		}
		for i := 0; i < burst; i++ {
			e.ScheduleArg(Time(i&31)+1, fn, i&63)
		}
		e.Run()
		done += burst
	}
}

// BenchmarkEngineFarFuture measures the overflow-heap path: every delay
// beyond the ring window (policy samplers, deep backlogs).
func BenchmarkEngineFarFuture(b *testing.B) {
	e := New()
	fn := Event(func(Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		burst := 256
		if b.N-done < burst {
			burst = b.N - done
		}
		for i := 0; i < burst; i++ {
			e.Schedule(ringSize+Time(i&1023), fn)
		}
		e.Run()
		done += burst
	}
}

func BenchmarkReferenceEngineFarFuture(b *testing.B) {
	e := NewReference()
	fn := Event(func(Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		burst := 256
		if b.N-done < burst {
			burst = b.N - done
		}
		for i := 0; i < burst; i++ {
			e.Schedule(ringSize+Time(i&1023), fn)
		}
		e.Run()
		done += burst
	}
}
