package sim

import (
	"testing"
	"testing/quick"
)

func TestServerSerialization(t *testing.T) {
	e := New()
	s := NewServer(e, 10, 0) // 10 B/cycle, no latency
	var done []Time
	for i := 0; i < 3; i++ {
		s.Transfer(100, func(now Time) { done = append(done, now) })
	}
	e.Run()
	// Each 100B transfer takes 10 cycles; back to back: 10, 20, 30.
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestServerLatency(t *testing.T) {
	e := New()
	s := NewServer(e, 10, 50)
	var at Time
	s.Transfer(100, func(now Time) { at = now })
	e.Run()
	if at != 60 {
		t.Fatalf("completion at %d, want 60 (10 serialize + 50 latency)", at)
	}
}

// TestServerSubCycleMessages is the regression test for the bottleneck
// found during bring-up: many small messages must share one cycle of a
// wide resource instead of serializing at one message per cycle.
func TestServerSubCycleMessages(t *testing.T) {
	e := New()
	s := NewServer(e, 256, 0)
	n := 0
	for i := 0; i < 64; i++ {
		s.Transfer(32, func(Time) { n++ })
	}
	e.Run()
	// 64 × 32B = 2048B at 256 B/cycle = 8 cycles, not 64.
	if e.Now() > 9 {
		t.Fatalf("64 32B messages took %d cycles on a 256 B/c pipe, want ≈8", e.Now())
	}
	if n != 64 {
		t.Fatalf("%d completions, want 64", n)
	}
}

func TestServerIdleGapResets(t *testing.T) {
	e := New()
	s := NewServer(e, 10, 0)
	var second Time
	s.Transfer(100, nil) // busy until 10
	e.Schedule(100, func(Time) {
		s.Transfer(50, func(now Time) { second = now })
	})
	e.Run()
	if second != 105 {
		t.Fatalf("transfer after idle gap completed at %d, want 105", second)
	}
}

func TestServerSetBandwidth(t *testing.T) {
	e := New()
	s := NewServer(e, 10, 0)
	var first, second Time
	s.Transfer(100, func(now Time) { first = now })
	e.Schedule(20, func(Time) {
		s.SetBandwidth(100)
		s.Transfer(100, func(now Time) { second = now })
	})
	e.Run()
	if first != 10 {
		t.Fatalf("first at %d, want 10", first)
	}
	if second != 21 {
		t.Fatalf("second at %d, want 21 (1 cycle at 100 B/c)", second)
	}
}

func TestServerStall(t *testing.T) {
	e := New()
	s := NewServer(e, 10, 0)
	s.Stall(40)
	var at Time
	s.Transfer(100, func(now Time) { at = now })
	e.Run()
	if at != 50 {
		t.Fatalf("transfer after stall completed at %d, want 50", at)
	}
}

func TestServerZeroBandwidth(t *testing.T) {
	e := New()
	s := NewServer(e, 0, 5)
	var at Time
	s.Transfer(1000, func(now Time) { at = now })
	e.Run()
	if at != 5 {
		t.Fatalf("zero-bandwidth server should only pay latency, got %d", at)
	}
}

// TestPropertyThroughput: the total time for N back-to-back transfers
// never beats size/bandwidth and never exceeds it by more than one
// cycle per transfer (ceiling effects).
func TestPropertyThroughput(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := New()
		bw := 64.0
		s := NewServer(e, bw, 0)
		total := 0
		for _, sz := range sizes {
			size := int(sz%2000) + 1
			total += size
			s.Transfer(size, nil)
		}
		var last Time
		s.Transfer(1, func(now Time) { last = now })
		e.Run()
		min := Time(float64(total+1) / bw)
		max := min + Time(len(sizes)) + 2
		return last >= min && last <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCompletionMonotonic: completions are reported in the
// order transfers were submitted.
func TestPropertyCompletionMonotonic(t *testing.T) {
	f := func(sizes []uint8, latency uint8) bool {
		e := New()
		s := NewServer(e, 3, int(latency))
		var times []Time
		for _, sz := range sizes {
			s.Transfer(int(sz)+1, func(now Time) { times = append(times, now) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTransferArgMatchesTransfer pins that the pooled-continuation
// transfer completes at exactly the time the closure-based variants do,
// with the argument delivered intact.
func TestTransferArgMatchesTransfer(t *testing.T) {
	run := func(issue func(s *Server, e *Engine, at *Time)) Time {
		e := New()
		s := NewServer(e, 2, 7)
		var at Time
		s.Transfer(64, nil) // backlog so serialization queueing is in play
		issue(s, e, &at)
		e.Run()
		return at
	}
	want := run(func(s *Server, e *Engine, at *Time) {
		s.Transfer(32, func(now Time) { *at = now })
	})
	got := run(func(s *Server, e *Engine, at *Time) {
		s.TransferArg(32, func(now Time, arg int) {
			if arg != 99 {
				t.Fatalf("arg %d, want 99", arg)
			}
			*at = now
		}, 99)
	})
	if got != want || got == 0 {
		t.Fatalf("TransferArg completed at %d, Transfer at %d", got, want)
	}
}
