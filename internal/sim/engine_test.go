package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineZeroValue(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("fresh engine at %d, want 0", e.Now())
	}
	if e.Step() {
		t.Fatal("empty engine should have nothing to step")
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func(Time) { got = append(got, 3) })
	e.Schedule(10, func(Time) { got = append(got, 1) })
	e.Schedule(20, func(Time) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time %d, want 30", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events must run in insertion order, got %v", got)
		}
	}
}

func TestZeroDelayRunsSameCycle(t *testing.T) {
	e := New()
	var at Time = 999
	e.Schedule(7, func(now Time) {
		e.Schedule(0, func(now2 Time) { at = now2 })
	})
	e.Run()
	if at != 7 {
		t.Fatalf("zero-delay event ran at %d, want 7", at)
	}
}

func TestAtClampsPast(t *testing.T) {
	e := New()
	var ran Time
	e.Schedule(50, func(now Time) {
		e.At(10, func(now2 Time) { ran = now2 }) // in the past
	})
	e.Run()
	if ran != 50 {
		t.Fatalf("past-At event ran at %d, want clamped to 50", ran)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i*10), func(Time) { count++ })
	}
	if e.RunUntil(50) {
		t.Fatal("queue should not drain by t=50")
	}
	if count != 5 {
		t.Fatalf("ran %d events by t=50, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock at %d, want 50", e.Now())
	}
	if !e.RunUntil(1000) {
		t.Fatal("queue should drain by t=1000")
	}
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestExecutedCount(t *testing.T) {
	e := New()
	for i := 0; i < 25; i++ {
		e.Schedule(Time(i), func(Time) {})
	}
	e.Run()
	if e.Executed() != 25 {
		t.Fatalf("executed %d, want 25", e.Executed())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var recurse Event
	recurse = func(now Time) {
		depth++
		if depth < 100 {
			e.Schedule(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("final time %d, want 99", e.Now())
	}
}

// TestPropertyMonotonicTime verifies events never observe a clock that
// moves backwards, for arbitrary delay sequences.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New()
		last := Time(0)
		ok := true
		for _, d := range delays {
			e.Schedule(Time(d), func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyExecutionOrderMatchesSort verifies the engine visits
// events in the order of a stable sort by time.
func TestPropertyExecutionOrderMatchesSort(t *testing.T) {
	f := func(delays []uint8) bool {
		e := New()
		var visited []Time
		for _, d := range delays {
			e.Schedule(Time(d), func(now Time) { visited = append(visited, now) })
		}
		e.Run()
		sorted := append([]Time(nil), visited...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range visited {
			if visited[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var visits []Time
		var spawn Event
		n := 0
		spawn = func(now Time) {
			visits = append(visits, now)
			n++
			if n < 500 {
				e.Schedule(Time(rng.Intn(20)), spawn)
			}
		}
		e.Schedule(0, spawn)
		e.Run()
		return visits
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("determinism violated at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
