package sim

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatalf("no panic; want one mentioning %q", want)
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v; want one mentioning %q", p, want)
		}
	}()
	fn()
}

// TestParallelZeroLookaheadRejected pins the loud rejection of a zero
// lookahead bound: with it, a cross-shard event could land in the
// window being executed, and the conservative protocol would silently
// misorder it.
func TestParallelZeroLookaheadRejected(t *testing.T) {
	mustPanic(t, "zero lookahead", func() { NewParallel(2, 0) })
	mustPanic(t, "zero lookahead", func() { NewLockstep(2, 0) })
	mustPanic(t, "zero lookahead", func() { NewParallel(2, 5).SetLookahead(0) })
	mustPanic(t, "at least one shard", func() { NewParallel(0, 1) })
}

// TestParallelSubBoundSendRejected pins the loud rejection of a
// cross-shard send faster than the lookahead bound, in both modes, and
// of sends addressed to the sender's own shard.
func TestParallelSubBoundSendRejected(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func() *ParallelEngine
	}{
		{"windowed", func() *ParallelEngine { return NewParallel(2, 10) }},
		{"lockstep", func() *ParallelEngine { return NewLockstep(2, 10) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			mustPanic(t, "below the lookahead bound", func() {
				mode.mk().Send(0, 1, 9, func(Time) {})
			})
			mustPanic(t, "own shard", func() {
				mode.mk().Send(0, 0, 10, func(Time) {})
			})
			// Exactly the bound is legal: the fastest physical message.
			pe := mode.mk()
			ran := false
			pe.Send(0, 1, 10, func(now Time) {
				if now != 10 {
					t.Errorf("bound-delay send delivered @%d, want 10", now)
				}
				ran = true
			})
			pe.Run()
			if !ran {
				t.Fatal("send at exactly the lookahead bound was not delivered")
			}
		})
	}
}

// TestParallelNoteCrossValidates pins the runtime check the sharded
// model rides on: fabric deliveries faster than the derived bound panic
// instead of silently invalidating the window protocol.
func TestParallelNoteCrossValidates(t *testing.T) {
	pe := NewLockstep(3, 10)
	pe.Shard(0).Schedule(25, func(Time) {})
	pe.Run()
	pe.NoteCross(0, 1, 15) // elapsed 10 == bound: legal
	pe.NoteCross(1, 1, 25) // same shard: not a crossing
	if got := pe.CrossDelivered(); got != 1 {
		t.Fatalf("CrossDelivered = %d, want 1", got)
	}
	mustPanic(t, "below the lookahead bound", func() { pe.NoteCross(0, 1, 16) })
}

// TestParallelWindowAccounting pins the window protocol's observable
// bookkeeping on a hand-written program: delivery times, window count,
// per-shard event counts, and the pooled mailboxes ending empty.
func TestParallelWindowAccounting(t *testing.T) {
	pe := NewParallel(2, 8)
	var order []string
	pe.Shard(0).Schedule(3, func(now Time) {
		order = append(order, "a@3")
		pe.SendThunk(0, 1, 8, func() { order = append(order, "b@11") })
	})
	pe.Shard(1).Schedule(12, func(now Time) { order = append(order, "c@12") })
	pe.Run()
	if got, want := strings.Join(order, " "), "a@3 b@11 c@12"; got != want {
		t.Fatalf("execution order %q, want %q", got, want)
	}
	if pe.Executed() != 3 || pe.ShardExecuted(0) != 1 || pe.ShardExecuted(1) != 2 {
		t.Fatalf("event counts: total %d, shard0 %d, shard1 %d; want 3/1/2",
			pe.Executed(), pe.ShardExecuted(0), pe.ShardExecuted(1))
	}
	if pe.CrossDelivered() != 1 {
		t.Fatalf("CrossDelivered = %d, want 1", pe.CrossDelivered())
	}
	if pe.Windows() == 0 {
		t.Fatal("no synchronization windows recorded")
	}
	if pe.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", pe.Pending())
	}
}

// TestParallelRunUntilContract pins RunUntil's deadline semantics
// against the serial Engine contract: stop-and-park at the deadline,
// and a deadline in the past executing nothing.
func TestParallelRunUntilContract(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func() *ParallelEngine
	}{
		{"windowed", func() *ParallelEngine { return NewParallel(2, 4) }},
		{"lockstep", func() *ParallelEngine { return NewLockstep(2, 4) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			pe := mode.mk()
			var ran []Time
			pe.Shard(0).Schedule(5, func(now Time) { ran = append(ran, now) })
			pe.Shard(1).Schedule(50, func(now Time) { ran = append(ran, now) })
			if pe.RunUntil(20) {
				t.Fatal("RunUntil(20) reported drained with an event at 50 queued")
			}
			if len(ran) != 1 || ran[0] != 5 {
				t.Fatalf("after RunUntil(20): ran %v, want [5]", ran)
			}
			if pe.Now() != 20 {
				t.Fatalf("clock parked at %d, want 20", pe.Now())
			}
			// Past deadline: nothing executes, clock does not move back.
			if pe.RunUntil(3) {
				t.Fatal("past-deadline RunUntil reported drained")
			}
			if pe.Now() != 20 || len(ran) != 1 {
				t.Fatalf("past deadline moved state: now %d, ran %v", pe.Now(), ran)
			}
			if !pe.RunUntil(100) {
				t.Fatal("RunUntil(100) did not drain")
			}
			if len(ran) != 2 || ran[1] != 50 {
				t.Fatalf("after drain: ran %v, want [5 50]", ran)
			}
			// Drained + past deadline reports drained.
			if !pe.RunUntil(1) {
				t.Fatal("drained engine's past-deadline RunUntil reported pending work")
			}
		})
	}
}

// TestParallelReset pins that Reset returns a used engine (mailboxes,
// counters, shared stamp) to a state indistinguishable from fresh.
func TestParallelReset(t *testing.T) {
	pe := NewLockstep(2, 3)
	pe.Shard(0).Schedule(1, func(Time) { pe.SendThunk(0, 1, 3, func() {}) })
	pe.Run()
	pe.Reset()
	if pe.Now() != 0 || pe.Executed() != 0 || pe.Pending() != 0 || pe.CrossDelivered() != 0 {
		t.Fatalf("Reset left state: now %d exec %d pending %d cross %d",
			pe.Now(), pe.Executed(), pe.Pending(), pe.CrossDelivered())
	}
	if pe.gseq != 0 {
		t.Fatalf("Reset left shared stamp at %d", pe.gseq)
	}
	var got []Time
	pe.Shard(1).Schedule(2, func(now Time) { got = append(got, now) })
	pe.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("fresh run after Reset executed %v, want [2]", got)
	}
}

// benchParallel drives a steady-state message-passing load: each shard
// runs a local event chain and every fourth event posts a cross-shard
// message at the lookahead bound.
func benchParallel(b *testing.B, shards, workers int) {
	const lookahead = 64
	pe := NewParallel(shards, lookahead)
	pe.SetWorkers(workers)
	n := 0
	var chain func(shard int) func(Time)
	chain = func(shard int) func(Time) {
		var fn func(Time)
		fn = func(Time) {
			n++
			if n >= b.N {
				return
			}
			if n%4 == 0 && shards > 1 {
				dst := (shard + 1) % shards
				pe.Send(shard, dst, lookahead, chain(dst))
				return
			}
			pe.Shard(shard).Schedule(Time(n%13), fn)
		}
		return fn
	}
	b.ReportAllocs()
	b.ResetTimer()
	for s := 0; s < shards; s++ {
		pe.Shard(s).Schedule(1, chain(s))
	}
	pe.Run()
	b.StopTimer()
	if pe.Executed() == 0 {
		b.Fatal("no events executed")
	}
}

func BenchmarkParallelEngineShards1(b *testing.B) { benchParallel(b, 1, 1) }
func BenchmarkParallelEngineShards2(b *testing.B) { benchParallel(b, 2, 1) }
func BenchmarkParallelEngineShards4(b *testing.B) { benchParallel(b, 4, 1) }

// BenchmarkParallelEngineLockstep4 measures the lockstep executor's
// overhead over a plain serial engine: the price of running the model
// sharded on this 1-CPU container.
func BenchmarkParallelEngineLockstep4(b *testing.B) {
	pe := NewLockstep(4, 64)
	n := 0
	var fns [4]func(Time)
	for s := 0; s < 4; s++ {
		shard := s
		fns[s] = func(Time) {
			n++
			if n >= b.N {
				return
			}
			pe.Shard(shard).Schedule(Time(n%13), fns[shard])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for s := 0; s < 4; s++ {
		pe.Shard(s).Schedule(1, fns[s])
	}
	pe.Run()
}
