package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// multiEngine is the surface shared by the ParallelEngine and the two
// test oracles, letting one multi-shard program drive all of them.
type multiEngine interface {
	sched(i int) schedulerAPI
	send(src, dst int, delay Time, fn func())
	Run() Time
	RunUntil(Time) bool
	Now() Time
	ShardNow(i int) Time
	Executed() uint64
	Pending() int
	Cross() uint64
}

// peDriver adapts a ParallelEngine (either mode) to multiEngine.
type peDriver struct{ pe *ParallelEngine }

func (d peDriver) sched(i int) schedulerAPI { return d.pe.Shard(i) }
func (d peDriver) send(src, dst int, delay Time, fn func()) {
	d.pe.SendThunk(src, dst, delay, fn)
}
func (d peDriver) Run() Time            { return d.pe.Run() }
func (d peDriver) RunUntil(t Time) bool { return d.pe.RunUntil(t) }
func (d peDriver) Now() Time            { return d.pe.Now() }
func (d peDriver) ShardNow(i int) Time  { return d.pe.Shard(i).Now() }
func (d peDriver) Executed() uint64     { return d.pe.Executed() }
func (d peDriver) Pending() int         { return d.pe.Pending() }
func (d peDriver) Cross() uint64        { return d.pe.CrossDelivered() }

// flatRef is the lockstep-mode oracle: a single ReferenceEngine playing
// every shard. The lockstep executor's claim is that sharding is
// unobservable — all shards share one stamp counter and the globally
// next (time, seq) event always runs — so the flat engine, which
// trivially has that property, must produce the identical global trace.
type flatRef struct {
	eng       *ReferenceEngine
	lookahead Time
	crossN    uint64
}

func (f *flatRef) sched(int) schedulerAPI { return f.eng }
func (f *flatRef) send(src, dst int, delay Time, fn func()) {
	if src == dst {
		panic("send to own shard")
	}
	if delay < f.lookahead {
		panic("sub-bound send")
	}
	f.eng.ScheduleThunk(delay, fn)
	f.crossN++
}
func (f *flatRef) Run() Time            { return f.eng.Run() }
func (f *flatRef) RunUntil(t Time) bool { return f.eng.RunUntil(t) }
func (f *flatRef) Now() Time            { return f.eng.Now() }
func (f *flatRef) ShardNow(int) Time    { return f.eng.Now() }
func (f *flatRef) Executed() uint64     { return f.eng.Executed() }
func (f *flatRef) Pending() int         { return f.eng.Pending() }
func (f *flatRef) Cross() uint64        { return f.crossN }

// refParallel is the windowed-mode oracle: the conservative window
// protocol implemented naively over ReferenceEngine shards — no
// bucketing, no pooling, no goroutines. The production windowed
// executor must match it shard for shard.
type refParallel struct {
	shards    []*ReferenceEngine
	lookahead Time
	outbox    [][]crossMsg
	sendSeq   []uint64
	windows   uint64
	crossN    uint64
}

func newRefParallel(n int, lookahead Time) *refParallel {
	rp := &refParallel{lookahead: lookahead, outbox: make([][]crossMsg, n), sendSeq: make([]uint64, n)}
	for i := 0; i < n; i++ {
		rp.shards = append(rp.shards, NewReference())
	}
	return rp
}

func (rp *refParallel) sched(i int) schedulerAPI { return rp.shards[i] }

func (rp *refParallel) send(src, dst int, delay Time, fn func()) {
	if src == dst {
		panic("send to own shard")
	}
	if delay < rp.lookahead {
		panic("sub-bound send")
	}
	rp.sendSeq[src]++
	rp.outbox[src] = append(rp.outbox[src], crossMsg{
		at: rp.shards[src].Now() + delay, src: int32(src), dst: int32(dst),
		seq: rp.sendSeq[src], tfn: fn,
	})
}

func (rp *refParallel) merge() {
	var all []crossMsg
	for i := range rp.outbox {
		all = append(all, rp.outbox[i]...)
		rp.outbox[i] = nil
	}
	sort.Slice(all, func(i, j int) bool { return msgLess(all[i], all[j]) })
	for _, m := range all {
		rp.shards[m.dst].AtThunk(m.at, m.tfn)
		rp.crossN++
	}
}

func (rp *refParallel) minNext() (Time, bool) {
	var floor Time
	found := false
	for _, sh := range rp.shards {
		if len(sh.events) > 0 {
			if t := sh.events[0].at; !found || t < floor {
				floor, found = t, true
			}
		}
	}
	return floor, found
}

func (rp *refParallel) run(deadline Time, bounded bool) bool {
	for {
		rp.merge()
		floor, ok := rp.minNext()
		if !ok {
			return true
		}
		if bounded && floor > deadline {
			for _, sh := range rp.shards {
				if sh.now < deadline {
					sh.now = deadline
				}
			}
			return false
		}
		end := floor + rp.lookahead - 1
		if bounded && end > deadline {
			end = deadline
		}
		rp.windows++
		for _, sh := range rp.shards {
			sh.RunUntil(end)
		}
	}
}

func (rp *refParallel) Run() Time { rp.run(0, false); return rp.Now() }
func (rp *refParallel) RunUntil(deadline Time) bool {
	if deadline < rp.Now() {
		return rp.Pending() == 0
	}
	return rp.run(deadline, true)
}
func (rp *refParallel) Now() Time {
	var t Time
	for _, sh := range rp.shards {
		if sh.now > t {
			t = sh.now
		}
	}
	return t
}
func (rp *refParallel) ShardNow(i int) Time { return rp.shards[i].Now() }
func (rp *refParallel) Executed() uint64 {
	var n uint64
	for _, sh := range rp.shards {
		n += sh.nRun
	}
	return n
}
func (rp *refParallel) Pending() int {
	n := 0
	for _, sh := range rp.shards {
		n += sh.Pending()
	}
	for _, ob := range rp.outbox {
		n += len(ob)
	}
	return n
}
func (rp *refParallel) Cross() uint64 { return rp.crossN }

// gEntry is one global-trace record: which shard ran which op at what
// time. Only serial executions (lockstep, flat reference) record it.
type gEntry struct {
	shard int
	id    int
	at    Time
}

// pInterp replays a multi-shard opcode program. The op stream is split
// round-robin into per-shard streams at seed time, and every mutable
// interpreter cell (pc, id counter, trace) is per-shard, so execution
// is race-free and deterministic even when windowed shards run on
// concurrent goroutines. Cross-shard ops consume the destination
// shard's stream on delivery, exercising sends at exactly the lookahead
// bound and above it.
type pInterp struct {
	me        multiEngine
	n         int
	lookahead Time
	streams   [][]byte
	pcs       []int
	nextID    []int
	traces    [][]traceEntry
	global    *[]gEntry
}

func (in *pInterp) exec(shard int) bool {
	s := in.streams[shard]
	if in.pcs[shard] >= len(s) {
		return false
	}
	op := s[in.pcs[shard]]
	in.pcs[shard]++
	var val byte
	if in.pcs[shard] < len(s) {
		val = s[in.pcs[shard]]
		in.pcs[shard]++
	}
	id := shard<<20 | in.nextID[shard]
	in.nextID[shard]++
	record := func(sh int, now Time, asID int) {
		in.traces[sh] = append(in.traces[sh], traceEntry{id: asID, at: now})
		if in.global != nil {
			*in.global = append(*in.global, gEntry{shard: sh, id: asID, at: now})
		}
		in.exec(sh)
	}
	eng := in.me.sched(shard)
	switch op % 8 {
	case 0: // small constant delay — bucket hot path
		eng.Schedule(Time(val%64), func(now Time) { record(shard, now, id) })
	case 1: // zero delay — same-cycle FIFO
		eng.Schedule(0, func(now Time) { record(shard, now, id) })
	case 2: // far future — crosses the ring window into the heap
		eng.Schedule(ringSize+Time(val)*13, func(now Time) { record(shard, now, id) })
	case 3: // absolute time, sometimes in the past (clamps to now)
		eng.At(Time(val)*7, func(now Time) { record(shard, now, id) })
	case 4: // thunk variant
		eng.ScheduleThunk(Time(val%100), func() { record(shard, in.me.sched(shard).Now(), id) })
	case 5: // arg variant
		eng.ScheduleArg(Time(val%100), func(now Time, arg int) { record(shard, now, arg) }, id)
	case 6: // cross-shard send at exactly the lookahead bound
		dst := (shard + 1 + int(val)%(in.n-1)) % in.n
		in.me.send(shard, dst, in.lookahead, func() { record(dst, in.me.sched(dst).Now(), id) })
	case 7: // cross-shard send above the bound
		dst := (shard + 1 + int(val)%(in.n-1)) % in.n
		in.me.send(shard, dst, in.lookahead+Time(val%97), func() { record(dst, in.me.sched(dst).Now(), id) })
	}
	return true
}

// runMultiProgram seeds each shard, then drains the engine in uneven
// RunUntil slices — including deadlines in the past, which must execute
// nothing — before the final Run, mirroring runProgram.
func runMultiProgram(me multiEngine, n int, lookahead Time, ops []byte, global *[]gEntry) *pInterp {
	in := &pInterp{
		me: me, n: n, lookahead: lookahead,
		streams: make([][]byte, n), pcs: make([]int, n), nextID: make([]int, n),
		traces: make([][]traceEntry, n), global: global,
	}
	for i, b := range ops {
		in.streams[i%n] = append(in.streams[i%n], b)
	}
	for i := 0; i < 2*n; i++ {
		in.exec(i % n)
	}
	for d := Time(100); !me.RunUntil(d); d = d*3 + 41 {
		me.RunUntil(d / 2)
	}
	me.RunUntil(0)
	me.Run()
	return in
}

// diffShardTraces fails on the first per-shard divergence between two
// engines' observations.
func diffShardTraces(t *testing.T, ops []byte, what string, got, want [][]traceEntry) {
	t.Helper()
	for s := range got {
		n := len(got[s])
		if len(want[s]) < n {
			n = len(want[s])
		}
		for i := 0; i < n; i++ {
			if got[s][i] != want[s][i] {
				t.Fatalf("ops %x: %s: shard %d traces diverge at %d: got op %d @%d, want op %d @%d",
					ops, what, s, i, got[s][i].id, got[s][i].at, want[s][i].id, want[s][i].at)
			}
		}
		if len(got[s]) != len(want[s]) {
			t.Fatalf("ops %x: %s: shard %d trace lengths diverge: got %d events, want %d",
				ops, what, s, len(got[s]), len(want[s]))
		}
	}
}

func checkParallelEquivalence(t *testing.T, ops []byte) {
	t.Helper()
	n := 2 + len(ops)%3                // 2–4 shards
	lookahead := Time(1 + len(ops)%13) // includes the minimum legal bound 1

	// Lockstep mode vs a single flat reference engine: the global
	// (time, seq) schedule must be identical, shard boundaries and all.
	var peGlobal, refGlobal []gEntry
	ls := peDriver{NewLockstep(n, lookahead)}
	fr := &flatRef{eng: NewReference(), lookahead: lookahead}
	lsIn := runMultiProgram(ls, n, lookahead, ops, &peGlobal)
	frIn := runMultiProgram(fr, n, lookahead, ops, &refGlobal)
	for i := range peGlobal {
		if i >= len(refGlobal) || peGlobal[i] != refGlobal[i] {
			t.Fatalf("ops %x: lockstep global trace diverges from flat reference at %d", ops, i)
		}
	}
	if len(peGlobal) != len(refGlobal) {
		t.Fatalf("ops %x: lockstep global trace length %d, flat reference %d", ops, len(peGlobal), len(refGlobal))
	}
	diffShardTraces(t, ops, "lockstep vs flat", lsIn.traces, frIn.traces)
	if ls.Now() != fr.Now() || ls.Executed() != fr.Executed() || ls.Cross() != fr.Cross() {
		t.Fatalf("ops %x: lockstep state (now %d, exec %d, cross %d) vs flat reference (now %d, exec %d, cross %d)",
			ops, ls.Now(), ls.Executed(), ls.Cross(), fr.Now(), fr.Executed(), fr.Cross())
	}
	if ls.Pending() != 0 || fr.Pending() != 0 {
		t.Fatalf("ops %x: events left pending after drain: lockstep %d, flat reference %d", ops, ls.Pending(), fr.Pending())
	}

	// Windowed mode vs the naive windowed oracle over reference shards.
	w1 := peDriver{NewParallel(n, lookahead)}
	rp := newRefParallel(n, lookahead)
	w1In := runMultiProgram(w1, n, lookahead, ops, nil)
	rpIn := runMultiProgram(rp, n, lookahead, ops, nil)
	diffShardTraces(t, ops, "windowed vs reference oracle", w1In.traces, rpIn.traces)
	for i := 0; i < n; i++ {
		if w1.ShardNow(i) != rp.ShardNow(i) {
			t.Fatalf("ops %x: shard %d final clock %d, oracle %d", ops, i, w1.ShardNow(i), rp.ShardNow(i))
		}
	}
	if w1.Executed() != rp.Executed() || w1.Cross() != rp.Cross() {
		t.Fatalf("ops %x: windowed (exec %d, cross %d) vs oracle (exec %d, cross %d)",
			ops, w1.Executed(), w1.Cross(), rp.Executed(), rp.Cross())
	}
	if w1.pe.Windows() != rp.windows {
		t.Fatalf("ops %x: windowed executed %d windows, oracle %d", ops, w1.pe.Windows(), rp.windows)
	}
	if w1.Pending() != 0 || rp.Pending() != 0 {
		t.Fatalf("ops %x: events left pending after drain: windowed %d, oracle %d", ops, w1.Pending(), rp.Pending())
	}

	// Concurrent window execution (goroutine per shard) must produce the
	// same schedule as the sequential window execution above.
	w4pe := NewParallel(n, lookahead)
	w4pe.SetWorkers(4)
	w4 := peDriver{w4pe}
	w4In := runMultiProgram(w4, n, lookahead, ops, nil)
	diffShardTraces(t, ops, "workers=4 vs workers=1", w4In.traces, w1In.traces)
	if w4.Executed() != w1.Executed() || w4.Cross() != w1.Cross() {
		t.Fatalf("ops %x: workers=4 (exec %d, cross %d) vs workers=1 (exec %d, cross %d)",
			ops, w4.Executed(), w4.Cross(), w1.Executed(), w1.Cross())
	}
}

// TestParallelEquivalence differential-tests the ParallelEngine's two
// modes against their ReferenceEngine-based oracles on a deterministic
// battery of random multi-shard programs: lockstep must match a flat
// serial reference exactly (the byte-identity claim the golden tier
// rests on), windowed must match the naive window protocol over
// reference shards, and concurrent window execution must match
// sequential.
func TestParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rounds := 150
	if testing.Short() {
		rounds = 40 // the -race PR tier runs -short; nightly runs the full battery
	}
	for round := 0; round < rounds; round++ {
		ops := make([]byte, rng.Intn(300))
		rng.Read(ops)
		checkParallelEquivalence(t, ops)
	}
}

// FuzzParallelEquivalence lets the fuzzer hunt for a multi-shard
// program on which the ParallelEngine and its oracles disagree. Run
// longer with: go test -fuzz=FuzzParallelEquivalence ./internal/sim
func FuzzParallelEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{6, 0, 7, 50, 6, 1})
	f.Add([]byte{0, 5, 1, 0, 2, 3, 3, 255, 4, 9, 5, 70, 6, 12, 7, 3})
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 29)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048] // bound program size, not coverage
		}
		checkParallelEquivalence(t, ops)
	})
}
