package sim

import "container/heap"

// ReferenceEngine is the original binary-heap scheduler this package
// shipped with, kept compiled in as the executable specification of the
// (time, insertion-order) contract. It is deliberately boring: one
// container/heap ordered by (at, seq), no buckets, no pooling.
//
// The bucketed Engine must be observationally identical to it — same
// execution order, same clock, same Pending/Executed accounting — for
// every possible event program. TestSchedulerEquivalence and
// FuzzSchedulerEquivalence drive both implementations with the same
// inputs and fail on the first divergence; the engine benchmarks use it
// as the performance baseline. It is not used by the simulator itself.
type ReferenceEngine struct {
	now    Time
	seq    uint64
	events refHeap
	nRun   uint64
}

// NewReference returns a fresh reference engine with the clock at zero.
func NewReference() *ReferenceEngine { return &ReferenceEngine{} }

// Now reports the current virtual time.
func (e *ReferenceEngine) Now() Time { return e.now }

// Executed reports how many events have run so far.
func (e *ReferenceEngine) Executed() uint64 { return e.nRun }

// Pending reports how many events are waiting to run.
func (e *ReferenceEngine) Pending() int { return len(e.events) }

func (e *ReferenceEngine) insert(at Time, it scheduled) {
	e.seq++
	it.at = at
	it.seq = e.seq
	heap.Push(&e.events, it)
}

// Schedule runs fn after delay cycles, after all previously scheduled
// events for the target cycle.
func (e *ReferenceEngine) Schedule(delay Time, fn Event) {
	e.insert(e.now+delay, scheduled{fn: fn})
}

// ScheduleThunk is Schedule for a clock-ignoring callback.
func (e *ReferenceEngine) ScheduleThunk(delay Time, fn func()) {
	e.insert(e.now+delay, scheduled{tfn: fn})
}

// ScheduleArg runs fn(now, arg) after delay cycles.
func (e *ReferenceEngine) ScheduleArg(delay Time, fn ArgEvent, arg int) {
	e.insert(e.now+delay, scheduled{afn: fn, arg: arg})
}

// At runs fn at absolute time at, clamped to the present.
func (e *ReferenceEngine) At(at Time, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.insert(at, scheduled{fn: fn})
}

// AtThunk is At for a clock-ignoring callback.
func (e *ReferenceEngine) AtThunk(at Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.insert(at, scheduled{tfn: fn})
}

// AtArg runs fn(now, arg) at absolute time at, clamped to the present.
func (e *ReferenceEngine) AtArg(at Time, fn ArgEvent, arg int) {
	if at < e.now {
		at = e.now
	}
	e.insert(at, scheduled{afn: fn, arg: arg})
}

// Step executes the single next event and reports whether one existed.
func (e *ReferenceEngine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	it := heap.Pop(&e.events).(scheduled)
	e.now = it.at
	e.nRun++
	it.call(e.now)
	return true
}

// Run executes events until the queue drains and returns the final time.
func (e *ReferenceEngine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline. It returns true if the
// queue drained, false if the deadline stopped execution first. A
// deadline in the past executes nothing and leaves the clock where it
// is — virtual time never moves backward.
func (e *ReferenceEngine) RunUntil(deadline Time) bool {
	if deadline < e.now {
		return len(e.events) == 0
	}
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			e.now = deadline
			return false
		}
		e.Step()
	}
	return true
}

// Reset returns the engine to its zero state, discarding queued events.
func (e *ReferenceEngine) Reset() {
	e.events = nil
	e.now, e.seq, e.nRun = 0, 0, 0
}

// refHeap orders scheduled events by (at, seq) under container/heap.
type refHeap []scheduled

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *refHeap) Push(x any) { *h = append(*h, x.(scheduled)) }

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = scheduled{}
	*h = old[:n-1]
	return it
}
