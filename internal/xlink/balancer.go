package xlink

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// SaturationThreshold is the utilization at which the paper's policies
// consider a direction (or memory channel) saturated. The paper uses
// "projected link utilization above 99%"; in this model a fully
// backlogged server delivers ~97-98% of nominal bandwidth (latency
// bubbles and fractional-cycle effects), so 95% is the calibrated
// equivalent operating point.
const SaturationThreshold = 0.95

// donorCanSpare reports whether a direction running at util with the
// given lane count could lose one lane and still stay clear of
// saturation. This is the anti-thrash guard: read-symmetric workloads
// whose two directions hover around saturation never pass it, so lanes
// are only stolen when the donor has genuine headroom, and stealing
// stops exactly when one more turn would make the donor the new
// bottleneck.
func donorCanSpare(util float64, lanes int) bool {
	if lanes <= 1 {
		return false
	}
	projected := util * float64(lanes) / float64(lanes-1)
	return projected < SaturationThreshold
}

// Balancer is the dynamic link load balancer of Section 4: one per GPU
// link, sampling directional utilization every SampleTime cycles and
// re-pointing lanes toward the saturated direction.
//
// Per sample it applies the paper's rules:
//   - one direction saturated, the other not → turn one lane of the
//     unsaturated direction around (keeping at least one);
//   - both saturated while asymmetric → step back toward symmetric to
//     encourage global bandwidth equalization;
//   - otherwise → do nothing.
type Balancer struct {
	link   *Link
	sample sim.Time
	ticker *sim.Ticker
	lean   int // last window's imbalance: +1 egress-starved, -1 ingress-starved

	// Exponentially weighted moving averages of directional utilization
	// smooth single-window burst noise out of the decisions.
	avgE, avgI float64
	seeded     bool

	// Decisions counts sampling rounds; Reconfigs counts rounds that
	// moved a lane.
	Decisions stats.Counter
	Reconfigs stats.Counter
}

// NewBalancer attaches a balancer to link with the given sampling
// period in cycles.
func NewBalancer(link *Link, sampleTime int) *Balancer {
	if sampleTime < 1 {
		sampleTime = 1
	}
	return &Balancer{link: link, sample: sim.Time(sampleTime)}
}

// Start begins periodic sampling on eng. The balancer runs until Stop.
func (b *Balancer) Start(eng *sim.Engine) {
	b.link.ResetWindow(eng.Now())
	b.ticker = sim.NewTicker(eng, b.sample, b.Step)
	b.ticker.Start()
}

// Stop halts sampling after the current tick.
func (b *Balancer) Stop() {
	if b.ticker != nil {
		b.ticker.Stop()
	}
}

// Step runs one sampling decision at time now. Exposed for tests.
func (b *Balancer) Step(now sim.Time) {
	b.Decisions.Inc()
	const alpha = 0.5
	rawE := b.link.Utilization(Egress, now)
	rawI := b.link.Utilization(Ingress, now)
	if !b.seeded {
		// First window after a kernel launch: seed the averages and
		// observe only. Kernel ramp-up floods egress with requests
		// before responses flow back, a transient asymmetry that must
		// not trigger lane turns.
		b.avgE, b.avgI = rawE, rawI
		b.seeded = true
		b.link.ResetWindow(now)
		return
	}
	b.avgE = alpha*rawE + (1-alpha)*b.avgE
	b.avgI = alpha*rawI + (1-alpha)*b.avgI
	eU, iU := b.avgE, b.avgI
	satE := eU >= SaturationThreshold
	satI := iU >= SaturationThreshold

	// A turn is allowed when the donor has genuine headroom, or when it
	// holds the lane majority (turning toward symmetric can never leave
	// the link worse-balanced than its design point, and un-sticks
	// misallocated asymmetry left behind by an earlier phase).
	lanesE, lanesI := b.link.Lanes(Egress), b.link.Lanes(Ingress)
	lean := 0
	switch {
	case satE && !satI && (donorCanSpare(iU, lanesI) || lanesI > lanesE):
		lean = +1
	case satI && !satE && (donorCanSpare(eU, lanesE) || lanesE > lanesI):
		lean = -1
	}

	switch {
	case lean == +1 && b.lean == +1:
		// Egress starved two windows in a row: steal an ingress lane.
		if b.link.TurnLane(Ingress, Egress) {
			b.Reconfigs.Inc()
		}
	case lean == -1 && b.lean == -1:
		if b.link.TurnLane(Egress, Ingress) {
			b.Reconfigs.Inc()
		}
	case satE && satI:
		// Both oversubscribed: drift back toward symmetric to
		// encourage global bandwidth equalization.
		if b.link.Lanes(Egress) > b.link.Lanes(Ingress) {
			if b.link.TurnLane(Egress, Ingress) {
				b.Reconfigs.Inc()
			}
		} else if b.link.Lanes(Ingress) > b.link.Lanes(Egress) {
			if b.link.TurnLane(Ingress, Egress) {
				b.Reconfigs.Inc()
			}
		}
	}
	b.lean = lean
	b.link.ResetWindow(now)
}

// ResetState clears the persistence and smoothing state; the runtime
// calls it at kernel launches alongside the symmetric lane reset.
func (b *Balancer) ResetState() {
	b.lean = 0
	b.seeded = false
	b.avgE, b.avgI = 0, 0
}
