package xlink

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/topo"
)

// lineTopoConfig is a 3-socket line (0—1—2) with hand-picked per-edge
// parameters so multi-hop charges can be asserted cycle-exactly.
func lineTopoConfig() arch.Config {
	cfg := arch.TestConfig()
	cfg.Sockets = 3
	cfg.SwitchLatency = 16
	cfg.Topology = &topo.Topology{
		Sockets: make([]topo.SocketSpec, 3),
		Links: []topo.LinkSpec{
			// 2 B/cycle, 10-cycle wire, one switch hop after delivery.
			{A: 0, B: 1, LanesAB: 2, LanesBA: 2, LaneBandwidth: 1, LatencyAB: 10, LatencyBA: 10, HopsAB: 1, HopsBA: 1},
			// 4 B/cycle, 20-cycle wire, no hop.
			{A: 1, B: 2, LanesAB: 4, LanesBA: 4, LaneBandwidth: 1, LatencyAB: 20, LatencyBA: 20},
		},
	}
	return cfg
}

// TestMultiHopLatencyAccounting pins the exact delivery cycle of a
// two-link route: serialization + wire latency per link, plus the
// switch-hop charge between them.
func TestMultiHopLatencyAccounting(t *testing.T) {
	eng := sim.New()
	f := NewFabric(eng, lineTopoConfig())
	var at sim.Time
	f.Route(0, 2, 128, func(now sim.Time) { at = now })
	eng.Run()
	// Link 0-1: 128B at 2 B/c = 64 cycles + 10 wire = 74.
	// Switch hop: +16 = 90.
	// Link 1-2: starts at 90, 128B at 4 B/c = 32 cycles -> 122 + 20 wire = 142.
	if at != 142 {
		t.Fatalf("delivery at %d, want 142", at)
	}
	// Both traversed links carry the bytes; per-direction accounting.
	if f.LinkAt(0).Sent[Egress].Value() != 128 || f.LinkAt(1).Sent[Egress].Value() != 128 {
		t.Fatalf("egress bytes %d/%d, want 128/128",
			f.LinkAt(0).Sent[Egress].Value(), f.LinkAt(1).Sent[Egress].Value())
	}
	// And the reverse route uses the Ingress directions.
	f.RouteFunc(2, 0, 64, nil)
	eng.Run()
	if f.LinkAt(0).Sent[Ingress].Value() != 64 || f.LinkAt(1).Sent[Ingress].Value() != 64 {
		t.Fatal("reverse route must use the B→A directions")
	}
}

// TestDeterministicPathSelection: with two equal-cost equal-length
// routes, the fabric must deterministically prefer the one through the
// lower-numbered node.
func TestDeterministicPathSelection(t *testing.T) {
	cfg := arch.TestConfig()
	cfg.Sockets = 4
	mk := func(a, b int) topo.LinkSpec {
		return topo.LinkSpec{A: a, B: b, LanesAB: 2, LanesBA: 2, LaneBandwidth: 1, LatencyAB: 10, LatencyBA: 10}
	}
	// Diamond: 0→3 via 1 or via 2, identical costs.
	cfg.Topology = &topo.Topology{
		Sockets: make([]topo.SocketSpec, 4),
		Links:   []topo.LinkSpec{mk(0, 1), mk(1, 3), mk(0, 2), mk(2, 3)},
	}
	for i := 0; i < 3; i++ {
		f := NewFabric(sim.New(), cfg)
		got := f.PathLinks(0, 3)
		if len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("path 0→3 = %v, want [0 1] (via socket 1)", got)
		}
	}
	// Shorter-hop routes beat equal-latency longer ones: direct link
	// with the same total latency as the two-hop route must win.
	cfg.Topology.Links = append(cfg.Topology.Links,
		topo.LinkSpec{A: 0, B: 3, LanesAB: 1, LanesBA: 1, LaneBandwidth: 1, LatencyAB: 20, LatencyBA: 20})
	f := NewFabric(sim.New(), cfg)
	if got := f.PathLinks(0, 3); len(got) != 1 || got[0] != 4 {
		t.Fatalf("path 0→3 = %v, want [4] (direct, fewer edges)", got)
	}
}

// TestCrossbarPathsMatchLegacyStar: the synthesized crossbar routes
// every socket pair as src-link then dst-link, the legacy schedule.
func TestCrossbarPathsMatchLegacyStar(t *testing.T) {
	cfg := arch.TestConfig()
	f := NewFabric(sim.New(), cfg)
	for src := 0; src < cfg.Sockets; src++ {
		for dst := 0; dst < cfg.Sockets; dst++ {
			if src == dst {
				continue
			}
			got := f.PathLinks(arch.SocketID(src), arch.SocketID(dst))
			if len(got) != 2 || got[0] != src || got[1] != dst {
				t.Fatalf("path %d→%d = %v, want [%d %d]", src, dst, got, src, dst)
			}
		}
	}
}

// TestRouteAllocFree: the steady-state routing datapath — loopback and
// multi-hop, Event and func() callbacks — must not allocate per
// message. The loopback path used to build a per-message adapter
// closure; this pins the fix.
func TestRouteAllocFree(t *testing.T) {
	eng := sim.New()
	f := NewFabric(eng, arch.TestConfig())
	var delivered int
	doneEv := sim.Event(func(sim.Time) { delivered++ })
	doneFn := func() { delivered++ }

	// Warm the route-record pool, the engine's event storage, and the
	// servers.
	for i := 0; i < 64; i++ {
		f.Route(0, 2, 128, doneEv)
		f.RouteFunc(2, 1, 128, doneFn)
		f.Route(1, 1, 64, doneEv)
		f.RouteFunc(3, 3, 64, doneFn)
	}
	eng.Run()

	allocs := testing.AllocsPerRun(100, func() {
		f.Route(0, 2, 128, doneEv)
		f.RouteFunc(2, 1, 128, doneFn)
		f.Route(1, 1, 64, doneEv)
		f.RouteFunc(3, 3, 64, doneFn)
		f.Route(0, 3, 256, nil)
		eng.Run()
	})
	if allocs != 0 {
		t.Fatalf("routing datapath allocates %.1f/op, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("callbacks never fired")
	}
}

// TestAsymmetricLinkDesign: per-direction lane counts and latencies are
// honoured, and ResetDesign restores the asymmetric design point, not a
// symmetric split.
func TestAsymmetricLinkDesign(t *testing.T) {
	eng := sim.New()
	l := NewLinkAsym(eng, 6, 2, 1, 5, 9, 100)
	if l.Lanes(Egress) != 6 || l.Lanes(Ingress) != 2 || l.TotalLanes() != 8 {
		t.Fatalf("design lanes %d/%d of %d", l.Lanes(Egress), l.Lanes(Ingress), l.TotalLanes())
	}
	var at sim.Time
	l.Send(Ingress, 2, func(now sim.Time) { at = now })
	eng.Run()
	if at != 10 { // 2B at 2 B/c = 1 cycle + 9 wire
		t.Fatalf("ingress delivery at %d, want 10", at)
	}
	l.TurnLane(Egress, Ingress)
	l.TurnLane(Egress, Ingress)
	l.ResetDesign()
	if l.Lanes(Egress) != 6 || l.Lanes(Ingress) != 2 {
		t.Fatal("ResetDesign must restore the asymmetric design split")
	}
	if l.Bandwidth(Egress) != 6 || l.Bandwidth(Ingress) != 2 {
		t.Fatal("ResetDesign must restore design bandwidths")
	}
}

// TestPortIngressBandwidth sums inbound capacity over every incident
// link, in the direction pointing at the socket.
func TestPortIngressBandwidth(t *testing.T) {
	eng := sim.New()
	f := NewFabric(eng, lineTopoConfig())
	// Socket 1 sits on both links: inbound 0→1 (2 B/c) + 2→1 (4 B/c).
	if got := f.Port(1).IngressBandwidth(); got != 6 {
		t.Fatalf("socket 1 ingress bandwidth %v, want 6", got)
	}
	// Socket 0 receives only over link 0 in the B→A direction.
	if got := f.Port(0).IngressBandwidth(); got != 2 {
		t.Fatalf("socket 0 ingress bandwidth %v, want 2", got)
	}
}
