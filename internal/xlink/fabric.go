package xlink

import (
	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Fabric is the inter-socket interconnect, modelled as a graph of
// physical links between sockets and switch nodes. Messages follow
// precomputed deterministic shortest paths, paying each traversed
// link's serialization + wire latency and each switch hop's latency.
//
// A nil Config.Topology synthesizes the paper's symmetric crossbar as
// an explicit star (topo.Crossbar), whose per-message event schedule is
// byte-identical to the pre-topology hard-wired fabric. The paper's
// switch keeps total bandwidth constant; the per-port links are the
// bottleneck, so switch nodes contribute only latency.
type Fabric struct {
	eng       *sim.Engine
	top       *topo.Topology
	switchLat sim.Time

	links []*Link // one per topology link, in topology order
	ports []Port  // one per socket: its incident links
	paths [][][]pathHop

	// Pooled route walker: in-flight messages live in recs, indexed by
	// the arg threaded through the two long-lived ArgEvents, so the
	// steady-state datapath allocates nothing per message.
	recs   []routeRec
	freeRl []int
	hopEv  sim.ArgEvent
	stepEv sim.ArgEvent

	// Sharded execution (EnableSharding): every delivery is checked
	// against the ParallelEngine's lookahead bound via the (sentAt, src)
	// stamp carried on its route record.
	pe      *sim.ParallelEngine
	shardOf func(arch.SocketID) int
}

// pathHop is one precomputed traversal: a physical link, the direction
// to cross it in, and the switch latency charged after delivery at the
// far end (hops × Config.SwitchLatency).
type pathHop struct {
	link *Link
	dir  Direction
	post sim.Time
}

// routeRec is one in-flight routed message. src/dst/sentAt are the
// cross-shard stamp: where the message entered the fabric and when,
// validated against the lookahead bound at delivery when sharding is
// enabled.
type routeRec struct {
	path   []pathHop
	pos    int
	size   int
	src    arch.SocketID
	dst    arch.SocketID
	sentAt sim.Time
	doneEv sim.Event
	doneFn func()
}

// NewFabric builds the fabric for a system described by cfg. It panics
// on an invalid or mismatched topology; arch.Config.Validate rejects
// those earlier on every external input path.
func NewFabric(eng *sim.Engine, cfg arch.Config) *Fabric {
	t := cfg.Topology
	synthesized := t == nil
	if synthesized {
		t = topo.Crossbar(cfg.Sockets, cfg.LanesPerDir, cfg.LaneBandwidth, cfg.LinkLatency)
	} else if err := t.Validate(); err != nil {
		panic(err)
	} else if len(t.Sockets) != cfg.Sockets {
		panic("xlink: topology socket count does not match Config.Sockets")
	}
	f := &Fabric{eng: eng, top: t, switchLat: sim.Time(cfg.SwitchLatency)}
	f.hopEv = f.hopDone
	f.stepEv = f.step

	for _, ls := range t.Links {
		lanesAB, lanesBA := ls.LanesAB, ls.LanesBA
		laneBW := ls.LaneBandwidth
		latAB, latBA := ls.LatencyAB, ls.LatencyBA
		if !synthesized {
			// User-supplied topologies inherit Config defaults for
			// omitted (zero) fields. The synthesized crossbar is taken
			// verbatim: its latency halves are exact, including a zero
			// half when LinkLatency is odd and small.
			if lanesAB == 0 {
				lanesAB = cfg.LanesPerDir
			}
			if lanesBA == 0 {
				lanesBA = cfg.LanesPerDir
			}
			if laneBW == 0 {
				laneBW = cfg.LaneBandwidth
			}
			if latAB == 0 {
				latAB = cfg.LinkLatency
			}
			if latBA == 0 {
				latBA = cfg.LinkLatency
			}
		}
		l := NewLinkAsym(eng, lanesAB, lanesBA, laneBW, latAB, latBA, cfg.LaneSwitchTime)
		l.name = t.NodeName(ls.A) + "-" + t.NodeName(ls.B)
		f.links = append(f.links, l)
	}

	f.buildPorts()
	f.buildPaths()
	return f
}

// Port is a socket's attachment point to the fabric: the set of
// incident physical links with their inbound direction, from which the
// cache policies read the socket's aggregate ingress capacity.
type Port struct {
	links []*Link
	inDir []Direction
}

// IngressBandwidth reports the socket's current total inbound capacity
// in bytes/cycle across all incident links.
func (p *Port) IngressBandwidth() float64 {
	var bw float64
	for i, l := range p.links {
		bw += l.Bandwidth(p.inDir[i])
	}
	return bw
}

// PortOf wraps a single directly-constructed link as a socket port with
// the link's Ingress direction inbound; unit tests use it to drive a
// Socket without a full fabric.
func PortOf(l *Link) *Port {
	return &Port{links: []*Link{l}, inDir: []Direction{Ingress}}
}

func (f *Fabric) buildPorts() {
	f.ports = make([]Port, len(f.top.Sockets))
	for li, ls := range f.top.Links {
		if ls.A < len(f.ports) {
			p := &f.ports[ls.A]
			p.links = append(p.links, f.links[li])
			p.inDir = append(p.inDir, Ingress) // B→A arrives at A
		}
		if ls.B < len(f.ports) {
			p := &f.ports[ls.B]
			p.links = append(p.links, f.links[li])
			p.inDir = append(p.inDir, Egress) // A→B arrives at B
		}
	}
}

// buildPaths precomputes the route from every socket to every socket
// with a deterministic Dijkstra: edge weight is the traversal latency
// plus its switch-hop charge; ties break toward fewer edges, then
// toward the path settled first (nodes are settled in (cost, edges, id)
// order, so equal-cost routes prefer lower-numbered nodes). Link order
// in the topology fixes the adjacency scan order, which is why it is
// part of the canonical encoding.
func (f *Fabric) buildPaths() {
	n := f.top.Nodes()
	sockets := len(f.top.Sockets)

	type dirEdge struct {
		to   int
		link *Link
		dir  Direction
		cost sim.Time
		post sim.Time
	}
	adj := make([][]dirEdge, n)
	for li, ls := range f.top.Links {
		l := f.links[li]
		postAB := sim.Time(ls.HopsAB) * f.switchLat
		postBA := sim.Time(ls.HopsBA) * f.switchLat
		adj[ls.A] = append(adj[ls.A], dirEdge{
			to: ls.B, link: l, dir: Egress,
			cost: l.srv[Egress].Latency() + postAB, post: postAB,
		})
		adj[ls.B] = append(adj[ls.B], dirEdge{
			to: ls.A, link: l, dir: Ingress,
			cost: l.srv[Ingress].Latency() + postBA, post: postBA,
		})
	}

	f.paths = make([][][]pathHop, sockets)
	const inf = sim.Time(1) << 62
	for src := 0; src < sockets; src++ {
		dist := make([]sim.Time, n)
		edges := make([]int, n)
		pred := make([]dirEdge, n)
		hasPred := make([]bool, n)
		done := make([]bool, n)
		for v := range dist {
			dist[v] = inf
		}
		dist[src] = 0
		for {
			u := -1
			for v := 0; v < n; v++ {
				if done[v] || dist[v] == inf {
					continue
				}
				if u == -1 || dist[v] < dist[u] || (dist[v] == dist[u] && edges[v] < edges[u]) {
					u = v
				}
			}
			if u == -1 {
				break
			}
			done[u] = true
			for _, e := range adj[u] {
				nc, ne := dist[u]+e.cost, edges[u]+1
				if nc < dist[e.to] || (nc == dist[e.to] && ne < edges[e.to]) {
					dist[e.to] = nc
					edges[e.to] = ne
					pred[e.to] = e
					pred[e.to].to = u // repurpose: predecessor node
					hasPred[e.to] = true
				}
			}
		}
		f.paths[src] = make([][]pathHop, sockets)
		for dst := 0; dst < sockets; dst++ {
			if dst == src {
				continue
			}
			var rev []pathHop
			for v := dst; v != src; v = pred[v].to {
				if !hasPred[v] {
					panic("xlink: no route " + f.top.NodeName(src) + "→" + f.top.NodeName(dst))
				}
				e := pred[v]
				rev = append(rev, pathHop{link: e.link, dir: e.dir, post: e.post})
			}
			path := make([]pathHop, len(rev))
			for i := range rev {
				path[i] = rev[len(rev)-1-i]
			}
			f.paths[src][dst] = path
		}
	}
}

// NumLinks reports the physical link count of the fabric.
func (f *Fabric) NumLinks() int { return len(f.links) }

// LinkAt returns physical link i in topology order.
func (f *Fabric) LinkAt(i int) *Link { return f.links[i] }

// Port returns socket s's attachment point.
func (f *Fabric) Port(s arch.SocketID) *Port { return &f.ports[s] }

// Topology returns the fabric's (possibly synthesized) topology.
func (f *Fabric) Topology() *topo.Topology { return f.top }

// PathLinks reports the physical link indices traversed from src to
// dst, in order; tests use it to pin deterministic path selection.
func (f *Fabric) PathLinks(src, dst arch.SocketID) []int {
	var out []int
	for _, h := range f.paths[src][dst] {
		for i, l := range f.links {
			if l == h.link {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// acquire takes a pooled route record for a size-byte message entering
// the fabric now at src, bound for dst.
func (f *Fabric) acquire(src, dst arch.SocketID, size int) int {
	var idx int
	if n := len(f.freeRl); n > 0 {
		idx = f.freeRl[n-1]
		f.freeRl = f.freeRl[:n-1]
	} else {
		f.recs = append(f.recs, routeRec{})
		idx = len(f.recs) - 1
	}
	r := &f.recs[idx]
	r.path, r.pos, r.size = f.paths[src][dst], 0, size
	r.src, r.dst, r.sentAt = src, dst, f.eng.Now()
	return idx
}

// hopDone fires when a message finishes one link traversal: charge the
// edge's switch-hop latency, then continue the walk.
func (f *Fabric) hopDone(now sim.Time, arg int) {
	r := &f.recs[arg]
	post := r.path[r.pos].post
	r.pos++
	if post > 0 {
		f.eng.ScheduleArg(post, f.stepEv, arg)
		return
	}
	f.step(now, arg)
}

// step sends the message down its next link, or delivers it.
func (f *Fabric) step(now sim.Time, arg int) {
	r := &f.recs[arg]
	if r.pos < len(r.path) {
		h := r.path[r.pos]
		h.link.SendArg(h.dir, r.size, f.hopEv, arg)
		return
	}
	doneEv, doneFn := r.doneEv, r.doneFn
	if f.pe != nil {
		// Delivered: the stamp proves this crossing respected the
		// lookahead bound (NoteCross panics otherwise).
		f.pe.NoteCross(f.shardOf(r.src), f.shardOf(r.dst), r.sentAt)
	}
	r.path, r.doneEv, r.doneFn = nil, nil, nil
	f.freeRl = append(f.freeRl, arg)
	if doneEv != nil {
		doneEv(now)
	} else if doneFn != nil {
		doneFn()
	}
}

// Route delivers a size-byte message from socket src to socket dst
// along the precomputed path. done fires when the message arrives at
// dst and may be nil.
func (f *Fabric) Route(src, dst arch.SocketID, size int, done sim.Event) {
	if src == dst {
		// Degenerate but legal: loopback costs only switch latency.
		if done != nil {
			f.eng.Schedule(f.switchLat, done)
		}
		return
	}
	idx := f.acquire(src, dst, size)
	f.recs[idx].doneEv = done
	f.step(f.eng.Now(), idx)
}

// RouteFunc is Route for a clock-ignoring delivery callback; the
// core-package remote memory protocol uses it to queue its func()
// continuations without per-message adapter closures.
func (f *Fabric) RouteFunc(src, dst arch.SocketID, size int, done func()) {
	if src == dst {
		if done != nil {
			f.eng.ScheduleThunk(f.switchLat, done)
		}
		return
	}
	idx := f.acquire(src, dst, size)
	f.recs[idx].doneFn = done
	f.step(f.eng.Now(), idx)
}

// PathCost reports the unloaded latency of the precomputed src→dst
// route: the sum over its hops of link pipeline latency plus switch
// charges. Serialization and queueing only add on top (sim.Server never
// completes a transfer before its fixed latency, and the balancer
// re-points lanes without touching latencies), so PathCost is a hard
// lower bound on how fast any message can make the crossing. src == dst
// reports the loopback switch charge.
func (f *Fabric) PathCost(src, dst arch.SocketID) sim.Time {
	if src == dst {
		return f.switchLat
	}
	var c sim.Time
	for _, h := range f.paths[src][dst] {
		c += h.link.srv[h.dir].Latency() + h.post
	}
	return c
}

// MinPathCost reports the smallest PathCost over all ordered pairs of
// distinct sockets: the fastest any socket can causally affect another
// through the fabric, and therefore the conservative lookahead bound
// for sharded execution (sim.ParallelEngine). Zero for single-socket
// topologies, which have no inter-socket path.
func (f *Fabric) MinPathCost() sim.Time {
	var best sim.Time
	found := false
	for src := range f.ports {
		for dst := range f.ports {
			if src == dst {
				continue
			}
			c := f.PathCost(arch.SocketID(src), arch.SocketID(dst))
			if !found || c < best {
				best, found = c, true
			}
		}
	}
	if !found {
		return 0
	}
	return best
}

// EnableSharding attaches the fabric to a sharded execution: shardOf
// maps each socket to its engine shard, and from now on every delivered
// route is checked against pe's lookahead bound using the (sentAt, src)
// stamp on its record — the runtime proof that no cross-shard
// interaction in the run beat the bound the windows were derived from.
// pe.NoteCross panics loudly on a violation. Call before any traffic.
func (f *Fabric) EnableSharding(pe *sim.ParallelEngine, shardOf func(arch.SocketID) int) {
	f.pe = pe
	f.shardOf = shardOf
}

// ResetDesign restores every link to its design-time lane assignment
// and opens fresh sampling windows (invoked at kernel launches).
func (f *Fabric) ResetDesign(now sim.Time) {
	for _, l := range f.links {
		l.ResetDesign()
		l.ResetWindow(now)
	}
}

// TotalBytes reports lifetime bytes moved across all links in both
// directions: the quantity the Section 6 power model charges at
// 10 pJ/bit.
func (f *Fabric) TotalBytes() uint64 {
	var t uint64
	for _, l := range f.links {
		t += l.Sent[Egress].Value() + l.Sent[Ingress].Value()
	}
	return t
}
