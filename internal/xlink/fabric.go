package xlink

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Fabric is the switched interconnect connecting every GPU socket: one
// Link per socket plus a non-blocking switch. The paper's switch keeps
// total bandwidth constant; the per-port links are the bottleneck, so
// the switch contributes only latency.
type Fabric struct {
	eng       *sim.Engine
	links     []*Link
	switchLat sim.Time
}

// NewFabric builds the fabric for a system described by cfg.
func NewFabric(eng *sim.Engine, cfg arch.Config) *Fabric {
	f := &Fabric{eng: eng, switchLat: sim.Time(cfg.SwitchLatency)}
	for i := 0; i < cfg.Sockets; i++ {
		f.links = append(f.links, NewLink(eng, cfg.LanesPerDir, cfg.LaneBandwidth, cfg.LinkLatency, cfg.LaneSwitchTime))
	}
	return f
}

// Link returns socket s's link.
func (f *Fabric) Link(s arch.SocketID) *Link { return f.links[s] }

// NumLinks reports the socket/link count.
func (f *Fabric) NumLinks() int { return len(f.links) }

// Route delivers a size-byte message from socket src to socket dst:
// egress on src's link, switch traversal, ingress on dst's link. done
// fires when the message arrives at dst and may be nil.
func (f *Fabric) Route(src, dst arch.SocketID, size int, done sim.Event) {
	if src == dst {
		// Degenerate but legal: loopback costs only switch latency.
		f.eng.Schedule(f.switchLat, func(now sim.Time) {
			if done != nil {
				done(now)
			}
		})
		return
	}
	f.links[src].Send(Egress, size, func(sim.Time) {
		f.eng.Schedule(f.switchLat, func(sim.Time) {
			f.links[dst].Send(Ingress, size, done)
		})
	})
}

// RouteFunc is Route for a clock-ignoring delivery callback; the
// core-package remote memory protocol uses it to queue its func()
// continuations without per-message adapter closures.
func (f *Fabric) RouteFunc(src, dst arch.SocketID, size int, done func()) {
	if src == dst {
		if done != nil {
			f.eng.ScheduleThunk(f.switchLat, done)
		}
		return
	}
	f.links[src].Send(Egress, size, func(sim.Time) {
		f.eng.Schedule(f.switchLat, func(sim.Time) {
			f.links[dst].SendFunc(Ingress, size, done)
		})
	})
}

// ResetSymmetric restores every link to the symmetric assignment and
// opens fresh sampling windows (invoked at kernel launches).
func (f *Fabric) ResetSymmetric(now sim.Time) {
	for _, l := range f.links {
		l.ResetSymmetric()
		l.ResetWindow(now)
	}
}

// TotalBytes reports lifetime bytes moved across all links in both
// directions: the quantity the Section 6 power model charges at
// 10 pJ/bit.
func (f *Fabric) TotalBytes() uint64 {
	var t uint64
	for _, l := range f.links {
		t += l.Sent[Egress].Value() + l.Sent[Ingress].Value()
	}
	return t
}
