package xlink

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/sim"
)

func newTestLink(eng *sim.Engine) *Link {
	// 8 lanes per direction × 1 B/cycle, 128-cycle one-way, 100-cycle turn.
	return NewLink(eng, 8, 1, 128, 100)
}

func TestLinkDefaults(t *testing.T) {
	eng := sim.New()
	l := newTestLink(eng)
	if l.Lanes(Egress) != 8 || l.Lanes(Ingress) != 8 {
		t.Fatal("default lanes must be symmetric")
	}
	if l.TotalLanes() != 16 {
		t.Fatal("total lanes wrong")
	}
	if l.Bandwidth(Egress) != 8 {
		t.Fatalf("egress bandwidth %v, want 8", l.Bandwidth(Egress))
	}
}

func TestLinkSendLatency(t *testing.T) {
	eng := sim.New()
	l := newTestLink(eng)
	var at sim.Time
	l.Send(Egress, 8, func(now sim.Time) { at = now })
	eng.Run()
	// 8B at 8 B/c = 1 cycle + 64 cycles (half of 128 one-way).
	if at != 65 {
		t.Fatalf("delivery at %d, want 65", at)
	}
	if l.Sent[Egress].Value() != 8 {
		t.Fatal("egress byte counter wrong")
	}
}

func TestTurnLane(t *testing.T) {
	eng := sim.New()
	l := newTestLink(eng)
	if !l.TurnLane(Ingress, Egress) {
		t.Fatal("turn must succeed")
	}
	if l.Lanes(Egress) != 9 || l.Lanes(Ingress) != 7 {
		t.Fatalf("lanes %d/%d, want 9/7", l.Lanes(Egress), l.Lanes(Ingress))
	}
	// Donor loses bandwidth immediately.
	if l.Bandwidth(Ingress) != 7 {
		t.Fatalf("ingress bandwidth %v, want 7 immediately", l.Bandwidth(Ingress))
	}
	// Receiver gains only after the switch time.
	if l.Bandwidth(Egress) != 8 {
		t.Fatalf("egress bandwidth %v, want 8 before switch completes", l.Bandwidth(Egress))
	}
	eng.Run()
	if l.Bandwidth(Egress) != 9 {
		t.Fatalf("egress bandwidth %v, want 9 after switch", l.Bandwidth(Egress))
	}
	if l.Turns.Value() != 1 {
		t.Fatal("turn counter wrong")
	}
}

func TestTurnLaneMinimumOne(t *testing.T) {
	eng := sim.New()
	l := newTestLink(eng)
	for i := 0; i < 7; i++ {
		if !l.TurnLane(Ingress, Egress) {
			t.Fatalf("turn %d must succeed", i)
		}
	}
	if l.TurnLane(Ingress, Egress) {
		t.Fatal("last ingress lane must never be turned")
	}
	if l.Lanes(Ingress) != 1 || l.Lanes(Egress) != 15 {
		t.Fatalf("lanes %d/%d, want 15/1", l.Lanes(Egress), l.Lanes(Ingress))
	}
}

func TestTurnLaneSelfRejected(t *testing.T) {
	eng := sim.New()
	l := newTestLink(eng)
	if l.TurnLane(Egress, Egress) {
		t.Fatal("self-turn must be rejected")
	}
}

func TestResetDesign(t *testing.T) {
	eng := sim.New()
	l := newTestLink(eng)
	l.TurnLane(Ingress, Egress)
	l.TurnLane(Ingress, Egress)
	l.ResetDesign()
	if l.Lanes(Egress) != 8 || l.Lanes(Ingress) != 8 {
		t.Fatal("reset must restore symmetry")
	}
	if l.Bandwidth(Egress) != 8 || l.Bandwidth(Ingress) != 8 {
		t.Fatal("reset must restore bandwidth immediately")
	}
	// The pending turn completion from before the reset must not
	// clobber the restored bandwidth.
	eng.Run()
	if l.Bandwidth(Egress) != 8 {
		t.Fatalf("stale turn completion resurfaced: egress %v", l.Bandwidth(Egress))
	}
}

func TestUtilizationWindows(t *testing.T) {
	eng := sim.New()
	l := newTestLink(eng)
	l.ResetWindow(0)
	l.Send(Egress, 400, nil)
	eng.Run()
	// 400B over 100 cycles at 8 B/c = 0.5.
	if u := l.Utilization(Egress, 100); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
	if u := l.Utilization(Ingress, 100); u != 0 {
		t.Fatal("idle direction must read 0")
	}
	l.ResetWindow(100)
	if u := l.Utilization(Egress, 200); u != 0 {
		t.Fatal("fresh window must read 0")
	}
}

func TestProfileWindowIndependent(t *testing.T) {
	eng := sim.New()
	l := newTestLink(eng)
	l.ResetWindow(0)
	l.ResetProfileWindow(0)
	l.Send(Egress, 160, nil)
	eng.Run()
	l.ResetWindow(50) // balancer consumed its window
	if u := l.ProfileUtilization(Egress, 100); u < 0.19 || u > 0.21 {
		t.Fatalf("profile utilization %v, want 0.2 (160B/800B)", u)
	}
}

// TestPropertyLaneConservation: any sequence of turns and resets keeps
// the total lane count and at least one lane per direction.
func TestPropertyLaneConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.New()
		l := newTestLink(eng)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				l.TurnLane(Ingress, Egress)
			case 1:
				l.TurnLane(Egress, Ingress)
			case 2:
				l.ResetDesign()
			case 3:
				eng.Step()
			}
			if l.Lanes(Egress)+l.Lanes(Ingress) != 16 {
				return false
			}
			if l.Lanes(Egress) < 1 || l.Lanes(Ingress) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFabricRoute(t *testing.T) {
	eng := sim.New()
	cfg := arch.TestConfig()
	f := NewFabric(eng, cfg)
	if f.NumLinks() != cfg.Sockets {
		t.Fatalf("links %d, want %d", f.NumLinks(), cfg.Sockets)
	}
	var at sim.Time
	f.Route(0, 2, 128, func(now sim.Time) { at = now })
	eng.Run()
	min := sim.Time(cfg.LinkLatency + cfg.SwitchLatency)
	if at < min {
		t.Fatalf("delivery at %d, faster than latency floor %d", at, min)
	}
	// Bytes appear on src egress and dst ingress.
	if f.LinkAt(0).Sent[Egress].Value() != 128 {
		t.Fatal("source egress bytes missing")
	}
	if f.LinkAt(2).Sent[Ingress].Value() != 128 {
		t.Fatal("destination ingress bytes missing")
	}
	if f.TotalBytes() != 256 {
		t.Fatalf("fabric total %d, want 256", f.TotalBytes())
	}
}

func TestFabricLoopback(t *testing.T) {
	eng := sim.New()
	f := NewFabric(eng, arch.TestConfig())
	ran := false
	f.Route(1, 1, 64, func(sim.Time) { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("loopback route must still deliver")
	}
	if f.LinkAt(1).Sent[Egress].Value() != 0 {
		t.Fatal("loopback must not use the link")
	}
}

func TestFabricResetDesign(t *testing.T) {
	eng := sim.New()
	f := NewFabric(eng, arch.TestConfig())
	f.LinkAt(0).TurnLane(Ingress, Egress)
	f.ResetDesign(0)
	if f.LinkAt(0).Lanes(Egress) != f.LinkAt(0).Lanes(Ingress) {
		t.Fatal("fabric reset must restore all links")
	}
}

// TestPropertyRouteConservation: every routed message adds exactly its
// size to src egress and dst ingress.
func TestPropertyRouteConservation(t *testing.T) {
	f := func(msgs []uint16) bool {
		eng := sim.New()
		fab := NewFabric(eng, arch.TestConfig())
		var wantE, wantI [4]uint64
		for i, m := range msgs {
			src := arch.SocketID(i % 4)
			dst := arch.SocketID((i + 1 + int(m)%3) % 4)
			size := int(m%512) + 1
			fab.Route(src, dst, size, nil)
			wantE[src] += uint64(size)
			wantI[dst] += uint64(size)
		}
		eng.Run()
		for s := 0; s < 4; s++ {
			if fab.LinkAt(s).Sent[Egress].Value() != wantE[s] {
				return false
			}
			if fab.LinkAt(s).Sent[Ingress].Value() != wantI[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
