package xlink

import (
	"testing"

	"repro/internal/sim"
)

// clock hands out successive 1000-cycle window boundaries; the fire-
// and-forget sends below schedule no events, so window time must be
// tracked explicitly rather than via the engine clock.
type clock struct{ at sim.Time }

// drive pushes bytes into both directions, advances one window, and
// steps the balancer at its boundary.
func (c *clock) drive(eng *sim.Engine, l *Link, b *Balancer, egress, ingress int) {
	l.Send(Egress, egress, nil)
	l.Send(Ingress, ingress, nil)
	c.at += 1000
	eng.RunUntil(c.at)
	b.Step(c.at)
}

func newBalancedLink() (*sim.Engine, *Link, *Balancer, *clock) {
	eng := sim.New()
	l := NewLink(eng, 8, 1, 0, 10) // 8 B/c per direction, no latency
	b := NewBalancer(l, 1000)
	l.ResetWindow(0)
	return eng, l, b, &clock{}
}

func TestBalancerStealsForSaturatedEgress(t *testing.T) {
	eng, l, b, ck := newBalancedLink()
	// Window capacity is 8000 bytes. Egress saturated, ingress idle.
	// Window 1 seeds the EWMA (observe only), then two confirming
	// windows are needed for the first turn.
	for i := 0; i < 4; i++ {
		ck.drive(eng, l, b, 8000, 100)
	}
	if l.Lanes(Egress) <= 8 {
		t.Fatalf("egress lanes %d, want > 8 after sustained saturation", l.Lanes(Egress))
	}
	if b.Reconfigs.Value() == 0 {
		t.Fatal("reconfigs counter must advance")
	}
}

func TestBalancerStealsForSaturatedIngress(t *testing.T) {
	eng, l, b, ck := newBalancedLink()
	for i := 0; i < 4; i++ {
		ck.drive(eng, l, b, 100, 8000)
	}
	if l.Lanes(Ingress) <= 8 {
		t.Fatalf("ingress lanes %d, want > 8", l.Lanes(Ingress))
	}
}

func TestBalancerIgnoresSymmetricSaturation(t *testing.T) {
	eng, l, b, ck := newBalancedLink()
	for i := 0; i < 6; i++ {
		ck.drive(eng, l, b, 8000, 8000)
	}
	if l.Lanes(Egress) != 8 || l.Lanes(Ingress) != 8 {
		t.Fatalf("lanes %d/%d, symmetric saturation must not reconfigure",
			l.Lanes(Egress), l.Lanes(Ingress))
	}
}

func TestBalancerIdleDoesNothing(t *testing.T) {
	eng, l, b, ck := newBalancedLink()
	for i := 0; i < 6; i++ {
		ck.drive(eng, l, b, 10, 10)
	}
	if b.Reconfigs.Value() != 0 {
		t.Fatal("idle link must not reconfigure")
	}
}

func TestBalancerEqualizesWhenBothSaturate(t *testing.T) {
	eng, l, b, ck := newBalancedLink()
	// Drive asymmetric long enough to move two lanes.
	for i := 0; i < 8; i++ {
		ck.drive(eng, l, b, 9000, 100)
	}
	stolen := l.Lanes(Egress)
	if stolen <= 8 {
		t.Fatal("precondition failed: no lanes stolen")
	}
	// Now both directions saturate: expect drift back toward 8/8.
	for i := 0; i < 12; i++ {
		ck.drive(eng, l, b, 16000, 16000)
	}
	if l.Lanes(Egress) != 8 {
		t.Fatalf("egress lanes %d, want 8 after equalization", l.Lanes(Egress))
	}
}

func TestBalancerFirstWindowObservesOnly(t *testing.T) {
	eng, l, b, ck := newBalancedLink()
	ck.drive(eng, l, b, 8000, 0) // pure ramp-up asymmetry
	if b.Reconfigs.Value() != 0 {
		t.Fatal("first window after reset must not reconfigure")
	}
}

func TestBalancerResetState(t *testing.T) {
	eng, l, b, ck := newBalancedLink()
	for i := 0; i < 3; i++ {
		ck.drive(eng, l, b, 8000, 100)
	}
	b.ResetState()
	l.ResetDesign()
	// After reset, one asymmetric window must not trigger (seeding
	// again + persistence).
	ck.drive(eng, l, b, 8000, 100)
	ck.drive(eng, l, b, 8000, 100)
	if l.Lanes(Egress) != 8 {
		t.Fatal("turns must not fire within two windows of a reset")
	}
}

func TestBalancerStartStop(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 8, 1, 0, 10)
	b := NewBalancer(l, 500)
	b.Start(eng)
	// Saturate egress continuously for 5 windows.
	for w := 0; w < 5; w++ {
		eng.Schedule(sim.Time(w*500), func(sim.Time) { l.Send(Egress, 4000, nil) })
	}
	eng.RunUntil(2500)
	b.Stop()
	eng.Run() // must drain: the stopped balancer stops rescheduling
	if eng.Pending() != 0 {
		t.Fatal("stopped balancer left events queued")
	}
	if b.Decisions.Value() == 0 {
		t.Fatal("balancer never sampled")
	}
}

func TestDonorCanSpare(t *testing.T) {
	cases := []struct {
		util  float64
		lanes int
		want  bool
	}{
		{0.1, 8, true},
		{0.82, 8, true},  // 0.82×8/7 = 0.937 < 0.95
		{0.84, 8, false}, // 0.84×8/7 = 0.96 ≥ 0.95
		{0.5, 1, false},  // last lane is never spared
		{0.4, 2, true},
		{0.5, 2, false}, // 0.5×2 = 1.0
	}
	for _, tc := range cases {
		if got := donorCanSpare(tc.util, tc.lanes); got != tc.want {
			t.Errorf("donorCanSpare(%v, %d) = %v, want %v", tc.util, tc.lanes, got, tc.want)
		}
	}
}

func TestBalancerRecoversStuckAsymmetry(t *testing.T) {
	eng, l, b, ck := newBalancedLink()
	// Force a 10/6 split, then present ingress-saturated traffic with
	// egress at ~0.9 (too hot to pass donorCanSpare, but egress holds
	// the majority so the turn toward symmetric must still happen).
	l.TurnLane(Ingress, Egress)
	l.TurnLane(Ingress, Egress)
	eng.Run()
	for i := 0; i < 6; i++ {
		ck.drive(eng, l, b, 9000, 6000) // egress 9000/10000=0.9, ingress 6000/6000=1.0
	}
	if l.Lanes(Ingress) <= 6 {
		t.Fatalf("ingress lanes %d, want recovery toward symmetric", l.Lanes(Ingress))
	}
}
