// Package xlink models the inter-GPU interconnect of the multi-socket
// NUMA GPU: per-socket links to a central high-bandwidth switch, built
// from individually reversible lanes, plus the dynamic link load
// balancer of Section 4 of Milic et al. (MICRO 2017).
//
// Each link has two directions — egress (GPU to switch) and ingress
// (switch to GPU) — made of lanes that default to a symmetric split
// (Table 1: 8 lanes × 8GB/s per direction). The balancer samples
// directional utilization every SampleTime cycles and re-points one
// lane from an unsaturated direction to a saturated one, paying a
// SwitchTime turnaround, exactly as the paper describes.
package xlink

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Direction distinguishes the two sides of a link, named from the GPU's
// perspective.
type Direction int

const (
	// Egress carries traffic from the GPU socket into the switch.
	Egress Direction = iota
	// Ingress carries traffic from the switch into the GPU socket.
	Ingress
)

func (d Direction) String() string {
	if d == Egress {
		return "egress"
	}
	return "ingress"
}

// Opposite returns the other direction.
func (d Direction) Opposite() Direction { return 1 - d }

// Link is one GPU socket's connection to the switch.
type Link struct {
	eng        *sim.Engine
	laneBW     float64
	totalLanes int
	switchTime int

	lanes [2]int
	srv   [2]*sim.Server

	balBytes  [2]stats.Meter // sampling window for the balancer & policies
	profBytes [2]stats.Meter // independent window for profiling (Figure 5)
	gen       uint64         // invalidates in-flight lane-turn completions

	// Turns counts completed lane reversals; Sent counts bytes by
	// direction over the link's lifetime.
	Turns stats.Counter
	Sent  [2]stats.Counter
}

// NewLink builds a link with lanesPerDir lanes in each direction, each
// moving laneBW bytes/cycle, with oneWayLatency cycles end to end
// (split across the two traversals) and the given lane turnaround time.
func NewLink(eng *sim.Engine, lanesPerDir int, laneBW float64, oneWayLatency, switchTime int) *Link {
	l := &Link{
		eng:        eng,
		laneBW:     laneBW,
		totalLanes: 2 * lanesPerDir,
		switchTime: switchTime,
	}
	l.lanes[Egress] = lanesPerDir
	l.lanes[Ingress] = lanesPerDir
	half := oneWayLatency / 2
	l.srv[Egress] = sim.NewServer(eng, float64(lanesPerDir)*laneBW, half)
	l.srv[Ingress] = sim.NewServer(eng, float64(lanesPerDir)*laneBW, oneWayLatency-half)
	return l
}

// Lanes reports the lanes currently assigned to dir (including a lane
// mid-turn toward dir, which counts at its destination).
func (l *Link) Lanes(dir Direction) int { return l.lanes[dir] }

// TotalLanes reports the invariant lane budget of the link.
func (l *Link) TotalLanes() int { return l.totalLanes }

// Bandwidth reports dir's current capacity in bytes/cycle.
func (l *Link) Bandwidth(dir Direction) float64 { return l.srv[dir].Bandwidth() }

// Send moves size bytes in direction dir; done fires on delivery at the
// far end of this traversal and may be nil.
func (l *Link) Send(dir Direction, size int, done sim.Event) {
	l.Sent[dir].Advance(uint64(size))
	l.balBytes[dir].Add(uint64(size))
	l.profBytes[dir].Add(uint64(size))
	l.srv[dir].Transfer(size, done)
}

// SendFunc is Send for a clock-ignoring completion callback, queued
// without an adapter closure (the remote read/write ack paths).
func (l *Link) SendFunc(dir Direction, size int, done func()) {
	l.Sent[dir].Advance(uint64(size))
	l.balBytes[dir].Add(uint64(size))
	l.profBytes[dir].Add(uint64(size))
	l.srv[dir].TransferFunc(size, done)
}

// Utilization reports dir's utilization over the balancer window ending
// at now.
func (l *Link) Utilization(dir Direction, now sim.Time) float64 {
	return l.balBytes[dir].Utilization(now, l.srv[dir].Bandwidth())
}

// ResetWindow opens a new balancer sampling window at now.
func (l *Link) ResetWindow(now sim.Time) {
	l.balBytes[Egress].Reset(now)
	l.balBytes[Ingress].Reset(now)
}

// ProfileUtilization reports dir's utilization over the profiler window
// (normalized against the symmetric per-direction capacity so Figure 5
// profiles are comparable across reconfigurations).
func (l *Link) ProfileUtilization(dir Direction, now sim.Time) float64 {
	sym := float64(l.totalLanes/2) * l.laneBW
	return l.profBytes[dir].Utilization(now, sym)
}

// ResetProfileWindow opens a new profiler window at now.
func (l *Link) ResetProfileWindow(now sim.Time) {
	l.profBytes[Egress].Reset(now)
	l.profBytes[Ingress].Reset(now)
}

// TurnLane re-points one lane from direction from to direction to. The
// donor loses capacity immediately (the lane quiesces); the receiver
// gains it after the configured switch time. It reports whether a lane
// was available to turn (at least one lane always remains per
// direction).
func (l *Link) TurnLane(from, to Direction) bool {
	if from == to || l.lanes[from] <= 1 {
		return false
	}
	l.lanes[from]--
	l.lanes[to]++
	l.srv[from].SetBandwidth(float64(l.lanes[from]) * l.laneBW)
	gen := l.gen
	target := float64(l.lanes[to]) * l.laneBW
	l.eng.Schedule(sim.Time(l.switchTime), func(sim.Time) {
		if l.gen != gen {
			return // a reset intervened; it already set bandwidths
		}
		if cur := l.srv[to].Bandwidth(); cur < target {
			l.srv[to].SetBandwidth(target)
		}
	})
	l.Turns.Inc()
	return true
}

// ResetSymmetric restores the design-time symmetric lane assignment,
// applied instantaneously at kernel launch (the paper reconfigures all
// links to symmetric on every kernel boundary).
func (l *Link) ResetSymmetric() {
	l.gen++
	per := l.totalLanes / 2
	l.lanes[Egress] = per
	l.lanes[Ingress] = l.totalLanes - per
	l.srv[Egress].SetBandwidth(float64(l.lanes[Egress]) * l.laneBW)
	l.srv[Ingress].SetBandwidth(float64(l.lanes[Ingress]) * l.laneBW)
}

func (l *Link) String() string {
	return fmt.Sprintf("link{egress=%d ingress=%d lanes}", l.lanes[Egress], l.lanes[Ingress])
}
