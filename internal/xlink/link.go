// Package xlink models the inter-GPU interconnect of the multi-socket
// NUMA GPU: per-socket links to a central high-bandwidth switch, built
// from individually reversible lanes, plus the dynamic link load
// balancer of Section 4 of Milic et al. (MICRO 2017).
//
// Each link has two directions — egress (GPU to switch) and ingress
// (switch to GPU) — made of lanes that default to a symmetric split
// (Table 1: 8 lanes × 8GB/s per direction). The balancer samples
// directional utilization every SampleTime cycles and re-points one
// lane from an unsaturated direction to a saturated one, paying a
// SwitchTime turnaround, exactly as the paper describes.
package xlink

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Direction distinguishes the two sides of a link, named from the GPU's
// perspective.
type Direction int

const (
	// Egress carries traffic from the GPU socket into the switch.
	Egress Direction = iota
	// Ingress carries traffic from the switch into the GPU socket.
	Ingress
)

func (d Direction) String() string {
	if d == Egress {
		return "egress"
	}
	return "ingress"
}

// Opposite returns the other direction.
func (d Direction) Opposite() Direction { return 1 - d }

// Link is one physical cable of the fabric: between a socket and a
// switch in the paper's star, or between any two topology nodes in a
// user-supplied graph. Direction Egress is the A→B traversal of the
// owning topology edge; Ingress is B→A.
type Link struct {
	eng        *sim.Engine
	name       string
	laneBW     float64
	totalLanes int
	switchTime int

	lanes  [2]int
	design [2]int // design-time lane assignment, restored at kernel launch
	srv    [2]*sim.Server

	balBytes  [2]stats.Meter // sampling window for the balancer & policies
	profBytes [2]stats.Meter // independent window for profiling (Figure 5)
	gen       uint64         // invalidates in-flight lane-turn completions

	// Turns counts completed lane reversals; Sent counts bytes by
	// direction over the link's lifetime.
	Turns stats.Counter
	Sent  [2]stats.Counter
}

// NewLink builds a symmetric link with lanesPerDir lanes in each
// direction, each moving laneBW bytes/cycle, with oneWayLatency cycles
// end to end (split across the two traversals) and the given lane
// turnaround time.
func NewLink(eng *sim.Engine, lanesPerDir int, laneBW float64, oneWayLatency, switchTime int) *Link {
	half := oneWayLatency / 2
	return NewLinkAsym(eng, lanesPerDir, lanesPerDir, laneBW, half, oneWayLatency-half, switchTime)
}

// NewLinkAsym builds a link whose two directions are provisioned
// independently: lanesAB/latAB for the Egress (A→B) traversal and
// lanesBA/latBA for Ingress (B→A). The lane budget is still shared —
// the balancer may re-point lanes across the asymmetric design — and
// kernel launches restore the design split via ResetDesign.
func NewLinkAsym(eng *sim.Engine, lanesAB, lanesBA int, laneBW float64, latAB, latBA, switchTime int) *Link {
	l := &Link{
		eng:        eng,
		laneBW:     laneBW,
		totalLanes: lanesAB + lanesBA,
		switchTime: switchTime,
	}
	l.design[Egress] = lanesAB
	l.design[Ingress] = lanesBA
	l.lanes = l.design
	l.srv[Egress] = sim.NewServer(eng, float64(lanesAB)*laneBW, latAB)
	l.srv[Ingress] = sim.NewServer(eng, float64(lanesBA)*laneBW, latBA)
	return l
}

// Name reports the fabric-assigned label (e.g. "s0-x0"); empty for
// links constructed directly.
func (l *Link) Name() string { return l.name }

// Lanes reports the lanes currently assigned to dir (including a lane
// mid-turn toward dir, which counts at its destination).
func (l *Link) Lanes(dir Direction) int { return l.lanes[dir] }

// TotalLanes reports the invariant lane budget of the link.
func (l *Link) TotalLanes() int { return l.totalLanes }

// Bandwidth reports dir's current capacity in bytes/cycle.
func (l *Link) Bandwidth(dir Direction) float64 { return l.srv[dir].Bandwidth() }

// Send moves size bytes in direction dir; done fires on delivery at the
// far end of this traversal and may be nil.
func (l *Link) Send(dir Direction, size int, done sim.Event) {
	l.Sent[dir].Advance(uint64(size))
	l.balBytes[dir].Add(uint64(size))
	l.profBytes[dir].Add(uint64(size))
	l.srv[dir].Transfer(size, done)
}

// SendFunc is Send for a clock-ignoring completion callback, queued
// without an adapter closure (the remote read/write ack paths).
func (l *Link) SendFunc(dir Direction, size int, done func()) {
	l.Sent[dir].Advance(uint64(size))
	l.balBytes[dir].Add(uint64(size))
	l.profBytes[dir].Add(uint64(size))
	l.srv[dir].TransferFunc(size, done)
}

// SendArg is Send for a long-lived ArgEvent continuation plus an
// integer argument: the fabric's multi-hop walker passes its pooled
// route-record index through arg instead of allocating a closure per
// hop.
func (l *Link) SendArg(dir Direction, size int, fn sim.ArgEvent, arg int) {
	l.Sent[dir].Advance(uint64(size))
	l.balBytes[dir].Add(uint64(size))
	l.profBytes[dir].Add(uint64(size))
	l.srv[dir].TransferArg(size, fn, arg)
}

// Backlog reports how many cycles of queued traffic dir's
// serialization stage holds at now: 0 when the direction is idle. A
// read-only queue-depth probe for the observability layer.
func (l *Link) Backlog(dir Direction, now sim.Time) sim.Time {
	if busy := l.srv[dir].BusyUntil(); busy > now {
		return busy - now
	}
	return 0
}

// Utilization reports dir's utilization over the balancer window ending
// at now.
func (l *Link) Utilization(dir Direction, now sim.Time) float64 {
	return l.balBytes[dir].Utilization(now, l.srv[dir].Bandwidth())
}

// ResetWindow opens a new balancer sampling window at now.
func (l *Link) ResetWindow(now sim.Time) {
	l.balBytes[Egress].Reset(now)
	l.balBytes[Ingress].Reset(now)
}

// ProfileUtilization reports dir's utilization over the profiler window
// (normalized against the design-time per-direction capacity so Figure
// 5 profiles are comparable across runtime reconfigurations).
func (l *Link) ProfileUtilization(dir Direction, now sim.Time) float64 {
	design := float64(l.design[dir]) * l.laneBW
	return l.profBytes[dir].Utilization(now, design)
}

// ResetProfileWindow opens a new profiler window at now.
func (l *Link) ResetProfileWindow(now sim.Time) {
	l.profBytes[Egress].Reset(now)
	l.profBytes[Ingress].Reset(now)
}

// TurnLane re-points one lane from direction from to direction to. The
// donor loses capacity immediately (the lane quiesces); the receiver
// gains it after the configured switch time. It reports whether a lane
// was available to turn (at least one lane always remains per
// direction).
func (l *Link) TurnLane(from, to Direction) bool {
	if from == to || l.lanes[from] <= 1 {
		return false
	}
	l.lanes[from]--
	l.lanes[to]++
	l.srv[from].SetBandwidth(float64(l.lanes[from]) * l.laneBW)
	gen := l.gen
	target := float64(l.lanes[to]) * l.laneBW
	l.eng.Schedule(sim.Time(l.switchTime), func(sim.Time) {
		if l.gen != gen {
			return // a reset intervened; it already set bandwidths
		}
		if cur := l.srv[to].Bandwidth(); cur < target {
			l.srv[to].SetBandwidth(target)
		}
	})
	l.Turns.Inc()
	return true
}

// ResetDesign restores the design-time lane assignment (symmetric for
// paper-style links, possibly asymmetric for topology-specified ones),
// applied instantaneously at kernel launch (the paper reconfigures all
// links on every kernel boundary).
func (l *Link) ResetDesign() {
	l.gen++
	l.lanes = l.design
	l.srv[Egress].SetBandwidth(float64(l.lanes[Egress]) * l.laneBW)
	l.srv[Ingress].SetBandwidth(float64(l.lanes[Ingress]) * l.laneBW)
}

func (l *Link) String() string {
	return fmt.Sprintf("link{egress=%d ingress=%d lanes}", l.lanes[Egress], l.lanes[Ingress])
}
