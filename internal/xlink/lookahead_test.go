package xlink

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/topo"
)

// floydMinPaths computes all-pairs minimum path latencies over a
// topology with Floyd–Warshall — a deliberately different algorithm
// from the fabric's per-source Dijkstra — applying the same defaulting
// rules NewFabric does (omitted latencies inherit cfg.LinkLatency on
// user topologies; the synthesized crossbar is taken verbatim).
func floydMinPaths(t *topo.Topology, cfg arch.Config, synthesized bool) [][]sim.Time {
	n := t.Nodes()
	const inf = sim.Time(1) << 62
	dist := make([][]sim.Time, n)
	for i := range dist {
		dist[i] = make([]sim.Time, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = inf
			}
		}
	}
	edge := func(a, b int, lat, hops int) {
		w := sim.Time(lat) + sim.Time(hops)*sim.Time(cfg.SwitchLatency)
		if w < dist[a][b] {
			dist[a][b] = w
		}
	}
	for _, ls := range t.Links {
		latAB, latBA := ls.LatencyAB, ls.LatencyBA
		if !synthesized {
			if latAB == 0 {
				latAB = cfg.LinkLatency
			}
			if latBA == 0 {
				latBA = cfg.LinkLatency
			}
		}
		edge(ls.A, ls.B, latAB, ls.HopsAB)
		edge(ls.B, ls.A, latBA, ls.HopsBA)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dist[i][k] != inf && dist[k][j] != inf && dist[i][k]+dist[k][j] < dist[i][j] {
					dist[i][j] = dist[i][k] + dist[k][j]
				}
			}
		}
	}
	return dist
}

// TestLookaheadBoundProperty checks the derived lookahead bound on
// every example topology shipped in examples/*.json plus the
// nil-topology crossbar: the fabric's MinPathCost must equal the
// independently computed minimum over per-pair path costs, and every
// individual PathCost must equal its all-pairs shortest latency.
func TestLookaheadBoundProperty(t *testing.T) {
	type tcase struct {
		name        string
		top         *topo.Topology // nil = legacy crossbar
		synthesized bool
	}
	cases := []tcase{{name: "nil-crossbar"}}
	files, err := filepath.Glob("../../examples/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example topologies found: %v", err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		top, err := topo.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		cases = append(cases, tcase{name: filepath.Base(path), top: top})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := arch.TestConfig()
			top := tc.top
			synthesized := top == nil
			if synthesized {
				top = topo.Crossbar(cfg.Sockets, cfg.LanesPerDir, cfg.LaneBandwidth, cfg.LinkLatency)
			} else {
				cfg.Sockets = len(top.Sockets)
				cfg.Topology = top
			}
			f := NewFabric(sim.New(), cfg)
			dist := floydMinPaths(top, cfg, synthesized)
			sockets := len(top.Sockets)
			want := sim.Time(0)
			first := true
			for src := 0; src < sockets; src++ {
				for dst := 0; dst < sockets; dst++ {
					if src == dst {
						continue
					}
					got := f.PathCost(arch.SocketID(src), arch.SocketID(dst))
					if got != dist[src][dst] {
						t.Errorf("PathCost(%d,%d) = %d, Floyd–Warshall says %d", src, dst, got, dist[src][dst])
					}
					if first || dist[src][dst] < want {
						want, first = dist[src][dst], false
					}
				}
			}
			if got := f.MinPathCost(); got != want {
				t.Fatalf("MinPathCost = %d, want %d (min over per-pair path costs)", got, want)
			}
			if got := f.MinPathCost(); got < 1 {
				t.Fatalf("MinPathCost = %d: not a usable lookahead bound", got)
			}
		})
	}
}

// TestShardedRouteValidation pins both sides of the delivery check on a
// sharded fabric: routes under the true MinPathCost bound are counted
// as legal crossings, and a crafted sub-bound crossing — simulated by
// inflating the engine's lookahead past the fastest real path — panics
// loudly at delivery instead of silently corrupting the window
// protocol.
func TestShardedRouteValidation(t *testing.T) {
	build := func(lookaheadBump sim.Time) (*sim.ParallelEngine, *Fabric) {
		cfg := arch.TestConfig()
		pe := sim.NewLockstep(cfg.Sockets, 1)
		eng := pe.Shard(0)
		f := NewFabric(eng, cfg)
		pe.SetLookahead(f.MinPathCost() + lookaheadBump)
		f.EnableSharding(pe, func(id arch.SocketID) int { return int(id) })
		return pe, f
	}

	pe, f := build(0)
	delivered := 0
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			if src != dst {
				f.RouteFunc(arch.SocketID(src), arch.SocketID(dst), 128, func() { delivered++ })
			}
		}
	}
	pe.Run()
	if delivered != 12 {
		t.Fatalf("delivered %d routes, want 12", delivered)
	}
	if pe.CrossDelivered() != 12 {
		t.Fatalf("CrossDelivered = %d, want 12 validated crossings", pe.CrossDelivered())
	}

	// A message arriving faster than the engine's bound must be rejected
	// loudly: with the bound inflated past the unloaded path cost plus
	// its serialization slack, the real fastest path is now sub-bound.
	pe, f = build(64)
	f.RouteFunc(0, 1, 1, nil) // minimal serialization: near the unloaded path cost
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("sub-bound cross-shard delivery was not rejected")
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, "below the lookahead bound") {
			t.Fatalf("panic %v, want the lookahead-bound rejection", p)
		}
	}()
	pe.Run()
}
