package arch

import (
	"testing"
	"testing/quick"
)

func TestLineGeometry(t *testing.T) {
	if LineSize != 1<<LineShift {
		t.Fatal("LineSize and LineShift disagree")
	}
	if PageSize != 1<<PageShift {
		t.Fatal("PageSize and PageShift disagree")
	}
	if LineOf(0) != 0 || LineOf(127) != 0 || LineOf(128) != 1 {
		t.Fatal("LineOf boundaries wrong")
	}
	if PageOf(0) != 0 || PageOf(PageSize-1) != 0 || PageOf(PageSize) != 1 {
		t.Fatal("PageOf boundaries wrong")
	}
}

// TestPropertyLinePageConsistency: a line's page equals its first
// byte's page, for arbitrary addresses.
func TestPropertyLinePageConsistency(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		l := LineOf(addr)
		if l.Addr() > addr || addr-l.Addr() >= LineSize {
			return false
		}
		return PageOfLine(l) == PageOf(l.Addr())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperConfigMatchesTable1(t *testing.T) {
	c := PaperConfig()
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"Sockets", c.Sockets, 4},
		{"SMsPerSocket", c.SMsPerSocket, 64},
		{"MaxWarpsPerSM", c.MaxWarpsPerSM, 64},
		{"L1Bytes", c.L1Bytes, 128 << 10},
		{"L1Assoc", c.L1Assoc, 4},
		{"L2Bytes", c.L2Bytes, 4 << 20},
		{"L2Assoc", c.L2Assoc, 16},
		{"DRAMBandwidth", c.DRAMBandwidth, 768.0},
		{"DRAMLatency", c.DRAMLatency, 100},
		{"LanesPerDir", c.LanesPerDir, 8},
		{"LaneBandwidth", c.LaneBandwidth, 8.0},
		{"LinkLatency", c.LinkLatency, 128},
		{"LinkSampleTime", c.LinkSampleTime, 5000},
		{"LaneSwitchTime", c.LaneSwitchTime, 100},
		{"CacheSampleTime", c.CacheSampleTime, 5000},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
}

func TestLinkDirBandwidth(t *testing.T) {
	c := PaperConfig()
	if got := c.LinkDirBandwidth(); got != 64 {
		t.Fatalf("per-direction link bandwidth %v, want 64 (Table 1: 64GB/s)", got)
	}
}

// TestScaledConfigPreservesRatios: the DRAM:link-direction ratio of 12:1
// that the NUMA penalty depends on must survive scaling.
func TestScaledConfigPreservesRatios(t *testing.T) {
	for _, div := range []int{1, 2, 4, 8} {
		c := ScaledConfig(div)
		if err := c.Validate(); err != nil {
			t.Fatalf("divisor %d: %v", div, err)
		}
		ratio := c.DRAMBandwidth / c.LinkDirBandwidth()
		if ratio < 11.9 || ratio > 12.1 {
			t.Errorf("divisor %d: DRAM:link ratio %v, want 12", div, ratio)
		}
		if c.L1Bytes != PaperConfig().L1Bytes {
			t.Errorf("divisor %d: per-SM L1 must not scale", div)
		}
	}
}

func TestScaledConfigDegenerate(t *testing.T) {
	c := ScaledConfig(0) // clamps to 1
	if c.SMsPerSocket != PaperConfig().SMsPerSocket {
		t.Fatal("divisor 0 should behave as 1")
	}
	huge := ScaledConfig(1 << 20)
	if err := huge.Validate(); err != nil {
		t.Fatalf("extreme divisor must still validate: %v", err)
	}
}

func TestMonolithicScaling(t *testing.T) {
	base := ScaledConfig(8)
	m := base.Monolithic(4)
	if m.Sockets != 1 {
		t.Fatal("monolithic must be single socket")
	}
	if m.SMsPerSocket != 4*base.SMsPerSocket {
		t.Fatal("monolithic SMs must scale")
	}
	if m.DRAMBandwidth != 4*base.DRAMBandwidth {
		t.Fatal("monolithic DRAM bandwidth must scale")
	}
	if m.L2Bytes != 4*base.L2Bytes {
		t.Fatal("monolithic L2 must scale")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithSockets(t *testing.T) {
	c := PaperConfig().WithSockets(8)
	if c.Sockets != 8 {
		t.Fatal("WithSockets did not apply")
	}
	if c.TotalSMs() != 8*64 {
		t.Fatalf("TotalSMs %d, want 512", c.TotalSMs())
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no sockets", func(c *Config) { c.Sockets = 0 }},
		{"no SMs", func(c *Config) { c.SMsPerSocket = 0 }},
		{"no warps", func(c *Config) { c.MaxWarpsPerSM = 0 }},
		{"tiny L1", func(c *Config) { c.L1Bytes = 64 }},
		{"1-way L2", func(c *Config) { c.L2Assoc = 1 }},
		{"no lanes", func(c *Config) { c.LanesPerDir = 0 }},
		{"negative DRAM bw", func(c *Config) { c.DRAMBandwidth = -1 }},
		{"zero lane bw", func(c *Config) { c.LaneBandwidth = 0 }},
		{"zero sample", func(c *Config) { c.LinkSampleTime = 0 }},
	}
	for _, tc := range cases {
		c := PaperConfig()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if SchedFineGrain.String() == SchedBlock.String() {
		t.Fatal("sched strings must differ")
	}
	if PlaceFirstTouch.String() != "first-touch" {
		t.Fatalf("unexpected %q", PlaceFirstTouch.String())
	}
	modes := []CacheMode{CacheMemSideLocal, CacheStaticPartition, CacheSharedCoherent, CacheNUMAAware}
	seen := map[string]bool{}
	for _, m := range modes {
		s := m.String()
		if seen[s] {
			t.Fatalf("duplicate cache mode string %q", s)
		}
		seen[s] = true
	}
	if LinkStatic.String() == LinkDynamic.String() {
		t.Fatal("link mode strings must differ")
	}
}

func TestCacheLineCounts(t *testing.T) {
	c := PaperConfig()
	if c.L1Lines() != (128<<10)/128 {
		t.Fatalf("L1 lines %d", c.L1Lines())
	}
	if c.L2Lines() != (4<<20)/128 {
		t.Fatalf("L2 lines %d", c.L2Lines())
	}
}

func TestTestConfigIsValidAndTiny(t *testing.T) {
	c := TestConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalSMs() > 16 {
		t.Fatalf("test config too big: %d SMs", c.TotalSMs())
	}
}
