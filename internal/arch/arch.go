// Package arch holds the architectural vocabulary shared by every
// subsystem of the NUMA GPU model: addresses, cache-line and page
// geometry, and the system configuration with the paper's parameters
// (Milic et al., MICRO 2017, Table 1).
package arch

import "repro/internal/topo"

// Addr is a byte address in the single unified virtual address space
// that spans all GPU sockets (the paper assumes NVIDIA UVA).
type Addr uint64

// Line geometry. Both L1 and L2 use 128-byte lines (Table 1).
const (
	LineSize  = 128
	LineShift = 7
)

// Page geometry for the UVM-style page placement runtime. 4KB pages,
// the CUDA UVM migration granularity: fine enough that small shared
// tables distribute across sockets rather than landing wholesale on
// whichever socket touches them first.
const (
	PageSize  = 4 << 10
	PageShift = 12
)

// LineID identifies a cache line (Addr >> LineShift).
type LineID uint64

// PageID identifies a page (Addr >> PageShift).
type PageID uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) LineID { return LineID(a >> LineShift) }

// PageOf returns the page containing a.
func PageOf(a Addr) PageID { return PageID(a >> PageShift) }

// LineAddr returns the first byte address of line l.
func (l LineID) Addr() Addr { return Addr(l) << LineShift }

// PageOfLine returns the page containing line l.
func PageOfLine(l LineID) PageID { return PageID(l >> (PageShift - LineShift)) }

// SocketID identifies a GPU socket within the system. The monolithic
// (single larger GPU) configurations use socket 0 only.
type SocketID int

// CTASched selects how the runtime distributes CTAs over sockets
// (Section 3 of the paper).
type CTASched int

const (
	// SchedFineGrain mimics single-GPU fine-grained dynamic assignment:
	// CTA i runs on socket i mod N. It balances load but destroys
	// inter-CTA locality ("traditional" in Figure 3).
	SchedFineGrain CTASched = iota
	// SchedBlock decomposes a kernel into N contiguous CTA blocks, one
	// per socket ("locality-optimized" in Figure 3).
	SchedBlock
)

func (s CTASched) String() string {
	switch s {
	case SchedFineGrain:
		return "fine-grain"
	case SchedBlock:
		return "contiguous-block"
	}
	return "unknown-sched"
}

// MemPlacement selects the page placement policy (Section 3).
type MemPlacement int

const (
	// PlaceFineInterleave interleaves memory across sockets at 256B
	// granularity, the single-GPU channel-interleaving policy extended
	// across sockets. 75% of accesses become remote on 4 sockets.
	PlaceFineInterleave MemPlacement = iota
	// PlacePageInterleave round-robins whole pages across sockets
	// (Linux-interleave style).
	PlacePageInterleave
	// PlaceFirstTouch maps a page to the socket that first touches it
	// (UVM on-demand migration from system memory).
	PlaceFirstTouch
)

func (p MemPlacement) String() string {
	switch p {
	case PlaceFineInterleave:
		return "fine-interleave"
	case PlacePageInterleave:
		return "page-interleave"
	case PlaceFirstTouch:
		return "first-touch"
	}
	return "unknown-placement"
}

// FineInterleaveGranularity is the sub-page interleaving unit used by
// PlaceFineInterleave (two cache lines, similar to a DRAM burst group).
const FineInterleaveGranularity = 256

// CacheMode selects the L2 organization from Figure 7 of the paper.
type CacheMode int

const (
	// CacheMemSideLocal is Figure 7(a): memory-side L2 caching local
	// data only; remote requests bypass the local L2 entirely.
	CacheMemSideLocal CacheMode = iota
	// CacheStaticPartition is Figure 7(b): half the L2 is a GPU-side
	// coherent remote cache (R$), half remains memory-side local.
	CacheStaticPartition
	// CacheSharedCoherent is Figure 7(c): the whole L2 becomes GPU-side
	// SW-coherent and local/remote data contend freely for capacity.
	CacheSharedCoherent
	// CacheNUMAAware is Figure 7(d): GPU-side coherent L1+L2 with
	// dynamic way partitioning between local and remote data, driven by
	// interconnect and DRAM saturation monitoring.
	CacheNUMAAware
)

func (m CacheMode) String() string {
	switch m {
	case CacheMemSideLocal:
		return "mem-side-local"
	case CacheStaticPartition:
		return "static-partition"
	case CacheSharedCoherent:
		return "shared-coherent"
	case CacheNUMAAware:
		return "numa-aware"
	}
	return "unknown-cache-mode"
}

// LinkMode selects the inter-GPU link bandwidth management policy
// (Section 4).
type LinkMode int

const (
	// LinkStatic keeps the design-time symmetric lane assignment.
	LinkStatic LinkMode = iota
	// LinkDynamic enables the adaptive per-GPU lane direction balancer.
	LinkDynamic
)

func (m LinkMode) String() string {
	if m == LinkDynamic {
		return "dynamic-asymmetric"
	}
	return "static-symmetric"
}

// Config describes one NUMA GPU system. All bandwidths are in
// bytes/cycle at the 1GHz system clock (1 B/cycle == 1 GB/s).
type Config struct {
	// Topology.
	Sockets      int // number of GPU sockets
	SMsPerSocket int // streaming multiprocessors per socket

	// SM parameters.
	MaxWarpsPerSM int // concurrent warps resident per SM (Table 1: 64)
	MaxCTAsPerSM  int // concurrent CTA slots per SM
	IssueWidth    int // instructions issued per SM per cycle

	// L1: private per SM, write-through, SW coherent.
	L1Bytes   int
	L1Assoc   int
	L1Latency int // hit latency, cycles

	// L2: per socket, banked, write-back (memory-side in mode a).
	L2Bytes   int
	L2Assoc   int
	L2Banks   int
	L2Latency int // hit latency, cycles

	// Intra-GPU NoC between SMs and L2 banks.
	NoCBandwidth float64 // bytes/cycle per socket
	NoCLatency   int

	// Local DRAM (HBM) per socket.
	DRAMBandwidth float64 // bytes/cycle per socket
	DRAMLatency   int     // cycles (Table 1: 100ns @ 1GHz)

	// Inter-GPU link: LanesPerDir lanes each direction by default.
	LanesPerDir   int
	LaneBandwidth float64 // bytes/cycle per lane
	LinkLatency   int     // one-way, cycles (Table 1: 128)
	SwitchLatency int     // switch traversal, cycles

	// Policy parameters.
	LinkSampleTime  int // cycles between balancer samples (Section 4.1)
	LaneSwitchTime  int // cycles to turn one lane around
	CacheSampleTime int // cycles between cache partition samples (5K)

	// Policies under study.
	Sched     CTASched
	Placement MemPlacement
	CacheMode CacheMode
	LinkMode  LinkMode

	// L2WriteThrough switches the coherent L2 portions to write-through
	// (Section 5.2 sensitivity study; write-back wins by ~9%).
	L2WriteThrough bool
	// NoL2Invalidate models the hypothetical L2 that ignores coherence
	// invalidation events (upper bound of Figure 9).
	NoL2Invalidate bool

	// Message overheads on the interconnect, bytes.
	RequestHeader  int // read request / write ack message size
	ResponseHeader int // header prepended to a 128B data response

	// Topology optionally replaces the symmetric crossbar with an
	// explicit fabric graph (per-socket resource overrides + weighted
	// links, possibly via intermediate switches). Nil synthesizes the
	// paper's crossbar from the link parameters above, reproducing the
	// legacy event schedule exactly; non-nil must validate and have
	// exactly Sockets socket entries. Omitted (zero) per-link values
	// inherit LanesPerDir / LaneBandwidth / LinkLatency.
	Topology *topo.Topology `json:",omitempty"`

	// EngineShards selects sharded event execution: above 1 the system
	// runs on a sim.ParallelEngine with min(EngineShards, Sockets)
	// socket shards plus a fabric/home shard, with the lookahead bound
	// derived from the fabric's minimum inter-socket path cost. 0 or 1
	// keeps the single serial engine. The observable event schedule —
	// and therefore every result — is identical either way, which is
	// why the field is execution policy, not configuration: it is
	// excluded from experiment cache keys.
	EngineShards int `json:",omitempty"`

	// Obs enables the opt-in observability layer (internal/obs):
	// per-socket/per-link/per-cache time series and an optional Chrome
	// trace, sampled by read-only probes that never mutate model state.
	// Like EngineShards it is execution policy, not configuration —
	// observation must not change simulation identity, so the block is
	// excluded from experiment cache keys (byte-identity with sampling
	// on is enforced by TestObsOnByteIdentical; key exemption by
	// TestRunKeyIgnoresObs).
	Obs ObsSpec `json:",omitzero"`
}

// ObsSpec is the Config.Obs policy block. The zero value disables all
// observation; Series and Trace opt in independently. Capacities are
// fixed up front so sampling stays allocation-free: rings overwrite
// their oldest entries when full and the drop counts are reported at
// flush time.
type ObsSpec struct {
	// Series enables per-socket/per-link/per-cache time series.
	Series bool `json:",omitzero"`
	// Trace enables the Chrome-trace event ring (kernel waves,
	// cross-socket transfers, drain phases).
	Trace bool `json:",omitzero"`
	// SamplePeriod is the cycles between samples (0 = 5000, the
	// paper's policy sampling window).
	SamplePeriod int `json:",omitzero"`
	// MaxSamples caps each series ring (0 = 4096 points).
	MaxSamples int `json:",omitzero"`
	// MaxTraceEvents caps the trace ring (0 = 65536 events).
	MaxTraceEvents int `json:",omitzero"`
}

// Enabled reports whether any observation output is requested.
func (o ObsSpec) Enabled() bool { return o.Series || o.Trace }

// PaperConfig returns the 4-socket configuration of Table 1.
func PaperConfig() Config {
	return Config{
		Sockets:      4,
		SMsPerSocket: 64,

		MaxWarpsPerSM: 64,
		MaxCTAsPerSM:  32,
		IssueWidth:    1,

		L1Bytes:   128 << 10,
		L1Assoc:   4,
		L1Latency: 28,

		L2Bytes:   4 << 20,
		L2Assoc:   16,
		L2Banks:   16,
		L2Latency: 96,

		NoCBandwidth: 2048, // ~2TB/s crossbar per socket
		NoCLatency:   12,

		DRAMBandwidth: 768, // 768GB/s per socket
		DRAMLatency:   100, // 100ns @ 1GHz

		LanesPerDir:   8,
		LaneBandwidth: 8, // 8GB/s per lane, 64GB/s per direction
		LinkLatency:   128,
		SwitchLatency: 16,

		LinkSampleTime:  5000,
		LaneSwitchTime:  100,
		CacheSampleTime: 5000,

		Sched:     SchedBlock,
		Placement: PlaceFirstTouch,
		CacheMode: CacheMemSideLocal,
		LinkMode:  LinkStatic,

		RequestHeader:  32,
		ResponseHeader: 32,
	}
}

// ScaledConfig returns a configuration with per-socket resources scaled
// by 1/divisor relative to PaperConfig while preserving every ratio that
// the paper's mechanisms depend on (DRAM:link = 12:1 per direction,
// L2:DRAM reach, SM:bandwidth balance). Experiments use divisor 8 so the
// full 41-workload sweeps finish quickly; divisor 1 is the paper machine.
func ScaledConfig(divisor int) Config {
	if divisor < 1 {
		divisor = 1
	}
	c := PaperConfig()
	c.SMsPerSocket = max(1, c.SMsPerSocket/divisor)
	c.L2Bytes = max(64<<10, c.L2Bytes/divisor)
	c.L2Banks = max(2, c.L2Banks/divisor)
	c.NoCBandwidth = maxf(16, c.NoCBandwidth/float64(divisor))
	c.DRAMBandwidth = maxf(8, c.DRAMBandwidth/float64(divisor))
	c.LaneBandwidth = maxf(0.5, c.LaneBandwidth/float64(divisor))
	return c
}

// TestConfig returns a tiny, fast configuration for unit tests.
func TestConfig() Config {
	c := ScaledConfig(16)
	c.SMsPerSocket = 2
	c.MaxWarpsPerSM = 16
	c.MaxCTAsPerSM = 8
	c.L1Bytes = 8 << 10
	c.L2Bytes = 32 << 10
	c.L2Banks = 2
	c.LinkSampleTime = 500
	c.CacheSampleTime = 500
	return c
}

// Monolithic returns the hypothetical single GPU with all per-socket
// resources multiplied by factor: the "unbuildable" N× larger GPU that
// Figures 3, 10 and 11 use as the theoretical scalability reference.
func (c Config) Monolithic(factor int) Config {
	m := c
	m.Sockets = 1
	m.SMsPerSocket = c.SMsPerSocket * factor
	m.L2Bytes = c.L2Bytes * factor
	m.L2Banks = c.L2Banks * factor
	m.NoCBandwidth = c.NoCBandwidth * float64(factor)
	m.DRAMBandwidth = c.DRAMBandwidth * float64(factor)
	m.Placement = PlaceFirstTouch // irrelevant: every page is local
	m.Topology = nil              // a fabric graph is meaningless with one socket
	return m
}

// WithSockets returns a copy of c with the socket count replaced.
func (c Config) WithSockets(n int) Config {
	c.Sockets = n
	return c
}

// TotalSMs reports the SM count across all sockets.
func (c Config) TotalSMs() int { return c.Sockets * c.SMsPerSocket }

// LinkDirBandwidth reports the default per-direction link bandwidth in
// bytes/cycle (lanes × lane bandwidth).
func (c Config) LinkDirBandwidth() float64 {
	return float64(c.LanesPerDir) * c.LaneBandwidth
}

// L1Lines and L2Lines report cache capacities in lines.
func (c Config) L1Lines() int { return c.L1Bytes / LineSize }
func (c Config) L2Lines() int { return c.L2Bytes / LineSize }

// Validate reports a descriptive error for configurations the model
// cannot simulate.
func (c Config) Validate() error {
	switch {
	case c.Sockets < 1:
		return cfgError("Sockets must be >= 1")
	case c.SMsPerSocket < 1:
		return cfgError("SMsPerSocket must be >= 1")
	case c.MaxWarpsPerSM < 1:
		return cfgError("MaxWarpsPerSM must be >= 1")
	case c.L1Bytes < LineSize*c.L1Assoc || c.L1Assoc < 1:
		return cfgError("L1 must hold at least one set")
	case c.L2Bytes < LineSize*c.L2Assoc || c.L2Assoc < 2:
		return cfgError("L2 must hold at least one set of >= 2 ways")
	case c.LanesPerDir < 1:
		return cfgError("LanesPerDir must be >= 1")
	case c.DRAMBandwidth <= 0 || c.LaneBandwidth <= 0 || c.NoCBandwidth <= 0:
		return cfgError("bandwidths must be positive")
	case c.LinkSampleTime < 1 || c.CacheSampleTime < 1:
		return cfgError("sample times must be >= 1")
	case c.EngineShards < 0:
		return cfgError("EngineShards must be >= 0")
	case c.Obs.SamplePeriod < 0 || c.Obs.MaxSamples < 0 || c.Obs.MaxTraceEvents < 0:
		return cfgError("Obs capacities and sample period must be >= 0")
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
		if got := len(c.Topology.Sockets); got != c.Sockets {
			return cfgError("Topology socket count does not match Sockets")
		}
	}
	return nil
}

type cfgError string

func (e cfgError) Error() string { return "arch: invalid config: " + string(e) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
