// Package topo defines the interconnect topology of a NUMA GPU system
// as a plain data value: per-socket resource specs plus a weighted link
// graph with per-edge lanes, lane bandwidth, latency and switch hops.
//
// The paper's machine (Milic et al., MICRO 2017) is a symmetric
// crossbar — every socket one hop from a central switch — and remains
// the default: an arch.Config with a nil Topology synthesizes exactly
// that star (see Crossbar). Supplying a Topology instead turns the repo
// into a design-space tool for asymmetric fabrics: NVLink-style cliques,
// thin inter-pair bridges, switch trees and heterogeneous sockets, with
// xlink.Fabric routing every message over precomputed deterministic
// shortest paths.
//
// Node numbering: sockets are nodes 0..len(Sockets)-1; the Switches
// count appends that many pure forwarding nodes after them. Links are
// physical cables between two nodes, each built from individually
// reversible lanes (the Section 4 balancer operates per physical link);
// the two directions of a link may be provisioned asymmetrically.
//
// The package deliberately imports nothing but the standard library so
// arch.Config can embed a *Topology without an import cycle.
package topo

import (
	"encoding/json"
	"fmt"
	"strings"
)

// SocketSpec overrides per-socket resources. Zero values inherit the
// uniform value from arch.Config, so the empty spec is "a default
// socket" and a symmetric machine is a slice of empty specs.
type SocketSpec struct {
	// SMs overrides Config.SMsPerSocket for this socket.
	SMs int `json:"sms,omitempty"`
	// L2Bytes overrides Config.L2Bytes for this socket.
	L2Bytes int `json:"l2_bytes,omitempty"`
	// DRAMBandwidth overrides Config.DRAMBandwidth (bytes/cycle).
	DRAMBandwidth float64 `json:"dram_bandwidth,omitempty"`
	// DRAMLatency overrides Config.DRAMLatency (cycles).
	DRAMLatency int `json:"dram_latency,omitempty"`
	// Weight biases the interleaving page/line placement policies
	// toward this socket: a socket of weight w receives w slots per
	// round of the interleave schedule. Zero means 1. All-equal weights
	// reduce exactly to the uniform round-robin of the paper.
	Weight int `json:"weight,omitempty"`
}

// LinkSpec is one physical link: a bidirectional cable between nodes A
// and B whose two directions may carry different lane counts, latencies
// and switch-hop charges. Zero values inherit the Config defaults
// (LanesPerDir, LaneBandwidth, LinkLatency); hops default to zero.
type LinkSpec struct {
	// A and B are the endpoint node ids (socket or switch nodes).
	A int `json:"a"`
	B int `json:"b"`
	// LanesAB and LanesBA are the design-time lane counts of the A→B
	// and B→A directions. The dynamic balancer may re-point lanes at
	// runtime; kernel launches restore this design assignment.
	LanesAB int `json:"lanes_ab,omitempty"`
	LanesBA int `json:"lanes_ba,omitempty"`
	// LaneBandwidth is bytes/cycle per lane (both directions).
	LaneBandwidth float64 `json:"lane_bandwidth,omitempty"`
	// LatencyAB and LatencyBA are the per-traversal wire latencies in
	// cycles.
	LatencyAB int `json:"latency_ab,omitempty"`
	LatencyBA int `json:"latency_ba,omitempty"`
	// HopsAB and HopsBA count switch traversals charged after the
	// message is delivered at the far end of the direction: each hop
	// costs Config.SwitchLatency cycles before the next link (or the
	// destination) sees the message.
	HopsAB int `json:"hops_ab,omitempty"`
	HopsBA int `json:"hops_ba,omitempty"`
}

// Topology is a complete fabric description. Link order is significant:
// it fixes physical link indices (balancer and profiler attachment
// order) and breaks routing ties, so it is part of the canonical
// encoding.
type Topology struct {
	// Sockets lists the GPU sockets; len(Sockets) must match
	// Config.Sockets when the topology is attached to a config.
	Sockets []SocketSpec `json:"sockets"`
	// Switches appends that many pure forwarding nodes (no memory, no
	// SMs) after the socket nodes.
	Switches int `json:"switches,omitempty"`
	// Links is the physical link list.
	Links []LinkSpec `json:"links"`
}

// Nodes reports the total node count (sockets + switches).
func (t *Topology) Nodes() int { return len(t.Sockets) + t.Switches }

// Validate reports a descriptive error for topologies the model cannot
// simulate: out-of-range endpoints, self-loops, duplicate links,
// negative parameters, or a graph that does not connect every node.
func (t *Topology) Validate() error {
	if len(t.Sockets) < 1 {
		return topoError("need at least one socket")
	}
	if t.Switches < 0 {
		return topoError("Switches must be >= 0")
	}
	for i, s := range t.Sockets {
		if s.SMs < 0 || s.L2Bytes < 0 || s.DRAMBandwidth < 0 || s.DRAMLatency < 0 || s.Weight < 0 {
			return topoError(fmt.Sprintf("socket %d: spec values must be >= 0", i))
		}
	}
	n := t.Nodes()
	seen := make(map[[2]int]bool, len(t.Links))
	for i, l := range t.Links {
		if l.A < 0 || l.A >= n || l.B < 0 || l.B >= n {
			return topoError(fmt.Sprintf("link %d: endpoint out of range (nodes 0..%d)", i, n-1))
		}
		if l.A == l.B {
			return topoError(fmt.Sprintf("link %d: self-loop on node %d", i, l.A))
		}
		key := [2]int{l.A, l.B}
		if l.B < l.A {
			key = [2]int{l.B, l.A}
		}
		if seen[key] {
			return topoError(fmt.Sprintf("link %d: duplicate link between nodes %d and %d", i, l.A, l.B))
		}
		seen[key] = true
		if l.LanesAB < 0 || l.LanesBA < 0 || l.LaneBandwidth < 0 ||
			l.LatencyAB < 0 || l.LatencyBA < 0 || l.HopsAB < 0 || l.HopsBA < 0 {
			return topoError(fmt.Sprintf("link %d: parameters must be >= 0", i))
		}
	}
	if n > 1 {
		if len(t.Links) == 0 {
			return topoError("multi-node topology has no links")
		}
		// Every node must be reachable from socket 0 (links are
		// bidirectional, so undirected reachability suffices).
		adj := make([][]int, n)
		for _, l := range t.Links {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
		reach := make([]bool, n)
		reach[0] = true
		queue := []int{0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !reach[v] {
					reach[v] = true
					queue = append(queue, v)
				}
			}
		}
		for v, ok := range reach {
			if !ok {
				return topoError(fmt.Sprintf("%s is unreachable from socket 0", t.NodeName(v)))
			}
		}
	}
	return nil
}

// NodeName names node v for messages and link labels: sockets are
// "s0".."sN", switches "x0".."xM".
func (t *Topology) NodeName(v int) string {
	if v < len(t.Sockets) {
		return fmt.Sprintf("s%d", v)
	}
	return fmt.Sprintf("x%d", v-len(t.Sockets))
}

// Canonical returns the deterministic content encoding of the topology,
// used by the experiment harness's RunKey so persisted results are
// keyed by the exact fabric they were simulated on. Zero (inherited)
// values encode as zeros: the inherited Config defaults are already in
// the key separately.
func (t *Topology) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d.x%d", len(t.Sockets), t.Switches)
	for i, s := range t.Sockets {
		if s == (SocketSpec{}) {
			continue
		}
		fmt.Fprintf(&b, ".s%d:%d/%d/%g/%d/%d", i, s.SMs, s.L2Bytes, s.DRAMBandwidth, s.DRAMLatency, s.Weight)
	}
	for _, l := range t.Links {
		fmt.Fprintf(&b, ".l%d-%d:%d/%d/%g/%d/%d/%d/%d",
			l.A, l.B, l.LanesAB, l.LanesBA, l.LaneBandwidth,
			l.LatencyAB, l.LatencyBA, l.HopsAB, l.HopsBA)
	}
	return b.String()
}

// Parse decodes and validates a JSON topology (see docs/TOPOLOGY.md for
// the schema). Unknown fields are rejected so typos fail loudly.
func Parse(data []byte) (*Topology, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("topo: parse: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Crossbar synthesizes the paper's symmetric crossbar as an explicit
// star: one central switch node, one link per socket. The socket→switch
// direction carries the first half of the one-way link latency and one
// switch hop; the switch→socket direction carries the remainder and no
// hop, so a src→dst message is charged exactly
//
//	latency/2 (egress) + SwitchLatency + latency-latency/2 (ingress)
//
// — the event schedule of the pre-topology fabric, byte for byte. An
// arch.Config with a nil Topology routes over this synthesis.
func Crossbar(sockets, lanesPerDir int, laneBW float64, linkLatency int) *Topology {
	t := &Topology{Sockets: make([]SocketSpec, sockets), Switches: 1}
	sw := sockets
	half := linkLatency / 2
	for i := 0; i < sockets; i++ {
		t.Links = append(t.Links, LinkSpec{
			A: i, B: sw,
			LanesAB: lanesPerDir, LanesBA: lanesPerDir,
			LaneBandwidth: laneBW,
			LatencyAB:     half, LatencyBA: linkLatency - half,
			HopsAB: 1, HopsBA: 0,
		})
	}
	return t
}

type topoError string

func (e topoError) Error() string { return "topo: invalid topology: " + string(e) }
