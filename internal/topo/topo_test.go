package topo

import (
	"strings"
	"testing"
)

func twoSocket() *Topology {
	return &Topology{
		Sockets: make([]SocketSpec, 2),
		Links:   []LinkSpec{{A: 0, B: 1, LanesAB: 4, LanesBA: 4, LaneBandwidth: 1, LatencyAB: 10, LatencyBA: 10}},
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	if err := twoSocket().Validate(); err != nil {
		t.Fatal(err)
	}
	one := &Topology{Sockets: make([]SocketSpec, 1)}
	if err := one.Validate(); err != nil {
		t.Fatalf("single socket with no links must validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
		want string
	}{
		{"no sockets", func(t *Topology) { t.Sockets = nil }, "at least one socket"},
		{"negative switches", func(t *Topology) { t.Switches = -1 }, "Switches"},
		{"endpoint range", func(t *Topology) { t.Links[0].B = 7 }, "out of range"},
		{"self loop", func(t *Topology) { t.Links[0].B = 0 }, "self-loop"},
		{"duplicate", func(t *Topology) { t.Links = append(t.Links, LinkSpec{A: 1, B: 0}) }, "duplicate"},
		{"negative lanes", func(t *Topology) { t.Links[0].LanesAB = -1 }, ">= 0"},
		{"negative weight", func(t *Topology) { t.Sockets[0].Weight = -2 }, ">= 0"},
		{"no links", func(t *Topology) { t.Links = nil }, "no links"},
		{"disconnected", func(t *Topology) { t.Switches = 1 }, "unreachable"},
	}
	for _, tc := range cases {
		top := twoSocket()
		tc.mut(top)
		err := top.Validate()
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCanonicalDeterministicAndDistinct(t *testing.T) {
	a := twoSocket()
	if a.Canonical() != twoSocket().Canonical() {
		t.Fatal("canonical encoding must be deterministic")
	}
	b := twoSocket()
	b.Links[0].LanesBA = 5
	if a.Canonical() == b.Canonical() {
		t.Fatal("lane change must change the canonical encoding")
	}
	c := twoSocket()
	c.Sockets[1].Weight = 3
	if a.Canonical() == c.Canonical() {
		t.Fatal("socket spec change must change the canonical encoding")
	}
	// Link order is routing-significant and must be encoded.
	d := &Topology{
		Sockets: make([]SocketSpec, 3),
		Links: []LinkSpec{
			{A: 0, B: 1, LatencyAB: 1, LatencyBA: 1},
			{A: 1, B: 2, LatencyAB: 1, LatencyBA: 1},
		},
	}
	e := &Topology{
		Sockets: make([]SocketSpec, 3),
		Links: []LinkSpec{
			{A: 1, B: 2, LatencyAB: 1, LatencyBA: 1},
			{A: 0, B: 1, LatencyAB: 1, LatencyBA: 1},
		},
	}
	if d.Canonical() == e.Canonical() {
		t.Fatal("link order must be part of the canonical encoding")
	}
}

func TestParse(t *testing.T) {
	good := `{"sockets":[{},{}],"links":[{"a":0,"b":1,"lanes_ab":4,"lanes_ba":4,"lane_bandwidth":1,"latency_ab":10,"latency_ba":10}]}`
	top, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if top.Nodes() != 2 || len(top.Links) != 1 {
		t.Fatalf("parsed shape wrong: %+v", top)
	}

	if _, err := Parse([]byte(`{"sockets":[{},{}],"links":[{"a":0,"b":1,"lanez":4}]}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
	if _, err := Parse([]byte(`{"sockets":[{},{}],"links":[]}`)); err == nil {
		t.Fatal("invalid topology must be rejected at parse")
	}
	if _, err := Parse([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
}

func TestCrossbarShape(t *testing.T) {
	x := Crossbar(4, 8, 2, 128)
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.Nodes() != 5 || x.Switches != 1 || len(x.Links) != 4 {
		t.Fatalf("crossbar shape wrong: %+v", x)
	}
	for i, l := range x.Links {
		if l.A != i || l.B != 4 {
			t.Fatalf("link %d endpoints %d-%d, want %d-4", i, l.A, l.B, i)
		}
		if l.LatencyAB+l.LatencyBA != 128 {
			t.Fatalf("link %d latency halves sum to %d, want 128", i, l.LatencyAB+l.LatencyBA)
		}
		if l.HopsAB != 1 || l.HopsBA != 0 {
			t.Fatalf("link %d hop charge %d/%d, want 1/0", i, l.HopsAB, l.HopsBA)
		}
	}
	// Odd latency: the split must cover every cycle exactly once.
	odd := Crossbar(2, 8, 2, 127)
	if l := odd.Links[0]; l.LatencyAB+l.LatencyBA != 127 {
		t.Fatalf("odd latency split %d+%d != 127", l.LatencyAB, l.LatencyBA)
	}
	if got := x.NodeName(0); got != "s0" {
		t.Fatalf("NodeName(0) = %q", got)
	}
	if got := x.NodeName(4); got != "x0" {
		t.Fatalf("NodeName(4) = %q", got)
	}
}
