package gpu

import (
	"testing"

	"repro/internal/arch"
)

// TestDatapathFastPathsAllocFree pins the tentpole property of the
// pooled datapath in the regular test tier (CI additionally gates on
// the benchmark's -benchmem output): once warmed, the L1-hit, L2-hit,
// L2-miss and store paths allocate nothing per access. Skipped under
// the race detector, whose instrumentation allocates.
func TestDatapathFastPathsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	h := newBenchHarness(arch.CacheMemSideLocal, 0)
	line := arch.LineID(arch.PageSize / arch.LineSize)
	h.mm.Owner(line, 0)
	lines := []arch.LineID{line}

	warm := func(f func()) float64 {
		// Untimed passes grow pools and first-touch every engine ring
		// bucket's backing array (1024 cycles of ring, a few hundred
		// cycles per op) to steady capacity; AllocsPerRun then measures
		// the warm path.
		for i := 0; i < 500; i++ {
			f()
		}
		return testing.AllocsPerRun(200, f)
	}

	if n := warm(func() { h.load(0, lines); h.eng.Run() }); n != 0 {
		t.Fatalf("L1-hit path allocates %v/op, want 0", n)
	}
	if n := warm(func() {
		h.sock.L1(0).Invalidate(line)
		h.load(0, lines)
		h.eng.Run()
	}); n != 0 {
		t.Fatalf("L2-hit path allocates %v/op, want 0", n)
	}
	if n := warm(func() {
		h.sock.L1(0).Invalidate(line)
		h.sock.L2().Invalidate(line)
		h.load(0, lines)
		h.eng.Run()
	}); n != 0 {
		t.Fatalf("L2-miss path allocates %v/op, want 0", n)
	}
	if n := warm(func() { h.sock.Store(0, lines); h.eng.Run() }); n != 0 {
		t.Fatalf("store path allocates %v/op, want 0", n)
	}
	h2 := newBenchHarness(arch.CacheMemSideLocal, 4)
	merge := []arch.LineID{line, line}
	h2.mm.Owner(line, 0)
	if n := warm(func() {
		for sm := 0; sm < 4; sm++ {
			h2.load(sm, merge)
		}
		h2.eng.Run()
		h2.sock.L2().Invalidate(line)
		for sm := 0; sm < 4; sm++ {
			h2.sock.L1(sm).Invalidate(line)
		}
	}); n != 0 {
		t.Fatalf("MSHR-merge path allocates %v/op, want 0", n)
	}
}
