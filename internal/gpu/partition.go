package gpu

import (
	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xlink"
)

// PartitionController implements the NUMA-aware cache partitioning
// algorithm of Figure 7(d): every SampleTime cycles it estimates the
// socket's incoming inter-GPU bandwidth from the outgoing read-request
// rate, monitors local DRAM bandwidth, and shifts one way between the
// local and remote groups of the L1s and L2 accordingly:
//
//	inter-GPU saturated, DRAM not  → RemoteWays++, LocalWays--
//	DRAM saturated, inter-GPU not  → RemoteWays--, LocalWays++
//	both saturated                 → equalize one step
//	neither                        → do nothing
//
// At least one way always remains per class (starvation guard).
type PartitionController struct {
	socket *Socket
	sample sim.Time
	ticker *sim.Ticker

	// Decisions counts sampling rounds; Shifts counts rounds that moved
	// a way in either direction.
	Decisions stats.Counter
	Shifts    stats.Counter
}

// NewPartitionController attaches a controller to s with the given
// sampling period in cycles (the paper uses 5K).
func NewPartitionController(s *Socket, sampleTime int) *PartitionController {
	if sampleTime < 1 {
		sampleTime = 1
	}
	return &PartitionController{socket: s, sample: sim.Time(sampleTime)}
}

// Start begins periodic sampling; the controller runs until Stop.
func (p *PartitionController) Start(eng *sim.Engine) {
	now := eng.Now()
	p.socket.dram.ResetWindow(now)
	p.socket.remoteReqs.Reset(now)
	p.socket.remoteResp.Reset(now)
	p.ticker = sim.NewTicker(eng, p.sample, p.Step)
	p.ticker.Start()
}

// Stop halts sampling after the current tick.
func (p *PartitionController) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

// DebugTrace, when set, receives every sampling decision's inputs.
var DebugTrace func(sock int, now sim.Time, inUtil, dramUtil float64)

// Step runs one sampling decision at time now. Exposed for tests.
func (p *PartitionController) Step(now sim.Time) {
	p.Decisions.Inc()
	s := p.socket
	defer func() {
		s.dram.ResetWindow(now)
		s.remoteReqs.Reset(now)
		s.remoteResp.Reset(now)
	}()
	if s.port == nil || s.cfg.CacheMode != arch.CacheNUMAAware {
		return
	}
	// Estimated incoming bandwidth: outgoing read requests × response
	// size, already accumulated in bytes by the socket. Using requests
	// rather than observed ingress avoids mistaking incoming writes
	// from other sockets for our own demand (paper, Section 5.1).
	// Projected incoming bandwidth: outgoing read requests × response
	// size; when a standing backlog is draining, arriving responses are
	// the better signal, so take the larger of the two. Incoming writes
	// from other sockets are deliberately excluded (Section 5.1).
	inBW := s.port.IngressBandwidth()
	inUtil := s.remoteReqs.Utilization(now, inBW)
	if resp := s.remoteResp.Utilization(now, inBW); resp > inUtil {
		inUtil = resp
	}
	dramUtil := s.dram.Utilization(now)
	if DebugTrace != nil {
		DebugTrace(int(s.id), now, inUtil, dramUtil)
	}
	satIn := inUtil >= xlink.SaturationThreshold
	satDRAM := dramUtil >= xlink.SaturationThreshold

	switch {
	case satIn && !satDRAM:
		p.shift(mem.ClassLocal, mem.ClassRemote)
	case satDRAM && !satIn:
		p.shift(mem.ClassRemote, mem.ClassLocal)
	case satIn && satDRAM:
		p.equalize()
	}
}

// shift moves one way from donor to receiver in the L2 and every L1.
func (p *PartitionController) shift(from, to mem.Class) {
	moved := p.socket.l2.ShiftWays(from, to)
	for _, l1 := range p.socket.l1s {
		if l1.Partitioned() {
			l1.ShiftWays(from, to)
		}
	}
	if moved {
		p.Shifts.Inc()
	}
}

// equalize steps the L2 (and L1s) one way back toward a balanced split.
func (p *PartitionController) equalize() {
	l2 := p.socket.l2
	switch {
	case l2.Ways(mem.ClassLocal) > l2.Ways(mem.ClassRemote)+1:
		p.shift(mem.ClassLocal, mem.ClassRemote)
	case l2.Ways(mem.ClassRemote) > l2.Ways(mem.ClassLocal)+1:
		p.shift(mem.ClassRemote, mem.ClassLocal)
	}
}
