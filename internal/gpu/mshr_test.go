package gpu

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// chainOf drains entry key's waiter chain (via delete) into a slice.
func chainOf(t *mshrTable, pool *waiterPool, key arch.LineID) []int32 {
	var out []int32
	for n := t.delete(key); n != nilIdx; {
		node := pool.nodes[n]
		pool.release(n)
		out = append(out, node.val)
		n = node.next
	}
	return out
}

func TestMSHRTableBasics(t *testing.T) {
	var tab mshrTable
	var pool waiterPool
	tab.init(8)
	pool.init(8)

	if _, ok := tab.find(42); ok {
		t.Fatal("empty table must not find")
	}
	tab.insert(42)
	if tab.len() != 1 {
		t.Fatalf("len %d", tab.len())
	}
	e, ok := tab.find(42)
	if !ok {
		t.Fatal("inserted key not found")
	}
	tab.appendWaiter(e, 7, &pool)
	e, _ = tab.find(42)
	tab.appendWaiter(e, 9, &pool)

	// Line 0 must be a usable key (the model's address space starts
	// there); regression for sentinel-based designs.
	tab.insert(0)
	if _, ok := tab.find(0); !ok {
		t.Fatal("LineID 0 must be a valid key")
	}

	got := chainOf(&tab, &pool, 42)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("waiter chain %v, want [7 9] (FIFO)", got)
	}
	if tab.len() != 1 {
		t.Fatalf("len after delete %d, want 1", tab.len())
	}
	if pool.used != 0 {
		t.Fatalf("waiter nodes leaked: %d", pool.used)
	}
	if got := chainOf(&tab, &pool, 0); len(got) != 0 {
		t.Fatalf("chain of waiterless entry %v, want empty", got)
	}
}

func TestMSHRTableDeleteAbsentPanics(t *testing.T) {
	var tab mshrTable
	tab.init(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.delete(5)
}

// TestMSHRTableCollisionClusters forces many keys into one probe
// cluster and deletes from the middle, exercising the backward-shift
// path that keeps probing correct without tombstones.
func TestMSHRTableCollisionClusters(t *testing.T) {
	var tab mshrTable
	var pool waiterPool
	tab.init(8)
	pool.init(8)

	// With Fibonacci hashing we cannot easily pick same-slot keys by
	// hand, so force clustering by filling past half load repeatedly
	// and deleting in varying orders.
	keys := make([]arch.LineID, 0, 64)
	for i := 0; i < 64; i++ {
		k := arch.LineID(i * 977)
		keys = append(keys, k)
		tab.insert(k)
		e, ok := tab.find(k)
		if !ok {
			t.Fatalf("key %d lost right after insert", k)
		}
		tab.appendWaiter(e, int32(i), &pool)
	}
	// Delete every third key, then verify the rest still resolve with
	// their chains intact.
	for i := 0; i < 64; i += 3 {
		got := chainOf(&tab, &pool, keys[i])
		if len(got) != 1 || got[0] != int32(i) {
			t.Fatalf("key %d chain %v, want [%d]", keys[i], got, i)
		}
	}
	for i := 0; i < 64; i++ {
		_, ok := tab.find(keys[i])
		if want := i%3 != 0; ok != want {
			t.Fatalf("key %d present=%v want %v after backshift deletes", keys[i], ok, want)
		}
	}
}

// TestMSHRTableAgainstMapReference drives the open-addressed table and
// a Go map with the same randomized workload and compares them at every
// step — insert, merge, delete with chain drain, across growth.
func TestMSHRTableAgainstMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tab mshrTable
	var pool waiterPool
	tab.init(8)
	pool.init(8)
	ref := map[arch.LineID][]int32{}

	keySpace := func() arch.LineID { return arch.LineID(rng.Intn(512) * 31) }
	for step := 0; step < 20000; step++ {
		k := keySpace()
		switch rng.Intn(3) {
		case 0: // primary insert or merge
			if ws, ok := ref[k]; ok {
				e, tok := tab.find(k)
				if !tok {
					t.Fatalf("step %d: key %d in ref but not table", step, k)
				}
				v := int32(step)
				tab.appendWaiter(e, v, &pool)
				ref[k] = append(ws, v)
			} else {
				if _, tok := tab.find(k); tok {
					t.Fatalf("step %d: key %d in table but not ref", step, k)
				}
				tab.insert(k)
				ref[k] = []int32{}
			}
		case 1: // complete a pending line
			if ws, ok := ref[k]; ok {
				got := chainOf(&tab, &pool, k)
				if len(got) != len(ws) {
					t.Fatalf("step %d: key %d chain %v, want %v", step, k, got, ws)
				}
				for i := range ws {
					if got[i] != ws[i] {
						t.Fatalf("step %d: key %d chain %v, want %v", step, k, got, ws)
					}
				}
				delete(ref, k)
			}
		case 2: // presence probe
			_, tok := tab.find(k)
			_, rok := ref[k]
			if tok != rok {
				t.Fatalf("step %d: key %d present=%v ref=%v", step, k, tok, rok)
			}
		}
		if tab.len() != len(ref) {
			t.Fatalf("step %d: len %d, ref %d", step, tab.len(), len(ref))
		}
	}
	// Drain everything; pools must return to empty.
	for k := range ref {
		chainOf(&tab, &pool, k)
	}
	if tab.len() != 0 || pool.used != 0 {
		t.Fatalf("final len=%d poolUsed=%d, want 0/0", tab.len(), pool.used)
	}
}

func TestPoolsRecycleWithoutGrowth(t *testing.T) {
	var txs txPool
	txs.init(4)
	var idx []int32
	for round := 0; round < 100; round++ {
		for i := 0; i < 4; i++ {
			idx = append(idx, txs.alloc(1, 2, 3))
		}
		for _, i := range idx {
			txs.release(i)
		}
		idx = idx[:0]
	}
	if len(txs.txs) != 4 {
		t.Fatalf("pool grew to %d records for 4 concurrent, free-list reuse broken", len(txs.txs))
	}
	if txs.used != 0 {
		t.Fatalf("used %d, want 0", txs.used)
	}
}

func TestHomePoolClearsCallbacks(t *testing.T) {
	var homes homePool
	homes.init(2)
	fired := false
	i := homes.alloc(1, func() { fired = true })
	homes.reqs[i].done()
	homes.release(i)
	if !fired {
		t.Fatal("callback lost")
	}
	if homes.reqs[i].done != nil {
		t.Fatal("release must clear the callback so the pool cannot pin it")
	}
}
