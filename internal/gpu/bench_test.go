package gpu

// Model-level benchmarks: the per-access cost of the memory-system
// datapath (SM port → L1 → NoC → L2 → DRAM/remote), measured one layer
// above the event engine. Each benchmark drives one Socket directly
// with a fixed access pattern, so ns/op reads as ns per access pattern
// and allocs/op as the datapath's allocation rate. The L1-hit, L2-hit
// and store fast paths must report 0 allocs/op — CI gates on it — and
// BENCH_sim.json tracks all of them over time (scripts/bench.sh).

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/smcore"
	"repro/internal/vmm"
)

// benchHarness drives one socket without the experiment stack.
type benchHarness struct {
	eng   *sim.Engine
	cfg   arch.Config
	mm    *vmm.Memory
	drain *Drain
	sock  *Socket
	done  int
}

// newBenchHarness builds a socket in the given cache mode; sms > 0
// overrides the per-socket SM count of arch.TestConfig.
func newBenchHarness(mode arch.CacheMode, sms int) *benchHarness {
	cfg := arch.TestConfig()
	cfg.CacheMode = mode
	if sms > 0 {
		cfg.SMsPerSocket = sms
	}
	eng := sim.New()
	h := &benchHarness{
		eng:   eng,
		cfg:   cfg,
		mm:    vmm.New(cfg.Sockets, arch.PlaceFirstTouch),
		drain: &Drain{},
	}
	remote := &fakeRemote{eng: eng}
	h.sock = NewSocket(eng, cfg, 0, h.mm, remote, nil, h.drain, func(arch.SocketID) {})
	h.sock.onLoadDone = func(sm, slot int) { h.done++ }
	return h
}

// load issues a coalesced warp load from SM sm and counts completions.
func (h *benchHarness) load(sm int, lines []arch.LineID) {
	h.sock.Load(sm, lines, 0)
}

// localLine returns line i of page i, homed on socket 0 (first touch).
func (h *benchHarness) localLine(i int) arch.LineID {
	l := arch.LineID(i * (arch.PageSize / arch.LineSize))
	h.mm.Owner(l, 0)
	return l
}

// remoteLine returns a line homed on socket 1.
func (h *benchHarness) remoteLine(i int) arch.LineID {
	l := arch.LineID((1 << 40) + uint64(i)*(arch.PageSize/arch.LineSize))
	h.mm.Owner(l, 1)
	return l
}

// BenchmarkModelL1Hit is the hottest path in the whole simulator: a
// warp load that hits in the SM's private L1. One op = one 1-line load
// plus draining its completion event.
func BenchmarkModelL1Hit(b *testing.B) {
	h := newBenchHarness(arch.CacheMemSideLocal, 0)
	lines := []arch.LineID{h.localLine(1)}
	h.load(0, lines) // warm: fill L1 (and L2) once
	h.eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.load(0, lines)
		h.eng.Run()
	}
	b.StopTimer()
	if h.done != b.N+1 {
		b.Fatalf("completions %d, want %d", h.done, b.N+1)
	}
}

// BenchmarkModelL2Hit: L1 miss, shared-L2 hit. One op = invalidate the
// line in the L1, then a 1-line load serviced by the L2 (request over
// the NoC, L2 lookup, response, L1 fill).
func BenchmarkModelL2Hit(b *testing.B) {
	h := newBenchHarness(arch.CacheMemSideLocal, 0)
	l := h.localLine(1)
	lines := []arch.LineID{l}
	h.load(0, lines)
	h.eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.sock.L1(0).Invalidate(l)
		h.load(0, lines)
		h.eng.Run()
	}
	b.StopTimer()
	if h.done != b.N+1 {
		b.Fatalf("completions %d, want %d", h.done, b.N+1)
	}
}

// BenchmarkModelL2Miss: the full local path. One op = invalidate the
// line in L1 and L2, then a 1-line load that misses both and fetches
// from DRAM through the MSHR.
func BenchmarkModelL2Miss(b *testing.B) {
	h := newBenchHarness(arch.CacheMemSideLocal, 0)
	l := h.localLine(1)
	lines := []arch.LineID{l}
	h.load(0, lines)
	h.eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.sock.L1(0).Invalidate(l)
		h.sock.L2().Invalidate(l)
		h.load(0, lines)
		h.eng.Run()
	}
	b.StopTimer()
	if h.done != b.N+1 {
		b.Fatalf("completions %d, want %d", h.done, b.N+1)
	}
	if got := h.sock.DRAM().Reads.Value(); got != uint64(b.N)+1 {
		b.Fatalf("DRAM reads %d, want %d", got, b.N+1)
	}
}

// BenchmarkModelRemoteRead: remote-class load in a mode that caches
// remote data (Figure 7(d)). One op = invalidate L1+L2, then a 1-line
// load that posts a remote fetch through rmPending and completes when
// the (fake, fixed-latency) response returns.
func BenchmarkModelRemoteRead(b *testing.B) {
	h := newBenchHarness(arch.CacheNUMAAware, 0)
	l := h.remoteLine(1)
	lines := []arch.LineID{l}
	h.load(0, lines)
	h.eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.sock.L1(0).Invalidate(l)
		h.sock.L2().Invalidate(l)
		h.load(0, lines)
		h.eng.Run()
	}
	b.StopTimer()
	if h.done != b.N+1 {
		b.Fatalf("completions %d, want %d", h.done, b.N+1)
	}
}

// BenchmarkModelStore: the store fast path. One op = one 1-line local
// store (write-allocate hit in the write-back L2) plus its drain.
func BenchmarkModelStore(b *testing.B) {
	h := newBenchHarness(arch.CacheMemSideLocal, 0)
	l := h.localLine(1)
	lines := []arch.LineID{l}
	h.sock.Store(0, lines)
	h.eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.sock.Store(0, lines)
		h.eng.Run()
	}
	b.StopTimer()
	if h.drain.Outstanding() != 0 {
		b.Fatal("stores must drain")
	}
}

// BenchmarkModelMSHRMerge: the miss-merge storm. One op = 16 loads of
// one cold line (4 SMs × 4 warps each): one DRAM fetch, three L2-level
// MSHR merges, twelve L1-level merges. The line advances every op over
// a window far larger than the L2, so the primary always misses.
func BenchmarkModelMSHRMerge(b *testing.B) {
	const smCount, loadsPerSM, window = 4, 4, 8192
	h := newBenchHarness(arch.CacheMemSideLocal, smCount)
	for i := 0; i < window; i++ {
		h.localLine(i) // pre-touch so placement cost is off the timer
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines := []arch.LineID{arch.LineID((i % window) * (arch.PageSize / arch.LineSize))}
		for sm := 0; sm < smCount; sm++ {
			for k := 0; k < loadsPerSM; k++ {
				h.load(sm, lines)
			}
		}
		h.eng.Run()
	}
	b.StopTimer()
	if h.done != b.N*smCount*loadsPerSM {
		b.Fatalf("completions %d, want %d", h.done, b.N*smCount*loadsPerSM)
	}
	if l1, l2, rm := h.sock.DebugPending(); l1+l2+rm != 0 {
		b.Fatalf("pending MSHR entries leaked: %d/%d/%d", l1, l2, rm)
	}
}

// benchStream is a resettable scripted instruction stream, so one CTA
// set can be replayed across benchmark iterations.
type benchStream struct {
	instrs []smcore.Instr
	pos    int
}

func (s *benchStream) Next(in *smcore.Instr) bool {
	if s.pos >= len(s.instrs) {
		return false
	}
	*in = s.instrs[s.pos]
	s.pos++
	return true
}

// BenchmarkModelSocketWorkload: end-to-end through the SMs. One op =
// one small kernel (8 CTAs × 2 warps of interleaved compute, loads and
// stores) dispatched, executed and drained on one socket.
func BenchmarkModelSocketWorkload(b *testing.B) {
	h := newBenchHarness(arch.CacheMemSideLocal, 0)
	h.sock.onLoadDone = h.sock.dispatchLoadDone // real SMs consume completions here
	kernelsDone := 0
	h.sock.onAllDone = func(arch.SocketID) { kernelsDone++ }
	const ctaCount, warps = 8, 2
	var streams []*benchStream
	var ctas []smcore.CTA
	for c := 0; c < ctaCount; c++ {
		cta := smcore.CTA{ID: c}
		for w := 0; w < warps; w++ {
			var list []smcore.Instr
			for i := 0; i < 6; i++ {
				n := c*warps*8 + w*8 + i
				line := h.localLine(n % 97)
				list = append(list,
					smcore.Instr{Op: smcore.OpLoad, Comp: 4, Lines: []arch.LineID{line}},
					smcore.Instr{Op: smcore.OpNone, Comp: 3},
					smcore.Instr{Op: smcore.OpStore, Lines: []arch.LineID{line}},
				)
			}
			st := &benchStream{instrs: list}
			streams = append(streams, st)
			cta.Warps = append(cta.Warps, st)
		}
		ctas = append(ctas, cta)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range streams {
			st.pos = 0
		}
		h.sock.EnqueueKernel(ctas)
		h.eng.Run()
	}
	b.StopTimer()
	if kernelsDone != b.N {
		b.Fatalf("kernels completed %d, want %d", kernelsDone, b.N)
	}
	if h.drain.Outstanding() != 0 {
		b.Fatal("socket must drain")
	}
}
