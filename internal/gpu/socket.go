package gpu

import (
	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/smcore"
	"repro/internal/stats"
	"repro/internal/vmm"
	"repro/internal/xlink"
)

// Remote is the socket's view of the rest of the system: routing of
// read requests and writes to the home socket of a line. The core
// package implements it on top of the switch fabric.
type Remote interface {
	// RemoteRead fetches line l from its home socket; done fires when
	// the data response has arrived back at src.
	RemoteRead(src, home arch.SocketID, l arch.LineID, done func())
	// RemoteWrite pushes a full-line write to the home socket; done
	// fires when the ack returns to src and may be nil.
	RemoteWrite(src, home arch.SocketID, l arch.LineID, done func())
	// RemoteWriteBulk pushes an aggregate of n dirty lines to the home
	// socket in one burst (coherence flush traffic); done fires when
	// the burst has drained at the home memory.
	RemoteWriteBulk(src, home arch.SocketID, n int, done func())
}

type l2Waiter struct {
	sm   int
	done func()
}

// Socket is one GPU of the multi-socket system.
type Socket struct {
	eng    *sim.Engine
	cfg    arch.Config
	id     arch.SocketID
	memMap *vmm.Memory
	remote Remote
	drain  *Drain
	link   *xlink.Link // nil on monolithic single-GPU systems

	SMs  []*smcore.SM
	l1s  []*mem.Cache
	xbar *noc.Crossbar
	l2   *mem.Cache
	dram *mem.DRAM

	// MSHR-style merge tables.
	l1Pending []map[arch.LineID][]func() // per SM
	l2Pending map[arch.LineID][]l2Waiter // local lines fetching from DRAM
	rmPending map[arch.LineID][]l2Waiter // remote lines fetching over the link

	// CTA dispatch.
	queue      []smcore.CTA
	queueHead  int
	ctasLeft   int
	onAllDone  func(arch.SocketID)
	dispatched stats.Counter

	// Outgoing remote read requests and arriving read responses in the
	// current cache-policy window; the Figure 7(d) algorithm estimates
	// incoming bandwidth from them (requests capture projected demand,
	// responses capture a standing backlog draining at line rate).
	remoteReqs stats.Meter
	remoteResp stats.Meter

	// Long-lived completion callbacks, bound once at construction so
	// store drains and writebacks schedule without a per-event closure.
	drainDecFn func()
	allDoneFn  func()

	// Statistics.
	LoadsLocal   stats.Counter
	LoadsRemote  stats.Counter
	StoresLocal  stats.Counter
	StoresRemote stats.Counter
	FlushedLines stats.Counter
}

// NewSocket builds socket id of a system described by cfg. remote may
// be nil only for single-socket systems. link is the socket's port into
// the switch fabric (nil when Sockets == 1).
func NewSocket(eng *sim.Engine, cfg arch.Config, id arch.SocketID, memMap *vmm.Memory, remote Remote, link *xlink.Link, drain *Drain, onAllDone func(arch.SocketID)) *Socket {
	s := &Socket{
		eng:       eng,
		cfg:       cfg,
		id:        id,
		memMap:    memMap,
		remote:    remote,
		drain:     drain,
		link:      link,
		xbar:      noc.New(eng, cfg.NoCBandwidth, cfg.NoCLatency),
		l2:        mem.NewCache(cfg.L2Bytes, cfg.L2Assoc),
		dram:      mem.NewDRAM(eng, cfg.DRAMBandwidth, cfg.DRAMLatency),
		l2Pending: make(map[arch.LineID][]l2Waiter),
		rmPending: make(map[arch.LineID][]l2Waiter),
		onAllDone: onAllDone,
	}
	s.drainDecFn = s.drain.Dec
	s.allDoneFn = func() { s.onAllDone(s.id) }
	for i := 0; i < cfg.SMsPerSocket; i++ {
		s.l1s = append(s.l1s, mem.NewCache(cfg.L1Bytes, cfg.L1Assoc))
		s.l1Pending = append(s.l1Pending, make(map[arch.LineID][]func()))
		s.SMs = append(s.SMs, smcore.NewSM(eng, s, i, cfg.MaxWarpsPerSM, cfg.MaxCTAsPerSM, cfg.IssueWidth, s.onCTADone))
	}
	s.applyModePartitions()
	return s
}

// applyModePartitions sets the L1/L2 way split demanded by the cache
// mode: static 50/50 for mode (b)'s R$, dynamic-start 50/50 for mode
// (d), unpartitioned otherwise.
func (s *Socket) applyModePartitions() {
	switch s.cfg.CacheMode {
	case arch.CacheStaticPartition:
		half := s.cfg.L2Assoc / 2
		_ = s.l2.SetPartition(s.cfg.L2Assoc-half, half)
	case arch.CacheNUMAAware:
		half := s.cfg.L2Assoc / 2
		_ = s.l2.SetPartition(s.cfg.L2Assoc-half, half)
		for _, l1 := range s.l1s {
			h := l1.Assoc() / 2
			if h >= 1 && l1.Assoc()-h >= 1 {
				_ = l1.SetPartition(l1.Assoc()-h, h)
			}
		}
	default:
		s.l2.ClearPartition()
	}
}

// ID reports the socket's identity.
func (s *Socket) ID() arch.SocketID { return s.id }

// L2 exposes the shared cache (tests and the partition controller).
func (s *Socket) L2() *mem.Cache { return s.l2 }

// L1 exposes SM sm's private cache.
func (s *Socket) L1(sm int) *mem.Cache { return s.l1s[sm] }

// DRAM exposes the local memory.
func (s *Socket) DRAM() *mem.DRAM { return s.dram }

// Link exposes the socket's inter-GPU link (nil for single socket).
func (s *Socket) Link() *xlink.Link { return s.link }

// Crossbar exposes the intra-GPU NoC.
func (s *Socket) Crossbar() *noc.Crossbar { return s.xbar }

// classOf resolves the NUMA class and home socket of line l for this
// socket, triggering first-touch placement when applicable.
func (s *Socket) classOf(l arch.LineID) (mem.Class, arch.SocketID) {
	home := s.memMap.Owner(l, s.id)
	if home == s.id {
		return mem.ClassLocal, home
	}
	return mem.ClassRemote, home
}

// cachesRemoteInL2 reports whether this cache mode holds remote lines
// in the local L2 (modes b, c, d).
func (s *Socket) cachesRemoteInL2() bool {
	return s.cfg.CacheMode != arch.CacheMemSideLocal
}

// l2IsCoherent reports whether (part of) the L2 participates in the
// SW coherence protocol and must be invalidated at kernel boundaries.
func (s *Socket) l2IsCoherent() bool {
	return s.cfg.CacheMode != arch.CacheMemSideLocal
}

// ---------------------------------------------------------------------
// smcore.MemPort implementation: the SM-facing side.
// ---------------------------------------------------------------------

// Load issues a coalesced warp load from SM sm; done fires once every
// line has been serviced.
func (s *Socket) Load(sm int, lines []arch.LineID, done func()) {
	if len(lines) == 0 {
		s.eng.ScheduleThunk(1, done)
		return
	}
	left := len(lines)
	oneDone := func() {
		left--
		if left == 0 {
			done()
		}
	}
	for _, l := range lines {
		s.loadLine(sm, l, oneDone)
	}
}

func (s *Socket) loadLine(sm int, l arch.LineID, done func()) {
	cl, home := s.classOf(l)
	if cl == mem.ClassLocal {
		s.LoadsLocal.Inc()
	} else {
		s.LoadsRemote.Inc()
	}
	l1 := s.l1s[sm]
	if l1.Lookup(l, cl) {
		s.eng.ScheduleThunk(sim.Time(s.cfg.L1Latency), done)
		return
	}
	// L1 miss: merge with an outstanding miss to the same line.
	if ws, ok := s.l1Pending[sm][l]; ok {
		s.l1Pending[sm][l] = append(ws, done)
		return
	}
	s.l1Pending[sm][l] = nil
	fill := func() {
		s.fillL1(sm, l, cl)
		s.eng.Schedule(sim.Time(s.cfg.L1Latency), func(sim.Time) {
			done()
			for _, w := range s.l1Pending[sm][l] {
				w()
			}
			delete(s.l1Pending[sm], l)
		})
	}
	// Request crosses the NoC to the L2 complex.
	s.xbar.Send(s.cfg.RequestHeader, func(sim.Time) {
		if cl == mem.ClassLocal {
			s.localL2Read(sm, l, fill)
		} else {
			s.remoteRead(sm, l, home, fill)
		}
	})
}

// fillL1 inserts a returned line into the SM's L1. Write-through L1s
// never hold dirty data, so victims vanish silently.
func (s *Socket) fillL1(sm int, l arch.LineID, cl mem.Class) {
	s.l1s[sm].Fill(l, cl, false)
}

// localL2Read services a local-address read at the L2: hit → respond;
// miss → DRAM fetch with MSHR merging, fill L2, respond.
func (s *Socket) localL2Read(sm int, l arch.LineID, done func()) {
	respond := func() {
		s.eng.Schedule(sim.Time(s.cfg.L2Latency), func(sim.Time) {
			s.xbar.SendFunc(arch.LineSize, done)
		})
	}
	if s.l2.Lookup(l, mem.ClassLocal) {
		respond()
		return
	}
	if ws, ok := s.l2Pending[l]; ok {
		s.l2Pending[l] = append(ws, l2Waiter{sm: sm, done: done})
		return
	}
	s.l2Pending[l] = nil
	s.dram.Read(arch.LineSize, func(sim.Time) {
		s.insertL2(l, mem.ClassLocal, false)
		respond()
		for _, w := range s.l2Pending[l] {
			s.eng.Schedule(sim.Time(s.cfg.L2Latency), func(sim.Time) {
				s.xbar.SendFunc(arch.LineSize, w.done)
			})
		}
		delete(s.l2Pending, l)
	})
}

// remoteRead services a remote-address read: in modes that cache remote
// data the local L2 is consulted first and fills on return; in the
// memory-side mode every request crosses the link.
func (s *Socket) remoteRead(sm int, l arch.LineID, home arch.SocketID, done func()) {
	if s.cachesRemoteInL2() {
		respond := func() {
			s.eng.Schedule(sim.Time(s.cfg.L2Latency), func(sim.Time) {
				s.xbar.SendFunc(arch.LineSize, done)
			})
		}
		if s.l2.Lookup(l, mem.ClassRemote) {
			respond()
			return
		}
		if ws, ok := s.rmPending[l]; ok {
			s.rmPending[l] = append(ws, l2Waiter{sm: sm, done: done})
			return
		}
		s.rmPending[l] = nil
		s.countRemoteRead()
		s.remote.RemoteRead(s.id, home, l, func() {
			s.countRemoteResponse()
			s.insertL2(l, mem.ClassRemote, false)
			respond()
			for _, w := range s.rmPending[l] {
				s.xbar.SendFunc(arch.LineSize, w.done)
			}
			delete(s.rmPending, l)
		})
		return
	}
	// Mode (a): bypass the local L2, no merging structure exists at the
	// link endpoint, every L1 miss pays the full remote round trip.
	s.countRemoteRead()
	s.remote.RemoteRead(s.id, home, l, func() {
		s.countRemoteResponse()
		s.xbar.SendFunc(arch.LineSize, done)
	})
}

func (s *Socket) countRemoteRead() {
	s.remoteReqs.Add(uint64(arch.LineSize + s.cfg.ResponseHeader))
}

func (s *Socket) countRemoteResponse() {
	s.remoteResp.Add(uint64(arch.LineSize + s.cfg.ResponseHeader))
}

// insertL2 fills a line into the shared L2 handling victim writebacks:
// dirty local victims drain to DRAM, dirty remote victims cross the
// link to their home socket.
func (s *Socket) insertL2(l arch.LineID, cl mem.Class, dirty bool) {
	v, evicted := s.l2.Fill(l, cl, dirty)
	if !evicted || !v.Dirty {
		return
	}
	s.writebackVictim(v)
}

func (s *Socket) writebackVictim(v mem.Victim) {
	if v.Class == mem.ClassLocal {
		s.drain.Inc()
		s.dram.WriteFunc(arch.LineSize, s.drainDecFn)
		return
	}
	home, ok := s.memMap.Peek(v.Line)
	if !ok || home == s.id {
		// The page moved under us or the line is local after all;
		// treat as a local writeback.
		s.drain.Inc()
		s.dram.WriteFunc(arch.LineSize, s.drainDecFn)
		return
	}
	s.drain.Inc()
	s.remote.RemoteWrite(s.id, home, v.Line, s.drainDecFn)
}

// Store retires a coalesced warp store from SM sm. Stores never block
// the warp; their drain is tracked for kernel-boundary semantics.
func (s *Socket) Store(sm int, lines []arch.LineID) {
	for _, l := range lines {
		s.storeLine(sm, l)
	}
}

func (s *Socket) storeLine(sm int, l arch.LineID) {
	cl, home := s.classOf(l)
	if cl == mem.ClassLocal {
		s.StoresLocal.Inc()
	} else {
		s.StoresRemote.Inc()
	}
	// Write-through, write-no-allocate L1: update on hit (stays clean,
	// the data also goes below), no fill on miss.
	l1 := s.l1s[sm]
	if l1.Peek(l) {
		l1.Fill(l, cl, false)
	}
	s.drain.Inc()
	s.xbar.Send(arch.LineSize+s.cfg.RequestHeader, func(sim.Time) {
		if cl == mem.ClassLocal {
			// Write-allocate into the write-back L2 (coalesced warp
			// stores cover full lines, so no fetch-on-write).
			s.insertL2(l, mem.ClassLocal, true)
			s.drain.Dec()
			return
		}
		if s.cachesRemoteInL2() {
			if s.cfg.L2WriteThrough {
				// §5.2 sensitivity: line stays clean locally, data
				// crosses the link immediately.
				s.insertL2(l, mem.ClassRemote, false)
				s.remote.RemoteWrite(s.id, home, l, s.drainDecFn)
				return
			}
			s.insertL2(l, mem.ClassRemote, true)
			s.drain.Dec()
			return
		}
		// Mode (a): remote writes cross the link immediately.
		s.remote.RemoteWrite(s.id, home, l, s.drainDecFn)
	})
}

// ---------------------------------------------------------------------
// Home-side servicing of requests arriving from other sockets.
// ---------------------------------------------------------------------

// HomeRead services a read request that arrived from another socket for
// a line homed here; done fires when the data is ready to ship back.
// Memory-side L2 portions (modes a and b) cache the access; GPU-side L2
// organizations serve hits but do not allocate for remote requesters.
func (s *Socket) HomeRead(l arch.LineID, done func()) {
	if s.l2.Lookup(l, mem.ClassLocal) {
		s.eng.ScheduleThunk(sim.Time(s.cfg.L2Latency), done)
		return
	}
	memSide := s.cfg.CacheMode == arch.CacheMemSideLocal || s.cfg.CacheMode == arch.CacheStaticPartition
	s.dram.Read(arch.LineSize, func(sim.Time) {
		if memSide {
			s.insertL2(l, mem.ClassLocal, false)
		}
		done()
	})
}

// HomeWrite applies a full-line write arriving from another socket;
// done fires when it is safe to ack.
func (s *Socket) HomeWrite(l arch.LineID, done func()) {
	memSide := s.cfg.CacheMode == arch.CacheMemSideLocal || s.cfg.CacheMode == arch.CacheStaticPartition
	if memSide {
		s.insertL2(l, mem.ClassLocal, true)
		s.eng.ScheduleThunk(sim.Time(s.cfg.L2Latency), done)
		return
	}
	if s.l2.MarkDirty(l) {
		s.eng.ScheduleThunk(sim.Time(s.cfg.L2Latency), done)
		return
	}
	s.dram.WriteFunc(arch.LineSize, done)
}

// HomeWriteBulk drains an aggregate flush burst of n lines into DRAM.
func (s *Socket) HomeWriteBulk(n int, done func()) {
	s.dram.WriteFunc(n*arch.LineSize, done)
}

// ---------------------------------------------------------------------
// CTA dispatch.
// ---------------------------------------------------------------------

// EnqueueKernel queues the socket's share of a kernel's CTAs and begins
// dispatching them to SMs. An empty share completes immediately.
func (s *Socket) EnqueueKernel(ctas []smcore.CTA) {
	s.queue = ctas
	s.queueHead = 0
	s.ctasLeft = len(ctas)
	if s.ctasLeft == 0 {
		// No work for this socket in this kernel.
		s.eng.ScheduleThunk(1, s.allDoneFn)
		return
	}
	for _, sm := range s.SMs {
		s.fillSM(sm)
	}
}

func (s *Socket) fillSM(sm *smcore.SM) {
	for s.queueHead < len(s.queue) && sm.CanAccept(len(s.queue[s.queueHead].Warps)) {
		sm.Launch(s.queue[s.queueHead])
		s.queueHead++
		s.dispatched.Inc()
	}
}

func (s *Socket) onCTADone(smID, ctaID int) {
	s.ctasLeft--
	s.fillSM(s.SMs[smID])
	if s.ctasLeft == 0 {
		s.queue = nil
		s.onAllDone(s.id)
	}
}

// ---------------------------------------------------------------------
// Coherence flush at kernel boundaries (Section 5).
// ---------------------------------------------------------------------

// FlushCaches performs the software coherence actions of a kernel
// boundary: bulk-invalidate every L1, and — when the L2 participates in
// coherence — invalidate its coherent portion, draining dirty lines to
// their home memories. Dirty flush traffic is aggregated per
// destination into bulk bursts. The caller waits on the shared Drain.
func (s *Socket) FlushCaches() {
	for _, l1 := range s.l1s {
		l1.InvalidateAll(nil) // write-through: never dirty
	}
	if !s.l2IsCoherent() || s.cfg.NoL2Invalidate {
		return
	}
	var keep func(mem.Class) bool
	if s.cfg.CacheMode == arch.CacheStaticPartition {
		// Only the R$ half is GPU-side coherent; the memory-side half
		// survives kernel boundaries.
		keep = func(cl mem.Class) bool { return cl == mem.ClassLocal }
	}
	dirty := s.l2.InvalidateAll(keep)
	s.flushDirty(dirty)
}

// FlushAll force-invalidates everything including memory-side contents;
// used at end of application so every configuration pays its residual
// writeback debt.
func (s *Socket) FlushAll() {
	for _, l1 := range s.l1s {
		l1.InvalidateAll(nil)
	}
	dirty := s.l2.InvalidateAll(nil)
	s.flushDirty(dirty)
}

func (s *Socket) flushDirty(dirty []mem.Victim) {
	if len(dirty) == 0 {
		return
	}
	s.FlushedLines.Advance(uint64(len(dirty)))
	localLines := 0
	perHome := make(map[arch.SocketID]int)
	for _, v := range dirty {
		if v.Class == mem.ClassLocal {
			localLines++
			continue
		}
		home, ok := s.memMap.Peek(v.Line)
		if !ok || home == s.id {
			localLines++
			continue
		}
		perHome[home]++
	}
	if localLines > 0 {
		s.drain.Inc()
		s.dram.WriteFunc(localLines*arch.LineSize, s.drainDecFn)
	}
	// Flush bursts must leave in socket order, not map order: ranging
	// over perHome directly made the schedule — and through it the whole
	// simulation — vary from process to process on ≥4-socket systems
	// (caught by the golden-master tier as a 3-cycle flicker in fig11).
	for home := arch.SocketID(0); int(home) < s.cfg.Sockets; home++ {
		if n := perHome[home]; n > 0 {
			s.drain.Inc()
			s.remote.RemoteWriteBulk(s.id, home, n, s.drainDecFn)
		}
	}
}

// ResetForKernel re-arms per-kernel state: way partitions return to
// their mode defaults (Step 0 of the Figure 7(d) algorithm) and the
// policy sampling windows reopen.
func (s *Socket) ResetForKernel(now sim.Time) {
	s.applyModePartitions()
	s.dram.ResetWindow(now)
	s.remoteReqs.Reset(now)
	s.remoteResp.Reset(now)
}

// RemoteReqWindow exposes the outgoing-read-request meter to the
// partition controller.
func (s *Socket) RemoteReqWindow() *stats.Meter { return &s.remoteReqs }

// RemoteRespWindow exposes the arriving-read-response meter.
func (s *Socket) RemoteRespWindow() *stats.Meter { return &s.remoteResp }

// Idle reports whether the socket has no queued or resident work.
func (s *Socket) Idle() bool {
	if s.ctasLeft > 0 {
		return false
	}
	for _, sm := range s.SMs {
		if !sm.Idle() {
			return false
		}
	}
	return true
}

// DebugPending reports outstanding miss-merge entries: summed L1
// pending lines, local L2 pending, remote pending. Diagnostic only.
func (s *Socket) DebugPending() (l1, l2, rm int) {
	for _, m := range s.l1Pending {
		l1 += len(m)
	}
	return l1, len(s.l2Pending), len(s.rmPending)
}

// DebugCTAs reports queued-but-undispatched and resident CTA counts.
func (s *Socket) DebugCTAs() (queued, resident int) {
	if s.queueHead < len(s.queue) {
		queued = len(s.queue) - s.queueHead
	}
	for _, sm := range s.SMs {
		resident += sm.ResidentCTAs()
	}
	return
}
