package gpu

import (
	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/smcore"
	"repro/internal/stats"
	"repro/internal/vmm"
	"repro/internal/xlink"
)

// Remote is the socket's view of the rest of the system: routing of
// read requests and writes to the home socket of a line. The core
// package implements it on top of the switch fabric.
type Remote interface {
	// RemoteRead fetches line l from its home socket; done fires when
	// the data response has arrived back at src.
	RemoteRead(src, home arch.SocketID, l arch.LineID, done func())
	// RemoteWrite pushes a full-line write to the home socket; done
	// fires when the ack returns to src and may be nil.
	RemoteWrite(src, home arch.SocketID, l arch.LineID, done func())
	// RemoteWriteBulk pushes an aggregate of n dirty lines to the home
	// socket in one burst (coherence flush traffic); done fires when
	// the burst has drained at the home memory.
	RemoteWriteBulk(src, home arch.SocketID, n int, done func())
}

// Socket is one GPU of the multi-socket system.
//
// Its memory datapath is an allocation-free transaction pipeline: a
// warp load allocates one pooled memTx, each L1 miss or store one
// pooled lineReq, and every stage (NoC hop, L2 lookup, DRAM fetch,
// response, L1 fill) schedules the next via a pre-bound sim.ArgEvent
// carrying the pool index — no closure is created anywhere on the
// local load or store path. MSHR merging runs through open-addressed
// tables whose merged waiters are pooled chain nodes (see mshr.go).
type Socket struct {
	eng    *sim.Engine
	cfg    arch.Config
	id     arch.SocketID
	memMap *vmm.Memory
	remote Remote
	drain  *Drain
	port   *xlink.Port // nil on monolithic single-GPU systems

	SMs  []*smcore.SM
	l1s  []*mem.Cache
	xbar *noc.Crossbar
	l2   *mem.Cache
	dram *mem.DRAM

	// MSHR-style merge tables (open-addressed; see mshr.go). L1 waiter
	// chains hold memTx indices, L2/remote chains hold lineReq indices.
	l1Pending []mshrTable // per SM
	l2Pending mshrTable   // local lines fetching from DRAM
	rmPending mshrTable   // remote lines fetching over the link

	// Datapath record pools.
	txs   txPool
	reqs  reqPool
	chain waiterPool
	homes homePool

	// Pre-bound stage continuations (one method value each, bound at
	// construction; every event on the datapath reuses them with a pool
	// index as argument).
	txLineDoneEv sim.ArgEvent
	l2ReqEv      sim.ArgEvent
	l2RespEv     sim.ArgEvent
	l1FillEv     sim.ArgEvent
	l1DoneEv     sim.ArgEvent
	dramRespEv   sim.ArgEvent
	storeEv      sim.ArgEvent
	homeReadEv   sim.ArgEvent

	// onLoadDone dispatches a completed warp load back to its SM; tests
	// and benchmarks may replace it to observe completions directly.
	onLoadDone func(sm, slot int)

	// memSide reports whether the L2 (or its local half) is a
	// memory-side cache that allocates for remote requesters.
	memSide bool

	// CTA dispatch.
	queue      []smcore.CTA
	queueHead  int
	ctasLeft   int
	onAllDone  func(arch.SocketID)
	dispatched stats.Counter

	// Outgoing remote read requests and arriving read responses in the
	// current cache-policy window; the Figure 7(d) algorithm estimates
	// incoming bandwidth from them (requests capture projected demand,
	// responses capture a standing backlog draining at line rate).
	remoteReqs stats.Meter
	remoteResp stats.Meter

	// Long-lived completion callbacks, bound once at construction so
	// store drains and writebacks schedule without a per-event closure.
	drainDecFn func()
	allDoneFn  func()

	// flushPerHome is the reusable per-flush dirty-line tally, indexed
	// by home socket (replaces a map allocated per flush).
	flushPerHome []int

	// Statistics.
	LoadsLocal   stats.Counter
	LoadsRemote  stats.Counter
	StoresLocal  stats.Counter
	StoresRemote stats.Counter
	FlushedLines stats.Counter
}

// NewSocket builds socket id of a system described by cfg. remote may
// be nil only for single-socket systems. port is the socket's
// attachment point into the fabric (nil when Sockets == 1).
func NewSocket(eng *sim.Engine, cfg arch.Config, id arch.SocketID, memMap *vmm.Memory, remote Remote, port *xlink.Port, drain *Drain, onAllDone func(arch.SocketID)) *Socket {
	s := &Socket{
		eng:       eng,
		cfg:       cfg,
		id:        id,
		memMap:    memMap,
		remote:    remote,
		drain:     drain,
		port:      port,
		xbar:      noc.New(eng, cfg.NoCBandwidth, cfg.NoCLatency),
		l2:        mem.NewCache(cfg.L2Bytes, cfg.L2Assoc),
		dram:      mem.NewDRAM(eng, cfg.DRAMBandwidth, cfg.DRAMLatency),
		onAllDone: onAllDone,
		memSide:   cfg.CacheMode == arch.CacheMemSideLocal || cfg.CacheMode == arch.CacheStaticPartition,
	}
	s.drainDecFn = s.drain.Dec
	s.allDoneFn = func() { s.onAllDone(s.id) }
	s.onLoadDone = s.dispatchLoadDone

	warps := cfg.SMsPerSocket * cfg.MaxWarpsPerSM
	s.txs.init(warps)
	s.reqs.init(warps)
	s.chain.init(warps)
	s.homes.init(64)
	s.l2Pending.init(256)
	s.rmPending.init(256)
	s.flushPerHome = make([]int, cfg.Sockets)

	s.txLineDoneEv = s.txLineDoneArg
	s.l2ReqEv = s.l2Req
	s.l2RespEv = s.l2Resp
	s.l1FillEv = s.l1Fill
	s.l1DoneEv = s.l1Done
	s.dramRespEv = s.dramResp
	s.storeEv = s.storeArrive
	s.homeReadEv = s.homeReadDone

	for i := 0; i < cfg.SMsPerSocket; i++ {
		s.l1s = append(s.l1s, mem.NewCache(cfg.L1Bytes, cfg.L1Assoc))
		s.l1Pending = append(s.l1Pending, mshrTable{})
		s.l1Pending[i].init(64)
		s.SMs = append(s.SMs, smcore.NewSM(eng, s, i, cfg.MaxWarpsPerSM, cfg.MaxCTAsPerSM, cfg.IssueWidth, s.onCTADone))
	}
	s.applyModePartitions()
	return s
}

// applyModePartitions sets the L1/L2 way split demanded by the cache
// mode: static 50/50 for mode (b)'s R$, dynamic-start 50/50 for mode
// (d), unpartitioned otherwise.
func (s *Socket) applyModePartitions() {
	switch s.cfg.CacheMode {
	case arch.CacheStaticPartition:
		half := s.cfg.L2Assoc / 2
		_ = s.l2.SetPartition(s.cfg.L2Assoc-half, half)
	case arch.CacheNUMAAware:
		half := s.cfg.L2Assoc / 2
		_ = s.l2.SetPartition(s.cfg.L2Assoc-half, half)
		for _, l1 := range s.l1s {
			h := l1.Assoc() / 2
			if h >= 1 && l1.Assoc()-h >= 1 {
				_ = l1.SetPartition(l1.Assoc()-h, h)
			}
		}
	default:
		s.l2.ClearPartition()
	}
}

// ID reports the socket's identity.
func (s *Socket) ID() arch.SocketID { return s.id }

// L2 exposes the shared cache (tests and the partition controller).
func (s *Socket) L2() *mem.Cache { return s.l2 }

// L1 exposes SM sm's private cache.
func (s *Socket) L1(sm int) *mem.Cache { return s.l1s[sm] }

// DRAM exposes the local memory.
func (s *Socket) DRAM() *mem.DRAM { return s.dram }

// Port exposes the socket's fabric attachment (nil for single socket).
func (s *Socket) Port() *xlink.Port { return s.port }

// Crossbar exposes the intra-GPU NoC.
func (s *Socket) Crossbar() *noc.Crossbar { return s.xbar }

// classOf resolves the NUMA class and home socket of line l for this
// socket, triggering first-touch placement when applicable. This is the
// single vmm lookup an access pays; the result rides in the pooled
// lineReq for the rest of the line's lifetime.
func (s *Socket) classOf(l arch.LineID) (mem.Class, arch.SocketID) {
	home := s.memMap.Owner(l, s.id)
	if home == s.id {
		return mem.ClassLocal, home
	}
	return mem.ClassRemote, home
}

// cachesRemoteInL2 reports whether this cache mode holds remote lines
// in the local L2 (modes b, c, d).
func (s *Socket) cachesRemoteInL2() bool {
	return s.cfg.CacheMode != arch.CacheMemSideLocal
}

// l2IsCoherent reports whether (part of) the L2 participates in the
// SW coherence protocol and must be invalidated at kernel boundaries.
func (s *Socket) l2IsCoherent() bool {
	return s.cfg.CacheMode != arch.CacheMemSideLocal
}

// ---------------------------------------------------------------------
// smcore.MemPort implementation: the SM-facing side.
//
// Stage graph for a load line (each arrow is one pre-bound ArgEvent
// carrying a pool index; times are identical to the closure-based
// datapath this replaced):
//
//	loadLine ──L1 hit──────────────────────────────▶ txLineDone
//	    │ miss (lineReq)
//	    ├─merge──▶ l1Pending chain  (drained by l1Done)
//	    └─xbar──▶ l2Req ──┬─L2 hit─────▶ l2Resp ──xbar──▶ l1Fill ──▶ l1Done
//	                      ├─merge─────▶ l2/rmPending chain
//	                      ├─DRAM──────▶ dramResp ─▶ l2Resp ─▶ …
//	                      └─remote────▶ remoteResp ─▶ l2Resp ─▶ …
// ---------------------------------------------------------------------

// dispatchLoadDone hands a completed warp load back to its SM.
func (s *Socket) dispatchLoadDone(sm, slot int) { s.SMs[sm].LoadDone(slot) }

// Load issues a coalesced warp load from SM sm for the warp in slot;
// the SM's LoadDone(slot) fires once every line has been serviced.
func (s *Socket) Load(sm int, lines []arch.LineID, slot int) {
	if len(lines) == 0 {
		// No lines: complete after the 1-cycle issue turnaround.
		tx := s.txs.alloc(int32(sm), int32(slot), 1)
		s.eng.ScheduleArg(1, s.txLineDoneEv, int(tx))
		return
	}
	tx := s.txs.alloc(int32(sm), int32(slot), int32(len(lines)))
	for _, l := range lines {
		s.loadLine(sm, l, tx)
	}
}

func (s *Socket) loadLine(sm int, l arch.LineID, tx int32) {
	cl, home := s.classOf(l)
	if cl == mem.ClassLocal {
		s.LoadsLocal.Inc()
	} else {
		s.LoadsRemote.Inc()
	}
	l1 := s.l1s[sm]
	if l1.Lookup(l, cl) {
		s.eng.ScheduleArg(sim.Time(s.cfg.L1Latency), s.txLineDoneEv, int(tx))
		return
	}
	// L1 miss: merge with an outstanding miss to the same line.
	t := &s.l1Pending[sm]
	if e, ok := t.find(l); ok {
		t.appendWaiter(e, tx, &s.chain)
		return
	}
	t.insert(l)
	req := s.reqs.alloc(l, home, cl, int32(sm), tx)
	// Request crosses the NoC to the L2 complex.
	s.xbar.SendArg(s.cfg.RequestHeader, s.l2ReqEv, int(req))
}

// txLineDoneArg retires one line of a warp-load transaction; when it
// was the last, the SM is notified and the transaction freed.
func (s *Socket) txLineDoneArg(_ sim.Time, tx int) { s.txLineDone(int32(tx)) }

func (s *Socket) txLineDone(tx int32) {
	t := &s.txs.txs[tx]
	t.left--
	if t.left > 0 {
		return
	}
	sm, slot := int(t.sm), int(t.slot)
	s.txs.release(tx)
	s.onLoadDone(sm, slot)
}

// l2Req services a read request arriving at the L2 complex.
func (s *Socket) l2Req(_ sim.Time, req int) {
	if s.reqs.reqs[req].cl == mem.ClassLocal {
		s.localL2Read(int32(req))
	} else {
		s.remoteRead(int32(req))
	}
}

// l2Resp pays the L2 access latency and ships the line back over the
// NoC to the requesting SM.
func (s *Socket) l2Resp(_ sim.Time, req int) {
	s.xbar.SendArg(arch.LineSize, s.l1FillEv, req)
}

// l1Fill installs the returned line in the issuing SM's L1 and pays the
// L1 fill latency before completion.
func (s *Socket) l1Fill(_ sim.Time, req int) {
	r := &s.reqs.reqs[req]
	s.fillL1(int(r.sm), r.line, r.cl)
	s.eng.ScheduleArg(sim.Time(s.cfg.L1Latency), s.l1DoneEv, req)
}

// l1Done completes the primary transaction and every load that merged
// on the line at the L1 level, in merge order.
func (s *Socket) l1Done(_ sim.Time, req int) {
	r := s.reqs.reqs[req] // copied: released before the callbacks run
	head := s.l1Pending[r.sm].delete(r.line)
	s.reqs.release(int32(req))
	s.txLineDone(r.tx)
	for n := head; n != nilIdx; {
		node := s.chain.nodes[n]
		s.chain.release(n)
		s.txLineDone(node.val)
		n = node.next
	}
}

// fillL1 inserts a returned line into the SM's L1. Write-through L1s
// never hold dirty data, so victims vanish silently.
func (s *Socket) fillL1(sm int, l arch.LineID, cl mem.Class) {
	s.l1s[sm].Fill(l, cl, false)
}

// localL2Read services a local-address read at the L2: hit → respond;
// miss → DRAM fetch with MSHR merging, fill L2, respond.
func (s *Socket) localL2Read(req int32) {
	r := &s.reqs.reqs[req]
	if s.l2.Lookup(r.line, mem.ClassLocal) {
		s.eng.ScheduleArg(sim.Time(s.cfg.L2Latency), s.l2RespEv, int(req))
		return
	}
	if e, ok := s.l2Pending.find(r.line); ok {
		s.l2Pending.appendWaiter(e, req, &s.chain)
		return
	}
	s.l2Pending.insert(r.line)
	s.dram.ReadArg(arch.LineSize, s.dramRespEv, int(req))
}

// dramResp fills the fetched line into the L2 and responds to the
// primary requester and every SM-level request that merged on it.
func (s *Socket) dramResp(_ sim.Time, req int) {
	r := &s.reqs.reqs[req]
	s.insertL2(r.line, mem.ClassLocal, false)
	head := s.l2Pending.delete(r.line)
	s.eng.ScheduleArg(sim.Time(s.cfg.L2Latency), s.l2RespEv, req)
	for n := head; n != nilIdx; {
		node := s.chain.nodes[n]
		s.chain.release(n)
		s.eng.ScheduleArg(sim.Time(s.cfg.L2Latency), s.l2RespEv, int(node.val))
		n = node.next
	}
}

// remoteRead services a remote-address read: in modes that cache remote
// data the local L2 is consulted first and fills on return; in the
// memory-side mode every request crosses the link.
func (s *Socket) remoteRead(req int32) {
	r := &s.reqs.reqs[req]
	if s.cachesRemoteInL2() {
		if s.l2.Lookup(r.line, mem.ClassRemote) {
			s.eng.ScheduleArg(sim.Time(s.cfg.L2Latency), s.l2RespEv, int(req))
			return
		}
		if e, ok := s.rmPending.find(r.line); ok {
			s.rmPending.appendWaiter(e, req, &s.chain)
			return
		}
		s.rmPending.insert(r.line)
		s.countRemoteRead()
		idx := int(req)
		s.remote.RemoteRead(s.id, r.home, r.line, func() { s.remoteFillResp(idx) })
		return
	}
	// Mode (a): bypass the local L2, no merging structure exists at the
	// link endpoint, every L1 miss pays the full remote round trip.
	s.countRemoteRead()
	idx := int(req)
	s.remote.RemoteRead(s.id, r.home, r.line, func() {
		s.countRemoteResponse()
		s.xbar.SendArg(arch.LineSize, s.l1FillEv, idx)
	})
}

// remoteFillResp handles a remote data response in the cached-remote modes:
// fill the L2, respond to the primary and to every merged request. Every
// responder — primary and merged waiters alike — pays the L2 access
// latency before the line crosses the NoC, exactly as on the local DRAM
// path (dramResp): the data is served out of the just-filled L2 either
// way. (Merged waiters used to skip the charge, a timing asymmetry
// inherited from the closure-based datapath.)
func (s *Socket) remoteFillResp(req int) {
	r := &s.reqs.reqs[req]
	s.countRemoteResponse()
	s.insertL2(r.line, mem.ClassRemote, false)
	head := s.rmPending.delete(r.line)
	s.eng.ScheduleArg(sim.Time(s.cfg.L2Latency), s.l2RespEv, req)
	for n := head; n != nilIdx; {
		node := s.chain.nodes[n]
		s.chain.release(n)
		s.eng.ScheduleArg(sim.Time(s.cfg.L2Latency), s.l2RespEv, int(node.val))
		n = node.next
	}
}

func (s *Socket) countRemoteRead() {
	s.remoteReqs.Add(uint64(arch.LineSize + s.cfg.ResponseHeader))
}

func (s *Socket) countRemoteResponse() {
	s.remoteResp.Add(uint64(arch.LineSize + s.cfg.ResponseHeader))
}

// insertL2 fills a line into the shared L2 handling victim writebacks:
// dirty local victims drain to DRAM, dirty remote victims cross the
// link to their home socket.
func (s *Socket) insertL2(l arch.LineID, cl mem.Class, dirty bool) {
	v, evicted := s.l2.Fill(l, cl, dirty)
	if !evicted || !v.Dirty {
		return
	}
	s.writebackVictim(v)
}

func (s *Socket) writebackVictim(v mem.Victim) {
	if v.Class == mem.ClassLocal {
		s.drain.Inc()
		s.dram.WriteFunc(arch.LineSize, s.drainDecFn)
		return
	}
	home, ok := s.memMap.Peek(v.Line)
	if !ok || home == s.id {
		// The page moved under us or the line is local after all;
		// treat as a local writeback.
		s.drain.Inc()
		s.dram.WriteFunc(arch.LineSize, s.drainDecFn)
		return
	}
	s.drain.Inc()
	s.remote.RemoteWrite(s.id, home, v.Line, s.drainDecFn)
}

// Store retires a coalesced warp store from SM sm. Stores never block
// the warp; their drain is tracked for kernel-boundary semantics.
func (s *Socket) Store(sm int, lines []arch.LineID) {
	for _, l := range lines {
		s.storeLine(sm, l)
	}
}

func (s *Socket) storeLine(sm int, l arch.LineID) {
	cl, home := s.classOf(l)
	if cl == mem.ClassLocal {
		s.StoresLocal.Inc()
	} else {
		s.StoresRemote.Inc()
	}
	// Write-through, write-no-allocate L1: update on hit (stays clean,
	// the data also goes below), no fill on miss.
	l1 := s.l1s[sm]
	if l1.Peek(l) {
		l1.Fill(l, cl, false)
	}
	s.drain.Inc()
	st := s.reqs.alloc(l, home, cl, int32(sm), nilIdx)
	s.xbar.SendArg(arch.LineSize+s.cfg.RequestHeader, s.storeEv, int(st))
}

// storeArrive retires a store at the L2 complex.
func (s *Socket) storeArrive(_ sim.Time, st int) {
	r := s.reqs.reqs[st] // copied: released before downstream calls
	s.reqs.release(int32(st))
	if r.cl == mem.ClassLocal {
		// Write-allocate into the write-back L2 (coalesced warp
		// stores cover full lines, so no fetch-on-write).
		s.insertL2(r.line, mem.ClassLocal, true)
		s.drain.Dec()
		return
	}
	if s.cachesRemoteInL2() {
		if s.cfg.L2WriteThrough {
			// §5.2 sensitivity: line stays clean locally, data
			// crosses the link immediately.
			s.insertL2(r.line, mem.ClassRemote, false)
			s.remote.RemoteWrite(s.id, r.home, r.line, s.drainDecFn)
			return
		}
		s.insertL2(r.line, mem.ClassRemote, true)
		s.drain.Dec()
		return
	}
	// Mode (a): remote writes cross the link immediately.
	s.remote.RemoteWrite(s.id, r.home, r.line, s.drainDecFn)
}

// ---------------------------------------------------------------------
// Home-side servicing of requests arriving from other sockets.
// ---------------------------------------------------------------------

// HomeRead services a read request that arrived from another socket for
// a line homed here; done fires when the data is ready to ship back.
// Memory-side L2 portions (modes a and b) cache the access; GPU-side L2
// organizations serve hits but do not allocate for remote requesters.
func (s *Socket) HomeRead(l arch.LineID, done func()) {
	if s.l2.Lookup(l, mem.ClassLocal) {
		s.eng.ScheduleThunk(sim.Time(s.cfg.L2Latency), done)
		return
	}
	if !s.memSide {
		s.dram.ReadFunc(arch.LineSize, done)
		return
	}
	h := s.homes.alloc(l, done)
	s.dram.ReadArg(arch.LineSize, s.homeReadEv, int(h))
}

// homeReadDone caches a fetched line in the memory-side L2 and responds.
func (s *Socket) homeReadDone(_ sim.Time, idx int) {
	h := s.homes.reqs[idx] // copied: released before the callback runs
	s.homes.release(int32(idx))
	s.insertL2(h.line, mem.ClassLocal, false)
	h.done()
}

// HomeWrite applies a full-line write arriving from another socket;
// done fires when it is safe to ack.
func (s *Socket) HomeWrite(l arch.LineID, done func()) {
	if s.memSide {
		s.insertL2(l, mem.ClassLocal, true)
		s.eng.ScheduleThunk(sim.Time(s.cfg.L2Latency), done)
		return
	}
	if s.l2.MarkDirty(l) {
		s.eng.ScheduleThunk(sim.Time(s.cfg.L2Latency), done)
		return
	}
	s.dram.WriteFunc(arch.LineSize, done)
}

// HomeWriteBulk drains an aggregate flush burst of n lines into DRAM.
func (s *Socket) HomeWriteBulk(n int, done func()) {
	s.dram.WriteFunc(n*arch.LineSize, done)
}

// ---------------------------------------------------------------------
// CTA dispatch.
// ---------------------------------------------------------------------

// EnqueueKernel queues the socket's share of a kernel's CTAs and begins
// dispatching them to SMs. An empty share completes immediately.
func (s *Socket) EnqueueKernel(ctas []smcore.CTA) {
	s.queue = ctas
	s.queueHead = 0
	s.ctasLeft = len(ctas)
	if s.ctasLeft == 0 {
		// No work for this socket in this kernel.
		s.eng.ScheduleThunk(1, s.allDoneFn)
		return
	}
	for _, sm := range s.SMs {
		s.fillSM(sm)
	}
}

func (s *Socket) fillSM(sm *smcore.SM) {
	for s.queueHead < len(s.queue) && sm.CanAccept(len(s.queue[s.queueHead].Warps)) {
		sm.Launch(s.queue[s.queueHead])
		s.queueHead++
		s.dispatched.Inc()
	}
}

func (s *Socket) onCTADone(smID, ctaID int) {
	s.ctasLeft--
	s.fillSM(s.SMs[smID])
	if s.ctasLeft == 0 {
		s.queue = nil
		s.onAllDone(s.id)
	}
}

// ---------------------------------------------------------------------
// Coherence flush at kernel boundaries (Section 5).
// ---------------------------------------------------------------------

// FlushCaches performs the software coherence actions of a kernel
// boundary: bulk-invalidate every L1, and — when the L2 participates in
// coherence — invalidate its coherent portion, draining dirty lines to
// their home memories. Dirty flush traffic is aggregated per
// destination into bulk bursts. The caller waits on the shared Drain.
func (s *Socket) FlushCaches() {
	for _, l1 := range s.l1s {
		l1.InvalidateAll(nil) // write-through: never dirty
	}
	if !s.l2IsCoherent() || s.cfg.NoL2Invalidate {
		return
	}
	var keep func(mem.Class) bool
	if s.cfg.CacheMode == arch.CacheStaticPartition {
		// Only the R$ half is GPU-side coherent; the memory-side half
		// survives kernel boundaries.
		keep = func(cl mem.Class) bool { return cl == mem.ClassLocal }
	}
	dirty := s.l2.InvalidateAll(keep)
	s.flushDirty(dirty)
}

// FlushAll force-invalidates everything including memory-side contents;
// used at end of application so every configuration pays its residual
// writeback debt.
func (s *Socket) FlushAll() {
	for _, l1 := range s.l1s {
		l1.InvalidateAll(nil)
	}
	dirty := s.l2.InvalidateAll(nil)
	s.flushDirty(dirty)
}

func (s *Socket) flushDirty(dirty []mem.Victim) {
	if len(dirty) == 0 {
		return
	}
	s.FlushedLines.Advance(uint64(len(dirty)))
	localLines := 0
	perHome := s.flushPerHome
	for i := range perHome {
		perHome[i] = 0
	}
	for _, v := range dirty {
		if v.Class == mem.ClassLocal {
			localLines++
			continue
		}
		home, ok := s.memMap.Peek(v.Line)
		if !ok || home == s.id {
			localLines++
			continue
		}
		perHome[home]++
	}
	if localLines > 0 {
		s.drain.Inc()
		s.dram.WriteFunc(localLines*arch.LineSize, s.drainDecFn)
	}
	// Flush bursts must leave in socket order (which indexing perHome
	// by socket gives for free): ranging over the map this slice
	// replaced made the schedule — and through it the whole simulation
	// — vary from process to process on ≥4-socket systems (caught by
	// the golden-master tier as a 3-cycle flicker in fig11).
	for home := arch.SocketID(0); int(home) < s.cfg.Sockets; home++ {
		if n := perHome[home]; n > 0 {
			s.drain.Inc()
			s.remote.RemoteWriteBulk(s.id, home, n, s.drainDecFn)
		}
	}
}

// ResetForKernel re-arms per-kernel state: way partitions return to
// their mode defaults (Step 0 of the Figure 7(d) algorithm) and the
// policy sampling windows reopen.
func (s *Socket) ResetForKernel(now sim.Time) {
	s.applyModePartitions()
	s.dram.ResetWindow(now)
	s.remoteReqs.Reset(now)
	s.remoteResp.Reset(now)
}

// RemoteReqWindow exposes the outgoing-read-request meter to the
// partition controller.
func (s *Socket) RemoteReqWindow() *stats.Meter { return &s.remoteReqs }

// RemoteRespWindow exposes the arriving-read-response meter.
func (s *Socket) RemoteRespWindow() *stats.Meter { return &s.remoteResp }

// Idle reports whether the socket has no queued or resident work.
func (s *Socket) Idle() bool {
	if s.ctasLeft > 0 {
		return false
	}
	for _, sm := range s.SMs {
		if !sm.Idle() {
			return false
		}
	}
	return true
}

// DebugPending reports outstanding miss-merge entries: summed L1
// pending lines, local L2 pending, remote pending. Diagnostic only.
func (s *Socket) DebugPending() (l1, l2, rm int) {
	for i := range s.l1Pending {
		l1 += s.l1Pending[i].len()
	}
	return l1, s.l2Pending.len(), s.rmPending.len()
}

// DebugPoolsInUse reports live pooled datapath records: warp-load
// transactions, line requests, waiter-chain nodes and home-side reads.
// All four must be zero on a quiescent socket; anything else is a
// leaked continuation (core.System.Run panics on it after every run).
func (s *Socket) DebugPoolsInUse() (txs, reqs, waiters, homes int) {
	return s.txs.used, s.reqs.used, s.chain.used, s.homes.used
}

// DebugCTAs reports queued-but-undispatched and resident CTA counts.
func (s *Socket) DebugCTAs() (queued, resident int) {
	if s.queueHead < len(s.queue) {
		queued = len(s.queue) - s.queueHead
	}
	for _, sm := range s.SMs {
		resident += sm.ResidentCTAs()
	}
	return
}
