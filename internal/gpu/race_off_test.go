//go:build !race

package gpu

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
