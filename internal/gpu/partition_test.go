package gpu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/xlink"
)

// partHarness builds a NUMA-aware socket whose meters the test feeds
// directly, bypassing simulation, to exercise the Figure 7(d) policy.
type partHarness struct {
	h  *harness
	pc *PartitionController
	at sim.Time
}

func newPartHarness(t *testing.T) *partHarness {
	h := newHarness(t, arch.CacheNUMAAware)
	return &partHarness{h: h, pc: NewPartitionController(h.sock, 1000)}
}

// step feeds one window of synthetic demand: reqBytes of outgoing
// remote read requests and dramBytes of local DRAM traffic.
func (p *partHarness) step(reqBytes, dramBytes uint64) {
	p.h.sock.remoteReqs.Add(reqBytes)
	p.h.sock.remoteResp.Add(reqBytes)
	p.h.sock.dram.Bytes.Add(dramBytes)
	p.at += 1000
	p.pc.Step(p.at)
}

func TestPartitionShiftsTowardRemote(t *testing.T) {
	p := newPartHarness(t)
	l2 := p.h.sock.L2()
	start := l2.Ways(mem.ClassRemote)
	// Ingress capacity at TestConfig: 8 lanes × 0.5 B/c = 4 B/c →
	// window capacity 4000B. Saturate the estimated incoming bandwidth
	// while DRAM stays idle.
	for i := 0; i < 5; i++ {
		p.step(4000, 0)
	}
	if l2.Ways(mem.ClassRemote) <= start {
		t.Fatalf("remote ways %d, want > %d after link saturation", l2.Ways(mem.ClassRemote), start)
	}
	if p.pc.Shifts.Value() == 0 {
		t.Fatal("shift counter must advance")
	}
}

func TestPartitionShiftsTowardLocal(t *testing.T) {
	p := newPartHarness(t)
	l2 := p.h.sock.L2()
	start := l2.Ways(mem.ClassLocal)
	// DRAM at TestConfig: 8 B/c... window capacity = bandwidth × 1000.
	cap := uint64(p.h.sock.DRAM().Bandwidth() * 1000)
	for i := 0; i < 5; i++ {
		p.step(0, cap)
	}
	if l2.Ways(mem.ClassLocal) <= start {
		t.Fatalf("local ways %d, want > %d after DRAM saturation", l2.Ways(mem.ClassLocal), start)
	}
}

func TestPartitionEqualizesWhenBothSaturate(t *testing.T) {
	p := newPartHarness(t)
	l2 := p.h.sock.L2()
	// Skew remote first.
	for i := 0; i < 6; i++ {
		p.step(4000, 0)
	}
	skewed := l2.Ways(mem.ClassRemote)
	if skewed <= p.h.cfg.L2Assoc/2 {
		t.Fatal("precondition: no skew")
	}
	dramCap := uint64(p.h.sock.DRAM().Bandwidth() * 1000)
	for i := 0; i < 20; i++ {
		p.step(4000, dramCap)
	}
	diff := l2.Ways(mem.ClassRemote) - l2.Ways(mem.ClassLocal)
	if diff < -1 || diff > 1 {
		t.Fatalf("ways not equalized: local=%d remote=%d", l2.Ways(mem.ClassLocal), l2.Ways(mem.ClassRemote))
	}
}

func TestPartitionDoesNothingWhenIdle(t *testing.T) {
	p := newPartHarness(t)
	for i := 0; i < 5; i++ {
		p.step(10, 10)
	}
	if p.pc.Shifts.Value() != 0 {
		t.Fatal("idle socket must not repartition")
	}
}

func TestPartitionRespectsMinimumWays(t *testing.T) {
	p := newPartHarness(t)
	l2 := p.h.sock.L2()
	for i := 0; i < 100; i++ {
		p.step(4000, 0)
	}
	if l2.Ways(mem.ClassLocal) < 1 {
		t.Fatal("starvation guard violated in L2")
	}
	for i := range p.h.sock.l1s {
		if p.h.sock.l1s[i].Ways(mem.ClassLocal) < 1 {
			t.Fatalf("starvation guard violated in L1 %d", i)
		}
	}
}

func TestPartitionShiftsL1Too(t *testing.T) {
	p := newPartHarness(t)
	l1 := p.h.sock.L1(0)
	start := l1.Ways(mem.ClassRemote)
	for i := 0; i < 5; i++ {
		p.step(4000, 0)
	}
	if l1.Ways(mem.ClassRemote) <= start {
		t.Fatalf("L1 remote ways %d, want > %d (mode d partitions L1 too)", l1.Ways(mem.ClassRemote), start)
	}
}

func TestPartitionInactiveForOtherModes(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	pc := NewPartitionController(h.sock, 1000)
	h.sock.remoteReqs.Add(1 << 20)
	pc.Step(1000)
	if pc.Shifts.Value() != 0 {
		t.Fatal("controller must be inert outside NUMA-aware mode")
	}
}

func TestPartitionStartStopDrains(t *testing.T) {
	h := newHarness(t, arch.CacheNUMAAware)
	pc := NewPartitionController(h.sock, 500)
	pc.Start(h.eng)
	h.eng.RunUntil(2000)
	pc.Stop()
	h.eng.Run()
	if h.eng.Pending() != 0 {
		t.Fatal("stopped controller left events queued")
	}
	if pc.Decisions.Value() == 0 {
		t.Fatal("controller never sampled")
	}
}

func TestResetForKernelRestoresPartition(t *testing.T) {
	p := newPartHarness(t)
	l2 := p.h.sock.L2()
	for i := 0; i < 6; i++ {
		p.step(4000, 0)
	}
	if l2.Ways(mem.ClassRemote) == p.h.cfg.L2Assoc/2 {
		t.Fatal("precondition: no skew")
	}
	p.h.sock.ResetForKernel(p.at)
	if l2.Ways(mem.ClassRemote) != p.h.cfg.L2Assoc/2 {
		t.Fatalf("kernel launch must restore the 50/50 split (Step 0), got %d remote ways",
			l2.Ways(mem.ClassRemote))
	}
}

func TestStaticPartitionFixedSplit(t *testing.T) {
	h := newHarness(t, arch.CacheStaticPartition)
	l2 := h.sock.L2()
	if l2.Ways(mem.ClassLocal) != h.cfg.L2Assoc/2 || l2.Ways(mem.ClassRemote) != h.cfg.L2Assoc/2 {
		t.Fatal("static partition must be 50/50")
	}
	if h.sock.L1(0).Partitioned() {
		t.Fatal("mode (b) must not partition the L1s")
	}
}

// Quiet the unused import when tests are filtered.
var _ = xlink.Egress
