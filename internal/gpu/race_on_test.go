//go:build race

package gpu

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are meaningless under its extra
// bookkeeping allocations and are skipped.
const raceEnabled = true
