// Package gpu assembles one GPU socket of the NUMA system: the SMs with
// their private L1 caches, the intra-GPU crossbar, the shared L2, local
// DRAM, and the socket's view of the inter-GPU interconnect. It
// implements the four L2 organizations of Figure 7 (Milic et al., MICRO
// 2017) and the NUMA-aware dynamic cache partition controller.
package gpu

// Drain tracks asynchronous writes (store traffic, dirty writebacks,
// coherence flushes) that must reach memory before a kernel boundary
// completes. All sockets of a system share one Drain; the runtime
// registers a callback to resume once everything has settled.
type Drain struct {
	n    int64
	idle func()
}

// Inc records one outstanding write.
func (d *Drain) Inc() { d.n++ }

// Dec retires one outstanding write, firing the registered callback if
// this was the last one.
func (d *Drain) Dec() {
	d.n--
	if d.n < 0 {
		panic("gpu: drain underflow")
	}
	if d.n == 0 && d.idle != nil {
		f := d.idle
		d.idle = nil
		f()
	}
}

// Outstanding reports the number of writes still in flight.
func (d *Drain) Outstanding() int64 { return d.n }

// WhenIdle runs f once no writes are outstanding — immediately if that
// is already true. Only one waiter may be registered at a time.
func (d *Drain) WhenIdle(f func()) {
	if d.n == 0 {
		f()
		return
	}
	if d.idle != nil {
		panic("gpu: drain already has a waiter")
	}
	d.idle = f
}
