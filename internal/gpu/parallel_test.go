package gpu

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/vmm"
)

// pairRig wires two sockets to each other through a remote bridge whose
// transport is pluggable: the serial build schedules on one flat engine,
// the sharded build crosses a lockstep ParallelEngine with SendThunk.
// Everything else — sockets, memory map, drain, workload — is identical,
// so any divergence is the parallel engine's fault.
type pairRig struct {
	engs      [2]*sim.Engine
	socks     [2]*Socket
	send      func(src, home arch.SocketID, fn func())
	drain     *Drain
	sms       int
	reads     int
	writes    int
	bulk      int
	doneTrace []doneAt
}

type doneAt struct {
	Sock arch.SocketID
	SM   int
	At   sim.Time
}

func (r *pairRig) RemoteRead(src, home arch.SocketID, l arch.LineID, done func()) {
	r.reads++
	r.send(src, home, func() {
		r.socks[home].HomeRead(l, func() {
			r.send(home, src, done)
		})
	})
}

func (r *pairRig) RemoteWrite(src, home arch.SocketID, l arch.LineID, done func()) {
	r.writes++
	r.send(src, home, func() {
		r.socks[home].HomeWrite(l, func() {
			if done != nil {
				r.send(home, src, done)
			}
		})
	})
}

func (r *pairRig) RemoteWriteBulk(src, home arch.SocketID, n int, done func()) {
	r.bulk += n
	r.send(src, home, func() {
		r.socks[home].HomeWriteBulk(n, func() {
			if done != nil {
				r.send(home, src, done)
			}
		})
	})
}

const pairLookahead = sim.Time(300)

func buildPair(engs [2]*sim.Engine, send func(src, home arch.SocketID, fn func())) *pairRig {
	cfg := arch.TestConfig()
	cfg.Sockets = 2
	cfg.CacheMode = arch.CacheNUMAAware
	memMap := vmm.New(cfg.Sockets, arch.PlaceFirstTouch)
	r := &pairRig{engs: engs, send: send, drain: &Drain{}, sms: cfg.SMsPerSocket}
	for i := 0; i < 2; i++ {
		id := arch.SocketID(i)
		sock := NewSocket(engs[i], cfg, id, memMap, r, nil, r.drain, func(arch.SocketID) {})
		sock.onLoadDone = func(sm, slot int) {
			r.doneTrace = append(r.doneTrace, doneAt{Sock: id, SM: sm, At: engs[id].Now()})
		}
		r.socks[i] = sock
	}
	// Cross-homed pages: even pages live on socket 0, odd on socket 1,
	// so both directions of the bridge carry traffic.
	for p := 0; p < 64; p++ {
		memMap.Owner(arch.LineID(p*(arch.PageSize/arch.LineSize)), arch.SocketID(p%2))
	}
	return r
}

// drive issues an identical interleaved load/store pattern, local and
// remote, from both sockets.
func (r *pairRig) drive() {
	line := func(p, off int) arch.LineID {
		return arch.LineID(p*(arch.PageSize/arch.LineSize) + off)
	}
	for i := 0; i < 16; i++ {
		for s := 0; s < 2; s++ {
			sm := i % r.sms
			r.socks[s].Load(sm, []arch.LineID{line(i%8, i), line((i+1)%8, i)}, 0)
			if i%3 == 0 {
				r.socks[s].Store(sm, []arch.LineID{line(i%8, 32+i)})
			}
		}
	}
}

// TestShardedSocketPairMatchesSerial runs the rig on a flat engine and
// on a two-shard lockstep engine and demands identical completion
// traces, identical bridge/DRAM accounting, and event-count parity —
// the gpu-level half of the serial/sharded equivalence argument.
func TestShardedSocketPairMatchesSerial(t *testing.T) {
	eng := sim.New()
	serial := buildPair([2]*sim.Engine{eng, eng}, func(src, home arch.SocketID, fn func()) {
		eng.ScheduleThunk(pairLookahead, fn)
	})
	serial.drive()
	eng.Run()
	// Kernel-boundary flush pushes the write-back buffered remote dirty
	// lines across the bridge as bulk writes.
	serial.socks[0].FlushCaches()
	serial.socks[1].FlushCaches()
	eng.Run()

	pe := sim.NewLockstep(2, 1)
	pe.SetLookahead(pairLookahead)
	sharded := buildPair([2]*sim.Engine{pe.Shard(0), pe.Shard(1)}, func(src, home arch.SocketID, fn func()) {
		pe.SendThunk(int(src), int(home), pairLookahead, fn)
	})
	sharded.drive()
	pe.Run()
	sharded.socks[0].FlushCaches()
	sharded.socks[1].FlushCaches()
	pe.Run()

	if len(serial.doneTrace) == 0 {
		t.Fatal("serial rig completed no loads")
	}
	if !reflect.DeepEqual(serial.doneTrace, sharded.doneTrace) {
		t.Fatalf("completion traces diverged:\nserial:  %v\nsharded: %v", serial.doneTrace, sharded.doneTrace)
	}
	if serial.reads != sharded.reads || serial.writes != sharded.writes || serial.bulk != sharded.bulk {
		t.Fatalf("bridge accounting diverged: serial r/w/b=%d/%d/%d sharded %d/%d/%d",
			serial.reads, serial.writes, serial.bulk, sharded.reads, sharded.writes, sharded.bulk)
	}
	if serial.reads == 0 || serial.bulk == 0 {
		t.Fatal("workload produced no remote traffic — the test is vacuous")
	}
	for i := 0; i < 2; i++ {
		sr, gr := serial.socks[i].DRAM().Reads.Value(), sharded.socks[i].DRAM().Reads.Value()
		if sr != gr {
			t.Fatalf("socket %d DRAM reads diverged: %d vs %d", i, sr, gr)
		}
	}
	if eng.Executed() != pe.Executed() {
		t.Fatalf("event-count parity broken: serial %d, sharded %d", eng.Executed(), pe.Executed())
	}
	if pe.ShardExecuted(0) == 0 || pe.ShardExecuted(1) == 0 {
		t.Fatal("both shards must execute events")
	}
	if pe.CrossDelivered() == 0 {
		t.Fatal("no cross-shard sends counted")
	}
	if serial.drain.Outstanding() != 0 || sharded.drain.Outstanding() != 0 {
		t.Fatal("drain must reach zero in both builds")
	}
	for i := 0; i < 2; i++ {
		if l1, l2, rm := sharded.socks[i].DebugPending(); l1+l2+rm != 0 {
			t.Fatalf("sharded socket %d leaked MSHR entries", i)
		}
	}
}

// TestShardedSocketSubBoundSendRejected pins that a socket bridge
// wired with a delay under the engine's lookahead cannot silently run:
// the send panics at schedule time.
func TestShardedSocketSubBoundSendRejected(t *testing.T) {
	pe := sim.NewLockstep(2, 1)
	pe.SetLookahead(pairLookahead)
	rig := buildPair([2]*sim.Engine{pe.Shard(0), pe.Shard(1)}, func(src, home arch.SocketID, fn func()) {
		pe.SendThunk(int(src), int(home), pairLookahead-1, fn)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("sub-bound bridge send must panic")
		}
	}()
	rig.drive()
	pe.Run()
}
