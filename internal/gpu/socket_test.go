package gpu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/smcore"
	"repro/internal/vmm"
	"repro/internal/xlink"
)

// scriptStream replays a fixed instruction list for CTA dispatch tests.
type scriptStream struct {
	instrs []smcore.Instr
	pos    int
}

func (s *scriptStream) Next(in *smcore.Instr) bool {
	if s.pos >= len(s.instrs) {
		return false
	}
	*in = s.instrs[s.pos]
	s.pos++
	return true
}

// makeCTAs builds n compute-only CTAs with the given warps and
// instruction count each.
func makeCTAs(n, warps, instrs int) []smcore.CTA {
	var out []smcore.CTA
	for c := 0; c < n; c++ {
		cta := smcore.CTA{ID: c}
		for w := 0; w < warps; w++ {
			var list []smcore.Instr
			for i := 0; i < instrs; i++ {
				list = append(list, smcore.Instr{Comp: 2, Op: smcore.OpNone})
			}
			cta.Warps = append(cta.Warps, &scriptStream{instrs: list})
		}
		out = append(out, cta)
	}
	return out
}

// fakeRemote records remote traffic and services it with a fixed delay.
type fakeRemote struct {
	eng    *sim.Engine
	reads  int
	writes int
	bulk   int
}

func (r *fakeRemote) RemoteRead(src, home arch.SocketID, l arch.LineID, done func()) {
	r.reads++
	r.eng.Schedule(300, func(sim.Time) { done() })
}

func (r *fakeRemote) RemoteWrite(src, home arch.SocketID, l arch.LineID, done func()) {
	r.writes++
	r.eng.Schedule(300, func(sim.Time) {
		if done != nil {
			done()
		}
	})
}

func (r *fakeRemote) RemoteWriteBulk(src, home arch.SocketID, n int, done func()) {
	r.bulk += n
	r.eng.Schedule(300, func(sim.Time) {
		if done != nil {
			done()
		}
	})
}

type harness struct {
	eng    *sim.Engine
	cfg    arch.Config
	memMap *vmm.Memory
	remote *fakeRemote
	drain  *Drain
	sock   *Socket
	loads  int // completed warp loads (onLoadDone hook)
}

func newHarness(t *testing.T, mode arch.CacheMode) *harness {
	t.Helper()
	cfg := arch.TestConfig()
	cfg.CacheMode = mode
	eng := sim.New()
	memMap := vmm.New(cfg.Sockets, arch.PlaceFirstTouch)
	remote := &fakeRemote{eng: eng}
	drain := &Drain{}
	link := xlink.NewLink(eng, cfg.LanesPerDir, cfg.LaneBandwidth, cfg.LinkLatency, cfg.LaneSwitchTime)
	sock := NewSocket(eng, cfg, 0, memMap, remote, xlink.PortOf(link), drain, func(arch.SocketID) {})
	h := &harness{eng: eng, cfg: cfg, memMap: memMap, remote: remote, drain: drain, sock: sock}
	sock.onLoadDone = func(sm, slot int) { h.loads++ }
	return h
}

// load issues a 1-warp coalesced load from SM sm; completions are
// counted in h.loads via the onLoadDone hook.
func (h *harness) load(sm int, lines ...arch.LineID) {
	h.sock.Load(sm, lines, 0)
}

// quiesced fails the test if any MSHR entry or pooled datapath record
// is still live — the invariant core.System.Run enforces after every
// experiment run.
func (h *harness) quiesced(t *testing.T) {
	t.Helper()
	if l1, l2, rm := h.sock.DebugPending(); l1+l2+rm != 0 {
		t.Fatalf("pending MSHR entries leaked: l1=%d l2=%d rm=%d", l1, l2, rm)
	}
	if txs, reqs, waiters, homes := h.sock.DebugPoolsInUse(); txs != 0 || reqs != 0 || waiters != 0 || homes != 0 {
		t.Fatalf("pooled records leaked: txs=%d reqs=%d waiters=%d homes=%d", txs, reqs, waiters, homes)
	}
}

// localLine returns a line homed on socket 0 (first touch by socket 0).
func (h *harness) localLine(i int) arch.LineID {
	l := arch.LineID(i * (arch.PageSize / arch.LineSize))
	h.memMap.Owner(l, 0)
	return l
}

// remoteLine returns a line homed on socket 1.
func (h *harness) remoteLine(i int) arch.LineID {
	l := arch.LineID((1000 + i) * (arch.PageSize / arch.LineSize))
	h.memMap.Owner(l, 1)
	return l
}

func TestLocalLoadMissAndHit(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.localLine(1)
	h.load(0, l)
	h.eng.Run()
	if h.loads != 1 {
		t.Fatal("load must complete")
	}
	if h.sock.DRAM().Reads.Value() != 1 {
		t.Fatal("cold miss must reach DRAM")
	}
	// Second load: L1 hit, no new DRAM traffic.
	h.load(0, l)
	h.eng.Run()
	if h.loads != 2 || h.sock.DRAM().Reads.Value() != 1 {
		t.Fatalf("L1 hit path broken: done=%d dramReads=%d", h.loads, h.sock.DRAM().Reads.Value())
	}
	if h.sock.LoadsLocal.Value() != 2 || h.sock.LoadsRemote.Value() != 0 {
		t.Fatal("locality counters wrong")
	}
	h.quiesced(t)
}

func TestEmptyLoadCompletes(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	h.load(0)
	h.eng.Run()
	if h.loads != 1 {
		t.Fatal("empty coalesced load must still complete")
	}
	h.quiesced(t)
}

func TestL1MissMergesAcrossWarps(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.localLine(2)
	// Two concurrent loads to the same line from the same SM: one DRAM
	// fetch, two completions.
	h.load(0, l)
	h.load(0, l)
	h.eng.Run()
	if h.loads != 2 {
		t.Fatalf("completions %d, want 2", h.loads)
	}
	if h.sock.DRAM().Reads.Value() != 1 {
		t.Fatalf("DRAM reads %d, want 1 (MSHR merge)", h.sock.DRAM().Reads.Value())
	}
	h.quiesced(t)
}

func TestLoadDuplicateLinesMergeWithinOneLoad(t *testing.T) {
	// A coalesced load may contain the same line more than once (warp
	// lanes hitting one line before coalescing dedups, or a degenerate
	// pattern). Every duplicate must be serviced — the transaction's
	// remaining-line count covers all of them — off a single fetch.
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.localLine(3)
	h.sock.Load(0, []arch.LineID{l, l, l}, 0)
	h.eng.Run()
	if h.loads != 1 {
		t.Fatalf("warp-load completions %d, want 1", h.loads)
	}
	if h.sock.DRAM().Reads.Value() != 1 {
		t.Fatalf("DRAM reads %d, want 1 (duplicates must merge)", h.sock.DRAM().Reads.Value())
	}
	h.quiesced(t)
}

func TestL2SharedAcrossSMs(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.localLine(3)
	h.load(0, l)
	h.eng.Run()
	h.load(1, l)
	h.eng.Run()
	if h.loads != 2 {
		t.Fatal("loads must complete")
	}
	if h.sock.DRAM().Reads.Value() != 1 {
		t.Fatalf("second SM should hit in shared L2, DRAM reads %d", h.sock.DRAM().Reads.Value())
	}
	h.quiesced(t)
}

func TestL2PendingMergesAcrossSMs(t *testing.T) {
	// Concurrent misses to the same local line from different SMs merge
	// on l2Pending: one DRAM fetch services both SMs' L1 fills.
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.localLine(4)
	h.load(0, l)
	h.load(1, l)
	h.eng.Run()
	if h.loads != 2 {
		t.Fatalf("completions %d, want 2", h.loads)
	}
	if h.sock.DRAM().Reads.Value() != 1 {
		t.Fatalf("DRAM reads %d, want 1 (l2Pending merge)", h.sock.DRAM().Reads.Value())
	}
	// Both SMs must have been filled.
	if !h.sock.L1(0).Peek(l) || !h.sock.L1(1).Peek(l) {
		t.Fatal("merged waiter's L1 not filled")
	}
	h.quiesced(t)
}

func TestRemoteLoadModeA(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.remoteLine(0)
	h.load(0, l)
	h.eng.Run()
	if h.remote.reads != 1 {
		t.Fatalf("remote reads %d, want 1", h.remote.reads)
	}
	// Memory-side mode: remote line is NOT in the local L2. A second
	// load from a different SM crosses the link again.
	h.load(1, l)
	h.eng.Run()
	if h.remote.reads != 2 {
		t.Fatalf("mode (a) must not cache remote in L2: remote reads %d, want 2", h.remote.reads)
	}
	// Same SM again: L1 holds it.
	h.load(1, l)
	h.eng.Run()
	if h.remote.reads != 2 {
		t.Fatal("L1 must cache remote data in every mode")
	}
	if h.loads != 3 {
		t.Fatalf("completions %d", h.loads)
	}
	h.quiesced(t)
}

func TestRemoteLoadCachedModes(t *testing.T) {
	for _, mode := range []arch.CacheMode{arch.CacheStaticPartition, arch.CacheSharedCoherent, arch.CacheNUMAAware} {
		h := newHarness(t, mode)
		l := h.remoteLine(1)
		h.load(0, l)
		h.eng.Run()
		// Different SM: the local L2 now holds the remote line.
		h.load(1, l)
		h.eng.Run()
		if h.remote.reads != 1 {
			t.Fatalf("%v: remote reads %d, want 1 (L2 caches remote)", mode, h.remote.reads)
		}
		if h.loads != 2 {
			t.Fatalf("%v: completions %d", mode, h.loads)
		}
		h.quiesced(t)
	}
}

func TestRemoteFetchMerge(t *testing.T) {
	h := newHarness(t, arch.CacheNUMAAware)
	l := h.remoteLine(2)
	h.load(0, l)
	h.load(1, l)
	h.eng.Run()
	if h.remote.reads != 1 {
		t.Fatalf("concurrent remote misses must merge: %d reads", h.remote.reads)
	}
	if h.loads != 2 {
		t.Fatalf("completions %d", h.loads)
	}
	// Both SMs' L1s must hold the line after the merged fill.
	if !h.sock.L1(0).Peek(l) || !h.sock.L1(1).Peek(l) {
		t.Fatal("rmPending merged waiter's L1 not filled")
	}
	h.quiesced(t)
}

func TestMergeStormQuiesces(t *testing.T) {
	// A many-way merge across both MSHR levels, repeated over several
	// lines while earlier fetches are still in flight, must drain to
	// zero pending entries and zero live pooled records. This is the
	// pooled-state leak detector for the refactored datapath.
	h := newHarness(t, arch.CacheNUMAAware)
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			local := h.localLine(10 + round*8 + i)
			remote := h.remoteLine(10 + round*8 + i)
			for sm := 0; sm < h.cfg.SMsPerSocket; sm++ {
				h.load(sm, local, local, remote)
				h.load(sm, remote)
			}
		}
	}
	h.eng.Run()
	want := 3 * 8 * h.cfg.SMsPerSocket * 2
	if h.loads != want {
		t.Fatalf("completions %d, want %d", h.loads, want)
	}
	h.quiesced(t)
}

func TestLocalStoreWriteBack(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.localLine(4)
	h.sock.Store(0, []arch.LineID{l})
	h.eng.Run()
	if h.drain.Outstanding() != 0 {
		t.Fatal("store must drain")
	}
	// Write-back: the dirty line sits in L2, no DRAM write yet.
	if h.sock.DRAM().Writes.Value() != 0 {
		t.Fatal("write-back L2 must absorb the store")
	}
	if h.sock.StoresLocal.Value() != 1 {
		t.Fatal("store counter wrong")
	}
	h.quiesced(t)
}

func TestRemoteStoreModeA(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.remoteLine(3)
	h.sock.Store(0, []arch.LineID{l})
	h.eng.Run()
	if h.remote.writes != 1 {
		t.Fatalf("mode (a) remote store must cross the link: writes %d", h.remote.writes)
	}
	if h.drain.Outstanding() != 0 {
		t.Fatal("store must drain after ack")
	}
	h.quiesced(t)
}

func TestRemoteStoreBufferedWriteBack(t *testing.T) {
	h := newHarness(t, arch.CacheNUMAAware)
	l := h.remoteLine(4)
	h.sock.Store(0, []arch.LineID{l})
	h.eng.Run()
	if h.remote.writes != 0 {
		t.Fatal("write-back mode must buffer the remote store in L2")
	}
	// The flush must push it home.
	h.sock.FlushCaches()
	h.eng.Run()
	if h.remote.bulk != 1 {
		t.Fatalf("flush must write the dirty remote line back: bulk %d", h.remote.bulk)
	}
	h.quiesced(t)
}

func TestRemoteStoreWriteThrough(t *testing.T) {
	cfg := arch.TestConfig()
	cfg.CacheMode = arch.CacheNUMAAware
	cfg.L2WriteThrough = true
	eng := sim.New()
	memMap := vmm.New(cfg.Sockets, arch.PlaceFirstTouch)
	remote := &fakeRemote{eng: eng}
	drain := &Drain{}
	sock := NewSocket(eng, cfg, 0, memMap, remote, nil, drain, func(arch.SocketID) {})
	l := arch.LineID(5000 * (arch.PageSize / arch.LineSize))
	memMap.Owner(l, 1)
	sock.Store(0, []arch.LineID{l})
	eng.Run()
	if remote.writes != 1 {
		t.Fatalf("write-through must cross the link immediately: writes %d", remote.writes)
	}
}

func TestFlushSemanticsPerMode(t *testing.T) {
	cases := []struct {
		mode           arch.CacheMode
		wantL2Survives bool // local data survives the kernel-boundary flush
	}{
		{arch.CacheMemSideLocal, true},
		{arch.CacheStaticPartition, true}, // memory-side half keeps local
		{arch.CacheSharedCoherent, false},
		{arch.CacheNUMAAware, false},
	}
	for _, tc := range cases {
		h := newHarness(t, tc.mode)
		l := h.localLine(6)
		h.load(0, l)
		h.eng.Run()
		if h.loads != 1 {
			t.Fatalf("%v: load incomplete", tc.mode)
		}
		h.sock.FlushCaches()
		h.eng.Run()
		if got := h.sock.L2().Peek(l); got != tc.wantL2Survives {
			t.Errorf("%v: local line in L2 after flush = %v, want %v", tc.mode, got, tc.wantL2Survives)
		}
		if h.sock.L1(0).Peek(l) {
			t.Errorf("%v: L1 must always be invalidated at kernel boundaries", tc.mode)
		}
		h.quiesced(t)
	}
}

func TestNoL2InvalidateMode(t *testing.T) {
	cfg := arch.TestConfig()
	cfg.CacheMode = arch.CacheNUMAAware
	cfg.NoL2Invalidate = true
	eng := sim.New()
	memMap := vmm.New(cfg.Sockets, arch.PlaceFirstTouch)
	drain := &Drain{}
	sock := NewSocket(eng, cfg, 0, memMap, &fakeRemote{eng: eng}, nil, drain, func(arch.SocketID) {})
	done := 0
	sock.onLoadDone = func(sm, slot int) { done++ }
	l := arch.LineID(0)
	memMap.Owner(l, 0)
	sock.Load(0, []arch.LineID{l}, 0)
	eng.Run()
	if done != 1 {
		t.Fatal("load incomplete")
	}
	sock.FlushCaches()
	eng.Run()
	if !sock.L2().Peek(l) {
		t.Fatal("hypothetical no-invalidate L2 must keep its contents (Figure 9)")
	}
}

func TestCTADispatchQueue(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	doneSockets := 0
	h.sock.onAllDone = func(arch.SocketID) { doneSockets++ }
	// More CTAs than fit at once.
	h.sock.EnqueueKernel(makeCTAs(40, 2, 3))
	h.eng.Run()
	if doneSockets != 1 {
		t.Fatalf("socket completion fired %d times, want 1", doneSockets)
	}
	if h.sock.dispatched.Value() != 40 {
		t.Fatalf("dispatched %d CTAs, want 40", h.sock.dispatched.Value())
	}
	if !h.sock.Idle() {
		t.Fatal("socket must end idle")
	}
}

func TestEmptyKernelCompletes(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	fired := false
	h.sock.onAllDone = func(arch.SocketID) { fired = true }
	h.sock.EnqueueKernel(nil)
	h.eng.Run()
	if !fired {
		t.Fatal("empty kernel share must still complete")
	}
}

func TestDrainPanicsOnUnderflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected underflow panic")
		}
	}()
	(&Drain{}).Dec()
}

func TestDrainWhenIdle(t *testing.T) {
	d := &Drain{}
	ran := false
	d.WhenIdle(func() { ran = true })
	if !ran {
		t.Fatal("idle drain must run immediately")
	}
	d.Inc()
	ran = false
	d.WhenIdle(func() { ran = true })
	if ran {
		t.Fatal("busy drain must defer")
	}
	d.Dec()
	if !ran {
		t.Fatal("callback must fire at zero")
	}
}

func TestHomeReadServesAndCachesMemSide(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.localLine(7)
	done := 0
	h.sock.HomeRead(l, func() { done++ })
	h.eng.Run()
	if done != 1 || h.sock.DRAM().Reads.Value() != 1 {
		t.Fatal("home read must reach DRAM on cold miss")
	}
	// Memory-side L2 cached the remote-origin access: second read hits.
	h.sock.HomeRead(l, func() { done++ })
	h.eng.Run()
	if done != 2 || h.sock.DRAM().Reads.Value() != 1 {
		t.Fatal("memory-side L2 must cache remote-origin reads")
	}
	h.quiesced(t)
}

func TestHomeReadDoesNotPolluteCoherentL2(t *testing.T) {
	h := newHarness(t, arch.CacheNUMAAware)
	l := h.localLine(8)
	done := 0
	h.sock.HomeRead(l, func() { done++ })
	h.eng.Run()
	if h.sock.L2().Peek(l) {
		t.Fatal("GPU-side coherent L2 must not allocate for remote requesters")
	}
	// But it must serve hits when the line is already resident.
	h.load(0, l)
	h.eng.Run()
	reads := h.sock.DRAM().Reads.Value()
	h.sock.HomeRead(l, func() { done++ })
	h.eng.Run()
	if h.sock.DRAM().Reads.Value() != reads {
		t.Fatal("home read must hit a resident L2 line")
	}
	if done != 2 || h.loads != 1 {
		t.Fatalf("completions %d/%d", done, h.loads)
	}
	h.quiesced(t)
}

func TestHomeWritePaths(t *testing.T) {
	// Memory-side: write-allocates dirty.
	h := newHarness(t, arch.CacheMemSideLocal)
	l := h.localLine(9)
	done := 0
	h.sock.HomeWrite(l, func() { done++ })
	h.eng.Run()
	if done != 1 || !h.sock.L2().Peek(l) {
		t.Fatal("memory-side home write must allocate")
	}
	if h.sock.DRAM().Writes.Value() != 0 {
		t.Fatal("write-back: no DRAM write yet")
	}
	// Coherent mode: absent line goes straight to DRAM.
	h2 := newHarness(t, arch.CacheNUMAAware)
	l2 := h2.localLine(10)
	h2.sock.HomeWrite(l2, func() { done++ })
	h2.eng.Run()
	if h2.sock.DRAM().Writes.Value() != 1 {
		t.Fatal("coherent mode home write of absent line must reach DRAM")
	}
	if h2.sock.L2().Peek(l2) {
		t.Fatal("coherent mode must not allocate for remote writes")
	}
}

func TestHomeWriteBulk(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	done := false
	h.sock.HomeWriteBulk(10, func() { done = true })
	h.eng.Run()
	if !done {
		t.Fatal("bulk write must complete")
	}
	if h.sock.DRAM().Bytes.Total() != 10*arch.LineSize {
		t.Fatalf("bulk bytes %d", h.sock.DRAM().Bytes.Total())
	}
}

func TestDebugAccessors(t *testing.T) {
	h := newHarness(t, arch.CacheMemSideLocal)
	l1, l2, rm := h.sock.DebugPending()
	if l1+l2+rm != 0 {
		t.Fatal("fresh socket has pending entries")
	}
	q, res := h.sock.DebugCTAs()
	if q != 0 || res != 0 {
		t.Fatal("fresh socket has CTAs")
	}
	if h.sock.Crossbar() == nil || h.sock.Port() == nil || h.sock.ID() != 0 {
		t.Fatal("accessors broken")
	}
	if h.sock.RemoteReqWindow() == nil || h.sock.RemoteRespWindow() == nil {
		t.Fatal("meter accessors broken")
	}
	h.quiesced(t)
}
