package gpu

// The allocation-free datapath plumbing: index-linked pools for the
// records that used to be closures, and an open-addressed hash table
// for the MSHR merge structures that used to be Go maps.
//
// Everything here is owned by exactly one Socket and driven by the
// single-threaded event engine, so there is no locking; indices are
// int32 because a socket never has 2^31 requests in flight. Free lists
// thread through the records themselves, so a warmed-up socket
// allocates nothing per access — the pools only grow (by append) when
// the number of *concurrently live* records exceeds everything seen
// before.

import (
	"repro/internal/arch"
	"repro/internal/mem"
)

// nilIdx terminates free lists and waiter chains.
const nilIdx = int32(-1)

// ---------------------------------------------------------------------
// Warp-load transactions.
// ---------------------------------------------------------------------

// memTx is one in-flight coalesced warp load: the issuing SM and warp
// slot, and how many of its lines are still outstanding. It replaces
// the per-load `oneDone` closure (and its captured counter cell).
type memTx struct {
	sm   int32
	slot int32
	left int32
	next int32 // free-list link
}

// txPool is the per-socket free-list pool of memTx records.
type txPool struct {
	txs  []memTx
	free int32
	used int
}

func (p *txPool) init(capHint int) {
	p.txs = make([]memTx, 0, capHint)
	p.free = nilIdx
}

func (p *txPool) alloc(sm, slot, left int32) int32 {
	p.used++
	if p.free == nilIdx {
		p.txs = append(p.txs, memTx{sm: sm, slot: slot, left: left})
		return int32(len(p.txs) - 1)
	}
	i := p.free
	t := &p.txs[i]
	p.free = t.next
	t.sm, t.slot, t.left = sm, slot, left
	return i
}

func (p *txPool) release(i int32) {
	p.txs[i].next = p.free
	p.free = i
	p.used--
}

// ---------------------------------------------------------------------
// Per-line requests (L1 misses and stores in flight).
// ---------------------------------------------------------------------

// lineReq carries one cache line through the datapath stages: the
// resolved NUMA class and home socket (one vmm lookup per access, at
// issue), the issuing SM, and — for loads — the owning transaction.
// Stores set tx to nilIdx. It replaces the `fill`/stage closures.
type lineReq struct {
	line arch.LineID
	home arch.SocketID
	cl   mem.Class
	sm   int32
	tx   int32
	next int32 // free-list link
}

// reqPool is the per-socket free-list pool of lineReq records.
type reqPool struct {
	reqs []lineReq
	free int32
	used int
}

func (p *reqPool) init(capHint int) {
	p.reqs = make([]lineReq, 0, capHint)
	p.free = nilIdx
}

func (p *reqPool) alloc(line arch.LineID, home arch.SocketID, cl mem.Class, sm, tx int32) int32 {
	p.used++
	if p.free == nilIdx {
		p.reqs = append(p.reqs, lineReq{line: line, home: home, cl: cl, sm: sm, tx: tx})
		return int32(len(p.reqs) - 1)
	}
	i := p.free
	r := &p.reqs[i]
	p.free = r.next
	r.line, r.home, r.cl, r.sm, r.tx = line, home, cl, sm, tx
	return i
}

func (p *reqPool) release(i int32) {
	p.reqs[i].next = p.free
	p.free = i
	p.used--
}

// ---------------------------------------------------------------------
// Home-side reads.
// ---------------------------------------------------------------------

// homeReq carries a home-side read (serving a remote requester) through
// its DRAM fetch when the memory-side L2 caches the returned line. done
// is the response continuation handed in by the core layer; it is
// cleared on release so the pool never pins a dead fabric callback.
type homeReq struct {
	line arch.LineID
	done func()
	next int32
}

// homePool is the per-socket free-list pool of homeReq records.
type homePool struct {
	reqs []homeReq
	free int32
	used int
}

func (p *homePool) init(capHint int) {
	p.reqs = make([]homeReq, 0, capHint)
	p.free = nilIdx
}

func (p *homePool) alloc(line arch.LineID, done func()) int32 {
	p.used++
	if p.free == nilIdx {
		p.reqs = append(p.reqs, homeReq{line: line, done: done})
		return int32(len(p.reqs) - 1)
	}
	i := p.free
	r := &p.reqs[i]
	p.free = r.next
	r.line, r.done = line, done
	return i
}

func (p *homePool) release(i int32) {
	p.reqs[i].done = nil
	p.reqs[i].next = p.free
	p.free = i
	p.used--
}

// ---------------------------------------------------------------------
// Waiter chains.
// ---------------------------------------------------------------------

// waiterNode is one link of an MSHR entry's merged-waiter chain. The
// value is a pool index whose meaning depends on the table: memTx
// indices at the L1 level, lineReq indices at the L2/remote level.
type waiterNode struct {
	val  int32
	next int32
}

// waiterPool is the per-socket free-list pool of chain nodes.
type waiterPool struct {
	nodes []waiterNode
	free  int32
	used  int
}

func (p *waiterPool) init(capHint int) {
	p.nodes = make([]waiterNode, 0, capHint)
	p.free = nilIdx
}

func (p *waiterPool) alloc(val int32) int32 {
	p.used++
	if p.free == nilIdx {
		p.nodes = append(p.nodes, waiterNode{val: val, next: nilIdx})
		return int32(len(p.nodes) - 1)
	}
	i := p.free
	n := &p.nodes[i]
	p.free = n.next
	n.val, n.next = val, nilIdx
	return i
}

func (p *waiterPool) release(i int32) {
	p.nodes[i].next = p.free
	p.free = i
	p.used--
}

// ---------------------------------------------------------------------
// The MSHR table.
// ---------------------------------------------------------------------

// mshrEntry is one pending line: its key and the FIFO chain of merged
// waiters (chain order is completion order, matching the append order
// of the former []func() slices).
type mshrEntry struct {
	key  arch.LineID
	head int32
	tail int32
	used bool
}

// mshrTable maps pending LineIDs to waiter chains: open addressing with
// linear probing and backward-shift deletion (no tombstones), doubling
// at 3/4 load. Lookup, insert and delete are allocation-free except the
// amortized table doubling; nothing iterates the table, so hash order
// can never leak into simulation behaviour.
//
// vmm's pageTable mirrors this probe/grow core (minus deletion); a fix
// to either table's probing or resize logic almost certainly applies to
// both.
type mshrTable struct {
	entries []mshrEntry
	shift   uint // 64 - log2(len(entries))
	n       int
}

// fibMul is the 64-bit Fibonacci-hashing multiplier; the table indexes
// by the product's *top* bits, which are well mixed even for the
// sequential LineIDs that streaming workloads produce.
const fibMul = 0x9E3779B97F4A7C15

func (t *mshrTable) init(capacity int) {
	c := 8
	for c < capacity {
		c <<= 1
	}
	t.entries = make([]mshrEntry, c)
	t.shift = uint(64 - log2(c))
	t.n = 0
}

func log2(pow2 int) int {
	b := 0
	for pow2 > 1 {
		pow2 >>= 1
		b++
	}
	return b
}

func (t *mshrTable) slotOf(key arch.LineID) int {
	return int((uint64(key) * fibMul) >> t.shift)
}

// len reports how many lines are pending.
func (t *mshrTable) len() int { return t.n }

// find returns the entry index holding key, if present.
func (t *mshrTable) find(key arch.LineID) (int, bool) {
	mask := len(t.entries) - 1
	for i := t.slotOf(key); ; i = (i + 1) & mask {
		e := &t.entries[i]
		if !e.used {
			return 0, false
		}
		if e.key == key {
			return i, true
		}
	}
}

// insert adds key with an empty waiter chain. The caller must know key
// is absent (a primary miss after a failed find).
func (t *mshrTable) insert(key arch.LineID) {
	if 4*(t.n+1) > 3*len(t.entries) {
		t.grow()
	}
	mask := len(t.entries) - 1
	i := t.slotOf(key)
	for t.entries[i].used {
		i = (i + 1) & mask
	}
	t.entries[i] = mshrEntry{key: key, head: nilIdx, tail: nilIdx, used: true}
	t.n++
}

func (t *mshrTable) grow() {
	old := t.entries
	t.entries = make([]mshrEntry, 2*len(old))
	t.shift--
	mask := len(t.entries) - 1
	for i := range old {
		if !old[i].used {
			continue
		}
		j := t.slotOf(old[i].key)
		for t.entries[j].used {
			j = (j + 1) & mask
		}
		t.entries[j] = old[i]
	}
}

// appendWaiter links a waiter (pool index val) onto entry e's chain.
func (t *mshrTable) appendWaiter(e int, val int32, pool *waiterPool) {
	n := pool.alloc(val)
	ent := &t.entries[e]
	if ent.tail == nilIdx {
		ent.head, ent.tail = n, n
		return
	}
	pool.nodes[ent.tail].next = n
	ent.tail = n
}

// delete removes key and returns its waiter chain head (nilIdx when no
// waiter merged). The caller owns the chain and must release its nodes.
// Deletion backward-shifts the following probe cluster, so no tombstone
// ever degrades probing.
func (t *mshrTable) delete(key arch.LineID) int32 {
	i, ok := t.find(key)
	if !ok {
		panic("gpu: mshr delete of absent line")
	}
	head := t.entries[i].head
	mask := len(t.entries) - 1
	j := i
	for {
		t.entries[i].used = false
		for {
			j = (j + 1) & mask
			if !t.entries[j].used {
				t.n--
				return head
			}
			h := t.slotOf(t.entries[j].key)
			// Entry j may fill the hole at i only if its natural slot h
			// is cyclically outside (i, j] — otherwise the move would
			// strand it before its probe start.
			if (j-h)&mask >= (j-i)&mask {
				break
			}
		}
		t.entries[i] = t.entries[j]
		i = j
	}
}
