package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// tiny returns a 4-set, 4-way cache (16 lines, 2KB).
func tiny() *Cache { return NewCache(2048, 4) }

func TestNewCacheGeometry(t *testing.T) {
	c := NewCache(128<<10, 4)
	if c.Sets() != 256 || c.Assoc() != 4 {
		t.Fatalf("geometry %dx%d, want 256x4", c.Sets(), c.Assoc())
	}
	c2 := NewCache(4<<20, 16)
	if c2.Sets() != 2048 {
		t.Fatalf("L2 sets %d, want 2048", c2.Sets())
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	NewCache(3*128*5, 5)
}

func TestFillLookup(t *testing.T) {
	c := tiny()
	if c.Lookup(42, ClassLocal) {
		t.Fatal("empty cache hit")
	}
	c.Fill(42, ClassLocal, false)
	if !c.Lookup(42, ClassLocal) {
		t.Fatal("filled line missed")
	}
	if c.Hit[ClassLocal].Hits.Value() != 1 || c.Hit[ClassLocal].Misses.Value() != 1 {
		t.Fatal("hit statistics wrong")
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	c := tiny()
	c.Fill(42, ClassLocal, false)
	before := c.Hit[ClassLocal].Accesses()
	if !c.Peek(42) || c.Peek(43) {
		t.Fatal("peek wrong")
	}
	if c.Hit[ClassLocal].Accesses() != before {
		t.Fatal("peek must not count as access")
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 4 sets; lines mapping to set 0: 0, 4, 8, 12, ...
	for i := 0; i < 4; i++ {
		c.Fill(arch.LineID(i*4), ClassLocal, false)
	}
	// Touch line 0 so it is MRU; fill a 5th line into the set.
	c.Lookup(0, ClassLocal)
	v, evicted := c.Fill(16*4, ClassLocal, false)
	if !evicted {
		t.Fatal("full set must evict")
	}
	if v.Line != 4 {
		t.Fatalf("evicted %d, want LRU line 4", v.Line)
	}
	if !c.Peek(0) {
		t.Fatal("MRU line must survive")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := tiny()
	c.Fill(0, ClassLocal, true)
	for i := 1; i <= 4; i++ {
		c.Fill(arch.LineID(i*4), ClassLocal, false)
	}
	// Line 0 was LRU and dirty; the 5th fill must surface it dirty.
	if c.Peek(0) {
		t.Fatal("line 0 should be evicted")
	}
}

func TestFillRefreshesAndMergesDirty(t *testing.T) {
	c := tiny()
	c.Fill(7, ClassLocal, false)
	if _, evicted := c.Fill(7, ClassLocal, true); evicted {
		t.Fatal("refill of resident line must not evict")
	}
	dirty := c.InvalidateAll(nil)
	if len(dirty) != 1 || dirty[0].Line != 7 {
		t.Fatalf("dirty set %v, want line 7", dirty)
	}
}

func TestMarkDirty(t *testing.T) {
	c := tiny()
	if c.MarkDirty(9) {
		t.Fatal("absent line cannot be dirtied")
	}
	c.Fill(9, ClassRemote, false)
	if !c.MarkDirty(9) {
		t.Fatal("resident line must be dirtied")
	}
	dirty := c.InvalidateAll(nil)
	if len(dirty) != 1 || dirty[0].Class != ClassRemote {
		t.Fatalf("dirty %v", dirty)
	}
}

func TestPartitionVictimSelection(t *testing.T) {
	c := tiny()
	if err := c.SetPartition(2, 2); err != nil {
		t.Fatal(err)
	}
	// Fill set 0 with two locals and two remotes.
	c.Fill(0, ClassLocal, false)  // way 0
	c.Fill(4, ClassLocal, false)  // way 1
	c.Fill(8, ClassRemote, false) // way 2
	c.Fill(12, ClassRemote, false)
	// A third local must evict a local, never a remote.
	v, evicted := c.Fill(16, ClassLocal, false)
	if !evicted || v.Class != ClassLocal {
		t.Fatalf("local fill evicted %+v, want a local victim", v)
	}
	if !c.Peek(8) || !c.Peek(12) {
		t.Fatal("remote lines must survive local pressure")
	}
	// And vice versa.
	v, evicted = c.Fill(20, ClassRemote, false)
	if !evicted || v.Class != ClassRemote {
		t.Fatalf("remote fill evicted %+v, want a remote victim", v)
	}
}

func TestPartitionValidation(t *testing.T) {
	c := tiny()
	if err := c.SetPartition(0, 4); err == nil {
		t.Fatal("zero local ways must be rejected (starvation guard)")
	}
	if err := c.SetPartition(3, 2); err == nil {
		t.Fatal("overcommitted partition must be rejected")
	}
	if err := c.SetPartition(3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLazyEvictionOnRepartition(t *testing.T) {
	c := tiny()
	_ = c.SetPartition(2, 2)
	c.Fill(8, ClassRemote, false)
	// Repartition to 3 local / 1 remote: remote line in way 2 now sits
	// in local territory but must stay resident and findable.
	_ = c.SetPartition(3, 1)
	if !c.Lookup(8, ClassRemote) {
		t.Fatal("lookup must consult all ways after repartition (lazy eviction)")
	}
}

func TestShiftWays(t *testing.T) {
	c := tiny()
	_ = c.SetPartition(2, 2)
	if !c.ShiftWays(ClassLocal, ClassRemote) {
		t.Fatal("shift should succeed")
	}
	if c.Ways(ClassLocal) != 1 || c.Ways(ClassRemote) != 3 {
		t.Fatalf("ways %d/%d, want 1/3", c.Ways(ClassLocal), c.Ways(ClassRemote))
	}
	if c.ShiftWays(ClassLocal, ClassRemote) {
		t.Fatal("shift below one way must fail")
	}
	unpart := tiny()
	if unpart.ShiftWays(ClassLocal, ClassRemote) {
		t.Fatal("unpartitioned cache must not shift")
	}
}

func TestInvalidateAllWithKeep(t *testing.T) {
	c := tiny()
	c.Fill(0, ClassLocal, true)
	c.Fill(8, ClassRemote, true)
	dirty := c.InvalidateAll(func(cl Class) bool { return cl == ClassLocal })
	if len(dirty) != 1 || dirty[0].Class != ClassRemote {
		t.Fatalf("dirty %v, want only the remote line", dirty)
	}
	if !c.Peek(0) {
		t.Fatal("kept class must survive")
	}
	if c.Peek(8) {
		t.Fatal("non-kept class must be invalidated")
	}
}

func TestInvalidateSingle(t *testing.T) {
	c := tiny()
	c.Fill(5, ClassLocal, true)
	v, ok := c.Invalidate(5)
	if !ok || !v.Dirty {
		t.Fatalf("invalidate got %+v ok=%v", v, ok)
	}
	if _, ok := c.Invalidate(5); ok {
		t.Fatal("double invalidate must miss")
	}
}

func TestCountValid(t *testing.T) {
	c := tiny()
	c.Fill(0, ClassLocal, false)
	c.Fill(8, ClassRemote, false)
	c.Fill(16, ClassRemote, false)
	l, r := c.CountValid()
	if l != 1 || r != 2 {
		t.Fatalf("counts %d/%d, want 1/2", l, r)
	}
}

func TestClearPartition(t *testing.T) {
	c := tiny()
	_ = c.SetPartition(2, 2)
	c.ClearPartition()
	if c.Partitioned() {
		t.Fatal("partition must clear")
	}
	// All four ways usable by one class again.
	for i := 0; i < 4; i++ {
		c.Fill(arch.LineID(i*4), ClassLocal, false)
	}
	l, _ := c.CountValid()
	if l != 4 {
		t.Fatalf("local lines %d, want 4", l)
	}
}

// TestPropertyNoDuplicateTags: after arbitrary fill sequences, a line
// is resident at most once (Fill refreshes instead of duplicating).
func TestPropertyNoDuplicateTags(t *testing.T) {
	f := func(ops []uint8) bool {
		c := tiny()
		for i, op := range ops {
			l := arch.LineID(op % 64)
			cl := ClassLocal
			if op%2 == 1 {
				cl = ClassRemote
			}
			if i%7 == 0 {
				_ = c.SetPartition(1+int(op%3), 3-int(op%3))
			}
			c.Fill(l, cl, op%3 == 0)
		}
		// Count every resident line by scanning with Peek per line and
		// by CountValid; residents must not exceed capacity.
		l, r := c.CountValid()
		return l+r <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFilledLineIsFindable: any line just filled is findable
// regardless of partition churn (lookup consults all ways).
func TestPropertyFilledLineIsFindable(t *testing.T) {
	f := func(ops []uint8) bool {
		c := tiny()
		for i, op := range ops {
			l := arch.LineID(op % 64)
			cl := Class(op % 2)
			if i%5 == 0 {
				lp := 1 + int(op%3)
				_ = c.SetPartition(lp, 4-lp)
			}
			c.Fill(l, cl, false)
			if !c.Peek(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWaysAlwaysSumToAssoc: partition arithmetic never leaks
// ways.
func TestPropertyWaysAlwaysSumToAssoc(t *testing.T) {
	f := func(shifts []bool) bool {
		c := NewCache(4096, 8)
		_ = c.SetPartition(4, 4)
		for _, toRemote := range shifts {
			if toRemote {
				c.ShiftWays(ClassLocal, ClassRemote)
			} else {
				c.ShiftWays(ClassRemote, ClassLocal)
			}
			if c.Ways(ClassLocal)+c.Ways(ClassRemote) != 8 {
				return false
			}
			if c.Ways(ClassLocal) < 1 || c.Ways(ClassRemote) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
