// Package mem models the GPU memory system state: set-associative
// caches with NUMA way-class partitioning (Figure 7 of Milic et al.)
// and the per-socket DRAM (HBM) behind them.
//
// Caches here are pure state machines — tags, LRU, dirty bits, way
// partitions. Timing (latencies, bandwidth, MSHR merging) lives in the
// controllers of the gpu package, which own the event scheduling.
package mem

import (
	"fmt"
	"math/bits"

	"repro/internal/arch"
	"repro/internal/stats"
)

// Class labels a cache line by the NUMA zone of its home memory as seen
// by the caching GPU: local lines live in this socket's DRAM, remote
// lines in another socket's. The NUMA-aware policy partitions capacity
// between these two classes.
type Class int

const (
	// ClassLocal marks data homed in the caching GPU's own DRAM.
	ClassLocal Class = iota
	// ClassRemote marks data homed in another GPU socket's DRAM.
	ClassRemote
	numClasses
)

func (c Class) String() string {
	if c == ClassLocal {
		return "local"
	}
	return "remote"
}

type line struct {
	tag   arch.LineID
	valid bool
	dirty bool
	class Class
	used  uint64 // LRU stamp
}

// Victim describes a line evicted by an insertion or invalidation.
type Victim struct {
	Line  arch.LineID
	Dirty bool
	Class Class
}

// Cache is a set-associative, LRU cache with optional way partitioning
// between local and remote classes. Lookups consult all ways regardless
// of partition (the paper's "lazy eviction" design); the partition only
// steers victim selection on fills.
type Cache struct {
	sets      int
	assoc     int
	setMask   uint64
	lines     []line // sets × assoc, set-major
	stamp     uint64
	ways      [numClasses]int // current partition, sums to assoc
	partition bool            // false: classes share all ways

	// Stats per class.
	Hit   [numClasses]stats.HitRate
	Fills [numClasses]stats.Counter
	Evic  [numClasses]stats.Counter
}

// NewCache builds a cache of the given total size in bytes and
// associativity. The set count must come out a power of two. The cache
// starts unpartitioned.
func NewCache(sizeBytes, assoc int) *Cache {
	if assoc < 1 {
		panic("mem: associativity must be >= 1")
	}
	nLines := sizeBytes / arch.LineSize
	sets := nLines / assoc
	if sets == 0 {
		sets = 1
	}
	if bits.OnesCount(uint(sets)) != 1 {
		panic(fmt.Sprintf("mem: set count %d is not a power of two (size %dB assoc %d)", sets, sizeBytes, assoc))
	}
	c := &Cache{
		sets:    sets,
		assoc:   assoc,
		setMask: uint64(sets - 1),
		lines:   make([]line, sets*assoc),
	}
	c.ways[ClassLocal] = assoc
	return c
}

// Sets and Assoc report the geometry.
func (c *Cache) Sets() int  { return c.sets }
func (c *Cache) Assoc() int { return c.assoc }

// Partitioned reports whether way partitioning is active.
func (c *Cache) Partitioned() bool { return c.partition }

// Ways reports the ways currently assigned to class (meaningful only
// when partitioned).
func (c *Cache) Ways(cl Class) int { return c.ways[cl] }

// SetPartition enables way partitioning with the given split. Both
// classes must keep at least one way (the paper's starvation guard) and
// the split must cover the full associativity. Existing contents are
// not evicted (lazy eviction).
func (c *Cache) SetPartition(local, remote int) error {
	if local < 1 || remote < 1 {
		return fmt.Errorf("mem: each class needs >= 1 way (got local=%d remote=%d)", local, remote)
	}
	if local+remote != c.assoc {
		return fmt.Errorf("mem: partition %d+%d must equal associativity %d", local, remote, c.assoc)
	}
	c.partition = true
	c.ways[ClassLocal] = local
	c.ways[ClassRemote] = remote
	return nil
}

// ClearPartition disables partitioning; all ways become shared.
func (c *Cache) ClearPartition() {
	c.partition = false
	c.ways[ClassLocal] = c.assoc
	c.ways[ClassRemote] = 0
}

// ShiftWays moves one way from donor to receiver, respecting the
// one-way minimum. It reports whether a way moved.
func (c *Cache) ShiftWays(from, to Class) bool {
	if !c.partition || c.ways[from] <= 1 {
		return false
	}
	c.ways[from]--
	c.ways[to]++
	return true
}

func (c *Cache) set(l arch.LineID) []line {
	idx := uint64(l) & c.setMask
	return c.lines[idx*uint64(c.assoc) : (idx+1)*uint64(c.assoc)]
}

// Lookup probes for l, updating LRU and hit statistics. It reports
// whether the line was present. Counted against class cl (the class the
// requester resolved for the address).
func (c *Cache) Lookup(l arch.LineID, cl Class) bool {
	set := c.set(l)
	for i := range set {
		if set[i].valid && set[i].tag == l {
			c.stamp++
			set[i].used = c.stamp
			c.Hit[cl].Hits.Inc()
			return true
		}
	}
	c.Hit[cl].Misses.Inc()
	return false
}

// Peek reports presence without touching LRU or statistics.
func (c *Cache) Peek(l arch.LineID) bool {
	set := c.set(l)
	for i := range set {
		if set[i].valid && set[i].tag == l {
			return true
		}
	}
	return false
}

// MarkDirty sets the dirty bit if the line is present, reporting whether
// it was. Used by write hits on write-back caches.
func (c *Cache) MarkDirty(l arch.LineID) bool {
	set := c.set(l)
	for i := range set {
		if set[i].valid && set[i].tag == l {
			set[i].dirty = true
			c.stamp++
			set[i].used = c.stamp
			return true
		}
	}
	return false
}

// Fill inserts line l of class cl, dirty if requested. If the line is
// already present it refreshes LRU (and ORs the dirty bit). Otherwise a
// victim is chosen — within cl's way group when partitioned, globally
// by LRU when not — and returned if it held valid data.
func (c *Cache) Fill(l arch.LineID, cl Class, dirty bool) (Victim, bool) {
	set := c.set(l)
	c.stamp++
	for i := range set {
		if set[i].valid && set[i].tag == l {
			set[i].used = c.stamp
			set[i].dirty = set[i].dirty || dirty
			set[i].class = cl
			return Victim{}, false
		}
	}
	c.Fills[cl].Inc()

	lo, hi := 0, c.assoc
	if c.partition {
		// Class way groups: local owns ways [0, waysLocal), remote the
		// rest. Contents may disagree with the group after repartition;
		// that is the intended lazy eviction.
		if cl == ClassLocal {
			hi = c.ways[ClassLocal]
		} else {
			lo = c.ways[ClassLocal]
		}
	}
	victim := lo
	for i := lo; i < hi; i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	var out Victim
	had := false
	if set[victim].valid {
		out = Victim{Line: set[victim].tag, Dirty: set[victim].dirty, Class: set[victim].class}
		had = true
		c.Evic[set[victim].class].Inc()
	}
	set[victim] = line{tag: l, valid: true, dirty: dirty, class: cl, used: c.stamp}
	return out, had
}

// InvalidateAll invalidates every line for which keep returns false and
// returns the dirty lines among them (so the caller can route
// writebacks). A nil keep invalidates everything.
func (c *Cache) InvalidateAll(keep func(cl Class) bool) []Victim {
	var dirty []Victim
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		if keep != nil && keep(ln.class) {
			continue
		}
		if ln.dirty {
			dirty = append(dirty, Victim{Line: ln.tag, Dirty: true, Class: ln.class})
		}
		ln.valid = false
		ln.dirty = false
	}
	return dirty
}

// Invalidate drops a single line if present, returning its victim info.
func (c *Cache) Invalidate(l arch.LineID) (Victim, bool) {
	set := c.set(l)
	for i := range set {
		if set[i].valid && set[i].tag == l {
			v := Victim{Line: set[i].tag, Dirty: set[i].dirty, Class: set[i].class}
			set[i].valid = false
			set[i].dirty = false
			return v, true
		}
	}
	return Victim{}, false
}

// CountValid reports how many valid lines of each class are resident.
func (c *Cache) CountValid() (local, remote int) {
	for i := range c.lines {
		if !c.lines[i].valid {
			continue
		}
		if c.lines[i].class == ClassLocal {
			local++
		} else {
			remote++
		}
	}
	return
}
