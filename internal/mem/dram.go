package mem

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// DRAM models one socket's local high-bandwidth memory: a fixed access
// latency plus a bandwidth-serialized channel group (Table 1: 768GB/s,
// 100ns). Reads and writes share the channel bandwidth, as they do on
// HBM stacks with shared pseudo-channels.
type DRAM struct {
	srv *sim.Server

	// Bytes transports both directions; the cache partition policy
	// samples it to detect local memory saturation (Step 1 of the
	// Figure 7(d) algorithm).
	Bytes stats.Meter

	Reads  stats.Counter
	Writes stats.Counter
}

// NewDRAM builds a DRAM with the given bandwidth (bytes/cycle) and
// latency (cycles).
func NewDRAM(eng *sim.Engine, bandwidth float64, latency int) *DRAM {
	return &DRAM{srv: sim.NewServer(eng, bandwidth, latency)}
}

// Read fetches size bytes; done fires when the data is available.
func (d *DRAM) Read(size int, done sim.Event) {
	d.Reads.Inc()
	d.Bytes.Add(uint64(size))
	d.srv.Transfer(size, done)
}

// ReadFunc is Read for a clock-ignoring completion callback, queued
// without an adapter closure.
func (d *DRAM) ReadFunc(size int, done func()) {
	d.Reads.Inc()
	d.Bytes.Add(uint64(size))
	d.srv.TransferFunc(size, done)
}

// ReadArg is Read for a long-lived ArgEvent callback plus an integer
// argument — the MSHR fill path passes a pooled miss-record index
// through arg instead of allocating a completion closure per fetch.
func (d *DRAM) ReadArg(size int, fn sim.ArgEvent, arg int) {
	d.Reads.Inc()
	d.Bytes.Add(uint64(size))
	d.srv.TransferArg(size, fn, arg)
}

// Write stores size bytes; done (may be nil) fires when the write has
// drained into the memory.
func (d *DRAM) Write(size int, done sim.Event) {
	d.Writes.Inc()
	d.Bytes.Add(uint64(size))
	d.srv.Transfer(size, done)
}

// WriteFunc is Write for a clock-ignoring completion callback, queued
// without an adapter closure (drain decrements, bulk flush bursts).
func (d *DRAM) WriteFunc(size int, done func()) {
	d.Writes.Inc()
	d.Bytes.Add(uint64(size))
	d.srv.TransferFunc(size, done)
}

// Utilization reports channel utilization over the current sampling
// window ending at now.
func (d *DRAM) Utilization(now sim.Time) float64 {
	return d.Bytes.Utilization(now, d.srv.Bandwidth())
}

// ResetWindow opens a new sampling window at now.
func (d *DRAM) ResetWindow(now sim.Time) { d.Bytes.Reset(now) }

// Bandwidth reports the configured bandwidth in bytes/cycle.
func (d *DRAM) Bandwidth() float64 { return d.srv.Bandwidth() }
