package mem

import (
	"testing"

	"repro/internal/sim"
)

func TestDRAMReadWrite(t *testing.T) {
	eng := sim.New()
	d := NewDRAM(eng, 128, 100)
	var readAt, writeAt sim.Time
	d.Read(128, func(now sim.Time) { readAt = now })
	d.Write(256, func(now sim.Time) { writeAt = now })
	eng.Run()
	if readAt != 101 {
		t.Fatalf("read at %d, want 101 (1 serialize + 100 latency)", readAt)
	}
	if writeAt != 103 {
		t.Fatalf("write at %d, want 103 (queued behind read)", writeAt)
	}
	if d.Reads.Value() != 1 || d.Writes.Value() != 1 {
		t.Fatal("op counters wrong")
	}
	if d.Bytes.Total() != 384 {
		t.Fatalf("bytes %d, want 384", d.Bytes.Total())
	}
}

func TestDRAMUtilizationWindow(t *testing.T) {
	eng := sim.New()
	d := NewDRAM(eng, 100, 0)
	d.ResetWindow(0)
	d.Read(5000, nil)
	eng.Run()
	// 5000 bytes over 50 cycles at 100 B/c = utilization 1.0.
	if u := d.Utilization(50); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization %v, want ~1.0", u)
	}
	d.ResetWindow(50)
	if u := d.Utilization(100); u != 0 {
		t.Fatalf("fresh window utilization %v, want 0", u)
	}
	if d.Bandwidth() != 100 {
		t.Fatal("bandwidth accessor wrong")
	}
}
