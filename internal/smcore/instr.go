// Package smcore models the streaming multiprocessors of the GPU: in-
// order SIMT cores holding up to 64 resident warps, issuing one
// instruction per cycle with the greedy-then-round-robin warp scheduler
// of Table 1, and generating coalesced cache-line requests into the
// memory system.
package smcore

import "repro/internal/arch"

// MemOp classifies the memory part of an instruction.
type MemOp uint8

const (
	// OpNone marks a pure compute instruction.
	OpNone MemOp = iota
	// OpLoad blocks the issuing warp until all its lines return.
	OpLoad
	// OpStore issues writes without blocking the warp (GPU stores
	// retire through the write-through L1 asynchronously).
	OpStore
)

// Instr is one warp-level instruction: Comp cycles of compute work
// followed by an optional coalesced memory operation touching Lines.
// The Lines slice is owned by the producing stream and is valid until
// the next call to Next.
type Instr struct {
	Comp  uint32
	Op    MemOp
	Lines []arch.LineID
}

// InstrStream produces the instruction sequence of one warp. Next fills
// in and reports false when the warp has retired its last instruction.
type InstrStream interface {
	Next(in *Instr) bool
}

// CTA is a thread block handed to an SM: Warps instruction streams that
// must all retire for the CTA to complete.
type CTA struct {
	ID    int
	Warps []InstrStream
}

// MemPort is the SM's window into the socket memory system (implemented
// by the gpu package). A load is identified by the issuing warp's slot;
// the port calls SM.LoadDone(slot) on the issuing SM once every line
// has been serviced, so no per-load completion closure exists anywhere
// on the path. Stores are fire-and-forget from the warp's perspective
// but are drained/tracked by the socket for kernel-completion
// semantics.
type MemPort interface {
	Load(sm int, lines []arch.LineID, slot int)
	Store(sm int, lines []arch.LineID)
}
