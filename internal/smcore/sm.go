package smcore

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

type warpState uint8

const (
	warpFree warpState = iota
	warpReady
	warpWaitComp
	warpWaitMem
)

type warpSlot struct {
	state   warpState
	stream  InstrStream
	instr   Instr
	hasInst bool
	cta     int
	queued  bool // present in the ready ring (or is the greedy current)
}

// SM is one streaming multiprocessor: an in-order core multiplexing up
// to maxWarps resident warps with a greedy-then-round-robin scheduler.
// It issues issueWidth instructions per cycle while any warp is ready
// and sleeps otherwise; memory completions and compute-delay expiries
// wake it.
type SM struct {
	eng  *sim.Engine
	port MemPort
	id   int // SM index within its socket

	maxWarps   int
	maxCTAs    int
	issueWidth int

	warps    []warpSlot
	free     []int // free slot indices
	ready    []int // FIFO of ready warp slots; ready[rHead:] is pending
	rHead    int
	current  int // greedy warp, -1 when none
	running  bool
	nWarps   int
	nCTAs    int
	ctaLeft  map[int]int // warps still live per resident CTA
	onCTADne func(smID, ctaID int)

	// Long-lived event callbacks, bound once at construction so the
	// per-cycle issue loop and per-instruction warp wakeups schedule
	// without allocating a closure per event.
	tickEv sim.Event
	wakeEv sim.ArgEvent

	// Statistics.
	Issued     stats.Counter
	LoadOps    stats.Counter
	StoreOps   stats.Counter
	BusyCycles stats.Counter
}

// NewSM builds an SM with the given resident-warp and CTA capacity.
// onCTADone is invoked whenever a resident CTA retires fully, so the
// socket scheduler can dispatch the next one; it may be nil.
func NewSM(eng *sim.Engine, port MemPort, id, maxWarps, maxCTAs, issueWidth int, onCTADone func(smID, ctaID int)) *SM {
	if issueWidth < 1 {
		issueWidth = 1
	}
	s := &SM{
		eng:        eng,
		port:       port,
		id:         id,
		maxWarps:   maxWarps,
		maxCTAs:    maxCTAs,
		issueWidth: issueWidth,
		warps:      make([]warpSlot, maxWarps),
		ready:      make([]int, 0, maxWarps),
		current:    -1,
		ctaLeft:    make(map[int]int, maxCTAs),
		onCTADne:   onCTADone,
	}
	s.free = make([]int, maxWarps)
	for i := range s.free {
		s.free[i] = maxWarps - 1 - i
	}
	s.tickEv = s.issueTick
	s.wakeEv = func(_ sim.Time, slot int) { s.wake(slot) }
	return s
}

// ID reports the SM's index within its socket.
func (s *SM) ID() int { return s.id }

// ResidentWarps and ResidentCTAs report current occupancy.
func (s *SM) ResidentWarps() int { return s.nWarps }
func (s *SM) ResidentCTAs() int  { return s.nCTAs }

// CanAccept reports whether a CTA with the given warp count fits now.
func (s *SM) CanAccept(warps int) bool {
	return s.nCTAs < s.maxCTAs && s.nWarps+warps <= s.maxWarps && warps <= s.maxWarps
}

// Launch makes cta resident and marks all its warps ready. The caller
// must have checked CanAccept.
func (s *SM) Launch(cta CTA) {
	if !s.CanAccept(len(cta.Warps)) {
		panic("smcore: Launch without capacity")
	}
	s.nCTAs++
	s.ctaLeft[cta.ID] += len(cta.Warps)
	for _, stream := range cta.Warps {
		slot := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.warps[slot] = warpSlot{state: warpReady, stream: stream, cta: cta.ID}
		s.nWarps++
		s.pushReady(slot)
	}
	s.kick()
}

// pushReady enqueues a slot. The queued flag is a best-effort
// de-duplicator only: a slot whose warp retired while queued and whose
// slot was relaunched may appear twice. popReady tolerates duplicates
// and stale entries by validating the warp state, so correctness never
// depends on the at-most-once property.
func (s *SM) pushReady(slot int) {
	if s.warps[slot].queued {
		return
	}
	s.warps[slot].queued = true
	s.ready = append(s.ready, slot)
}

func (s *SM) popReady() (int, bool) {
	for s.rHead < len(s.ready) {
		slot := s.ready[s.rHead]
		s.rHead++
		if s.rHead == len(s.ready) {
			s.ready = s.ready[:0]
			s.rHead = 0
		} else if s.rHead >= 256 && s.rHead*2 >= len(s.ready) {
			// Compact the consumed prefix so the queue cannot grow
			// unboundedly across a long kernel.
			n := copy(s.ready, s.ready[s.rHead:])
			s.ready = s.ready[:n]
			s.rHead = 0
		}
		s.warps[slot].queued = false
		if s.warps[slot].state == warpReady {
			return slot, true
		}
	}
	return -1, false
}

// kick ensures the issue loop is scheduled while work exists.
func (s *SM) kick() {
	if s.running {
		return
	}
	s.running = true
	s.eng.Schedule(0, s.tickEv)
}

func (s *SM) issueTick(now sim.Time) {
	issued := 0
	for issued < s.issueWidth {
		slot := s.pick()
		if slot < 0 {
			break
		}
		s.execute(now, slot)
		issued++
	}
	if issued > 0 {
		s.BusyCycles.Inc()
	}
	if s.anyReady() {
		s.eng.Schedule(1, s.tickEv)
	} else {
		s.running = false
	}
}

// pick implements greedy-then-round-robin: stick with the current warp
// while it stays ready, otherwise rotate to the next ready warp.
func (s *SM) pick() int {
	if s.current >= 0 && s.warps[s.current].state == warpReady {
		return s.current
	}
	if slot, ok := s.popReady(); ok {
		s.current = slot
		return slot
	}
	return -1
}

func (s *SM) anyReady() bool {
	if s.current >= 0 && s.warps[s.current].state == warpReady {
		return true
	}
	for _, slot := range s.ready[s.rHead:] {
		if s.warps[slot].state == warpReady {
			return true
		}
	}
	return false
}

// execute issues the next instruction of the warp in slot.
func (s *SM) execute(now sim.Time, slot int) {
	w := &s.warps[slot]
	if !w.hasInst {
		if !w.stream.Next(&w.instr) {
			s.retire(slot)
			return
		}
		w.hasInst = true
	}
	in := &w.instr
	w.hasInst = false
	s.Issued.Inc()

	switch in.Op {
	case OpLoad:
		s.LoadOps.Inc()
		w.state = warpWaitMem
		s.port.Load(s.id, in.Lines, slot)
	case OpStore:
		s.StoreOps.Inc()
		s.port.Store(s.id, in.Lines)
		s.delayReady(slot, in.Comp)
	default:
		s.delayReady(slot, in.Comp)
	}
}

// LoadDone is the memory system's completion callback for the warp in
// slot: every line of its outstanding load has been serviced. Any
// attached compute overlaps the outstanding load on an in-order core,
// so the warp is ready max(0, comp-latency)≈0 cycles later; the compute
// is charged before re-readying to keep issue rates honest for
// compute-heavy instructions. The issuing instruction stays resident in
// the slot while the warp waits (a blocked warp cannot issue), so its
// Comp field is read back here instead of travelling with the request.
func (s *SM) LoadDone(slot int) {
	w := &s.warps[slot]
	if comp := w.instr.Comp; comp > 1 {
		w.state = warpWaitComp
		s.eng.ScheduleArg(sim.Time(comp), s.wakeEv, slot)
		return
	}
	s.wake(slot)
}

// delayReady parks the warp for comp cycles of compute (minimum one
// cycle so zero-cost instructions cannot livelock the issue slot).
func (s *SM) delayReady(slot int, comp uint32) {
	w := &s.warps[slot]
	if comp <= 1 {
		w.state = warpReady // ready again next cycle; issueTick re-runs at +1
		return
	}
	w.state = warpWaitComp
	s.eng.ScheduleArg(sim.Time(comp), s.wakeEv, slot)
}

// wake returns a waiting warp to the ready ring and restarts issue.
func (s *SM) wake(slot int) {
	w := &s.warps[slot]
	if w.state == warpFree {
		return
	}
	w.state = warpReady
	s.pushReady(slot)
	s.kick()
}

// retire releases the warp slot and completes CTA accounting.
func (s *SM) retire(slot int) {
	w := &s.warps[slot]
	cta := w.cta
	*w = warpSlot{state: warpFree}
	if s.current == slot {
		s.current = -1
	}
	s.free = append(s.free, slot)
	s.nWarps--
	s.ctaLeft[cta]--
	if s.ctaLeft[cta] == 0 {
		delete(s.ctaLeft, cta)
		s.nCTAs--
		if s.onCTADne != nil {
			s.onCTADne(s.id, cta)
		}
	}
}

// Idle reports whether the SM holds no resident warps.
func (s *SM) Idle() bool { return s.nWarps == 0 }

// DebugStates reports resident warp counts by state: [ready, waitComp,
// waitMem]; a diagnostic for deadlock hunting.
func (s *SM) DebugStates() [3]int {
	var out [3]int
	for i := range s.warps {
		switch s.warps[i].state {
		case warpReady:
			out[0]++
		case warpWaitComp:
			out[1]++
		case warpWaitMem:
			out[2]++
		}
	}
	return out
}

// DebugRunning reports whether the issue loop is scheduled.
func (s *SM) DebugRunning() bool { return s.running }
