package smcore

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// scriptStream replays a fixed instruction list.
type scriptStream struct {
	instrs []Instr
	pos    int
}

func (s *scriptStream) Next(in *Instr) bool {
	if s.pos >= len(s.instrs) {
		return false
	}
	*in = s.instrs[s.pos]
	s.pos++
	return true
}

// fakePort services loads after a fixed latency and records ops. Its SM
// back-reference is bound by newTestSM (the port must call LoadDone on
// the issuing SM, mirroring how gpu.Socket dispatches completions).
type fakePort struct {
	eng     *sim.Engine
	sm      *SM
	latency sim.Time
	loads   int
	stores  int
	lines   int
}

func (p *fakePort) Load(sm int, lines []arch.LineID, slot int) {
	p.loads++
	p.lines += len(lines)
	p.eng.Schedule(p.latency, func(sim.Time) { p.sm.LoadDone(slot) })
}

func (p *fakePort) Store(sm int, lines []arch.LineID) {
	p.stores++
	p.lines += len(lines)
}

// newTestSM builds an SM wired to port both ways.
func newTestSM(eng *sim.Engine, port *fakePort, id, maxWarps, maxCTAs, issueWidth int, onCTADone func(smID, ctaID int)) *SM {
	sm := NewSM(eng, port, id, maxWarps, maxCTAs, issueWidth, onCTADone)
	port.sm = sm
	return sm
}

func computeCTA(id, warps, instrs, lat int) CTA {
	cta := CTA{ID: id}
	for w := 0; w < warps; w++ {
		var list []Instr
		for i := 0; i < instrs; i++ {
			list = append(list, Instr{Comp: uint32(lat), Op: OpNone})
		}
		cta.Warps = append(cta.Warps, &scriptStream{instrs: list})
	}
	return cta
}

func TestSMRunsComputeCTA(t *testing.T) {
	eng := sim.New()
	port := &fakePort{eng: eng, latency: 10}
	var doneCTAs []int
	sm := newTestSM(eng, port, 0, 8, 4, 1, func(_, cta int) { doneCTAs = append(doneCTAs, cta) })
	sm.Launch(computeCTA(7, 2, 5, 3))
	eng.Run()
	if !sm.Idle() {
		t.Fatal("SM must drain")
	}
	if len(doneCTAs) != 1 || doneCTAs[0] != 7 {
		t.Fatalf("CTA completion %v, want [7]", doneCTAs)
	}
	if sm.Issued.Value() != 10 {
		t.Fatalf("issued %d, want 10 (2 warps × 5 instrs)", sm.Issued.Value())
	}
}

func TestSMLoadBlocksWarp(t *testing.T) {
	eng := sim.New()
	port := &fakePort{eng: eng, latency: 100}
	sm := newTestSM(eng, port, 0, 8, 4, 1, nil)
	cta := CTA{ID: 0, Warps: []InstrStream{&scriptStream{instrs: []Instr{
		{Op: OpLoad, Lines: []arch.LineID{1, 2}},
		{Op: OpNone, Comp: 1},
	}}}}
	sm.Launch(cta)
	eng.Run()
	if eng.Now() < 100 {
		t.Fatalf("finished at %d; load must block the warp for its latency", eng.Now())
	}
	if port.loads != 1 || port.lines != 2 {
		t.Fatalf("port saw %d loads / %d lines, want 1/2", port.loads, port.lines)
	}
}

func TestSMStoreDoesNotBlock(t *testing.T) {
	eng := sim.New()
	port := &fakePort{eng: eng, latency: 10000}
	sm := newTestSM(eng, port, 0, 8, 4, 1, nil)
	cta := CTA{ID: 0, Warps: []InstrStream{&scriptStream{instrs: []Instr{
		{Op: OpStore, Lines: []arch.LineID{1}},
		{Op: OpStore, Lines: []arch.LineID{2}},
		{Op: OpStore, Lines: []arch.LineID{3}},
	}}}}
	sm.Launch(cta)
	eng.Run()
	if eng.Now() > 20 {
		t.Fatalf("stores blocked the warp: finished at %d", eng.Now())
	}
	if port.stores != 3 {
		t.Fatalf("stores %d, want 3", port.stores)
	}
}

func TestSMComputeDelay(t *testing.T) {
	eng := sim.New()
	port := &fakePort{eng: eng}
	sm := newTestSM(eng, port, 0, 8, 4, 1, nil)
	sm.Launch(computeCTA(0, 1, 4, 50))
	eng.Run()
	// 4 instructions × 50 cycles of compute each ≈ 200 cycles.
	if eng.Now() < 200 {
		t.Fatalf("compute delays not honored: finished at %d", eng.Now())
	}
}

func TestSMMultiWarpOverlap(t *testing.T) {
	// Two warps with long loads must overlap: total time ≈ one load
	// latency, not two.
	eng := sim.New()
	port := &fakePort{eng: eng, latency: 500}
	sm := newTestSM(eng, port, 0, 8, 4, 1, nil)
	mk := func() InstrStream {
		return &scriptStream{instrs: []Instr{{Op: OpLoad, Lines: []arch.LineID{1}}}}
	}
	sm.Launch(CTA{ID: 0, Warps: []InstrStream{mk(), mk(), mk(), mk()}})
	eng.Run()
	if eng.Now() > 520 {
		t.Fatalf("warps did not overlap: %d cycles for 4 parallel loads", eng.Now())
	}
}

func TestSMIssueRate(t *testing.T) {
	// One warp issuing N trivial instructions takes ≈N cycles at
	// issue width 1.
	eng := sim.New()
	port := &fakePort{eng: eng}
	sm := newTestSM(eng, port, 0, 8, 4, 1, nil)
	sm.Launch(computeCTA(0, 1, 100, 0))
	eng.Run()
	if eng.Now() < 99 || eng.Now() > 110 {
		t.Fatalf("100 instructions took %d cycles, want ≈100", eng.Now())
	}
}

func TestCanAcceptBounds(t *testing.T) {
	eng := sim.New()
	port := &fakePort{eng: eng}
	sm := newTestSM(eng, port, 0, 8, 2, 1, nil) // 8 warps, 2 CTA slots
	if !sm.CanAccept(4) {
		t.Fatal("empty SM must accept")
	}
	sm.Launch(computeCTA(0, 4, 1000, 100))
	if !sm.CanAccept(4) {
		t.Fatal("half-full SM must accept a second CTA")
	}
	sm.Launch(computeCTA(1, 4, 1000, 100))
	if sm.CanAccept(1) {
		t.Fatal("full warp budget must reject")
	}
	if sm.ResidentCTAs() != 2 || sm.ResidentWarps() != 8 {
		t.Fatalf("occupancy %d CTAs / %d warps", sm.ResidentCTAs(), sm.ResidentWarps())
	}
}

func TestLaunchWithoutCapacityPanics(t *testing.T) {
	eng := sim.New()
	sm := NewSM(eng, &fakePort{eng: eng}, 0, 2, 1, 1, nil)
	sm.Launch(computeCTA(0, 2, 10, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sm.Launch(computeCTA(1, 2, 10, 1))
}

// TestSlotReuseAfterRetire is the regression test for the ready-queue
// corruption found during bring-up: a warp that retires while also
// queued, whose slot is immediately relaunched, must not lose wakeups.
func TestSlotReuseAfterRetire(t *testing.T) {
	eng := sim.New()
	port := &fakePort{eng: eng, latency: 7}
	done := 0
	var sm *SM
	sm = newTestSM(eng, port, 0, 2, 2, 1, func(_, _ int) {
		done++
		if done < 50 {
			// Immediately relaunch into the freed slot.
			sm.Launch(CTA{ID: 100 + done, Warps: []InstrStream{&scriptStream{instrs: []Instr{
				{Op: OpLoad, Lines: []arch.LineID{arch.LineID(done)}},
				{Op: OpStore, Lines: []arch.LineID{arch.LineID(done)}},
			}}}})
		}
	})
	sm.Launch(CTA{ID: 0, Warps: []InstrStream{&scriptStream{instrs: []Instr{
		{Op: OpLoad, Lines: []arch.LineID{1}},
		{Op: OpStore, Lines: []arch.LineID{1}},
	}}}})
	eng.Run()
	if done != 50 {
		t.Fatalf("completed %d CTAs, want 50 (lost wakeup)", done)
	}
	if !sm.Idle() {
		t.Fatal("SM must end idle")
	}
}

func TestGreedyThenRoundRobin(t *testing.T) {
	// A warp that stays ready (stores only) should keep issuing
	// (greedy) while a blocked warp waits; the order of port.stores
	// confirms the greedy warp ran consecutively.
	eng := sim.New()
	port := &fakePort{eng: eng, latency: 1000}
	sm := newTestSM(eng, port, 0, 4, 4, 1, nil)
	blocker := &scriptStream{instrs: []Instr{{Op: OpLoad, Lines: []arch.LineID{9}}}}
	greedy := &scriptStream{instrs: []Instr{
		{Op: OpStore, Lines: []arch.LineID{1}},
		{Op: OpStore, Lines: []arch.LineID{2}},
		{Op: OpStore, Lines: []arch.LineID{3}},
	}}
	sm.Launch(CTA{ID: 0, Warps: []InstrStream{blocker, greedy}})
	eng.RunUntil(100) // before the load returns
	if port.stores != 3 {
		t.Fatalf("greedy warp issued %d stores before load returned, want 3", port.stores)
	}
	eng.Run()
}

func TestDebugStates(t *testing.T) {
	eng := sim.New()
	port := &fakePort{eng: eng, latency: 100}
	sm := newTestSM(eng, port, 0, 4, 4, 1, nil)
	sm.Launch(CTA{ID: 0, Warps: []InstrStream{&scriptStream{instrs: []Instr{
		{Op: OpLoad, Lines: []arch.LineID{1}},
	}}}})
	eng.RunUntil(10)
	st := sm.DebugStates()
	if st[2] != 1 {
		t.Fatalf("states %v, want one warp waiting on memory", st)
	}
	eng.Run()
}

func TestDualIssue(t *testing.T) {
	// issueWidth 2: two ready warps retire trivial instructions about
	// twice as fast as single issue.
	run := func(width int) sim.Time {
		eng := sim.New()
		sm := NewSM(eng, &fakePort{eng: eng}, 0, 8, 4, width, nil)
		sm.Launch(computeCTA(0, 4, 50, 0))
		eng.Run()
		return eng.Now()
	}
	single := run(1)
	dual := run(2)
	if float64(dual) > 0.7*float64(single) {
		t.Fatalf("dual issue not faster: %d vs %d", dual, single)
	}
}

func TestIssueWidthClamped(t *testing.T) {
	eng := sim.New()
	sm := NewSM(eng, &fakePort{eng: eng}, 0, 4, 2, 0, nil) // width 0 → 1
	sm.Launch(computeCTA(0, 1, 3, 1))
	eng.Run()
	if sm.Issued.Value() != 3 {
		t.Fatalf("issued %d", sm.Issued.Value())
	}
}

func TestBusyCyclesCounted(t *testing.T) {
	eng := sim.New()
	sm := NewSM(eng, &fakePort{eng: eng}, 0, 4, 2, 1, nil)
	sm.Launch(computeCTA(0, 1, 20, 0))
	eng.Run()
	if sm.BusyCycles.Value() == 0 {
		t.Fatal("busy cycles not counted")
	}
	if sm.BusyCycles.Value() > sm.Issued.Value()+2 {
		t.Fatalf("busy %d exceeds issued %d", sm.BusyCycles.Value(), sm.Issued.Value())
	}
}
