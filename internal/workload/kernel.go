package workload

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/smcore"
	"repro/internal/vmm"
)

// Phase is a declarative kernel template within a workload. Zero-valued
// fields inherit the workload's defaults; Repeat expands the phase into
// that many identical kernel launches (phase behaviour over time).
type Phase struct {
	Name   string
	Repeat int // kernel launches of this phase (default 1)

	CTAs  int // grid size (default: Spec.CTAs)
	Warps int // warps per CTA (default: Spec.Warps)
	Iters int // iterations per warp (default: Spec.Iters)

	Compute     int  // compute cycles per iteration
	LocalLines  int  // sequential own-chunk lines read per iteration
	HaloLines   int  // successor-chunk lines read per iteration (stencil)
	SharedLines int  // shared-buffer lines read per iteration
	Broadcast   bool // shared reads identical across warps (weights)
	HotSkew     bool // skewed random shared access (hot 1/16 region)
	StoreLines  int  // lines written per iteration
	Gather      bool // stores hit the socket-0-homed gather buffer

	// OffsetFrac shifts chunks into the tail fraction of the buffer
	// (shrinking active regions whose partition misaligns with the
	// first-touch ownership of earlier phases). Reverse assigns chunks
	// in opposite warp order (scatter/transpose-style phases).
	OffsetFrac float64
	Reverse    bool
}

// Spec describes one of the 41 workloads: the paper's Table 2 metadata
// plus the synthetic generator parameters at simulation scale.
type Spec struct {
	Name string

	// Table 2 metadata (paper scale), used by Figure 2 and Table 2.
	PaperCTAs        int
	PaperFootprintMB int

	// Grey marks workloads achieving ≥99% of theoretical scaling with
	// software-only locality optimization (the grey box of Figure 3);
	// the paper excludes them from Figures 6, 8, 9 and 10.
	Grey bool

	// Generator defaults (simulation scale).
	CTAs  int
	Warps int
	Iters int

	// Buffer sizes at simulation scale.
	InBytes     int64
	OutBytes    int64 // default: InBytes
	SharedBytes int64
	GatherBytes int64 // default: 128KB when any phase gathers

	Phases []Phase
}

// Options scales workloads for different harness budgets.
type Options struct {
	// IterScale multiplies every phase's iteration count (minimum 2
	// iterations survive). 1.0 reproduces the reference size.
	IterScale float64
	// MaxCTAs caps grid sizes (0 = uncapped); unit tests use small caps.
	MaxCTAs int
}

// DefaultOptions is the reference experiment size.
func DefaultOptions() Options { return Options{IterScale: 1} }

// kernel implements core.Kernel for one phase instance.
type kernel struct {
	name string
	p    *phaseParams
}

func (k *kernel) Name() string     { return k.name }
func (k *kernel) CTAs() int        { return k.p.ctas }
func (k *kernel) WarpsPerCTA() int { return k.p.warps }

func (k *kernel) Warp(c, w int) smcore.InstrStream { return newStream(k.p, c, w) }

// Program materializes the workload into a runnable core.Program.
func (s Spec) Program(o Options) core.Program {
	if o.IterScale <= 0 {
		o.IterScale = 1
	}
	a := newAlloc()
	in := a.buffer(s.InBytes)
	outBytes := s.OutBytes
	if outBytes == 0 {
		outBytes = s.InBytes
	}
	out := a.buffer(outBytes)
	shared := a.buffer(maxI64(s.SharedBytes, arch.LineSize))
	gatherBytes := s.GatherBytes
	hasGather := false
	for _, ph := range s.Phases {
		if ph.Gather {
			hasGather = true
		}
	}
	if gatherBytes == 0 && hasGather {
		gatherBytes = 128 << 10
	}
	gather := a.buffer(maxI64(gatherBytes, arch.LineSize))

	prog := core.Program{Name: s.Name}
	hasShared := s.SharedBytes > 0
	if hasGather || hasShared {
		prog.Setup = func(m *vmm.Memory) {
			if hasShared {
				// Shared structures (graphs, lookup tables, weights)
				// were initialized by a striped kernel, so their pages
				// interleave across sockets.
				m.PreplaceInterleave(shared.Base, shared.Bytes)
			}
			if hasGather {
				// The gather buffer models output first-touched by an
				// earlier phase on socket 0 (host staging or an init
				// kernel): the source of the one-sided ingress
				// saturation of Figure 5.
				m.Preplace(gather.Base, gather.Bytes, 0)
			}
		}
	}

	phases := s.Phases
	if len(phases) == 0 {
		phases = []Phase{{}}
	}
	for pi, ph := range phases {
		repeat := ph.Repeat
		if repeat < 1 {
			repeat = 1
		}
		ctas := pick(ph.CTAs, s.CTAs)
		warps := pick(ph.Warps, s.Warps)
		iters := pick(ph.Iters, s.Iters)
		iters = int(float64(iters) * o.IterScale)
		minIters := 2
		if repeat > 1 {
			// Multi-kernel workloads need kernels long enough that the
			// coherence flush tax stays in the regime the paper
			// measures, even under aggressive IterScale.
			minIters = 4
		}
		if iters < minIters {
			iters = minIters
		}
		if o.MaxCTAs > 0 && ctas > o.MaxCTAs {
			ctas = o.MaxCTAs
		}
		if ctas < 1 {
			ctas = 1
		}
		if warps < 1 {
			warps = 1
		}
		totalWarps := int64(ctas) * int64(warps)
		p := &phaseParams{
			name:        ph.Name,
			ctas:        ctas,
			warps:       warps,
			iters:       iters,
			compute:     uint32(ph.Compute),
			localLines:  ph.LocalLines,
			haloLines:   ph.HaloLines,
			sharedLines: ph.SharedLines,
			broadcast:   ph.Broadcast,
			hotSkew:     ph.HotSkew,
			storeLines:  ph.StoreLines,
			gather:      ph.Gather,
			reverse:     ph.Reverse,
			in:          in,
			out:         out,
			shared:      shared,
			gather2:     gather,
			seed:        splitmix64(uint64(hashString(s.Name)) + uint64(pi)<<32),
		}
		if ph.OffsetFrac > 0 && ph.OffsetFrac < 1 {
			p.offsetLines = int64(float64(in.Lines()) * ph.OffsetFrac)
		}
		p.chunkLines = maxI64((in.Lines()-p.offsetLines)/totalWarps, 1)
		p.outChunkLines = maxI64(out.Lines()/totalWarps, 1)
		kname := ph.Name
		if kname == "" {
			kname = fmt.Sprintf("%s-k%d", s.Name, pi)
		}
		for r := 0; r < repeat; r++ {
			prog.Kernels = append(prog.Kernels, &kernel{name: kname, p: p})
		}
	}
	return prog
}

// InstructionEstimate approximates the warp instruction count of the
// materialized program: a budget guide for harness sizing.
func (s Spec) InstructionEstimate(o Options) int64 {
	if o.IterScale <= 0 {
		o.IterScale = 1
	}
	phases := s.Phases
	if len(phases) == 0 {
		phases = []Phase{{}}
	}
	var total int64
	for _, ph := range phases {
		repeat := ph.Repeat
		if repeat < 1 {
			repeat = 1
		}
		ctas := pick(ph.CTAs, s.CTAs)
		if o.MaxCTAs > 0 && ctas > o.MaxCTAs {
			ctas = o.MaxCTAs
		}
		warps := pick(ph.Warps, s.Warps)
		iters := int(float64(pick(ph.Iters, s.Iters)) * o.IterScale)
		if iters < 2 {
			iters = 2
		}
		perIter := 0
		if ph.LocalLines+ph.HaloLines+ph.SharedLines > 0 {
			perIter++
		}
		if ph.StoreLines > 0 {
			perIter++
		}
		if perIter == 0 {
			perIter = 1
		}
		total += int64(repeat) * int64(ctas) * int64(warps) * int64(iters) * int64(perIter)
	}
	return total
}

func pick(v, dflt int) int {
	if v != 0 {
		return v
	}
	return dflt
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
