// Package workload provides synthetic reconstructions of the 41 GPU
// workloads evaluated in Milic et al. (MICRO 2017), Table 2. The real
// benchmarks were SASS traces of production codes; here each workload
// is a parameterized generator reproducing the memory behaviour the
// paper's evaluation depends on: inter-CTA locality under contiguous
// block scheduling, remote access fractions, read/write direction
// asymmetry on the inter-GPU links, cacheable shared working sets, and
// multi-kernel phase structure.
package workload

import (
	"repro/internal/arch"
	"repro/internal/smcore"
)

// Buffer is a contiguous region of the unified virtual address space.
type Buffer struct {
	Base  arch.Addr
	Bytes int64
}

// Lines reports the buffer size in cache lines (at least 1).
func (b Buffer) Lines() int64 {
	n := b.Bytes / arch.LineSize
	if n < 1 {
		n = 1
	}
	return n
}

// line returns the i-th line of the buffer (i need not be bounded).
func (b Buffer) line(i int64) arch.LineID {
	n := b.Lines()
	i %= n
	if i < 0 {
		i += n
	}
	return arch.LineOf(b.Base) + arch.LineID(i)
}

// alloc is a bump allocator for workload buffers. Each workload owns
// the whole virtual address space of its run, so a fixed base is fine.
type alloc struct{ next arch.Addr }

func newAlloc() *alloc { return &alloc{next: 1 << 32} }

func (a *alloc) buffer(bytes int64) Buffer {
	if bytes < arch.LineSize {
		bytes = arch.LineSize
	}
	// Page-align so first-touch placement of one buffer never bleeds
	// into another.
	base := (a.next + arch.PageSize - 1) &^ (arch.PageSize - 1)
	a.next = base + arch.Addr(bytes)
	return Buffer{Base: base, Bytes: bytes}
}

// splitmix64 seeds the per-warp xorshift generators.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a xorshift64* generator: deterministic, allocation-free.
type rng uint64

func newRNG(seed uint64) rng {
	s := splitmix64(seed)
	if s == 0 {
		s = 0x2545f4914f6cdd1d
	}
	return rng(s)
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// phaseParams is one kernel's fully resolved access pattern, shared by
// all its warp streams.
type phaseParams struct {
	name  string
	ctas  int
	warps int // per CTA
	iters int

	compute uint32

	localLines  int // sequential reads from the warp's own chunk
	haloLines   int // reads from the successor warp's chunk (stencil)
	sharedLines int // reads from the shared buffer
	broadcast   bool
	hotSkew     bool // half the random shared accesses hit a hot 1/16 region
	storeLines  int  // writes per iteration
	gather      bool // stores target the gather buffer instead of Out

	// Chunk remapping: offsetLines shifts every chunk into the tail of
	// the buffer (shrinking active regions, e.g. elimination fronts);
	// reverse assigns warp g the chunk of warp W-1-g (scatter phases
	// whose ownership disagrees with the first-touch placement).
	offsetLines int64
	reverse     bool

	in, out, shared, gather2 Buffer
	chunkLines               int64 // per-warp chunk in the In buffer
	outChunkLines            int64
	seed                     uint64
}

// chunkIndex resolves the (possibly reversed) chunk of warp g.
func (p *phaseParams) chunkIndex(g int64) int64 {
	if p.reverse {
		return int64(p.totalWarps()) - 1 - g
	}
	return g
}

func (p *phaseParams) totalWarps() int { return p.ctas * p.warps }

// stream is the instruction stream of one warp executing one phase.
type stream struct {
	p     *phaseParams
	gwarp int64
	iter  int
	stage uint8 // 0: load step, 1: store step
	r     rng
	buf   [48]arch.LineID
}

func newStream(p *phaseParams, cta, warp int) *stream {
	g := int64(cta)*int64(p.warps) + int64(warp)
	return &stream{
		p:     p,
		gwarp: g,
		r:     newRNG(p.seed ^ uint64(g)*0x9e3779b97f4a7c15),
	}
}

var _ smcore.InstrStream = (*stream)(nil)

// Next implements smcore.InstrStream: each iteration issues an optional
// coalesced load (own chunk + halo + shared lines) followed by an
// optional coalesced store; compute cycles attach to the first
// instruction of the iteration.
func (s *stream) Next(in *smcore.Instr) bool {
	p := s.p
	for {
		if s.iter >= p.iters {
			return false
		}
		switch s.stage {
		case 0:
			s.stage = 1
			lines := s.loadLines()
			if len(lines) == 0 {
				if p.storeLines == 0 {
					// Pure compute iteration.
					s.advance()
					in.Comp = p.compute
					in.Op = smcore.OpNone
					in.Lines = nil
					return true
				}
				continue // straight to the store step
			}
			in.Comp = p.compute
			in.Op = smcore.OpLoad
			in.Lines = lines
			return true
		default:
			lines := s.storeTargets()
			hadLoad := p.localLines+p.haloLines+p.sharedLines > 0
			s.advance()
			if len(lines) == 0 {
				continue
			}
			in.Op = smcore.OpStore
			in.Lines = lines
			if hadLoad {
				in.Comp = 0 // compute was charged on the load
			} else {
				in.Comp = p.compute
			}
			return true
		}
	}
}

func (s *stream) advance() {
	s.iter++
	s.stage = 0
}

func (s *stream) loadLines() []arch.LineID {
	p := s.p
	n := 0
	it := int64(s.iter)
	if p.localLines > 0 && p.chunkLines > 0 {
		base := p.offsetLines + p.chunkIndex(s.gwarp)*p.chunkLines
		for j := 0; j < p.localLines; j++ {
			off := (it*int64(p.localLines) + int64(j)) % p.chunkLines
			s.buf[n] = p.in.line(base + off)
			n++
		}
	}
	if p.haloLines > 0 && p.chunkLines > 0 {
		nb := (s.gwarp + 1) % int64(p.totalWarps())
		base := p.offsetLines + p.chunkIndex(nb)*p.chunkLines
		for j := 0; j < p.haloLines; j++ {
			off := (it + int64(j)) % p.chunkLines
			s.buf[n] = p.in.line(base + off)
			n++
		}
	}
	if p.sharedLines > 0 {
		sl := p.shared.Lines()
		for j := 0; j < p.sharedLines; j++ {
			var idx int64
			switch {
			case p.broadcast:
				idx = (it*int64(p.sharedLines) + int64(j)) % sl
			case p.hotSkew && s.r.next()&1 == 0:
				// Skewed structures (graph degree tails, cross-section
				// resonances): half the lookups land in a hot 1/16 of
				// the buffer that on-chip caches capture.
				hot := sl / 16
				if hot < 1 {
					hot = 1
				}
				idx = int64(s.r.next() % uint64(hot))
			default:
				idx = int64(s.r.next() % uint64(sl))
			}
			s.buf[n] = p.shared.line(idx)
			n++
		}
	}
	return dedupe(s.buf[:n])
}

func (s *stream) storeTargets() []arch.LineID {
	p := s.p
	if p.storeLines == 0 {
		return nil
	}
	n := 0
	it := int64(s.iter)
	if p.gather {
		gl := p.gather2.Lines()
		for j := 0; j < p.storeLines; j++ {
			idx := (s.gwarp + int64(j+1)*int64(p.totalWarps()) + it) % gl
			s.buf[n] = p.gather2.line(idx)
			n++
		}
	} else if p.outChunkLines > 0 {
		base := p.chunkIndex(s.gwarp) * p.outChunkLines
		for j := 0; j < p.storeLines; j++ {
			off := (it*int64(p.storeLines) + int64(j)) % p.outChunkLines
			s.buf[n] = p.out.line(base + off)
			n++
		}
	}
	return dedupe(s.buf[:n])
}

// dedupe removes duplicate lines in place (coalescing guarantees one
// request per distinct line per instruction).
func dedupe(lines []arch.LineID) []arch.LineID {
	out := lines[:0]
	for _, l := range lines {
		seen := false
		for _, p := range out {
			if p == l {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, l)
		}
	}
	return out
}
