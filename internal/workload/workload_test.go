package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/smcore"
)

func TestTableInventory(t *testing.T) {
	table := Table()
	if len(table) != 41 {
		t.Fatalf("table has %d workloads, want 41 (Table 2)", len(table))
	}
	grey := 0
	names := map[string]bool{}
	for _, s := range table {
		if names[s.Name] {
			t.Fatalf("duplicate workload %q", s.Name)
		}
		names[s.Name] = true
		if s.Grey {
			grey++
		}
		if s.PaperCTAs <= 0 || s.PaperFootprintMB <= 0 {
			t.Errorf("%s: missing Table 2 metadata", s.Name)
		}
		if s.CTAs <= 0 || s.Warps <= 0 || s.Iters <= 0 || s.InBytes <= 0 {
			t.Errorf("%s: missing generator parameters", s.Name)
		}
	}
	if grey != 9 {
		t.Fatalf("grey workloads %d, want 9 (Figure 3 grey box)", grey)
	}
	if len(Evaluated()) != 32 {
		t.Fatalf("evaluated set %d, want 32", len(Evaluated()))
	}
	if len(GreySet()) != 9 {
		t.Fatalf("grey set %d, want 9", len(GreySet()))
	}
}

func TestPaperTable2SpotChecks(t *testing.T) {
	// Values transcribed from the paper's Table 2.
	checks := map[string]struct{ ctas, mb int }{
		"HPC-AMG":              {241549, 3744},
		"Other-Stream-Triad":   {699051, 3146},
		"Lonestar-SP":          {75, 8},
		"Rodinia-Euler3D":      {1008, 25},
		"HPC-RSBench":          {7813, 19},
		"Other-Bitcoin-Crypto": {60, 5898},
	}
	for name, want := range checks {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		if s.PaperCTAs != want.ctas || s.PaperFootprintMB != want.mb {
			t.Errorf("%s: paper metadata %d/%d, want %d/%d",
				name, s.PaperCTAs, s.PaperFootprintMB, want.ctas, want.mb)
		}
	}
}

func TestByNameMissing(t *testing.T) {
	if _, ok := ByName("no-such-workload"); ok {
		t.Fatal("ByName must report missing workloads")
	}
}

func TestProgramConstruction(t *testing.T) {
	for _, s := range Table() {
		prog := s.Program(Options{IterScale: 0.1})
		if prog.Name != s.Name {
			t.Errorf("%s: program name %q", s.Name, prog.Name)
		}
		if len(prog.Kernels) == 0 {
			t.Errorf("%s: no kernels", s.Name)
		}
		for _, k := range prog.Kernels {
			if k.CTAs() < 1 || k.WarpsPerCTA() < 1 {
				t.Errorf("%s/%s: degenerate kernel", s.Name, k.Name())
			}
		}
	}
}

func TestHPGMGUVMPhaseCount(t *testing.T) {
	s, _ := ByName("HPC-HPGMG-UVM")
	prog := s.Program(DefaultOptions())
	if len(prog.Kernels) != 10 {
		t.Fatalf("HPGMG-UVM kernels %d, want 10 (two V-cycles with repeats)", len(prog.Kernels))
	}
}

func TestStreamDeterminism(t *testing.T) {
	s, _ := ByName("HPC-AMG")
	prog1 := s.Program(Options{IterScale: 0.2})
	prog2 := s.Program(Options{IterScale: 0.2})
	k1, k2 := prog1.Kernels[0], prog2.Kernels[0]
	w1, w2 := k1.Warp(3, 1), k2.Warp(3, 1)
	var i1, i2 smcore.Instr
	for step := 0; ; step++ {
		ok1 := w1.Next(&i1)
		ok2 := w2.Next(&i2)
		if ok1 != ok2 {
			t.Fatal("stream lengths differ")
		}
		if !ok1 {
			break
		}
		if i1.Op != i2.Op || i1.Comp != i2.Comp || len(i1.Lines) != len(i2.Lines) {
			t.Fatalf("step %d: instruction mismatch", step)
		}
		for j := range i1.Lines {
			if i1.Lines[j] != i2.Lines[j] {
				t.Fatalf("step %d line %d: %d vs %d", step, j, i1.Lines[j], i2.Lines[j])
			}
		}
	}
}

func TestStreamsDifferAcrossWarps(t *testing.T) {
	s, _ := ByName("HPC-AMG") // random pattern
	prog := s.Program(Options{IterScale: 0.2})
	k := prog.Kernels[0]
	a, b := k.Warp(0, 0), k.Warp(5, 1)
	var ia, ib smcore.Instr
	same := true
	for step := 0; step < 5; step++ {
		if !a.Next(&ia) || !b.Next(&ib) {
			break
		}
		if len(ia.Lines) != len(ib.Lines) {
			same = false
			break
		}
		for j := range ia.Lines {
			if ia.Lines[j] != ib.Lines[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different warps produced identical random access streams")
	}
}

func TestBroadcastSharesLines(t *testing.T) {
	s, _ := ByName("ML-GoogLeNet-cudnn-Lev2") // broadcast weights
	prog := s.Program(Options{IterScale: 0.2})
	k := prog.Kernels[0]
	a, b := k.Warp(0, 0), k.Warp(9, 1)
	var ia, ib smcore.Instr
	a.Next(&ia)
	b.Next(&ib)
	shared := 0
	for _, la := range ia.Lines {
		for _, lb := range ib.Lines {
			if la == lb {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("broadcast pattern must share weight lines across warps")
	}
}

func TestInstrLinesDeduped(t *testing.T) {
	for _, name := range []string{"HPC-RSBench", "HPC-CoMD", "Other-Stream-Triad"} {
		s, _ := ByName(name)
		prog := s.Program(Options{IterScale: 0.2})
		k := prog.Kernels[0]
		w := k.Warp(0, 0)
		var in smcore.Instr
		for w.Next(&in) {
			seen := map[arch.LineID]bool{}
			for _, l := range in.Lines {
				if seen[l] {
					t.Fatalf("%s: duplicate line %d in one instruction", name, l)
				}
				seen[l] = true
			}
		}
	}
}

func TestStreamsStayInBuffers(t *testing.T) {
	// Every generated address must land inside the workload's allocated
	// buffers (no stray pages that would corrupt placement statistics).
	for _, s := range Table() {
		prog := s.Program(Options{IterScale: 0.1, MaxCTAs: 16})
		lo := arch.Addr(1) << 32
		hi := lo + arch.Addr(s.InBytes)*4 + arch.Addr(s.SharedBytes) + (64 << 20)
		k := prog.Kernels[len(prog.Kernels)-1]
		for _, wi := range []int{0, k.WarpsPerCTA() - 1} {
			w := k.Warp(k.CTAs()-1, wi)
			var in smcore.Instr
			for w.Next(&in) {
				for _, l := range in.Lines {
					if l.Addr() < lo || l.Addr() >= hi {
						t.Fatalf("%s: line %#x outside plausible buffer range", s.Name, l.Addr())
					}
				}
			}
		}
	}
}

func TestIterScaleShrinksWork(t *testing.T) {
	s, _ := ByName("HPC-MiniAMR")
	full := s.InstructionEstimate(Options{IterScale: 1})
	quarter := s.InstructionEstimate(Options{IterScale: 0.25})
	if quarter >= full {
		t.Fatalf("scaling failed: %d >= %d", quarter, full)
	}
	if quarter < full/8 {
		t.Fatalf("scaling too aggressive: %d << %d/4", quarter, full)
	}
}

func TestMaxCTAsCap(t *testing.T) {
	s, _ := ByName("HPC-MiniAMR")
	prog := s.Program(Options{IterScale: 1, MaxCTAs: 64})
	for _, k := range prog.Kernels {
		if k.CTAs() > 64 {
			t.Fatalf("CTA cap violated: %d", k.CTAs())
		}
	}
}

func TestInstructionEstimateOrder(t *testing.T) {
	// The estimate should be within 2× of the true generated count.
	s, _ := ByName("HPC-CoMD")
	o := Options{IterScale: 0.2, MaxCTAs: 32}
	prog := s.Program(o)
	est := s.InstructionEstimate(o)
	var actual int64
	for _, k := range prog.Kernels {
		var in smcore.Instr
		for c := 0; c < k.CTAs(); c++ {
			for w := 0; w < k.WarpsPerCTA(); w++ {
				st := k.Warp(c, w)
				for st.Next(&in) {
					actual++
				}
			}
		}
	}
	if est < actual/2 || est > actual*2 {
		t.Fatalf("estimate %d vs actual %d", est, actual)
	}
}

func TestBufferHelpers(t *testing.T) {
	b := Buffer{Base: 1 << 32, Bytes: 1024}
	if b.Lines() != 8 {
		t.Fatalf("lines %d, want 8", b.Lines())
	}
	if b.line(0) != arch.LineOf(b.Base) {
		t.Fatal("line 0 wrong")
	}
	if b.line(8) != b.line(0) {
		t.Fatal("line indexing must wrap")
	}
	if b.line(-1) != b.line(7) {
		t.Fatal("negative index must wrap")
	}
}

func TestAllocPageAligned(t *testing.T) {
	a := newAlloc()
	b1 := a.buffer(100)
	b2 := a.buffer(1 << 20)
	if b1.Base%arch.PageSize != 0 || b2.Base%arch.PageSize != 0 {
		t.Fatal("buffers must be page aligned")
	}
	if b2.Base < b1.Base+arch.Addr(b1.Bytes) {
		t.Fatal("buffers overlap")
	}
}

// TestPropertyRNGDeterministic: equal seeds produce equal sequences,
// different seeds diverge quickly.
func TestPropertyRNGDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := newRNG(seed), newRNG(seed)
		for i := 0; i < 10; i++ {
			if a.next() != b.next() {
				return false
			}
		}
		c := newRNG(seed + 1)
		diff := false
		d := newRNG(seed)
		for i := 0; i < 10; i++ {
			if c.next() != d.next() {
				diff = true
			}
		}
		return diff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDedupe: output of dedupe contains no duplicates and every
// distinct input value.
func TestPropertyDedupe(t *testing.T) {
	f := func(raw []uint8) bool {
		lines := make([]arch.LineID, len(raw))
		distinct := map[arch.LineID]bool{}
		for i, r := range raw {
			lines[i] = arch.LineID(r % 16)
			distinct[lines[i]] = true
		}
		out := dedupe(lines)
		if len(out) != len(distinct) {
			return false
		}
		seen := map[arch.LineID]bool{}
		for _, l := range out {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReverseChunks(t *testing.T) {
	p := &phaseParams{ctas: 4, warps: 2, reverse: true}
	if p.chunkIndex(0) != 7 || p.chunkIndex(7) != 0 {
		t.Fatal("reverse chunk mapping wrong")
	}
	p.reverse = false
	if p.chunkIndex(3) != 3 {
		t.Fatal("identity chunk mapping wrong")
	}
}
