package workload

// Table reconstructs the 41 workloads of Table 2 (Milic et al., MICRO
// 2017) in the paper's order. PaperCTAs and PaperFootprintMB carry the
// published time-weighted CTA counts and footprints (used verbatim by
// Figure 2 and Table 2); the generator parameters are tuned at
// simulation scale to land each workload in its published position:
//
//   - Grey workloads (9 of 41) reach ≥99% of theoretical scaling with
//     software locality alone and are excluded from Figures 6/8/9/10.
//   - Left-side workloads of Figures 6/8 are interconnect-bound: random
//     access over large shared structures (AMG, Euler3D, Lulesh) that
//     saturate both link directions, or cacheable shared tables
//     (RSBench, SP, SSSP) that reward remote caching enormously.
//   - Gather/reduction phases (CoMD, Lulesh, Nekbone, HPGMG-UVM,
//     AlexNet-Lev2) create the asymmetric link traffic that the dynamic
//     lane balancer exploits.
//   - Right-side workloads are local stencils/streams where static
//     cache partitioning wastes capacity and can hurt.
const (
	kb = 1 << 10
	mb = 1 << 20
)

// Table lists all 41 workloads in the paper's Table 2 order.
func Table() []Spec {
	return []Spec{
		{
			Name: "ML-GoogLeNet-cudnn-Lev2", PaperCTAs: 6272, PaperFootprintMB: 1205,
			CTAs: 1280, Warps: 2, Iters: 22, InBytes: 12 * mb, SharedBytes: 512 * kb,
			Phases: []Phase{{LocalLines: 2, SharedLines: 2, Broadcast: true, StoreLines: 1, Compute: 6}},
		},
		{
			Name: "ML-AlexNet-cudnn-Lev2", PaperCTAs: 1250, PaperFootprintMB: 832,
			CTAs: 1024, Warps: 2, Iters: 24, InBytes: 10 * mb, SharedBytes: 1 * mb,
			Phases:      []Phase{{LocalLines: 2, SharedLines: 1, Broadcast: true, StoreLines: 1, Gather: true, Compute: 4}},
			GatherBytes: 192 * kb,
		},
		{
			Name: "ML-OverFeat-cudann-Lev3", PaperCTAs: 1800, PaperFootprintMB: 388, Grey: true,
			CTAs: 1024, Warps: 2, Iters: 20, InBytes: 8 * mb, SharedBytes: 256 * kb,
			Phases: []Phase{{LocalLines: 2, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 16}},
		},
		{
			Name: "ML-AlexNet-cudnn-Lev4", PaperCTAs: 1014, PaperFootprintMB: 32,
			CTAs: 768, Warps: 2, Iters: 24, InBytes: 3 * mb, SharedBytes: 256 * kb,
			Phases: []Phase{{LocalLines: 1, SharedLines: 2, Broadcast: true, StoreLines: 1, Compute: 6}},
		},
		{
			Name: "ML-AlexNet-ConvNet2", PaperCTAs: 6075, PaperFootprintMB: 97, Grey: true,
			CTAs: 1536, Warps: 2, Iters: 16, InBytes: 12 * mb, SharedBytes: 128 * kb,
			Phases: []Phase{{LocalLines: 2, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 20}},
		},
		{
			Name: "Rodinia-Backprop", PaperCTAs: 4096, PaperFootprintMB: 160, Grey: true,
			CTAs: 1536, Warps: 2, Iters: 7, InBytes: 16 * mb, SharedBytes: 64 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 5}},
		},
		{
			Name: "Rodinia-Euler3D", PaperCTAs: 1008, PaperFootprintMB: 25,
			CTAs: 1008, Warps: 2, Iters: 12, InBytes: 6 * mb, SharedBytes: 24 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 1, SharedLines: 3, StoreLines: 1, Compute: 2}},
		},
		{
			Name: "Rodinia-BFS", PaperCTAs: 1954, PaperFootprintMB: 38,
			CTAs: 1024, Warps: 2, Iters: 9, InBytes: 4 * mb, SharedBytes: 1536 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, StoreLines: 1, Gather: true, Compute: 2}},
		},
		{
			Name: "Rodinia-Gaussian", PaperCTAs: 2599, PaperFootprintMB: 78,
			CTAs: 1536, Warps: 2, Iters: 12, InBytes: 12 * mb, SharedBytes: 128 * kb,
			Phases: []Phase{
				{Name: "elim-0", CTAs: 1536, LocalLines: 1, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 3},
				{Name: "elim-1", CTAs: 1024, OffsetFrac: 0.25, LocalLines: 1, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 3},
				{Name: "elim-2", CTAs: 640, OffsetFrac: 0.5, LocalLines: 1, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 3},
				{Name: "elim-3", CTAs: 384, OffsetFrac: 0.7, LocalLines: 1, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 3},
			},
		},
		{
			Name: "Rodinia-Hotspot", PaperCTAs: 7396, PaperFootprintMB: 64,
			CTAs: 1536, Warps: 2, Iters: 7, InBytes: 16 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 4}},
		},
		{
			Name: "Rodinia-Kmeans", PaperCTAs: 3249, PaperFootprintMB: 221, Grey: true,
			CTAs: 1280, Warps: 2, Iters: 7, InBytes: 20 * mb, SharedBytes: 64 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 22}},
		},
		{
			Name: "Rodnia-Pathfinder", PaperCTAs: 4630, PaperFootprintMB: 1570,
			CTAs: 1536, Warps: 2, Iters: 8, InBytes: 24 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 2}},
		},
		{
			Name: "Rodinia-Srad", PaperCTAs: 16384, PaperFootprintMB: 98, Grey: true,
			CTAs: 1536, Warps: 2, Iters: 7, InBytes: 12 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, StoreLines: 1, Compute: 4}},
		},
		{
			Name: "HPC-SNAP", PaperCTAs: 200, PaperFootprintMB: 744,
			CTAs: 192, Warps: 4, Iters: 23, InBytes: 12 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 3, HaloLines: 1, StoreLines: 1, Compute: 5}},
		},
		{
			Name: "HPC-Nekbone-Large", PaperCTAs: 5583, PaperFootprintMB: 294,
			CTAs: 1024, Warps: 2, Iters: 8, InBytes: 12 * mb, SharedBytes: 8 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 3, SharedLines: 1, HotSkew: true, StoreLines: 1, Gather: true, Compute: 6}},
		},
		{
			Name: "HPC-MiniAMR", PaperCTAs: 76033, PaperFootprintMB: 2752,
			CTAs: 2048, Warps: 2, Iters: 7, InBytes: 32 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 3, HaloLines: 1, StoreLines: 1, Compute: 2}},
		},
		{
			Name: "HPC-MiniContact-Mesh1", PaperCTAs: 250, PaperFootprintMB: 21,
			CTAs: 224, Warps: 2, Iters: 31, InBytes: 2 * mb, SharedBytes: 768 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 1, SharedLines: 2, HotSkew: true, Compute: 4}},
		},
		{
			Name: "HPC-MiniContact-Mesh2", PaperCTAs: 15423, PaperFootprintMB: 257,
			CTAs: 1280, Warps: 2, Iters: 8, InBytes: 8 * mb, SharedBytes: 2 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 1, HotSkew: true, StoreLines: 1, Gather: true, Compute: 3}},
		},
		{
			Name: "HPC-Lulesh-Unstruct-Mesh1", PaperCTAs: 435, PaperFootprintMB: 19,
			CTAs: 384, Warps: 2, Iters: 16, InBytes: 2 * mb, SharedBytes: 1536 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, StoreLines: 1, Gather: true, Compute: 2}},
		},
		{
			Name: "HPC-Lulesh-Unstruct-Mesh2", PaperCTAs: 4940, PaperFootprintMB: 208,
			CTAs: 1024, Warps: 2, Iters: 9, InBytes: 8 * mb, SharedBytes: 3 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, StoreLines: 1, Gather: true, Compute: 2}},
		},
		{
			Name: "HPC-AMG", PaperCTAs: 241549, PaperFootprintMB: 3744,
			CTAs: 1536, Warps: 2, Iters: 9, InBytes: 8 * mb, SharedBytes: 40 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 1, SharedLines: 4, StoreLines: 1, Compute: 1}},
		},
		{
			Name: "HPC-RSBench", PaperCTAs: 7813, PaperFootprintMB: 19,
			CTAs: 1024, Warps: 2, Iters: 28, InBytes: 2 * mb, SharedBytes: 512 * kb,
			Phases: []Phase{{SharedLines: 6, Compute: 5}},
		},
		{
			Name: "HPC-MCB", PaperCTAs: 5001, PaperFootprintMB: 162,
			CTAs: 1024, Warps: 2, Iters: 9, InBytes: 6 * mb, SharedBytes: 2 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 1, HotSkew: true, Compute: 8}},
		},
		{
			Name: "HPC-NAMD2.9", PaperCTAs: 3888, PaperFootprintMB: 88,
			CTAs: 1024, Warps: 2, Iters: 8, InBytes: 6 * mb, SharedBytes: 2 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 1, HotSkew: true, Compute: 8}},
		},
		{
			Name: "HPC-RabbitCT", PaperCTAs: 131072, PaperFootprintMB: 524, Grey: true,
			CTAs: 1536, Warps: 2, Iters: 14, InBytes: 16 * mb, SharedBytes: 256 * kb,
			Phases: []Phase{{LocalLines: 2, SharedLines: 1, Broadcast: true, StoreLines: 1, Compute: 12}},
		},
		{
			Name: "HPC-Lulesh", PaperCTAs: 12202, PaperFootprintMB: 578,
			CTAs: 1280, Warps: 2, Iters: 8, InBytes: 10 * mb, SharedBytes: 16 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 1, SharedLines: 3, HotSkew: true, StoreLines: 1, Compute: 2}},
		},
		{
			Name: "HPC-CoMD", PaperCTAs: 3588, PaperFootprintMB: 319,
			CTAs: 1024, Warps: 2, Iters: 8, InBytes: 8 * mb, SharedBytes: 2 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, HaloLines: 1, SharedLines: 1, HotSkew: true, StoreLines: 1, Gather: true, Compute: 4}},
		},
		{
			Name: "HPC-CoMD-Wa", PaperCTAs: 13691, PaperFootprintMB: 393,
			CTAs: 1280, Warps: 2, Iters: 7, InBytes: 10 * mb, SharedBytes: 3 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, HaloLines: 1, SharedLines: 1, HotSkew: true, StoreLines: 1, Gather: true, Compute: 3}},
		},
		{
			Name: "HPC-CoMD-Ta", PaperCTAs: 5724, PaperFootprintMB: 394,
			CTAs: 1024, Warps: 2, Iters: 9, InBytes: 8 * mb, SharedBytes: 3 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, StoreLines: 1, Gather: true, Compute: 2}},
		},
		{
			Name: "HPC-HPGMG-UVM", PaperCTAs: 10436, PaperFootprintMB: 1975,
			CTAs: 1536, Warps: 2, Iters: 8, InBytes: 16 * mb, SharedBytes: 8 * mb,
			GatherBytes: 256 * kb,
			Phases: []Phase{
				{Name: "smooth-l0", CTAs: 1536, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 3, Repeat: 2},
				{Name: "restrict", CTAs: 384, Reverse: true, LocalLines: 2, StoreLines: 2, Gather: true, Compute: 2, Iters: 14},
				{Name: "smooth-l1", CTAs: 384, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 3},
				{Name: "prolong", CTAs: 1536, LocalLines: 1, SharedLines: 1, StoreLines: 1, Compute: 2},
				{Name: "smooth-l0b", CTAs: 1536, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 3, Repeat: 2},
				{Name: "restrict-b", CTAs: 384, Reverse: true, LocalLines: 2, StoreLines: 2, Gather: true, Compute: 2, Iters: 14},
				{Name: "smooth-l1b", CTAs: 384, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 3},
				{Name: "prolong-b", CTAs: 1536, LocalLines: 1, SharedLines: 1, StoreLines: 1, Compute: 2},
			},
		},
		{
			Name: "HPC-HPGMG", PaperCTAs: 10506, PaperFootprintMB: 1571,
			CTAs: 1536, Warps: 2, Iters: 8, InBytes: 16 * mb,
			Phases: []Phase{
				{Name: "smooth-l0", CTAs: 1536, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 3, Repeat: 2},
				{Name: "restrict", CTAs: 384, LocalLines: 2, StoreLines: 1, Compute: 2},
				{Name: "smooth-l1", CTAs: 384, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 3},
				{Name: "prolong", CTAs: 1536, LocalLines: 2, StoreLines: 1, Compute: 2},
				{Name: "smooth-l0b", CTAs: 1536, LocalLines: 2, HaloLines: 1, StoreLines: 1, Compute: 3, Repeat: 2},
			},
		},
		{
			Name: "Lonestar-SP", PaperCTAs: 75, PaperFootprintMB: 8,
			CTAs: 72, Warps: 2, Iters: 57, InBytes: 1 * mb, SharedBytes: 768 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 1, SharedLines: 2, HotSkew: true, Compute: 4}},
		},
		{
			Name: "Lonestar-MST-Graph", PaperCTAs: 770, PaperFootprintMB: 86,
			CTAs: 640, Warps: 2, Iters: 12, InBytes: 4 * mb, SharedBytes: 2560 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, StoreLines: 1, Gather: true, Compute: 3}},
		},
		{
			Name: "Lonestar-MST-Mesh", PaperCTAs: 895, PaperFootprintMB: 75,
			CTAs: 768, Warps: 2, Iters: 12, InBytes: 4 * mb, SharedBytes: 1536 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, Compute: 2}},
		},
		{
			Name: "Lonestar-SSSP-Wln", PaperCTAs: 60, PaperFootprintMB: 21,
			CTAs: 64, Warps: 2, Iters: 60, InBytes: 1 * mb, SharedBytes: 1 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, Compute: 3}},
		},
		{
			Name: "Lonestar-DMR", PaperCTAs: 82, PaperFootprintMB: 248, Grey: true,
			CTAs: 96, Warps: 4, Iters: 39, InBytes: 4 * mb,
			Phases: []Phase{{Repeat: 2, LocalLines: 1, Compute: 30}},
		},
		{
			Name: "Lonestar-SSSP-Wlc", PaperCTAs: 163, PaperFootprintMB: 21,
			CTAs: 160, Warps: 2, Iters: 38, InBytes: 2 * mb, SharedBytes: 1280 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, StoreLines: 1, Gather: true, Compute: 3}},
		},
		{
			Name: "Lonestar-SSSP", PaperCTAs: 1046, PaperFootprintMB: 38,
			CTAs: 1024, Warps: 2, Iters: 8, InBytes: 4 * mb, SharedBytes: 1536 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 1, HotSkew: true, Compute: 3}},
		},
		{
			Name: "Other-Stream-Triad", PaperCTAs: 699051, PaperFootprintMB: 3146, Grey: true,
			CTAs: 2048, Warps: 2, Iters: 16, InBytes: 48 * mb,
			Phases: []Phase{{LocalLines: 3, StoreLines: 1, Compute: 1}},
		},
		{
			Name: "Other-Optix-Raytracing", PaperCTAs: 3072, PaperFootprintMB: 87,
			CTAs: 1024, Warps: 2, Iters: 8, InBytes: 4 * mb, SharedBytes: 2560 * kb,
			Phases: []Phase{{Repeat: 2, LocalLines: 2, SharedLines: 2, HotSkew: true, Compute: 10}},
		},
		{
			Name: "Other-Bitcoin-Crypto", PaperCTAs: 60, PaperFootprintMB: 5898, Grey: true,
			CTAs: 64, Warps: 4, Iters: 120, InBytes: 4 * mb,
			Phases: []Phase{{LocalLines: 1, Compute: 40}},
		},
	}
}

// ByName returns the spec with the given name, or false.
func ByName(name string) (Spec, bool) {
	for _, s := range Table() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Evaluated returns the 32 non-grey workloads the paper uses for
// Figures 6, 8, 9 and 10.
func Evaluated() []Spec {
	var out []Spec
	for _, s := range Table() {
		if !s.Grey {
			out = append(out, s)
		}
	}
	return out
}

// GreySet returns the 9 workloads that scale with software locality
// alone (the grey box of Figure 3).
func GreySet() []Spec {
	var out []Spec
	for _, s := range Table() {
		if s.Grey {
			out = append(out, s)
		}
	}
	return out
}
