// Package noc models the intra-GPU network on chip: the crossbar that
// carries traffic between the SMs (L1 caches) and the banked L2 slices
// of one GPU socket. It is an aggregate bandwidth-limited pipe — GPU
// crossbars are provisioned well above DRAM bandwidth, so per-port
// contention is secondary to the aggregate ceiling.
package noc

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Crossbar is one socket's SM↔L2 interconnect.
type Crossbar struct {
	srv   *sim.Server
	Bytes stats.Meter
}

// New builds a crossbar with the given aggregate bandwidth (bytes/cycle)
// and traversal latency (cycles).
func New(eng *sim.Engine, bandwidth float64, latency int) *Crossbar {
	return &Crossbar{srv: sim.NewServer(eng, bandwidth, latency)}
}

// Send moves size bytes across the crossbar; done fires on delivery and
// may be nil for traffic whose completion is tracked elsewhere.
func (x *Crossbar) Send(size int, done sim.Event) {
	x.Bytes.Add(uint64(size))
	x.srv.Transfer(size, done)
}

// SendFunc is Send for a clock-ignoring completion callback, queued
// without a per-message adapter closure (the L2 response fan-out path).
func (x *Crossbar) SendFunc(size int, done func()) {
	x.Bytes.Add(uint64(size))
	x.srv.TransferFunc(size, done)
}

// SendArg is Send for a long-lived ArgEvent callback plus an integer
// argument — the datapath's pooled-continuation path (fn is a stage
// bound once per socket, arg a transaction index).
func (x *Crossbar) SendArg(size int, fn sim.ArgEvent, arg int) {
	x.Bytes.Add(uint64(size))
	x.srv.TransferArg(size, fn, arg)
}

// Utilization reports crossbar utilization over the window ending now.
func (x *Crossbar) Utilization(now sim.Time) float64 {
	return x.Bytes.Utilization(now, x.srv.Bandwidth())
}

// ResetWindow opens a new sampling window at now.
func (x *Crossbar) ResetWindow(now sim.Time) { x.Bytes.Reset(now) }
