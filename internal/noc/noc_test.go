package noc

import (
	"testing"

	"repro/internal/sim"
)

func TestCrossbarDelivery(t *testing.T) {
	eng := sim.New()
	x := New(eng, 256, 12)
	var at sim.Time
	x.Send(128, func(now sim.Time) { at = now })
	eng.Run()
	if at != 13 {
		t.Fatalf("delivery at %d, want 13 (1 serialize + 12 latency)", at)
	}
	if x.Bytes.Total() != 128 {
		t.Fatalf("bytes %d", x.Bytes.Total())
	}
}

func TestCrossbarContention(t *testing.T) {
	eng := sim.New()
	x := New(eng, 16, 0)
	var last sim.Time
	for i := 0; i < 10; i++ {
		x.Send(160, func(now sim.Time) { last = now })
	}
	eng.Run()
	// 1600 bytes at 16 B/cycle = 100 cycles of serialization.
	if last < 100 {
		t.Fatalf("10 transfers finished at %d, want ≥100", last)
	}
}

func TestCrossbarUtilization(t *testing.T) {
	eng := sim.New()
	x := New(eng, 100, 0)
	x.ResetWindow(0)
	x.Send(2500, nil)
	eng.Run()
	if u := x.Utilization(50); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
}
