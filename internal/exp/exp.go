// Package exp is the experiment harness: one entry point per table and
// figure of Milic et al. (MICRO 2017), each returning a rendered text
// table plus a machine-readable summary used by the benchmark suite and
// the README. Runs are memoized so shared baselines (e.g. the
// single-GPU reference) are simulated once per harness, and every
// experiment submits its full (config, workload) sweep up front through
// RunAll, which executes the independent simulations on a worker pool
// sized by Options.Parallelism while keeping result order — and thus
// every rendered table — identical to the sequential harness. A
// pluggable second-level Cache (Options.Cache) persists results below
// the memo; the numagpud service (internal/service) layers a
// disk-backed implementation under a shared Runner so results survive
// restarts. See ARCHITECTURE.md for the full design.
package exp

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Options sizes the harness.
type Options struct {
	// Divisor scales per-socket architecture resources relative to the
	// paper machine (see arch.ScaledConfig). Default 8.
	Divisor int
	// IterScale scales workload iteration counts. Default 1.0.
	IterScale float64
	// MaxCTAs caps grid sizes (0 = uncapped).
	MaxCTAs int
	// Workloads overrides the evaluated set (default: workload.Table()).
	Workloads []workload.Spec
	// Progress, when non-nil, receives one line per simulation run.
	// Writes are serialized by the Runner; under parallelism the line
	// order depends on completion order, but the set of lines does not.
	Progress io.Writer
	// Parallelism bounds the number of simulations RunAll executes
	// concurrently. Default (and any value < 1): runtime.GOMAXPROCS(0).
	// 1 reproduces the strictly sequential harness.
	Parallelism int
	// Cache, when non-nil, is consulted before every simulation and
	// updated after it: a second-level, typically persistent store
	// below the in-memory memo. See the Cache interface.
	Cache Cache
	// Backend, when non-nil, executes each memo-and-cache-missing run
	// out of process (e.g. on a numagpud sweep fabric) instead of
	// simulating inline. ErrBackendUnavailable falls back to a local
	// simulation; any other backend error fails the run exactly like a
	// local simulation panic. See the Backend interface.
	Backend Backend
	// Topology, when non-nil, replaces the symmetric crossbar of every
	// config whose socket count matches len(Topology.Sockets); configs
	// with other socket counts (monolithic references, cross-socket
	// scaling sweeps) keep the synthesized crossbar.
	Topology *topo.Topology
	// EngineShards, when > 1, runs every local simulation on a sharded
	// lockstep engine: one shard per socket (clamped to the socket
	// count) plus a fabric/home shard. Execution policy only — results
	// are byte-identical to the serial engine, so the setting is
	// excluded from run and cache keys and never sent to a Backend.
	EngineShards int
	// Obs, when enabled, attaches the internal/obs observability layer
	// to every local simulation. Execution policy like EngineShards:
	// results are byte-identical with observation on, so the spec is
	// excluded from run and cache keys and applied after key
	// computation. An observed run must actually simulate, so the
	// cache-read and Backend fast paths are skipped (results are still
	// written back to the cache — they are the same bytes).
	Obs arch.ObsSpec
	// ObsSink receives each observed run's collector after the
	// simulation finishes, before Run returns. Called once per unique
	// run key (memoized repeats share the first call), serialized by
	// the singleflight memo for a given key but concurrent across keys
	// under RunAll.
	ObsSink func(key string, spec workload.Spec, col *obs.Collector)
	// OnResult, when non-nil, is invoked exactly once per unique run
	// key the Runner completes — simulated, cache-served, or remote,
	// including keys a Plan resolves from the second-level cache — with
	// the run's content address (RunKey), its result, and how the
	// winning execution obtained it. Invocations are serialized; under
	// parallelism their order is completion order. Runs that panic
	// (including deterministic backend failures) fire no callback.
	// Per-caller attribution — "which of MY requests completed" —
	// belongs to Session, not here.
	OnResult func(key string, res core.Result, source RunSource)
}

// DefaultOptions is the reference harness size (minutes for the full
// suite on a laptop).
func DefaultOptions() Options {
	return Options{Divisor: 8, IterScale: 1}
}

// QuickOptions is a reduced size for benchmarks and CI.
func QuickOptions() Options {
	return Options{Divisor: 8, IterScale: 0.25}
}

func (o Options) normalized() Options {
	if o.Divisor < 1 {
		o.Divisor = 8
	}
	if o.IterScale <= 0 {
		o.IterScale = 1
	}
	if o.Workloads == nil {
		o.Workloads = workload.Table()
	}
	if o.Parallelism < 1 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) workloadOptions() workload.Options {
	return workload.Options{IterScale: o.IterScale, MaxCTAs: o.MaxCTAs}
}

// Result couples a printable table with the headline numbers of one
// experiment. It marshals to the {"table","summary"} JSON served by
// numagpud and printed by cmd/numagpu -json; encoding/json sorts the
// summary keys, so the encoding is deterministic.
type Result struct {
	Table   *stats.Table       `json:"table"`
	Summary map[string]float64 `json:"summary"`
}

// Runner executes and memoizes simulation runs for the harness.
//
// A Runner is safe for concurrent use: any number of goroutines may
// call Run (or RunAll) simultaneously. Concurrent callers asking for
// the same (config, workload) pair share a single simulation — the
// first caller runs it, the rest block on its completion — so each
// memo key is simulated exactly once per Runner lifetime.
type Runner struct {
	opts Options

	mu   sync.Mutex // guards memo (the map itself, not entry results)
	memo map[string]*memoEntry

	progressMu sync.Mutex // serializes Options.Progress writes
	onResultMu sync.Mutex // serializes Options.OnResult invocations

	counters // simulation / cache-hit / cache-miss accounting
}

// memoEntry is the singleflight slot for one (config, workload) key:
// the winning goroutine simulates inside once, everyone else blocks on
// once.Do and then reads res, which once guarantees is visible. A
// panicking simulation records its panic value so every caller of the
// key re-raises it instead of reading a zero Result off the spent Once.
// done flips (after res and source are set) when the entry completed
// successfully, so planners and late callers can distinguish a finished
// entry from one still mid-simulation.
type memoEntry struct {
	once     sync.Once
	res      core.Result
	source   RunSource
	done     atomic.Bool
	panicked any
}

// NewRunner builds a harness with the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts.normalized(), memo: make(map[string]*memoEntry)}
}

// Options reports the normalized options in use.
func (r *Runner) Options() Options { return r.opts }

// Base returns the locality-optimized software baseline the paper
// builds everything on: contiguous-block scheduling, first-touch
// placement, memory-side L2, static symmetric links.
func (r *Runner) Base(sockets int) arch.Config {
	c := arch.ScaledConfig(r.opts.Divisor)
	c.Sockets = sockets
	c.Sched = arch.SchedBlock
	c.Placement = arch.PlaceFirstTouch
	c.CacheMode = arch.CacheMemSideLocal
	c.LinkMode = arch.LinkStatic
	if t := r.opts.Topology; t != nil && len(t.Sockets) == sockets {
		c.Topology = t
	}
	return c
}

// Traditional returns the single-GPU policies naively extended to a
// multi-socket GPU (fine-grain CTA interleave + fine-grain memory
// interleave): the green bars of Figure 3.
func (r *Runner) Traditional(sockets int) arch.Config {
	c := r.Base(sockets)
	c.Sched = arch.SchedFineGrain
	c.Placement = arch.PlaceFineInterleave
	return c
}

// NUMAAware returns the paper's full proposal: dynamic asymmetric links
// plus NUMA-aware L1/L2 partitioning on the locality runtime.
func (r *Runner) NUMAAware(sockets int) arch.Config {
	c := r.Base(sockets)
	c.CacheMode = arch.CacheNUMAAware
	c.LinkMode = arch.LinkDynamic
	return c
}

// Monolithic returns the hypothetical factor× larger single GPU.
func (r *Runner) Monolithic(factor int) arch.Config {
	return r.Base(1).Monolithic(factor)
}

func cfgKey(c arch.Config) string {
	return fmt.Sprintf("s%d.sm%d.l2%d.dram%g.lane%g/%d.sched%d.place%d.cache%d.link%d.wt%v.noinv%v.st%d.ct%d.lt%d",
		c.Sockets, c.SMsPerSocket, c.L2Bytes, c.DRAMBandwidth, c.LaneBandwidth, c.LanesPerDir,
		c.Sched, c.Placement, c.CacheMode, c.LinkMode, c.L2WriteThrough, c.NoL2Invalidate,
		c.LinkSampleTime, c.CacheSampleTime, c.LaneSwitchTime)
}

// Run simulates spec under cfg (memoized). Concurrent calls for the
// same pair share one simulation; see the Runner doc comment.
// With Options.Cache set, a memo miss first consults the cache
// (counted in Stats) and only simulates — then writes back — on a
// cache miss, so warm results cost one Get instead of a simulation.
func (r *Runner) Run(cfg arch.Config, spec workload.Spec) core.Result {
	res, _ := r.runKeyed(r.RunKey(cfg, spec), cfg, spec)
	return res
}

// entry returns the singleflight slot for key, creating it on first
// reference.
func (r *Runner) entry(key string) *memoEntry {
	r.mu.Lock()
	e, ok := r.memo[key]
	if !ok {
		e = &memoEntry{}
		r.memo[key] = e
	}
	r.mu.Unlock()
	return e
}

// finish completes a memo entry: records how the winning execution
// obtained the result, publishes done, and fires Options.OnResult.
// Called exactly once per entry, from inside the winning once.Do body,
// after e.res is set.
func (r *Runner) finish(key string, e *memoEntry, src RunSource) {
	e.source = src
	e.done.Store(true)
	if r.opts.OnResult != nil {
		r.onResultMu.Lock()
		r.opts.OnResult(key, e.res, src)
		r.onResultMu.Unlock()
	}
}

// runKeyed executes one memoized run and reports how this particular
// call was satisfied: the winning caller sees the real source
// (simulated, cached, remote); a caller that found the key already
// complete sees SourceCached; a caller that blocked on another
// caller's in-flight execution sees SourceCoalesced.
func (r *Runner) runKeyed(key string, cfg arch.Config, spec workload.Spec) (core.Result, RunSource) {
	e := r.entry(key)
	wasDone := e.done.Load()
	won := false
	e.once.Do(func() {
		won = true
		defer func() {
			if p := recover(); p != nil {
				e.panicked = p
			}
		}()
		// An observed run must simulate locally: a cached or remote
		// result has no series or trace to flush. Keys ignore Obs, so
		// the result written back below is interchangeable with an
		// unobserved one (byte-identity is the obs contract).
		observed := r.opts.Obs.Enabled()
		if c := r.opts.Cache; c != nil && !observed {
			if res, ok := c.Get(key); ok {
				res.Name = spec.Name
				e.res = res
				r.cacheHits.Add(1)
				r.finish(key, e, SourceCached)
				return
			}
			r.cacheMisses.Add(1)
		}
		if b := r.opts.Backend; b != nil && !observed {
			res, err := b.Execute(key, cfg, spec, r.opts.workloadOptions())
			switch {
			case err == nil:
				res.Name = spec.Name
				e.res = res
				r.remoteRuns.Add(1)
				if c := r.opts.Cache; c != nil {
					c.Put(key, res)
				}
				r.finish(key, e, SourceRemote)
				if r.opts.Progress != nil {
					r.progressMu.Lock()
					fmt.Fprintf(r.opts.Progress, "ran %-28s %-60s %12d cycles (remote)\n", spec.Name, cfgKey(cfg), res.Cycles)
					r.progressMu.Unlock()
				}
				return
			case !errors.Is(err, ErrBackendUnavailable):
				// Failed like a simulation: memoized and re-raised for
				// every caller of this key, so a deterministic remote
				// failure (bad config, version skew) is not retried.
				panic(fmt.Errorf("exp: backend run of %s failed: %w", spec.Name, err))
			}
			// Backend unavailable: simulate locally below.
		}
		simCfg := cfg
		if r.opts.EngineShards > 1 {
			// Applied after RunKey/cfgKey: the shard count must never
			// split the memo or poison a shared cache.
			simCfg.EngineShards = r.opts.EngineShards
		}
		if observed {
			// Also post-key: observation must not change run identity.
			simCfg.Obs = r.opts.Obs
		}
		sys := core.MustSystem(simCfg)
		res := sys.Run(spec.Program(r.opts.workloadOptions()))
		res.Name = spec.Name
		e.res = res
		if observed && r.opts.ObsSink != nil {
			r.opts.ObsSink(key, spec, sys.Obs())
		}
		r.sims.Add(1)
		if c := r.opts.Cache; c != nil {
			c.Put(key, res)
		}
		r.finish(key, e, SourceSimulated)
		if r.opts.Progress != nil {
			r.progressMu.Lock()
			fmt.Fprintf(r.opts.Progress, "ran %-28s %-60s %12d cycles\n", spec.Name, cfgKey(cfg), res.Cycles)
			r.progressMu.Unlock()
		}
	})
	if e.panicked != nil {
		if err, ok := e.panicked.(error); ok && errors.Is(err, ErrDeadlineExceeded) {
			// A deadline cancellation is tied to the submitting job, not
			// to the run: evict the spent memo entry so a later job can
			// retry the key instead of inheriting the cancellation.
			r.mu.Lock()
			if r.memo[key] == e {
				delete(r.memo, key)
			}
			r.mu.Unlock()
		}
		panic(e.panicked)
	}
	switch {
	case won:
		return e.res, e.source
	case wasDone:
		return e.res, SourceCached
	default:
		return e.res, SourceCoalesced
	}
}

// RunRequest names one (config, workload) simulation of a sweep.
type RunRequest struct {
	Cfg  arch.Config
	Spec workload.Spec
}

// RunAll executes every requested simulation, at most
// Options.Parallelism at a time, and returns the results in request
// order: out[i] is the result of reqs[i]. Duplicate requests (and
// requests whose key is already memoized) cost nothing extra — the
// singleflight memo shares the one underlying simulation. Because each
// simulation is deterministic and owns its engine, the returned slice
// is identical to what a sequential loop over Run would produce. If
// any simulation panics, RunAll finishes draining the sweep and then
// re-raises one of the recorded panic values (the first to complete,
// not necessarily the first in request order) on the caller's
// goroutine.
func (r *Runner) RunAll(reqs []RunRequest) []core.Result {
	return runPool(r.opts.Parallelism, len(reqs), func(i int) core.Result {
		return r.Run(reqs[i].Cfg, reqs[i].Spec)
	})
}

// runPool executes n indexed tasks on at most par workers, preserving
// index order in the returned slice. If any task panics, the pool
// finishes draining and re-raises one recorded panic value (the first
// to complete, not necessarily the first by index) on the caller's
// goroutine. Shared by Runner.RunAll and Session.RunAll.
func runPool(par, n int, run func(i int) core.Result) []core.Result {
	out := make([]core.Result, n)
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := range out {
			out[i] = run(i)
		}
		return out
	}
	var (
		panicOnce sync.Once
		panicVal  any
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if p := recover(); p != nil {
							panicOnce.Do(func() { panicVal = p })
						}
					}()
					out[i] = run(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// evaluated filters the configured workload set to the non-grey 32.
func (r *Runner) evaluated() []workload.Spec {
	var out []workload.Spec
	for _, s := range r.opts.Workloads {
		if !s.Grey {
			out = append(out, s)
		}
	}
	return out
}
