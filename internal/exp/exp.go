// Package exp is the experiment harness: one entry point per table and
// figure of Milic et al. (MICRO 2017), each returning a rendered text
// table plus a machine-readable summary used by the benchmark suite and
// EXPERIMENTS.md. Runs are memoized so shared baselines (e.g. the
// single-GPU reference) are simulated once per harness.
package exp

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options sizes the harness.
type Options struct {
	// Divisor scales per-socket architecture resources relative to the
	// paper machine (see arch.ScaledConfig). Default 8.
	Divisor int
	// IterScale scales workload iteration counts. Default 1.0.
	IterScale float64
	// MaxCTAs caps grid sizes (0 = uncapped).
	MaxCTAs int
	// Workloads overrides the evaluated set (default: workload.Table()).
	Workloads []workload.Spec
	// Progress, when non-nil, receives one line per simulation run.
	Progress io.Writer
}

// DefaultOptions is the reference harness size (minutes for the full
// suite on a laptop).
func DefaultOptions() Options {
	return Options{Divisor: 8, IterScale: 1}
}

// QuickOptions is a reduced size for benchmarks and CI.
func QuickOptions() Options {
	return Options{Divisor: 8, IterScale: 0.25}
}

func (o Options) normalized() Options {
	if o.Divisor < 1 {
		o.Divisor = 8
	}
	if o.IterScale <= 0 {
		o.IterScale = 1
	}
	if o.Workloads == nil {
		o.Workloads = workload.Table()
	}
	return o
}

func (o Options) workloadOptions() workload.Options {
	return workload.Options{IterScale: o.IterScale, MaxCTAs: o.MaxCTAs}
}

// Result couples a printable table with the headline numbers of one
// experiment.
type Result struct {
	Table   *stats.Table
	Summary map[string]float64
}

// Runner executes and memoizes simulation runs for the harness.
type Runner struct {
	opts Options
	memo map[string]core.Result
}

// NewRunner builds a harness with the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts.normalized(), memo: make(map[string]core.Result)}
}

// Options reports the normalized options in use.
func (r *Runner) Options() Options { return r.opts }

// Base returns the locality-optimized software baseline the paper
// builds everything on: contiguous-block scheduling, first-touch
// placement, memory-side L2, static symmetric links.
func (r *Runner) Base(sockets int) arch.Config {
	c := arch.ScaledConfig(r.opts.Divisor)
	c.Sockets = sockets
	c.Sched = arch.SchedBlock
	c.Placement = arch.PlaceFirstTouch
	c.CacheMode = arch.CacheMemSideLocal
	c.LinkMode = arch.LinkStatic
	return c
}

// Traditional returns the single-GPU policies naively extended to a
// multi-socket GPU (fine-grain CTA interleave + fine-grain memory
// interleave): the green bars of Figure 3.
func (r *Runner) Traditional(sockets int) arch.Config {
	c := r.Base(sockets)
	c.Sched = arch.SchedFineGrain
	c.Placement = arch.PlaceFineInterleave
	return c
}

// NUMAAware returns the paper's full proposal: dynamic asymmetric links
// plus NUMA-aware L1/L2 partitioning on the locality runtime.
func (r *Runner) NUMAAware(sockets int) arch.Config {
	c := r.Base(sockets)
	c.CacheMode = arch.CacheNUMAAware
	c.LinkMode = arch.LinkDynamic
	return c
}

// Monolithic returns the hypothetical factor× larger single GPU.
func (r *Runner) Monolithic(factor int) arch.Config {
	return r.Base(1).Monolithic(factor)
}

func cfgKey(c arch.Config) string {
	return fmt.Sprintf("s%d.sm%d.l2%d.dram%g.lane%g/%d.sched%d.place%d.cache%d.link%d.wt%v.noinv%v.st%d.ct%d.lt%d",
		c.Sockets, c.SMsPerSocket, c.L2Bytes, c.DRAMBandwidth, c.LaneBandwidth, c.LanesPerDir,
		c.Sched, c.Placement, c.CacheMode, c.LinkMode, c.L2WriteThrough, c.NoL2Invalidate,
		c.LinkSampleTime, c.CacheSampleTime, c.LaneSwitchTime)
}

// Run simulates spec under cfg (memoized).
func (r *Runner) Run(cfg arch.Config, spec workload.Spec) core.Result {
	key := cfgKey(cfg) + "|" + spec.Name
	if res, ok := r.memo[key]; ok {
		return res
	}
	sys := core.MustSystem(cfg)
	res := sys.Run(spec.Program(r.opts.workloadOptions()))
	res.Name = spec.Name
	r.memo[key] = res
	if r.opts.Progress != nil {
		fmt.Fprintf(r.opts.Progress, "ran %-28s %-60s %12d cycles\n", spec.Name, cfgKey(cfg), res.Cycles)
	}
	return res
}

// Single returns the single-GPU reference run for spec (memoized).
func (r *Runner) Single(spec workload.Spec) core.Result {
	return r.Run(r.Base(1), spec)
}

// evaluated filters the configured workload set to the non-grey 32.
func (r *Runner) evaluated() []workload.Spec {
	var out []workload.Spec
	for _, s := range r.opts.Workloads {
		if !s.Grey {
			out = append(out, s)
		}
	}
	return out
}
