package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestObsOffByteIdentical reruns every registered experiment with an
// ObsSpec that is populated (non-default period and capacities) but
// disabled — Series and Trace both false — and diffs the output
// byte-for-byte against the golden masters. This is the off-by-default
// half of the observability contract: with the probes compiled in and a
// spec present, nothing may change until sampling is switched on.
func TestObsOffByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("obs-off golden masters simulate the full -quick suite; skipped in -short mode")
	}
	o := QuickOptions()
	o.Obs = arch.ObsSpec{SamplePeriod: 250, MaxSamples: 64, MaxTraceEvents: 64}
	o.ObsSink = func(string, workload.Spec, *obs.Collector) {
		t.Error("ObsSink fired with sampling disabled")
	}
	runner := NewRunner(o)
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			got := RenderGolden(e.Run(runner))
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("missing golden fixture (regenerate with TestGoldenMasters -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s output diverged with a disabled ObsSpec present (%d bytes got, %d want).\n"+
					"Observation must be off by default; do NOT regenerate fixtures for this.\n"+
					"--- got ---\n%s\n--- want ---\n%s",
					e.Name, len(got), len(want), firstDiffWindow(got, want), firstDiffWindow(want, got))
			}
		})
	}
}

// TestObsOnByteIdentical is the enforcement test behind the Obs
// cache-key exemption: every registered experiment reruns with series
// sampling AND tracing enabled and must still match the golden masters
// byte-for-byte — observation tickers fire throughout the run, yet the
// simulation's own event stream is untouched. A second pass reruns a
// subset on the sharded engine (EngineShards 4), covering the
// obs-ticker × lockstep-shard interaction.
//
// Never run with -update: the fixtures are owned by TestGoldenMasters.
func TestObsOnByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("obs-on golden masters simulate the full -quick suite; skipped in -short mode")
	}
	var sampled, traced atomic.Int64
	o := QuickOptions()
	o.Obs = arch.ObsSpec{Series: true, Trace: true}
	o.ObsSink = func(key string, spec workload.Spec, col *obs.Collector) {
		for _, s := range col.Series() {
			sampled.Add(int64(s.Len()))
		}
		if tr := col.Trace(); tr != nil {
			traced.Add(int64(tr.Len()))
		}
	}
	diff := func(t *testing.T, runner *Runner, e Experiment, mode string) {
		got := RenderGolden(e.Run(runner))
		want, err := os.ReadFile(goldenPath(e.Name))
		if err != nil {
			t.Fatalf("missing golden fixture (regenerate with TestGoldenMasters -update): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s %s output diverged with sampling on (%d bytes got, %d want).\n"+
				"Observation must be byte-inert; do NOT regenerate fixtures for this.\n"+
				"--- got ---\n%s\n--- want ---\n%s",
				e.Name, mode, len(got), len(want), firstDiffWindow(got, want), firstDiffWindow(want, got))
		}
	}

	runner := NewRunner(o)
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) { diff(t, runner, e, "serial") })
	}
	if sampled.Load() == 0 || traced.Load() == 0 {
		t.Fatalf("sampling on but collectors stayed empty (%d samples, %d trace events): the test proved nothing",
			sampled.Load(), traced.Load())
	}

	// Sharded pass: fig3 exercises socket scaling, fig5 the link
	// profiler (the other sampling ticker in the system).
	os2 := o
	os2.EngineShards = 4
	sharded := NewRunner(os2)
	for _, name := range []string{"fig3", "fig5"} {
		e, ok := ExperimentByName(name)
		if !ok {
			t.Fatalf("unknown experiment %q", name)
		}
		t.Run(name+"-sharded", func(t *testing.T) { diff(t, sharded, e, "sharded") })
	}
}

// TestObsSeriesGolden pins the series CSV flush format — the surface
// scripts and the CI obs job consume — against a committed fixture for
// one small fig3-style run (the base preset on two sockets). Any change
// to series naming, sample cadence, retention, or CSV shape shows up
// here as a byte diff. Regenerate intentionally with:
//
//	go test ./internal/exp -run TestObsSeriesGolden -update
func TestObsSeriesGolden(t *testing.T) {
	o := tinyOptions()
	o.Obs = arch.ObsSpec{Series: true, SamplePeriod: 2500, MaxSamples: 32}
	var csv []byte
	o.ObsSink = func(key string, spec workload.Spec, col *obs.Collector) {
		var buf bytes.Buffer
		if err := col.WriteSeriesCSV(&buf); err != nil {
			t.Errorf("WriteSeriesCSV: %v", err)
		}
		csv = buf.Bytes()
	}
	r := NewRunner(o)
	r.Run(r.Base(2), r.opts.Workloads[0])
	if len(csv) == 0 {
		t.Fatal("no series flushed")
	}

	path := filepath.Join("testdata", "golden", "obs-series.csv.golden")
	if *update {
		if err := os.WriteFile(path, csv, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing series fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(csv, want) {
		t.Fatalf("series CSV diverged from fixture (%d bytes got, %d want).\n"+
			"If this change is intentional, regenerate with:\n"+
			"  go test ./internal/exp -run TestObsSeriesGolden -update\n"+
			"--- got ---\n%s\n--- want ---\n%s",
			len(csv), len(want), firstDiffWindow(csv, want), firstDiffWindow(want, csv))
	}
}
