package exp

import (
	"bytes"
	"os"
	"testing"
)

// TestGoldenMastersSharded reruns every registered experiment with the
// simulations split across four engine shards and diffs the rendered
// output byte-for-byte against the same fixtures TestGoldenMasters
// checks. The parallel engine's whole contract is that sharding is
// invisible — not statistically close, identical — and this is the
// tier that holds it to that across the full experiment matrix: every
// cache mode, link mode, scheduler, placement policy, socket count,
// and topology the goldens cover.
//
// Never run with -update: the fixtures are owned by the serial tier.
// A failure here with a passing TestGoldenMasters means the sharded
// engine diverged; a failure in both means the model changed.
func TestGoldenMastersSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded golden masters simulate the full -quick suite; skipped in -short mode")
	}
	opts := QuickOptions()
	opts.EngineShards = 4
	runner := NewRunner(opts)
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			got := RenderGolden(e.Run(runner))
			want, err := os.ReadFile(goldenPath(e.Name))
			if err != nil {
				t.Fatalf("missing golden fixture (regenerate with TestGoldenMasters -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s sharded output diverged from the serial golden master (%d bytes got, %d want).\n"+
					"EngineShards must be invisible in results; do NOT regenerate fixtures for this.\n"+
					"--- got ---\n%s\n--- want ---\n%s",
					e.Name, len(got), len(want), firstDiffWindow(got, want), firstDiffWindow(want, got))
			}
		})
	}
}
