package exp

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// experimentFns enumerates every table/figure entry point via the
// shared registry, so the determinism test cannot silently miss an
// experiment added later.
var experimentFns = Experiments()

func tinyOptions() Options {
	var subset []workload.Spec
	for _, name := range []string{"HPC-RSBench", "Rodinia-Hotspot", "Other-Stream-Triad", "Lonestar-SP"} {
		s, ok := workload.ByName(name)
		if !ok {
			panic("missing workload " + name)
		}
		subset = append(subset, s)
	}
	return Options{Divisor: 16, IterScale: 0.1, MaxCTAs: 64, Workloads: subset}
}

// TestParallelDeterminism renders every experiment with Parallelism 8
// and with Parallelism 1 and requires byte-identical tables and equal
// summaries: parallel execution must be unobservable in the output.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	seqOpts := tinyOptions()
	seqOpts.Parallelism = 1
	parOpts := tinyOptions()
	parOpts.Parallelism = 8
	seq := NewRunner(seqOpts)
	par := NewRunner(parOpts)
	for _, e := range experimentFns {
		want := e.Run(seq)
		got := e.Run(par)
		if ws, gs := want.Table.String(), got.Table.String(); ws != gs {
			t.Errorf("%s: parallel table differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", e.Name, ws, gs)
		}
		if wc, gc := want.Table.CSV(), got.Table.CSV(); wc != gc {
			t.Errorf("%s: parallel CSV differs from sequential", e.Name)
		}
		if len(want.Summary) != len(got.Summary) {
			t.Errorf("%s: summary key sets differ: %v vs %v", e.Name, want.Summary, got.Summary)
			continue
		}
		for k, wv := range want.Summary {
			if gv, ok := got.Summary[k]; !ok || gv != wv {
				t.Errorf("%s: summary[%q] = %v parallel vs %v sequential", e.Name, k, gv, wv)
			}
		}
	}
}

// TestRunAllOrderAndSharing checks that RunAll preserves request order
// and that duplicate requests resolve to the one memoized simulation.
func TestRunAllOrderAndSharing(t *testing.T) {
	opts := tinyOptions()
	opts.Parallelism = 8
	var progress lockedBuffer
	opts.Progress = &progress
	r := NewRunner(opts)
	specs := r.opts.Workloads
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs, RunRequest{r.Base(2), spec}, RunRequest{r.Base(2), spec})
	}
	res := r.RunAll(reqs)
	if len(res) != len(reqs) {
		t.Fatalf("RunAll returned %d results for %d requests", len(res), len(reqs))
	}
	for i, spec := range specs {
		if res[2*i].Name != spec.Name || res[2*i+1].Name != spec.Name {
			t.Fatalf("request order not preserved at %d: %q/%q want %q",
				i, res[2*i].Name, res[2*i+1].Name, spec.Name)
		}
		if res[2*i].Cycles != res[2*i+1].Cycles {
			t.Fatalf("duplicate requests for %q disagree", spec.Name)
		}
	}
	if sims := progress.lines(); sims != len(specs) {
		t.Fatalf("%d simulations for %d unique keys (duplicates must share)", sims, len(specs))
	}
}

// TestConcurrentRunSimulatesOnce hammers one memo key from many
// goroutines calling Run directly (not via RunAll) and requires exactly
// one simulation: the singleflight guarantee documented on Runner.
// go test -race covers the memo and Progress guards.
func TestConcurrentRunSimulatesOnce(t *testing.T) {
	opts := tinyOptions()
	var progress lockedBuffer
	opts.Progress = &progress
	r := NewRunner(opts)
	spec := r.opts.Workloads[0]
	const goroutines = 16
	results := make([]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = r.Run(r.Base(2), spec).Cycles
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw %d cycles, goroutine 0 saw %d", g, results[g], results[0])
		}
	}
	if sims := progress.lines(); sims != 1 {
		t.Fatalf("%d simulations for one key under concurrent Run, want 1", sims)
	}
	r.mu.Lock()
	entries := len(r.memo)
	r.mu.Unlock()
	if entries != 1 {
		t.Fatalf("memo entries %d, want 1", entries)
	}
}

// TestRunPanicPropagates pins the failure contract: a simulation that
// panics (here an invalid config rejected by core.MustSystem) re-raises
// the panic for the first caller AND for every later caller of the same
// memoized key, rather than leaving a silent zero Result behind the
// spent sync.Once. RunAll must surface it on the caller's goroutine.
func TestRunPanicPropagates(t *testing.T) {
	opts := tinyOptions()
	opts.Parallelism = 4
	r := NewRunner(opts)
	spec := r.opts.Workloads[0]
	bad := r.Base(1)
	bad.Sockets = 0
	mustPanic := func(step string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic from invalid config", step)
			}
		}()
		f()
	}
	mustPanic("first Run", func() { r.Run(bad, spec) })
	mustPanic("second Run (memoized key)", func() { r.Run(bad, spec) })
	mustPanic("RunAll", func() {
		r.RunAll([]RunRequest{{r.Base(2), spec}, {bad, spec}, {r.Base(2), spec}})
	})
}

// lockedBuffer lets the test read the progress stream while runner
// goroutines may still hold it; the Runner serializes its own writes,
// but lines() can race a late writer without the lock.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) lines() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.buf.String()
	if s == "" {
		return 0
	}
	return strings.Count(s, "\n")
}
