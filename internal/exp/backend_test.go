package exp

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// fakeBackend is a controllable Backend: "sim" executes the run
// in-process (a perfect remote), "unavailable" reports an empty fleet,
// and "fail" reports a hard error.
type fakeBackend struct {
	mode string

	mu    sync.Mutex
	calls []string
}

func (b *fakeBackend) Execute(key string, cfg arch.Config, spec workload.Spec, o workload.Options) (core.Result, error) {
	b.mu.Lock()
	b.calls = append(b.calls, key)
	b.mu.Unlock()
	switch b.mode {
	case "sim":
		res := core.MustSystem(cfg).Run(spec.Program(o))
		res.Name = spec.Name
		return res, nil
	case "unavailable":
		return core.Result{}, fmt.Errorf("fleet empty: %w", ErrBackendUnavailable)
	case "deadline":
		return core.Result{}, fmt.Errorf("shard cancelled: %w", ErrDeadlineExceeded)
	default:
		return core.Result{}, errors.New("backend exploded")
	}
}

func (b *fakeBackend) callCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.calls)
}

// TestBackendExecutesMemoMisses pins the dispatch contract: a memo miss
// goes to the Backend (never the local simulator), a repeat of the same
// key stays in the memo, and the run counters attribute the work to
// RemoteRuns.
func TestBackendExecutesMemoMisses(t *testing.T) {
	b := &fakeBackend{mode: "sim"}
	r := NewRemoteRunner(tinyOptions(), b)
	spec := r.opts.Workloads[0]
	res := r.Run(r.Base(2), spec)
	if res.Cycles == 0 || res.Name != spec.Name {
		t.Fatalf("backend result not adopted: %+v", res)
	}
	if again := r.Run(r.Base(2), spec); again.Cycles != res.Cycles {
		t.Fatalf("memoized repeat differs: %d vs %d cycles", again.Cycles, res.Cycles)
	}
	if n := b.callCount(); n != 1 {
		t.Fatalf("backend called %d times for one unique key, want 1", n)
	}
	if st := r.Stats(); st.RemoteRuns != 1 || st.Simulations != 0 {
		t.Fatalf("stats = %+v, want 1 remote run and 0 local simulations", st)
	}
}

// TestBackendUnavailableFallsBackLocally: an empty fleet must degrade
// to a local simulation with an identical result, not an error.
func TestBackendUnavailableFallsBackLocally(t *testing.T) {
	local := NewRunner(tinyOptions())
	b := &fakeBackend{mode: "unavailable"}
	r := NewRemoteRunner(tinyOptions(), b)
	spec := r.opts.Workloads[0]
	want := local.Run(local.Base(2), spec)
	got := r.Run(r.Base(2), spec)
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
		t.Fatalf("fallback result differs: %+v vs %+v", got, want)
	}
	if n := b.callCount(); n != 1 {
		t.Fatalf("backend consulted %d times, want 1", n)
	}
	if st := r.Stats(); st.Simulations != 1 || st.RemoteRuns != 0 {
		t.Fatalf("stats = %+v, want the run counted as a local simulation", st)
	}
}

// TestBackendHardErrorPanicsOnce: a non-unavailable backend error fails
// the run like a local simulation panic — raised for the first caller,
// memoized, and re-raised for later callers without retrying.
func TestBackendHardErrorPanicsOnce(t *testing.T) {
	b := &fakeBackend{mode: "fail"}
	r := NewRemoteRunner(tinyOptions(), b)
	spec := r.opts.Workloads[0]
	mustPanic := func(step string) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic from backend failure", step)
			}
		}()
		r.Run(r.Base(2), spec)
	}
	mustPanic("first call")
	mustPanic("memoized repeat")
	if n := b.callCount(); n != 1 {
		t.Fatalf("failed key retried: %d backend calls, want 1", n)
	}
}

// TestBackendDeadlineErrorNotMemoized: deadline cancellation is
// transient — it fails the current caller but, unlike a hard backend
// error, must NOT poison the memo: resubmitting the same key after the
// deadline storm retries the backend and succeeds.
func TestBackendDeadlineErrorNotMemoized(t *testing.T) {
	b := &fakeBackend{mode: "deadline"}
	r := NewRemoteRunner(tinyOptions(), b)
	spec := r.opts.Workloads[0]
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("deadline-cancelled run did not fail")
			}
			err, ok := p.(error)
			if !ok || !errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("panic payload = %v, want ErrDeadlineExceeded", p)
			}
		}()
		r.Run(r.Base(2), spec)
	}()

	// The same key retried after the backend recovers must re-consult it
	// and succeed — contrast TestBackendHardErrorPanicsOnce, where the
	// second call never reaches the backend.
	b.mode = "sim"
	res := r.Run(r.Base(2), spec)
	if res.Cycles == 0 {
		t.Fatalf("retried run after deadline cancel: %+v", res)
	}
	if n := b.callCount(); n != 2 {
		t.Fatalf("backend called %d times, want 2 (deadline error not memoized)", n)
	}
}

// memCache is a minimal in-memory exp.Cache.
type memCache struct {
	mu sync.Mutex
	m  map[string]core.Result
}

func (c *memCache) Get(key string) (core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.m[key]
	return res, ok
}

func (c *memCache) Put(key string, res core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = res
}

// TestBackendWritesThroughCache: a backend-executed result must land in
// Options.Cache exactly like a local simulation, so a coordinator's
// disk cache stays the source of truth for worker-produced results.
func TestBackendWritesThroughCache(t *testing.T) {
	cache := &memCache{m: make(map[string]core.Result)}
	opts := tinyOptions()
	opts.Cache = cache
	b := &fakeBackend{mode: "sim"}
	r := NewRemoteRunner(opts, b)
	spec := r.opts.Workloads[0]
	want := r.Run(r.Base(2), spec)
	if len(cache.m) != 1 {
		t.Fatalf("cache has %d entries after a remote run, want 1", len(cache.m))
	}

	// A fresh runner over the same cache serves the key without
	// touching its backend.
	b2 := &fakeBackend{mode: "fail"} // would panic if consulted
	r2 := NewRemoteRunner(opts, b2)
	got := r2.Run(r2.Base(2), spec)
	if got.Cycles != want.Cycles {
		t.Fatalf("cache replay differs: %d vs %d cycles", got.Cycles, want.Cycles)
	}
	if b2.callCount() != 0 {
		t.Fatal("cache hit consulted the backend")
	}
	if st := r2.Stats(); st.CacheHits != 1 || st.RemoteRuns != 0 || st.Simulations != 0 {
		t.Fatalf("warm stats = %+v, want a pure cache hit", st)
	}
}

// TestRemoteRunnerExperimentByteIdentical runs a full experiment once
// on a plain local Runner and once on a remote Runner whose backend
// simulates out-of-band, and requires byte-identical tables, CSV, and
// summaries: the remote submit surface must be unobservable in the
// output, including RunAll request ordering.
func TestRemoteRunnerExperimentByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	e, ok := ExperimentByName("fig3")
	if !ok {
		t.Fatal("fig3 missing from registry")
	}
	local := NewRunner(tinyOptions())
	b := &fakeBackend{mode: "sim"}
	opts := tinyOptions()
	opts.Parallelism = 8
	remote := NewRemoteRunner(opts, b)

	want := e.Run(local)
	got := e.Run(remote)
	if string(RenderGolden(got)) != string(RenderGolden(want)) {
		t.Fatalf("remote rendering differs from local:\n--- remote ---\n%s\n--- local ---\n%s",
			RenderGolden(got), RenderGolden(want))
	}
	if b.callCount() == 0 {
		t.Fatal("backend never consulted")
	}
	if st := remote.Stats(); st.Simulations != 0 || st.RemoteRuns == 0 {
		t.Fatalf("remote runner stats = %+v, want all runs remote", st)
	}
}
