package exp

import (
	"fmt"

	"repro/internal/stats"
)

// Table1 renders the simulation parameters (paper Table 1) from the
// configuration actually used by this harness, alongside the paper-
// scale values.
func Table1(r Harness) Result {
	paper := r.Base(4)
	// Undo the divisor to show the paper machine next to the harness
	// machine.
	t := stats.NewTable("Table 1: simulation parameters",
		"Parameter", "Paper value", "Harness value (1/"+fmt.Sprint(r.Options().Divisor)+" scale)")
	add := func(name, pv, hv string) { t.AddRow(name, pv, hv) }
	add("GPU sockets", "4", fmt.Sprint(paper.Sockets))
	add("SMs per socket", "64", fmt.Sprint(paper.SMsPerSocket))
	add("GPU frequency", "1GHz", "1GHz (1 cycle = 1ns)")
	add("Max warps per SM", "64", fmt.Sprint(paper.MaxWarpsPerSM))
	add("Warp scheduler", "Greedy then Round Robin", "Greedy then Round Robin")
	add("L1 cache", "128KB/SM, 128B lines, 4-way, WT, SW-coherent",
		fmt.Sprintf("%dKB/SM, 128B lines, %d-way, WT, SW-coherent", paper.L1Bytes>>10, paper.L1Assoc))
	add("L2 cache", "4MB/socket, 128B lines, 16-way, WB, mem-side",
		fmt.Sprintf("%dKB/socket, 128B lines, %d-way, WB", paper.L2Bytes>>10, paper.L2Assoc))
	add("GPU-GPU interconnect", "128GB/s per socket (64 each dir), 8 lanes x 8B, 128-cycle latency",
		fmt.Sprintf("%.0fGB/s per direction, %d lanes x %.1fGB/s, %d-cycle latency",
			paper.LinkDirBandwidth(), paper.LanesPerDir, paper.LaneBandwidth, paper.LinkLatency))
	add("DRAM bandwidth", "768GB/s per socket", fmt.Sprintf("%.0fGB/s per socket", paper.DRAMBandwidth))
	add("DRAM latency", "100ns", fmt.Sprintf("%dns", paper.DRAMLatency))
	return Result{Table: t, Summary: map[string]float64{
		"sockets":      float64(paper.Sockets),
		"sms_per_sock": float64(paper.SMsPerSocket),
		"dram_to_link": paper.DRAMBandwidth / paper.LinkDirBandwidth(),
	}}
}

// Table2 renders the workload inventory with the paper's time-weighted
// CTA counts and memory footprints (paper Table 2), plus the synthetic
// generator's simulation-scale grid.
func Table2(r Harness) Result {
	t := stats.NewTable("Table 2: workloads (paper metadata + simulation-scale grids)",
		"Workload", "Paper CTAs", "Paper MB", "Sim CTAs", "Warps/CTA", "Grey")
	var totalCTAs float64
	for _, s := range r.Options().Workloads {
		grey := ""
		if s.Grey {
			grey = "yes"
		}
		t.AddRowf(s.Name, s.PaperCTAs, s.PaperFootprintMB, s.CTAs, s.Warps, grey)
		totalCTAs += float64(s.PaperCTAs)
	}
	return Result{Table: t, Summary: map[string]float64{
		"workloads":       float64(len(r.Options().Workloads)),
		"mean_paper_ctas": totalCTAs / float64(len(r.Options().Workloads)),
	}}
}
