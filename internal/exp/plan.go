package exp

import "repro/internal/workload"

// RunSource says how one completed run was obtained, from the
// perspective of the caller that asked for it. It rides the typed
// event stream of the numagpud service (run_done events) and the
// Options.OnResult / Session callbacks.
type RunSource string

const (
	// SourceSimulated: the run executed the local simulator.
	SourceSimulated RunSource = "simulated"
	// SourceCached: the run was resolved without new work — from the
	// second-level cache, or from a memo entry another caller had
	// already completed.
	SourceCached RunSource = "cached"
	// SourceRemote: the run executed on Options.Backend (e.g. the
	// numagpud sweep fabric).
	SourceRemote RunSource = "remote"
	// SourceCoalesced: the caller blocked on — and shares the result
	// of — an execution another caller already had in flight.
	SourceCoalesced RunSource = "coalesced"
)

// SweepPlan partitions one sweep's requests by how much work each will
// actually need, resolved against the in-memory memo and the
// second-level cache at planning time:
//
//   - Cached: already complete (memoized, or present in Options.Cache —
//     those are pulled into the memo by Plan itself, so executing them
//     later costs nothing);
//   - Inflight: another caller's execution of the same key was mid-
//     flight at planning time; the sweep will ride it;
//   - Todo: genuinely new work — the only class that will reach the
//     backend or the local simulation pool.
//
// All three slices hold indices into the reqs slice given to
// Runner.Plan; requests sharing a RunKey share a class, and Keys[i] is
// reqs[i]'s content address. The partition is a snapshot: concurrent
// callers can complete Todo keys before the sweep executes them (they
// then resolve as cached/coalesced at run time).
type SweepPlan struct {
	Keys     []string
	Cached   []int
	Inflight []int
	Todo     []int
}

const (
	planCached = iota
	planInflight
	planTodo
)

// Plan resolves every request of a sweep against the memo and the
// second-level cache before anything is dispatched, so an overlapping
// sweep executes only its uncovered delta. Second-level cache hits are
// promoted into the memo here (completing their entries and firing
// Options.OnResult), and the partition is counted into Stats: unique
// Cached keys as DeltaHits, unique Inflight keys as CoalescedKeys.
// Plan does not execute anything — follow with RunAll (or
// Session.RunAll) over the same reqs.
//
// With Options.Obs enabled every key classifies as Todo and the cache
// is not consulted: an observed run must actually simulate.
func (r *Runner) Plan(reqs []RunRequest) SweepPlan {
	plan := SweepPlan{Keys: make([]string, len(reqs))}
	observed := r.opts.Obs.Enabled()
	class := make(map[string]int, len(reqs))
	for i, q := range reqs {
		key := r.RunKey(q.Cfg, q.Spec)
		plan.Keys[i] = key
		cls, seen := class[key]
		if !seen {
			cls = r.classify(key, q.Spec, observed)
			class[key] = cls
			switch cls {
			case planCached:
				r.deltaHits.Add(1)
			case planInflight:
				r.coalescedKeys.Add(1)
			}
		}
		switch cls {
		case planCached:
			plan.Cached = append(plan.Cached, i)
		case planInflight:
			plan.Inflight = append(plan.Inflight, i)
		default:
			plan.Todo = append(plan.Todo, i)
		}
	}
	return plan
}

// classify resolves one unique key at planning time, prefilling the
// memo from the second-level cache when possible.
func (r *Runner) classify(key string, spec workload.Spec, observed bool) int {
	if observed {
		return planTodo
	}
	r.mu.Lock()
	if e, ok := r.memo[key]; ok {
		done := e.done.Load()
		r.mu.Unlock()
		if done {
			return planCached
		}
		return planInflight
	}
	r.mu.Unlock()
	c := r.opts.Cache
	if c == nil {
		return planTodo
	}
	res, hit := c.Get(key)
	if !hit {
		// Not counted as a cache miss here: if the key stays cold the
		// executing run's own lookup counts exactly one miss.
		return planTodo
	}
	res.Name = spec.Name
	// Re-check under the lock — a concurrent Run may have created the
	// entry while we were reading the cache.
	r.mu.Lock()
	e, ok := r.memo[key]
	if ok {
		done := e.done.Load()
		r.mu.Unlock()
		if done {
			return planCached
		}
		return planInflight
	}
	e = &memoEntry{}
	r.memo[key] = e
	r.mu.Unlock()
	e.once.Do(func() {
		e.res = res
		r.cacheHits.Add(1)
		r.finish(key, e, SourceCached)
	})
	return planCached
}
