package exp

import "repro/internal/stats"

// Experiment names one harness entry point: a table or figure of the
// paper (or one of the repo's ablations beyond it). The registry is the
// single source of truth shared by cmd/numagpu, the numagpud service,
// and the determinism tests, so an experiment added here is
// automatically runnable everywhere.
type Experiment struct {
	Name string
	Desc string
	// Run takes a Harness so callers choose the attribution scope:
	// cmd/numagpu passes the *Runner directly, the numagpud service
	// passes a per-job Session (see exp.Session).
	Run func(Harness) Result
}

var registry = []Experiment{
	{"table1", "simulation parameters", Table1},
	{"table2", "workload inventory", Table2},
	{"fig2", "workloads filling larger GPUs", Figure2},
	{"fig3", "SW locality vs traditional policies", Figure3},
	{"fig5", "link utilization profile (HPGMG-UVM)", Figure5},
	{"fig6", "dynamic link adaptivity vs sample time", Figure6},
	{"fig8", "cache organizations", Figure8},
	{"fig9", "SW coherence overhead in L2", Figure9},
	{"fig10", "combined improvement", Figure10},
	{"fig11", "2/4/8-socket scalability", Figure11},
	{"switchtime", "lane turn time sensitivity (Sec 4.1)", SwitchTimeSensitivity},
	{"writepolicy", "write-back vs write-through L2 (Sec 5.2)", WritePolicy},
	{"power", "interconnect power (Sec 6)", Power},
	{"lanegran", "lane granularity ablation", LaneGranularity},
	{"tenancy", "small workloads on partitioned GPUs (Sec 6)", MultiTenancy},
	{"asymfabric", "policies on an asymmetric two-pair fabric", AsymFabric},
}

// Experiments lists every experiment in presentation order. The
// returned slice is a copy; callers may reorder it freely.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ExperimentByName looks an experiment up by its registry name.
func ExperimentByName(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// NamedResult is a Result labelled with its experiment name: the one
// JSON payload shape shared by cmd/numagpu -json, the numagpud result
// endpoint, and the service client's decoder.
type NamedResult struct {
	Experiment string             `json:"experiment"`
	Table      *stats.Table       `json:"table"`
	Summary    map[string]float64 `json:"summary"`
}

// Named labels res with the experiment's registry name.
func (e Experiment) Named(res Result) NamedResult {
	return NamedResult{Experiment: e.Name, Table: res.Table, Summary: res.Summary}
}
