package exp

import (
	"errors"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// Backend executes one simulation somewhere other than the calling
// process. When Options.Backend is set, the Runner consults it on every
// memo-and-cache miss instead of simulating inline: key is the run's
// content address (Runner.RunKey), and cfg/spec/opts are everything a
// remote executor needs to reproduce the simulation bit-for-bit.
//
// The contract mirrors the local path exactly:
//
//   - a nil error means res is the deterministic result of simulating
//     (cfg, spec) at opts — the Runner memoizes it, writes it through
//     Options.Cache, and callers cannot tell it from a local run;
//   - ErrBackendUnavailable means the backend currently has nowhere to
//     run (e.g. a sweep fabric with no registered workers); the Runner
//     falls back to simulating locally, preserving availability;
//   - any other error is treated like a failed simulation: the Runner
//     panics with it, the panic is memoized per key exactly as a local
//     simulation panic would be, and job-level recover paths (the
//     numagpud worker pool, cmd/numagpu's experiment loop) convert it
//     into a failure report.
//
// Implementations must be safe for concurrent use; RunAll issues up to
// Options.Parallelism Execute calls at a time. The HTTP implementation
// lives in internal/service (FabricClient and the coordinator's
// in-process dispatcher).
type Backend interface {
	Execute(key string, cfg arch.Config, spec workload.Spec, opts workload.Options) (core.Result, error)
}

// ErrBackendUnavailable signals that a Backend cannot currently place
// the run anywhere; the Runner responds by simulating locally instead
// of failing the run. Backends must wrap or return it verbatim
// (errors.Is is used to detect it).
var ErrBackendUnavailable = errors.New("exp: backend unavailable")

// ErrDeadlineExceeded signals that a Backend cancelled the run because
// its job-level deadline passed before the run was placed. Unlike other
// backend errors it is transient by construction — the same run
// resubmitted without a deadline (or with a later one) would succeed —
// so the Runner re-raises it to the caller but does NOT leave it
// memoized: a later Run of the same key starts fresh instead of
// replaying the stale cancellation.
var ErrDeadlineExceeded = errors.New("exp: deadline exceeded")

// NewRemoteRunner builds a Runner whose simulations execute through b,
// typically a service.FabricClient pointed at a numagpud coordinator.
// Everything else about the Runner is unchanged — the in-memory
// singleflight memo, Options.Cache layering, RunAll's worker pool and
// request-order guarantee — so a remote harness produces byte-identical
// tables, summaries, and CSV to the local one, with the simulations
// farmed out over HTTP. Options.Parallelism bounds in-flight remote
// runs; point it at the cluster's total window (not the local CPU
// count) to keep a multi-worker fabric busy.
func NewRemoteRunner(opts Options, b Backend) *Runner {
	opts.Backend = b
	return NewRunner(opts)
}
