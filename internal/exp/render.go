package exp

import (
	"bytes"
	"fmt"
	"sort"
)

// RenderGolden serializes one experiment result in the canonical
// golden-master format committed under internal/exp/testdata/golden:
// the rendered text table, the sorted summary key=value lines at %.9g
// precision, and the CSV rendering, in one deterministic byte stream.
// TestGoldenMasters diffs this rendering against the fixtures, and
// `numagpu -golden` prints it, which is how the CI cluster smoke job
// asserts that a sweep executed on remote workers is byte-identical to
// the committed fixture.
func RenderGolden(res Result) []byte {
	var b bytes.Buffer
	b.WriteString(res.Table.String())
	b.WriteString("\nsummary:\n")
	keys := make([]string, 0, len(res.Summary))
	for k := range res.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%.9g\n", k, res.Summary[k])
	}
	b.WriteString("-- csv --\n")
	b.WriteString(res.Table.CSV())
	return b.Bytes()
}
