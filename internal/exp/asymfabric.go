package exp

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// AsymPairsTopology is the asymmetric-fabric reference machine the
// paper's symmetric crossbar could not express: four sockets arranged
// as two tightly-coupled pairs (0-1 and 2-3, double-width short links,
// NVLink-clique style) joined by a single thin bridge (1-2, half the
// lanes, 2× the wire latency, one switch traversal per crossing).
// Cross-pair traffic is multi-hop — socket 0 reaches socket 3 over
// three physical links — so placement and scheduling policies face real
// non-uniform remote costs. Link parameters derive from c so the
// machine scales with the harness divisor exactly like the crossbar.
func AsymPairsTopology(c arch.Config) *topo.Topology {
	fat := 2 * c.LanesPerDir
	fatLat := c.LinkLatency / 2
	thin := c.LanesPerDir / 2
	if thin < 1 {
		thin = 1
	}
	pair := func(a, b int) topo.LinkSpec {
		return topo.LinkSpec{
			A: a, B: b,
			LanesAB: fat, LanesBA: fat,
			LaneBandwidth: c.LaneBandwidth,
			LatencyAB:     fatLat, LatencyBA: fatLat,
		}
	}
	return &topo.Topology{
		Sockets: make([]topo.SocketSpec, 4),
		Links: []topo.LinkSpec{
			pair(0, 1),
			pair(2, 3),
			{
				A: 1, B: 2,
				LanesAB: thin, LanesBA: thin,
				LaneBandwidth: c.LaneBandwidth,
				LatencyAB:     2 * c.LinkLatency, LatencyBA: 2 * c.LinkLatency,
				HopsAB: 1, HopsBA: 1,
			},
		},
	}
}

// AsymFabric is the experiment family the topology refactor unlocks:
// the three policy stacks of Figure 3/10 re-run on the two-pair
// asymmetric fabric, each reported as speedup over the locality
// baseline on the paper's symmetric crossbar. Columns near 1.0 mean
// the policy hides the thin bridge; Traditional's fine-grained
// interleaving cannot (75% of its accesses cross sockets, half of
// those over the bridge). Every other evaluated workload runs, keeping
// the golden suite's runtime bounded while spanning all categories.
func AsymFabric(r Harness) Result {
	all := r.evaluated()
	var specs []workload.Spec
	for i, s := range all {
		if i%2 == 0 {
			specs = append(specs, s)
		}
	}

	asym := AsymPairsTopology(arch.ScaledConfig(r.Options().Divisor))
	onAsym := func(c arch.Config) arch.Config {
		c.Topology = asym
		return c
	}
	symBase := r.Base(4)
	symBase.Topology = nil // the crossbar reference, even under -topology

	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs, RunRequest{symBase, spec})
		reqs = append(reqs, RunRequest{onAsym(r.Traditional(4)), spec})
		reqs = append(reqs, RunRequest{onAsym(r.Base(4)), spec})
		reqs = append(reqs, RunRequest{onAsym(r.NUMAAware(4)), spec})
	}
	res := r.RunAll(reqs)
	const stride = 4

	// Rows ordered by how much the NUMA-aware stack recovers, largest
	// first.
	type scored struct {
		idx  int
		gain float64
	}
	var sc []scored
	for i := range specs {
		base := res[stride*i]
		sc = append(sc, scored{i, res[stride*i+3].SpeedupOver(base)})
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].gain > sc[j].gain })

	t := stats.NewTable("Asymmetric fabric: two fat pairs + thin bridge, speedup over symmetric-crossbar locality baseline (4-socket)",
		"Workload", "Traditional", "Locality-Opt", "NUMA-aware")
	cols := []string{"traditional", "locality", "numa"}
	speeds := make(map[string][]float64)
	for _, s := range sc {
		base := res[stride*s.idx]
		row := []any{specs[s.idx].Name}
		for j, c := range cols {
			sp := res[stride*s.idx+1+j].SpeedupOver(base)
			speeds[c] = append(speeds[c], sp)
			row = append(row, sp)
		}
		t.AddRowf(row...)
	}
	sum := map[string]float64{
		"traditional_geomean": stats.GeoMean(speeds["traditional"]),
		"locality_geomean":    stats.GeoMean(speeds["locality"]),
		"numa_geomean":        stats.GeoMean(speeds["numa"]),
		"traditional_mean":    stats.Mean(speeds["traditional"]),
		"locality_mean":       stats.Mean(speeds["locality"]),
		"numa_mean":           stats.Mean(speeds["numa"]),
	}
	t.AddRowf("ArithMean", sum["traditional_mean"], sum["locality_mean"], sum["numa_mean"])
	t.AddRowf("GeoMean", sum["traditional_geomean"], sum["locality_geomean"], sum["numa_geomean"])
	return Result{Table: t, Summary: sum}
}
