package exp

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/topo"
)

// mapCache is an in-memory exp.Cache with call accounting.
type mapCache struct {
	mu         sync.Mutex
	m          map[string]core.Result
	gets, puts int
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string]core.Result)} }

func (c *mapCache) Get(key string) (core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	res, ok := c.m[key]
	return res, ok
}

func (c *mapCache) Put(key string, res core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = res
}

func cachedOptions(c Cache) Options {
	o := tinyOptions()
	o.Workloads = o.Workloads[:1]
	o.Cache = c
	return o
}

// TestCacheServesWarmRuns simulates a restart: a second Runner (fresh
// memo) sharing the same Cache must serve the identical result without
// simulating, and the counters must say so.
func TestCacheServesWarmRuns(t *testing.T) {
	cache := newMapCache()
	r1 := NewRunner(cachedOptions(cache))
	spec := r1.opts.Workloads[0]
	cold := r1.Run(r1.Base(2), spec)
	if st := r1.Stats(); st.Simulations != 1 || st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	if len(cache.m) != 1 || cache.puts != 1 {
		t.Fatalf("cache not written: %d entries, %d puts", len(cache.m), cache.puts)
	}

	r2 := NewRunner(cachedOptions(cache))
	warm := r2.Run(r2.Base(2), spec)
	if st := r2.Stats(); st.Simulations != 0 || st.CacheHits != 1 || st.CacheMisses != 0 {
		t.Fatalf("warm stats = %+v", st)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm result differs: %+v vs %+v", warm, cold)
	}
	if warm.Name != spec.Name {
		t.Fatalf("warm result lost its name: %q", warm.Name)
	}
}

// TestMemoShortCircuitsCache checks the layering: repeats within one
// Runner are memo hits and never reach the second-level cache.
func TestMemoShortCircuitsCache(t *testing.T) {
	cache := newMapCache()
	r := NewRunner(cachedOptions(cache))
	spec := r.opts.Workloads[0]
	r.Run(r.Base(2), spec)
	r.Run(r.Base(2), spec)
	r.Run(r.Base(2), spec)
	if cache.gets != 1 {
		t.Fatalf("memo hits leaked to the cache: %d gets, want 1", cache.gets)
	}
	if st := r.Stats(); st.Simulations != 1 {
		t.Fatalf("stats = %+v, want 1 simulation", st)
	}
}

// TestRunKeyEncodesScale pins the cache-safety property: run keys must
// differ whenever the simulation would differ — across configs AND
// across workload scaling options, which cfgKey alone does not see.
func TestRunKeyEncodesScale(t *testing.T) {
	base := tinyOptions()
	a := NewRunner(base)
	spec := a.opts.Workloads[0]

	scaled := base
	scaled.IterScale = base.IterScale * 2
	b := NewRunner(scaled)

	capped := base
	capped.MaxCTAs = 17
	c := NewRunner(capped)

	ka := a.RunKey(a.Base(2), spec)
	if kb := b.RunKey(b.Base(2), spec); kb == ka {
		t.Fatalf("IterScale not in run key: %q", ka)
	}
	if kc := c.RunKey(c.Base(2), spec); kc == ka {
		t.Fatalf("MaxCTAs not in run key: %q", ka)
	}
	if ka2 := a.RunKey(a.Base(2), spec); ka2 != ka {
		t.Fatalf("run key unstable: %q vs %q", ka, ka2)
	}
	if kd := a.RunKey(a.NUMAAware(2), spec); kd == ka {
		t.Fatal("config not in run key")
	}
}

// TestRunKeyCoversEveryConfigField perturbs each arch.Config field in
// turn and requires the run key to change: the persistent cache is
// only safe if no result-affecting parameter is outside the key. A new
// Config field that fails here must be added to cfgKey or machineKey —
// or, if it provably cannot affect results, listed in the execution
// policy exemptions below and covered by an equivalence test.
func TestRunKeyCoversEveryConfigField(t *testing.T) {
	// Execution policy fields change how the simulation runs, not what
	// it computes; keying them would needlessly split shared caches.
	// EngineShards: byte-identity is enforced by TestGoldenMastersSharded
	// and core's TestShardedRunMatchesSerial.
	// Obs: observation is read-only by construction; byte-identity with
	// sampling on is enforced by TestObsOnByteIdentical and the exemption
	// itself by TestRunKeyIgnoresObs.
	policy := map[string]bool{"EngineShards": true, "Obs": true}
	r := NewRunner(tinyOptions())
	spec := r.opts.Workloads[0]
	base := arch.PaperConfig()
	k0 := r.RunKey(base, spec)
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		if policy[rt.Field(i).Name] {
			continue
		}
		c := base
		f := reflect.ValueOf(&c).Elem().Field(i)
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(f.Int() + 1)
		case reflect.Float64:
			f.SetFloat(f.Float() + 1)
		case reflect.Bool:
			f.SetBool(!f.Bool())
		case reflect.Ptr:
			if rt.Field(i).Name != "Topology" {
				t.Fatalf("unhandled pointer Config field %s: extend this test", rt.Field(i).Name)
			}
			f.Set(reflect.ValueOf(topo.Crossbar(base.Sockets, base.LanesPerDir, base.LaneBandwidth, base.LinkLatency)))
		default:
			t.Fatalf("unhandled Config field kind %s (%s): extend this test", f.Kind(), rt.Field(i).Name)
		}
		if r.RunKey(c, spec) == k0 {
			t.Errorf("Config.%s is not encoded in RunKey; persistent cache would serve stale results", rt.Field(i).Name)
		}
	}
}

// TestDifferentScaleDoesNotShareCache runs the same (config, workload)
// pair at two iteration scales through one shared cache and requires
// two simulations: scale must partition the cache namespace.
func TestDifferentScaleDoesNotShareCache(t *testing.T) {
	cache := newMapCache()
	o1 := cachedOptions(cache)
	r1 := NewRunner(o1)
	spec := r1.opts.Workloads[0]
	r1.Run(r1.Base(2), spec)

	o2 := cachedOptions(cache)
	o2.IterScale = o1.IterScale * 2
	r2 := NewRunner(o2)
	r2.Run(r2.Base(2), spec)
	if st := r2.Stats(); st.CacheHits != 0 || st.Simulations != 1 {
		t.Fatalf("different IterScale must miss the cache: %+v", st)
	}
	if len(cache.m) != 2 {
		t.Fatalf("cache entries = %d, want 2", len(cache.m))
	}
}

// TestConcurrentCachedRuns hammers one warm key from many goroutines:
// the singleflight memo must collapse them to a single cache Get.
func TestConcurrentCachedRuns(t *testing.T) {
	cache := newMapCache()
	warmup := NewRunner(cachedOptions(cache))
	spec := warmup.opts.Workloads[0]
	warmup.Run(warmup.Base(2), spec)

	r := NewRunner(cachedOptions(cache))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Run(r.Base(2), spec)
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Simulations != 0 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want exactly one cache hit and no simulations", st)
	}
	if cache.gets != 2 { // one warmup miss + one warm hit
		t.Fatalf("cache gets = %d, want 2", cache.gets)
	}
}
