package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden-master fixtures instead of diffing
// against them:
//
//	go test ./internal/exp -run TestGoldenMasters -update
//
// Regenerate only when an intentional model change alters experiment
// output; the whole point of the fixtures is to catch unintentional
// changes (scheduler rewrites, refactors) byte-for-byte.
var update = flag.Bool("update", false, "rewrite golden-master fixtures under testdata/golden")

// goldenPath returns the fixture file for one experiment.
func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden")
}

// TestGoldenMasters regenerates every registered experiment at the
// -quick harness size (exp.QuickOptions: divisor 8, iterscale 0.25,
// the full 41-workload suite) and diffs the output byte-for-byte
// against the committed fixtures in testdata/golden. This is the
// regression net under the simulation core: any change to event
// ordering, timing, or policy behaviour anywhere below the harness
// shows up here as a byte diff.
//
// The suite shares one Runner, so the ~500 underlying simulations are
// memoized across experiments exactly as `numagpu -quick all` shares
// them. Skipped under -short (it is minutes of simulation); CI and the
// default `go test ./...` run it.
func TestGoldenMasters(t *testing.T) {
	if testing.Short() {
		t.Skip("golden masters simulate the full -quick suite; skipped in -short mode")
	}
	runner := NewRunner(QuickOptions())
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			got := RenderGolden(e.Run(runner))
			path := goldenPath(e.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s output diverged from golden master (%d bytes got, %d want).\n"+
					"If this change is intentional, regenerate with:\n"+
					"  go test ./internal/exp -run TestGoldenMasters -update\n"+
					"--- got ---\n%s\n--- want ---\n%s",
					e.Name, len(got), len(want), firstDiffWindow(got, want), firstDiffWindow(want, got))
			}
		})
	}
}

// firstDiffWindow returns a readable excerpt of a around the first byte
// where a and b differ, so golden failures point at the divergence
// instead of dumping kilobytes of table.
func firstDiffWindow(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
