package exp_test

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/workload"
)

// ExampleNewRunner builds a small harness over a single workload and
// runs it on the 2-socket locality-optimized baseline. Options scale
// the architecture (Divisor) and the workload (IterScale, MaxCTAs) so
// the example finishes in milliseconds.
func ExampleNewRunner() {
	spec, _ := workload.ByName("Other-Stream-Triad")
	r := exp.NewRunner(exp.Options{
		Divisor:   16,
		IterScale: 0.1,
		MaxCTAs:   32,
		Workloads: []workload.Spec{spec},
	})
	res := r.Run(r.Base(2), spec)
	fmt.Println(res.Name, res.Cycles > 0)
	// Output: Other-Stream-Triad true
}

// ExampleRunner_RunAll submits a sweep with a duplicate request: the
// singleflight memo shares one simulation between the duplicates, so
// three results come back from two simulations.
func ExampleRunner_RunAll() {
	spec, _ := workload.ByName("Other-Stream-Triad")
	r := exp.NewRunner(exp.Options{
		Divisor:   16,
		IterScale: 0.1,
		MaxCTAs:   32,
		Workloads: []workload.Spec{spec},
	})
	reqs := []exp.RunRequest{
		{Cfg: r.Base(2), Spec: spec},
		{Cfg: r.Base(2), Spec: spec}, // duplicate: shared, not re-simulated
		{Cfg: r.NUMAAware(2), Spec: spec},
	}
	results := r.RunAll(reqs)
	fmt.Println(len(results), "results from", r.Stats().Simulations, "simulations")
	// Output: 3 results from 2 simulations
}
