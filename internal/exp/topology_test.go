package exp

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/topo"
)

// TestExplicitCrossbarByteIdentity renders fig3 and fig8 twice — once
// on the default nil topology and once with the equivalent crossbar
// supplied explicitly as data — and requires byte-identical output:
// the topology-routed fabric reproduces the legacy event schedule
// exactly. (The 15 committed golden fixtures pin the nil-topology side
// against the pre-topology simulator.)
func TestExplicitCrossbarByteIdentity(t *testing.T) {
	legacy := quickRunner()
	c := arch.ScaledConfig(legacy.Options().Divisor)
	explicit := legacy.Options()
	explicit.Topology = topo.Crossbar(4, c.LanesPerDir, c.LaneBandwidth, c.LinkLatency)
	withTopo := NewRunner(explicit)

	if k := legacy.RunKey(legacy.Base(4), legacy.opts.Workloads[0]); k == withTopo.RunKey(withTopo.Base(4), withTopo.opts.Workloads[0]) {
		t.Fatal("explicit topology must partition the cache namespace even when results match")
	}

	for _, name := range []string{"fig3", "fig8"} {
		e, ok := ExperimentByName(name)
		if !ok {
			t.Fatalf("experiment %s missing", name)
		}
		a := RenderGolden(e.Run(legacy))
		b := RenderGolden(e.Run(withTopo))
		if !bytes.Equal(a, b) {
			t.Fatalf("%s diverges under an explicit crossbar topology:\n--- nil ---\n%s\n--- explicit ---\n%s",
				name, firstDiffWindow(a, b), firstDiffWindow(b, a))
		}
	}
}

// TestBaseAttachesMatchingTopology: Options.Topology applies only to
// configs whose socket count matches, so monolithic references and
// cross-socket sweeps keep the synthesized crossbar.
func TestBaseAttachesMatchingTopology(t *testing.T) {
	o := tinyOptions()
	o.Topology = topo.Crossbar(4, 8, 1, 128)
	r := NewRunner(o)
	if r.Base(4).Topology == nil {
		t.Fatal("4-socket config must carry the 4-socket topology")
	}
	if r.Base(2).Topology != nil {
		t.Fatal("2-socket config must not carry a 4-socket topology")
	}
	if r.Monolithic(4).Topology != nil {
		t.Fatal("monolithic config must clear the topology")
	}
	if err := r.Base(4).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAsymPairsTopologyValid pins the experiment family's reference
// fabric: valid, bridged, and genuinely multi-hop.
func TestAsymPairsTopologyValid(t *testing.T) {
	top := AsymPairsTopology(arch.ScaledConfig(8))
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := arch.ScaledConfig(8)
	cfg.Topology = top
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.Canonical() == AsymPairsTopology(arch.ScaledConfig(16)).Canonical() {
		t.Fatal("divisor-scaled fabrics must have distinct canonical encodings")
	}
}
