package exp

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// baselineSMs approximates "today's biggest GPU" of Figure 2 (the paper
// cites NVIDIA Pascal's 56 SMs).
const baselineSMs = 56

// Figure2 reports the percentage of workloads whose time-weighted
// average CTA count can fill GPUs 1–8× larger than today's (Figure 2).
// It is a pure data computation over the Table 2 metadata.
func Figure2(r Harness) Result {
	t := stats.NewTable("Figure 2: workloads able to fill future larger GPUs",
		"GPU size", "SMs", "Workloads filling", "Percent")
	sum := map[string]float64{}
	all := r.Options().Workloads
	for _, factor := range []int{1, 2, 4, 8} {
		sms := baselineSMs * factor
		n := 0
		for _, s := range all {
			if s.PaperCTAs >= sms {
				n++
			}
		}
		pct := 100 * float64(n) / float64(len(all))
		t.AddRowf(fmt.Sprintf("%dx", factor), sms, fmt.Sprintf("%d/%d", n, len(all)), pct)
		sum[fmt.Sprintf("fill_%dx_pct", factor)] = pct
	}
	return Result{Table: t, Summary: sum}
}

// Figure3 compares a 4-socket NUMA GPU under traditional single-GPU
// policies and under the locality-optimized runtime against a single
// GPU and the hypothetical 4× larger GPU (Figure 3). Rows are sorted by
// the locality-vs-theoretical gap, mirroring the paper's layout; the
// grey set is annotated.
func Figure3(r Harness) Result {
	specs := r.Options().Workloads
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs,
			RunRequest{r.Base(1), spec},
			RunRequest{r.Traditional(4), spec},
			RunRequest{r.Base(4), spec},
			RunRequest{r.Monolithic(4), spec})
	}
	res := r.RunAll(reqs)
	type row struct {
		name            string
		trad, loc, mono float64
	}
	var rows []row
	for i, spec := range specs {
		single := res[4*i]
		rows = append(rows, row{
			name: spec.Name,
			trad: res[4*i+1].SpeedupOver(single),
			loc:  res[4*i+2].SpeedupOver(single),
			mono: res[4*i+3].SpeedupOver(single),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].mono-rows[i].loc > rows[j].mono-rows[j].loc
	})
	t := stats.NewTable("Figure 3: 4-socket NUMA GPU relative to a single GPU",
		"Workload", "Traditional", "Locality-Opt", "4x larger GPU", ">=99% SW-only")
	var trads, locs, monos []float64
	greyCount := 0
	for _, w := range rows {
		mark := ""
		if w.loc >= 0.99*w.mono {
			mark = "grey"
			greyCount++
		}
		t.AddRowf(w.name, w.trad, w.loc, w.mono, mark)
		trads = append(trads, w.trad)
		locs = append(locs, w.loc)
		monos = append(monos, w.mono)
	}
	t.AddRowf("ArithMean", stats.Mean(trads), stats.Mean(locs), stats.Mean(monos), "")
	t.AddRowf("GeoMean", stats.GeoMean(trads), stats.GeoMean(locs), stats.GeoMean(monos), "")
	return Result{Table: t, Summary: map[string]float64{
		"traditional_geomean": stats.GeoMean(trads),
		"locality_geomean":    stats.GeoMean(locs),
		"mono4_geomean":       stats.GeoMean(monos),
		"grey_count":          float64(greyCount),
	}}
}

// Figure5 records the per-GPU link utilization profile of HPC-HPGMG-UVM
// on the locality-optimized 4-socket baseline (Figure 5): asymmetric
// saturation between directions and across GPU sockets, with kernel
// launches marked. The profiled run needs its own instrumented system,
// so it bypasses the Runner memo.
func Figure5(r Harness) Result {
	spec, ok := workload.ByName("HPC-HPGMG-UVM")
	if !ok {
		panic("exp: HPC-HPGMG-UVM missing from workload table")
	}
	cfg := r.Base(4)
	sys := core.MustSystem(cfg)
	window := 2000
	sys.EnableLinkProfile(window)
	res := sys.Run(spec.Program(r.Options().workloadOptions()))
	profiles, marks := sys.LinkProfiles()

	// One E/I column pair per physical link. On the synthesized
	// crossbar link i is socket i's port (the paper's per-GPU view);
	// an explicit topology labels columns by link name instead.
	cols := []string{"Window@cycle"}
	for i, p := range profiles {
		name := fmt.Sprintf("GPU%d", i)
		if cfg.Topology != nil {
			name = p.Label
		}
		cols = append(cols, name+" E", name+" I")
	}
	cols = append(cols, "kernel")
	t := stats.NewTable("Figure 5: link utilization profile, HPC-HPGMG-UVM (locality-optimized 4-socket)",
		cols...)
	n := len(profiles[0].Egress.Samples)
	mark := 0
	// Summaries: how asymmetric is each GPU's link use, and how
	// complementary are the sockets (the phenomenon Section 4 exploits).
	var asym []float64
	maxBuckets := 60
	stride := 1
	if n > maxBuckets {
		stride = n / maxBuckets
	}
	for i := 0; i < n; i++ {
		at := profiles[0].Egress.Samples[i].At
		km := ""
		for mark < len(marks) && marks[mark] <= at {
			km = "K"
			mark++
		}
		cells := []any{fmt.Sprintf("%d", at)}
		for g := range profiles {
			e := profiles[g].Egress.Samples[i].Value
			in := profiles[g].Ingress.Samples[i].Value
			cells = append(cells, e, in)
			if e+in > 0.2 {
				d := e - in
				if d < 0 {
					d = -d
				}
				asym = append(asym, d/maxF(e+in, 1e-9))
			}
		}
		cells = append(cells, km)
		if i%stride == 0 || km == "K" {
			t.AddRowf(cells...)
		}
	}
	return Result{Table: t, Summary: map[string]float64{
		"mean_direction_asymmetry": stats.Mean(asym),
		"windows":                  float64(n),
		"kernels":                  float64(len(marks)),
		"cycles":                   float64(res.Cycles),
	}}
}

// Figure6 evaluates dynamic link adaptivity against sample time, with
// the doubled-bandwidth upper bound in red (Figure 6). Baseline is the
// locality-optimized 4-socket GPU with static symmetric links.
func Figure6(r Harness) Result {
	sampleTimes := []int{1000, 5000, 20000}
	specs := r.evaluated()
	dblCfg := r.Base(4)
	dblCfg.LaneBandwidth *= 2
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs, RunRequest{r.Base(4), spec})
		for _, st := range sampleTimes {
			cfg := r.Base(4)
			cfg.LinkMode = arch.LinkDynamic
			cfg.LinkSampleTime = st
			reqs = append(reqs, RunRequest{cfg, spec})
		}
		reqs = append(reqs, RunRequest{dblCfg, spec})
	}
	res := r.RunAll(reqs)
	stride := len(sampleTimes) + 2 // base, one per sample time, 2x BW

	// Rows are ordered by the 2× bandwidth headroom, mirroring the
	// paper's most-to-least-link-bound layout.
	type scored struct {
		idx int
		bw2 float64
	}
	var sc []scored
	for i := range specs {
		base := res[stride*i]
		sc = append(sc, scored{i, res[stride*i+stride-1].SpeedupOver(base)})
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].bw2 > sc[j].bw2 })

	t := stats.NewTable("Figure 6: dynamic link adaptivity speedup over static links (4-socket)",
		"Workload", "Sample 1K", "Sample 5K", "Sample 20K", "2x Link BW")
	speeds := make(map[string][]float64)
	for _, s := range sc {
		base := res[stride*s.idx]
		row := []any{specs[s.idx].Name}
		for j, st := range sampleTimes {
			sp := res[stride*s.idx+1+j].SpeedupOver(base)
			key := fmt.Sprintf("sample_%d", st)
			speeds[key] = append(speeds[key], sp)
			row = append(row, sp)
		}
		speeds["bw2"] = append(speeds["bw2"], s.bw2)
		row = append(row, s.bw2)
		t.AddRowf(row...)
	}
	sum := map[string]float64{}
	means := []any{"GeoMean"}
	for _, st := range sampleTimes {
		k := fmt.Sprintf("sample_%d", st)
		g := stats.GeoMean(speeds[k])
		sum[k+"_geomean"] = g
		means = append(means, g)
	}
	sum["bw2_geomean"] = stats.GeoMean(speeds["bw2"])
	means = append(means, sum["bw2_geomean"])
	t.AddRowf(means...)
	return Result{Table: t, Summary: sum}
}

// SwitchTimeSensitivity reproduces the Section 4.1 sensitivity study:
// lane turn cost of 10, 100 and 500 cycles at the 5K sample time.
func SwitchTimeSensitivity(r Harness) Result {
	turns := []int{10, 100, 500}
	specs := r.evaluated()
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs, RunRequest{r.Base(4), spec})
		for _, sw := range turns {
			cfg := r.Base(4)
			cfg.LinkMode = arch.LinkDynamic
			cfg.LaneSwitchTime = sw
			reqs = append(reqs, RunRequest{cfg, spec})
		}
	}
	res := r.RunAll(reqs)
	stride := len(turns) + 1

	t := stats.NewTable("Section 4.1: lane switch time sensitivity (speedup over static links)",
		"Workload", "Turn 10cy", "Turn 100cy", "Turn 500cy")
	speeds := make(map[int][]float64)
	for i, spec := range specs {
		base := res[stride*i]
		row := []any{spec.Name}
		for j, sw := range turns {
			sp := res[stride*i+1+j].SpeedupOver(base)
			speeds[sw] = append(speeds[sw], sp)
			row = append(row, sp)
		}
		t.AddRowf(row...)
	}
	sum := map[string]float64{}
	means := []any{"GeoMean"}
	for _, sw := range turns {
		g := stats.GeoMean(speeds[sw])
		sum[fmt.Sprintf("turn_%d_geomean", sw)] = g
		means = append(means, g)
	}
	t.AddRowf(means...)
	return Result{Table: t, Summary: sum}
}

// Figure8 compares the four L2 organizations of Figure 7 on the
// 4-socket locality baseline: memory-side local-only (baseline), static
// 50/50 partitioning, shared coherent L1+L2, and NUMA-aware dynamic
// partitioning (Figure 8).
func Figure8(r Harness) Result {
	modes := []arch.CacheMode{arch.CacheStaticPartition, arch.CacheSharedCoherent, arch.CacheNUMAAware}
	specs := r.evaluated()
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs, RunRequest{r.Base(4), spec})
		for _, m := range modes {
			cfg := r.Base(4)
			cfg.CacheMode = m
			reqs = append(reqs, RunRequest{cfg, spec})
		}
	}
	res := r.RunAll(reqs)
	stride := len(modes) + 1
	numaOff := stride - 1 // NUMA-aware is the last mode

	// Rows ordered by the NUMA-aware gain, largest first.
	type scored struct {
		idx  int
		gain float64
	}
	var sc []scored
	for i := range specs {
		base := res[stride*i]
		sc = append(sc, scored{i, res[stride*i+numaOff].SpeedupOver(base)})
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].gain > sc[j].gain })

	t := stats.NewTable("Figure 8: cache organizations, speedup over memory-side local-only L2 (4-socket)",
		"Workload", "Static 50/50", "Shared Coherent", "NUMA-aware")
	speeds := make(map[arch.CacheMode][]float64)
	for _, s := range sc {
		base := res[stride*s.idx]
		row := []any{specs[s.idx].Name}
		for j, m := range modes {
			sp := res[stride*s.idx+1+j].SpeedupOver(base)
			speeds[m] = append(speeds[m], sp)
			row = append(row, sp)
		}
		t.AddRowf(row...)
	}
	sum := map[string]float64{
		"static_geomean": stats.GeoMean(speeds[arch.CacheStaticPartition]),
		"shared_geomean": stats.GeoMean(speeds[arch.CacheSharedCoherent]),
		"numa_geomean":   stats.GeoMean(speeds[arch.CacheNUMAAware]),
		"static_mean":    stats.Mean(speeds[arch.CacheStaticPartition]),
		"shared_mean":    stats.Mean(speeds[arch.CacheSharedCoherent]),
		"numa_mean":      stats.Mean(speeds[arch.CacheNUMAAware]),
	}
	t.AddRowf("ArithMean", sum["static_mean"], sum["shared_mean"], sum["numa_mean"])
	t.AddRowf("GeoMean", sum["static_geomean"], sum["shared_geomean"], sum["numa_geomean"])
	return Result{Table: t, Summary: sum}
}

// Figure9 measures the cost of extending software coherence into the
// L2: the NUMA-aware configuration against a hypothetical L2 that can
// ignore invalidation events (Figure 9; paper average ≈10%).
func Figure9(r Harness) Result {
	specs := r.evaluated()
	var reqs []RunRequest
	for _, spec := range specs {
		cfg := r.NUMAAware(4)
		hyp := cfg
		hyp.NoL2Invalidate = true
		reqs = append(reqs, RunRequest{cfg, spec}, RunRequest{hyp, spec})
	}
	res := r.RunAll(reqs)

	t := stats.NewTable("Figure 9: overhead of SW coherence invalidations in the L2 (4-socket NUMA-aware)",
		"Workload", "Slowdown vs no-invalidate L2")
	var overheads []float64
	for i, spec := range specs {
		real := res[2*i]
		ideal := res[2*i+1]
		ov := float64(real.Cycles) / float64(maxU64(ideal.Cycles, 1))
		overheads = append(overheads, ov)
		t.AddRowf(spec.Name, ov)
	}
	g := stats.GeoMean(overheads)
	t.AddRowf("GeoMean", g)
	return Result{Table: t, Summary: map[string]float64{
		"coherence_overhead_geomean": g,
		"coherence_overhead_pct":     (g - 1) * 100,
	}}
}

// WritePolicy reproduces the Section 5.2 sensitivity: write-back versus
// write-through coherent L2 (paper: WB wins by ≈9% from reduced
// inter-GPU write bandwidth).
func WritePolicy(r Harness) Result {
	specs := r.evaluated()
	var reqs []RunRequest
	for _, spec := range specs {
		wtCfg := r.NUMAAware(4)
		wtCfg.L2WriteThrough = true
		reqs = append(reqs, RunRequest{r.NUMAAware(4), spec}, RunRequest{wtCfg, spec})
	}
	res := r.RunAll(reqs)

	t := stats.NewTable("Section 5.2: write-back vs write-through coherent L2 (4-socket NUMA-aware)",
		"Workload", "WB speedup over WT", "WT link bytes / WB link bytes")
	var speeds, traffic []float64
	for i, spec := range specs {
		wb, wt := res[2*i], res[2*i+1]
		sp := wb.SpeedupOver(wt)
		speeds = append(speeds, sp)
		tr := float64(wt.LinkBytes) / maxF(float64(wb.LinkBytes), 1)
		traffic = append(traffic, tr)
		t.AddRowf(spec.Name, sp, tr)
	}
	g := stats.GeoMean(speeds)
	t.AddRowf("GeoMean", g, stats.GeoMean(traffic))
	return Result{Table: t, Summary: map[string]float64{
		"wb_over_wt_geomean": g,
		"wb_gain_pct":        (g - 1) * 100,
	}}
}

// Figure10 shows the combined effect of both mechanisms versus each in
// isolation, against the single GPU and the 4× larger GPU (Figure 10).
func Figure10(r Harness) Result {
	specs := r.evaluated()
	linkOnly := r.Base(4)
	linkOnly.LinkMode = arch.LinkDynamic
	cacheOnly := r.Base(4)
	cacheOnly.CacheMode = arch.CacheNUMAAware
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs,
			RunRequest{r.Base(1), spec},
			RunRequest{r.Base(4), spec},
			RunRequest{linkOnly, spec},
			RunRequest{cacheOnly, spec},
			RunRequest{r.NUMAAware(4), spec},
			RunRequest{r.Monolithic(4), spec})
	}
	res := r.RunAll(reqs)
	const stride = 6

	t := stats.NewTable("Figure 10: combined NUMA-aware GPU vs single GPU (4-socket)",
		"Workload", "SW baseline", "+Dynamic links", "+NUMA caches", "Combined", "4x larger GPU")
	agg := make(map[string][]float64)
	for i, spec := range specs {
		single := res[stride*i]
		vals := map[string]float64{
			"base":  res[stride*i+1].SpeedupOver(single),
			"link":  res[stride*i+2].SpeedupOver(single),
			"cache": res[stride*i+3].SpeedupOver(single),
			"comb":  res[stride*i+4].SpeedupOver(single),
			"mono":  res[stride*i+5].SpeedupOver(single),
		}
		for k, v := range vals {
			agg[k] = append(agg[k], v)
		}
		t.AddRowf(spec.Name, vals["base"], vals["link"], vals["cache"], vals["comb"], vals["mono"])
	}
	sum := map[string]float64{}
	for k, vs := range agg {
		sum[k+"_geomean"] = stats.GeoMean(vs)
		sum[k+"_mean"] = stats.Mean(vs)
	}
	sum["combined_over_baseline_pct"] = (sum["comb_geomean"]/sum["base_geomean"] - 1) * 100
	t.AddRowf("ArithMean", sum["base_mean"], sum["link_mean"], sum["cache_mean"], sum["comb_mean"], sum["mono_mean"])
	t.AddRowf("GeoMean", sum["base_geomean"], sum["link_geomean"], sum["cache_geomean"], sum["comb_geomean"], sum["mono_geomean"])
	return Result{Table: t, Summary: sum}
}

// Figure11 is the headline scalability result: the full NUMA-aware GPU
// at 2, 4 and 8 sockets against hypothetical 2×, 4× and 8× larger
// single GPUs, over all 41 workloads (Figure 11; paper: 1.5×/2.3×/3.2×
// at 89%/84%/76% efficiency).
func Figure11(r Harness) Result {
	sockets := []int{2, 4, 8}
	specs := r.Options().Workloads
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs, RunRequest{r.Base(1), spec})
		for _, n := range sockets {
			reqs = append(reqs, RunRequest{r.NUMAAware(n), spec})
		}
		for _, n := range sockets {
			reqs = append(reqs, RunRequest{r.Monolithic(n), spec})
		}
	}
	res := r.RunAll(reqs)
	stride := 1 + 2*len(sockets)

	t := stats.NewTable("Figure 11: NUMA-aware GPU scalability vs hypothetical larger single GPUs",
		"Workload", "2-socket", "4-socket", "8-socket", "2x GPU", "4x GPU", "8x GPU")
	numa := map[int][]float64{}
	mono := map[int][]float64{}
	for i, spec := range specs {
		single := res[stride*i]
		row := []any{spec.Name}
		for j, n := range sockets {
			sp := res[stride*i+1+j].SpeedupOver(single)
			numa[n] = append(numa[n], sp)
			row = append(row, sp)
		}
		for j, n := range sockets {
			sp := res[stride*i+1+len(sockets)+j].SpeedupOver(single)
			mono[n] = append(mono[n], sp)
			row = append(row, sp)
		}
		t.AddRowf(row...)
	}
	sum := map[string]float64{}
	gRow := []any{"GeoMean"}
	for _, n := range sockets {
		sum[fmt.Sprintf("numa_%d_geomean", n)] = stats.GeoMean(numa[n])
		gRow = append(gRow, stats.GeoMean(numa[n]))
	}
	for _, n := range sockets {
		sum[fmt.Sprintf("mono_%d_geomean", n)] = stats.GeoMean(mono[n])
		gRow = append(gRow, stats.GeoMean(mono[n]))
	}
	for _, n := range sockets {
		sum[fmt.Sprintf("efficiency_%d_pct", n)] =
			100 * sum[fmt.Sprintf("numa_%d_geomean", n)] / sum[fmt.Sprintf("mono_%d_geomean", n)]
	}
	t.AddRowf(gRow...)
	return Result{Table: t, Summary: sum}
}

// Power reproduces the Section 6 estimate: average interconnect power
// at 10pJ/b for the software baseline versus the full NUMA-aware GPU,
// reported at paper-scale link widths (utilization-preserving scaling
// by the architecture divisor).
func Power(r Harness) Result {
	specs := r.Options().Workloads
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs, RunRequest{r.Base(4), spec}, RunRequest{r.NUMAAware(4), spec})
	}
	res := r.RunAll(reqs)

	t := stats.NewTable("Section 6: interconnect power at 10pJ/b (4-socket, paper-scale watts)",
		"Workload", "Baseline W", "NUMA-aware W")
	var baseW, numaW []float64
	scale := float64(r.Options().Divisor)
	for i, spec := range specs {
		bw := res[2*i].InterconnectPower() * scale
		nw := res[2*i+1].InterconnectPower() * scale
		baseW = append(baseW, bw)
		numaW = append(numaW, nw)
		t.AddRowf(spec.Name, bw, nw)
	}
	sum := map[string]float64{
		"baseline_watts_geomean": stats.GeoMean(baseW),
		"numa_watts_geomean":     stats.GeoMean(numaW),
		"baseline_watts_max":     maxSlice(baseW),
		"numa_watts_max":         maxSlice(numaW),
	}
	t.AddRowf("GeoMean", sum["baseline_watts_geomean"], sum["numa_watts_geomean"])
	return Result{Table: t, Summary: sum}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func maxSlice(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// LaneGranularity is an ablation beyond the paper's studies (motivated
// by its Section 4 discussion): the same total link bandwidth built
// from 4 coarser lanes instead of 8, halving the balancer's
// reconfiguration resolution.
func LaneGranularity(r Harness) Result {
	specs := r.evaluated()
	fine8 := r.Base(4)
	fine8.LinkMode = arch.LinkDynamic
	coarse4 := fine8
	coarse4.LanesPerDir = 4
	coarse4.LaneBandwidth *= 2
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs,
			RunRequest{r.Base(4), spec},
			RunRequest{fine8, spec},
			RunRequest{coarse4, spec})
	}
	res := r.RunAll(reqs)

	t := stats.NewTable("Ablation: lane granularity under dynamic balancing (speedup over static links)",
		"Workload", "8 lanes x 1/8 BW", "4 lanes x 1/4 BW")
	fine := make([]float64, 0, 32)
	coarse := make([]float64, 0, 32)
	for i, spec := range specs {
		base := res[3*i]
		sp8 := res[3*i+1].SpeedupOver(base)
		sp4 := res[3*i+2].SpeedupOver(base)
		fine = append(fine, sp8)
		coarse = append(coarse, sp4)
		t.AddRowf(spec.Name, sp8, sp4)
	}
	sum := map[string]float64{
		"lanes8_geomean": stats.GeoMean(fine),
		"lanes4_geomean": stats.GeoMean(coarse),
	}
	t.AddRowf("GeoMean", sum["lanes8_geomean"], sum["lanes4_geomean"])
	return Result{Table: t, Summary: sum}
}

// MultiTenancy supports the Section 6 discussion: workloads that cannot
// fill a large NUMA GPU are better served by partitioning it along
// NUMA boundaries. For the small-grid workloads it compares the full
// 4-socket NUMA-aware GPU against a single dedicated socket (a 1/4
// partition), reporting how much of the big machine's performance one
// quarter of it already delivers.
func MultiTenancy(r Harness) Result {
	var specs []workload.Spec
	for _, spec := range r.Options().Workloads {
		// "Small": the paper's own Figure 2 threshold — grids that
		// cannot fill even today's single GPU at 2×.
		if spec.PaperCTAs < 2*baselineSMs {
			specs = append(specs, spec)
		}
	}
	var reqs []RunRequest
	for _, spec := range specs {
		reqs = append(reqs, RunRequest{r.Base(1), spec}, RunRequest{r.NUMAAware(4), spec})
	}
	res := r.RunAll(reqs)

	t := stats.NewTable("Section 6: small workloads on a partitioned vs whole NUMA GPU",
		"Workload", "Paper CTAs", "4-socket speedup vs 1 socket", "1/4 partition delivers")
	var fractions []float64
	for i, spec := range specs {
		sp := res[2*i+1].SpeedupOver(res[2*i])
		frac := 1 / sp
		fractions = append(fractions, frac)
		t.AddRowf(spec.Name, spec.PaperCTAs, sp, frac)
	}
	sum := map[string]float64{
		"partition_delivers_geomean": stats.GeoMean(fractions),
		"small_workloads":            float64(len(fractions)),
	}
	t.AddRowf("GeoMean", "", "", sum["partition_delivers_geomean"])
	return Result{Table: t, Summary: sum}
}
