package exp

import (
	"fmt"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// Cache is a pluggable second-level result store layered under the
// Runner's in-memory singleflight memo. On a memo miss the Runner asks
// the Cache before simulating; on a simulation it writes the result
// back. Implementations must be safe for concurrent use and may drop
// entries freely (the cache is an optimization, never a source of
// truth). The disk-backed implementation lives in internal/service.
//
// Keys are produced by Runner.RunKey and are stable across processes:
// they encode every architectural parameter, the workload name, and
// the workload scaling options, so a persisted result is only reused
// for a byte-identical simulation setup.
type Cache interface {
	// Get returns the cached result for key, if present.
	Get(key string) (core.Result, bool)
	// Put stores the result of a completed simulation under key.
	Put(key string, res core.Result)
}

// Stats counts what a Runner actually did, distinguishing real local
// simulations from results served by the second-level cache or executed
// by a remote Backend. Memo hits (repeats within one Runner lifetime)
// appear in no counter: they never leave the in-memory singleflight
// layer. The json tags make Stats part of the sweep-fabric wire format
// (workers report their counters to the coordinator every poll).
type Stats struct {
	// Simulations is the number of simulations executed locally by
	// this Runner.
	Simulations uint64 `json:"simulations"`
	// CacheHits counts runs served from Options.Cache without
	// simulating.
	CacheHits uint64 `json:"cache_hits"`
	// CacheMisses counts cache lookups that fell through to a
	// simulation or a backend run (only runs with a configured Cache
	// are counted).
	CacheMisses uint64 `json:"cache_misses"`
	// RemoteRuns counts runs executed by Options.Backend instead of
	// the local simulator.
	RemoteRuns uint64 `json:"remote_runs"`
	// DeltaHits counts unique sweep-plan keys Runner.Plan resolved
	// without new work (already memoized, or promoted from the
	// second-level cache at planning time): the measurable win of
	// delta-aware sweep coalescing.
	DeltaHits uint64 `json:"delta_hits"`
	// CoalescedKeys counts unique sweep-plan keys Runner.Plan found
	// already in flight — the plan's runs ride existing executions
	// instead of starting their own.
	CoalescedKeys uint64 `json:"coalesced_keys"`
}

// Add returns the fieldwise sum of two snapshots (used to aggregate a
// runner set or a worker fleet).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Simulations:   s.Simulations + o.Simulations,
		CacheHits:     s.CacheHits + o.CacheHits,
		CacheMisses:   s.CacheMisses + o.CacheMisses,
		RemoteRuns:    s.RemoteRuns + o.RemoteRuns,
		DeltaHits:     s.DeltaHits + o.DeltaHits,
		CoalescedKeys: s.CoalescedKeys + o.CoalescedKeys,
	}
}

// Stats reports a snapshot of the Runner's run counters. It is safe to
// call concurrently with Run/RunAll.
func (r *Runner) Stats() Stats {
	return Stats{
		Simulations:   r.sims.Load(),
		CacheHits:     r.cacheHits.Load(),
		CacheMisses:   r.cacheMisses.Load(),
		RemoteRuns:    r.remoteRuns.Load(),
		DeltaHits:     r.deltaHits.Load(),
		CoalescedKeys: r.coalescedKeys.Load(),
	}
}

// cacheSchema versions the persistent cache namespace. Bump it
// whenever the simulator's behaviour changes in a result-affecting way
// that the key inputs cannot see (event ordering, policy logic,
// workload generation), so stale results from an older binary are
// misses rather than silently served as current.
// Schema 2: Socket.remoteRead charges the L2 access latency on merged
// MSHR waiters symmetrically with the primary requester (timing fix;
// cycle counts shift slightly in the cached-remote modes).
// Schema 3: the fabric routes over an explicit topology graph and the
// key gains the canonical topology encoding; nil-topology results are
// unchanged but daemons may mix binaries, so the namespace rolls.
const cacheSchema = 3

// RunKey returns the content address of one (config, workload) run
// under this Runner's options: a schema version, every field of the
// architectural configuration (cfgKey's policy-study fields plus the
// fixed machine parameters it elides for brevity), the workload name,
// and the workload scaling parameters (IterScale, MaxCTAs). Two
// Runners — in the same process or across restarts — produce the same
// key exactly when Run would produce the same Result, which is what
// makes the key safe to use for a persistent Cache.
//
// The workload is identified by Spec.Name: callers substituting a
// custom Spec under an existing table name must not share a Cache with
// runs of the table workload.
func (r *Runner) RunKey(cfg arch.Config, spec workload.Spec) string {
	return fmt.Sprintf("v%d|%s.%s|%s|iter%g.cap%d",
		cacheSchema, cfgKey(cfg), machineKey(cfg), spec.Name, r.opts.IterScale, r.opts.MaxCTAs)
}

// machineKey fingerprints the arch.Config fields cfgKey leaves out:
// the machine parameters that are constant within one harness but
// differ across divisors, hand-built configs, or future PaperConfig
// revisions. Together cfgKey + machineKey cover every Config field.
func machineKey(c arch.Config) string {
	k := fmt.Sprintf("w%d.cta%d.iw%d.l1_%d/%d/%d.l2_%d/%d/%d.noc%g/%d.dl%d.ll%d.sl%d.hdr%d/%d",
		c.MaxWarpsPerSM, c.MaxCTAsPerSM, c.IssueWidth,
		c.L1Bytes, c.L1Assoc, c.L1Latency,
		c.L2Assoc, c.L2Banks, c.L2Latency,
		c.NoCBandwidth, c.NoCLatency, c.DRAMLatency,
		c.LinkLatency, c.SwitchLatency,
		c.RequestHeader, c.ResponseHeader)
	if c.Topology != nil {
		// The canonical encoding covers every topology field, including
		// link order (it breaks routing ties). Nil encodes as nothing:
		// the synthesized crossbar is fully determined by the fields
		// above.
		k += ".topo[" + c.Topology.Canonical() + "]"
	}
	return k
}

// counters holds the Runner's atomic run accounting; embedded so the
// zero value is ready to use.
type counters struct {
	sims          atomic.Uint64
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	remoteRuns    atomic.Uint64
	deltaHits     atomic.Uint64
	coalescedKeys atomic.Uint64
}
