package exp

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// quickRunner builds a harness over a 2-workload subset at tiny scale.
func quickRunner() *Runner {
	var subset []workload.Spec
	for _, name := range []string{"HPC-RSBench", "Rodinia-Hotspot", "Other-Stream-Triad"} {
		s, _ := workload.ByName(name)
		subset = append(subset, s)
	}
	return NewRunner(Options{Divisor: 16, IterScale: 0.1, MaxCTAs: 64, Workloads: subset})
}

func TestOptionsNormalization(t *testing.T) {
	r := NewRunner(Options{})
	o := r.Options()
	if o.Divisor != 8 || o.IterScale != 1 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if len(o.Workloads) != 41 {
		t.Fatalf("default workload set %d, want 41", len(o.Workloads))
	}
	if o.Parallelism < 1 {
		t.Fatalf("default parallelism %d, want >= 1 (GOMAXPROCS)", o.Parallelism)
	}
}

func TestRunnerMemoization(t *testing.T) {
	r := quickRunner()
	spec := r.opts.Workloads[0]
	a := r.Run(r.Base(2), spec)
	b := r.Run(r.Base(2), spec)
	if a.Cycles != b.Cycles {
		t.Fatal("memoized run differs")
	}
	if len(r.memo) != 1 {
		t.Fatalf("memo entries %d, want 1", len(r.memo))
	}
	r.Run(r.NUMAAware(2), spec)
	if len(r.memo) != 2 {
		t.Fatalf("distinct configs must get distinct memo keys, have %d", len(r.memo))
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	r := quickRunner()
	keys := map[string]bool{}
	cfgs := []arch.Config{
		r.Base(2), r.Base(4), r.Traditional(4), r.NUMAAware(4), r.Monolithic(4),
	}
	c := r.Base(4)
	c.L2WriteThrough = true
	cfgs = append(cfgs, c)
	c2 := r.Base(4)
	c2.NoL2Invalidate = true
	cfgs = append(cfgs, c2)
	c3 := r.Base(4)
	c3.LinkSampleTime = 777
	cfgs = append(cfgs, c3)
	for _, cfg := range cfgs {
		k := cfgKey(cfg)
		if keys[k] {
			t.Fatalf("config key collision: %s", k)
		}
		keys[k] = true
	}
}

func TestBaselineConfigs(t *testing.T) {
	r := quickRunner()
	b := r.Base(4)
	if b.Sched != arch.SchedBlock || b.Placement != arch.PlaceFirstTouch {
		t.Fatal("base must be the locality runtime")
	}
	if b.CacheMode != arch.CacheMemSideLocal || b.LinkMode != arch.LinkStatic {
		t.Fatal("base must be memory-side L2 with static links")
	}
	tr := r.Traditional(4)
	if tr.Sched != arch.SchedFineGrain || tr.Placement != arch.PlaceFineInterleave {
		t.Fatal("traditional config wrong")
	}
	na := r.NUMAAware(4)
	if na.CacheMode != arch.CacheNUMAAware || na.LinkMode != arch.LinkDynamic {
		t.Fatal("NUMA-aware config wrong")
	}
	m := r.Monolithic(4)
	if m.Sockets != 1 {
		t.Fatal("monolithic config wrong")
	}
}

func TestFigure2Data(t *testing.T) {
	r := NewRunner(Options{}) // full table, no simulation needed
	res := Figure2(r)
	if res.Summary["fill_1x_pct"] != 100 {
		t.Fatalf("1x fill %v, want 100%%", res.Summary["fill_1x_pct"])
	}
	// Paper Figure 2 shape: monotonically non-increasing, ≥80% at 8×.
	last := 101.0
	for _, k := range []string{"fill_1x_pct", "fill_2x_pct", "fill_4x_pct", "fill_8x_pct"} {
		v := res.Summary[k]
		if v > last {
			t.Fatalf("fill percentages must not increase: %v", res.Summary)
		}
		last = v
	}
	if res.Summary["fill_8x_pct"] < 75 {
		t.Fatalf("8x fill %v, paper shows ≈80%%", res.Summary["fill_8x_pct"])
	}
}

func TestTable1Content(t *testing.T) {
	r := quickRunner()
	res := Table1(r)
	out := res.Table.String()
	for _, want := range []string{"768GB/s", "100ns", "Greedy then Round Robin", "128-cycle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
	if res.Summary["dram_to_link"] < 11.9 || res.Summary["dram_to_link"] > 12.1 {
		t.Fatal("DRAM:link ratio must be 12")
	}
}

func TestTable2Content(t *testing.T) {
	r := NewRunner(Options{})
	res := Table2(r)
	if res.Table.Rows() != 41 {
		t.Fatalf("Table 2 rows %d, want 41", res.Table.Rows())
	}
	if !strings.Contains(res.Table.String(), "241549") {
		t.Fatal("Table 2 must carry the paper CTA counts")
	}
}

func TestFigure8EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := quickRunner()
	res := Figure8(r)
	// RSBench + Hotspot are non-grey in the subset → 2 rows + 2 means.
	if res.Table.Rows() < 3 {
		t.Fatalf("Figure 8 rows %d", res.Table.Rows())
	}
	if res.Summary["numa_geomean"] <= 0 {
		t.Fatal("summary missing")
	}
}

func TestFigure11EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := quickRunner()
	res := Figure11(r)
	for _, k := range []string{"numa_2_geomean", "numa_4_geomean", "numa_8_geomean",
		"mono_2_geomean", "mono_4_geomean", "mono_8_geomean",
		"efficiency_2_pct", "efficiency_4_pct", "efficiency_8_pct"} {
		if res.Summary[k] <= 0 {
			t.Fatalf("summary %s missing", k)
		}
	}
	// Monolithic speedups must grow with size for these parallel
	// workloads.
	if res.Summary["mono_8_geomean"] < res.Summary["mono_2_geomean"] {
		t.Fatal("monolithic scaling inverted")
	}
}

func TestFigure5EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(Options{Divisor: 16, IterScale: 0.1, MaxCTAs: 96})
	res := Figure5(r)
	if res.Summary["kernels"] != 10 {
		t.Fatalf("HPGMG-UVM kernels %v, want 10", res.Summary["kernels"])
	}
	if res.Summary["windows"] <= 0 {
		t.Fatal("no profile windows recorded")
	}
	if res.Summary["mean_direction_asymmetry"] <= 0 {
		t.Fatal("profile shows no directional asymmetry; Figure 5's phenomenon is absent")
	}
}

func TestLaneGranularityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := quickRunner()
	res := LaneGranularity(r)
	if res.Summary["lanes8_geomean"] <= 0 || res.Summary["lanes4_geomean"] <= 0 {
		t.Fatal("summary missing")
	}
}

func TestMultiTenancySmallWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var subset []workload.Spec
	for _, name := range []string{"Lonestar-SP", "Other-Bitcoin-Crypto", "Rodinia-Hotspot"} {
		s, _ := workload.ByName(name)
		subset = append(subset, s)
	}
	r := NewRunner(Options{Divisor: 16, IterScale: 0.1, MaxCTAs: 64, Workloads: subset})
	res := MultiTenancy(r)
	// SP (75 CTAs) and Bitcoin (60) qualify as small; Hotspot does not.
	if res.Summary["small_workloads"] != 2 {
		t.Fatalf("small workloads %v, want 2", res.Summary["small_workloads"])
	}
	if res.Summary["partition_delivers_geomean"] <= 0 {
		t.Fatal("summary missing")
	}
}

func TestRemainingFiguresEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := quickRunner()
	f3 := Figure3(r)
	if f3.Table.Rows() != len(r.opts.Workloads)+2 {
		t.Fatalf("Figure 3 rows %d", f3.Table.Rows())
	}
	if f3.Summary["mono4_geomean"] <= f3.Summary["traditional_geomean"] {
		t.Fatal("monolithic must beat traditional policies")
	}
	f6 := Figure6(r)
	if f6.Summary["bw2_geomean"] < 1 {
		t.Fatal("doubling bandwidth must not hurt")
	}
	f9 := Figure9(r)
	if f9.Summary["coherence_overhead_geomean"] < 0.99 {
		t.Fatalf("no-invalidate L2 should not lose: %v", f9.Summary)
	}
	f10 := Figure10(r)
	if f10.Summary["comb_geomean"] <= 0 {
		t.Fatal("Figure 10 summary missing")
	}
	st := SwitchTimeSensitivity(r)
	if st.Summary["turn_10_geomean"] <= 0 || st.Summary["turn_500_geomean"] <= 0 {
		t.Fatal("switch time summary missing")
	}
	wp := WritePolicy(r)
	if wp.Summary["wb_over_wt_geomean"] <= 0 {
		t.Fatal("write policy summary missing")
	}
	pw := Power(r)
	if pw.Summary["baseline_watts_geomean"] < 0 {
		t.Fatal("power summary missing")
	}
}
