package exp

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestRunKeyIgnoresObs pins the Obs policy exemption in
// TestRunKeyCoversEveryConfigField: enabling any observability option
// must not change the run key, or observed runs would fork the shared
// cache namespace for byte-identical results.
func TestRunKeyIgnoresObs(t *testing.T) {
	r := NewRunner(tinyOptions())
	spec := r.opts.Workloads[0]
	base := r.Base(2)
	k0 := r.RunKey(base, spec)
	withObs := base
	withObs.Obs = arch.ObsSpec{Series: true, Trace: true, SamplePeriod: 100, MaxSamples: 8, MaxTraceEvents: 16}
	if k := r.RunKey(withObs, spec); k != k0 {
		t.Fatalf("Obs leaked into the run key:\n%q\nvs\n%q", k, k0)
	}
}

// TestObsForcesLocalSimulation pins the dispatch contract for observed
// runs: the Backend must never be consulted (a remote result has no
// series to flush), the run simulates locally, and the sink fires with
// a populated collector.
func TestObsForcesLocalSimulation(t *testing.T) {
	b := &fakeBackend{mode: "fail"} // would fail the run if consulted
	o := tinyOptions()
	o.Obs = arch.ObsSpec{Series: true, SamplePeriod: 500}
	var sunk []*obs.Collector
	o.ObsSink = func(key string, spec workload.Spec, col *obs.Collector) {
		sunk = append(sunk, col)
	}
	r := NewRemoteRunner(o, b)
	spec := r.opts.Workloads[0]
	res := r.Run(r.Base(2), spec)

	if b.callCount() != 0 {
		t.Fatalf("observed run reached the backend %d times, want 0", b.callCount())
	}
	if st := r.Stats(); st.Simulations != 1 {
		t.Fatalf("stats = %+v, want exactly one local simulation", st)
	}
	if len(sunk) != 1 || sunk[0] == nil {
		t.Fatalf("ObsSink calls = %d (nil-free: %v), want 1 populated collector", len(sunk), sunk)
	}
	var samples int
	for _, s := range sunk[0].Series() {
		samples += s.Len()
	}
	if samples == 0 {
		t.Fatal("collector reached the sink with no samples")
	}

	plain := NewRunner(tinyOptions())
	if want := plain.Run(plain.Base(2), spec); !reflect.DeepEqual(res, want) {
		t.Fatalf("observed result differs from plain local run:\n%+v\nvs\n%+v", res, want)
	}
}

// TestObsSkipsWarmCache pins the cache layering for observed runs: a
// warm second-level cache entry must NOT short-circuit the simulation
// (it has no series), the re-simulated result must equal the cached
// one, and the run still writes back through the cache.
func TestObsSkipsWarmCache(t *testing.T) {
	cache := newMapCache()
	plain := NewRunner(cachedOptions(cache))
	spec := plain.opts.Workloads[0]
	want := plain.Run(plain.Base(2), spec)

	o := cachedOptions(cache)
	o.Obs = arch.ObsSpec{Series: true, SamplePeriod: 500}
	sunk := 0
	o.ObsSink = func(string, workload.Spec, *obs.Collector) { sunk++ }
	r := NewRunner(o)
	got := r.Run(r.Base(2), spec)

	if st := r.Stats(); st.Simulations != 1 || st.CacheHits != 0 {
		t.Fatalf("observed run must simulate despite a warm cache: %+v", st)
	}
	if sunk != 1 {
		t.Fatalf("ObsSink calls = %d, want 1", sunk)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("observed result differs from cached result:\n%+v\nvs\n%+v", got, want)
	}
	if cache.gets != 1 || cache.puts != 2 {
		t.Fatalf("cache traffic gets=%d puts=%d, want gets=1 (plain only) puts=2 (both write back)", cache.gets, cache.puts)
	}
}

// obsBytes runs every tinyOptions workload observed (series + trace) at
// the given parallelism and returns the flushed bytes per run key.
func obsBytes(t *testing.T, parallelism int) map[string][]byte {
	t.Helper()
	o := tinyOptions()
	o.Parallelism = parallelism
	o.Obs = arch.ObsSpec{Series: true, Trace: true, SamplePeriod: 500}
	out := make(map[string][]byte)
	var mu sync.Mutex
	o.ObsSink = func(key string, spec workload.Spec, col *obs.Collector) {
		var buf bytes.Buffer
		if err := col.WriteSeriesCSV(&buf); err != nil {
			t.Errorf("WriteSeriesCSV(%s): %v", spec.Name, err)
		}
		if err := col.WriteTrace(&buf); err != nil {
			t.Errorf("WriteTrace(%s): %v", spec.Name, err)
		}
		mu.Lock()
		defer mu.Unlock()
		if _, dup := out[key]; dup {
			t.Errorf("ObsSink fired twice for key %q", key)
		}
		out[key] = append([]byte(nil), buf.Bytes()...)
	}
	r := NewRunner(o)
	reqs := make([]RunRequest, 0, 2*len(r.opts.Workloads))
	for _, spec := range r.opts.Workloads {
		// Duplicates exercise the once-per-unique-key sink contract.
		reqs = append(reqs, RunRequest{Cfg: r.Base(2), Spec: spec}, RunRequest{Cfg: r.Base(2), Spec: spec})
	}
	r.RunAll(reqs)
	return out
}

// TestObsDeterministicAcrossParallelism requires byte-identical series
// and trace flushes from a sequential and an 8-way parallel sweep:
// concurrency must be unobservable in the observability output, exactly
// as it is in the results.
func TestObsDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	seq := obsBytes(t, 1)
	par := obsBytes(t, 8)
	if len(seq) != len(par) {
		t.Fatalf("key sets differ: %d sequential vs %d parallel", len(seq), len(par))
	}
	for key, want := range seq {
		got, ok := par[key]
		if !ok {
			t.Fatalf("parallel sweep missing key %q", key)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("series/trace bytes differ between -j1 and -j8 for key %q (%d vs %d bytes)", key, len(got), len(want))
		}
	}
}
