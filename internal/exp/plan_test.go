package exp

import (
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
)

// TestPlanOverlappingSweeps is the delta-planning contract: sweep B
// overlapping sweep A by N keys classifies those N as Cached, executes
// exactly |B|-N new simulations, and counts the N into Stats.DeltaHits.
func TestPlanOverlappingSweeps(t *testing.T) {
	opts := tinyOptions()
	opts.Parallelism = 2
	r := NewRunner(opts)
	specs := r.opts.Workloads // 4 workloads

	var sweepA, sweepB []RunRequest
	for _, s := range specs {
		sweepA = append(sweepA, RunRequest{r.Base(2), s})
	}
	// B overlaps A on the first two workloads and adds 4 new keys.
	for _, s := range specs[:2] {
		sweepB = append(sweepB, RunRequest{r.Base(2), s})
	}
	for _, s := range specs {
		sweepB = append(sweepB, RunRequest{r.Base(4), s})
	}
	overlap := 2

	planA := r.Plan(sweepA)
	if len(planA.Todo) != len(sweepA) || len(planA.Cached) != 0 || len(planA.Inflight) != 0 {
		t.Fatalf("cold plan A = %d todo / %d cached / %d inflight, want all %d todo",
			len(planA.Todo), len(planA.Cached), len(planA.Inflight), len(sweepA))
	}
	r.RunAll(sweepA)
	if st := r.Stats(); st.Simulations != uint64(len(sweepA)) {
		t.Fatalf("sweep A ran %d simulations, want %d", st.Simulations, len(sweepA))
	}

	planB := r.Plan(sweepB)
	if len(planB.Cached) != overlap {
		t.Fatalf("plan B cached %d keys, want the overlap %d", len(planB.Cached), overlap)
	}
	if want := len(sweepB) - overlap; len(planB.Todo) != want {
		t.Fatalf("plan B todo %d keys, want the delta %d", len(planB.Todo), want)
	}
	r.RunAll(sweepB)

	st := r.Stats()
	if want := uint64(len(sweepA) + len(sweepB) - overlap); st.Simulations != want {
		t.Fatalf("total simulations %d, want |A|+|B|-overlap = %d", st.Simulations, want)
	}
	if st.DeltaHits != uint64(overlap) {
		t.Fatalf("DeltaHits = %d, want %d", st.DeltaHits, overlap)
	}
	if st.CoalescedKeys != 0 {
		t.Fatalf("CoalescedKeys = %d, want 0 (nothing was in flight)", st.CoalescedKeys)
	}
}

// TestPlanPrefillsFromCache simulates the cross-restart delta: a fresh
// Runner whose second-level cache already holds a sweep's results must
// classify every key Cached at plan time, fire OnResult for each with
// SourceCached, and then execute zero simulations.
func TestPlanPrefillsFromCache(t *testing.T) {
	cache := newMapCache()
	warmOpts := tinyOptions()
	warmOpts.Cache = cache
	warm := NewRunner(warmOpts)
	var reqs []RunRequest
	for _, s := range warm.opts.Workloads[:2] {
		reqs = append(reqs, RunRequest{warm.Base(2), s})
	}
	warm.RunAll(reqs)

	var mu sync.Mutex
	got := map[string]RunSource{}
	o := tinyOptions()
	o.Cache = cache
	o.OnResult = func(key string, res core.Result, src RunSource) {
		mu.Lock()
		got[key] = src
		mu.Unlock()
	}
	r := NewRunner(o)
	plan := r.Plan(reqs)
	if len(plan.Cached) != len(reqs) {
		t.Fatalf("warm plan cached %d of %d keys", len(plan.Cached), len(reqs))
	}
	if len(got) != len(reqs) {
		t.Fatalf("OnResult fired for %d keys at plan time, want %d", len(got), len(reqs))
	}
	for key, src := range got {
		if src != SourceCached {
			t.Fatalf("prefill of %s reported source %q, want %q", key, src, SourceCached)
		}
	}
	res := r.RunAll(reqs)
	st := r.Stats()
	if st.Simulations != 0 || st.CacheHits != uint64(len(reqs)) || st.DeltaHits != uint64(len(reqs)) {
		t.Fatalf("warm sweep stats = %+v, want 0 sims, %d cache hits, %d delta hits", st, len(reqs), len(reqs))
	}
	if len(got) != len(reqs) {
		t.Fatalf("OnResult fired %d times after RunAll, want still %d (once per key)", len(got), len(reqs))
	}
	for i, q := range reqs {
		if res[i].Name != q.Spec.Name {
			t.Fatalf("result %d named %q, want %q", i, res[i].Name, q.Spec.Name)
		}
	}
}

// TestOnResultFiresOncePerKey hammers duplicate requests through RunAll
// and direct Run calls: the runner-level callback must fire exactly once
// per unique key, with the executing run reporting SourceSimulated.
func TestOnResultFiresOncePerKey(t *testing.T) {
	var mu sync.Mutex
	fired := map[string]int{}
	src := map[string]RunSource{}
	opts := tinyOptions()
	opts.Parallelism = 4
	opts.OnResult = func(key string, res core.Result, s RunSource) {
		mu.Lock()
		fired[key]++
		src[key] = s
		mu.Unlock()
	}
	r := NewRunner(opts)
	spec := r.opts.Workloads[0]
	reqs := []RunRequest{
		{r.Base(2), spec}, {r.Base(2), spec}, {r.Base(2), spec},
		{r.Base(4), spec}, {r.Base(4), spec},
	}
	r.RunAll(reqs)
	r.Run(r.Base(2), spec) // memo repeat after completion
	if len(fired) != 2 {
		t.Fatalf("OnResult saw %d unique keys, want 2", len(fired))
	}
	for key, n := range fired {
		if n != 1 {
			t.Fatalf("OnResult fired %d times for %s, want exactly once", n, key)
		}
		if src[key] != SourceSimulated {
			t.Fatalf("executing run of %s reported source %q, want %q", key, src[key], SourceSimulated)
		}
	}
}

// TestSessionAttribution runs two sessions over one shared Runner with
// overlapping sweeps: each session's callback must report exactly its
// own keys (dedup included), and the second session must see the
// overlap as cached rather than re-simulated.
func TestSessionAttribution(t *testing.T) {
	opts := tinyOptions()
	opts.Parallelism = 2
	r := NewRunner(opts)
	specs := r.opts.Workloads

	collect := func() (map[string]RunSource, func(string, core.Result, RunSource)) {
		seen := map[string]RunSource{}
		var mu sync.Mutex
		return seen, func(key string, res core.Result, s RunSource) {
			mu.Lock()
			seen[key] = s
			mu.Unlock()
		}
	}
	seenA, onA := collect()
	seenB, onB := collect()
	sa := r.Session(onA)
	sb := r.Session(onB)

	var sweepA, sweepB []RunRequest
	for _, s := range specs[:3] {
		sweepA = append(sweepA, RunRequest{r.Base(2), s}, RunRequest{r.Base(2), s}) // dup on purpose
	}
	for _, s := range specs[1:] {
		sweepB = append(sweepB, RunRequest{r.Base(2), s})
	}
	sa.RunAll(sweepA)
	sb.RunAll(sweepB)

	if len(seenA) != 3 {
		t.Fatalf("session A reported %d keys, want 3 unique", len(seenA))
	}
	if len(seenB) != 3 {
		t.Fatalf("session B reported %d keys, want 3", len(seenB))
	}
	for key, src := range seenA {
		if src != SourceSimulated {
			t.Fatalf("session A key %s source %q, want simulated", key, src)
		}
	}
	// B's overlap with A (specs[1], specs[2]) must be cached; its new
	// key (specs[3]) simulated. No key of A-only (specs[0]) may appear.
	onlyA := r.RunKey(r.Base(2), specs[0])
	if _, leaked := seenB[onlyA]; leaked {
		t.Fatalf("session B's callback saw session A's key %s", onlyA)
	}
	cached, simulated := 0, 0
	for _, src := range seenB {
		switch src {
		case SourceCached:
			cached++
		case SourceSimulated:
			simulated++
		default:
			t.Fatalf("unexpected source %q in session B", src)
		}
	}
	if cached != 2 || simulated != 1 {
		t.Fatalf("session B saw %d cached / %d simulated, want 2/1", cached, simulated)
	}
	if st := r.Stats(); st.Simulations != 4 {
		t.Fatalf("shared runner simulated %d keys, want 4 unique", st.Simulations)
	}
}

// TestPlanObservedSweepSkipsCache pins the observability constraint: an
// observed run must actually simulate, so Plan with Obs enabled
// classifies everything Todo without consulting the cache.
func TestPlanObservedSweepSkipsCache(t *testing.T) {
	cache := newMapCache()
	warm := NewRunner(cachedOptions(cache))
	req := RunRequest{warm.Base(2), warm.opts.Workloads[0]}
	warm.Run(req.Cfg, req.Spec)

	getsBefore := cache.gets
	o := cachedOptions(cache)
	o.Obs = arch.ObsSpec{Series: true, SamplePeriod: 500}
	r := NewRunner(o)
	plan := r.Plan([]RunRequest{req})
	if len(plan.Todo) != 1 || len(plan.Cached) != 0 {
		t.Fatalf("observed plan = %d todo / %d cached, want 1/0", len(plan.Todo), len(plan.Cached))
	}
	if gets := cache.gets - getsBefore; gets != 0 {
		t.Fatalf("observed plan consulted the cache %d times, want 0", gets)
	}
}
