package exp

import (
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// Harness is the experiment-facing surface shared by *Runner and
// *Session: everything a figure needs to build configurations and
// execute its sweep. Experiment entry points (Experiment.Run) take a
// Harness, so a caller that needs per-request attribution — the
// numagpud service streaming one job's run completions — hands the
// experiment a Session without giving up the Runner's shared memo,
// cache, and backend. Standalone callers keep passing a *Runner.
type Harness interface {
	Options() Options
	Base(sockets int) arch.Config
	Traditional(sockets int) arch.Config
	NUMAAware(sockets int) arch.Config
	Monolithic(factor int) arch.Config
	Run(cfg arch.Config, spec workload.Spec) core.Result
	RunAll(reqs []RunRequest) []core.Result

	// evaluated keeps the interface closed to this package: the harness
	// contract includes unexported helpers the figures rely on.
	evaluated() []workload.Spec
}

var (
	_ Harness = (*Runner)(nil)
	_ Harness = (*Session)(nil)
)

// Session wraps a Runner with a per-caller completion callback: every
// run the session requests reports back through its own callback —
// including runs that were already memoized (SourceCached) or that
// another caller had in flight (SourceCoalesced) — deduplicated per
// key, so one job's event stream covers exactly its own RunKeys and
// nothing else. All execution state (memo, second-level cache, backend,
// counters) remains the Runner's; any number of Sessions may share one
// Runner concurrently.
type Session struct {
	r  *Runner
	on func(key string, res core.Result, source RunSource)

	mu   sync.Mutex // serializes the callback and guards seen
	seen map[string]bool
}

// Session derives a per-caller view of the Runner. on (may be nil) is
// invoked once per unique key this session requests, serialized, at
// the moment the session's request for it completes. The callback must
// not call back into the Session.
func (r *Runner) Session(on func(key string, res core.Result, source RunSource)) *Session {
	return &Session{r: r, on: on, seen: make(map[string]bool)}
}

// Options reports the underlying Runner's normalized options.
func (s *Session) Options() Options { return s.r.Options() }

// Base delegates to the underlying Runner.
func (s *Session) Base(sockets int) arch.Config { return s.r.Base(sockets) }

// Traditional delegates to the underlying Runner.
func (s *Session) Traditional(sockets int) arch.Config { return s.r.Traditional(sockets) }

// NUMAAware delegates to the underlying Runner.
func (s *Session) NUMAAware(sockets int) arch.Config { return s.r.NUMAAware(sockets) }

// Monolithic delegates to the underlying Runner.
func (s *Session) Monolithic(factor int) arch.Config { return s.r.Monolithic(factor) }

func (s *Session) evaluated() []workload.Spec { return s.r.evaluated() }

// Run executes one memoized run through the underlying Runner and
// reports its completion to the session callback.
func (s *Session) Run(cfg arch.Config, spec workload.Spec) core.Result {
	key := s.r.RunKey(cfg, spec)
	res, src := s.r.runKeyed(key, cfg, spec)
	s.emit(key, res, src)
	return res
}

// RunAll mirrors Runner.RunAll — same pool, same request-order
// guarantee — with every completion flowing through the session
// callback.
func (s *Session) RunAll(reqs []RunRequest) []core.Result {
	return runPool(s.r.opts.Parallelism, len(reqs), func(i int) core.Result {
		return s.Run(reqs[i].Cfg, reqs[i].Spec)
	})
}

func (s *Session) emit(key string, res core.Result, src RunSource) {
	if s.on == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.on(key, res, src)
}
