// Package obs is the opt-in observability layer of the simulator:
// per-socket, per-cache and per-link time series plus an optional
// Chrome-trace event ring, recorded while a core.System runs and
// flushed to CSV/JSON afterwards.
//
// The design constraint that shapes everything here is inertness: a
// simulation with observation enabled must stay byte-identical to one
// without it. Every probe is therefore read-only — series values are
// either direct reads of component state (resident warps, MSHR table
// sizes, server backlog) or deltas of lifetime counters the model
// already maintains (issued instructions, cache hits, link and DRAM
// bytes) — and sampling rides one sim.Ticker per socket, whose tick
// events interleave with model events without mutating any model
// state. All buffers are preallocated from arch.ObsSpec capacities, so
// the per-tick sample path and the trace append path run at zero
// allocations (gated in CI by TestSamplingAllocFree); full rings
// overwrite (series) or drop (trace) and report the loss at flush time
// instead of growing.
//
// See docs/OBSERVABILITY.md for the series schema and the Perfetto
// workflow.
package obs

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/xlink"
)

// Capacity and period defaults applied to zero ObsSpec fields.
const (
	DefaultSamplePeriod   = 5000 // the paper's policy sampling window
	DefaultMaxSamples     = 4096
	DefaultMaxTraceEvents = 1 << 16
)

// Energy constants for the power series, Joules per bit moved.
// InterconnectEnergyPerBit mirrors core's Section 6 estimate (10 pJ/b
// for link plus switch); DRAMEnergyPerBit is the commonly cited ~3.9
// pJ/b HBM2 access energy. Both exist only for reporting — no
// simulation decision reads them.
const (
	InterconnectEnergyPerBit = 10e-12
	DRAMEnergyPerBit         = 3.9e-12
)

// Point is one recorded sample.
type Point struct {
	At    sim.Time
	Value float64
}

// Series is one preallocated metric ring. When the ring fills, new
// samples overwrite the oldest (the series keeps the most recent
// MaxSamples window) and Dropped counts the overwritten points.
type Series struct {
	Name   string // e.g. "socket0/sm_occupancy", "link0:s0-x0/egress_util"
	Socket int    // owning socket, -1 for fabric-level series

	buf     []Point
	head    int // oldest entry once the ring has wrapped
	dropped uint64
}

func (s *Series) record(at sim.Time, v float64) {
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, Point{At: at, Value: v})
		return
	}
	s.buf[s.head] = Point{At: at, Value: v}
	s.head++
	if s.head == len(s.buf) {
		s.head = 0
	}
	s.dropped++
}

// Len reports the number of retained points.
func (s *Series) Len() int { return len(s.buf) }

// At returns retained point i in time order (0 is the oldest retained).
func (s *Series) At(i int) Point { return s.buf[(s.head+i)%len(s.buf)] }

// Dropped reports how many samples were overwritten by ring wraparound.
func (s *Series) Dropped() uint64 { return s.dropped }

// Collector owns every series and the trace ring for one core.System
// run. Build it with New, register components with AddSocket/AddFabric
// (core does this during system construction), Start/Stop it around the
// run, then flush with the Write* methods.
type Collector struct {
	spec   arch.ObsSpec // normalized: zero capacities replaced by defaults
	period sim.Time

	series  []*Series
	trace   *Trace
	sockets []*socketProbe
	fabric  *fabricProbe
	tickers []*sim.Ticker
	nProcs  int // trace pid space: sockets + 1 runtime track
}

// New builds a collector for spec (zero capacities take the package
// defaults). The trace ring exists only when spec.Trace is set; series
// probes and tickers only when spec.Series is.
func New(spec arch.ObsSpec) *Collector {
	if spec.SamplePeriod <= 0 {
		spec.SamplePeriod = DefaultSamplePeriod
	}
	if spec.MaxSamples <= 0 {
		spec.MaxSamples = DefaultMaxSamples
	}
	if spec.MaxTraceEvents <= 0 {
		spec.MaxTraceEvents = DefaultMaxTraceEvents
	}
	c := &Collector{spec: spec, period: sim.Time(spec.SamplePeriod)}
	if spec.Trace {
		c.trace = newTrace(spec.MaxTraceEvents)
	}
	return c
}

// Spec reports the normalized spec in effect.
func (c *Collector) Spec() arch.ObsSpec { return c.spec }

// Period reports the sampling period in cycles.
func (c *Collector) Period() sim.Time { return c.period }

// Series returns every registered series in registration order.
func (c *Collector) Series() []*Series { return c.series }

// Trace returns the event ring, nil unless the spec requested tracing.
func (c *Collector) Trace() *Trace { return c.trace }

func (c *Collector) newSeries(name string, socket int) *Series {
	s := &Series{Name: name, Socket: socket, buf: make([]Point, 0, c.spec.MaxSamples)}
	c.series = append(c.series, s)
	return s
}

// AddSocket registers the series probe for one socket. eng must be the
// engine the socket's events run on (its shard under sharded
// execution) so the sampling ticker interleaves deterministically; cfg
// is the socket's own configuration (topology overrides applied).
func (c *Collector) AddSocket(eng *sim.Engine, cfg arch.Config, sock *gpu.Socket) {
	if c.nProcs <= int(sock.ID())+1 {
		c.nProcs = int(sock.ID()) + 2 // + the runtime track
	}
	if !c.spec.Series {
		return
	}
	id := int(sock.ID())
	p := &socketProbe{sock: sock, cfg: cfg, eng: eng, period: c.period}
	p.occ = c.newSeries(fmt.Sprintf("socket%d/sm_occupancy", id), id)
	p.ready = c.newSeries(fmt.Sprintf("socket%d/warp_ready_frac", id), id)
	p.waitComp = c.newSeries(fmt.Sprintf("socket%d/warp_wait_compute_frac", id), id)
	p.waitMem = c.newSeries(fmt.Sprintf("socket%d/warp_wait_mem_frac", id), id)
	p.ipc = c.newSeries(fmt.Sprintf("socket%d/ipc", id), id)
	p.l1Hit = c.newSeries(fmt.Sprintf("socket%d/l1_hit_rate", id), id)
	p.l2LocalHit = c.newSeries(fmt.Sprintf("socket%d/l2_local_hit_rate", id), id)
	p.l2RemoteHit = c.newSeries(fmt.Sprintf("socket%d/l2_remote_hit_rate", id), id)
	p.mshr = c.newSeries(fmt.Sprintf("socket%d/mshr_pending", id), id)
	p.dramBW = c.newSeries(fmt.Sprintf("socket%d/dram_bw_util", id), id)
	p.dramPower = c.newSeries(fmt.Sprintf("socket%d/dram_power_w", id), id)
	c.sockets = append(c.sockets, p)
}

// AddFabric registers the per-physical-link probe. eng must be the
// fabric's engine (the home shard under sharded execution).
func (c *Collector) AddFabric(eng *sim.Engine, fab *xlink.Fabric) {
	if !c.spec.Series || fab == nil {
		return
	}
	p := &fabricProbe{eng: eng, period: c.period}
	for i := 0; i < fab.NumLinks(); i++ {
		l := fab.LinkAt(i)
		lp := linkProbe{link: l}
		lp.egUtil = c.newSeries(fmt.Sprintf("link%d:%s/egress_util", i, l.Name()), -1)
		lp.inUtil = c.newSeries(fmt.Sprintf("link%d:%s/ingress_util", i, l.Name()), -1)
		lp.backlog = c.newSeries(fmt.Sprintf("link%d:%s/backlog_cycles", i, l.Name()), -1)
		lp.power = c.newSeries(fmt.Sprintf("link%d:%s/power_w", i, l.Name()), -1)
		p.links = append(p.links, lp)
	}
	c.fabric = p
}

// Start arms one sampling ticker per registered socket plus one for
// the fabric. Tick events are read-only: they interleave with model
// events but never change them, so the simulated schedule — and every
// result — is identical with sampling on or off.
func (c *Collector) Start() {
	if !c.spec.Series {
		return
	}
	for _, p := range c.sockets {
		t := sim.NewTicker(p.eng, c.period, p.sample)
		c.tickers = append(c.tickers, t)
		t.Start()
	}
	if c.fabric != nil {
		t := sim.NewTicker(c.fabric.eng, c.period, c.fabric.sample)
		c.tickers = append(c.tickers, t)
		t.Start()
	}
}

// Stop halts every sampling ticker (their already-queued ticks fire as
// no-ops, like every policy ticker) so the engine can drain.
func (c *Collector) Stop() {
	for _, t := range c.tickers {
		t.Stop()
	}
}

// SampleAll runs one sample round over every probe outside any ticker:
// the per-tick path as a callable, for the alloc gate and unit tests.
func (c *Collector) SampleAll(now sim.Time) {
	for _, p := range c.sockets {
		p.sample(now)
	}
	if c.fabric != nil {
		c.fabric.sample(now)
	}
}

// socketProbe samples one socket: occupancy and stall breakdown from
// the SMs, windowed IPC and hit rates as deltas of lifetime counters,
// MSHR pressure from the pending-table sizes, DRAM bandwidth and power
// from the DRAM byte meter.
type socketProbe struct {
	sock   *gpu.Socket
	cfg    arch.Config
	eng    *sim.Engine
	period sim.Time

	occ, ready, waitComp, waitMem  *Series
	ipc                            *Series
	l1Hit, l2LocalHit, l2RemoteHit *Series
	mshr                           *Series
	dramBW, dramPower              *Series

	prevIssued              uint64
	prevL1Hits, prevL1Acc   uint64
	prevL2LHits, prevL2LAcc uint64
	prevL2RHits, prevL2RAcc uint64
	prevDRAM                uint64
}

// rate is hits/accesses over a window, 0 for an idle window.
func rate(hits, accesses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(hits) / float64(accesses)
}

func (p *socketProbe) sample(now sim.Time) {
	var warps, ready, waitComp, waitMem int
	var issued, l1Hits, l1Acc uint64
	for i, sm := range p.sock.SMs {
		warps += sm.ResidentWarps()
		st := sm.DebugStates()
		ready += st[0]
		waitComp += st[1]
		waitMem += st[2]
		issued += sm.Issued.Value()
		l1 := p.sock.L1(i)
		l1Hits += l1.Hit[mem.ClassLocal].Hits.Value() + l1.Hit[mem.ClassRemote].Hits.Value()
		l1Acc += l1.Hit[mem.ClassLocal].Accesses() + l1.Hit[mem.ClassRemote].Accesses()
	}
	p.occ.record(now, float64(warps)/float64(len(p.sock.SMs)*p.cfg.MaxWarpsPerSM))
	denom := float64(warps)
	if denom == 0 {
		denom = 1
	}
	p.ready.record(now, float64(ready)/denom)
	p.waitComp.record(now, float64(waitComp)/denom)
	p.waitMem.record(now, float64(waitMem)/denom)
	p.ipc.record(now, float64(issued-p.prevIssued)/float64(p.period))
	p.prevIssued = issued

	p.l1Hit.record(now, rate(l1Hits-p.prevL1Hits, l1Acc-p.prevL1Acc))
	p.prevL1Hits, p.prevL1Acc = l1Hits, l1Acc

	l2 := p.sock.L2()
	lh := l2.Hit[mem.ClassLocal].Hits.Value()
	la := l2.Hit[mem.ClassLocal].Accesses()
	rh := l2.Hit[mem.ClassRemote].Hits.Value()
	ra := l2.Hit[mem.ClassRemote].Accesses()
	p.l2LocalHit.record(now, rate(lh-p.prevL2LHits, la-p.prevL2LAcc))
	p.l2RemoteHit.record(now, rate(rh-p.prevL2RHits, ra-p.prevL2RAcc))
	p.prevL2LHits, p.prevL2LAcc = lh, la
	p.prevL2RHits, p.prevL2RAcc = rh, ra

	l1p, l2p, rmp := p.sock.DebugPending()
	p.mshr.record(now, float64(l1p+l2p+rmp))

	db := p.sock.DRAM().Bytes.Total()
	delta := db - p.prevDRAM
	p.prevDRAM = db
	p.dramBW.record(now, float64(delta)/(p.cfg.DRAMBandwidth*float64(p.period)))
	p.dramPower.record(now, float64(delta)*8*DRAMEnergyPerBit/(float64(p.period)*1e-9))
}

// fabricProbe samples every physical link: per-direction utilization
// as deltas of the lifetime byte counters against the current lane
// bandwidth, queue depth as the serialization backlog in cycles, and
// communication power at the Section 6 energy per bit.
type fabricProbe struct {
	eng    *sim.Engine
	period sim.Time
	links  []linkProbe
}

type linkProbe struct {
	link                           *xlink.Link
	egUtil, inUtil, backlog, power *Series
	prevEg, prevIn                 uint64
}

func (p *fabricProbe) sample(now sim.Time) {
	for i := range p.links {
		lp := &p.links[i]
		eg := lp.link.Sent[xlink.Egress].Value()
		in := lp.link.Sent[xlink.Ingress].Value()
		dEg, dIn := eg-lp.prevEg, in-lp.prevIn
		lp.prevEg, lp.prevIn = eg, in
		lp.egUtil.record(now, float64(dEg)/(lp.link.Bandwidth(xlink.Egress)*float64(p.period)))
		lp.inUtil.record(now, float64(dIn)/(lp.link.Bandwidth(xlink.Ingress)*float64(p.period)))
		bk := lp.link.Backlog(xlink.Egress, now)
		if b := lp.link.Backlog(xlink.Ingress, now); b > bk {
			bk = b
		}
		lp.backlog.record(now, float64(bk))
		lp.power.record(now, float64(dEg+dIn)*8*InterconnectEnergyPerBit/(float64(p.period)*1e-9))
	}
}
