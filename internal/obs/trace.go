package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Trace is the preallocated Chrome-trace event ring. Every recorded
// event is a complete span ("X" phase): kernel waves and flush/drain
// phases from the runtime, cross-socket transfers from the remote
// protocol. Names are interned once into a table so the append path
// carries only an index — Span is allocation-free. A full ring drops
// new events (keeping the run's opening structure) and counts them.
type Trace struct {
	names   []string
	byName  map[string]int32
	events  []traceEvent
	dropped uint64
}

type traceEvent struct {
	name     int32
	pid, tid int32
	ts, dur  sim.Time
}

func newTrace(capEvents int) *Trace {
	return &Trace{
		byName: make(map[string]int32),
		events: make([]traceEvent, 0, capEvents),
	}
}

// Intern returns the table index for name, adding it on first sight
// (the only allocating path; callers intern at construction time and
// append with the index).
func (t *Trace) Intern(name string) int32 {
	if id, ok := t.byName[name]; ok {
		return id
	}
	id := int32(len(t.names))
	t.names = append(t.names, name)
	t.byName[name] = id
	return id
}

// Span records one complete event on track (pid, tid) from start to
// end. Zero-alloc; events past the ring capacity are dropped and
// counted.
func (t *Trace) Span(name, pid, tid int32, start, end sim.Time) {
	if len(t.events) == cap(t.events) {
		t.dropped++
		return
	}
	t.events = append(t.events, traceEvent{name: name, pid: pid, tid: tid, ts: start, dur: end - start})
}

// Len reports the number of retained events.
func (t *Trace) Len() int { return len(t.events) }

// Dropped reports events lost to ring exhaustion.
func (t *Trace) Dropped() uint64 { return t.dropped }

// WriteJSON flushes the ring as a Chrome trace (load chrome://tracing
// or https://ui.perfetto.dev). procNames labels the pid tracks via
// process_name metadata events. Events are sorted by (pid, tid, ts,
// dur, name) so the output is deterministic and each track's
// timestamps are monotonic. ts/dur are microseconds (the format's
// unit); at the model's 1GHz clock one cycle is 1ns = 0.001us.
//
// The encoding is hand-rolled: a full ring is 64Ki spans, and at one
// flush per observed run the reflection-based sort plus per-event
// encoding/json round trips dominated the whole observability
// overhead. Only the interned names and the proc names go through
// json.Marshal (for escaping), once each; spans are appended with
// strconv through one bufio.Writer.
func (t *Trace) WriteJSON(w io.Writer, procNames []string) error {
	evs := make([]traceEvent, len(t.events))
	copy(evs, t.events)
	names := t.names
	slices.SortStableFunc(evs, func(a, b traceEvent) int {
		if a.pid != b.pid {
			return int(a.pid) - int(b.pid)
		}
		if a.tid != b.tid {
			return int(a.tid) - int(b.tid)
		}
		if a.ts != b.ts {
			if a.ts < b.ts {
				return -1
			}
			return 1
		}
		if a.dur != b.dur {
			if a.dur < b.dur {
				return -1
			}
			return 1
		}
		return strings.Compare(names[a.name], names[b.name])
	})
	quoted := make([][]byte, len(names))
	for i, n := range names {
		q, err := json.Marshal(n)
		if err != nil {
			return err
		}
		quoted[i] = q
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"traceEvents":[`)
	for pid, name := range procNames {
		q, err := json.Marshal(name)
		if err != nil {
			return err
		}
		if pid > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`{"name":"process_name","ph":"M","ts":0,"pid":`)
		bw.WriteString(strconv.Itoa(pid))
		bw.WriteString(`,"tid":0,"args":{"name":`)
		bw.Write(q)
		bw.WriteString(`}}`)
	}
	var num []byte
	for i, e := range evs {
		if i > 0 || len(procNames) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`{"name":`)
		bw.Write(quoted[e.name])
		bw.WriteString(`,"ph":"X","ts":`)
		num = strconv.AppendFloat(num[:0], float64(e.ts)/1000, 'f', -1, 64)
		bw.Write(num)
		if e.dur != 0 {
			bw.WriteString(`,"dur":`)
			num = strconv.AppendFloat(num[:0], float64(e.dur)/1000, 'f', -1, 64)
			bw.Write(num)
		}
		bw.WriteString(`,"pid":`)
		num = strconv.AppendInt(num[:0], int64(e.pid), 10)
		bw.Write(num)
		bw.WriteString(`,"tid":`)
		num = strconv.AppendInt(num[:0], int64(e.tid), 10)
		bw.Write(num)
		bw.WriteByte('}')
	}
	bw.WriteString(`],"displayTimeUnit":"ns"`)
	if t.dropped > 0 {
		bw.WriteString(`,"otherData":{"dropped_events":`)
		bw.WriteString(strconv.FormatUint(t.dropped, 10))
		bw.WriteString(`}`)
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

// WriteTrace flushes the collector's trace ring with per-socket process
// names plus the trailing "runtime" track used for flush/drain phases.
// It is an error to call it when the spec did not request tracing.
func (c *Collector) WriteTrace(w io.Writer) error {
	names := make([]string, c.nProcs)
	for i := 0; i < c.nProcs-1; i++ {
		names[i] = fmt.Sprintf("socket%d", i)
	}
	if c.nProcs > 0 {
		names[c.nProcs-1] = "runtime"
	}
	return c.trace.WriteJSON(w, names)
}
