package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// WriteSeriesCSV flushes every series as long-format CSV: one
// "series,cycle,value" row per retained sample, series in registration
// order, samples in time order. The format is the golden-fixture
// surface (internal/exp TestObsSeriesGolden), so changes here are
// schema changes. Rows are appended with strconv rather than fmt —
// 'g'/-1 is the same shortest representation as fmt's %g, pinned by
// the golden — because one flush per observed run over every retained
// sample made fmt the dominant sampling-path overhead.
func (c *Collector) WriteSeriesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("series,cycle,value\n")
	var num []byte
	for _, s := range c.series {
		for i := 0; i < s.Len(); i++ {
			p := s.At(i)
			bw.WriteString(s.Name)
			bw.WriteByte(',')
			num = strconv.AppendUint(num[:0], uint64(p.At), 10)
			bw.Write(num)
			bw.WriteByte(',')
			num = strconv.AppendFloat(num[:0], p.Value, 'g', -1, 64)
			bw.Write(num)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// SeriesDoc is the JSON flush shape, also embedded in numagpud sweep
// results when a sweep requests observation.
type SeriesDoc struct {
	SamplePeriod int         `json:"sample_period"`
	Series       []SeriesOut `json:"series"`
}

// SeriesOut is one series in the JSON flush: samples as [cycle, value]
// pairs in time order.
type SeriesOut struct {
	Name    string       `json:"name"`
	Socket  int          `json:"socket"`
	Dropped uint64       `json:"dropped,omitempty"`
	Samples [][2]float64 `json:"samples"`
}

// SeriesDocument builds the JSON flush value (flush-time allocation is
// unconstrained).
func (c *Collector) SeriesDocument() SeriesDoc {
	doc := SeriesDoc{SamplePeriod: c.spec.SamplePeriod}
	for _, s := range c.series {
		out := SeriesOut{Name: s.Name, Socket: s.Socket, Dropped: s.Dropped(),
			Samples: make([][2]float64, 0, s.Len())}
		for i := 0; i < s.Len(); i++ {
			p := s.At(i)
			out.Samples = append(out.Samples, [2]float64{float64(p.At), p.Value})
		}
		doc.Series = append(doc.Series, out)
	}
	return doc
}

// WriteSeriesJSON flushes every series as one JSON document.
func (c *Collector) WriteSeriesJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(c.SeriesDocument())
}
