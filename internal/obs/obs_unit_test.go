package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

func TestCollectorDefaults(t *testing.T) {
	c := New(arch.ObsSpec{Series: true})
	spec := c.Spec()
	if spec.SamplePeriod != DefaultSamplePeriod || spec.MaxSamples != DefaultMaxSamples || spec.MaxTraceEvents != DefaultMaxTraceEvents {
		t.Fatalf("zero fields not defaulted: %+v", spec)
	}
	if c.Trace() != nil {
		t.Fatal("trace ring built without Trace in the spec")
	}
	if tc := New(arch.ObsSpec{Trace: true}); tc.Trace() == nil {
		t.Fatal("Trace requested but no ring")
	}
}

func TestSeriesRingWraparound(t *testing.T) {
	c := New(arch.ObsSpec{Series: true, MaxSamples: 4})
	s := c.newSeries("t/x", 0)
	for i := 1; i <= 3; i++ {
		s.record(sim100(i), float64(i))
	}
	if s.Len() != 3 || s.Dropped() != 0 {
		t.Fatalf("pre-wrap: len %d dropped %d", s.Len(), s.Dropped())
	}
	for i := 4; i <= 10; i++ {
		s.record(sim100(i), float64(i))
	}
	// Capacity 4, 10 recorded: the last 4 retained in time order, 6 dropped.
	if s.Len() != 4 || s.Dropped() != 6 {
		t.Fatalf("post-wrap: len %d dropped %d, want 4 and 6", s.Len(), s.Dropped())
	}
	for i := 0; i < 4; i++ {
		want := float64(7 + i)
		if p := s.At(i); p.Value != want || p.At != sim100(7+i) {
			t.Fatalf("At(%d) = %+v, want value %g", i, p, want)
		}
	}
}

func sim100(i int) sim.Time { return sim.Time(i * 100) }

func TestTraceInternAndDrop(t *testing.T) {
	tr := newTrace(2)
	a := tr.Intern("a")
	if again := tr.Intern("a"); again != a {
		t.Fatalf("re-interning changed the id: %d vs %d", again, a)
	}
	b := tr.Intern("b")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	tr.Span(a, 0, 0, 10, 20)
	tr.Span(b, 0, 0, 20, 30)
	tr.Span(a, 0, 0, 30, 40) // ring full: dropped
	if tr.Len() != 2 || tr.Dropped() != 1 {
		t.Fatalf("len %d dropped %d, want 2 and 1", tr.Len(), tr.Dropped())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, []string{"p0"}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 { // 1 metadata + 2 spans
		t.Fatalf("%d events, want 3", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Name != "process_name" {
		t.Fatalf("first event is not process metadata: %+v", doc.TraceEvents[0])
	}
	if doc.OtherData["dropped_events"] != float64(1) {
		t.Fatalf("dropped_events = %v, want 1", doc.OtherData["dropped_events"])
	}
}

// TestWriteJSONSortsSpans records spans out of track/time order and
// requires the flush to emit them sorted by (pid, tid, ts) — the
// monotonicity property viewers rely on.
func TestWriteJSONSortsSpans(t *testing.T) {
	tr := newTrace(8)
	n := tr.Intern("s")
	tr.Span(n, 1, 0, 500, 600)
	tr.Span(n, 0, 1, 300, 400)
	tr.Span(n, 0, 0, 200, 250)
	tr.Span(n, 0, 0, 100, 150)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ts       float64 `json:"ts"`
			Pid, Tid int
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	prev := doc.TraceEvents[0]
	for _, e := range doc.TraceEvents[1:] {
		if e.Pid < prev.Pid ||
			(e.Pid == prev.Pid && e.Tid < prev.Tid) ||
			(e.Pid == prev.Pid && e.Tid == prev.Tid && e.Ts < prev.Ts) {
			t.Fatalf("spans not sorted: %+v after %+v", e, prev)
		}
		prev = e
	}
}

func TestSeriesFlushFormats(t *testing.T) {
	c := New(arch.ObsSpec{Series: true, SamplePeriod: 100, MaxSamples: 8})
	a := c.newSeries("socket0/x", 0)
	b := c.newSeries("fabric/y", -1)
	a.record(100, 0.5)
	a.record(200, 0.25)
	b.record(100, 3)

	var csv bytes.Buffer
	if err := c.WriteSeriesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "series,cycle,value\nsocket0/x,100,0.5\nsocket0/x,200,0.25\nfabric/y,100,3\n"
	if csv.String() != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", csv.String(), want)
	}

	doc := c.SeriesDocument()
	if doc.SamplePeriod != 100 || len(doc.Series) != 2 {
		t.Fatalf("document: %+v", doc)
	}
	if doc.Series[0].Name != "socket0/x" || doc.Series[0].Socket != 0 ||
		len(doc.Series[0].Samples) != 2 || doc.Series[0].Samples[1] != [2]float64{200, 0.25} {
		t.Fatalf("series[0]: %+v", doc.Series[0])
	}
	if doc.Series[1].Socket != -1 {
		t.Fatalf("fabric series socket = %d, want -1", doc.Series[1].Socket)
	}

	var js bytes.Buffer
	if err := c.WriteSeriesJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back SeriesDoc
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("series JSON does not round-trip: %v", err)
	}
	if back.SamplePeriod != 100 || len(back.Series) != 2 {
		t.Fatalf("round-tripped document: %+v", back)
	}
}
