// Package vmm models the unified virtual memory of the NUMA GPU: a
// system-wide page table mapping pages to GPU sockets under the three
// placement policies contrasted in Section 3 of Milic et al. —
// fine-grained interleaving (the single-GPU policy extended across
// sockets), Linux-style round-robin page interleaving, and UVM
// first-touch migration.
package vmm

import (
	"repro/internal/arch"
	"repro/internal/stats"
)

// Memory is the system-wide page table and placement policy.
type Memory struct {
	sockets int
	policy  arch.MemPlacement
	pages   map[arch.PageID]arch.SocketID

	// Migrations counts first-touch placements (page migrations from
	// system memory into a GPU's local memory).
	Migrations stats.Counter
}

// New builds a memory map for a system with the given socket count and
// placement policy.
func New(sockets int, policy arch.MemPlacement) *Memory {
	m := &Memory{sockets: sockets, policy: policy}
	if policy == arch.PlaceFirstTouch {
		m.pages = make(map[arch.PageID]arch.SocketID, 1<<12)
	}
	return m
}

// Sockets reports the socket count.
func (m *Memory) Sockets() int { return m.sockets }

// Policy reports the placement policy.
func (m *Memory) Policy() arch.MemPlacement { return m.policy }

// Owner resolves the home socket of the line l for a request issued by
// requester. Under first touch, an unmapped page is placed on the
// requester's socket (on-demand migration from system memory).
func (m *Memory) Owner(l arch.LineID, requester arch.SocketID) arch.SocketID {
	if m.sockets == 1 {
		return 0
	}
	switch m.policy {
	case arch.PlaceFineInterleave:
		unit := uint64(l.Addr()) / arch.FineInterleaveGranularity
		return arch.SocketID(unit % uint64(m.sockets))
	case arch.PlacePageInterleave:
		return arch.SocketID(uint64(arch.PageOfLine(l)) % uint64(m.sockets))
	default: // PlaceFirstTouch
		p := arch.PageOfLine(l)
		if s, ok := m.pages[p]; ok {
			return s
		}
		m.pages[p] = requester
		m.Migrations.Inc()
		return requester
	}
}

// Peek resolves the home socket without triggering first-touch
// placement; ok is false when the page is still in system memory.
func (m *Memory) Peek(l arch.LineID) (arch.SocketID, bool) {
	if m.sockets == 1 {
		return 0, true
	}
	switch m.policy {
	case arch.PlaceFineInterleave:
		unit := uint64(l.Addr()) / arch.FineInterleaveGranularity
		return arch.SocketID(unit % uint64(m.sockets)), true
	case arch.PlacePageInterleave:
		return arch.SocketID(uint64(arch.PageOfLine(l)) % uint64(m.sockets)), true
	default:
		s, ok := m.pages[arch.PageOfLine(l)]
		return s, ok
	}
}

// Preplace pins every page in [start, start+size) to socket s,
// regardless of policy (meaningful only under first touch, where it
// models data touched by an earlier phase, e.g. initialization output
// buffers). Other policies ignore it.
func (m *Memory) Preplace(start arch.Addr, size int64, s arch.SocketID) {
	if m.policy != arch.PlaceFirstTouch || m.sockets == 1 {
		return
	}
	first := arch.PageOf(start)
	last := arch.PageOf(start + arch.Addr(size-1))
	for p := first; p <= last; p++ {
		m.pages[p] = s
	}
}

// PreplaceInterleave pins the pages of [start, start+size) round-robin
// across all sockets (under first touch only): the placement a striped
// initialization kernel would have produced for shared data structures.
func (m *Memory) PreplaceInterleave(start arch.Addr, size int64) {
	if m.policy != arch.PlaceFirstTouch || m.sockets == 1 {
		return
	}
	first := arch.PageOf(start)
	last := arch.PageOf(start + arch.Addr(size-1))
	for p := first; p <= last; p++ {
		m.pages[p] = arch.SocketID(uint64(p-first) % uint64(m.sockets))
	}
}

// MappedPages reports how many pages have a first-touch mapping.
func (m *Memory) MappedPages() int { return len(m.pages) }

// DistributionOf reports, per socket, the fraction of mapped pages it
// owns (first touch only; interleave policies are uniform by
// construction). Useful for asserting locality in tests.
func (m *Memory) DistributionOf() []float64 {
	out := make([]float64, m.sockets)
	if len(m.pages) == 0 {
		return out
	}
	for _, s := range m.pages {
		out[s]++
	}
	n := float64(len(m.pages))
	for i := range out {
		out[i] /= n
	}
	return out
}
