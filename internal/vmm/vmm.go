// Package vmm models the unified virtual memory of the NUMA GPU: a
// system-wide page table mapping pages to GPU sockets under the three
// placement policies contrasted in Section 3 of Milic et al. —
// fine-grained interleaving (the single-GPU policy extended across
// sockets), Linux-style round-robin page interleaving, and UVM
// first-touch migration.
package vmm

import (
	"repro/internal/arch"
	"repro/internal/stats"
)

// Memory is the system-wide page table and placement policy.
type Memory struct {
	sockets int
	policy  arch.MemPlacement
	pages   pageTable

	// schedule is the weighted interleave round: a socket of weight w
	// appears w times, round-major (one slot per socket with remaining
	// weight per pass), so low-weight sockets still receive early slots.
	// Nil means uniform, in which case the interleave policies reduce to
	// the plain `unit % sockets` of the paper.
	schedule []arch.SocketID

	// Migrations counts first-touch placements (page migrations from
	// system memory into a GPU's local memory).
	Migrations stats.Counter
}

// New builds a memory map for a system with the given socket count and
// placement policy.
func New(sockets int, policy arch.MemPlacement) *Memory {
	return NewWeighted(sockets, policy, nil)
}

// NewWeighted is New with per-socket interleave weights taken from the
// system topology: a socket of weight w receives w of every
// sum(weights) interleave units (and pages, and preplaced-interleave
// pages). weights may be nil or all-equal for the uniform behaviour;
// otherwise len(weights) must equal sockets and every weight must be
// >= 1.
func NewWeighted(sockets int, policy arch.MemPlacement, weights []int) *Memory {
	m := &Memory{sockets: sockets, policy: policy}
	if policy == arch.PlaceFirstTouch {
		m.pages.init(1 << 12)
	}
	if weights != nil {
		if len(weights) != sockets {
			panic("vmm: len(weights) != sockets")
		}
		uniform := true
		maxW := 0
		for _, w := range weights {
			if w < 1 {
				panic("vmm: interleave weights must be >= 1")
			}
			if w != weights[0] {
				uniform = false
			}
			if w > maxW {
				maxW = w
			}
		}
		if !uniform {
			for pass := 0; pass < maxW; pass++ {
				for s, w := range weights {
					if w > pass {
						m.schedule = append(m.schedule, arch.SocketID(s))
					}
				}
			}
		}
	}
	return m
}

// interleave maps interleave unit u (a 256B group, a page, ...) to its
// socket under the weighted schedule.
func (m *Memory) interleave(u uint64) arch.SocketID {
	if m.schedule == nil {
		return arch.SocketID(u % uint64(m.sockets))
	}
	return m.schedule[u%uint64(len(m.schedule))]
}

// Sockets reports the socket count.
func (m *Memory) Sockets() int { return m.sockets }

// Policy reports the placement policy.
func (m *Memory) Policy() arch.MemPlacement { return m.policy }

// Owner resolves the home socket of the line l for a request issued by
// requester. Under first touch, an unmapped page is placed on the
// requester's socket (on-demand migration from system memory). This is
// the datapath's per-access lookup, so the first-touch table is
// open-addressed rather than a Go map (see pageTable).
func (m *Memory) Owner(l arch.LineID, requester arch.SocketID) arch.SocketID {
	if m.sockets == 1 {
		return 0
	}
	switch m.policy {
	case arch.PlaceFineInterleave:
		return m.interleave(uint64(l.Addr()) / arch.FineInterleaveGranularity)
	case arch.PlacePageInterleave:
		return m.interleave(uint64(arch.PageOfLine(l)))
	default: // PlaceFirstTouch
		p := arch.PageOfLine(l)
		if s, ok := m.pages.get(p); ok {
			return s
		}
		m.pages.put(p, requester)
		m.Migrations.Inc()
		return requester
	}
}

// Peek resolves the home socket without triggering first-touch
// placement; ok is false when the page is still in system memory.
func (m *Memory) Peek(l arch.LineID) (arch.SocketID, bool) {
	if m.sockets == 1 {
		return 0, true
	}
	switch m.policy {
	case arch.PlaceFineInterleave:
		return m.interleave(uint64(l.Addr()) / arch.FineInterleaveGranularity), true
	case arch.PlacePageInterleave:
		return m.interleave(uint64(arch.PageOfLine(l))), true
	default:
		return m.pages.get(arch.PageOfLine(l))
	}
}

// Preplace pins every page in [start, start+size) to socket s,
// regardless of policy (meaningful only under first touch, where it
// models data touched by an earlier phase, e.g. initialization output
// buffers). Other policies ignore it.
func (m *Memory) Preplace(start arch.Addr, size int64, s arch.SocketID) {
	if m.policy != arch.PlaceFirstTouch || m.sockets == 1 {
		return
	}
	first := arch.PageOf(start)
	last := arch.PageOf(start + arch.Addr(size-1))
	for p := first; p <= last; p++ {
		m.pages.put(p, s)
	}
}

// PreplaceInterleave pins the pages of [start, start+size) round-robin
// across all sockets (under first touch only): the placement a striped
// initialization kernel would have produced for shared data structures.
func (m *Memory) PreplaceInterleave(start arch.Addr, size int64) {
	if m.policy != arch.PlaceFirstTouch || m.sockets == 1 {
		return
	}
	first := arch.PageOf(start)
	last := arch.PageOf(start + arch.Addr(size-1))
	for p := first; p <= last; p++ {
		m.pages.put(p, m.interleave(uint64(p-first)))
	}
}

// MappedPages reports how many pages have a first-touch mapping.
func (m *Memory) MappedPages() int { return m.pages.n }

// DistributionOf reports, per socket, the fraction of mapped pages it
// owns (first touch only; interleave policies are uniform by
// construction). Useful for asserting locality in tests.
func (m *Memory) DistributionOf() []float64 {
	out := make([]float64, m.sockets)
	if m.pages.n == 0 {
		return out
	}
	for i := range m.pages.entries {
		if m.pages.entries[i].used {
			out[m.pages.entries[i].val]++
		}
	}
	n := float64(m.pages.n)
	for i := range out {
		out[i] /= n
	}
	return out
}

// pageEntry is one first-touch mapping.
type pageEntry struct {
	key  arch.PageID
	val  arch.SocketID
	used bool
}

// pageTable is the first-touch page table: open addressing with linear
// probing, Fibonacci hashing on the top bits, doubling at 3/4 load.
// Pages are never unmapped, so there is no deletion. Compared to the Go
// map it replaces, a warm lookup is one multiply plus a short probe run
// with no hash-function call, and insertion never allocates outside the
// amortized doubling. Nothing order-dependent ever iterates it
// (DistributionOf sums per-socket counts), so probe layout cannot leak
// into simulation behaviour.
//
// The probe/grow core intentionally mirrors gpu's mshrTable (which
// additionally supports deletion and waiter chains); a fix to either
// table's probing or resize logic almost certainly applies to both.
type pageTable struct {
	entries []pageEntry
	shift   uint // 64 - log2(len(entries))
	n       int
}

// pageFibMul is the 64-bit Fibonacci-hashing multiplier (same constant
// as gpu's fibMul; the packages are peers, so it is re-declared).
const pageFibMul = 0x9E3779B97F4A7C15

func (t *pageTable) init(capacity int) {
	c := 8
	for c < capacity {
		c <<= 1
	}
	t.entries = make([]pageEntry, c)
	t.shift = uint(64 - pageLog2(c))
	t.n = 0
}

func pageLog2(pow2 int) int {
	b := 0
	for pow2 > 1 {
		pow2 >>= 1
		b++
	}
	return b
}

func (t *pageTable) slotOf(key arch.PageID) int {
	return int((uint64(key) * pageFibMul) >> t.shift)
}

// get reports the mapped socket of key, if present.
func (t *pageTable) get(key arch.PageID) (arch.SocketID, bool) {
	if len(t.entries) == 0 {
		return 0, false
	}
	mask := len(t.entries) - 1
	for i := t.slotOf(key); ; i = (i + 1) & mask {
		e := &t.entries[i]
		if !e.used {
			return 0, false
		}
		if e.key == key {
			return e.val, true
		}
	}
}

// put maps key to val, overwriting any existing mapping.
func (t *pageTable) put(key arch.PageID, val arch.SocketID) {
	if len(t.entries) == 0 {
		t.init(8)
	} else if 4*(t.n+1) > 3*len(t.entries) {
		t.grow()
	}
	mask := len(t.entries) - 1
	i := t.slotOf(key)
	for t.entries[i].used {
		if t.entries[i].key == key {
			t.entries[i].val = val
			return
		}
		i = (i + 1) & mask
	}
	t.entries[i] = pageEntry{key: key, val: val, used: true}
	t.n++
}

func (t *pageTable) grow() {
	old := t.entries
	t.entries = make([]pageEntry, 2*len(old))
	t.shift--
	mask := len(t.entries) - 1
	for i := range old {
		if !old[i].used {
			continue
		}
		j := t.slotOf(old[i].key)
		for t.entries[j].used {
			j = (j + 1) & mask
		}
		t.entries[j] = old[i]
	}
}
