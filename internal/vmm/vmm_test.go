package vmm

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestSingleSocketAlwaysLocal(t *testing.T) {
	m := New(1, arch.PlaceFirstTouch)
	for l := arch.LineID(0); l < 1000; l += 13 {
		if m.Owner(l, 0) != 0 {
			t.Fatal("single socket must own everything")
		}
	}
}

func TestFineInterleave(t *testing.T) {
	m := New(4, arch.PlaceFineInterleave)
	// 256B granularity: lines 0,1 → socket 0; lines 2,3 → socket 1; ...
	cases := []struct {
		line arch.LineID
		want arch.SocketID
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {6, 3}, {8, 0}}
	for _, tc := range cases {
		if got := m.Owner(tc.line, 3); got != tc.want {
			t.Fatalf("line %d → socket %d, want %d", tc.line, got, tc.want)
		}
	}
}

func TestFineInterleaveRemoteFraction(t *testing.T) {
	// The paper: fine interleaving makes 75% of accesses remote on 4
	// sockets, regardless of requester.
	m := New(4, arch.PlaceFineInterleave)
	remote := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if m.Owner(arch.LineID(i), 1) != 1 {
			remote++
		}
	}
	frac := float64(remote) / n
	if frac < 0.74 || frac > 0.76 {
		t.Fatalf("remote fraction %v, want 0.75", frac)
	}
}

func TestPageInterleave(t *testing.T) {
	m := New(4, arch.PlacePageInterleave)
	linesPerPage := arch.PageSize / arch.LineSize
	for p := 0; p < 16; p++ {
		want := arch.SocketID(p % 4)
		l := arch.LineID(p * linesPerPage)
		if got := m.Owner(l, 2); got != want {
			t.Fatalf("page %d → socket %d, want %d", p, got, want)
		}
		// All lines of one page share an owner.
		if got := m.Owner(l+arch.LineID(linesPerPage-1), 0); got != want {
			t.Fatalf("page %d tail line disagrees", p)
		}
	}
}

func TestFirstTouch(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	l := arch.LineID(12345)
	if got := m.Owner(l, 2); got != 2 {
		t.Fatalf("first touch by socket 2 placed on %d", got)
	}
	// Subsequent touches by anyone resolve to the first toucher.
	for s := arch.SocketID(0); s < 4; s++ {
		if got := m.Owner(l, s); got != 2 {
			t.Fatalf("socket %d sees owner %d, want 2", s, got)
		}
	}
	if m.Migrations.Value() != 1 {
		t.Fatalf("migrations %d, want 1", m.Migrations.Value())
	}
}

func TestPeekDoesNotPlace(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	if _, ok := m.Peek(99); ok {
		t.Fatal("peek must not report unmapped pages")
	}
	if m.MappedPages() != 0 {
		t.Fatal("peek must not place pages")
	}
	m.Owner(99, 1)
	if s, ok := m.Peek(99); !ok || s != 1 {
		t.Fatal("peek must see placed page")
	}
}

func TestPreplace(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	m.Preplace(0, 4*arch.PageSize, 3)
	for p := 0; p < 4; p++ {
		l := arch.LineID(p * (arch.PageSize / arch.LineSize))
		if got := m.Owner(l, 0); got != 3 {
			t.Fatalf("preplaced page %d owned by %d, want 3", p, got)
		}
	}
	// Preplace is a no-op for interleave policies.
	mi := New(4, arch.PlacePageInterleave)
	mi.Preplace(0, 4*arch.PageSize, 3)
	if mi.Owner(0, 0) != 0 {
		t.Fatal("preplace must not affect page interleave")
	}
}

func TestPreplaceInterleave(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	m.PreplaceInterleave(0, 8*arch.PageSize)
	linesPerPage := arch.PageSize / arch.LineSize
	for p := 0; p < 8; p++ {
		want := arch.SocketID(p % 4)
		if got := m.Owner(arch.LineID(p*linesPerPage), 0); got != want {
			t.Fatalf("page %d owned by %d, want %d", p, got, want)
		}
	}
}

func TestDistribution(t *testing.T) {
	m := New(2, arch.PlaceFirstTouch)
	m.Owner(0, 0)
	linesPerPage := arch.LineID(arch.PageSize / arch.LineSize)
	m.Owner(linesPerPage, 1)
	m.Owner(2*linesPerPage, 1)
	d := m.DistributionOf()
	if d[0] < 0.33 || d[0] > 0.34 || d[1] < 0.66 || d[1] > 0.67 {
		t.Fatalf("distribution %v, want [1/3 2/3]", d)
	}
	empty := New(2, arch.PlaceFirstTouch)
	if d := empty.DistributionOf(); d[0] != 0 || d[1] != 0 {
		t.Fatal("empty distribution must be zero")
	}
}

// TestPageTableGrowthAndOverwrite drives the open-addressed first-touch
// table far past its initial capacity and through colliding, sequential
// and re-put keys, comparing against a map reference — the properties
// the datapath relies on after the Go-map replacement.
func TestPageTableGrowthAndOverwrite(t *testing.T) {
	var pt pageTable
	pt.init(8)
	ref := map[arch.PageID]arch.SocketID{}
	put := func(p arch.PageID, s arch.SocketID) {
		pt.put(p, s)
		ref[p] = s
	}
	// Sequential pages (the common streaming pattern), sparse strides,
	// and overwrites.
	for i := 0; i < 10000; i++ {
		put(arch.PageID(i), arch.SocketID(i%4))
	}
	for i := 0; i < 3000; i++ {
		put(arch.PageID(i*977), arch.SocketID((i+1)%4))
	}
	for i := 0; i < 500; i++ {
		put(arch.PageID(i), arch.SocketID(3))
	}
	if pt.n != len(ref) {
		t.Fatalf("table n=%d, ref %d", pt.n, len(ref))
	}
	for p, want := range ref {
		got, ok := pt.get(p)
		if !ok || got != want {
			t.Fatalf("page %d → (%d,%v), want (%d,true)", p, got, ok, want)
		}
	}
	if _, ok := pt.get(arch.PageID(1 << 40)); ok {
		t.Fatal("absent key found")
	}
	// Zero value works too (Preplace before any Owner call path).
	var zero pageTable
	if _, ok := zero.get(0); ok {
		t.Fatal("zero-value table must be empty")
	}
	zero.put(7, 2)
	if s, ok := zero.get(7); !ok || s != 2 {
		t.Fatal("zero-value table put/get broken")
	}
}

// TestPageTablePageZero pins that PageID 0 is a valid key (address 0 is
// in the modelled address space; a sentinel-based table would lose it).
func TestPageTablePageZero(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	if got := m.Owner(0, 3); got != 3 {
		t.Fatalf("line 0 first touch → %d, want 3", got)
	}
	if s, ok := m.Peek(0); !ok || s != 3 {
		t.Fatal("peek of page 0 lost")
	}
	if m.MappedPages() != 1 {
		t.Fatalf("mapped pages %d, want 1", m.MappedPages())
	}
}

// TestPropertyFirstTouchStable: once placed, ownership never changes no
// matter who asks afterwards.
func TestPropertyFirstTouchStable(t *testing.T) {
	f := func(lines []uint32, touchers []uint8) bool {
		if len(touchers) == 0 {
			return true
		}
		m := New(4, arch.PlaceFirstTouch)
		owner := map[arch.LineID]arch.SocketID{}
		for i, raw := range lines {
			l := arch.LineID(raw % 4096)
			s := arch.SocketID(touchers[i%len(touchers)] % 4)
			got := m.Owner(l, s)
			p := arch.PageOfLine(l)
			key := arch.LineID(p) // track per page
			if prev, ok := owner[key]; ok {
				if got != prev {
					return false
				}
			} else {
				owner[key] = got
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInterleaveDeterministic: interleave policies ignore the
// requester entirely.
func TestPropertyInterleaveDeterministic(t *testing.T) {
	f := func(raw uint32, r1, r2 uint8) bool {
		l := arch.LineID(raw)
		for _, pol := range []arch.MemPlacement{arch.PlaceFineInterleave, arch.PlacePageInterleave} {
			m := New(4, pol)
			if m.Owner(l, arch.SocketID(r1%4)) != m.Owner(l, arch.SocketID(r2%4)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedInterleave: a socket of weight w receives w of every
// sum(weights) interleave units, and uniform weights reduce to the
// legacy round-robin exactly.
func TestWeightedInterleave(t *testing.T) {
	m := NewWeighted(3, arch.PlacePageInterleave, []int{2, 1, 1})
	counts := make(map[arch.SocketID]int)
	const pages = 4000 // 1000 rounds of the 4-slot schedule
	for p := 0; p < pages; p++ {
		l := arch.LineID(arch.PageID(p) << (arch.PageShift - arch.LineShift))
		counts[m.Owner(l, 0)]++
	}
	if counts[0] != 2000 || counts[1] != 1000 || counts[2] != 1000 {
		t.Fatalf("weighted distribution %v, want 2000/1000/1000", counts)
	}

	// Round-major: socket 1's first slot arrives in the first pass, not
	// after all of socket 0's.
	first := make(map[arch.SocketID]bool)
	var order []arch.SocketID
	for p := 0; p < 4; p++ {
		l := arch.LineID(arch.PageID(p) << (arch.PageShift - arch.LineShift))
		s := m.Owner(l, 0)
		if !first[s] {
			first[s] = true
			order = append(order, s)
		}
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("first-slot order %v, want [0 1 2]", order)
	}

	// Uniform weights must match the unweighted policy on every unit.
	u := NewWeighted(4, arch.PlaceFineInterleave, []int{3, 3, 3, 3})
	plain := New(4, arch.PlaceFineInterleave)
	for a := arch.Addr(0); a < 1<<14; a += 64 {
		l := arch.LineOf(a)
		if u.Owner(l, 0) != plain.Owner(l, 0) {
			t.Fatalf("uniform weights diverge from legacy interleave at %#x", a)
		}
	}
}

// TestWeightedPreplaceInterleave: preplaced striping follows the same
// weighted schedule as the interleave policies.
func TestWeightedPreplaceInterleave(t *testing.T) {
	m := NewWeighted(2, arch.PlaceFirstTouch, []int{3, 1})
	m.PreplaceInterleave(0, 8*arch.PageSize)
	dist := m.DistributionOf()
	if dist[0] != 0.75 || dist[1] != 0.25 {
		t.Fatalf("preplaced distribution %v, want [0.75 0.25]", dist)
	}
}
