package vmm

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestSingleSocketAlwaysLocal(t *testing.T) {
	m := New(1, arch.PlaceFirstTouch)
	for l := arch.LineID(0); l < 1000; l += 13 {
		if m.Owner(l, 0) != 0 {
			t.Fatal("single socket must own everything")
		}
	}
}

func TestFineInterleave(t *testing.T) {
	m := New(4, arch.PlaceFineInterleave)
	// 256B granularity: lines 0,1 → socket 0; lines 2,3 → socket 1; ...
	cases := []struct {
		line arch.LineID
		want arch.SocketID
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {6, 3}, {8, 0}}
	for _, tc := range cases {
		if got := m.Owner(tc.line, 3); got != tc.want {
			t.Fatalf("line %d → socket %d, want %d", tc.line, got, tc.want)
		}
	}
}

func TestFineInterleaveRemoteFraction(t *testing.T) {
	// The paper: fine interleaving makes 75% of accesses remote on 4
	// sockets, regardless of requester.
	m := New(4, arch.PlaceFineInterleave)
	remote := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if m.Owner(arch.LineID(i), 1) != 1 {
			remote++
		}
	}
	frac := float64(remote) / n
	if frac < 0.74 || frac > 0.76 {
		t.Fatalf("remote fraction %v, want 0.75", frac)
	}
}

func TestPageInterleave(t *testing.T) {
	m := New(4, arch.PlacePageInterleave)
	linesPerPage := arch.PageSize / arch.LineSize
	for p := 0; p < 16; p++ {
		want := arch.SocketID(p % 4)
		l := arch.LineID(p * linesPerPage)
		if got := m.Owner(l, 2); got != want {
			t.Fatalf("page %d → socket %d, want %d", p, got, want)
		}
		// All lines of one page share an owner.
		if got := m.Owner(l+arch.LineID(linesPerPage-1), 0); got != want {
			t.Fatalf("page %d tail line disagrees", p)
		}
	}
}

func TestFirstTouch(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	l := arch.LineID(12345)
	if got := m.Owner(l, 2); got != 2 {
		t.Fatalf("first touch by socket 2 placed on %d", got)
	}
	// Subsequent touches by anyone resolve to the first toucher.
	for s := arch.SocketID(0); s < 4; s++ {
		if got := m.Owner(l, s); got != 2 {
			t.Fatalf("socket %d sees owner %d, want 2", s, got)
		}
	}
	if m.Migrations.Value() != 1 {
		t.Fatalf("migrations %d, want 1", m.Migrations.Value())
	}
}

func TestPeekDoesNotPlace(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	if _, ok := m.Peek(99); ok {
		t.Fatal("peek must not report unmapped pages")
	}
	if m.MappedPages() != 0 {
		t.Fatal("peek must not place pages")
	}
	m.Owner(99, 1)
	if s, ok := m.Peek(99); !ok || s != 1 {
		t.Fatal("peek must see placed page")
	}
}

func TestPreplace(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	m.Preplace(0, 4*arch.PageSize, 3)
	for p := 0; p < 4; p++ {
		l := arch.LineID(p * (arch.PageSize / arch.LineSize))
		if got := m.Owner(l, 0); got != 3 {
			t.Fatalf("preplaced page %d owned by %d, want 3", p, got)
		}
	}
	// Preplace is a no-op for interleave policies.
	mi := New(4, arch.PlacePageInterleave)
	mi.Preplace(0, 4*arch.PageSize, 3)
	if mi.Owner(0, 0) != 0 {
		t.Fatal("preplace must not affect page interleave")
	}
}

func TestPreplaceInterleave(t *testing.T) {
	m := New(4, arch.PlaceFirstTouch)
	m.PreplaceInterleave(0, 8*arch.PageSize)
	linesPerPage := arch.PageSize / arch.LineSize
	for p := 0; p < 8; p++ {
		want := arch.SocketID(p % 4)
		if got := m.Owner(arch.LineID(p*linesPerPage), 0); got != want {
			t.Fatalf("page %d owned by %d, want %d", p, got, want)
		}
	}
}

func TestDistribution(t *testing.T) {
	m := New(2, arch.PlaceFirstTouch)
	m.Owner(0, 0)
	linesPerPage := arch.LineID(arch.PageSize / arch.LineSize)
	m.Owner(linesPerPage, 1)
	m.Owner(2*linesPerPage, 1)
	d := m.DistributionOf()
	if d[0] < 0.33 || d[0] > 0.34 || d[1] < 0.66 || d[1] > 0.67 {
		t.Fatalf("distribution %v, want [1/3 2/3]", d)
	}
	empty := New(2, arch.PlaceFirstTouch)
	if d := empty.DistributionOf(); d[0] != 0 || d[1] != 0 {
		t.Fatal("empty distribution must be zero")
	}
}

// TestPropertyFirstTouchStable: once placed, ownership never changes no
// matter who asks afterwards.
func TestPropertyFirstTouchStable(t *testing.T) {
	f := func(lines []uint32, touchers []uint8) bool {
		if len(touchers) == 0 {
			return true
		}
		m := New(4, arch.PlaceFirstTouch)
		owner := map[arch.LineID]arch.SocketID{}
		for i, raw := range lines {
			l := arch.LineID(raw % 4096)
			s := arch.SocketID(touchers[i%len(touchers)] % 4)
			got := m.Owner(l, s)
			p := arch.PageOfLine(l)
			key := arch.LineID(p) // track per page
			if prev, ok := owner[key]; ok {
				if got != prev {
					return false
				}
			} else {
				owner[key] = got
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInterleaveDeterministic: interleave policies ignore the
// requester entirely.
func TestPropertyInterleaveDeterministic(t *testing.T) {
	f := func(raw uint32, r1, r2 uint8) bool {
		l := arch.LineID(raw)
		for _, pol := range []arch.MemPlacement{arch.PlaceFineInterleave, arch.PlacePageInterleave} {
			m := New(4, pol)
			if m.Owner(l, arch.SocketID(r1%4)) != m.Owner(l, arch.SocketID(r2%4)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
