package core_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// testOptions shrinks workloads for unit testing.
func testOptions() workload.Options {
	return workload.Options{IterScale: 0.25, MaxCTAs: 96}
}

// TestSmokeSingleSocket runs a streaming workload on a tiny single GPU.
func TestSmokeSingleSocket(t *testing.T) {
	cfg := arch.TestConfig()
	cfg.Sockets = 1
	spec, ok := workload.ByName("Other-Stream-Triad")
	if !ok {
		t.Fatal("missing workload")
	}
	sys := core.MustSystem(cfg)
	res := sys.Run(spec.Program(testOptions()))
	if res.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if res.Instructions == 0 {
		t.Fatal("no instructions issued")
	}
	if res.RemoteAccessFraction != 0 {
		t.Fatalf("single socket must have zero remote accesses, got %v", res.RemoteAccessFraction)
	}
	t.Logf("cycles=%d instrs=%d l1=%.2f", res.Cycles, res.Instructions, res.L1HitRate)
}

// TestSmokeFourSocketModes runs one remote-heavy workload through every
// cache mode and link mode combination on 4 sockets.
func TestSmokeFourSocketModes(t *testing.T) {
	spec, ok := workload.ByName("HPC-RSBench")
	if !ok {
		t.Fatal("missing workload")
	}
	for _, cm := range []arch.CacheMode{arch.CacheMemSideLocal, arch.CacheStaticPartition, arch.CacheSharedCoherent, arch.CacheNUMAAware} {
		for _, lm := range []arch.LinkMode{arch.LinkStatic, arch.LinkDynamic} {
			cfg := arch.TestConfig()
			cfg.CacheMode = cm
			cfg.LinkMode = lm
			sys := core.MustSystem(cfg)
			res := sys.Run(spec.Program(testOptions()))
			if res.Cycles == 0 {
				t.Fatalf("%v/%v: no cycles", cm, lm)
			}
			if res.RemoteAccessFraction == 0 {
				t.Fatalf("%v/%v: expected remote accesses on 4 sockets", cm, lm)
			}
			t.Logf("%v/%v: cycles=%d remote=%.2f linkB=%d turns=%d shifts=%d",
				cm, lm, res.Cycles, res.RemoteAccessFraction, res.LinkBytes, res.LaneTurns, res.WayShifts)
		}
	}
}

// TestSmokeScheduling verifies the locality runtime beats the
// traditional fine-grain + interleave configuration on a local stencil.
func TestSmokeScheduling(t *testing.T) {
	spec, ok := workload.ByName("Rodinia-Hotspot")
	if !ok {
		t.Fatal("missing workload")
	}
	run := func(sched arch.CTASched, place arch.MemPlacement) core.Result {
		cfg := arch.TestConfig()
		cfg.Sched = sched
		cfg.Placement = place
		sys := core.MustSystem(cfg)
		return sys.Run(spec.Program(testOptions()))
	}
	loc := run(arch.SchedBlock, arch.PlaceFirstTouch)
	trad := run(arch.SchedFineGrain, arch.PlaceFineInterleave)
	if loc.RemoteAccessFraction >= trad.RemoteAccessFraction {
		t.Fatalf("locality runtime should reduce remote fraction: loc=%.3f trad=%.3f",
			loc.RemoteAccessFraction, trad.RemoteAccessFraction)
	}
	if loc.Cycles >= trad.Cycles {
		t.Fatalf("locality runtime should be faster: loc=%d trad=%d", loc.Cycles, trad.Cycles)
	}
	t.Logf("locality: %d cycles remote %.3f; traditional: %d cycles remote %.3f",
		loc.Cycles, loc.RemoteAccessFraction, trad.Cycles, trad.RemoteAccessFraction)
}

// TestSmokeMultiKernel runs a phased workload with gather traffic and
// checks that kernels and link profiles are recorded.
func TestSmokeMultiKernel(t *testing.T) {
	spec, ok := workload.ByName("HPC-HPGMG-UVM")
	if !ok {
		t.Fatal("missing workload")
	}
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	sys.EnableLinkProfile(500)
	res := sys.Run(spec.Program(testOptions()))
	if len(res.KernelCycles) != 10 {
		t.Fatalf("expected 10 kernel launches, got %d", len(res.KernelCycles))
	}
	prof, marks := sys.LinkProfiles()
	if len(prof) != cfg.Sockets {
		t.Fatalf("expected %d link profiles, got %d", cfg.Sockets, len(prof))
	}
	if len(marks) != 10 {
		t.Fatalf("expected 10 kernel marks, got %d", len(marks))
	}
	if len(prof[0].Egress.Samples) == 0 {
		t.Fatal("no profile samples recorded")
	}
}
