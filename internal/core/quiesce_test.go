package core_test

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestRunLeavesSocketsQuiesced is the pooled-state leak net for the
// allocation-free datapath: after every run — across cache modes,
// placements and a multi-kernel workload — no socket may report a
// pending MSHR entry or a live pooled record. System.Run additionally
// panics on the same condition, so the entire golden-master tier
// enforces this invariant implicitly; this test makes it explicit on a
// representative spread and would localize a failure to the scenario
// that leaked.
func TestRunLeavesSocketsQuiesced(t *testing.T) {
	cases := []struct {
		workload  string
		cacheMode arch.CacheMode
		placement arch.MemPlacement
	}{
		{"Other-Stream-Triad", arch.CacheMemSideLocal, arch.PlaceFirstTouch},
		{"HPC-RSBench", arch.CacheMemSideLocal, arch.PlaceFineInterleave},
		{"HPC-RSBench", arch.CacheNUMAAware, arch.PlaceFirstTouch},
		{"Rodinia-Hotspot", arch.CacheSharedCoherent, arch.PlacePageInterleave},
		{"HPC-HPGMG-UVM", arch.CacheStaticPartition, arch.PlaceFirstTouch}, // multi-kernel
	}
	for _, tc := range cases {
		spec, ok := workload.ByName(tc.workload)
		if !ok {
			t.Fatalf("missing workload %s", tc.workload)
		}
		cfg := arch.TestConfig()
		cfg.CacheMode = tc.cacheMode
		cfg.Placement = tc.placement
		sys := core.MustSystem(cfg)
		sys.Run(spec.Program(testOptions()))
		for i := 0; i < cfg.Sockets; i++ {
			sock := sys.Socket(i)
			if l1, l2, rm := sock.DebugPending(); l1+l2+rm != 0 {
				t.Errorf("%s/%v/%v: socket %d pending MSHR entries l1=%d l2=%d rm=%d",
					tc.workload, tc.cacheMode, tc.placement, i, l1, l2, rm)
			}
			if txs, reqs, waiters, homes := sock.DebugPoolsInUse(); txs+reqs+waiters+homes != 0 {
				t.Errorf("%s/%v/%v: socket %d leaked pool records txs=%d reqs=%d waiters=%d homes=%d",
					tc.workload, tc.cacheMode, tc.placement, i, txs, reqs, waiters, homes)
			}
		}
	}
}

// TestDeadlockDiagnosticMentionsSockets pins that the post-run panic
// path stays informative (it is the only consumer-visible surface of
// verifyQuiesced beyond a green run).
func TestDeadlockDiagnosticMentionsSockets(t *testing.T) {
	// A healthy run must not panic; reuse a tiny run and assert the
	// panic-free path. (The leak branch is exercised by construction in
	// gpu's own tests; forcing a leak from outside the package would
	// require corrupting internal state.)
	spec, _ := workload.ByName("Other-Stream-Triad")
	cfg := arch.TestConfig()
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(string); ok && strings.Contains(s, "leaked") {
				t.Fatalf("healthy run reported a leak: %v", r)
			}
			panic(r)
		}
	}()
	core.MustSystem(cfg).Run(spec.Program(testOptions()))
}
