package core_test

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// shardedRun runs one workload twice — serial and with EngineShards
// shards — and returns both results plus the sharded system for
// engine-level accounting.
func shardedRun(t *testing.T, cfg arch.Config, shards int, prog func() core.Program) (core.Result, core.Result, *core.System) {
	t.Helper()
	serial := core.MustSystem(cfg)
	resSerial := serial.Run(prog())
	if serial.Parallel() != nil {
		t.Fatal("serial system must not build a parallel engine")
	}
	scfg := cfg
	scfg.EngineShards = shards
	sys := core.MustSystem(scfg)
	if sys.Parallel() == nil {
		t.Fatalf("EngineShards=%d must build a parallel engine", shards)
	}
	resSharded := sys.Run(prog())
	// The shard count must not leak into the result: results memoized or
	// cached under the serial config have to stay valid.
	if !reflect.DeepEqual(resSerial, resSharded) {
		t.Fatalf("sharded result diverged from serial:\nserial:  %+v\nsharded: %+v", resSerial, resSharded)
	}
	serialExec := serial.Engine().Executed()
	pe := sys.Parallel()
	if pe.Executed() != serialExec {
		t.Fatalf("event-count parity broken: serial executed %d events, sharded %d", serialExec, pe.Executed())
	}
	var sum uint64
	busy := 0
	for i := 0; i < pe.NumShards(); i++ {
		n := pe.ShardExecuted(i)
		sum += n
		if n > 0 {
			busy++
		}
	}
	if sum != pe.Executed() {
		t.Fatalf("per-shard counts sum to %d, total says %d", sum, pe.Executed())
	}
	if busy < 2 {
		t.Fatalf("only %d shard(s) executed events — the work was not actually distributed", busy)
	}
	return resSerial, resSharded, sys
}

// TestShardedRunMatchesSerial is the model-level equivalence check:
// a remote-heavy workload under EngineShards=4 must produce a result
// deep-equal to the serial engine, with the same total event count
// split across shards and every fabric route validated as a legal
// cross-shard delivery.
func TestShardedRunMatchesSerial(t *testing.T) {
	spec, _ := workload.ByName("HPC-CoMD")
	cfg := arch.TestConfig()
	cfg.CacheMode = arch.CacheNUMAAware
	cfg.LinkMode = arch.LinkDynamic
	prog := func() core.Program {
		return spec.Program(workload.Options{IterScale: 0.2, MaxCTAs: 64})
	}
	_, _, sys := shardedRun(t, cfg, 4, prog)
	if sys.Parallel().CrossDelivered() == 0 {
		t.Fatal("a NUMA-aware multi-socket run must produce validated cross-shard deliveries")
	}
}

// TestShardedRemotePlacement drives heavy remote traffic (fine page
// interleave) through sharded sockets: every RemoteRead/Write crosses
// shard boundaries through the fabric.
func TestShardedRemotePlacement(t *testing.T) {
	cfg := arch.TestConfig()
	cfg.Placement = arch.PlaceFineInterleave
	prog := func() core.Program {
		return core.Program{Kernels: []core.Kernel{
			&gridKernel{ctas: 32, warps: 2, loads: 8, store: true},
		}}
	}
	_, _, sys := shardedRun(t, cfg, 4, prog)
	if sys.Parallel().CrossDelivered() == 0 {
		t.Fatal("fine-interleaved placement must cross shards")
	}
}

// TestShardedClampsToSockets asks for more shards than sockets: the
// system clamps to one shard per socket instead of idling empty shards.
func TestShardedClampsToSockets(t *testing.T) {
	cfg := arch.TestConfig() // 4 sockets
	prog := func() core.Program {
		return core.Program{Kernels: []core.Kernel{
			&gridKernel{ctas: 16, warps: 2, loads: 6},
		}}
	}
	_, _, sys := shardedRun(t, cfg, 16, prog)
	if got := sys.Parallel().NumShards(); got != cfg.Sockets+1 {
		t.Fatalf("shard count %d, want %d (sockets + fabric shard)", got, cfg.Sockets+1)
	}
}

// TestShardedSingleSocketStaysSerial pins the degenerate case: with one
// socket there is nothing to shard, so the system must fall back to the
// plain serial engine rather than paying lockstep overhead.
func TestShardedSingleSocketStaysSerial(t *testing.T) {
	cfg := arch.TestConfig().WithSockets(1)
	cfg.EngineShards = 8
	sys := core.MustSystem(cfg)
	if sys.Parallel() != nil {
		t.Fatal("single-socket system must not shard")
	}
	res := sys.Run(core.Program{Kernels: []core.Kernel{
		&gridKernel{ctas: 8, warps: 2, loads: 4},
	}})
	if res.Cycles == 0 {
		t.Fatal("single-socket run failed")
	}
}

// TestShardedMultiKernelSequence runs a kernel sequence with stores and
// drain barriers across shards — the inter-kernel quiesce points are
// where a broken window protocol would deadlock or reorder.
func TestShardedMultiKernelSequence(t *testing.T) {
	cfg := arch.TestConfig()
	cfg.Sched = arch.SchedFineGrain
	prog := func() core.Program {
		return core.Program{Kernels: []core.Kernel{
			&gridKernel{name: "w", ctas: 24, warps: 2, loads: 10, store: true},
			&gridKernel{name: "r", ctas: 24, warps: 2, loads: 10},
			&gridKernel{name: "r2", ctas: 24, warps: 2, loads: 6},
		}}
	}
	resSerial, resSharded, _ := shardedRun(t, cfg, 2, prog)
	if len(resSharded.KernelCycles) != 3 {
		t.Fatalf("kernel cycles %v, want 3 entries", resSharded.KernelCycles)
	}
	if resSerial.Stores == 0 {
		t.Fatal("no stores recorded")
	}
}
