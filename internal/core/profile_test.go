package core_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xlink"
)

// TestLinkProfileAlignment: all sockets' profiles sample the same
// window boundaries, and kernel marks fall within the run.
func TestLinkProfileAlignment(t *testing.T) {
	spec, _ := workload.ByName("HPC-HPGMG-UVM")
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	sys.EnableLinkProfile(400)
	res := sys.Run(spec.Program(workload.Options{IterScale: 0.2, MaxCTAs: 64}))
	profiles, marks := sys.LinkProfiles()
	if len(profiles) != cfg.Sockets {
		t.Fatalf("profiles %d, want %d", len(profiles), cfg.Sockets)
	}
	n := len(profiles[0].Egress.Samples)
	for _, p := range profiles {
		if len(p.Egress.Samples) != n || len(p.Ingress.Samples) != n {
			t.Fatal("profile lengths differ across sockets")
		}
		for i := range p.Egress.Samples {
			if p.Egress.Samples[i].At != profiles[0].Egress.Samples[i].At {
				t.Fatal("window boundaries differ across sockets")
			}
		}
	}
	for _, m := range marks {
		if uint64(m) > res.Cycles {
			t.Fatalf("kernel mark %d beyond end of run %d", m, res.Cycles)
		}
	}
}

// TestGatherPhaseAsymmetry: during HPGMG-UVM's gather phases, socket 0
// receives much more than it sends (writers target its memory), while
// sockets 1-3 send more than they receive — the Figure 5 phenomenon at
// whole-run granularity.
func TestGatherPhaseAsymmetry(t *testing.T) {
	spec, _ := workload.ByName("HPC-HPGMG-UVM")
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	sys.Run(spec.Program(workload.Options{IterScale: 0.3, MaxCTAs: 96}))
	l0 := sys.Fabric().LinkAt(0)
	in0 := l0.Sent[xlink.Ingress].Value()
	eg0 := l0.Sent[xlink.Egress].Value()
	if in0 <= eg0 {
		t.Fatalf("socket 0 should be a net receiver: ingress %d vs egress %d", in0, eg0)
	}
	l1 := sys.Fabric().LinkAt(1)
	if l1.Sent[xlink.Egress].Value() <= l1.Sent[xlink.Ingress].Value() {
		t.Fatalf("socket 1 should be a net sender: egress %d vs ingress %d",
			l1.Sent[xlink.Egress].Value(), l1.Sent[xlink.Ingress].Value())
	}
}

// TestDynamicLinksHelpGatherWorkload: on a strongly asymmetric
// workload the balancer must not lose to static links.
func TestDynamicLinksHelpGatherWorkload(t *testing.T) {
	spec, _ := workload.ByName("ML-AlexNet-cudnn-Lev2")
	opts := workload.Options{IterScale: 0.4, MaxCTAs: 128}
	run := func(mode arch.LinkMode) core.Result {
		cfg := arch.TestConfig()
		cfg.LinkMode = mode
		return core.MustSystem(cfg).Run(spec.Program(opts))
	}
	static := run(arch.LinkStatic)
	dynamic := run(arch.LinkDynamic)
	if dynamic.LaneTurns == 0 {
		t.Fatal("balancer never engaged on a gather workload")
	}
	if float64(dynamic.Cycles) > 1.02*float64(static.Cycles) {
		t.Fatalf("dynamic links slower on gather workload: %d vs %d", dynamic.Cycles, static.Cycles)
	}
}

// TestNUMAAwareCachingHelpsTableWorkload: RSBench-style shared-table
// lookups must speed up substantially with NUMA-aware caching.
func TestNUMAAwareCachingHelpsTableWorkload(t *testing.T) {
	spec, _ := workload.ByName("HPC-RSBench")
	opts := workload.Options{IterScale: 0.15}
	run := func(mode arch.CacheMode) core.Result {
		// The 1/8-scale machine: its L2s can actually hold the shared
		// table once the partitioner biases ways toward remote data
		// (the tiny TestConfig caches cannot, making the mechanism moot).
		cfg := arch.ScaledConfig(8)
		cfg.CacheSampleTime = 2000
		cfg.CacheMode = mode
		return core.MustSystem(cfg).Run(spec.Program(opts))
	}
	base := run(arch.CacheMemSideLocal)
	numa := run(arch.CacheNUMAAware)
	sp := numa.SpeedupOver(base)
	if sp < 1.3 {
		t.Fatalf("NUMA-aware caching speedup %.2f on RSBench, want > 1.3", sp)
	}
	if numa.LinkBytes >= base.LinkBytes {
		t.Fatal("remote caching must reduce interconnect traffic")
	}
}
