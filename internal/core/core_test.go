package core_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/smcore"
	"repro/internal/workload"
)

// gridKernel is a minimal core.Kernel for runtime tests: every warp
// issues a fixed number of loads over its own slice of one buffer.
type gridKernel struct {
	name  string
	ctas  int
	warps int
	loads int
	store bool
}

func (k *gridKernel) Name() string     { return k.name }
func (k *gridKernel) CTAs() int        { return k.ctas }
func (k *gridKernel) WarpsPerCTA() int { return k.warps }

type gridStream struct {
	base arch.LineID
	n    int
	pos  int
	buf  [1]arch.LineID
	st   bool
}

func (g *gridStream) Next(in *smcore.Instr) bool {
	if g.pos >= g.n {
		return false
	}
	g.buf[0] = g.base + arch.LineID(g.pos)
	in.Comp = 2
	in.Op = smcore.OpLoad
	if g.st && g.pos%2 == 1 {
		in.Op = smcore.OpStore
	}
	in.Lines = g.buf[:1]
	g.pos++
	return true
}

func (k *gridKernel) Warp(c, w int) smcore.InstrStream {
	gw := int64(c)*int64(k.warps) + int64(w)
	// One 4KB page per warp so first touch gives perfect locality.
	base := arch.LineID(gw * int64(arch.PageSize/arch.LineSize))
	return &gridStream{base: base, n: k.loads, st: k.store}
}

func TestKernelSequenceAndMarks(t *testing.T) {
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	prog := core.Program{
		Name: "seq",
		Kernels: []core.Kernel{
			&gridKernel{name: "k0", ctas: 16, warps: 2, loads: 6},
			&gridKernel{name: "k1", ctas: 16, warps: 2, loads: 6},
			&gridKernel{name: "k2", ctas: 16, warps: 2, loads: 6},
		},
	}
	res := sys.Run(prog)
	if len(res.KernelCycles) != 3 {
		t.Fatalf("kernel cycles %v, want 3 entries", res.KernelCycles)
	}
	for i, kc := range res.KernelCycles {
		if kc == 0 {
			t.Fatalf("kernel %d took zero cycles", i)
		}
	}
	_, marks := sys.LinkProfiles()
	if len(marks) != 3 {
		t.Fatalf("kernel marks %d, want 3", len(marks))
	}
}

func TestSystemSingleUse(t *testing.T) {
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	prog := core.Program{Kernels: []core.Kernel{&gridKernel{ctas: 4, warps: 1, loads: 2}}}
	sys.Run(prog)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run must panic")
		}
	}()
	sys.Run(prog)
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := arch.TestConfig()
	cfg.Sockets = 0
	if _, err := core.NewSystem(cfg); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec, _ := workload.ByName("HPC-CoMD")
	opts := workload.Options{IterScale: 0.2, MaxCTAs: 64}
	run := func() core.Result {
		cfg := arch.TestConfig()
		cfg.CacheMode = arch.CacheNUMAAware
		cfg.LinkMode = arch.LinkDynamic
		return core.MustSystem(cfg).Run(spec.Program(opts))
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.LinkBytes != b.LinkBytes {
		t.Fatalf("nondeterministic link bytes: %d vs %d", a.LinkBytes, b.LinkBytes)
	}
	if a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic instructions: %d vs %d", a.Instructions, b.Instructions)
	}
}

func TestBlockSchedulingLocality(t *testing.T) {
	// The grid kernel touches one page per warp: under block scheduling
	// plus first touch, everything must be local after placement.
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	res := sys.Run(core.Program{Kernels: []core.Kernel{
		&gridKernel{ctas: 32, warps: 2, loads: 8},
	}})
	if res.RemoteAccessFraction != 0 {
		t.Fatalf("remote fraction %v, want 0 for page-aligned block-scheduled grid",
			res.RemoteAccessFraction)
	}
}

func TestFineGrainSchedulingStillLocal(t *testing.T) {
	// Fine-grain CTA interleave with first-touch still places each
	// warp's private page locally — the damage comes with multi-kernel
	// reuse, not single-kernel private data.
	cfg := arch.TestConfig()
	cfg.Sched = arch.SchedFineGrain
	sys := core.MustSystem(cfg)
	res := sys.Run(core.Program{Kernels: []core.Kernel{
		&gridKernel{ctas: 32, warps: 2, loads: 8},
	}})
	if res.RemoteAccessFraction != 0 {
		t.Fatalf("first touch must follow the scheduler, remote=%v", res.RemoteAccessFraction)
	}
}

func TestFineInterleavePlacementRemote(t *testing.T) {
	cfg := arch.TestConfig()
	cfg.Placement = arch.PlaceFineInterleave
	sys := core.MustSystem(cfg)
	res := sys.Run(core.Program{Kernels: []core.Kernel{
		&gridKernel{ctas: 32, warps: 2, loads: 8},
	}})
	if res.RemoteAccessFraction < 0.7 || res.RemoteAccessFraction > 0.8 {
		t.Fatalf("fine interleave remote fraction %v, want ~0.75", res.RemoteAccessFraction)
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	spec, _ := workload.ByName("HPC-RSBench")
	cfg := arch.TestConfig()
	cfg.CacheMode = arch.CacheNUMAAware
	cfg.LinkMode = arch.LinkDynamic
	sys := core.MustSystem(cfg)
	res := sys.Run(spec.Program(workload.Options{IterScale: 0.2, MaxCTAs: 64}))
	if res.Loads == 0 || res.Instructions == 0 {
		t.Fatal("instruction metrics empty")
	}
	if res.LinkBytes == 0 {
		t.Fatal("link bytes empty for a remote-heavy workload")
	}
	if res.Seconds() <= 0 {
		t.Fatal("seconds must be positive")
	}
	if res.InterconnectEnergy() <= 0 || res.InterconnectPower() <= 0 {
		t.Fatal("energy model must be positive with link traffic")
	}
	sp := res.SpeedupOver(res)
	if sp != 1 {
		t.Fatalf("self speedup %v, want 1", sp)
	}
}

func TestStoresDrainBeforeKernelBoundary(t *testing.T) {
	// A store-heavy kernel followed by another kernel: the boundary
	// must wait for all writes (no negative drain, no deadlock).
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	res := sys.Run(core.Program{Kernels: []core.Kernel{
		&gridKernel{name: "w", ctas: 24, warps: 2, loads: 10, store: true},
		&gridKernel{name: "r", ctas: 24, warps: 2, loads: 10},
	}})
	if len(res.KernelCycles) != 2 {
		t.Fatal("both kernels must complete")
	}
	if res.Stores == 0 {
		t.Fatal("no stores recorded")
	}
}

func TestMoreCTAsThanResident(t *testing.T) {
	// Many more CTAs than resident capacity: multiple dispatch waves.
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	res := sys.Run(core.Program{Kernels: []core.Kernel{
		&gridKernel{ctas: 500, warps: 2, loads: 3},
	}})
	want := uint64(500 * 2 * 3)
	if res.Instructions != want {
		t.Fatalf("instructions %d, want %d", res.Instructions, want)
	}
}

func TestFewerCTAsThanSockets(t *testing.T) {
	// 2 CTAs on 4 sockets: two sockets idle, still completes.
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	res := sys.Run(core.Program{Kernels: []core.Kernel{
		&gridKernel{ctas: 2, warps: 1, loads: 4},
	}})
	if res.Instructions != 8 {
		t.Fatalf("instructions %d, want 8", res.Instructions)
	}
}

func TestEightSocketSystem(t *testing.T) {
	cfg := arch.TestConfig().WithSockets(8)
	sys := core.MustSystem(cfg)
	spec, _ := workload.ByName("Rodinia-Hotspot")
	res := sys.Run(spec.Program(workload.Options{IterScale: 0.15, MaxCTAs: 128}))
	if res.Cycles == 0 {
		t.Fatal("8-socket run failed")
	}
}

func TestSystemString(t *testing.T) {
	sys := core.MustSystem(arch.TestConfig())
	if sys.String() == "" {
		t.Fatal("empty string representation")
	}
}
