// Package core is the paper's primary contribution assembled into a
// single programmer-transparent NUMA GPU: a multi-socket system built
// from gpu.Sockets joined by an xlink.Fabric, driven by a locality-
// optimized runtime that decomposes each kernel into per-socket CTA
// blocks, performs software coherence at kernel boundaries, and runs
// the two adaptive mechanisms of Milic et al. (MICRO 2017): the dynamic
// asymmetric link balancer and the NUMA-aware cache partitioner.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/smcore"
	"repro/internal/stats"
	"repro/internal/vmm"
	"repro/internal/xlink"
)

// Kernel is one GPU kernel of a workload: a grid of CTAs, each with a
// fixed number of warps, whose instruction streams the system executes
// to completion with a global synchronization (and software coherence
// flush) at the end.
type Kernel interface {
	Name() string
	CTAs() int
	WarpsPerCTA() int
	// Warp returns the instruction stream of warp w of CTA c.
	Warp(c, w int) smcore.InstrStream
}

// Program is a complete workload: an optional memory setup hook (for
// pre-placed buffers, e.g. data first-touched by an earlier phase) and
// a sequence of kernels executed back to back.
type Program struct {
	Name    string
	Setup   func(m *vmm.Memory)
	Kernels []Kernel
}

// System is the single logical NUMA GPU exposed to the programmer.
type System struct {
	eng     *sim.Engine         // the runtime/fabric engine: home shard when sharded, the only engine otherwise
	pe      *sim.ParallelEngine // sharded execution (Config.EngineShards > 1); nil for serial runs
	cfg     arch.Config
	mem     *vmm.Memory
	fabric  *xlink.Fabric // nil when Sockets == 1
	sockets []*gpu.Socket
	drain   *gpu.Drain

	balancers   []*xlink.Balancer
	partitions  []*gpu.PartitionController
	profiler    *linkProfiler
	obsc        *obs.Collector // nil unless cfg.Obs requests observation
	tr          *obsTrace      // nil unless cfg.Obs.Trace
	kernels     []Kernel
	kernelIdx   int
	socketsLeft int
	kernelStart sim.Time
	kernelMarks []sim.Time
	kernelTimes []uint64
	endTime     sim.Time
	finished    bool
}

// NewSystem builds a NUMA GPU from cfg.
func NewSystem(cfg arch.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		mem:   vmm.NewWeighted(cfg.Sockets, cfg.Placement, socketWeights(cfg)),
		drain: &gpu.Drain{},
	}
	// Sharded execution: min(EngineShards, Sockets) socket shards plus a
	// fabric/home shard, run in lockstep so the global (time, seq)
	// schedule — and every result — is byte-identical to the serial
	// engine. The model's sockets are synchronously coupled outside the
	// event queue (first-touch placement, home-side service, the drain
	// counter), so free-running windows would need state partitioning
	// first; lockstep still gives shard-assigned queues, per-shard event
	// accounting, and runtime validation of the lookahead bound.
	shards := cfg.EngineShards
	if shards > cfg.Sockets {
		shards = cfg.Sockets
	}
	if shards > 1 {
		// Lookahead starts at the floor and is raised to the derived
		// bound once the fabric exists.
		s.pe = sim.NewLockstep(shards+1, 1)
		s.eng = s.pe.Shard(shards)
	} else {
		s.eng = sim.New()
	}
	if cfg.Sockets > 1 {
		s.fabric = xlink.NewFabric(s.eng, cfg)
	}
	if s.pe != nil && s.fabric != nil {
		if la := s.fabric.MinPathCost(); la > 1 {
			s.pe.SetLookahead(la)
		}
		s.fabric.EnableSharding(s.pe, func(id arch.SocketID) int { return int(id) % shards })
	}
	if cfg.Obs.Enabled() {
		s.obsc = obs.New(cfg.Obs)
	}
	for i := 0; i < cfg.Sockets; i++ {
		var port *xlink.Port
		if s.fabric != nil {
			port = s.fabric.Port(arch.SocketID(i))
		}
		eng := s.eng
		if s.pe != nil {
			eng = s.pe.Shard(i % shards)
		}
		sock := gpu.NewSocket(eng, socketConfig(cfg, i), arch.SocketID(i), s.mem, s, port, s.drain, s.onSocketDone)
		s.sockets = append(s.sockets, sock)
		if s.obsc != nil {
			s.obsc.AddSocket(eng, socketConfig(cfg, i), sock)
		}
	}
	if s.obsc != nil {
		s.obsc.AddFabric(s.eng, s.fabric)
		if t := s.obsc.Trace(); t != nil {
			s.tr = newObsTrace(t, cfg.Sockets)
		}
	}
	return s, nil
}

// Obs exposes the observability collector (nil unless Config.Obs
// requested observation); read its series and trace after Run.
func (s *System) Obs() *obs.Collector { return s.obsc }

// socketConfig applies socket i's topology resource overrides (SM
// count, L2 capacity, DRAM) to the uniform configuration; with no
// topology, or an empty spec, every socket sees cfg unchanged.
func socketConfig(cfg arch.Config, i int) arch.Config {
	if cfg.Topology == nil {
		return cfg
	}
	sp := cfg.Topology.Sockets[i]
	if sp.SMs > 0 {
		cfg.SMsPerSocket = sp.SMs
	}
	if sp.L2Bytes > 0 {
		cfg.L2Bytes = sp.L2Bytes
	}
	if sp.DRAMBandwidth > 0 {
		cfg.DRAMBandwidth = sp.DRAMBandwidth
	}
	if sp.DRAMLatency > 0 {
		cfg.DRAMLatency = sp.DRAMLatency
	}
	return cfg
}

// socketWeights extracts the interleave weights from the topology; nil
// (uniform) when there is no topology or all weights are equal.
func socketWeights(cfg arch.Config) []int {
	if cfg.Topology == nil {
		return nil
	}
	w := make([]int, cfg.Sockets)
	uniform := true
	for i, sp := range cfg.Topology.Sockets {
		w[i] = sp.Weight
		if w[i] == 0 {
			w[i] = 1
		}
		if w[i] != w[0] {
			uniform = false
		}
	}
	if uniform {
		return nil
	}
	return w
}

// MustSystem is NewSystem that panics on config errors; for examples
// and tests with known-good configurations.
func MustSystem(cfg arch.Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Engine exposes the simulation engine (examples, tests). When the
// system is sharded this is the fabric/home shard; drive execution
// through Run, not the shard engines.
func (s *System) Engine() *sim.Engine { return s.eng }

// Parallel exposes the sharded engine, nil for serial runs — tests use
// it for event-count parity and cross-shard delivery accounting.
func (s *System) Parallel() *sim.ParallelEngine { return s.pe }

// Config reports the system configuration.
func (s *System) Config() arch.Config { return s.cfg }

// Memory exposes the unified virtual memory map.
func (s *System) Memory() *vmm.Memory { return s.mem }

// Socket exposes socket i.
func (s *System) Socket(i int) *gpu.Socket { return s.sockets[i] }

// Fabric exposes the interconnect (nil for single-socket systems).
func (s *System) Fabric() *xlink.Fabric { return s.fabric }

// ---------------------------------------------------------------------
// gpu.Remote implementation: traffic between sockets.
// ---------------------------------------------------------------------

// RemoteRead implements gpu.Remote: request to home, home-side service,
// data response back.
func (s *System) RemoteRead(src, home arch.SocketID, l arch.LineID, done func()) {
	if s.tr != nil {
		done = s.traceXfer(s.tr.read, src, home, done)
	}
	s.fabric.RouteFunc(src, home, s.cfg.RequestHeader, func() {
		s.sockets[home].HomeRead(l, func() {
			s.fabric.RouteFunc(home, src, arch.LineSize+s.cfg.ResponseHeader, done)
		})
	})
}

// RemoteWrite implements gpu.Remote: full line to home, small ack back.
func (s *System) RemoteWrite(src, home arch.SocketID, l arch.LineID, done func()) {
	if s.tr != nil {
		done = s.traceXfer(s.tr.write, src, home, done)
	}
	s.fabric.RouteFunc(src, home, arch.LineSize+s.cfg.RequestHeader, func() {
		s.sockets[home].HomeWrite(l, func() {
			s.fabric.RouteFunc(home, src, s.cfg.RequestHeader, done)
		})
	})
}

// RemoteWriteBulk implements gpu.Remote for aggregated flush bursts.
func (s *System) RemoteWriteBulk(src, home arch.SocketID, n int, done func()) {
	if s.tr != nil {
		done = s.traceXfer(s.tr.bulk, src, home, done)
	}
	size := n*arch.LineSize + s.cfg.RequestHeader
	s.fabric.RouteFunc(src, home, size, func() {
		s.sockets[home].HomeWriteBulk(n, func() {
			s.fabric.RouteFunc(home, src, s.cfg.RequestHeader, done)
		})
	})
}

// traceXfer wraps a remote-protocol completion so the full round trip
// lands in the trace ring as one span on (pid = src socket, tid = 1 +
// home socket); tid 0 is the socket's kernel lane. Only built when
// tracing is on — the off path costs a nil check per transfer.
func (s *System) traceXfer(kind []int32, src, home arch.SocketID, done func()) func() {
	r := s.tr.getRec(s.eng)
	r.name = kind[int(src)*s.cfg.Sockets+int(home)]
	r.pid = int32(src)
	r.tid = int32(1 + home)
	r.t0 = s.eng.Now()
	r.done = done
	return r.fire
}

// ---------------------------------------------------------------------
// Runtime: kernel decomposition, launch, coherence, completion.
// ---------------------------------------------------------------------

// Run executes prog to completion and returns its measurements. A
// System is single-use: build a fresh one per run.
func (s *System) Run(prog Program) Result {
	if s.finished || s.kernels != nil {
		panic("core: System is single-use; construct a new one per Run")
	}
	if prog.Setup != nil {
		prog.Setup(s.mem)
	}
	s.kernels = prog.Kernels
	s.startPolicies()
	s.launchNext()
	if s.pe != nil {
		s.pe.Run()
	} else {
		s.eng.Run()
	}
	if !s.finished {
		msg := fmt.Sprintf("core: simulation deadlocked: kernel %d/%d, socketsLeft=%d, drain=%d",
			s.kernelIdx, len(s.kernels), s.socketsLeft, s.drain.Outstanding())
		for i, sock := range s.sockets {
			msg += fmt.Sprintf("; sock%d idle=%v", i, sock.Idle())
		}
		panic(msg)
	}
	s.verifyQuiesced()
	return s.collect(prog.Name)
}

// verifyQuiesced asserts the model invariant that a completed run left
// no miss-merge entry or pooled datapath record live on any socket: a
// leak here means a load completion was lost or a pooled continuation
// was dropped (it would previously have been an unreachable closure;
// with the pooled datapath it is detectable, so every run checks).
func (s *System) verifyQuiesced() {
	for i, sock := range s.sockets {
		if l1, l2, rm := sock.DebugPending(); l1+l2+rm != 0 {
			panic(fmt.Sprintf("core: socket %d finished with pending MSHR entries: l1=%d l2=%d rm=%d", i, l1, l2, rm))
		}
		// Each counter is checked individually: a double-release in one
		// pool (-1) must not cancel a leak in another (+1).
		if txs, reqs, waiters, homes := sock.DebugPoolsInUse(); txs != 0 || reqs != 0 || waiters != 0 || homes != 0 {
			panic(fmt.Sprintf("core: socket %d leaked pooled datapath records: txs=%d reqs=%d waiters=%d homes=%d",
				i, txs, reqs, waiters, homes))
		}
	}
}

func (s *System) startPolicies() {
	if s.fabric != nil && s.cfg.LinkMode == arch.LinkDynamic {
		// One balancer per physical link: in the synthesized crossbar
		// that is one per socket, in an explicit topology it includes
		// switch-to-switch trunks.
		for i := 0; i < s.fabric.NumLinks(); i++ {
			b := xlink.NewBalancer(s.fabric.LinkAt(i), s.cfg.LinkSampleTime)
			b.Start(s.eng)
			s.balancers = append(s.balancers, b)
		}
	}
	if s.cfg.CacheMode == arch.CacheNUMAAware && s.cfg.Sockets > 1 {
		for _, sock := range s.sockets {
			p := gpu.NewPartitionController(sock, s.cfg.CacheSampleTime)
			p.Start(s.eng)
			s.partitions = append(s.partitions, p)
		}
	}
	if s.profiler != nil {
		s.profiler.start(s.eng)
	}
	if s.obsc != nil {
		s.obsc.Start()
	}
}

func (s *System) stopPolicies() {
	for _, b := range s.balancers {
		b.Stop()
	}
	for _, p := range s.partitions {
		p.Stop()
	}
	if s.profiler != nil {
		s.profiler.stop()
	}
	if s.obsc != nil {
		s.obsc.Stop()
	}
}

// launchNext flushes the previous kernel's coherence state, waits for
// the drain, then launches the next kernel (or finalizes the run).
func (s *System) launchNext() {
	if s.tr != nil {
		s.tr.flushStart = s.eng.Now()
	}
	for _, sock := range s.sockets {
		if s.kernelIdx < len(s.kernels) {
			sock.FlushCaches()
		} else {
			sock.FlushAll()
		}
	}
	s.drain.WhenIdle(func() {
		now := s.eng.Now()
		if s.tr != nil {
			s.tr.drainSpan(s.cfg.Sockets, now)
		}
		if s.kernelIdx >= len(s.kernels) {
			s.endTime = now
			s.finished = true
			s.stopPolicies()
			return
		}
		k := s.kernels[s.kernelIdx]
		if s.tr != nil {
			s.tr.internKernel(s.kernelIdx, k.Name())
		}
		if s.fabric != nil {
			s.fabric.ResetDesign(now)
		}
		for _, b := range s.balancers {
			b.ResetState()
		}
		for _, sock := range s.sockets {
			sock.ResetForKernel(now)
		}
		s.kernelMarks = append(s.kernelMarks, now)
		s.kernelStart = now
		s.socketsLeft = len(s.sockets)
		for i, ctas := range s.partitionCTAs(k) {
			s.sockets[i].EnqueueKernel(ctas)
		}
	})
}

// partitionCTAs decomposes kernel k into per-socket CTA lists per the
// configured scheduling policy (Section 3).
func (s *System) partitionCTAs(k Kernel) [][]smcore.CTA {
	n := s.cfg.Sockets
	out := make([][]smcore.CTA, n)
	total := k.CTAs()
	warps := k.WarpsPerCTA()
	build := func(c int) smcore.CTA {
		cta := smcore.CTA{ID: c, Warps: make([]smcore.InstrStream, warps)}
		for w := 0; w < warps; w++ {
			cta.Warps[w] = k.Warp(c, w)
		}
		return cta
	}
	switch s.cfg.Sched {
	case arch.SchedFineGrain:
		for c := 0; c < total; c++ {
			sock := c % n
			out[sock] = append(out[sock], build(c))
		}
	default: // SchedBlock
		for sock := 0; sock < n; sock++ {
			lo := sock * total / n
			hi := (sock + 1) * total / n
			for c := lo; c < hi; c++ {
				out[sock] = append(out[sock], build(c))
			}
		}
	}
	return out
}

func (s *System) onSocketDone(id arch.SocketID) {
	if s.tr != nil {
		s.tr.kernelSpan(s.kernelIdx, id, s.kernelStart, s.eng.Now())
	}
	s.socketsLeft--
	if s.socketsLeft > 0 {
		return
	}
	// Kernel complete (all CTAs retired on all sockets).
	s.kernelTimes = append(s.kernelTimes, uint64(s.eng.Now()-s.kernelStart))
	s.kernelIdx++
	s.launchNext()
}

// ---------------------------------------------------------------------
// Link profiling (Figure 5).
// ---------------------------------------------------------------------

// LinkProfile is the recorded utilization time series of one physical
// link of the fabric, normalized to the design per-direction capacity.
// In the synthesized crossbar, link i is socket i's port link; explicit
// topologies may have more links than sockets (Label names each one).
type LinkProfile struct {
	Link    int
	Label   string
	Egress  stats.Series
	Ingress stats.Series
}

type linkProfiler struct {
	sys    *System
	window sim.Time
	ticker *sim.Ticker
	prof   []LinkProfile
}

// EnableLinkProfile records per-window utilization for every physical
// link (call before Run). window is the sampling period in cycles.
func (s *System) EnableLinkProfile(window int) {
	if window < 1 {
		window = 1
	}
	p := &linkProfiler{sys: s, window: sim.Time(window)}
	if s.fabric != nil {
		for i := 0; i < s.fabric.NumLinks(); i++ {
			p.prof = append(p.prof, LinkProfile{Link: i, Label: s.fabric.LinkAt(i).Name()})
		}
	}
	s.profiler = p
}

func (p *linkProfiler) start(eng *sim.Engine) {
	if p.sys.fabric == nil {
		return
	}
	for i := range p.prof {
		p.sys.fabric.LinkAt(i).ResetProfileWindow(eng.Now())
	}
	p.ticker = sim.NewTicker(eng, p.window, func(now sim.Time) {
		for i := range p.prof {
			l := p.sys.fabric.LinkAt(i)
			p.prof[i].Egress.Record(now, l.ProfileUtilization(xlink.Egress, now))
			p.prof[i].Ingress.Record(now, l.ProfileUtilization(xlink.Ingress, now))
			l.ResetProfileWindow(now)
		}
	})
	p.ticker.Start()
}

func (p *linkProfiler) stop() {
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

// LinkProfiles returns the recorded profiles (after Run) along with the
// kernel launch times for Figure 5's vertical markers.
func (s *System) LinkProfiles() ([]LinkProfile, []sim.Time) {
	if s.profiler == nil {
		return nil, s.kernelMarks
	}
	return s.profiler.prof, s.kernelMarks
}

// ---------------------------------------------------------------------
// Chrome-trace hooks (Config.Obs.Trace).
// ---------------------------------------------------------------------

// obsTrace holds the interned trace-name tables so every runtime hook
// appends with a precomputed index: kernel waves per socket (pid =
// socket, tid = 0), flush/drain phases on the trailing "runtime" track
// (pid = Sockets), and remote transfers per (src, home) pair.
type obsTrace struct {
	t          *obs.Trace
	kernels    []int32 // per-kernel span names, interned at launch
	flushDrain int32
	read       []int32 // src*Sockets+home
	write      []int32
	bulk       []int32
	flushStart sim.Time
	freeRec    *xferRec
}

// xferRec is one in-flight traced remote round trip. Records live on a
// free list and carry a fire closure pre-bound at record construction
// (the same pooling idiom as gpu's memTx/lineReq), so tracing a
// transfer allocates nothing in steady state — closures are only built
// when the free list grows.
type xferRec struct {
	o        *obsTrace
	eng      *sim.Engine
	name     int32
	pid, tid int32
	t0       sim.Time
	done     func()
	nextFree *xferRec
	fire     func()
}

func (o *obsTrace) getRec(eng *sim.Engine) *xferRec {
	r := o.freeRec
	if r == nil {
		r = &xferRec{o: o, eng: eng}
		r.fire = func() {
			r.o.t.Span(r.name, r.pid, r.tid, r.t0, r.eng.Now())
			done := r.done
			r.done = nil
			r.nextFree = r.o.freeRec
			r.o.freeRec = r
			done()
		}
		return r
	}
	o.freeRec = r.nextFree
	r.nextFree = nil
	return r
}

func newObsTrace(t *obs.Trace, sockets int) *obsTrace {
	o := &obsTrace{t: t, flushDrain: t.Intern("flush+drain")}
	o.read = make([]int32, sockets*sockets)
	o.write = make([]int32, sockets*sockets)
	o.bulk = make([]int32, sockets*sockets)
	for src := 0; src < sockets; src++ {
		for home := 0; home < sockets; home++ {
			i := src*sockets + home
			o.read[i] = t.Intern(fmt.Sprintf("read s%d->s%d", src, home))
			o.write[i] = t.Intern(fmt.Sprintf("write s%d->s%d", src, home))
			o.bulk[i] = t.Intern(fmt.Sprintf("flush s%d->s%d", src, home))
		}
	}
	return o
}

// internKernel names kernel idx's spans before its launch (allocates
// once per kernel, never per event).
func (o *obsTrace) internKernel(idx int, name string) {
	for len(o.kernels) <= idx {
		o.kernels = append(o.kernels, o.t.Intern(fmt.Sprintf("kernel %d %s", len(o.kernels), name)))
	}
}

// kernelSpan records socket id's execution of kernel idx.
func (o *obsTrace) kernelSpan(idx int, id arch.SocketID, start, end sim.Time) {
	o.t.Span(o.kernels[idx], int32(id), 0, start, end)
}

// drainSpan records the flush+drain phase that just completed on the
// runtime track.
func (o *obsTrace) drainSpan(sockets int, now sim.Time) {
	o.t.Span(o.flushDrain, int32(sockets), 0, o.flushStart, now)
}

func (s *System) String() string {
	return fmt.Sprintf("NUMA-GPU{%d sockets × %d SMs, %s, %s, %s, %s}",
		s.cfg.Sockets, s.cfg.SMsPerSocket, s.cfg.Sched, s.cfg.Placement, s.cfg.CacheMode, s.cfg.LinkMode)
}
