package core_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xlink"
)

// TestLinkByteConservation: across the whole fabric, every byte that
// leaves some socket's egress arrives at some socket's ingress — the
// switch neither creates nor destroys traffic.
func TestLinkByteConservation(t *testing.T) {
	spec, _ := workload.ByName("HPC-CoMD") // reads + gather writes + flushes
	cfg := arch.TestConfig()
	cfg.CacheMode = arch.CacheNUMAAware
	cfg.LinkMode = arch.LinkDynamic
	sys := core.MustSystem(cfg)
	sys.Run(spec.Program(workload.Options{IterScale: 0.2, MaxCTAs: 64}))

	var egress, ingress uint64
	for i := 0; i < sys.Fabric().NumLinks(); i++ {
		l := sys.Fabric().LinkAt(i)
		egress += l.Sent[xlink.Egress].Value()
		ingress += l.Sent[xlink.Ingress].Value()
	}
	if egress != ingress {
		t.Fatalf("fabric conservation violated: egress %d != ingress %d", egress, ingress)
	}
	if egress == 0 {
		t.Fatal("expected inter-socket traffic")
	}
}

// TestNoLinkTrafficWhenLocal: a perfectly local workload on the
// locality runtime must generate zero interconnect traffic outside
// coherence flushes (which it has none of, being single-kernel with
// local stores only).
func TestNoLinkTrafficWhenLocal(t *testing.T) {
	spec, _ := workload.ByName("Other-Stream-Triad")
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	res := sys.Run(spec.Program(workload.Options{IterScale: 0.2, MaxCTAs: 64}))
	if res.LinkBytes != 0 {
		t.Fatalf("streaming triad moved %d bytes between sockets; locality runtime broken", res.LinkBytes)
	}
}

// TestDRAMTrafficAccounted: every DRAM byte is a multiple of the line
// size or a bulk flush, and total DRAM traffic at least covers the
// compulsory misses of the footprint touched.
func TestDRAMTrafficAccounted(t *testing.T) {
	spec, _ := workload.ByName("Rodinia-Hotspot")
	cfg := arch.TestConfig()
	sys := core.MustSystem(cfg)
	res := sys.Run(spec.Program(workload.Options{IterScale: 0.2, MaxCTAs: 64}))
	if res.DRAMBytes == 0 {
		t.Fatal("no DRAM traffic recorded")
	}
	if res.DRAMBytes%arch.LineSize != 0 {
		t.Fatalf("DRAM bytes %d not line-aligned", res.DRAMBytes)
	}
}

// TestRemoteFractionMatchesPlacement: under page interleave on N
// sockets, (N-1)/N of accesses are remote regardless of scheduling.
func TestRemoteFractionMatchesPlacement(t *testing.T) {
	spec, _ := workload.ByName("Rodinia-Srad")
	for _, sockets := range []int{2, 4} {
		cfg := arch.TestConfig().WithSockets(sockets)
		cfg.Placement = arch.PlacePageInterleave
		sys := core.MustSystem(cfg)
		res := sys.Run(spec.Program(workload.Options{IterScale: 0.15, MaxCTAs: 64}))
		want := float64(sockets-1) / float64(sockets)
		if res.RemoteAccessFraction < want-0.08 || res.RemoteAccessFraction > want+0.08 {
			t.Fatalf("%d sockets: remote fraction %.3f, want ≈%.2f",
				sockets, res.RemoteAccessFraction, want)
		}
	}
}

// TestCoherenceFlushCostVisible: the hypothetical no-invalidate L2
// (Figure 9) can never be slower than the real SW-coherent one on a
// multi-kernel workload.
func TestCoherenceFlushCostVisible(t *testing.T) {
	spec, _ := workload.ByName("HPC-HPGMG") // 7 kernels, heavy local reuse
	base := arch.TestConfig()
	base.CacheMode = arch.CacheNUMAAware
	real := core.MustSystem(base).Run(spec.Program(workload.Options{IterScale: 0.3, MaxCTAs: 96}))
	hyp := base
	hyp.NoL2Invalidate = true
	ideal := core.MustSystem(hyp).Run(spec.Program(workload.Options{IterScale: 0.3, MaxCTAs: 96}))
	if ideal.Cycles > real.Cycles {
		t.Fatalf("no-invalidate L2 slower than SW coherence: %d > %d", ideal.Cycles, real.Cycles)
	}
}
