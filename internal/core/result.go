package core

import (
	"repro/internal/mem"
	"repro/internal/xlink"
)

// InterconnectEnergyPerBit is the Section 6 estimate for on-board link
// plus switch energy: 10 pJ per bit.
const InterconnectEnergyPerBit = 10e-12

// Result captures everything the experiment harness needs from one run.
// The json tags define the stable wire format used by the numagpud
// service and its disk-backed result cache; renaming a tag invalidates
// persisted cache entries, so treat them as a public API.
type Result struct {
	Name   string `json:"name"`
	Cycles uint64 `json:"cycles"` // end-to-end cycles including final drain

	KernelCycles []uint64 `json:"kernel_cycles,omitempty"` // per-kernel execution time

	Instructions uint64 `json:"instructions"` // warp instructions issued
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`

	// Locality.
	RemoteAccessFraction float64 `json:"remote_access_fraction"` // fraction of mem accesses homed remotely

	// Cache behaviour (aggregated over sockets/SMs).
	L1HitRate       float64 `json:"l1_hit_rate"`
	L2LocalHitRate  float64 `json:"l2_local_hit_rate"`
	L2RemoteHitRate float64 `json:"l2_remote_hit_rate"`

	// Interconnect.
	LinkBytes  uint64 `json:"link_bytes"` // both directions, all links
	LaneTurns  uint64 `json:"lane_turns"`
	WayShifts  uint64 `json:"way_shifts"`
	FlushLines uint64 `json:"flush_lines"`

	// DRAM.
	DRAMBytes uint64 `json:"dram_bytes"`
}

// Seconds converts cycles to wall-clock seconds at the 1GHz clock.
func (r Result) Seconds() float64 { return float64(r.Cycles) * 1e-9 }

// InterconnectEnergy reports Joules spent moving bits between sockets
// at 10pJ/b (Section 6).
func (r Result) InterconnectEnergy() float64 {
	return float64(r.LinkBytes) * 8 * InterconnectEnergyPerBit
}

// InterconnectPower reports the average communication power in Watts.
func (r Result) InterconnectPower() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return r.InterconnectEnergy() / s
}

// SpeedupOver reports how much faster this run was than base.
func (r Result) SpeedupOver(base Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

func (s *System) collect(name string) Result {
	r := Result{
		Name:         name,
		Cycles:       uint64(s.endTime),
		KernelCycles: s.kernelTimes,
	}
	var l1Hits, l1Acc uint64
	var l2LHits, l2LAcc, l2RHits, l2RAcc uint64
	var local, remote uint64
	for _, sock := range s.sockets {
		for _, sm := range sock.SMs {
			r.Instructions += sm.Issued.Value()
			r.Loads += sm.LoadOps.Value()
			r.Stores += sm.StoreOps.Value()
		}
		for i := range sock.SMs {
			l1 := sock.L1(i)
			l1Hits += l1.Hit[mem.ClassLocal].Hits.Value() + l1.Hit[mem.ClassRemote].Hits.Value()
			l1Acc += l1.Hit[mem.ClassLocal].Accesses() + l1.Hit[mem.ClassRemote].Accesses()
		}
		l2 := sock.L2()
		l2LHits += l2.Hit[mem.ClassLocal].Hits.Value()
		l2LAcc += l2.Hit[mem.ClassLocal].Accesses()
		l2RHits += l2.Hit[mem.ClassRemote].Hits.Value()
		l2RAcc += l2.Hit[mem.ClassRemote].Accesses()
		local += sock.LoadsLocal.Value() + sock.StoresLocal.Value()
		remote += sock.LoadsRemote.Value() + sock.StoresRemote.Value()
		r.DRAMBytes += sock.DRAM().Bytes.Total()
		r.FlushLines += sock.FlushedLines.Value()
	}
	if s.fabric != nil {
		for i := 0; i < s.fabric.NumLinks(); i++ {
			link := s.fabric.LinkAt(i)
			r.LaneTurns += link.Turns.Value()
			r.LinkBytes += link.Sent[xlink.Egress].Value() + link.Sent[xlink.Ingress].Value()
		}
	}
	if l1Acc > 0 {
		r.L1HitRate = float64(l1Hits) / float64(l1Acc)
	}
	if l2LAcc > 0 {
		r.L2LocalHitRate = float64(l2LHits) / float64(l2LAcc)
	}
	if l2RAcc > 0 {
		r.L2RemoteHitRate = float64(l2RHits) / float64(l2RAcc)
	}
	if local+remote > 0 {
		r.RemoteAccessFraction = float64(remote) / float64(local+remote)
	}
	for _, p := range s.partitions {
		r.WayShifts += p.Shifts.Value()
	}
	return r
}
