package core_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// obsProgram is a small real workload: big enough to cross several
// sample periods and launch multiple kernels, small enough for unit
// tests.
func obsProgram(t *testing.T) core.Program {
	t.Helper()
	spec, ok := workload.ByName("HPC-CoMD")
	if !ok {
		t.Fatal("missing workload HPC-CoMD")
	}
	return spec.Program(workload.Options{IterScale: 0.2, MaxCTAs: 64})
}

func runObserved(t *testing.T, spec arch.ObsSpec) (*core.System, core.Result) {
	t.Helper()
	cfg := arch.TestConfig()
	cfg.Obs = spec
	sys := core.MustSystem(cfg)
	res := sys.Run(obsProgram(t))
	return sys, res
}

// TestObsOffNoCollector pins the off-by-default contract: a populated
// but disabled ObsSpec must not attach a collector, and the result must
// equal a run with the zero spec.
func TestObsOffNoCollector(t *testing.T) {
	sys, res := runObserved(t, arch.ObsSpec{SamplePeriod: 250, MaxSamples: 64, MaxTraceEvents: 64})
	if sys.Obs() != nil {
		t.Fatal("disabled ObsSpec attached a collector")
	}
	_, plain := runObserved(t, arch.ObsSpec{})
	if !reflect.DeepEqual(res, plain) {
		t.Fatalf("populated-but-disabled spec changed the result:\n%+v\nvs\n%+v", res, plain)
	}
}

// TestObsOnByteInert is the core-level identity check under the golden
// suite: the same program with full sampling and tracing enabled must
// produce a deeply equal Result. Observation is read-only by
// construction; this holds it to that.
func TestObsOnByteInert(t *testing.T) {
	_, plain := runObserved(t, arch.ObsSpec{})
	sys, observed := runObserved(t, arch.ObsSpec{Series: true, Trace: true, SamplePeriod: 500})
	if !reflect.DeepEqual(observed, plain) {
		t.Fatalf("observation changed the result:\n%+v\nvs\n%+v", observed, plain)
	}
	col := sys.Obs()
	if col == nil {
		t.Fatal("enabled spec did not attach a collector")
	}
	var samples int
	for _, s := range col.Series() {
		samples += s.Len()
	}
	if samples == 0 {
		t.Fatal("sampling on but no samples recorded")
	}
	if col.Trace() == nil || col.Trace().Len() == 0 {
		t.Fatal("tracing on but no events recorded")
	}
}

// TestObsTraceValid validates the emitted Chrome trace: legal phase
// codes, required fields, per-track monotonic timestamps, and a clean
// JSON round trip — the properties chrome://tracing and Perfetto rely
// on.
func TestObsTraceValid(t *testing.T) {
	sys, _ := runObserved(t, arch.ObsSpec{Series: true, Trace: true, SamplePeriod: 500})
	var buf bytes.Buffer
	if err := sys.Obs().WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	type track struct{ pid, tid int }
	lastTs := make(map[track]float64)
	var meta, spans, kernels int
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Pid == nil {
			t.Fatalf("event %d missing name or pid: %+v", i, e)
		}
		switch e.Ph {
		case "M":
			meta++
			if e.Args["name"] == nil {
				t.Fatalf("metadata event %d without args.name", i)
			}
		case "X":
			spans++
			if e.Ts == nil || e.Tid == nil {
				t.Fatalf("span %d missing ts or tid: %+v", i, e)
			}
			if *e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("span %d has negative ts/dur: %+v", i, e)
			}
			k := track{*e.Pid, *e.Tid}
			if *e.Ts < lastTs[k] {
				t.Fatalf("span %d (%q) breaks monotonic ts on track %+v: %g < %g",
					i, e.Name, k, *e.Ts, lastTs[k])
			}
			lastTs[k] = *e.Ts
			if len(e.Name) > 7 && e.Name[:7] == "kernel " {
				kernels++
			}
		default:
			t.Fatalf("event %d has illegal phase %q", i, e.Ph)
		}
	}
	if meta == 0 {
		t.Fatal("no process_name metadata events")
	}
	if kernels == 0 {
		t.Fatal("no kernel spans in trace")
	}

	// Round trip: the parsed document re-encodes and re-parses cleanly.
	again, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if err := json.Unmarshal(again, &doc); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

// TestSamplingAllocFree is the CI alloc gate for the hot paths: one
// full sampling pass over every probe and one trace append must not
// allocate. Allocation-free sampling is what makes the <2% overhead
// budget (scripts/bench.sh obs_overhead) achievable.
func TestSamplingAllocFree(t *testing.T) {
	sys, _ := runObserved(t, arch.ObsSpec{Series: true, Trace: true, SamplePeriod: 500})
	col := sys.Obs()
	if allocs := testing.AllocsPerRun(100, func() {
		col.SampleAll(1 << 30)
	}); allocs != 0 {
		t.Fatalf("SampleAll allocates %v per run, want 0", allocs)
	}
	tr := col.Trace()
	name := tr.Intern("alloc-gate") // interning is the one allowed alloc, done up front
	if allocs := testing.AllocsPerRun(100, func() {
		tr.Span(name, 0, 0, 100, 200)
	}); allocs != 0 {
		t.Fatalf("Trace.Span allocates %v per run, want 0", allocs)
	}
}
