package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/service"
	"repro/internal/topo"
	"repro/internal/workload"
)

// tinyOpts is the smallest useful harness: two workloads at 1/16
// architecture scale so every simulation finishes in well under a
// second.
func tinyOpts() exp.Options {
	var subset []workload.Spec
	for _, name := range []string{"Other-Stream-Triad", "Rodinia-Hotspot"} {
		s, ok := workload.ByName(name)
		if !ok {
			panic("missing workload " + name)
		}
		subset = append(subset, s)
	}
	return exp.Options{Divisor: 16, IterScale: 0.1, MaxCTAs: 64, Workloads: subset, Parallelism: 2}
}

func newTestServer(t *testing.T, cacheDir string) (*service.Server, *service.Client, func()) {
	t.Helper()
	srv, err := service.New(service.Config{Options: tinyOpts(), CacheDir: cacheDir, Workers: 2})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	stop := func() {
		ts.Close()
		srv.Close()
	}
	return srv, service.NewClient(ts.URL), stop
}

func waitDone(t *testing.T, c *service.Client, id string) service.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("job %s: %v", id, err)
	}
	return st
}

func TestListExperiments(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()
	infos, err := c.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(exp.Experiments()) {
		t.Fatalf("%d experiments listed, want %d", len(infos), len(exp.Experiments()))
	}
	names := map[string]bool{}
	for _, e := range infos {
		names[e.Name] = true
	}
	for _, want := range []string{"table1", "fig11", "lanegran", "tenancy"} {
		if !names[want] {
			t.Fatalf("experiment %q missing from listing", want)
		}
	}
}

func TestSubmitUnknownExperiment(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()
	_, err := c.SubmitExperiment("figNaN")
	if err == nil || !strings.Contains(err.Error(), "404") || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want 404 unknown experiment, got %v", err)
	}
}

func TestExperimentJobLifecycle(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()
	job, err := c.SubmitExperiment("fig2") // pure metadata: no simulation
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || (job.State != service.JobQueued && job.State != service.JobRunning) {
		t.Fatalf("unexpected submit reply: %+v", job)
	}
	st := waitDone(t, c, job.ID)
	res, err := c.ExperimentResult(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "fig2" || res.Table == nil || res.Table.Rows() != 4 {
		t.Fatalf("bad experiment result: %+v", res)
	}
	if res.Summary["fill_1x_pct"] != 100 {
		t.Fatalf("summary lost: %v", res.Summary)
	}
}

func TestSweepValidation(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()
	for _, req := range []service.SweepRequest{
		{Preset: "hyperscale"},
		{Workloads: []string{"No-Such-Workload"}},
		{CacheMode: "psychic"},
		{LinkMode: "wormhole"},
	} {
		if _, err := c.SubmitSweep(req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Fatalf("sweep %+v: want 400, got %v", req, err)
		}
	}
	// Unknown JSON fields are rejected too, so typos fail loudly.
	resp, err := http.Post(c.BaseURL+"/v1/sweeps", "application/json",
		bytes.NewReader([]byte(`{"workloadz":["x"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestSweepTopology: an explicit topology in the sweep request reaches
// the simulated configuration; an invalid or socket-count-mismatched
// one is a client error, not a failed job.
func TestSweepTopology(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()

	twoSocket := &topo.Topology{
		Sockets: make([]topo.SocketSpec, 2),
		Links:   []topo.LinkSpec{{A: 0, B: 1}},
	}
	for _, req := range []service.SweepRequest{
		// 2-socket topology against the default 4 sockets.
		{Topology: twoSocket},
		// Structurally invalid: multi-socket with no links.
		{Sockets: 2, Topology: &topo.Topology{Sockets: make([]topo.SocketSpec, 2)}},
	} {
		if _, err := c.SubmitSweep(req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Fatalf("sweep %+v: want 400, got %v", req, err)
		}
	}

	req := service.SweepRequest{
		Sockets:   2,
		Workloads: []string{"Other-Stream-Triad"},
		Topology:  twoSocket,
	}
	job, err := c.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, c, job.ID)
	if st.State != service.JobDone {
		t.Fatalf("topology sweep failed: %+v", st)
	}
	sweep, err := c.SweepResult(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 1 || sweep.Results[0].Cycles == 0 {
		t.Fatalf("bad topology sweep payload: %+v", sweep)
	}

	// The explicit single-link topology partitions the result namespace:
	// the same sweep without it must simulate separately (different
	// link graph, potentially different cycles) — assert the request is
	// at least accepted and completes.
	plain, err := c.SubmitSweep(service.SweepRequest{Sockets: 2, Workloads: []string{"Other-Stream-Triad"}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, c, plain.ID); st.State != service.JobDone {
		t.Fatalf("plain sweep failed: %+v", st)
	}
}

func TestUnknownJob(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()
	if _, err := c.Job("job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404, got %v", err)
	}
	if _, err := c.Result("job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("want 404, got %v", err)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	srv, c, stop := newTestServer(t, "")
	defer stop()
	srv.Close()
	if _, err := c.SubmitExperiment("fig2"); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want 503 after Close, got %v", err)
	}
}

// TestConcurrentIdenticalSweepsShareSimulations is acceptance criterion
// one: two identical sweep jobs running concurrently must share the
// underlying simulations through the runner's singleflight memo,
// observable via the run-count metric.
func TestConcurrentIdenticalSweepsShareSimulations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	srv, c, stop := newTestServer(t, t.TempDir())
	defer stop()
	req := service.SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Other-Stream-Triad"}}
	j1, err := c.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, j1.ID)
	waitDone(t, c, j2.ID)

	b1, err := c.Result(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Result(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("identical sweeps returned different bytes:\n%s\nvs\n%s", b1, b2)
	}
	if st := srv.RunnerStats(); st.Simulations != 1 {
		t.Fatalf("simulations = %d, want 1 (singleflight across jobs)", st.Simulations)
	}
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "numagpud_simulations_total 1\n") {
		t.Fatalf("run-count metric does not show the shared simulation:\n%s", metrics)
	}
	var sweep service.SweepResult
	if err := json.Unmarshal(b1, &sweep); err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 1 || sweep.Results[0].Name != "Other-Stream-Triad" || sweep.Results[0].Cycles == 0 {
		t.Fatalf("bad sweep payload: %+v", sweep)
	}
}

// TestRestartServesFromDiskCache is acceptance criterion two: after a
// daemon restart, a repeated request must be served from the disk
// cache byte-identical to the original response, without simulating.
func TestRestartServesFromDiskCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	req := service.SweepRequest{Preset: "numa-aware", Sockets: 2, Workloads: []string{"Other-Stream-Triad"}}

	srv1, c1, stop1 := newTestServer(t, dir)
	j1, err := c1.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitDone(t, c1, j1.ID)
	cold, err := c1.Result(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st := srv1.RunnerStats(); st.Simulations != 1 || st.CacheHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	// The cold run simulated, so its job counted exactly one completed,
	// uncached run.
	if st1.RunsTotal != 1 || st1.RunsDone != 1 || st1.RunsCached != 0 {
		t.Fatalf("cold job run counters = %d/%d done, %d cached; want 1/1, 0 cached", st1.RunsDone, st1.RunsTotal, st1.RunsCached)
	}
	stop1() // daemon restart

	srv2, c2, stop2 := newTestServer(t, dir)
	defer stop2()
	j2, err := c2.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitDone(t, c2, j2.ID)
	warm, err := c2.Result(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("restart response differs from original:\n%s\nvs\n%s", cold, warm)
	}
	if st := srv2.RunnerStats(); st.Simulations != 0 || st.CacheHits != 1 {
		t.Fatalf("warm stats = %+v, want pure cache hit", st)
	}
	// Delta planning resolved the whole warm sweep from the disk cache.
	if st2.RunsDone != 1 || st2.RunsCached != 1 {
		t.Fatalf("warm job run counters = %d done, %d cached; want 1 done, 1 cached", st2.RunsDone, st2.RunsCached)
	}

	cs, err := c2.CacheStats()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Enabled || cs.Entries != 1 || cs.Hits != 1 || cs.Simulations != 0 {
		t.Fatalf("cache status = %+v", cs)
	}
	metrics, err := c2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"numagpud_simulations_total 0\n",
		"numagpud_cache_hits_total 1\n",
		"numagpud_cache_entries 1\n",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestExperimentResultDeterministicAcrossRestart runs a full
// experiment (table + summary JSON) cold and warm and requires
// byte-identical /result bodies.
func TestExperimentResultDeterministicAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := t.TempDir()
	srv1, c1, stop1 := newTestServer(t, dir)
	j1, err := c1.SubmitExperiment("writepolicy")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c1, j1.ID)
	cold, err := c1.Result(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	sims := srv1.RunnerStats().Simulations
	if sims == 0 {
		t.Fatal("cold experiment ran no simulations")
	}
	stop1()

	srv2, c2, stop2 := newTestServer(t, dir)
	defer stop2()
	j2, err := c2.SubmitExperiment("writepolicy")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c2, j2.ID)
	warm, err := c2.Result(j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("experiment JSON differs across restart")
	}
	if st := srv2.RunnerStats(); st.Simulations != 0 || st.CacheHits != sims {
		t.Fatalf("warm stats = %+v, want %d pure cache hits", st, sims)
	}
}

func TestJobsListedInSubmissionOrder(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()
	a, _ := c.SubmitExperiment("fig2")
	b, _ := c.SubmitExperiment("table2")
	waitDone(t, c, a.ID)
	waitDone(t, c, b.ID)
	page, err := c.Jobs(service.JobsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := page.Jobs
	if len(jobs) != 2 || jobs[0].ID != a.ID || jobs[1].ID != b.ID {
		t.Fatalf("jobs out of order: %+v", jobs)
	}
	if page.Next != "" {
		t.Fatalf("single-page listing returned cursor %q", page.Next)
	}
	// Page size 1: two pages chained by the cursor, then a clean end.
	p1, err := c.Jobs(service.JobsQuery{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Jobs) != 1 || p1.Jobs[0].ID != a.ID || p1.Next != a.ID {
		t.Fatalf("page 1 = %+v", p1)
	}
	p2, err := c.Jobs(service.JobsQuery{Limit: 1, After: p1.Next})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Jobs) != 1 || p2.Jobs[0].ID != b.ID || p2.Next != "" {
		t.Fatalf("page 2 = %+v", p2)
	}
}

// TestJobRetentionEvictsOldestFinished bounds the daemon's memory: a
// long-running server must not pin every finished job's result
// forever.
func TestJobRetentionEvictsOldestFinished(t *testing.T) {
	srv, err := service.New(service.Config{Options: tinyOpts(), Workers: 1, JobRetention: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := service.NewClient(ts.URL)

	var ids []string
	for i := 0; i < 4; i++ {
		j, err := c.SubmitExperiment("fig2")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		waitDone(t, c, j.ID)
	}
	// The two oldest finished jobs are gone; the two newest remain.
	for _, id := range ids[:2] {
		if _, err := c.Job(id); err == nil || !strings.Contains(err.Error(), "404") {
			t.Fatalf("job %s should be evicted, got %v", id, err)
		}
	}
	for _, id := range ids[2:] {
		if st, err := c.Job(id); err != nil || st.State != service.JobDone {
			t.Fatalf("job %s should be retained: %+v, %v", id, st, err)
		}
	}
	page, err := c.Jobs(service.JobsQuery{})
	if err != nil {
		t.Fatal(err)
	}
	jobs := page.Jobs
	if len(jobs) != 2 || jobs[0].ID != ids[2] || jobs[1].ID != ids[3] {
		t.Fatalf("listing after eviction = %+v", jobs)
	}
	// A cursor naming an evicted job must not 404 and must resume at
	// the first retained job past it.
	evicted, err := c.Jobs(service.JobsQuery{After: ids[1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted.Jobs) != 2 || evicted.Jobs[0].ID != ids[2] {
		t.Fatalf("evicted cursor resumed wrong: %+v", evicted)
	}
}

func TestHealthz(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
}
