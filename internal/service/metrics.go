package service

import (
	"fmt"
	"net/http"
	"time"
)

// handleMetrics renders the daemon's counters in Prometheus text
// exposition format (version 0.0.4): simulation run counts, cache
// hits/misses, job states, and queue depth — the numbers the
// acceptance checks (singleflight, warm restart) observe.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rs := s.runners.stats()
	fs := s.fabric.snapshot()

	s.mu.Lock()
	byState := map[JobState]int{}
	for _, id := range s.order {
		byState[s.jobs[id].state]++
	}
	queued := s.queued
	running := len(s.active)
	deadlineJobs := s.deadlineJobsCancelled
	s.mu.Unlock()

	var ds DiskStats
	if s.disk != nil {
		ds = s.disk.Stats()
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP numagpud_simulations_total Simulations actually executed by the shared runner.\n")
	p("# TYPE numagpud_simulations_total counter\n")
	p("numagpud_simulations_total %d\n", rs.Simulations)

	p("# HELP numagpud_cache_hits_total Runs served from the persistent result cache.\n")
	p("# TYPE numagpud_cache_hits_total counter\n")
	p("numagpud_cache_hits_total %d\n", rs.CacheHits)

	p("# HELP numagpud_cache_misses_total Cache lookups that fell through to a simulation.\n")
	p("# TYPE numagpud_cache_misses_total counter\n")
	p("numagpud_cache_misses_total %d\n", rs.CacheMisses)

	p("# HELP numagpud_delta_hits_total Sweep-plan keys resolved without new work by delta planning.\n")
	p("# TYPE numagpud_delta_hits_total counter\n")
	p("numagpud_delta_hits_total %d\n", rs.DeltaHits)

	p("# HELP numagpud_coalesced_keys_total Sweep-plan keys found already in flight and coalesced onto the running execution.\n")
	p("# TYPE numagpud_coalesced_keys_total counter\n")
	p("numagpud_coalesced_keys_total %d\n", rs.CoalescedKeys)

	p("# HELP numagpud_cache_entries Result files in the persistent cache.\n")
	p("# TYPE numagpud_cache_entries gauge\n")
	p("numagpud_cache_entries %d\n", ds.Entries)

	p("# HELP numagpud_cache_bytes Bytes used by the persistent cache.\n")
	p("# TYPE numagpud_cache_bytes gauge\n")
	p("numagpud_cache_bytes %d\n", ds.Bytes)

	// Per-state counts move between labels as jobs progress (and drop
	// on retention eviction), so this is a gauge, not a counter.
	p("# HELP numagpud_jobs Retained jobs by current state.\n")
	p("# TYPE numagpud_jobs gauge\n")
	for _, st := range []JobState{JobQueued, JobRunning, JobDone, JobFailed} {
		p("numagpud_jobs{state=%q} %d\n", st, byState[st])
	}

	p("# HELP numagpud_queue_depth Jobs waiting for a worker.\n")
	p("# TYPE numagpud_queue_depth gauge\n")
	p("numagpud_queue_depth %d\n", queued)

	p("# HELP numagpud_jobs_running Jobs currently executing.\n")
	p("# TYPE numagpud_jobs_running gauge\n")
	p("numagpud_jobs_running %d\n", running)

	p("# HELP numagpud_remote_runs_total Runs executed by fabric workers on behalf of this daemon's runners.\n")
	p("# TYPE numagpud_remote_runs_total counter\n")
	p("numagpud_remote_runs_total %d\n", rs.RemoteRuns)

	p("# HELP numagpud_fabric_workers Live registered fabric workers.\n")
	p("# TYPE numagpud_fabric_workers gauge\n")
	p("numagpud_fabric_workers %d\n", fs.WorkersLive)

	p("# HELP numagpud_fabric_workers_seen_total Workers ever registered.\n")
	p("# TYPE numagpud_fabric_workers_seen_total counter\n")
	p("numagpud_fabric_workers_seen_total %d\n", fs.WorkersSeen)

	p("# HELP numagpud_fabric_shards Shards currently in flight by state.\n")
	p("# TYPE numagpud_fabric_shards gauge\n")
	p("numagpud_fabric_shards{state=\"pending\"} %d\n", fs.Pending)
	p("numagpud_fabric_shards{state=\"leased\"} %d\n", fs.Leased)

	p("# HELP numagpud_fabric_shards_total Unique RunKeys ever dispatched to the fabric.\n")
	p("# TYPE numagpud_fabric_shards_total counter\n")
	p("numagpud_fabric_shards_total %d\n", fs.ShardsTotal)

	p("# HELP numagpud_fabric_shards_completed_total Shards finished with a worker-produced result.\n")
	p("# TYPE numagpud_fabric_shards_completed_total counter\n")
	p("numagpud_fabric_shards_completed_total %d\n", fs.Completed)

	p("# HELP numagpud_fabric_shards_failed_total Shards finished with a deterministic worker error.\n")
	p("# TYPE numagpud_fabric_shards_failed_total counter\n")
	p("numagpud_fabric_shards_failed_total %d\n", fs.Failed)

	p("# HELP numagpud_fabric_shards_requeued_total Shards re-queued after their worker died or timed out.\n")
	p("# TYPE numagpud_fabric_shards_requeued_total counter\n")
	p("numagpud_fabric_shards_requeued_total %d\n", fs.Requeued)

	p("# HELP numagpud_fabric_results_stale_total Worker reports dropped because the shard was already complete or unknown (exactly-once guard).\n")
	p("# TYPE numagpud_fabric_results_stale_total counter\n")
	p("numagpud_fabric_results_stale_total %d\n", fs.StaleResults)

	p("# HELP numagpud_fabric_worker_simulations_total Simulations reported by workers (live fleet's last polls plus departed workers).\n")
	p("# TYPE numagpud_fabric_worker_simulations_total counter\n")
	p("numagpud_fabric_worker_simulations_total %d\n", fs.WorkerStats.Simulations)

	p("# HELP numagpud_fabric_shards_resumed_total Shards rebuilt from journaled grants after a coordinator restart.\n")
	p("# TYPE numagpud_fabric_shards_resumed_total counter\n")
	p("numagpud_fabric_shards_resumed_total %d\n", fs.Resumed)

	p("# HELP numagpud_admission_rejected_total Submissions shed by admission control, by reason and tenant.\n")
	p("# TYPE numagpud_admission_rejected_total counter\n")
	for _, rej := range s.admission.rejections() {
		p("numagpud_admission_rejected_total{reason=%q,tenant=%q} %d\n", rej.Key.Reason, rej.Key.Tenant, rej.Count)
	}

	p("# HELP numagpud_deadline_cancelled_total Work cancelled because its deadline passed before it started.\n")
	p("# TYPE numagpud_deadline_cancelled_total counter\n")
	p("numagpud_deadline_cancelled_total{kind=\"job\"} %d\n", deadlineJobs)
	p("numagpud_deadline_cancelled_total{kind=\"shard\"} %d\n", fs.DeadlineCancelled)

	p("# HELP numagpud_journal_replays_total Times the state journal recovered state at startup (0 or 1 per process; survives in snapshots).\n")
	p("# TYPE numagpud_journal_replays_total counter\n")
	p("numagpud_journal_replays_total %d\n", s.jnl.replayCount())

	p("# HELP numagpud_journal_bytes On-disk size of the state journal (snapshot plus log tail).\n")
	p("# TYPE numagpud_journal_bytes gauge\n")
	p("numagpud_journal_bytes %d\n", s.jnl.bytes())

	p("# HELP numagpud_uptime_seconds Seconds since the daemon started.\n")
	p("# TYPE numagpud_uptime_seconds gauge\n")
	p("numagpud_uptime_seconds %.0f\n", time.Since(s.start).Seconds())
}
