package service

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func testResult() core.Result {
	return core.Result{
		Name:         "W",
		Cycles:       123456,
		KernelCycles: []uint64{100, 200},
		Instructions: 42,
		LinkBytes:    9000,
		L1HitRate:    0.75,
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := testResult()
	c.Put("k1", want)
	got, ok := c.Get("k1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Cycles != want.Cycles || got.Name != want.Name ||
		len(got.KernelCycles) != 2 || got.KernelCycles[1] != 200 ||
		got.L1HitRate != want.L1HitRate {
		t.Fatalf("round trip mangled the result: %+v", got)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskCacheSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	c1, _ := OpenDiskCache(dir)
	c1.Put("k", testResult())
	c2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("k"); !ok {
		t.Fatal("entry lost across reopen")
	}
}

func TestDiskCacheRejectsKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenDiskCache(dir)
	c.Put("honest-key", testResult())
	// Move the entry to where another key would look for it: Get must
	// notice the embedded key disagrees and miss rather than lie.
	sum := sha256.Sum256([]byte("honest-key"))
	src := filepath.Join(dir, hex.EncodeToString(sum[:])[:2], hex.EncodeToString(sum[:])+".json")
	sum2 := sha256.Sum256([]byte("other-key"))
	dst := filepath.Join(dir, hex.EncodeToString(sum2[:])[:2], hex.EncodeToString(sum2[:])+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("other-key"); ok {
		t.Fatal("cache served a result whose stored key disagrees")
	}
}

func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenDiskCache(dir)
	c.Put("k", testResult())
	sum := sha256.Sum256([]byte("k"))
	path := filepath.Join(dir, hex.EncodeToString(sum[:])[:2], hex.EncodeToString(sum[:])+".json")
	if err := os.WriteFile(path, []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
}

func TestDiskCacheOverwriteIsAtomicReplacement(t *testing.T) {
	c, _ := OpenDiskCache(t.TempDir())
	a := testResult()
	c.Put("k", a)
	b := testResult()
	b.Cycles = 999
	c.Put("k", b)
	got, ok := c.Get("k")
	if !ok || got.Cycles != 999 {
		t.Fatalf("overwrite failed: %+v ok=%v", got, ok)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("overwrite duplicated the entry: %+v", st)
	}
}
