package service_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/exp"
	"repro/internal/service"
)

// ExampleClient runs a numagpud server in-process and drives it the
// way an HTTP caller would: submit an experiment, poll the job to
// completion, decode the result. table1 is pure configuration, so the
// example needs no simulation time.
func ExampleClient() {
	srv, err := service.New(service.Config{Options: exp.QuickOptions(), Workers: 1})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := service.NewClient(ts.URL)
	job, err := c.SubmitExperiment("table1")
	if err != nil {
		panic(err)
	}
	st, err := c.Wait(context.Background(), job.ID, 10*time.Millisecond)
	if err != nil {
		panic(err)
	}
	res, err := c.ExperimentResult(st.ID)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Experiment, "sockets:", res.Summary["sockets"])
	// Output: table1 sockets: 4
}
