package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workload"
)

// tinyServiceOpts mirrors service_test.tinyOpts for the internal tests:
// two sub-second workloads.
func tinyServiceOpts() exp.Options {
	var subset []workload.Spec
	for _, name := range []string{"Other-Stream-Triad", "Rodinia-Hotspot"} {
		s, ok := workload.ByName(name)
		if !ok {
			panic("missing workload " + name)
		}
		subset = append(subset, s)
	}
	return exp.Options{Divisor: 16, IterScale: 0.1, MaxCTAs: 64, Workloads: subset, Parallelism: 2}
}

// blockedServer builds a 1-worker, depth-1 coordinator whose queue
// worker is deterministically wedged: a fabric worker registers but
// never polls for work, so the first sweep's simulation parks as a
// pending shard forever (until the test completes it via pollWorker).
func blockedServer(t *testing.T, cfg Config) (*Server, *httptest.Server, string) {
	t.Helper()
	if cfg.Options.Divisor == 0 {
		cfg.Options = tinyServiceOpts()
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = time.Minute // the blocker must stay "live" throughout
	}
	cfg.FabricPoll = 10 * time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg, err := srv.fabric.register("blocker", "blocker-proc", 1)
	if err != nil {
		t.Fatalf("register blocker: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, reg.WorkerID
}

// unblock completes every pending/leased shard with a fabricated result
// so queued jobs drain and Close does not re-simulate.
func unblock(t *testing.T, srv *Server, workerID string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := srv.fabric.pollWorker(PollRequest{WorkerID: workerID, Want: 8})
		if err != nil {
			t.Fatalf("unblock poll: %v", err)
		}
		var results []ShardResult
		for _, sh := range resp.Shards {
			res := core.Result{Name: sh.Run.Workload, Cycles: 1}
			results = append(results, ShardResult{ShardID: sh.ID, Key: sh.Run.Key, Result: &res})
		}
		if len(results) > 0 {
			if _, err := srv.fabric.pollWorker(PollRequest{WorkerID: workerID, Results: results}); err != nil {
				t.Fatalf("unblock results: %v", err)
			}
		}
		snap := srv.fabric.snapshot()
		if snap.Pending == 0 && snap.Leased == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards never drained: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func awaitJobState(t *testing.T, srv *Server, id string, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := srv.lookup(id)
		if ok {
			st := srv.status(j)
			if st.State == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s", id, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func submitTinySweep(c *Client) (JobStatus, error) {
	return c.SubmitSweep(SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Other-Stream-Triad"}})
}

// TestQueueFullShedsWith429 pins the overload contract: beyond
// -max-queue, submissions get 429 with a Retry-After header, the
// rejection is visible in /metrics, and nothing already admitted is
// disturbed.
func TestQueueFullShedsWith429(t *testing.T) {
	srv, ts, blocker := blockedServer(t, Config{Workers: 1, QueueDepth: 1})
	c := NewClient(ts.URL)

	j1, err := submitTinySweep(c)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	awaitJobState(t, srv, j1.ID, JobRunning) // wedged on the blocker's shard
	j2, err := submitTinySweep(c)
	if err != nil {
		t.Fatalf("second submit (fills the queue): %v", err)
	}

	_, err = submitTinySweep(c)
	var ae *Error
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit = %v, want HTTP 429", err)
	}
	if ae.RetryAfter < time.Second {
		t.Fatalf("Retry-After = %s, want >= 1s", ae.RetryAfter)
	}
	if !strings.Contains(ae.Message, "queue_full") {
		t.Fatalf("rejection message %q does not name the reason", ae.Message)
	}

	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `numagpud_admission_rejected_total{reason="queue_full",tenant="default"} 1`) {
		t.Fatalf("metrics missing queue_full rejection:\n%s", metrics)
	}

	// The shed submission must not have registered a job.
	if _, ok := srv.lookup("job-3"); ok {
		t.Fatal("rejected submission left a job behind")
	}

	// Both admitted jobs still complete once the fabric drains.
	unblock(t, srv, blocker)
	awaitJobState(t, srv, j1.ID, JobDone)
	awaitJobState(t, srv, j2.ID, JobDone)
	srv.Close()
}

// TestTenantQuotaIsolation pins per-tenant token buckets: one tenant
// exhausting its quota gets 429 while other tenants (and the default
// bucket) are untouched.
func TestTenantQuotaIsolation(t *testing.T) {
	srv, err := New(Config{Options: tinyServiceOpts(), Workers: 2, TenantQuota: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	// fig2 is metadata-only: no simulation, jobs finish instantly.
	post := func(tenant string) *http.Response {
		req, err := http.NewRequest("POST", ts.URL+"/v1/experiments/fig2", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if code := post("alice").StatusCode; code != http.StatusAccepted {
		t.Fatalf("alice #1 = %d, want 202", code)
	}
	if code := post("alice").StatusCode; code != http.StatusAccepted {
		t.Fatalf("alice #2 = %d, want 202", code)
	}
	over := post("alice")
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice #3 = %d, want 429 (quota 2/min exhausted)", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("quota rejection missing Retry-After header")
	}
	if code := post("bob").StatusCode; code != http.StatusAccepted {
		t.Fatalf("bob after alice's exhaustion = %d, want 202 (tenant isolation)", code)
	}
	if code := post("").StatusCode; code != http.StatusAccepted {
		t.Fatalf("default tenant = %d, want 202", code)
	}

	metrics, err := NewClient(ts.URL).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `numagpud_admission_rejected_total{reason="quota",tenant="alice"} 1`) {
		t.Fatalf("metrics missing alice's quota rejection:\n%s", metrics)
	}
}

// TestBadDeadlineHeaderIs400 pins X-Deadline-Ms validation.
func TestBadDeadlineHeaderIs400(t *testing.T) {
	srv, err := New(Config{Options: tinyServiceOpts(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	for _, bad := range []string{"nope", "-5", "0"} {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/experiments/fig2", nil)
		req.Header.Set("X-Deadline-Ms", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("X-Deadline-Ms=%q -> %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestDeadlineExpiredJobCancelledAtDequeue: a queued job whose deadline
// passes before a worker picks it up fails with a deadline error — it
// is shed before starting, while the running job ahead of it is never
// touched.
func TestDeadlineExpiredJobCancelledAtDequeue(t *testing.T) {
	srv, ts, blocker := blockedServer(t, Config{Workers: 1, QueueDepth: 4})
	c := NewClient(ts.URL)

	j1, err := submitTinySweep(c)
	if err != nil {
		t.Fatal(err)
	}
	awaitJobState(t, srv, j1.ID, JobRunning)

	// Queue a job with a 30ms deadline behind the wedged worker.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/experiments/fig2", nil)
	req.Header.Set("X-Deadline-Ms", "30")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var j2 JobStatus
	if err := jsonDecode(resp, &j2); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deadline submit: %d, %v", resp.StatusCode, err)
	}
	time.Sleep(60 * time.Millisecond) // let the deadline lapse while queued

	unblock(t, srv, blocker)
	awaitJobState(t, srv, j1.ID, JobDone) // in-flight work was never shed
	awaitJobState(t, srv, j2.ID, JobFailed)
	if j, _ := srv.lookup(j2.ID); !strings.Contains(srv.status(j).Error, "deadline") {
		t.Fatalf("job error = %q, want a deadline message", srv.status(j).Error)
	}

	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `numagpud_deadline_cancelled_total{kind="job"} 1`) {
		t.Fatalf("metrics missing job deadline cancellation:\n%s", metrics)
	}
	srv.Close()
}

// TestReadinessSplit pins the liveness/readiness health split: both
// probes serve 200 on a healthy daemon; after shutdown begins the
// process stays live but turns not-ready.
func TestReadinessSplit(t *testing.T) {
	srv, err := New(Config{Options: tinyServiceOpts(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, path := range []string{"/healthz", "/healthz/live", "/healthz/ready"} {
		if code := get(path); code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, code)
		}
	}
	srv.Close()
	if code := get("/healthz/live"); code != http.StatusOK {
		t.Fatalf("liveness after Close = %d, want 200 (process still serving)", code)
	}
	if code := get("/healthz/ready"); code != http.StatusServiceUnavailable {
		t.Fatalf("readiness after Close = %d, want 503 (draining)", code)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestFabricDeadlineCancelsPendingShards: the janitor cancels a shard
// whose job deadline passed while it was still pending, surfacing
// exp.ErrDeadlineExceeded to the waiter.
func TestFabricDeadlineCancelsPendingShards(t *testing.T) {
	f := newFabric(2*time.Second, 10*time.Millisecond)
	defer f.close()
	deadline := time.Now().Add(50 * time.Millisecond)
	f.deadlineFn = func() time.Time { return deadline }
	// A worker exists (so execute queues instead of reporting no
	// workers) but never asks for work.
	if _, err := f.register("idle", "idle-proc", 4); err != nil {
		t.Fatal(err)
	}

	ch := startExecute(f, "k-deadline")
	select {
	case out := <-ch:
		if !errors.Is(out.err, exp.ErrDeadlineExceeded) {
			t.Fatalf("execute err = %v, want exp.ErrDeadlineExceeded", out.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending shard never deadline-cancelled")
	}
	if snap := f.snapshot(); snap.DeadlineCancelled != 1 {
		t.Fatalf("DeadlineCancelled = %d, want 1", snap.DeadlineCancelled)
	}
}

// TestFabricDeadlineNeverShedsLeasedShards: a shard already leased to a
// worker runs to completion even after its deadline passes — in-flight
// work is never shed.
func TestFabricDeadlineNeverShedsLeasedShards(t *testing.T) {
	f := newFabric(5*time.Second, 10*time.Millisecond)
	defer f.close()
	deadline := time.Now().Add(30 * time.Millisecond)
	f.deadlineFn = func() time.Time { return deadline }
	reg, err := f.register("w", "proc-w", 1)
	if err != nil {
		t.Fatal(err)
	}
	ch := startExecute(f, "k-leased")
	shards := awaitLeased(t, f, reg.WorkerID, 1)

	// Let the deadline lapse, then force a janitor pass over the leased
	// shard (the real timer tick is jittered, so drive it directly).
	time.Sleep(50 * time.Millisecond)
	f.sweepExpired(time.Now())
	select {
	case out := <-ch:
		t.Fatalf("leased shard resolved early: %+v", out)
	default:
	}

	res := core.Result{Name: "late", Cycles: 7}
	if _, err := f.pollWorker(PollRequest{
		WorkerID: reg.WorkerID,
		Results:  []ShardResult{{ShardID: shards[0].ID, Key: shards[0].Run.Key, Result: &res}},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-ch:
		if out.err != nil || out.res.Cycles != 7 {
			t.Fatalf("leased shard outcome = %+v, want the worker's result", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("result never delivered")
	}
	if snap := f.snapshot(); snap.DeadlineCancelled != 0 {
		t.Fatalf("DeadlineCancelled = %d, want 0 (in-flight never shed)", snap.DeadlineCancelled)
	}
}
