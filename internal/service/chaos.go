package service

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// faultTransport is the fault-injection half of the chaos harness: an
// http.RoundTripper that wraps a real transport and, driven by a seeded
// RNG, drops requests before they are sent, drops responses after the
// server has already acted, duplicates deliveries, delays round trips,
// and simulates hard partitions. Every probability is independent per
// request, so a single round trip can be both delayed and duplicated.
//
// The two drop modes are deliberately distinct failure semantics:
//
//   - a request drop looks like a connect failure — the server never
//     saw it, so client retries are trivially safe;
//   - a response drop means the server DID process the request but the
//     client cannot know — the classic at-least-once hazard. Retrying a
//     poll after one is exactly how duplicate lease grants or double
//     result ingest would happen, which is what the Seq/Holding
//     protocol and the coordinator's exactly-once guard must absorb.
//
// All configuration is read under mu, so a chaos driver may flip
// probabilities (or the partition switch) while requests are in flight.
type faultTransport struct {
	base http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand

	dropReq  float64 // P(fail before the server sees the request)
	dropResp float64 // P(fail after the server processed it)
	dup      float64 // P(deliver the request twice)
	delay    float64 // P(sleep before delivering)
	maxDelay time.Duration
	cut      bool // hard partition: everything fails fast

	// Injection counters, for test assertions and failure logging.
	droppedReqs, droppedResps, dups, delays, cutoffs int64
}

// newFaultTransport seeds a harness over base (http.DefaultTransport
// when nil). The same seed replays the same fault schedule given the
// same request sequence — print it on failure and a flake reproduces.
func newFaultTransport(base http.RoundTripper, seed int64) *faultTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{base: base, rng: rand.New(rand.NewSource(seed))}
}

// errInjected marks every harness-made failure so tests can tell
// injected faults from real ones.
var errInjected = errors.New("service: chaos: injected fault")

// chaosPlan is one request's sampled fault decisions.
type chaosPlan struct {
	dropReq, dropResp, dup bool
	sleep                  time.Duration
	cut                    bool
}

func (t *faultTransport) plan() chaosPlan {
	t.mu.Lock()
	defer t.mu.Unlock()
	var p chaosPlan
	if t.cut {
		t.cutoffs++
		return chaosPlan{cut: true}
	}
	if t.rng.Float64() < t.delay && t.maxDelay > 0 {
		p.sleep = time.Duration(t.rng.Int63n(int64(t.maxDelay)))
		t.delays++
	}
	switch {
	case t.rng.Float64() < t.dropReq:
		p.dropReq = true
		t.droppedReqs++
	case t.rng.Float64() < t.dropResp:
		p.dropResp = true
		t.droppedResps++
	case t.rng.Float64() < t.dup:
		p.dup = true
		t.dups++
	}
	return p
}

// RoundTrip implements http.RoundTripper.
func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.plan()
	if p.cut {
		return nil, fmt.Errorf("%w: partitioned", errInjected)
	}
	if p.sleep > 0 {
		time.Sleep(p.sleep)
	}
	if p.dropReq {
		return nil, fmt.Errorf("%w: request dropped", errInjected)
	}
	if p.dup {
		if extra, err := cloneRequest(req); err == nil {
			if resp, err := t.base.RoundTrip(extra); err == nil {
				// First delivery consumed; the caller gets the second.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if p.dropResp {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: response dropped (request was processed)", errInjected)
	}
	return resp, nil
}

// cloneRequest builds a re-sendable copy of req. Requests built by
// http.NewRequest from a bytes.Reader (every JSON call in this package)
// carry GetBody; anything else with a body cannot be duplicated.
func cloneRequest(req *http.Request) (*http.Request, error) {
	clone := req.Clone(req.Context())
	if req.Body == nil {
		return clone, nil
	}
	if req.GetBody == nil {
		return nil, errors.New("service: chaos: request body not replayable")
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	clone.Body = body
	return clone, nil
}

// set applies a fault profile atomically.
func (t *faultTransport) set(dropReq, dropResp, dup, delay float64, maxDelay time.Duration) {
	t.mu.Lock()
	t.dropReq, t.dropResp, t.dup, t.delay, t.maxDelay = dropReq, dropResp, dup, delay, maxDelay
	t.mu.Unlock()
}

// partition opens (true) or heals (false) a hard partition.
func (t *faultTransport) partition(cut bool) {
	t.mu.Lock()
	t.cut = cut
	t.mu.Unlock()
}

// counts snapshots the injection counters.
func (t *faultTransport) counts() (droppedReqs, droppedResps, dups, delays, cutoffs int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedReqs, t.droppedResps, t.dups, t.delays, t.cutoffs
}
