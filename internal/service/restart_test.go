package service

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitJobTerminal polls a job over HTTP until it leaves the queue,
// tolerating transient transport errors (the restart tests poll across
// a coordinator death).
func waitJobTerminal(t *testing.T, cl *Client, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := cl.Job(id)
		if err == nil && st.State != JobQueued && st.State != JobRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still unfinished after %s (last status %+v, err %v)", id, timeout, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoordinatorRestartMidSweep is the durability acceptance test: a
// coordinator is kill -9'd while a worker holds every shard of an
// in-flight sweep, a replacement coordinator on the same state
// directory replays the journal, the worker transparently re-registers
// (410 path) and resumes, and the sweep completes with
//
//   - the same job ID the client was given before the crash,
//   - output byte-identical to an undisturbed standalone run,
//   - every simulation executed exactly once, all of them on the
//     worker (zero local-simulation failover on either coordinator).
func TestCoordinatorRestartMidSweep(t *testing.T) {
	cacheDir := t.TempDir()
	cfg := Config{
		Options:    fabricOpts(),
		CacheDir:   cacheDir,
		Workers:    2,
		LeaseTTL:   2 * time.Second,
		FabricPoll: 10 * time.Millisecond,
	}

	// Baseline: an undisturbed worker-less daemon on a separate cache.
	base, err := New(Config{Options: fabricOpts(), Workers: 2})
	if err != nil {
		t.Fatalf("baseline New: %v", err)
	}
	bts := httptest.NewServer(base)
	want := sweepBytes(t, NewClient(bts.URL))
	bts.Close()
	base.Close()

	// First coordinator on a plain listener so the address survives it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	url := "http://" + addr
	srv1, err := New(cfg)
	if err != nil {
		t.Fatalf("srv1 New: %v", err)
	}
	hs1 := &http.Server{Handler: srv1}
	go hs1.Serve(ln)

	// One worker whose runs block on a gate: it leases every shard but
	// cannot finish any until the gate opens — after the restart.
	gate := make(chan struct{})
	w := NewWorker(WorkerConfig{CoordinatorURL: url, Name: "survivor", Window: 4, Poll: 10 * time.Millisecond})
	w.beforeRun = func(string) { <-gate }
	wctx, wcancel := context.WithCancel(context.Background())
	werrc := make(chan error, 1)
	go func() { werrc <- w.Run(wctx) }()
	defer wcancel()
	awaitWorkers(t, srv1, 1)

	// Submit the sweep and wait until the worker holds all 4 shards
	// (each lease grant is journaled before it goes on the wire).
	cl := NewClient(url)
	jb, err := cl.SubmitSweep(SweepRequest{Preset: "base", Sockets: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for w.Inflight() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("worker leased %d shards, want 4", w.Inflight())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// kill -9: the listener dies and the process state freezes with the
	// journal un-compacted. NOTE: srv1.Close() must never run — its
	// drain would block forever on the frozen fabric.
	hs1.Close()
	srv1.kill()

	// The replacement coordinator replays the journal. Before the
	// worker re-registers it is live but not ready.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("srv2 New (replay): %v", err)
	}
	if !srv2.fabric.recovering() {
		t.Fatal("replayed coordinator not in recovery grace")
	}
	rec := httptest.NewRecorder()
	srv2.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz/ready", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "replaying") {
		t.Fatalf("readiness during replay = %d %q, want 503 replaying", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	srv2.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz/live", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("liveness during replay = %d, want 200", rec.Code)
	}

	// Rebind the same address (SO_REUSEADDR) and let the worker find it.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: srv2}
	go hs2.Serve(ln2)
	defer hs2.Close()
	awaitWorkers(t, srv2, 1)

	// Open the gate: the worker finishes its resumed shards and ships
	// them to the new coordinator, completing the pre-crash job ID.
	close(gate)
	st := waitJobTerminal(t, cl, jb.ID, 30*time.Second)
	if st.State != JobDone {
		t.Fatalf("replayed job %s = %s (%s), want done", jb.ID, st.State, st.Error)
	}
	got, err := cl.Result(jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("post-restart sweep diverged from baseline:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	// Exactly-once, and exactly where it should be: 4 simulations on
	// the worker, zero on either coordinator (no local failover).
	if n := w.Stats().Simulations; n != 4 {
		t.Fatalf("worker ran %d simulations, want exactly 4", n)
	}
	if n := srv1.RunnerStats().Simulations; n != 0 {
		t.Fatalf("killed coordinator ran %d local simulations, want 0", n)
	}
	if n := srv2.RunnerStats().Simulations; n != 0 {
		t.Fatalf("replayed coordinator ran %d local simulations, want 0", n)
	}

	// The recovery is observable: resumed-shard count and replay count.
	snap := srv2.fabric.snapshot()
	if snap.Resumed == 0 {
		t.Fatal("no shards recorded as resumed")
	}
	metrics, err := NewClient(url).Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"numagpud_journal_replays_total 1",
		"numagpud_fabric_shards_resumed_total",
	} {
		if !strings.Contains(metrics, line) {
			t.Fatalf("metrics missing %q:\n%s", line, metrics)
		}
	}

	// Shut the worker down cleanly, then the replacement coordinator.
	wcancel()
	select {
	case <-werrc:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never drained after restart")
	}
	hs2.Close()
	srv2.Close()
}

// TestStandaloneRestartReplaysQueuedJobs covers durability without any
// fabric fleet: a coordinator with queued work is killed, and the
// replacement finishes the jobs by itself once the recovery grace
// window lapses (no workers ever existed, so local simulation is the
// correct owner).
func TestStandaloneRestartReplaysQueuedJobs(t *testing.T) {
	cacheDir := t.TempDir()
	cfg := Config{
		Options:  tinyServiceOpts(),
		CacheDir: cacheDir,
		Workers:  1,
		LeaseTTL: 200 * time.Millisecond, // short grace so failover is quick
	}
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	cl1 := NewClient(ts1.URL)

	// A blocked fabric worker wedges the queue worker so both jobs are
	// still unfinished at the kill.
	reg, err := srv1.fabric.register("wedge", "wedge-proc", 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = reg
	j1, err := cl1.SubmitSweep(SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Other-Stream-Triad"}})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := cl1.SubmitExperiment("fig2")
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.kill()

	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("replay New: %v", err)
	}
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	cl2 := NewClient(ts2.URL)

	// Both pre-crash job IDs exist and finish. The sweep waits out the
	// grace window (leaseTTL) before failing over to local simulation —
	// on a coordinator that never had workers that is the only delay.
	for _, id := range []string{j1.ID, j2.ID} {
		st := waitJobTerminal(t, cl2, id, 30*time.Second)
		if st.State != JobDone {
			t.Fatalf("replayed job %s = %s (%s), want done", id, st.State, st.Error)
		}
	}
	if _, err := cl2.Result(j1.ID); err != nil {
		t.Fatalf("replayed sweep result: %v", err)
	}
}
