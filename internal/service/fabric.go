package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workload"
)

// This file is the coordinator half of the distributed sweep fabric:
// numagpud workers (see worker.go) register here, lease shards — one
// shard per unique RunKey — over a pull-based poll protocol, and ship
// result bytes back so the coordinator's DiskCache stays the single
// source of truth. The design, bottom to top:
//
//   - dedupe: every run entering the fabric first passes through the
//     coordinator's Runner (memo + DiskCache), so only genuinely new
//     RunKeys reach the shard table, and the table itself is keyed by
//     RunKey — two jobs, or a job and a remote numagpu client, asking
//     for the same simulation share one shard and one worker execution;
//   - leases: a shard is leased to exactly one worker at a time, and a
//     worker's polls are its heartbeat. A worker that stops polling for
//     LeaseTTL is declared dead and its leased shards are re-queued at
//     the front of the pending queue (counted in shards_requeued);
//   - windows: each worker declares an in-flight window at
//     registration; the coordinator never leases it more shards than
//     the window, so a slow worker cannot strand a sweep's tail;
//   - fallback: with no live workers (none registered, or all expired)
//     the dispatcher reports exp.ErrBackendUnavailable and the Runner
//     simulates locally, so a coordinator without a fleet behaves
//     exactly like a plain numagpud;
//   - ingest: results are verified against the shard's RunKey and
//     accepted at most once; a report for an unknown or already
//     completed shard (a worker that outlived its lease) is dropped and
//     counted in results_stale, never double-applied.
type fabric struct {
	leaseTTL time.Duration
	poll     time.Duration

	mu      sync.Mutex
	closed  bool
	workers map[string]*fabWorker
	shards  map[string]*shard // in-flight (pending or leased), by RunKey
	queue   []*shard          // pending shards, FIFO; lazily compacted
	nextWID int
	nextSID int

	// Counters (guarded by mu). shardsTotal counts unique RunKeys that
	// ever entered the fabric; completed counts shards finished with a
	// worker-produced result.
	shardsTotal  uint64
	completed    uint64
	failed       uint64
	requeued     uint64
	staleResults uint64
	workersSeen  uint64
	// departed holds the last absolute counters reported by each
	// dead/deregistered worker process. Workers report cumulative
	// per-process stats and are keyed by a stable process ID across
	// re-registrations, so a worker that expires and re-registers never
	// has its counters summed twice: per process, the coordinator keeps
	// the fieldwise max of what it has seen (the counters are
	// monotonic), whichever registration reported it.
	departed map[string]exp.Stats

	stop        chan struct{}
	janitorDone chan struct{}
}

// fabWorker is the coordinator-side record of one registered worker.
type fabWorker struct {
	id       string
	name     string
	process  string // stable across re-registrations; stats dedupe key
	window   int
	leased   map[string]*shard // by RunKey
	lastSeen time.Time
	stats    exp.Stats // absolute per-process counters, as of the last poll
}

// statsKey is the per-process accounting identity (worker id for
// clients too old to send one — then each registration is its own
// process, which degrades to the old accumulate-once behaviour).
func (w *fabWorker) statsKey() string {
	if w.process != "" {
		return w.process
	}
	return w.id
}

// maxStats merges two absolute counter snapshots of one process
// (fieldwise max: the counters are monotonic, so the larger value is
// simply the later observation).
func maxStats(a, b exp.Stats) exp.Stats {
	m := func(x, y uint64) uint64 {
		if x > y {
			return x
		}
		return y
	}
	return exp.Stats{
		Simulations: m(a.Simulations, b.Simulations),
		CacheHits:   m(a.CacheHits, b.CacheHits),
		CacheMisses: m(a.CacheMisses, b.CacheMisses),
		RemoteRuns:  m(a.RemoteRuns, b.RemoteRuns),
	}
}

// shard is one unique simulation in flight through the fabric.
type shard struct {
	id        int
	run       WireRun
	owner     *fabWorker // nil while pending
	completed bool
	res       core.Result
	err       error
	done      chan struct{}
}

// errNoWorkers is the internal unavailability signal: the dispatcher
// maps it to exp.ErrBackendUnavailable so the Runner simulates locally.
var errNoWorkers = errors.New("service: no live fabric workers")

func newFabric(leaseTTL, poll time.Duration) *fabric {
	f := &fabric{
		leaseTTL:    leaseTTL,
		poll:        poll,
		workers:     make(map[string]*fabWorker),
		shards:      make(map[string]*shard),
		departed:    make(map[string]exp.Stats),
		stop:        make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go f.janitor()
	return f
}

// close fails every in-flight shard with errNoWorkers (waiters fall
// back to local simulation, letting Server.Close drain its jobs) and
// stops the janitor.
func (f *fabric) close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.failAllLocked()
	f.mu.Unlock()
	close(f.stop)
	<-f.janitorDone
}

// janitor periodically expires workers whose heartbeat (poll) is older
// than the lease TTL, re-queueing their leased shards.
func (f *fabric) janitor() {
	defer close(f.janitorDone)
	tick := f.leaseTTL / 4
	if tick <= 0 {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case now := <-t.C:
			f.mu.Lock()
			for _, w := range f.workers {
				if now.Sub(w.lastSeen) > f.leaseTTL {
					f.removeWorkerLocked(w)
				}
			}
			f.mu.Unlock()
		}
	}
}

// removeWorkerLocked drops a worker (death or deregistration),
// re-queueing its leased shards at the front of the pending queue and
// folding its last-reported stats into the departed accumulator. If it
// was the last worker, every in-flight shard is failed with
// errNoWorkers so waiters fall back to local simulation.
func (f *fabric) removeWorkerLocked(w *fabWorker) {
	delete(f.workers, w.id)
	f.departed[w.statsKey()] = maxStats(f.departed[w.statsKey()], w.stats)
	for _, sh := range w.leased {
		sh.owner = nil
		f.queue = append([]*shard{sh}, f.queue...)
		f.requeued++
	}
	w.leased = nil
	if len(f.workers) == 0 {
		f.failAllLocked()
	}
}

// failAllLocked completes every live shard with errNoWorkers.
func (f *fabric) failAllLocked() {
	live := make([]*shard, 0, len(f.shards))
	for _, sh := range f.shards {
		live = append(live, sh)
	}
	for _, sh := range live {
		f.completeLocked(sh, core.Result{}, errNoWorkers)
	}
	f.queue = nil
}

// completeLocked finishes a shard exactly once: records the outcome,
// releases the lease, removes it from the in-flight table, and wakes
// the waiter.
func (f *fabric) completeLocked(sh *shard, res core.Result, err error) {
	if sh.completed {
		return
	}
	sh.completed = true
	sh.res, sh.err = res, err
	if sh.owner != nil {
		delete(sh.owner.leased, sh.run.Key)
		sh.owner = nil
	}
	delete(f.shards, sh.run.Key)
	switch {
	case err == nil:
		f.completed++
	case !errors.Is(err, errNoWorkers):
		f.failed++
	}
	close(sh.done)
}

// execute dispatches one run through the fabric and blocks until a
// worker completes it (or the fleet disappears). It is the body of the
// coordinator's exp.Backend: called at most once per RunKey at a time,
// because every caller goes through a Runner's singleflight memo first.
func (f *fabric) execute(run WireRun) (core.Result, error) {
	f.mu.Lock()
	if f.closed || len(f.workers) == 0 {
		f.mu.Unlock()
		return core.Result{}, errNoWorkers
	}
	sh, ok := f.shards[run.Key]
	if !ok {
		f.nextSID++
		sh = &shard{id: f.nextSID, run: run, done: make(chan struct{})}
		f.shards[run.Key] = sh
		f.queue = append(f.queue, sh)
		f.shardsTotal++
	}
	f.mu.Unlock()
	<-sh.done
	return sh.res, sh.err
}

// register adds a worker to the fleet and returns its lease terms.
func (f *fabric) register(name, process string, window int) (RegisterResponse, error) {
	if window < 1 {
		window = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return RegisterResponse{}, errNoWorkers
	}
	f.nextWID++
	f.workersSeen++
	w := &fabWorker{
		id:       fmt.Sprintf("worker-%d", f.nextWID),
		name:     name,
		process:  process,
		window:   window,
		leased:   make(map[string]*shard),
		lastSeen: time.Now(),
	}
	if w.name == "" {
		w.name = w.id
	}
	f.workers[w.id] = w
	return RegisterResponse{
		WorkerID:   w.id,
		LeaseTTLMs: f.leaseTTL.Milliseconds(),
		PollMs:     f.poll.Milliseconds(),
	}, nil
}

// errUnknownWorker tells a polling worker its registration is gone
// (expired or coordinator restart); the worker re-registers.
var errUnknownWorker = errors.New("service: unknown worker")

// deregister removes a worker gracefully (its drained lease set should
// be empty; anything still leased is re-queued).
func (f *fabric) deregister(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return errUnknownWorker
	}
	f.removeWorkerLocked(w)
	return nil
}

// pollWorker is one heartbeat round trip: ingest the worker's finished
// results, refresh its lease, and grant it new shards up to the free
// slice of its window.
func (f *fabric) pollWorker(req PollRequest) (PollResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[req.WorkerID]
	if !ok || f.closed {
		return PollResponse{}, errUnknownWorker
	}
	w.lastSeen = time.Now()
	w.stats = req.Stats

	for _, r := range req.Results {
		sh, ok := f.shards[r.Key]
		if !ok || sh.completed {
			// Completed by someone else, or the lease was re-queued and
			// finished before this late report arrived: drop it. The
			// shard's recorded result is already authoritative.
			f.staleResults++
			continue
		}
		if r.Error != "" {
			f.completeLocked(sh, core.Result{}, fmt.Errorf("worker %s: %s", w.name, r.Error))
			continue
		}
		if r.Result == nil {
			f.completeLocked(sh, core.Result{}, fmt.Errorf("worker %s: result missing for %s", w.name, r.Key))
			continue
		}
		f.completeLocked(sh, *r.Result, nil)
	}

	var resp PollResponse
	resp.PollMs = f.poll.Milliseconds()
	want := req.Want
	if free := w.window - len(w.leased); want > free {
		want = free
	}
	for want > 0 && len(f.queue) > 0 {
		sh := f.queue[0]
		f.queue = f.queue[1:]
		if sh.completed || sh.owner != nil {
			continue // lazily dropped (stale queue entry)
		}
		sh.owner = w
		w.leased[sh.run.Key] = sh
		resp.Shards = append(resp.Shards, WireShard{ID: sh.id, Run: sh.run})
		want--
	}
	return resp, nil
}

// snapshot captures the fabric's observable state for /metrics and
// /v1/fabric.
type fabricSnapshot struct {
	WorkersLive  int
	WorkersSeen  uint64
	Pending      int
	Leased       int
	ShardsTotal  uint64
	Completed    uint64
	Failed       uint64
	Requeued     uint64
	StaleResults uint64
	WorkerStats  exp.Stats // departed + last report of every live worker
	Workers      []FabricWorkerStatus
}

func (f *fabric) snapshot() fabricSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := fabricSnapshot{
		WorkersLive:  len(f.workers),
		WorkersSeen:  f.workersSeen,
		ShardsTotal:  f.shardsTotal,
		Completed:    f.completed,
		Failed:       f.failed,
		Requeued:     f.requeued,
		StaleResults: f.staleResults,
	}
	// Aggregate stats per worker process (fieldwise max of the departed
	// record and any live registration), then sum across processes —
	// re-registration can never double-count.
	perProcess := make(map[string]exp.Stats, len(f.departed)+len(f.workers))
	for k, st := range f.departed {
		perProcess[k] = st
	}
	leased := 0
	for _, w := range f.workers {
		leased += len(w.leased)
		perProcess[w.statsKey()] = maxStats(perProcess[w.statsKey()], w.stats)
		s.Workers = append(s.Workers, FabricWorkerStatus{
			ID:         w.id,
			Name:       w.name,
			Window:     w.window,
			Leased:     len(w.leased),
			LastSeenMs: time.Since(w.lastSeen).Milliseconds(),
			Stats:      w.stats,
		})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].ID < s.Workers[j].ID })
	for _, st := range perProcess {
		s.WorkerStats = s.WorkerStats.Add(st)
	}
	s.Leased = leased
	for _, sh := range f.shards {
		if !sh.completed && sh.owner == nil {
			s.Pending++
		}
	}
	return s
}

// fabricBackend adapts the fabric dispatcher to exp.Backend for the
// coordinator's own runners.
type fabricBackend struct{ f *fabric }

func (b fabricBackend) Execute(key string, cfg arch.Config, spec workload.Spec, opts workload.Options) (core.Result, error) {
	res, err := b.f.execute(WireRun{
		Key:       key,
		Cfg:       cfg,
		Workload:  spec.Name,
		IterScale: opts.IterScale,
		MaxCTAs:   opts.MaxCTAs,
	})
	if errors.Is(err, errNoWorkers) {
		return core.Result{}, exp.ErrBackendUnavailable
	}
	return res, err
}

// --- wire types ---

// WireRun is the canonical wire form of one simulation: its RunKey
// (content address), the full architectural configuration, the Table 2
// workload name, and the workload scaling options. A worker — or the
// coordinator handling POST /v1/fabric/runs — can re-derive the RunKey
// from the other fields, which is how version skew between binaries
// (differing cache schemas, new Config fields) is detected instead of
// silently producing mismatched results.
type WireRun struct {
	Key       string      `json:"key"`
	Cfg       arch.Config `json:"cfg"`
	Workload  string      `json:"workload"`
	IterScale float64     `json:"iter_scale"`
	MaxCTAs   int         `json:"max_ctas"`
}

// RegisterRequest is the body of POST /v1/fabric/workers.
type RegisterRequest struct {
	// Name is the worker's display name (default: its assigned ID).
	Name string `json:"name,omitempty"`
	// Process is a stable identifier for the worker process across
	// re-registrations (lease expiry + re-register): the coordinator
	// keys stats accounting by it so cumulative counters reported
	// under a new registration supersede, not add to, the old one's.
	Process string `json:"process,omitempty"`
	// Window is the maximum number of shards the worker wants leased at
	// once (its in-flight simulation budget).
	Window int `json:"window"`
}

// RegisterResponse carries the assigned worker identity and the
// coordinator's lease terms.
type RegisterResponse struct {
	WorkerID   string `json:"worker_id"`
	LeaseTTLMs int64  `json:"lease_ttl_ms"`
	PollMs     int64  `json:"poll_ms"`
}

// WireShard is one leased unit of work.
type WireShard struct {
	ID  int     `json:"id"`
	Run WireRun `json:"run"`
}

// ShardResult reports one finished shard back to the coordinator.
// Exactly one of Result and Error is set.
type ShardResult struct {
	ShardID int          `json:"shard_id"`
	Key     string       `json:"key"`
	Result  *core.Result `json:"result,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// PollRequest is the body of POST /v1/fabric/poll: the worker's
// heartbeat, finished results, current run counters, and how many new
// shards it can accept.
type PollRequest struct {
	WorkerID string        `json:"worker_id"`
	Want     int           `json:"want"`
	Results  []ShardResult `json:"results,omitempty"`
	Stats    exp.Stats     `json:"stats"`
}

// PollResponse grants shards and echoes the advertised poll interval.
type PollResponse struct {
	Shards []WireShard `json:"shards,omitempty"`
	PollMs int64       `json:"poll_ms"`
}

// FabricWorkerStatus is one worker row of GET /v1/fabric.
type FabricWorkerStatus struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Window     int       `json:"window"`
	Leased     int       `json:"leased"`
	LastSeenMs int64     `json:"last_seen_ms"`
	Stats      exp.Stats `json:"stats"`
}

// FabricStatus is the GET /v1/fabric payload: the live fleet plus the
// shard accounting the acceptance checks observe.
type FabricStatus struct {
	Workers           []FabricWorkerStatus `json:"workers"`
	PendingShards     int                  `json:"pending_shards"`
	LeasedShards      int                  `json:"leased_shards"`
	ShardsTotal       uint64               `json:"shards_total"`
	ShardsCompleted   uint64               `json:"shards_completed"`
	ShardsFailed      uint64               `json:"shards_failed"`
	ShardsRequeued    uint64               `json:"shards_requeued"`
	StaleResults      uint64               `json:"stale_results"`
	WorkerSimulations uint64               `json:"worker_simulations"`
}

// RemoteRunStatus is the wire form of one remotely submitted run
// (POST /v1/fabric/runs → GET /v1/fabric/runs/{id}).
type RemoteRunStatus struct {
	ID     string       `json:"id"`
	State  JobState     `json:"state"`
	Result *core.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// runID is the URL-safe content address of a RunKey (RunKeys themselves
// contain '/' and '|'), shared by the submit and poll endpoints.
func runID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// --- coordinator HTTP handlers ---

func (s *Server) handleFabricRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register request: %v", err)
		return
	}
	resp, err := s.fabric.register(req.Name, req.Process, req.Window)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleFabricDeregister(w http.ResponseWriter, r *http.Request) {
	if err := s.fabric.deregister(r.PathValue("id")); err != nil {
		writeError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
}

func (s *Server) handleFabricPoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad poll request: %v", err)
		return
	}
	resp, err := s.fabric.pollWorker(req)
	if err != nil {
		// 410 tells the worker its registration is gone; it re-registers.
		writeError(w, http.StatusGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFabricStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.fabric.snapshot()
	st := FabricStatus{
		Workers:           snap.Workers,
		PendingShards:     snap.Pending,
		LeasedShards:      snap.Leased,
		ShardsTotal:       snap.ShardsTotal,
		ShardsCompleted:   snap.Completed,
		ShardsFailed:      snap.Failed,
		ShardsRequeued:    snap.Requeued,
		StaleResults:      snap.StaleResults,
		WorkerSimulations: snap.WorkerStats.Simulations,
	}
	if st.Workers == nil {
		st.Workers = []FabricWorkerStatus{}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleFabricSubmitRun accepts one run from a remote client (numagpu
// -remote via FabricClient), verifies its RunKey against a locally
// derived one, and executes it through the coordinator's runner set —
// so remote submissions share the memo, the disk cache, and the worker
// fleet with every other source of work.
func (s *Server) handleFabricSubmitRun(w http.ResponseWriter, r *http.Request) {
	var run WireRun
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&run); err != nil {
		writeError(w, http.StatusBadRequest, "bad run request: %v", err)
		return
	}
	spec, ok := workload.ByName(run.Workload)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown workload %q", run.Workload)
		return
	}
	if err := run.Cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}
	runner := s.runners.runner(run.IterScale, run.MaxCTAs)
	if want := runner.RunKey(run.Cfg, spec); want != run.Key {
		// Client and coordinator disagree on the content address:
		// mixed simulator versions. Refusing keeps the cache coherent.
		writeError(w, http.StatusConflict, "run key mismatch (client %q, coordinator %q): simulator version skew?", run.Key, want)
		return
	}
	st, err := s.startRemoteRun(runner, run.Cfg, spec, run.Key)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleFabricRunStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.remoteMu.Lock()
	rr, ok := s.remoteRuns[id]
	var st RemoteRunStatus
	if ok {
		st = rr.status()
	}
	s.remoteMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// remoteRun tracks one POST /v1/fabric/runs submission. Mutable fields
// are guarded by Server.remoteMu.
type remoteRun struct {
	id    string
	state JobState
	res   core.Result
	err   string
}

func (rr *remoteRun) status() RemoteRunStatus {
	st := RemoteRunStatus{ID: rr.id, State: rr.state, Error: rr.err}
	if rr.state == JobDone {
		res := rr.res
		st.Result = &res
	}
	return st
}

// remoteRunRetention bounds the finished remote-run table, mirroring
// JobRetention for the job queue.
const remoteRunRetention = 4096

// startRemoteRun begins (or joins) the execution of one remotely
// submitted run, identified by the content address of its RunKey.
func (s *Server) startRemoteRun(runner *exp.Runner, cfg arch.Config, spec workload.Spec, key string) (RemoteRunStatus, error) {
	id := runID(key)
	s.mu.Lock()
	closing := s.closing
	if !closing {
		s.wg.Add(1) // Close waits for in-flight remote runs too
	}
	s.mu.Unlock()
	if closing {
		return RemoteRunStatus{}, errors.New("service: shutting down")
	}

	s.remoteMu.Lock()
	if rr, ok := s.remoteRuns[id]; ok {
		st := rr.status()
		s.remoteMu.Unlock()
		s.wg.Done() // joined an existing run
		return st, nil
	}
	rr := &remoteRun{id: id, state: JobRunning}
	s.remoteRuns[id] = rr
	s.remoteOrder = append(s.remoteOrder, id)
	s.evictRemoteLocked()
	st := rr.status() // snapshot before the goroutine can mutate rr
	s.remoteMu.Unlock()

	go func() {
		defer s.wg.Done()
		res, err := func() (res core.Result, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("%v", p)
				}
			}()
			return runner.Run(cfg, spec), nil
		}()
		s.remoteMu.Lock()
		if err != nil {
			rr.state, rr.err = JobFailed, err.Error()
		} else {
			rr.state, rr.res = JobDone, res
		}
		s.remoteMu.Unlock()
	}()
	return st, nil
}

// evictRemoteLocked drops the oldest finished remote runs beyond the
// retention bound. Caller holds s.remoteMu.
func (s *Server) evictRemoteLocked() {
	if len(s.remoteOrder) <= remoteRunRetention {
		return
	}
	kept := s.remoteOrder[:0]
	excess := len(s.remoteOrder) - remoteRunRetention
	for _, id := range s.remoteOrder {
		rr := s.remoteRuns[id]
		if excess > 0 && rr.state != JobRunning {
			delete(s.remoteRuns, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.remoteOrder = kept
}
