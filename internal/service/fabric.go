package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workload"
)

// This file is the coordinator half of the distributed sweep fabric:
// numagpud workers (see worker.go) register here, lease shards — one
// shard per unique RunKey — over a pull-based poll protocol, and ship
// result bytes back so the coordinator's DiskCache stays the single
// source of truth. The design, bottom to top:
//
//   - dedupe: every run entering the fabric first passes through the
//     coordinator's Runner (memo + DiskCache), so only genuinely new
//     RunKeys reach the shard table, and the table itself is keyed by
//     RunKey — two jobs, or a job and a remote numagpu client, asking
//     for the same simulation share one shard and one worker execution;
//   - leases: a shard is leased to exactly one worker at a time, and a
//     worker's polls are its heartbeat. A worker that stops polling for
//     LeaseTTL is declared dead and its leased shards are re-queued at
//     the front of the pending queue (counted in shards_requeued);
//   - windows: each worker declares an in-flight window at
//     registration; the coordinator never leases it more shards than
//     the window, so a slow worker cannot strand a sweep's tail;
//   - fallback: with no live workers (none registered, or all expired)
//     the dispatcher reports exp.ErrBackendUnavailable and the Runner
//     simulates locally, so a coordinator without a fleet behaves
//     exactly like a plain numagpud;
//   - ingest: results are verified against the shard's RunKey and
//     accepted at most once; a report for an unknown or already
//     completed shard (a worker that outlived its lease) is dropped and
//     counted in results_stale, never double-applied.
type fabric struct {
	leaseTTL time.Duration
	poll     time.Duration

	// cache, when non-nil, receives every worker-produced result at
	// ingest time (in addition to the Runner's own write-through). This
	// matters after a coordinator restart: a resumed shard's result can
	// arrive before any local waiter exists, and persisting it here is
	// what lets the re-executed job hit the cache instead of simulating
	// the key a second time.
	cache *DiskCache
	// jnl, when non-nil, records every grant, completion, and requeue so
	// a restarted coordinator can rebuild the lease picture.
	jnl *journal
	// deadlineFn, when non-nil, reports the job-level deadline to stamp
	// on newly created shards (zero = none). See Server.activeDeadline.
	deadlineFn func() time.Time

	mu      sync.Mutex
	closed  bool
	frozen  bool // kill -9 simulation: everything stops, nothing resolves
	workers map[string]*fabWorker
	shards  map[string]*shard // in-flight (pending or leased), by RunKey
	queue   []*shard          // pending shards, FIFO; lazily compacted
	nextWID int
	nextSID int

	// graceUntil, when armed after a journal replay, suppresses the
	// no-workers local-simulation fallback: a restarted coordinator
	// gives its fleet one lease TTL to re-register before concluding it
	// has none. graceArmed distinguishes "armed" from "expired".
	graceUntil time.Time
	graceArmed bool

	// Counters (guarded by mu). shardsTotal counts unique RunKeys that
	// ever entered the fabric; completed counts shards finished with a
	// worker-produced result.
	shardsTotal       uint64
	completed         uint64
	failed            uint64
	requeued          uint64
	staleResults      uint64
	workersSeen       uint64
	resumed           uint64 // shards rebuilt from journaled grants at restart
	deadlineCancelled uint64
	// departed holds the last absolute counters reported by each
	// dead/deregistered worker process. Workers report cumulative
	// per-process stats and are keyed by a stable process ID across
	// re-registrations, so a worker that expires and re-registers never
	// has its counters summed twice: per process, the coordinator keeps
	// the fieldwise max of what it has seen (the counters are
	// monotonic), whichever registration reported it.
	departed map[string]exp.Stats

	stop        chan struct{}
	janitorDone chan struct{}
}

// fabWorker is the coordinator-side record of one registered worker.
type fabWorker struct {
	id       string
	name     string
	process  string // stable across re-registrations; stats dedupe key
	window   int
	leased   map[string]*shard // by RunKey
	lastSeen time.Time
	lastSeq  int64     // highest PollRequest.Seq processed (0: legacy client)
	stats    exp.Stats // absolute per-process counters, as of the last poll
}

// statsKey is the per-process accounting identity (worker id for
// clients too old to send one — then each registration is its own
// process, which degrades to the old accumulate-once behaviour).
func (w *fabWorker) statsKey() string {
	if w.process != "" {
		return w.process
	}
	return w.id
}

// maxStats merges two absolute counter snapshots of one process
// (fieldwise max: the counters are monotonic, so the larger value is
// simply the later observation).
func maxStats(a, b exp.Stats) exp.Stats {
	m := func(x, y uint64) uint64 {
		if x > y {
			return x
		}
		return y
	}
	return exp.Stats{
		Simulations: m(a.Simulations, b.Simulations),
		CacheHits:   m(a.CacheHits, b.CacheHits),
		CacheMisses: m(a.CacheMisses, b.CacheMisses),
		RemoteRuns:  m(a.RemoteRuns, b.RemoteRuns),
	}
}

// shard is one unique simulation in flight through the fabric.
type shard struct {
	id        int
	run       WireRun
	owner     *fabWorker // nil while pending
	completed bool
	res       core.Result
	err       error
	done      chan struct{}

	// deadline, when non-zero, is the job-level deadline: a pending
	// shard past it is cancelled by the janitor. Leased shards always
	// run to completion — in-flight work is never shed.
	deadline time.Time

	// resumedProc, when non-empty, reserves a shard rebuilt from a
	// journaled grant for the worker process that held the lease before
	// the coordinator restarted: that process is still simulating the
	// key and will ship the result after it re-registers. The
	// reservation holds until resumedUntil, then the shard re-queues
	// normally (the prior owner died too).
	resumedProc  string
	resumedUntil time.Time
}

// errNoWorkers is the internal unavailability signal: the dispatcher
// maps it to exp.ErrBackendUnavailable so the Runner simulates locally.
var errNoWorkers = errors.New("service: no live fabric workers")

func newFabric(leaseTTL, poll time.Duration) *fabric {
	return newFabricState(leaseTTL, poll, nil, nil, nil)
}

// newFabricState builds a fabric wired to the durable layer: the shared
// DiskCache, the journal, and the granted-but-uncompleted shards
// recovered from it. Each recovered grant becomes a resumed shard
// reserved for its prior owner process; any replay that recovered state
// also arms the no-workers grace window so re-executed jobs wait for
// the fleet to re-register instead of failing over to local simulation.
func newFabricState(leaseTTL, poll time.Duration, cache *DiskCache, jnl *journal, grants []grantRecord) *fabric {
	f := &fabric{
		leaseTTL:    leaseTTL,
		poll:        poll,
		cache:       cache,
		jnl:         jnl,
		workers:     make(map[string]*fabWorker),
		shards:      make(map[string]*shard),
		departed:    make(map[string]exp.Stats),
		stop:        make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	now := time.Now()
	for _, g := range grants {
		if cache != nil {
			if _, ok := cache.Get(g.Key); ok {
				// Already completed and persisted; the re-executed job
				// will hit the cache. Resolve the stale grant record.
				if jnl != nil {
					jnl.append(journalRecord{T: "complete", Key: g.Key})
				}
				continue
			}
		}
		f.nextSID++
		f.shards[g.Key] = &shard{
			id:           f.nextSID,
			run:          WireRun{Key: g.Key}, // Cfg restored when a waiter joins
			done:         make(chan struct{}),
			resumedProc:  g.Proc,
			resumedUntil: now.Add(leaseTTL),
		}
		f.shardsTotal++
		f.resumed++
	}
	go f.janitor()
	return f
}

// armGrace opens the no-workers grace window: until it expires, a
// coordinator with zero registered workers queues work instead of
// reporting errNoWorkers (which would fail it over to local
// simulation). Called once, before any job can reach execute.
func (f *fabric) armGrace() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.graceArmed = true
	f.graceUntil = time.Now().Add(f.leaseTTL)
}

// graceActiveLocked reports whether the restart grace window is open.
func (f *fabric) graceActiveLocked() bool {
	return f.graceArmed && time.Now().Before(f.graceUntil)
}

// recovering reports whether the fabric is still waiting for its fleet
// to re-register after a restart (the readiness probe's input).
func (f *fabric) recovering() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.workers) == 0 && f.graceActiveLocked()
}

// close fails every in-flight shard with errNoWorkers (waiters fall
// back to local simulation, letting Server.Close drain its jobs) and
// stops the janitor.
func (f *fabric) close() {
	f.mu.Lock()
	if f.closed || f.frozen {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.graceArmed = false
	f.failAllLocked()
	f.mu.Unlock()
	close(f.stop)
	<-f.janitorDone
}

// freeze is the kill -9 simulation used by the restart and chaos tests:
// the janitor stops and every mutation is rejected, but — unlike close —
// no shard is resolved and no waiter is woken, exactly as if the
// process had died. Blocked waiters stay blocked forever; the "process"
// is gone.
func (f *fabric) freeze() {
	f.mu.Lock()
	if f.closed || f.frozen {
		f.mu.Unlock()
		return
	}
	f.frozen = true
	f.mu.Unlock()
	close(f.stop)
	<-f.janitorDone
}

// janitor periodically expires workers whose heartbeat (poll) is older
// than the lease TTL (re-queueing their leased shards), re-queues
// resumed shards whose prior owner never returned, cancels pending
// shards past their deadline, and closes out the restart grace window.
// The tick is leaseTTL/4 with ±50% jitter so a fleet of coordinators
// never thunders in lockstep, re-armed per iteration and stopped
// cleanly on close/freeze (no tick can fire after stop).
func (f *fabric) janitor() {
	defer close(f.janitorDone)
	base := f.leaseTTL / 4
	if base <= 0 {
		base = time.Second
	}
	jitter := func() time.Duration {
		return base/2 + time.Duration(rand.Int63n(int64(base)))
	}
	t := time.NewTimer(jitter())
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case now := <-t.C:
			f.sweepExpired(now)
			t.Reset(jitter())
		}
	}
}

// sweepExpired is one janitor pass.
func (f *fabric) sweepExpired(now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.frozen {
		return
	}
	for _, w := range f.workers {
		if now.Sub(w.lastSeen) > f.leaseTTL {
			f.removeWorkerLocked(w)
		}
	}
	for _, sh := range f.shards {
		if sh.completed || sh.owner != nil {
			continue
		}
		if sh.resumedProc != "" {
			// Reserved for a pre-restart owner; give it up only when the
			// reservation expires (the prior process died too).
			if now.After(sh.resumedUntil) {
				sh.resumedProc = ""
				f.requeueLocked(sh)
			}
			continue
		}
		if !sh.deadline.IsZero() && now.After(sh.deadline) {
			// Deadline passed while still pending: cancel. Leased shards
			// never take this path — in-flight work is never shed.
			f.deadlineCancelled++
			f.completeLocked(sh, core.Result{}, fmt.Errorf("service: shard cancelled: %w", exp.ErrDeadlineExceeded))
		}
	}
	if f.graceArmed && now.After(f.graceUntil) {
		f.graceArmed = false
		if len(f.workers) == 0 {
			// The fleet never came back: fall over to local simulation.
			f.failAllLocked()
		}
	}
}

// requeueLocked returns a pending shard to the front of the queue and
// journals the lease release.
func (f *fabric) requeueLocked(sh *shard) {
	f.queue = append([]*shard{sh}, f.queue...)
	f.requeued++
	f.jnl.append(journalRecord{T: "requeue", Key: sh.run.Key})
}

// removeWorkerLocked drops a worker (death or deregistration),
// re-queueing its leased shards at the front of the pending queue and
// folding its last-reported stats into the departed accumulator. If it
// was the last worker, every in-flight shard is failed with
// errNoWorkers so waiters fall back to local simulation — unless the
// restart grace window is open, in which case the shards stay queued
// for the fleet that is still re-registering.
func (f *fabric) removeWorkerLocked(w *fabWorker) {
	delete(f.workers, w.id)
	f.departed[w.statsKey()] = maxStats(f.departed[w.statsKey()], w.stats)
	for _, sh := range w.leased {
		sh.owner = nil
		f.requeueLocked(sh)
	}
	w.leased = nil
	if len(f.workers) == 0 && !f.graceActiveLocked() {
		f.failAllLocked()
	}
}

// failAllLocked completes every live shard with errNoWorkers.
func (f *fabric) failAllLocked() {
	live := make([]*shard, 0, len(f.shards))
	for _, sh := range f.shards {
		live = append(live, sh)
	}
	for _, sh := range live {
		f.completeLocked(sh, core.Result{}, errNoWorkers)
	}
	f.queue = nil
}

// completeLocked finishes a shard exactly once: records the outcome,
// persists a successful result straight into the disk cache (so a
// result arriving before any local waiter — possible only after a
// restart — still dedupes future executions), journals the resolution,
// releases the lease, removes it from the in-flight table, and wakes
// the waiter.
func (f *fabric) completeLocked(sh *shard, res core.Result, err error) {
	if sh.completed {
		return
	}
	sh.completed = true
	sh.res, sh.err = res, err
	if sh.owner != nil {
		delete(sh.owner.leased, sh.run.Key)
		sh.owner = nil
	}
	delete(f.shards, sh.run.Key)
	switch {
	case err == nil:
		f.completed++
		if f.cache != nil {
			f.cache.Put(sh.run.Key, res)
		}
	case !errors.Is(err, errNoWorkers):
		f.failed++
	}
	f.jnl.append(journalRecord{T: "complete", Key: sh.run.Key})
	close(sh.done)
}

// execute dispatches one run through the fabric and blocks until a
// worker completes it (or the fleet disappears). It is the body of the
// coordinator's exp.Backend: called at most once per RunKey at a time,
// because every caller goes through a Runner's singleflight memo first.
func (f *fabric) execute(run WireRun) (core.Result, error) {
	f.mu.Lock()
	if f.frozen {
		// The process is "dead" (restart test): nothing resolves, ever.
		f.mu.Unlock()
		select {}
	}
	if f.closed || (len(f.workers) == 0 && !f.graceActiveLocked()) {
		f.mu.Unlock()
		return core.Result{}, errNoWorkers
	}
	var deadline time.Time
	if f.deadlineFn != nil {
		deadline = f.deadlineFn()
	}
	sh, ok := f.shards[run.Key]
	if !ok {
		f.nextSID++
		sh = &shard{id: f.nextSID, run: run, done: make(chan struct{}), deadline: deadline}
		f.shards[run.Key] = sh
		f.queue = append(f.queue, sh)
		f.shardsTotal++
	} else {
		if sh.run.Workload == "" {
			// A resumed shard knows only its RunKey until the re-executed
			// job re-derives the full run; fill it in so a post-expiry
			// grant ships a complete WireRun.
			sh.run = run
		}
		// Two jobs sharing one shard: cancel only when every waiter has
		// a deadline, at the latest of them. A deadline-less waiter pins
		// the shard (in-flight work is never shed for a live job).
		if deadline.IsZero() || sh.deadline.IsZero() {
			sh.deadline = time.Time{}
		} else if deadline.After(sh.deadline) {
			sh.deadline = deadline
		}
	}
	f.mu.Unlock()
	<-sh.done
	return sh.res, sh.err
}

// register adds a worker to the fleet and returns its lease terms.
func (f *fabric) register(name, process string, window int) (RegisterResponse, error) {
	if window < 1 {
		window = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.frozen {
		return RegisterResponse{}, errNoWorkers
	}
	f.nextWID++
	f.workersSeen++
	w := &fabWorker{
		id:       fmt.Sprintf("worker-%d", f.nextWID),
		name:     name,
		process:  process,
		window:   window,
		leased:   make(map[string]*shard),
		lastSeen: time.Now(),
	}
	if w.name == "" {
		w.name = w.id
	}
	f.workers[w.id] = w
	// Adopt any resumed shards reserved for this worker process: its
	// pre-restart registration held their leases, and the process is
	// still simulating them (or holds their finished results in its
	// outbox). Re-leasing them to it keeps the reservation visible to
	// lease expiry and window accounting.
	if process != "" {
		for _, sh := range f.shards {
			if sh.resumedProc == process && sh.owner == nil && !sh.completed {
				sh.resumedProc = ""
				sh.owner = w
				w.leased[sh.run.Key] = sh
				f.jnl.append(journalRecord{T: "grant", Key: sh.run.Key, Proc: process})
			}
		}
	}
	return RegisterResponse{
		WorkerID:   w.id,
		LeaseTTLMs: f.leaseTTL.Milliseconds(),
		PollMs:     f.poll.Milliseconds(),
	}, nil
}

// errUnknownWorker tells a polling worker its registration is gone
// (expired or coordinator restart); the worker re-registers.
var errUnknownWorker = errors.New("service: unknown worker")

// deregister removes a worker gracefully (its drained lease set should
// be empty; anything still leased is re-queued).
func (f *fabric) deregister(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return errUnknownWorker
	}
	f.removeWorkerLocked(w)
	return nil
}

// pollWorker is one heartbeat round trip: ingest the worker's finished
// results, refresh its lease, reconcile the lease picture against what
// the worker reports actually holding, and grant it new shards up to
// the free slice of its window.
//
// Req.Seq orders a worker's polls: a request whose Seq was already
// processed is a duplicated delivery (retry or injected fault) — its
// results are still ingested (idempotent under the exactly-once guard)
// but it neither reconciles nor receives grants, so a stale duplicate
// racing a fresh poll can never requeue or double-lease shards. Seq 0
// marks a legacy client: always treated as fresh, never reconciled.
func (f *fabric) pollWorker(req PollRequest) (PollResponse, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[req.WorkerID]
	if !ok || f.closed || f.frozen {
		return PollResponse{}, errUnknownWorker
	}
	w.lastSeen = time.Now()
	w.stats = req.Stats
	fresh := req.Seq == 0 || req.Seq > w.lastSeq
	if req.Seq > w.lastSeq {
		w.lastSeq = req.Seq
	}

	for _, r := range req.Results {
		sh, ok := f.shards[r.Key]
		if !ok || sh.completed {
			// Completed by someone else, or the lease was re-queued and
			// finished before this late report arrived: drop it. The
			// shard's recorded result is already authoritative.
			f.staleResults++
			continue
		}
		if r.Error != "" {
			f.completeLocked(sh, core.Result{}, fmt.Errorf("worker %s: %s", w.name, r.Error))
			continue
		}
		if r.Result == nil {
			f.completeLocked(sh, core.Result{}, fmt.Errorf("worker %s: result missing for %s", w.name, r.Key))
			continue
		}
		f.completeLocked(sh, *r.Result, nil)
	}

	var resp PollResponse
	resp.PollMs = f.poll.Milliseconds()
	if !fresh {
		return resp, nil
	}

	if req.Seq > 0 {
		// Reconcile: a shard leased to this worker that it does not
		// report holding was granted in a response the worker never
		// received (dropped or duplicated delivery). Requeue it now
		// instead of waiting a full lease TTL.
		held := make(map[string]bool, len(req.Holding))
		for _, k := range req.Holding {
			held[k] = true
		}
		for key, sh := range w.leased {
			if !held[key] {
				delete(w.leased, key)
				sh.owner = nil
				f.requeueLocked(sh)
			}
		}
	}

	want := req.Want
	if free := w.window - len(w.leased); want > free {
		want = free
	}
	var deferred []*shard // resumed shards not yet re-derived: ungrantable
	for want > 0 && len(f.queue) > 0 {
		sh := f.queue[0]
		f.queue = f.queue[1:]
		if sh.completed || sh.owner != nil {
			continue // lazily dropped (stale queue entry)
		}
		if sh.run.Workload == "" {
			deferred = append(deferred, sh)
			continue
		}
		sh.owner = w
		w.leased[sh.run.Key] = sh
		f.jnl.append(journalRecord{T: "grant", Key: sh.run.Key, Proc: w.statsKey()})
		resp.Shards = append(resp.Shards, WireShard{ID: sh.id, Run: sh.run})
		want--
	}
	if len(deferred) > 0 {
		f.queue = append(deferred, f.queue...)
	}
	return resp, nil
}

// snapshot captures the fabric's observable state for /metrics and
// /v1/fabric.
type fabricSnapshot struct {
	WorkersLive       int
	WorkersSeen       uint64
	Pending           int
	Leased            int
	ShardsTotal       uint64
	Completed         uint64
	Failed            uint64
	Requeued          uint64
	StaleResults      uint64
	Resumed           uint64
	DeadlineCancelled uint64
	WorkerStats       exp.Stats // departed + last report of every live worker
	Workers           []FabricWorkerStatus
}

func (f *fabric) snapshot() fabricSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := fabricSnapshot{
		WorkersLive:       len(f.workers),
		WorkersSeen:       f.workersSeen,
		ShardsTotal:       f.shardsTotal,
		Completed:         f.completed,
		Failed:            f.failed,
		Requeued:          f.requeued,
		StaleResults:      f.staleResults,
		Resumed:           f.resumed,
		DeadlineCancelled: f.deadlineCancelled,
	}
	// Aggregate stats per worker process (fieldwise max of the departed
	// record and any live registration), then sum across processes —
	// re-registration can never double-count.
	perProcess := make(map[string]exp.Stats, len(f.departed)+len(f.workers))
	for k, st := range f.departed {
		perProcess[k] = st
	}
	leased := 0
	for _, w := range f.workers {
		leased += len(w.leased)
		perProcess[w.statsKey()] = maxStats(perProcess[w.statsKey()], w.stats)
		s.Workers = append(s.Workers, FabricWorkerStatus{
			ID:         w.id,
			Name:       w.name,
			Window:     w.window,
			Leased:     len(w.leased),
			LastSeenMs: time.Since(w.lastSeen).Milliseconds(),
			Stats:      w.stats,
		})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].ID < s.Workers[j].ID })
	for _, st := range perProcess {
		s.WorkerStats = s.WorkerStats.Add(st)
	}
	s.Leased = leased
	for _, sh := range f.shards {
		if !sh.completed && sh.owner == nil {
			s.Pending++
		}
	}
	return s
}

// liveGrants reports every lease (and unexpired resumed reservation)
// for the shutdown snapshot.
func (f *fabric) liveGrants() []grantRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []grantRecord
	for key, sh := range f.shards {
		if sh.completed {
			continue
		}
		switch {
		case sh.owner != nil:
			out = append(out, grantRecord{Key: key, Proc: sh.owner.statsKey()})
		case sh.resumedProc != "":
			out = append(out, grantRecord{Key: key, Proc: sh.resumedProc})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// fabricBackend adapts the fabric dispatcher to exp.Backend for the
// coordinator's own runners.
type fabricBackend struct{ f *fabric }

func (b fabricBackend) Execute(key string, cfg arch.Config, spec workload.Spec, opts workload.Options) (core.Result, error) {
	res, err := b.f.execute(WireRun{
		Key:       key,
		Cfg:       cfg,
		Workload:  spec.Name,
		IterScale: opts.IterScale,
		MaxCTAs:   opts.MaxCTAs,
	})
	if errors.Is(err, errNoWorkers) {
		return core.Result{}, exp.ErrBackendUnavailable
	}
	return res, err
}

// --- wire types ---

// WireRun is the canonical wire form of one simulation: its RunKey
// (content address), the full architectural configuration, the Table 2
// workload name, and the workload scaling options. A worker — or the
// coordinator handling POST /v1/fabric/runs — can re-derive the RunKey
// from the other fields, which is how version skew between binaries
// (differing cache schemas, new Config fields) is detected instead of
// silently producing mismatched results.
type WireRun struct {
	Key       string      `json:"key"`
	Cfg       arch.Config `json:"cfg"`
	Workload  string      `json:"workload"`
	IterScale float64     `json:"iter_scale"`
	MaxCTAs   int         `json:"max_ctas"`
}

// RegisterRequest is the body of POST /v1/fabric/workers.
type RegisterRequest struct {
	// Name is the worker's display name (default: its assigned ID).
	Name string `json:"name,omitempty"`
	// Process is a stable identifier for the worker process across
	// re-registrations (lease expiry + re-register): the coordinator
	// keys stats accounting by it so cumulative counters reported
	// under a new registration supersede, not add to, the old one's.
	Process string `json:"process,omitempty"`
	// Window is the maximum number of shards the worker wants leased at
	// once (its in-flight simulation budget).
	Window int `json:"window"`
}

// RegisterResponse carries the assigned worker identity and the
// coordinator's lease terms.
type RegisterResponse struct {
	WorkerID   string `json:"worker_id"`
	LeaseTTLMs int64  `json:"lease_ttl_ms"`
	PollMs     int64  `json:"poll_ms"`
}

// WireShard is one leased unit of work.
type WireShard struct {
	ID  int     `json:"id"`
	Run WireRun `json:"run"`
}

// ShardResult reports one finished shard back to the coordinator.
// Exactly one of Result and Error is set.
type ShardResult struct {
	ShardID int          `json:"shard_id"`
	Key     string       `json:"key"`
	Result  *core.Result `json:"result,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// PollRequest is the body of POST /v1/fabric/poll: the worker's
// heartbeat, finished results, current run counters, and how many new
// shards it can accept.
type PollRequest struct {
	WorkerID string `json:"worker_id"`
	// Seq orders this worker's polls (strictly increasing per process).
	// The coordinator answers an already-seen Seq — a duplicated or
	// retried delivery — with results ingested but no grants and no
	// reconciliation. 0 marks a legacy client without sequencing.
	Seq  int64 `json:"seq,omitempty"`
	Want int   `json:"want"`
	// Holding lists every RunKey the worker still owes a result for
	// (simulating or queued in its outbox). The coordinator requeues
	// leases absent from it: they were granted in a reply the worker
	// never received. Meaningful only when Seq > 0.
	Holding []string      `json:"holding,omitempty"`
	Results []ShardResult `json:"results,omitempty"`
	Stats   exp.Stats     `json:"stats"`
}

// PollResponse grants shards and echoes the advertised poll interval.
type PollResponse struct {
	Shards []WireShard `json:"shards,omitempty"`
	PollMs int64       `json:"poll_ms"`
}

// FabricWorkerStatus is one worker row of GET /v1/fabric.
type FabricWorkerStatus struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	Window     int       `json:"window"`
	Leased     int       `json:"leased"`
	LastSeenMs int64     `json:"last_seen_ms"`
	Stats      exp.Stats `json:"stats"`
}

// FabricStatus is the GET /v1/fabric payload: the live fleet plus the
// shard accounting the acceptance checks observe.
type FabricStatus struct {
	Workers           []FabricWorkerStatus `json:"workers"`
	PendingShards     int                  `json:"pending_shards"`
	LeasedShards      int                  `json:"leased_shards"`
	ShardsTotal       uint64               `json:"shards_total"`
	ShardsCompleted   uint64               `json:"shards_completed"`
	ShardsFailed      uint64               `json:"shards_failed"`
	ShardsRequeued    uint64               `json:"shards_requeued"`
	ShardsResumed     uint64               `json:"shards_resumed"`
	StaleResults      uint64               `json:"stale_results"`
	DeadlineCancelled uint64               `json:"deadline_cancelled"`
	WorkerSimulations uint64               `json:"worker_simulations"`
	AdmissionRejected uint64               `json:"admission_rejected"`
	JournalReplays    uint64               `json:"journal_replays"`
	JournalBytes      int64                `json:"journal_bytes"`
}

// RemoteRunStatus is the wire form of one remotely submitted run
// (POST /v1/fabric/runs → GET /v1/fabric/runs/{id}).
type RemoteRunStatus struct {
	ID     string       `json:"id"`
	State  JobState     `json:"state"`
	Result *core.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// runID is the URL-safe content address of a RunKey (RunKeys themselves
// contain '/' and '|'), shared by the submit and poll endpoints.
func runID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// --- coordinator HTTP handlers ---

func (s *Server) handleFabricRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "bad register request: %v", err)
		return
	}
	resp, err := s.fabric.register(req.Name, req.Process, req.Window)
	if err != nil {
		writeAPIError(w, http.StatusServiceUnavailable, codeDraining, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleFabricDeregister(w http.ResponseWriter, r *http.Request) {
	if err := s.fabric.deregister(r.PathValue("id")); err != nil {
		writeAPIError(w, http.StatusGone, codeUnknownWorker, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
}

func (s *Server) handleFabricPoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "bad poll request: %v", err)
		return
	}
	resp, err := s.fabric.pollWorker(req)
	if err != nil {
		// 410 tells the worker its registration is gone; it re-registers.
		writeAPIError(w, http.StatusGone, codeUnknownWorker, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFabricStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.fabric.snapshot()
	st := FabricStatus{
		Workers:           snap.Workers,
		PendingShards:     snap.Pending,
		LeasedShards:      snap.Leased,
		ShardsTotal:       snap.ShardsTotal,
		ShardsCompleted:   snap.Completed,
		ShardsFailed:      snap.Failed,
		ShardsRequeued:    snap.Requeued,
		ShardsResumed:     snap.Resumed,
		StaleResults:      snap.StaleResults,
		DeadlineCancelled: snap.DeadlineCancelled,
		WorkerSimulations: snap.WorkerStats.Simulations,
		AdmissionRejected: s.admission.rejectedTotal(),
		JournalReplays:    s.jnl.replayCount(),
		JournalBytes:      s.jnl.bytes(),
	}
	if st.Workers == nil {
		st.Workers = []FabricWorkerStatus{}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleFabricSubmitRun accepts one run from a remote client (numagpu
// -remote via FabricClient), verifies its RunKey against a locally
// derived one, and executes it through the coordinator's runner set —
// so remote submissions share the memo, the disk cache, and the worker
// fleet with every other source of work.
func (s *Server) handleFabricSubmitRun(w http.ResponseWriter, r *http.Request) {
	var run WireRun
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&run); err != nil {
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "bad run request: %v", err)
		return
	}
	spec, ok := workload.ByName(run.Workload)
	if !ok {
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "unknown workload %q", run.Workload)
		return
	}
	if err := run.Cfg.Validate(); err != nil {
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "invalid config: %v", err)
		return
	}
	runner := s.runners.runner(run.IterScale, run.MaxCTAs)
	if want := runner.RunKey(run.Cfg, spec); want != run.Key {
		// Client and coordinator disagree on the content address:
		// mixed simulator versions. Refusing keeps the cache coherent.
		writeAPIError(w, http.StatusConflict, codeVersionSkew, "run key mismatch (client %q, coordinator %q): simulator version skew?", run.Key, want)
		return
	}
	st, err := s.startRemoteRun(runner, run.Cfg, spec, run.Key)
	if err != nil {
		writeAPIError(w, http.StatusServiceUnavailable, codeDraining, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleFabricRunStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.remoteMu.Lock()
	rr, ok := s.remoteRuns[id]
	var st RemoteRunStatus
	if ok {
		st = rr.status()
	}
	s.remoteMu.Unlock()
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeNotFound, "unknown run %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// remoteRun tracks one POST /v1/fabric/runs submission. Mutable fields
// are guarded by Server.remoteMu.
type remoteRun struct {
	id    string
	state JobState
	res   core.Result
	err   string
}

func (rr *remoteRun) status() RemoteRunStatus {
	st := RemoteRunStatus{ID: rr.id, State: rr.state, Error: rr.err}
	if rr.state == JobDone {
		res := rr.res
		st.Result = &res
	}
	return st
}

// remoteRunRetention bounds the finished remote-run table, mirroring
// JobRetention for the job queue.
const remoteRunRetention = 4096

// startRemoteRun begins (or joins) the execution of one remotely
// submitted run, identified by the content address of its RunKey.
func (s *Server) startRemoteRun(runner *exp.Runner, cfg arch.Config, spec workload.Spec, key string) (RemoteRunStatus, error) {
	id := runID(key)
	s.mu.Lock()
	closing := s.closing
	if !closing {
		s.wg.Add(1) // Close waits for in-flight remote runs too
	}
	s.mu.Unlock()
	if closing {
		return RemoteRunStatus{}, errors.New("service: shutting down")
	}

	s.remoteMu.Lock()
	if rr, ok := s.remoteRuns[id]; ok {
		st := rr.status()
		s.remoteMu.Unlock()
		s.wg.Done() // joined an existing run
		return st, nil
	}
	rr := &remoteRun{id: id, state: JobRunning}
	s.remoteRuns[id] = rr
	s.remoteOrder = append(s.remoteOrder, id)
	s.remoteActive++
	s.evictRemoteLocked()
	st := rr.status() // snapshot before the goroutine can mutate rr
	s.remoteMu.Unlock()

	go func() {
		defer s.wg.Done()
		defer func() {
			s.remoteMu.Lock()
			s.remoteActive--
			s.remoteMu.Unlock()
		}()
		res, err := func() (res core.Result, err error) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("%v", p)
				}
			}()
			return runner.Run(cfg, spec), nil
		}()
		s.remoteMu.Lock()
		if err != nil {
			rr.state, rr.err = JobFailed, err.Error()
		} else {
			rr.state, rr.res = JobDone, res
		}
		s.remoteMu.Unlock()
	}()
	return st, nil
}

// evictRemoteLocked drops the oldest finished remote runs beyond the
// retention bound. Caller holds s.remoteMu.
func (s *Server) evictRemoteLocked() {
	if len(s.remoteOrder) <= remoteRunRetention {
		return
	}
	kept := s.remoteOrder[:0]
	excess := len(s.remoteOrder) - remoteRunRetention
	for _, id := range s.remoteOrder {
		rr := s.remoteRuns[id]
		if excess > 0 && rr.state != JobRunning {
			delete(s.remoteRuns, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.remoteOrder = kept
}
