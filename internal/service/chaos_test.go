package service

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workload"
)

// TestFaultTransportDeterministicSchedule pins the repro contract: two
// transports with the same seed and profile sample the identical fault
// schedule, so a failing chaos seed replays.
func TestFaultTransportDeterministicSchedule(t *testing.T) {
	mk := func() *faultTransport {
		ft := newFaultTransport(nil, 42)
		ft.set(0.2, 0.2, 0.2, 0.3, 10*time.Millisecond)
		return ft
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		pa, pb := a.plan(), b.plan()
		if pa != pb {
			t.Fatalf("schedule diverged at step %d: %+v vs %+v", i, pa, pb)
		}
	}
	ar1, ar2, ad, adl, _ := a.counts()
	if ar1+ar2+ad+adl == 0 {
		t.Fatal("profile injected nothing in 200 samples")
	}
}

// TestFaultTransportSemantics drives each fault mode against a counting
// server: a request drop never reaches it, a response drop reaches it
// exactly once, and a duplicated delivery reaches it twice while the
// caller still gets a good reply.
func TestFaultTransportSemantics(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	post := func(ft *faultTransport) error {
		cl := &Client{BaseURL: ts.URL, HTTPClient: &http.Client{Transport: ft}}
		return cl.do("POST", "/", map[string]string{"x": "y"}, nil)
	}

	ft := newFaultTransport(nil, 1)
	ft.set(1, 0, 0, 0, 0) // drop every request
	if err := post(ft); !errors.Is(err, errInjected) {
		t.Fatalf("dropped request err = %v, want injected", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("dropped request reached the server %d times", hits.Load())
	}

	ft.set(0, 1, 0, 0, 0) // drop every response
	if err := post(ft); !errors.Is(err, errInjected) {
		t.Fatalf("dropped response err = %v, want injected", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("response drop: server saw %d requests, want exactly 1 (it DID process it)", hits.Load())
	}

	ft.set(0, 0, 1, 0, 0) // duplicate every delivery
	if err := post(ft); err != nil {
		t.Fatalf("duplicated delivery should still succeed: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("duplicate delivery: server saw %d total requests, want 3 (1 + 2)", hits.Load())
	}

	ft.partition(true)
	if err := post(ft); !errors.Is(err, errInjected) {
		t.Fatalf("partitioned err = %v, want injected", err)
	}
	if hits.Load() != 3 {
		t.Fatal("partitioned request reached the server")
	}
	ft.partition(false)
	if err := post(ft); err != nil {
		t.Fatalf("healed partition: %v", err)
	}
}

// chaosExecuteArgs builds a valid Execute argument set for client tests.
func chaosExecuteArgs() (workload.Spec, workload.Options) {
	spec, _ := workload.ByName("Other-Stream-Triad")
	return spec, workload.Options{}
}

// TestFabricClientRetries429HonoringRetryAfter: shed submissions (429)
// are retryable — the client backs off at least the server's
// Retry-After and then succeeds.
func TestFabricClientRetries429HonoringRetryAfter(t *testing.T) {
	var posts atomic.Int64
	res := core.Result{Name: "n", Cycles: 9}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeAPIError(w, http.StatusTooManyRequests, "queue_full", "shed")
			return
		}
		writeJSON(w, http.StatusAccepted, RemoteRunStatus{ID: "x", State: JobDone, Result: &res})
	}))
	defer ts.Close()

	fc := NewFabricClient(ts.URL)
	fc.Poll = time.Millisecond
	fc.Backoff = time.Millisecond
	fc.MaxBackoff = 5 * time.Millisecond
	spec, opts := chaosExecuteArgs()
	start := time.Now()
	got, err := fc.Execute("k", arch.Config{}, spec, opts)
	if err != nil || got.Cycles != 9 {
		t.Fatalf("Execute = %+v, %v; want success after one 429", got, err)
	}
	if posts.Load() != 2 {
		t.Fatalf("posts = %d, want 2 (one shed, one success)", posts.Load())
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %s, want >= the 1s Retry-After", elapsed)
	}
}

// TestFabricClientHalfOpenLatch: exhausting the retry budget latches
// the client down (later runs fail fast without touching the wire);
// after MaxBackoff exactly one probe goes out, and its success reopens
// the client for everyone.
func TestFabricClientHalfOpenLatch(t *testing.T) {
	res := core.Result{Name: "n", Cycles: 3}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, RemoteRunStatus{ID: "x", State: JobDone, Result: &res})
	}))
	defer ts.Close()

	ft := newFaultTransport(nil, 7)
	ft.partition(true)
	fc := NewFabricClient(ts.URL)
	fc.HTTPClient = &http.Client{Transport: ft}
	fc.Poll = time.Millisecond
	fc.Retries = 2
	fc.Backoff = time.Millisecond
	fc.MaxBackoff = 60 * time.Millisecond
	spec, opts := chaosExecuteArgs()

	if _, err := fc.Execute("k", arch.Config{}, spec, opts); err == nil {
		t.Fatal("Execute through a partition succeeded")
	}
	_, _, _, _, attempts := ft.counts()
	if attempts != 2 {
		t.Fatalf("budget-exhausting run made %d attempts, want Retries=2", attempts)
	}

	// Latched: the next run fails fast without a wire attempt.
	if _, err := fc.Execute("k2", arch.Config{}, spec, opts); !errors.Is(err, errCoordinatorDown) {
		t.Fatalf("latched Execute err = %v, want fail-fast marked-down", err)
	}
	if _, _, _, _, after := ft.counts(); after != attempts {
		t.Fatalf("latched run touched the wire: %d -> %d attempts", attempts, after)
	}

	// Heal the partition, wait past MaxBackoff: the next run is the
	// half-open probe, succeeds, and the latch opens for later runs too.
	ft.partition(false)
	time.Sleep(80 * time.Millisecond)
	if got, err := fc.Execute("k3", arch.Config{}, spec, opts); err != nil || got.Cycles != 3 {
		t.Fatalf("probe Execute = %+v, %v; want recovery", got, err)
	}
	if got, err := fc.Execute("k4", arch.Config{}, spec, opts); err != nil || got.Cycles != 3 {
		t.Fatalf("post-recovery Execute = %+v, %v", got, err)
	}
}

// TestFabricClientFailedProbeRearmsLatch: a probe against a still-dead
// coordinator re-arms the latch instead of letting every queued run
// burn its own retry budget.
func TestFabricClientFailedProbeRearmsLatch(t *testing.T) {
	ft := newFaultTransport(nil, 7)
	ft.partition(true)
	fc := NewFabricClient("http://127.0.0.1:0")
	fc.HTTPClient = &http.Client{Transport: ft}
	fc.Poll = time.Millisecond
	fc.Retries = 2
	fc.Backoff = time.Millisecond
	fc.MaxBackoff = 40 * time.Millisecond
	spec, opts := chaosExecuteArgs()

	if _, err := fc.Execute("k", arch.Config{}, spec, opts); err == nil {
		t.Fatal("Execute through a partition succeeded")
	}
	time.Sleep(60 * time.Millisecond) // latch half-opens
	if _, err := fc.Execute("k2", arch.Config{}, spec, opts); err == nil {
		t.Fatal("probe against dead coordinator succeeded")
	}
	// Immediately after the failed probe the latch is re-armed.
	_, _, _, _, before := ft.counts()
	if _, err := fc.Execute("k3", arch.Config{}, spec, opts); !errors.Is(err, errCoordinatorDown) {
		t.Fatalf("post-probe Execute err = %v, want fail-fast", err)
	}
	if _, _, _, _, after := ft.counts(); after != before {
		t.Fatal("re-armed latch still let a request through")
	}
}

// TestWorkerReadinessProbe: a worker's readiness flips to 503 once it
// starts draining, while liveness stays 200.
func TestWorkerReadinessProbe(t *testing.T) {
	srv, ts, _ := clusterServerShort(t)
	w, cancel, errc := startTestWorker(t, ts.URL, "probe-w", 1)
	awaitWorkers(t, srv, 1)

	h := httptest.NewServer(w.Handler())
	defer h.Close()
	get := func(path string) int {
		resp, err := http.Get(h.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz/ready"); code != http.StatusOK {
		t.Fatalf("ready = %d, want 200", code)
	}
	cancel()
	select {
	case <-errc:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never drained")
	}
	if code := get("/healthz/ready"); code != http.StatusServiceUnavailable {
		t.Fatalf("ready after drain = %d, want 503", code)
	}
	if code := get("/healthz/live"); code != http.StatusOK {
		t.Fatalf("live after drain = %d, want 200", code)
	}
}

// clusterServerShort is clusterServer without the simulation-heavy
// options dependency — safe for the -short tier.
func clusterServerShort(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv, err := New(Config{
		Options:    tinyServiceOpts(),
		Workers:    2,
		LeaseTTL:   time.Minute,
		FabricPoll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, NewClient(ts.URL)
}

// --- randomized chaos acceptance test ---

var (
	chaosSeed    = flag.Int64("chaos.seed", 0, "chaos fault-schedule seed (0 = derive from the clock)")
	chaosSoak    = flag.Bool("chaos.soak", false, "run the long multi-seed chaos soak")
	chaosSoakFor = flag.Duration("chaos.soakfor", 5*time.Minute, "chaos soak duration")
)

// TestChaosFig3 runs the paper's fig3 experiment on a 2-worker fabric
// while the chaos harness drops, delays, duplicates, and partitions
// traffic, one worker is killed mid-sweep, and the coordinator itself
// is kill -9'd and restarted from its journal. The experiment must
// still produce output byte-identical to the committed golden, with
// every simulation executed exactly once and none of them falling back
// to coordinator-local execution.
func TestChaosFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	seed := *chaosSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	runChaosFig3(t, seed)
}

// TestChaosSoak replays the chaos scenario under fresh seeds until the
// soak budget is spent. Off by default; the nightly CI job enables it:
//
//	go test ./internal/service -run TestChaosSoak -chaos.soak -timeout 20m
func TestChaosSoak(t *testing.T) {
	if !*chaosSoak {
		t.Skip("enable with -chaos.soak")
	}
	base := *chaosSeed
	if base == 0 {
		base = time.Now().UnixNano()
	}
	start := time.Now()
	for i := 0; time.Since(start) < *chaosSoakFor; i++ {
		seed := base + int64(i)
		if !t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) { runChaosFig3(t, seed) }) {
			return
		}
	}
}

// runChaosFig3 is one full chaos scenario under one seed. On any
// failure the logged seed reproduces the exact fault schedule.
func runChaosFig3(t *testing.T, seed int64) {
	t.Logf("chaos seed %d (rerun: go test ./internal/service -run TestChaosFig3 -chaos.seed=%d)", seed, seed)
	want, err := os.ReadFile(filepath.Join("..", "exp", "testdata", "golden", "fig3.golden"))
	if err != nil {
		t.Fatalf("golden: %v", err)
	}

	opts := exp.QuickOptions()
	opts.Parallelism = 8
	cfg := Config{
		Options:    opts,
		CacheDir:   t.TempDir(),
		Workers:    2,
		LeaseTTL:   time.Second,
		FabricPoll: 10 * time.Millisecond,
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	url := "http://" + addr
	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := &http.Server{Handler: srv1}
	go hs1.Serve(ln)

	// Two workers behind independently seeded fault injectors. Worker 1
	// is the designated victim: after 8 simulations every further run
	// wedges before executing (the in-process stand-in for "the process
	// died with leases held"), and once it is fully wedged it is killed.
	const victimSims = 8
	profile := func(ft *faultTransport) { ft.set(0.05, 0.05, 0.05, 0.2, 20*time.Millisecond) }
	ft1 := newFaultTransport(nil, seed+1)
	ft2 := newFaultTransport(nil, seed+2)
	profile(ft1)
	profile(ft2)

	var started, wedged atomic.Int64
	w1 := NewWorker(WorkerConfig{
		CoordinatorURL: url, Name: "victim", Window: 4, Poll: 10 * time.Millisecond,
		HTTPClient: &http.Client{Transport: ft1},
	})
	w1.beforeRun = func(string) {
		if started.Add(1) > victimSims {
			wedged.Add(1)
			select {} // never returns; the worker is about to be killed
		}
	}
	w2 := NewWorker(WorkerConfig{
		CoordinatorURL: url, Name: "survivor", Window: 4, Poll: 10 * time.Millisecond,
		HTTPClient: &http.Client{Transport: ft2},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w1errc := make(chan error, 1)
	w2errc := make(chan error, 1)
	go func() { w1errc <- w1.Run(ctx) }()
	go func() { w2errc <- w2.Run(ctx) }()

	// Chaos driver: short partitions of the surviving worker, always
	// shorter than the lease TTL so a partition alone never kills it.
	stopChaos := make(chan struct{})
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(seed + 3))
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(time.Duration(rng.Int63n(int64(400 * time.Millisecond)))):
			}
			ft2.partition(true)
			select {
			case <-stopChaos:
			case <-time.After(time.Duration(rng.Int63n(int64(250 * time.Millisecond)))):
			}
			ft2.partition(false)
		}
	}()
	defer func() { close(stopChaos); <-chaosDone }()

	// Both workers must be registered before the job is submitted —
	// otherwise the first execute calls legitimately fall back to local
	// simulation (the no-workers path) and the no-failover assertion
	// below would be meaningless. >= 2 because a dropped registration
	// response can leave a ghost registration behind.
	waitCond(t, 30*time.Second, "both workers registered", func() bool {
		return srv1.fabric.snapshot().WorkersLive >= 2
	})

	cl := NewClient(url)
	jb, err := cl.SubmitExperiment("fig3")
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 — kill the victim worker once it is quiescent: all its
	// non-wedged simulations finished AND shipped (outbox empty), so the
	// kill models a crash that loses leases but no completed results.
	waitCond(t, 60*time.Second, "victim wedged and drained", func() bool {
		if wedged.Load() == 0 {
			return false
		}
		w1.mu.Lock()
		outbox := len(w1.results)
		inflight := w1.inflight
		w1.mu.Unlock()
		return int64(inflight) == wedged.Load() && outbox == 0
	})
	w1.kill()
	<-w1errc
	t.Logf("victim killed after %d simulations (%d shards wedged)", w1.Stats().Simulations, wedged.Load())

	// Phase 2 — kill -9 the coordinator mid-sweep and restart it from
	// the journal on the same address.
	waitCond(t, 120*time.Second, "enough shards completed before coordinator kill", func() bool {
		return srv1.fabric.snapshot().Completed >= 15
	})
	hs1.Close()
	srv1.kill()
	srv2, err := New(cfg)
	if err != nil {
		t.Fatalf("coordinator restart: %v", err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: srv2}
	go hs2.Serve(ln2)
	defer func() {
		hs2.Close()
		srv2.Close()
	}()

	// Phase 3 — the surviving worker re-registers through its faulty
	// transport and the sweep runs to completion.
	st := waitJobTerminal(t, cl, jb.ID, 5*time.Minute)
	if st.State != JobDone {
		t.Fatalf("chaos job %s = %s (%s), want done", jb.ID, st.State, st.Error)
	}
	nr, err := cl.ExperimentResult(jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := exp.RenderGolden(exp.Result{Table: nr.Table, Summary: nr.Summary})
	if !bytes.Equal(got, want) {
		t.Fatalf("fig3 under chaos diverged from golden (%d bytes vs %d)", len(got), len(want))
	}

	// Exactly-once: every simulation ran on exactly one worker — the
	// unique-RunKey count is the content-addressed cache entry count —
	// and neither coordinator fell back to local simulation.
	if n := srv1.RunnerStats().Simulations + srv2.RunnerStats().Simulations; n != 0 {
		t.Fatalf("coordinators ran %d local simulations, want 0 (no failover)", n)
	}
	workerSims := w1.Stats().Simulations + w2.Stats().Simulations
	entries := uint64(srv2.disk.Stats().Entries)
	if workerSims != entries {
		t.Fatalf("worker simulations = %d, unique run keys = %d: duplicates or losses under chaos", workerSims, entries)
	}
	metrics, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "numagpud_journal_replays_total 1") {
		t.Fatal("metrics missing journal replay count after restart")
	}

	dr1, dp1, du1, dl1, _ := ft1.counts()
	dr2, dp2, du2, dl2, cut2 := ft2.counts()
	t.Logf("chaos injected: victim %d/%d/%d/%d (dropReq/dropResp/dup/delay), survivor %d/%d/%d/%d + %d partition rejections",
		dr1, dp1, du1, dl1, dr2, dp2, du2, dl2, cut2)
	if dr1+dp1+du1+dl1+dr2+dp2+du2+dl2 == 0 {
		t.Fatal("chaos harness injected no faults — the test proved nothing")
	}

	cancel()
	select {
	case <-w2errc:
	case <-time.After(30 * time.Second):
		t.Fatal("surviving worker never drained")
	}
}

// waitCond polls cond until true or the deadline passes.
func waitCond(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
