package service

import (
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// FabricClient implements exp.Backend over HTTP against a numagpud
// coordinator: each Execute submits one run (POST /v1/fabric/runs,
// idempotent by the run's content address) and polls it to completion.
// Plugged into exp.NewRemoteRunner — or `numagpu -remote URL` — it
// drives any experiment through the coordinator's memo, disk cache,
// and worker fleet while the client keeps full responsibility for
// request order and table rendering, so the output is byte-identical
// to a local run.
//
// A FabricClient never returns exp.ErrBackendUnavailable: a client
// that asked for remote execution should fail loudly when the
// coordinator is unreachable, not silently simulate locally. (The
// coordinator itself falls back to local simulation when it has no
// workers, so a reachable coordinator always completes the run.)
type FabricClient struct {
	// BaseURL is the coordinator root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Poll is the status poll interval (default 150ms).
	Poll time.Duration
	// Retries bounds consecutive transport failures tolerated while
	// submitting or polling before the run is failed (default 20).
	Retries int

	// down latches after a submit exhausts its transport retries, so a
	// sweep against a dead coordinator fails its remaining runs
	// immediately instead of re-probing per run.
	down atomic.Bool
}

// NewFabricClient returns a client for the coordinator at base.
func NewFabricClient(base string) *FabricClient {
	return &FabricClient{BaseURL: base}
}

// Execute implements exp.Backend.
func (c *FabricClient) Execute(key string, cfg arch.Config, spec workload.Spec, opts workload.Options) (core.Result, error) {
	cl := &Client{BaseURL: c.BaseURL, HTTPClient: c.HTTPClient}
	poll := c.Poll
	if poll <= 0 {
		poll = 150 * time.Millisecond
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 20
	}
	if c.down.Load() {
		return core.Result{}, errors.New("service: fabric submit: coordinator unreachable (marked down)")
	}
	run := WireRun{
		Key:       key,
		Cfg:       cfg,
		Workload:  spec.Name,
		IterScale: opts.IterScale,
		MaxCTAs:   opts.MaxCTAs,
	}

	submit := func() (RemoteRunStatus, error) {
		var st RemoteRunStatus
		for attempt := 0; ; attempt++ {
			err := cl.do("POST", "/v1/fabric/runs", run, &st)
			if err == nil {
				return st, nil
			}
			var ae *apiError
			if errors.As(err, &ae) {
				// An HTTP-level reply is authoritative: 400/409/503
				// will not get better with retries.
				return st, fmt.Errorf("service: fabric submit: %w", err)
			}
			if attempt+1 >= retries {
				c.down.Store(true)
				return st, fmt.Errorf("service: fabric submit: %w", err)
			}
			time.Sleep(poll)
		}
	}

	st, err := submit()
	if err != nil {
		return core.Result{}, err
	}
	failures := 0
	resubmits := 0
	for {
		switch st.State {
		case JobDone:
			if st.Result == nil {
				return core.Result{}, fmt.Errorf("service: fabric run %s done without result", st.ID)
			}
			return *st.Result, nil
		case JobFailed:
			return core.Result{}, fmt.Errorf("service: fabric run failed: %s", st.Error)
		}
		time.Sleep(poll)
		if err := cl.do("GET", "/v1/fabric/runs/"+st.ID, nil, &st); err != nil {
			var ae *apiError
			if errors.As(err, &ae) {
				if ae.Status == http.StatusNotFound && resubmits < retries {
					// The coordinator forgot the run (restart, or
					// retention eviction under a slow poller):
					// resubmit — idempotent by content address, and
					// cheap when the result already reached the disk
					// cache.
					resubmits++
					if st, err = submit(); err != nil {
						return core.Result{}, err
					}
					continue
				}
				// Any other HTTP reply is authoritative: fail now
				// rather than burning the whole retry budget on it.
				return core.Result{}, fmt.Errorf("service: fabric poll: %w", err)
			}
			failures++
			if failures >= retries {
				return core.Result{}, fmt.Errorf("service: fabric poll: %w", err)
			}
			continue
		}
		failures = 0
	}
}
