package service

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// FabricClient implements exp.Backend over HTTP against a numagpud
// coordinator: each Execute submits one run (POST /v1/fabric/runs,
// idempotent by the run's content address) and polls it to completion.
// Plugged into exp.NewRemoteRunner — or `numagpu -remote URL` — it
// drives any experiment through the coordinator's memo, disk cache,
// and worker fleet while the client keeps full responsibility for
// request order and table rendering, so the output is byte-identical
// to a local run.
//
// A FabricClient never returns exp.ErrBackendUnavailable: a client
// that asked for remote execution should fail loudly when the
// coordinator is unreachable, not silently simulate locally. (The
// coordinator itself falls back to local simulation when it has no
// workers, so a reachable coordinator always completes the run.)
//
// Failure handling is deliberately layered:
//
//   - transport errors and shed replies (429, 503) retry with jittered
//     exponential backoff, honoring the server's Retry-After hint, up
//     to the Retries budget — a coordinator restart or overload is
//     ridden out, and the jitter keeps a whole sweep's runs from
//     retrying in lockstep;
//   - any other HTTP error reply (400, 404 outside the resubmit path,
//     409, 500) is authoritative and fails the run immediately instead
//     of burning the budget on an answer that will not change;
//   - exhausting the budget latches the client "down" so the sweep's
//     remaining runs fail fast; after MaxBackoff the latch half-opens
//     and exactly one run probes the coordinator — success closes the
//     latch for everyone, failure re-arms it. A fast-failing
//     coordinator therefore costs one request per MaxBackoff, not one
//     full retry budget per run.
type FabricClient struct {
	// BaseURL is the coordinator root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Poll is the status poll interval (default 150ms).
	Poll time.Duration
	// Retries bounds consecutive retryable failures (transport errors
	// and 429/503 sheds) tolerated while submitting or polling before
	// the run is failed (default 20).
	Retries int
	// Backoff is the initial retry delay (default 50ms); successive
	// retryable failures double it, jittered to [0.5,1.5)×, up to
	// MaxBackoff (default 2s). A server Retry-After raises the floor.
	Backoff time.Duration
	// MaxBackoff caps the retry delay and sets how long the down latch
	// holds before half-opening (default 2s).
	MaxBackoff time.Duration

	// Down latch (half-open circuit breaker). While downUntil is in the
	// future every Execute fails fast; once it passes, one caller takes
	// the probing token and tries the coordinator for real.
	downMu    sync.Mutex
	downUntil time.Time
	probing   bool
}

// NewFabricClient returns a client for the coordinator at base.
func NewFabricClient(base string) *FabricClient {
	return &FabricClient{BaseURL: base}
}

// errCoordinatorDown is the fail-fast error while the down latch holds.
var errCoordinatorDown = errors.New("service: fabric submit: coordinator unreachable (marked down)")

func (c *FabricClient) backoffParams() (base, cap time.Duration) {
	base = c.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap = c.MaxBackoff
	if cap <= 0 {
		cap = 2 * time.Second
	}
	if cap < base {
		cap = base
	}
	return base, cap
}

// backoffDelay computes the jittered exponential delay for retry
// attempt n (0-based), never below floor (the server's Retry-After).
func (c *FabricClient) backoffDelay(attempt int, floor time.Duration) time.Duration {
	base, cap := c.backoffParams()
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// Jitter to [0.5, 1.5)× so a sweep's worth of concurrent retries
	// spreads out instead of hammering the coordinator in lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if d < floor {
		d = floor
	}
	return d
}

// acquire gates one Execute through the down latch. It returns probe =
// true when this call holds the half-open probing token (it must call
// release with the outcome), and an error when the latch is closed.
func (c *FabricClient) acquire() (probe bool, err error) {
	c.downMu.Lock()
	defer c.downMu.Unlock()
	if c.downUntil.IsZero() {
		return false, nil
	}
	if time.Now().Before(c.downUntil) || c.probing {
		return false, errCoordinatorDown
	}
	c.probing = true
	return true, nil
}

// release reports a gated call's outcome: success closes the latch for
// every waiting run; a failed probe re-arms it for another MaxBackoff.
func (c *FabricClient) release(probe, ok bool) {
	_, cap := c.backoffParams()
	c.downMu.Lock()
	defer c.downMu.Unlock()
	if ok {
		c.downUntil = time.Time{}
		c.probing = false
		return
	}
	if probe {
		c.probing = false
		c.downUntil = time.Now().Add(cap)
	}
}

// latchDown arms the down latch after a run exhausts its retry budget.
func (c *FabricClient) latchDown() {
	_, cap := c.backoffParams()
	c.downMu.Lock()
	if c.downUntil.IsZero() {
		c.downUntil = time.Now().Add(cap)
	}
	c.downMu.Unlock()
}

// retryable reports whether an error is worth retrying (transport
// failure or an explicit shed) and the server-requested delay floor.
func retryable(err error) (ok bool, floor time.Duration) {
	var ae *Error
	if !errors.As(err, &ae) {
		return true, 0 // transport-level: retry
	}
	if ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable {
		return true, ae.RetryAfter
	}
	return false, 0
}

// Execute implements exp.Backend.
func (c *FabricClient) Execute(key string, cfg arch.Config, spec workload.Spec, opts workload.Options) (core.Result, error) {
	cl := &Client{BaseURL: c.BaseURL, HTTPClient: c.HTTPClient}
	poll := c.Poll
	if poll <= 0 {
		poll = 150 * time.Millisecond
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 20
	}
	probe, err := c.acquire()
	if err != nil {
		return core.Result{}, err
	}
	run := WireRun{
		Key:       key,
		Cfg:       cfg,
		Workload:  spec.Name,
		IterScale: opts.IterScale,
		MaxCTAs:   opts.MaxCTAs,
	}

	submit := func() (RemoteRunStatus, error) {
		var st RemoteRunStatus
		for attempt := 0; ; attempt++ {
			err := cl.do("POST", "/v1/fabric/runs", run, &st)
			if err == nil {
				return st, nil
			}
			retry, floor := retryable(err)
			if !retry {
				// An authoritative HTTP reply (400/404/409/500) will not
				// get better with retries.
				return st, fmt.Errorf("service: fabric submit: %w", err)
			}
			if attempt+1 >= retries {
				c.latchDown()
				return st, fmt.Errorf("service: fabric submit: %w", err)
			}
			time.Sleep(c.backoffDelay(attempt, floor))
		}
	}

	st, err := submit()
	c.release(probe, err == nil)
	if err != nil {
		return core.Result{}, err
	}
	failures := 0
	resubmits := 0
	for {
		switch st.State {
		case JobDone:
			if st.Result == nil {
				return core.Result{}, fmt.Errorf("service: fabric run %s done without result", st.ID)
			}
			return *st.Result, nil
		case JobFailed:
			return core.Result{}, fmt.Errorf("service: fabric run failed: %s", st.Error)
		}
		time.Sleep(poll)
		if err := cl.do("GET", "/v1/fabric/runs/"+st.ID, nil, &st); err != nil {
			var ae *Error
			if errors.As(err, &ae) && ae.Status == http.StatusNotFound && resubmits < retries {
				// The coordinator forgot the run (restart, or retention
				// eviction under a slow poller): resubmit — idempotent
				// by content address, and cheap when the result already
				// reached the disk cache.
				resubmits++
				if st, err = submit(); err != nil {
					return core.Result{}, err
				}
				continue
			}
			retry, floor := retryable(err)
			if !retry {
				// Any other HTTP reply is authoritative: fail now
				// rather than burning the whole retry budget on it.
				return core.Result{}, fmt.Errorf("service: fabric poll: %w", err)
			}
			failures++
			if failures >= retries {
				c.latchDown()
				return core.Result{}, fmt.Errorf("service: fabric poll: %w", err)
			}
			time.Sleep(c.backoffDelay(failures-1, floor))
			continue
		}
		failures = 0
	}
}
