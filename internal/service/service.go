// Package service implements numagpud: a long-running HTTP/JSON daemon
// that serves the paper's experiments and arbitrary (config, workload)
// sweeps as API resources, on top of the concurrent exp.Runner harness.
//
// The layering, bottom to top:
//
//   - one shared exp.Runner holds the in-memory singleflight memo, so
//     any number of concurrent jobs asking for the same (config,
//     workload) pair share a single simulation;
//   - an optional DiskCache (exp.Cache) sits under the memo, so warm
//     results are served without re-simulating and survive restarts;
//   - a bounded job queue drained by a fixed worker pool runs the
//     requests asynchronously: POST returns a job ID immediately and
//     GET /v1/jobs/{id} polls status and per-run progress.
//
// Endpoints:
//
//	GET  /v1/experiments          list runnable experiments
//	POST /v1/experiments/{name}   enqueue one experiment
//	POST /v1/sweeps               enqueue a (config, workloads) sweep
//	GET  /v1/jobs                 page through jobs in submission order
//	                              (?limit=&after=, cursor in "next")
//	GET  /v1/jobs/{id}            job status + run progress counters
//	GET  /v1/jobs/{id}/events     typed event stream (SSE; resumable
//	                              via Last-Event-ID)
//	GET  /v1/jobs/{id}/result     deterministic result JSON (done jobs)
//	GET  /v1/cache                cache + run-count statistics
//	GET  /metrics                 Prometheus text format
//	GET  /healthz                 liveness probe (alias: /healthz/live)
//	GET  /healthz/ready           readiness probe (503 while draining
//	                              or replaying the state journal)
//
// Every endpoint reports failures with one JSON envelope,
// {"error": {"code", "message", "retry_after_ms"}}; see errors.go for
// the stable code strings.
//
// Sweep-fabric endpoints (see fabric.go; the daemon is always a
// capable coordinator, and numagpud -worker joins one as a worker):
//
//	GET    /v1/fabric              fleet + shard accounting
//	POST   /v1/fabric/workers      worker registration
//	DELETE /v1/fabric/workers/{id} graceful worker departure
//	POST   /v1/fabric/poll         worker heartbeat/lease/result round trip
//	POST   /v1/fabric/runs         submit one run (numagpu -remote)
//	GET    /v1/fabric/runs/{id}    poll a submitted run
//
// Result payloads are deterministic: the same request against the same
// simulator version yields byte-identical /result bodies, whether the
// runs were simulated, memoized, or replayed from the disk cache.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Config sizes a Server.
type Config struct {
	// Options configures the underlying exp.Runner (divisor, iteration
	// scale, workload set, parallelism within one sweep). The Cache and
	// Progress fields are owned by the Server and overwritten.
	Options exp.Options
	// CacheDir, when non-empty, enables the persistent result cache
	// rooted at that directory.
	CacheDir string
	// StateDir roots the coordinator's durable state (job/lease journal
	// + snapshots; see journal.go and docs/ROBUSTNESS.md). Empty
	// defaults to "state" under CacheDir; with no CacheDir either,
	// durability is off and a restart loses queued jobs (the pre-journal
	// behaviour).
	StateDir string
	// TenantQuota, when > 0, is the per-tenant admission quota in jobs
	// per minute (burst: one minute's worth), keyed by the X-Tenant
	// request header; submissions beyond it get 429 + Retry-After.
	TenantQuota float64
	// Workers is the number of queue workers executing jobs
	// concurrently (default 2). Total simulation concurrency is
	// bounded by Workers × Options.Parallelism.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64, numagpud -max-queue); submissions beyond it are shed
	// with 429 + a Retry-After derived from queue depth × observed
	// per-job latency. In-flight jobs are never shed.
	QueueDepth int
	// Mirror, when non-nil, additionally receives every per-run
	// progress line (numagpud -v wires this to stderr).
	Mirror io.Writer
	// JobRetention bounds how many finished (done or failed) jobs are
	// kept for status/result queries; the oldest finished jobs are
	// evicted beyond it (default 256). Queued and running jobs are
	// never evicted.
	JobRetention int
	// LeaseTTL is how long a registered fabric worker may go without
	// polling before it is declared dead and its leased shards are
	// re-queued (default 15s).
	LeaseTTL time.Duration
	// FabricPoll is the poll/heartbeat interval advertised to fabric
	// workers (default 250ms).
	FabricPoll time.Duration
}

// JobState is the lifecycle of a job: queued → running → done|failed.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// job is the server-side record of one submitted request. All mutable
// fields are guarded by Server.mu.
type job struct {
	id       string
	kind     string // "experiment" or "sweep"
	name     string
	sweep    *SweepRequest
	tenant   string
	deadline time.Time // zero: none
	state    JobState
	result   []byte
	err      string

	// events is the append-only typed event log served by
	// GET /v1/jobs/{id}/events (see events.go). Not journaled.
	events []JobEvent
	// runsTotal/runsDone/runsCached are the run progress counters:
	// total is known upfront for sweeps (0 for experiments, which
	// discover their runs as they go), done counts this job's unique
	// completed runs, cached the subset resolved without new work.
	runsTotal  int
	runsDone   int
	runsCached int
}

// JobStatus is the wire form of a job returned by the status
// endpoints.
type JobStatus struct {
	ID         string   `json:"id"`
	Kind       string   `json:"kind"`
	Name       string   `json:"name"`
	State      JobState `json:"state"`
	RunsTotal  int      `json:"runs_total,omitempty"`
	RunsDone   int      `json:"runs_done,omitempty"`
	RunsCached int      `json:"runs_cached,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// JobsPage is one page of GET /v1/jobs: jobs in submission order plus
// the cursor to pass as ?after= for the next page (empty on the last
// page). The cursor is a job ID; because IDs are dense and ordered, an
// evicted cursor still resumes at the right place.
type JobsPage struct {
	Jobs []JobStatus `json:"jobs"`
	Next string      `json:"next,omitempty"`
}

// ExperimentInfo describes one runnable experiment.
type ExperimentInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// CacheStatus is the /v1/cache payload: disk footprint plus the
// runner's run accounting.
type CacheStatus struct {
	Enabled     bool   `json:"enabled"`
	Dir         string `json:"dir,omitempty"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Simulations uint64 `json:"simulations"`
}

// Server is the numagpud daemon: an http.Handler plus the worker pool
// behind it. Create with New, release with Close.
type Server struct {
	cfg       Config
	runner    *exp.Runner // the job queue's runner (the configured options)
	runners   *runnerSet  // every runner, by (IterScale, MaxCTAs); shares cache+fabric
	disk      *DiskCache
	fabric    *fabric
	jnl       *journal // nil when durability is off
	admission *admission
	mux       *http.ServeMux
	start     time.Time

	// deadlineJobsCancelled counts jobs failed at dequeue because their
	// deadline had already passed (guarded by mu).
	deadlineJobsCancelled uint64

	mu      sync.Mutex
	closing bool
	jobs    map[string]*job
	order   []string // job IDs in submission order
	active  map[*job]bool
	nextID  int
	queued  int
	// eventCond (on mu) wakes SSE streams when any job gains an event
	// or changes state; see events.go.
	eventCond *sync.Cond

	// Remotely submitted fabric runs (POST /v1/fabric/runs), by the
	// content address of their RunKey. remoteActive counts runs still
	// executing; while any is in flight, activeDeadline reports no
	// deadline (remote runs carry none of their own).
	remoteMu     sync.Mutex
	remoteRuns   map[string]*remoteRun
	remoteOrder  []string
	remoteActive int

	queue     chan *job
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Server, opening the disk cache (if configured) and
// starting the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.JobRetention < 1 {
		cfg.JobRetention = 256
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.FabricPoll <= 0 {
		cfg.FabricPoll = 250 * time.Millisecond
	}
	s := &Server{
		cfg:        cfg,
		start:      time.Now(),
		jobs:       make(map[string]*job),
		active:     make(map[*job]bool),
		queue:      make(chan *job, cfg.QueueDepth),
		remoteRuns: make(map[string]*remoteRun),
	}
	s.eventCond = sync.NewCond(&s.mu)
	s.admission = newAdmission(cfg.TenantQuota)
	opts := cfg.Options
	opts.Cache = nil // owned by the Server: only the configured DiskCache is wired in
	if cfg.CacheDir != "" {
		disk, err := OpenDiskCache(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("service: open cache: %w", err)
		}
		s.disk = disk
		opts.Cache = disk
	}
	// Per-run attribution rides the typed event log (each job's
	// Session reports its own completions); the legacy progress writer
	// only feeds the operator mirror now.
	opts.Progress = cfg.Mirror

	// Durable coordinator state: replay the journal (job submissions +
	// shard grants not yet resolved) so a restarted coordinator resumes
	// its in-flight sweeps instead of losing them.
	stateDir := cfg.StateDir
	if stateDir == "" && cfg.CacheDir != "" {
		stateDir = filepath.Join(cfg.CacheDir, "state")
	}
	state := &journalState{Version: 1}
	if stateDir != "" {
		jnl, st, err := openJournal(stateDir)
		if err != nil {
			return nil, fmt.Errorf("service: open state journal: %w", err)
		}
		s.jnl, state = jnl, st
		s.nextID = state.NextJobID
	}

	// Every simulation this server runs — job queue or remote
	// submission — is offered to the sweep fabric first; with no
	// registered workers the backend reports unavailable and the
	// runner simulates locally, so a worker-less coordinator behaves
	// exactly like a standalone daemon. Grants recovered from the
	// journal become resumed shards reserved for their pre-restart
	// owners (completed ones dedupe against the disk cache), and any
	// recovery arms the grace window that holds off the local-simulation
	// fallback until the fleet has had a lease TTL to re-register.
	s.fabric = newFabricState(cfg.LeaseTTL, cfg.FabricPoll, s.disk, s.jnl, state.Grants)
	s.fabric.deadlineFn = s.activeDeadline
	if state.recovered() {
		s.fabric.armGrace()
	}
	opts.Backend = fabricBackend{s.fabric}
	s.runners = newRunnerSet(opts)
	s.runner = s.runners.runner(opts.IterScale, opts.MaxCTAs)

	// Re-enqueue the journaled jobs that never finished, preserving
	// their IDs so clients polling across the restart reconnect to the
	// same job. Their completed simulations are already in the disk
	// cache, so re-execution costs only the unfinished tail.
	for i := range state.Jobs {
		jr := &state.Jobs[i]
		j := &job{id: jr.ID, kind: jr.Kind, name: jr.Name, tenant: jr.Tenant, state: JobQueued}
		if jr.DeadlineMs > 0 {
			j.deadline = time.UnixMilli(jr.DeadlineMs)
		}
		if len(jr.Sweep) > 0 {
			var sw SweepRequest
			if json.Unmarshal(jr.Sweep, &sw) == nil {
				j.sweep = &sw
			}
		}
		j.events = []JobEvent{{ID: 1, Type: EventState, State: JobQueued}}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if err := s.enqueue(j); err != nil {
			// Shrunk queue across the restart: shed the tail explicitly
			// rather than silently losing it.
			j.state = JobFailed
			j.err = "lost across restart: job queue full on replay"
			j.events = append(j.events,
				JobEvent{ID: 2, Type: EventError, Message: j.err},
				JobEvent{ID: 3, Type: EventState, State: JobFailed})
			s.jnl.append(journalRecord{T: "fail", ID: j.id})
			continue
		}
		s.queued++
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	mux.HandleFunc("POST /v1/experiments/{name}", s.handleSubmitExperiment)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("GET /v1/fabric", s.handleFabricStatus)
	mux.HandleFunc("POST /v1/fabric/workers", s.handleFabricRegister)
	mux.HandleFunc("DELETE /v1/fabric/workers/{id}", s.handleFabricDeregister)
	mux.HandleFunc("POST /v1/fabric/poll", s.handleFabricPoll)
	mux.HandleFunc("POST /v1/fabric/runs", s.handleFabricSubmitRun)
	mux.HandleFunc("GET /v1/fabric/runs/{id}", s.handleFabricRunStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /healthz/live", s.handleHealth)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	s.mux = mux

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops accepting new submissions, shuts the sweep fabric down
// (in-flight leased shards fail over to local simulation so the drain
// cannot hang on a dead fleet), waits for every already-queued job and
// remote run to finish, then compacts and closes the state journal so
// the next start replays a clean snapshot. Submissions after Close fail
// with 503.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		s.eventCond.Broadcast() // release SSE streams so the drain cannot hang on them
		s.mu.Unlock()
		s.fabric.close()
		close(s.queue)
	})
	s.wg.Wait()
	if s.jnl != nil {
		s.jnl.compact(s.journalSnapshot())
		s.jnl.close()
	}
}

// kill simulates kill -9 for the restart and chaos tests: admission
// stops, the fabric freezes without resolving anything, and the journal
// file handle is dropped without compaction — exactly the state an
// abrupt process death leaves on disk. Queued and running jobs are
// abandoned mid-flight; a replacement Server opened on the same cache
// and state directories recovers them.
func (s *Server) kill() {
	s.mu.Lock()
	s.closing = true
	s.eventCond.Broadcast()
	s.mu.Unlock()
	s.fabric.freeze()
	s.jnl.close()
}

// journalSnapshot captures the durable view of the current state: every
// unfinished job in submission order plus the fabric's live grants.
func (s *Server) journalSnapshot() *journalState {
	st := &journalState{Version: 1}
	s.mu.Lock()
	st.NextJobID = s.nextID
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state != JobQueued && j.state != JobRunning {
			continue
		}
		st.Jobs = append(st.Jobs, s.record(j))
	}
	s.mu.Unlock()
	st.Grants = s.fabric.liveGrants()
	if s.jnl != nil {
		st.Replays = s.jnl.replayCount()
	}
	return st
}

// record builds the durable form of one job. Caller holds s.mu.
func (s *Server) record(j *job) jobRecord {
	jr := jobRecord{ID: j.id, Kind: j.kind, Name: j.name, Tenant: j.tenant}
	if !j.deadline.IsZero() {
		jr.DeadlineMs = j.deadline.UnixMilli()
	}
	if j.sweep != nil {
		if b, err := json.Marshal(j.sweep); err == nil {
			jr.Sweep = b
		}
	}
	return jr
}

// RunnerStats exposes the aggregate run accounting across every runner
// the server holds — the job queue's plus one per distinct
// (IterScale, MaxCTAs) seen on the fabric run endpoint — used by the
// restart tests and the metrics endpoint.
func (s *Server) RunnerStats() exp.Stats { return s.runners.stats() }

// runnerSet lazily builds one exp.Runner per (IterScale, MaxCTAs)
// pair, all sharing the same cache, progress sink, and fabric backend.
// The coordinator needs this because remote clients ship their own
// workload scaling (a -quick client against a default-scale daemon),
// and RunKeys embed that scaling — each scaling gets its own memo
// keyspace, while the DiskCache below remains shared and keyed
// collision-free.
type runnerSet struct {
	base exp.Options

	mu      sync.Mutex
	runners map[runnerScale]*exp.Runner
}

type runnerScale struct {
	iterScale float64
	maxCTAs   int
}

func newRunnerSet(base exp.Options) *runnerSet {
	return &runnerSet{base: base, runners: make(map[runnerScale]*exp.Runner)}
}

// runner returns the shared Runner for one workload scaling, creating
// it on first use. Scale normalization mirrors exp.Options.normalized
// so 0 and the default never produce two runners with one keyspace.
func (rs *runnerSet) runner(iterScale float64, maxCTAs int) *exp.Runner {
	if iterScale <= 0 {
		iterScale = 1
	}
	if maxCTAs < 0 {
		maxCTAs = 0
	}
	key := runnerScale{iterScale, maxCTAs}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if r, ok := rs.runners[key]; ok {
		return r
	}
	opts := rs.base
	opts.IterScale = iterScale
	opts.MaxCTAs = maxCTAs
	r := exp.NewRunner(opts)
	rs.runners[key] = r
	return r
}

// stats sums the run counters across every runner in the set.
func (rs *runnerSet) stats() exp.Stats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var sum exp.Stats
	for _, r := range rs.runners {
		sum = sum.Add(r.Stats())
	}
	return sum
}

// errQueueFull is returned by submit when the queue is at capacity;
// errClosing when the server is shutting down. Admission maps the
// former to 429 + Retry-After (shed, come back later) and handlers map
// the latter to 503 (going away for good).
var (
	errQueueFull = errors.New("service: job queue full")
	errClosing   = errors.New("service: shutting down")
)

// submitJob is the admission pipeline for one submission: resolve the
// tenant (X-Tenant header) and deadline (X-Deadline-Ms, relative),
// charge the tenant's quota bucket, then register and enqueue. The
// shedding order is deliberate — new submissions are the first and only
// thing shed; anything already queued or running is never revoked by
// load (deadlines are the submitter's own choice).
func (s *Server) submitJob(j *job, r *http.Request) error {
	j.tenant = r.Header.Get("X-Tenant")
	if j.tenant == "" {
		j.tenant = defaultTenant
	}
	if ms := r.Header.Get("X-Deadline-Ms"); ms != "" {
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("service: bad X-Deadline-Ms %q", ms)
		}
		j.deadline = time.Now().Add(time.Duration(v) * time.Millisecond)
	}
	if err := s.admission.admitTenant(j.tenant); err != nil {
		return err
	}
	if err := s.submit(j); err != nil {
		if errors.Is(err, errQueueFull) {
			s.admission.refundTenant(j.tenant)
			s.mu.Lock()
			queued := s.queued
			s.mu.Unlock()
			return s.admission.rejectFull(j.tenant, queued, s.cfg.Workers)
		}
		return err
	}
	return nil
}

// writeSubmitError renders an admission pipeline failure: 429 with a
// Retry-After header for shed load, 503 for shutdown, 400 for a
// malformed deadline.
func writeSubmitError(w http.ResponseWriter, err error) {
	var ae *admissionError
	switch {
	case errors.As(err, &ae):
		// The envelope code is the admission reason ("quota",
		// "queue_full"), matching the reason label on the rejection
		// metric; Retry-After rides both the header and the body.
		writeAPIErrorRetry(w, http.StatusTooManyRequests, ae.reason, ae.retryAfter, "%v", err)
	case errors.Is(err, errClosing):
		writeAPIError(w, http.StatusServiceUnavailable, codeDraining, "%v", err)
	default:
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "%v", err)
	}
}

func (s *Server) submit(j *job) error {
	// Registration and the non-blocking enqueue happen under one
	// critical section, so a failed enqueue never has to unwind state
	// a concurrent submit may have built on. Workers also take s.mu
	// before touching a dequeued job, so they cannot observe it before
	// registration completes.
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errClosing
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	j.state = JobQueued
	s.appendEventLocked(j, JobEvent{Type: EventState, State: JobQueued})
	if err := s.enqueue(j); err != nil {
		s.mu.Unlock()
		return err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queued++
	rec := s.record(j)
	s.mu.Unlock()
	s.jnl.append(journalRecord{T: "submit", Job: &rec})
	return nil
}

// enqueue pushes without blocking, converting both a full queue and a
// closed queue (send on closed channel panics) into errQueueFull.
func (s *Server) enqueue(j *job) (err error) {
	defer func() {
		if recover() != nil {
			err = errQueueFull
		}
	}()
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// A job whose deadline passed while it waited is cancelled at
		// dequeue — it never started, so nothing in flight is shed.
		s.mu.Lock()
		if !j.deadline.IsZero() && time.Now().After(j.deadline) {
			j.state = JobFailed
			j.err = "deadline exceeded before start"
			s.appendEventLocked(j, JobEvent{Type: EventError, Message: j.err})
			s.appendEventLocked(j, JobEvent{Type: EventState, State: JobFailed})
			s.queued--
			s.deadlineJobsCancelled++
			s.evictLocked()
			s.mu.Unlock()
			s.jnl.append(journalRecord{T: "fail", ID: j.id})
			continue
		}
		j.state = JobRunning
		s.appendEventLocked(j, JobEvent{Type: EventState, State: JobRunning})
		s.queued--
		s.active[j] = true
		s.mu.Unlock()

		start := time.Now()
		payload, err := s.execute(j)
		s.admission.observe(time.Since(start))

		// The terminal state event is appended in the same critical
		// section as the state flip, so a streaming reader never sees a
		// terminal state without its closing event (or vice versa).
		s.mu.Lock()
		delete(s.active, j)
		rec := journalRecord{T: "done", ID: j.id}
		if err != nil {
			j.state = JobFailed
			j.err = err.Error()
			s.appendEventLocked(j, JobEvent{Type: EventError, Message: j.err})
			s.appendEventLocked(j, JobEvent{Type: EventState, State: JobFailed})
			rec.T = "fail"
		} else {
			j.state = JobDone
			j.result = payload
			s.appendEventLocked(j, JobEvent{Type: EventState, State: JobDone})
		}
		s.evictLocked()
		s.mu.Unlock()
		s.jnl.append(rec)
	}
}

// activeDeadline is the job-level deadline the fabric stamps on new
// shards. Shards cannot be attributed to a single job (concurrent jobs
// share shards through the memo), so the answer is conservative: the
// latest deadline across running jobs, and no deadline at all if any
// running job — or any in-flight remote run — has none.
func (s *Server) activeDeadline() time.Time {
	s.remoteMu.Lock()
	remoteActive := s.remoteActive
	s.remoteMu.Unlock()
	if remoteActive > 0 {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var max time.Time
	for j := range s.active {
		if j.deadline.IsZero() {
			return time.Time{}
		}
		if j.deadline.After(max) {
			max = j.deadline
		}
	}
	return max
}

// evictLocked drops the oldest finished jobs beyond Config.JobRetention
// so a long-running daemon's job table (and the result payloads it
// pins) stays bounded. Caller holds s.mu.
func (s *Server) evictLocked() {
	finished := 0
	for _, id := range s.order {
		if st := s.jobs[id].state; st == JobDone || st == JobFailed {
			finished++
		}
	}
	if finished <= s.cfg.JobRetention {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		st := s.jobs[id].state
		if (st == JobDone || st == JobFailed) && finished > s.cfg.JobRetention {
			delete(s.jobs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// execute runs one job to completion, converting simulation panics
// (e.g. an invalid configuration reaching core.MustSystem) into job
// failures instead of killing the worker.
func (s *Server) execute(j *job) (payload []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("simulation panic: %v", p)
		}
	}()
	switch j.kind {
	case "experiment":
		e, ok := exp.ExperimentByName(j.name)
		if !ok { // submit validated; registry changed underneath?
			return nil, fmt.Errorf("unknown experiment %q", j.name)
		}
		// Experiments discover their runs as they go, so the total is
		// unknown upfront: the job streams run_done events with no
		// Total and reports runs_done only.
		res := e.Run(s.runner.Session(s.runCallback(j, 0)))
		return json.Marshal(e.Named(res))
	case "sweep":
		cfg, specs, err := s.sweepPlan(j.sweep)
		if err != nil {
			return nil, err
		}
		reqs := make([]exp.RunRequest, len(specs))
		for i, spec := range specs {
			reqs[i] = exp.RunRequest{Cfg: cfg, Spec: spec}
		}
		s.mu.Lock()
		j.runsTotal = len(reqs)
		s.mu.Unlock()
		if j.sweep.Obs != nil && j.sweep.Obs.Enabled() {
			return s.executeObservedSweep(j, reqs)
		}
		// Delta planning: resolve every key against the memo and the
		// disk cache before dispatch, so only the uncovered delta
		// reaches the fabric backend or the local pool. Cache hits are
		// promoted into the memo here; the session below then reports
		// them as cached completions without any new work.
		plan := s.runner.Plan(reqs)
		s.appendEvent(j, JobEvent{Type: EventProgress, Message: fmt.Sprintf(
			"planned %d runs: %d cached, %d in flight, %d to execute",
			len(reqs), len(plan.Cached), len(plan.Inflight), len(plan.Todo))})
		results := s.runner.Session(s.runCallback(j, len(reqs))).RunAll(reqs)
		return json.Marshal(struct {
			Results []core.Result `json:"results"`
		}{results})
	}
	return nil, fmt.Errorf("unknown job kind %q", j.kind)
}

// runCallback builds the exp.Session callback attributing one job's run
// completions: it advances the job's progress counters and appends a
// run_done event referencing the run's content address. total is 0 when
// unknown (experiments).
func (s *Server) runCallback(j *job, total int) func(string, core.Result, exp.RunSource) {
	return func(key string, res core.Result, src exp.RunSource) {
		s.mu.Lock()
		j.runsDone++
		if src == exp.SourceCached {
			j.runsCached++
		}
		s.appendEventLocked(j, JobEvent{Type: EventRunDone, Run: &RunDone{
			Run:      runID(key),
			Workload: res.Name,
			Source:   src,
			Cycles:   res.Cycles,
			Done:     j.runsDone,
			Total:    total,
		}})
		s.mu.Unlock()
	}
}

// executeObservedSweep runs a sweep whose request asked for
// observability series. Observed runs always simulate locally (the
// runner skips both the disk-cache read path and the fabric backend so
// the probes actually execute), so they get a dedicated one-off Runner:
// its Obs options must not leak into the shared runner's memo, while the
// disk cache underneath stays shared — observation does not change
// results, so the Put-side bytes are identical and warm later unobserved
// sweeps. The payload gains an "obs" array aligned index-for-index with
// "results".
func (s *Server) executeObservedSweep(j *job, reqs []exp.RunRequest) ([]byte, error) {
	req := j.sweep
	opts := s.runner.Options()
	opts.Obs = *req.Obs
	var obsMu sync.Mutex
	byKey := make(map[string]*SweepObs)
	opts.ObsSink = func(key string, spec workload.Spec, col *obs.Collector) {
		entry := &SweepObs{Workload: spec.Name, Series: col.SeriesDocument()}
		if t := col.Trace(); t != nil {
			var buf bytes.Buffer
			if err := col.WriteTrace(&buf); err == nil {
				entry.Trace = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
			}
		}
		obsMu.Lock()
		byKey[key] = entry
		obsMu.Unlock()
	}
	runner := exp.NewRunner(opts)
	results := runner.Session(s.runCallback(j, len(reqs))).RunAll(reqs)
	obsOut := make([]*SweepObs, len(reqs))
	for i, rr := range reqs {
		obsOut[i] = byKey[runner.RunKey(rr.Cfg, rr.Spec)]
	}
	return json.Marshal(struct {
		Results []core.Result `json:"results"`
		Obs     []*SweepObs   `json:"obs"`
	}{results, obsOut})
}

// SweepObs is one run's observability record in an observed sweep's
// result payload: the sampled series document plus, when tracing was
// requested, the complete Chrome-trace JSON object.
type SweepObs struct {
	Workload string          `json:"workload"`
	Series   obs.SeriesDoc   `json:"series"`
	Trace    json.RawMessage `json:"trace,omitempty"`
}

// SweepRequest is the POST /v1/sweeps body: a named configuration
// preset plus overrides, applied to a list of workloads. The response
// job's result is {"results":[core.Result...]} in workload order, plus
// a parallel "obs" array when the request enables observability.
type SweepRequest struct {
	// Preset selects the starting configuration: "base" (locality-
	// optimized software runtime, the default), "traditional"
	// (fine-grain single-GPU policies), "numa-aware" (the paper's full
	// proposal), or "monolithic" (the hypothetical Sockets× larger
	// single GPU).
	Preset string `json:"preset,omitempty"`
	// Sockets is the socket count (default 4); for "monolithic" it is
	// the size factor of the single GPU.
	Sockets int `json:"sockets,omitempty"`
	// Workloads lists Table 2 workload names; empty means the server's
	// full configured workload set.
	Workloads []string `json:"workloads,omitempty"`
	// Topology, when present, replaces the synthesized symmetric
	// crossbar with an explicit link graph (see docs/TOPOLOGY.md). Its
	// socket count must match Sockets; invalid topologies are rejected
	// with 400. Ignored for the "monolithic" preset, which has no
	// inter-socket fabric.
	Topology *topo.Topology `json:"topology,omitempty"`

	// Optional overrides applied on top of the preset.
	CacheMode      string `json:"cache_mode,omitempty"` // mem-side-local | static-partition | shared-coherent | numa-aware
	LinkMode       string `json:"link_mode,omitempty"`  // static | dynamic
	LinkSampleTime int    `json:"link_sample_time,omitempty"`
	LaneSwitchTime int    `json:"lane_switch_time,omitempty"`
	L2WriteThrough bool   `json:"l2_write_through,omitempty"`

	// Obs, when present and enabled, samples per-socket and per-link
	// time series (and optionally a Chrome trace) during every run of
	// the sweep; the job result then carries an "obs" array aligned
	// with "results". Observed runs always simulate locally on the
	// serving daemon — the fabric and warm disk-cache entries are
	// bypassed so the probes execute — making observed sweeps slower
	// than plain ones. Results themselves are unchanged: observation is
	// excluded from cache keys and enforced byte-inert.
	Obs *arch.ObsSpec `json:"obs,omitempty"`
}

var cacheModes = map[string]arch.CacheMode{
	"mem-side-local":   arch.CacheMemSideLocal,
	"static-partition": arch.CacheStaticPartition,
	"shared-coherent":  arch.CacheSharedCoherent,
	"numa-aware":       arch.CacheNUMAAware,
}

var linkModes = map[string]arch.LinkMode{
	"static":  arch.LinkStatic,
	"dynamic": arch.LinkDynamic,
}

// sweepPlan resolves a SweepRequest into a validated configuration and
// workload list. Errors are client errors (HTTP 400).
func (s *Server) sweepPlan(req *SweepRequest) (arch.Config, []workload.Spec, error) {
	sockets := req.Sockets
	if sockets == 0 {
		sockets = 4
	}
	var cfg arch.Config
	switch req.Preset {
	case "", "base":
		cfg = s.runner.Base(sockets)
	case "traditional":
		cfg = s.runner.Traditional(sockets)
	case "numa-aware":
		cfg = s.runner.NUMAAware(sockets)
	case "monolithic":
		cfg = s.runner.Monolithic(sockets)
	default:
		return arch.Config{}, nil, fmt.Errorf("unknown preset %q (want base, traditional, numa-aware or monolithic)", req.Preset)
	}
	if req.CacheMode != "" {
		m, ok := cacheModes[req.CacheMode]
		if !ok {
			return arch.Config{}, nil, fmt.Errorf("unknown cache_mode %q", req.CacheMode)
		}
		cfg.CacheMode = m
	}
	if req.LinkMode != "" {
		m, ok := linkModes[req.LinkMode]
		if !ok {
			return arch.Config{}, nil, fmt.Errorf("unknown link_mode %q", req.LinkMode)
		}
		cfg.LinkMode = m
	}
	if req.LinkSampleTime > 0 {
		cfg.LinkSampleTime = req.LinkSampleTime
	}
	if req.LaneSwitchTime > 0 {
		cfg.LaneSwitchTime = req.LaneSwitchTime
	}
	if req.L2WriteThrough {
		cfg.L2WriteThrough = true
	}
	if req.Topology != nil && req.Preset != "monolithic" {
		cfg.Topology = req.Topology
	}
	if req.Obs != nil {
		// Validate the spec against the resolved config exactly as a
		// local run would (the runner applies it after key computation,
		// so it is absent from cfg here).
		probe := cfg
		probe.Obs = *req.Obs
		if err := probe.Validate(); err != nil {
			return arch.Config{}, nil, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return arch.Config{}, nil, err
	}

	var specs []workload.Spec
	if len(req.Workloads) == 0 {
		specs = s.runner.Options().Workloads
	} else {
		for _, name := range req.Workloads {
			spec, ok := workload.ByName(name)
			if !ok {
				return arch.Config{}, nil, fmt.Errorf("unknown workload %q", name)
			}
			specs = append(specs, spec)
		}
	}
	return cfg, specs, nil
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	var infos []ExperimentInfo
	for _, e := range exp.Experiments() {
		infos = append(infos, ExperimentInfo{Name: e.Name, Desc: e.Desc})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleSubmitExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := exp.ExperimentByName(name); !ok {
		writeAPIError(w, http.StatusNotFound, codeNotFound, "unknown experiment %q", name)
		return
	}
	j := &job{kind: "experiment", name: name}
	if err := s.submitJob(j, r); err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(j))
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "bad sweep request: %v", err)
		return
	}
	// Validate now so the client gets a 400 instead of a failed job.
	if _, _, err := s.sweepPlan(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	name := req.Preset
	if name == "" {
		name = "base"
	}
	j := &job{kind: "sweep", name: name, sweep: &req}
	if err := s.submitJob(j, r); err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(j))
}

// status snapshots a job's wire form; callers must not hold s.mu.
func (s *Server) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

// statusLocked builds the wire form of one job. Caller holds s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	return JobStatus{
		ID: j.id, Kind: j.kind, Name: j.name, State: j.state,
		RunsTotal: j.runsTotal, RunsDone: j.runsDone, RunsCached: j.runsCached,
		Error: j.err,
	}
}

// defaultJobsPageLimit caps one GET /v1/jobs page when the client sends
// no ?limit= (and bounds what it may ask for).
const (
	defaultJobsPageLimit = 100
	maxJobsPageLimit     = 1000
)

// jobNumber extracts the ordinal from a "job-N" ID. Cursors compare by
// this number, so a cursor whose job has been evicted (or that was
// itself the last of a page later evicted) still resumes exactly where
// the previous page ended instead of failing.
func jobNumber(id string) (int, bool) {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultJobsPageLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "bad limit %q (want a positive integer)", v)
			return
		}
		limit = min(n, maxJobsPageLimit)
	}
	after := -1
	if v := q.Get("after"); v != "" {
		n, ok := jobNumber(v)
		if !ok {
			writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "bad cursor %q (want a job ID)", v)
			return
		}
		after = n
	}
	s.mu.Lock()
	page := JobsPage{Jobs: []JobStatus{}}
	for _, id := range s.order {
		if n, ok := jobNumber(id); ok && n <= after {
			continue
		}
		if len(page.Jobs) == limit {
			// More jobs remain beyond this page: hand back the last
			// included ID as the cursor.
			page.Next = page.Jobs[len(page.Jobs)-1].ID
			break
		}
		page.Jobs = append(page.Jobs, s.statusLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	state, result, errMsg := j.state, j.result, j.err
	s.mu.Unlock()
	switch state {
	case JobDone:
		// The stored bytes are served verbatim: byte-identical replies
		// for identical requests, across restarts.
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case JobFailed:
		writeAPIError(w, http.StatusInternalServerError, codeJobFailed, "job failed: %s", errMsg)
	default:
		writeAPIError(w, http.StatusConflict, codeNotReady, "job %s is %s", j.id, state)
	}
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	rs := s.runner.Stats()
	st := CacheStatus{
		Enabled:     s.disk != nil,
		Hits:        rs.CacheHits,
		Misses:      rs.CacheMisses,
		Simulations: rs.Simulations,
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		st.Dir, st.Entries, st.Bytes = s.disk.Dir(), ds.Entries, ds.Bytes
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness half of the health split: the process is
// alive (handleHealth) the moment it serves HTTP, but not ready while
// it is shutting down or while a freshly-restarted coordinator is still
// inside its recovery grace window waiting for the fleet to
// re-register. Load balancers should route on this one.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	switch {
	case closing:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.fabric.recovering():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "replaying"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}
