// Package service implements numagpud: a long-running HTTP/JSON daemon
// that serves the paper's experiments and arbitrary (config, workload)
// sweeps as API resources, on top of the concurrent exp.Runner harness.
//
// The layering, bottom to top:
//
//   - one shared exp.Runner holds the in-memory singleflight memo, so
//     any number of concurrent jobs asking for the same (config,
//     workload) pair share a single simulation;
//   - an optional DiskCache (exp.Cache) sits under the memo, so warm
//     results are served without re-simulating and survive restarts;
//   - a bounded job queue drained by a fixed worker pool runs the
//     requests asynchronously: POST returns a job ID immediately and
//     GET /v1/jobs/{id} polls status and per-run progress.
//
// Endpoints:
//
//	GET  /v1/experiments          list runnable experiments
//	POST /v1/experiments/{name}   enqueue one experiment
//	POST /v1/sweeps               enqueue a (config, workloads) sweep
//	GET  /v1/jobs                 list jobs in submission order
//	GET  /v1/jobs/{id}            job status + progress lines
//	GET  /v1/jobs/{id}/result     deterministic result JSON (done jobs)
//	GET  /v1/cache                cache + run-count statistics
//	GET  /metrics                 Prometheus text format
//	GET  /healthz                 liveness probe
//
// Sweep-fabric endpoints (see fabric.go; the daemon is always a
// capable coordinator, and numagpud -worker joins one as a worker):
//
//	GET    /v1/fabric              fleet + shard accounting
//	POST   /v1/fabric/workers      worker registration
//	DELETE /v1/fabric/workers/{id} graceful worker departure
//	POST   /v1/fabric/poll         worker heartbeat/lease/result round trip
//	POST   /v1/fabric/runs         submit one run (numagpu -remote)
//	GET    /v1/fabric/runs/{id}    poll a submitted run
//
// Result payloads are deterministic: the same request against the same
// simulator version yields byte-identical /result bodies, whether the
// runs were simulated, memoized, or replayed from the disk cache.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Config sizes a Server.
type Config struct {
	// Options configures the underlying exp.Runner (divisor, iteration
	// scale, workload set, parallelism within one sweep). The Cache and
	// Progress fields are owned by the Server and overwritten.
	Options exp.Options
	// CacheDir, when non-empty, enables the persistent result cache
	// rooted at that directory.
	CacheDir string
	// Workers is the number of queue workers executing jobs
	// concurrently (default 2). Total simulation concurrency is
	// bounded by Workers × Options.Parallelism.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 64); submissions beyond it are rejected with 503.
	QueueDepth int
	// Mirror, when non-nil, additionally receives every per-run
	// progress line (numagpud -v wires this to stderr).
	Mirror io.Writer
	// JobRetention bounds how many finished (done or failed) jobs are
	// kept for status/result queries; the oldest finished jobs are
	// evicted beyond it (default 256). Queued and running jobs are
	// never evicted.
	JobRetention int
	// LeaseTTL is how long a registered fabric worker may go without
	// polling before it is declared dead and its leased shards are
	// re-queued (default 15s).
	LeaseTTL time.Duration
	// FabricPoll is the poll/heartbeat interval advertised to fabric
	// workers (default 250ms).
	FabricPoll time.Duration
}

// JobState is the lifecycle of a job: queued → running → done|failed.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// job is the server-side record of one submitted request. All mutable
// fields are guarded by Server.mu.
type job struct {
	id       string
	kind     string // "experiment" or "sweep"
	name     string
	sweep    *SweepRequest
	state    JobState
	progress []string
	result   []byte
	err      string
}

// JobStatus is the wire form of a job returned by the status
// endpoints.
type JobStatus struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	Name     string   `json:"name"`
	State    JobState `json:"state"`
	Progress []string `json:"progress,omitempty"`
	Error    string   `json:"error,omitempty"`
}

// ExperimentInfo describes one runnable experiment.
type ExperimentInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// CacheStatus is the /v1/cache payload: disk footprint plus the
// runner's run accounting.
type CacheStatus struct {
	Enabled     bool   `json:"enabled"`
	Dir         string `json:"dir,omitempty"`
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Simulations uint64 `json:"simulations"`
}

// Server is the numagpud daemon: an http.Handler plus the worker pool
// behind it. Create with New, release with Close.
type Server struct {
	cfg     Config
	runner  *exp.Runner // the job queue's runner (the configured options)
	runners *runnerSet  // every runner, by (IterScale, MaxCTAs); shares cache+fabric
	disk    *DiskCache
	fabric  *fabric
	mux     *http.ServeMux
	start   time.Time

	mu      sync.Mutex
	closing bool
	jobs    map[string]*job
	order   []string // job IDs in submission order
	active  map[*job]bool
	nextID  int
	queued  int

	// Remotely submitted fabric runs (POST /v1/fabric/runs), by the
	// content address of their RunKey.
	remoteMu    sync.Mutex
	remoteRuns  map[string]*remoteRun
	remoteOrder []string

	queue     chan *job
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Server, opening the disk cache (if configured) and
// starting the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.JobRetention < 1 {
		cfg.JobRetention = 256
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.FabricPoll <= 0 {
		cfg.FabricPoll = 250 * time.Millisecond
	}
	s := &Server{
		cfg:        cfg,
		start:      time.Now(),
		jobs:       make(map[string]*job),
		active:     make(map[*job]bool),
		queue:      make(chan *job, cfg.QueueDepth),
		remoteRuns: make(map[string]*remoteRun),
	}
	opts := cfg.Options
	opts.Cache = nil // owned by the Server: only the configured DiskCache is wired in
	if cfg.CacheDir != "" {
		disk, err := OpenDiskCache(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("service: open cache: %w", err)
		}
		s.disk = disk
		opts.Cache = disk
	}
	opts.Progress = (*progressRouter)(s)
	// Every simulation this server runs — job queue or remote
	// submission — is offered to the sweep fabric first; with no
	// registered workers the backend reports unavailable and the
	// runner simulates locally, so a worker-less coordinator behaves
	// exactly like a standalone daemon.
	s.fabric = newFabric(cfg.LeaseTTL, cfg.FabricPoll)
	opts.Backend = fabricBackend{s.fabric}
	s.runners = newRunnerSet(opts)
	s.runner = s.runners.runner(opts.IterScale, opts.MaxCTAs)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	mux.HandleFunc("POST /v1/experiments/{name}", s.handleSubmitExperiment)
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/cache", s.handleCache)
	mux.HandleFunc("GET /v1/fabric", s.handleFabricStatus)
	mux.HandleFunc("POST /v1/fabric/workers", s.handleFabricRegister)
	mux.HandleFunc("DELETE /v1/fabric/workers/{id}", s.handleFabricDeregister)
	mux.HandleFunc("POST /v1/fabric/poll", s.handleFabricPoll)
	mux.HandleFunc("POST /v1/fabric/runs", s.handleFabricSubmitRun)
	mux.HandleFunc("GET /v1/fabric/runs/{id}", s.handleFabricRunStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux = mux

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops accepting new submissions, shuts the sweep fabric down
// (in-flight leased shards fail over to local simulation so the drain
// cannot hang on a dead fleet), and waits for every already-queued job
// and remote run to finish. Submissions after Close fail with 503.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		s.mu.Unlock()
		s.fabric.close()
		close(s.queue)
	})
	s.wg.Wait()
}

// RunnerStats exposes the aggregate run accounting across every runner
// the server holds — the job queue's plus one per distinct
// (IterScale, MaxCTAs) seen on the fabric run endpoint — used by the
// restart tests and the metrics endpoint.
func (s *Server) RunnerStats() exp.Stats { return s.runners.stats() }

// runnerSet lazily builds one exp.Runner per (IterScale, MaxCTAs)
// pair, all sharing the same cache, progress sink, and fabric backend.
// The coordinator needs this because remote clients ship their own
// workload scaling (a -quick client against a default-scale daemon),
// and RunKeys embed that scaling — each scaling gets its own memo
// keyspace, while the DiskCache below remains shared and keyed
// collision-free.
type runnerSet struct {
	base exp.Options

	mu      sync.Mutex
	runners map[runnerScale]*exp.Runner
}

type runnerScale struct {
	iterScale float64
	maxCTAs   int
}

func newRunnerSet(base exp.Options) *runnerSet {
	return &runnerSet{base: base, runners: make(map[runnerScale]*exp.Runner)}
}

// runner returns the shared Runner for one workload scaling, creating
// it on first use. Scale normalization mirrors exp.Options.normalized
// so 0 and the default never produce two runners with one keyspace.
func (rs *runnerSet) runner(iterScale float64, maxCTAs int) *exp.Runner {
	if iterScale <= 0 {
		iterScale = 1
	}
	if maxCTAs < 0 {
		maxCTAs = 0
	}
	key := runnerScale{iterScale, maxCTAs}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if r, ok := rs.runners[key]; ok {
		return r
	}
	opts := rs.base
	opts.IterScale = iterScale
	opts.MaxCTAs = maxCTAs
	r := exp.NewRunner(opts)
	rs.runners[key] = r
	return r
}

// stats sums the run counters across every runner in the set.
func (rs *runnerSet) stats() exp.Stats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var sum exp.Stats
	for _, r := range rs.runners {
		sum = sum.Add(r.Stats())
	}
	return sum
}

// progressRouter adapts the Server to the io.Writer shape of
// exp.Options.Progress: every per-run progress line is appended to all
// currently-running jobs (the shared Runner cannot attribute a
// simulation to a single job when concurrent jobs overlap on the same
// memo key) and mirrored to Config.Mirror.
type progressRouter Server

func (p *progressRouter) Write(b []byte) (int, error) {
	s := (*Server)(p)
	line := strings.TrimRight(string(b), "\n")
	s.mu.Lock()
	for j := range s.active {
		j.progress = append(j.progress, line)
	}
	s.mu.Unlock()
	if s.cfg.Mirror != nil {
		s.cfg.Mirror.Write(b)
	}
	return len(b), nil
}

// errQueueFull is returned by submit when the queue is at capacity or
// the server is closed.
var errQueueFull = errors.New("service: job queue full")

func (s *Server) submit(j *job) error {
	// Registration and the non-blocking enqueue happen under one
	// critical section, so a failed enqueue never has to unwind state
	// a concurrent submit may have built on. Workers also take s.mu
	// before touching a dequeued job, so they cannot observe it before
	// registration completes.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	j.state = JobQueued
	if err := s.enqueue(j); err != nil {
		return err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queued++
	return nil
}

// enqueue pushes without blocking, converting both a full queue and a
// closed queue (send on closed channel panics) into errQueueFull.
func (s *Server) enqueue(j *job) (err error) {
	defer func() {
		if recover() != nil {
			err = errQueueFull
		}
	}()
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		j.state = JobRunning
		s.queued--
		s.active[j] = true
		s.mu.Unlock()

		payload, err := s.execute(j)

		s.mu.Lock()
		delete(s.active, j)
		if err != nil {
			j.state = JobFailed
			j.err = err.Error()
		} else {
			j.state = JobDone
			j.result = payload
		}
		s.evictLocked()
		s.mu.Unlock()
	}
}

// evictLocked drops the oldest finished jobs beyond Config.JobRetention
// so a long-running daemon's job table (and the result payloads it
// pins) stays bounded. Caller holds s.mu.
func (s *Server) evictLocked() {
	finished := 0
	for _, id := range s.order {
		if st := s.jobs[id].state; st == JobDone || st == JobFailed {
			finished++
		}
	}
	if finished <= s.cfg.JobRetention {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		st := s.jobs[id].state
		if (st == JobDone || st == JobFailed) && finished > s.cfg.JobRetention {
			delete(s.jobs, id)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// execute runs one job to completion, converting simulation panics
// (e.g. an invalid configuration reaching core.MustSystem) into job
// failures instead of killing the worker.
func (s *Server) execute(j *job) (payload []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("simulation panic: %v", p)
		}
	}()
	switch j.kind {
	case "experiment":
		e, ok := exp.ExperimentByName(j.name)
		if !ok { // submit validated; registry changed underneath?
			return nil, fmt.Errorf("unknown experiment %q", j.name)
		}
		res := e.Run(s.runner)
		return json.Marshal(e.Named(res))
	case "sweep":
		cfg, specs, err := s.sweepPlan(j.sweep)
		if err != nil {
			return nil, err
		}
		reqs := make([]exp.RunRequest, len(specs))
		for i, spec := range specs {
			reqs[i] = exp.RunRequest{Cfg: cfg, Spec: spec}
		}
		if j.sweep.Obs == nil || !j.sweep.Obs.Enabled() {
			results := s.runner.RunAll(reqs)
			return json.Marshal(struct {
				Results []core.Result `json:"results"`
			}{results})
		}
		return s.executeObservedSweep(j.sweep, reqs)
	}
	return nil, fmt.Errorf("unknown job kind %q", j.kind)
}

// executeObservedSweep runs a sweep whose request asked for
// observability series. Observed runs always simulate locally (the
// runner skips both the disk-cache read path and the fabric backend so
// the probes actually execute), so they get a dedicated one-off Runner:
// its Obs options must not leak into the shared runner's memo, while the
// disk cache underneath stays shared — observation does not change
// results, so the Put-side bytes are identical and warm later unobserved
// sweeps. The payload gains an "obs" array aligned index-for-index with
// "results".
func (s *Server) executeObservedSweep(req *SweepRequest, reqs []exp.RunRequest) ([]byte, error) {
	opts := s.runner.Options()
	opts.Obs = *req.Obs
	var obsMu sync.Mutex
	byKey := make(map[string]*SweepObs)
	opts.ObsSink = func(key string, spec workload.Spec, col *obs.Collector) {
		entry := &SweepObs{Workload: spec.Name, Series: col.SeriesDocument()}
		if t := col.Trace(); t != nil {
			var buf bytes.Buffer
			if err := col.WriteTrace(&buf); err == nil {
				entry.Trace = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
			}
		}
		obsMu.Lock()
		byKey[key] = entry
		obsMu.Unlock()
	}
	runner := exp.NewRunner(opts)
	results := runner.RunAll(reqs)
	obsOut := make([]*SweepObs, len(reqs))
	for i, rr := range reqs {
		obsOut[i] = byKey[runner.RunKey(rr.Cfg, rr.Spec)]
	}
	return json.Marshal(struct {
		Results []core.Result `json:"results"`
		Obs     []*SweepObs   `json:"obs"`
	}{results, obsOut})
}

// SweepObs is one run's observability record in an observed sweep's
// result payload: the sampled series document plus, when tracing was
// requested, the complete Chrome-trace JSON object.
type SweepObs struct {
	Workload string          `json:"workload"`
	Series   obs.SeriesDoc   `json:"series"`
	Trace    json.RawMessage `json:"trace,omitempty"`
}

// SweepRequest is the POST /v1/sweeps body: a named configuration
// preset plus overrides, applied to a list of workloads. The response
// job's result is {"results":[core.Result...]} in workload order, plus
// a parallel "obs" array when the request enables observability.
type SweepRequest struct {
	// Preset selects the starting configuration: "base" (locality-
	// optimized software runtime, the default), "traditional"
	// (fine-grain single-GPU policies), "numa-aware" (the paper's full
	// proposal), or "monolithic" (the hypothetical Sockets× larger
	// single GPU).
	Preset string `json:"preset,omitempty"`
	// Sockets is the socket count (default 4); for "monolithic" it is
	// the size factor of the single GPU.
	Sockets int `json:"sockets,omitempty"`
	// Workloads lists Table 2 workload names; empty means the server's
	// full configured workload set.
	Workloads []string `json:"workloads,omitempty"`
	// Topology, when present, replaces the synthesized symmetric
	// crossbar with an explicit link graph (see docs/TOPOLOGY.md). Its
	// socket count must match Sockets; invalid topologies are rejected
	// with 400. Ignored for the "monolithic" preset, which has no
	// inter-socket fabric.
	Topology *topo.Topology `json:"topology,omitempty"`

	// Optional overrides applied on top of the preset.
	CacheMode      string `json:"cache_mode,omitempty"` // mem-side-local | static-partition | shared-coherent | numa-aware
	LinkMode       string `json:"link_mode,omitempty"`  // static | dynamic
	LinkSampleTime int    `json:"link_sample_time,omitempty"`
	LaneSwitchTime int    `json:"lane_switch_time,omitempty"`
	L2WriteThrough bool   `json:"l2_write_through,omitempty"`

	// Obs, when present and enabled, samples per-socket and per-link
	// time series (and optionally a Chrome trace) during every run of
	// the sweep; the job result then carries an "obs" array aligned
	// with "results". Observed runs always simulate locally on the
	// serving daemon — the fabric and warm disk-cache entries are
	// bypassed so the probes execute — making observed sweeps slower
	// than plain ones. Results themselves are unchanged: observation is
	// excluded from cache keys and enforced byte-inert.
	Obs *arch.ObsSpec `json:"obs,omitempty"`
}

var cacheModes = map[string]arch.CacheMode{
	"mem-side-local":   arch.CacheMemSideLocal,
	"static-partition": arch.CacheStaticPartition,
	"shared-coherent":  arch.CacheSharedCoherent,
	"numa-aware":       arch.CacheNUMAAware,
}

var linkModes = map[string]arch.LinkMode{
	"static":  arch.LinkStatic,
	"dynamic": arch.LinkDynamic,
}

// sweepPlan resolves a SweepRequest into a validated configuration and
// workload list. Errors are client errors (HTTP 400).
func (s *Server) sweepPlan(req *SweepRequest) (arch.Config, []workload.Spec, error) {
	sockets := req.Sockets
	if sockets == 0 {
		sockets = 4
	}
	var cfg arch.Config
	switch req.Preset {
	case "", "base":
		cfg = s.runner.Base(sockets)
	case "traditional":
		cfg = s.runner.Traditional(sockets)
	case "numa-aware":
		cfg = s.runner.NUMAAware(sockets)
	case "monolithic":
		cfg = s.runner.Monolithic(sockets)
	default:
		return arch.Config{}, nil, fmt.Errorf("unknown preset %q (want base, traditional, numa-aware or monolithic)", req.Preset)
	}
	if req.CacheMode != "" {
		m, ok := cacheModes[req.CacheMode]
		if !ok {
			return arch.Config{}, nil, fmt.Errorf("unknown cache_mode %q", req.CacheMode)
		}
		cfg.CacheMode = m
	}
	if req.LinkMode != "" {
		m, ok := linkModes[req.LinkMode]
		if !ok {
			return arch.Config{}, nil, fmt.Errorf("unknown link_mode %q", req.LinkMode)
		}
		cfg.LinkMode = m
	}
	if req.LinkSampleTime > 0 {
		cfg.LinkSampleTime = req.LinkSampleTime
	}
	if req.LaneSwitchTime > 0 {
		cfg.LaneSwitchTime = req.LaneSwitchTime
	}
	if req.L2WriteThrough {
		cfg.L2WriteThrough = true
	}
	if req.Topology != nil && req.Preset != "monolithic" {
		cfg.Topology = req.Topology
	}
	if req.Obs != nil {
		// Validate the spec against the resolved config exactly as a
		// local run would (the runner applies it after key computation,
		// so it is absent from cfg here).
		probe := cfg
		probe.Obs = *req.Obs
		if err := probe.Validate(); err != nil {
			return arch.Config{}, nil, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return arch.Config{}, nil, err
	}

	var specs []workload.Spec
	if len(req.Workloads) == 0 {
		specs = s.runner.Options().Workloads
	} else {
		for _, name := range req.Workloads {
			spec, ok := workload.ByName(name)
			if !ok {
				return arch.Config{}, nil, fmt.Errorf("unknown workload %q", name)
			}
			specs = append(specs, spec)
		}
	}
	return cfg, specs, nil
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	var infos []ExperimentInfo
	for _, e := range exp.Experiments() {
		infos = append(infos, ExperimentInfo{Name: e.Name, Desc: e.Desc})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleSubmitExperiment(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, ok := exp.ExperimentByName(name); !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", name)
		return
	}
	j := &job{kind: "experiment", name: name}
	if err := s.submit(j); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(j))
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	// Validate now so the client gets a 400 instead of a failed job.
	if _, _, err := s.sweepPlan(&req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := req.Preset
	if name == "" {
		name = "base"
	}
	j := &job{kind: "sweep", name: name, sweep: &req}
	if err := s.submit(j); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(j))
}

// status snapshots a job's wire form; callers must not hold s.mu.
func (s *Server) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{ID: j.id, Kind: j.kind, Name: j.name, State: j.state, Error: j.err}
	st.Progress = append(st.Progress, j.progress...)
	return st
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, s.status(j))
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	state, result, errMsg := j.state, j.result, j.err
	s.mu.Unlock()
	switch state {
	case JobDone:
		// The stored bytes are served verbatim: byte-identical replies
		// for identical requests, across restarts.
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case JobFailed:
		writeError(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	default:
		writeError(w, http.StatusConflict, "job %s is %s", j.id, state)
	}
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	rs := s.runner.Stats()
	st := CacheStatus{
		Enabled:     s.disk != nil,
		Hits:        rs.CacheHits,
		Misses:      rs.CacheMisses,
		Simulations: rs.Simulations,
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		st.Dir, st.Entries, st.Bytes = s.disk.Dir(), ds.Entries, ds.Bytes
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
