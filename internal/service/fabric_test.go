package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/workload"
)

// --- fabric lease-machinery unit tests (no simulations) ---

// testRun builds a WireRun with a distinguishable key; the config and
// workload are never executed by these unit tests.
func testRun(key string) WireRun {
	return WireRun{Key: key, Workload: "Other-Stream-Triad"}
}

// startExecute launches fabric.execute on its own goroutine and
// returns a channel carrying its outcome.
type executeOutcome struct {
	res core.Result
	err error
}

func startExecute(f *fabric, key string) chan executeOutcome {
	ch := make(chan executeOutcome, 1)
	go func() {
		res, err := f.execute(testRun(key))
		ch <- executeOutcome{res, err}
	}()
	return ch
}

// awaitLeased polls a worker's lease set until it holds n shards.
func awaitLeased(t *testing.T, f *fabric, workerID string, n int) []WireShard {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := f.pollWorker(PollRequest{WorkerID: workerID, Want: n})
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		f.mu.Lock()
		leased := len(f.workers[workerID].leased)
		f.mu.Unlock()
		if len(resp.Shards) > 0 || leased >= n {
			return resp.Shards
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never leased %d shards", workerID, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFabricNoWorkersIsUnavailable(t *testing.T) {
	f := newFabric(time.Second, 10*time.Millisecond)
	defer f.close()
	if _, err := f.execute(testRun("k1")); !errors.Is(err, errNoWorkers) {
		t.Fatalf("execute with no workers: %v, want errNoWorkers", err)
	}
	b := fabricBackend{f}
	_, err := b.Execute("k1", arch.Config{}, workload.Spec{}, workload.Options{})
	if !errors.Is(err, exp.ErrBackendUnavailable) {
		t.Fatalf("backend with no workers: %v, want exp.ErrBackendUnavailable", err)
	}
}

func TestFabricLeaseWindowAndCompletion(t *testing.T) {
	f := newFabric(time.Minute, 10*time.Millisecond)
	defer f.close()
	reg, err := f.register("w", "proc-w", 2)
	if err != nil {
		t.Fatal(err)
	}
	c1 := startExecute(f, "k1")
	c2 := startExecute(f, "k2")
	c3 := startExecute(f, "k3")

	// The window caps the grant at 2 even though 3 shards are pending
	// and the worker asked for more.
	var got []WireShard
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < 2 {
		resp, err := f.pollWorker(PollRequest{WorkerID: reg.WorkerID, Want: 8})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, resp.Shards...)
		if time.Now().After(deadline) {
			t.Fatalf("leased %d shards, want 2", len(got))
		}
		time.Sleep(time.Millisecond)
	}
	if len(got) != 2 {
		t.Fatalf("leased %d shards, want exactly 2 (window)", len(got))
	}
	if resp, _ := f.pollWorker(PollRequest{WorkerID: reg.WorkerID, Want: 8}); len(resp.Shards) != 0 {
		t.Fatalf("over-window grant: %d extra shards", len(resp.Shards))
	}

	// Completing one shard frees a window slot and wakes its waiter.
	res := core.Result{Name: "done", Cycles: 42}
	resp, err := f.pollWorker(PollRequest{
		WorkerID: reg.WorkerID,
		Want:     8,
		Results:  []ShardResult{{ShardID: got[0].ID, Key: got[0].Run.Key, Result: &res}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Shards) != 1 {
		t.Fatalf("freed slot granted %d shards, want 1", len(resp.Shards))
	}
	outcomes := map[string]chan executeOutcome{"k1": c1, "k2": c2, "k3": c3}
	select {
	case out := <-outcomes[got[0].Run.Key]:
		if out.err != nil || out.res.Cycles != 42 {
			t.Fatalf("waiter outcome = %+v", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woken by completion")
	}
	snap := f.snapshot()
	if snap.Completed != 1 || snap.ShardsTotal != 3 {
		t.Fatalf("snapshot = %+v, want 1 completed of 3", snap)
	}
}

func TestFabricWorkerDeathRequeuesToSurvivor(t *testing.T) {
	f := newFabric(60*time.Millisecond, 5*time.Millisecond)
	defer f.close()
	rega, _ := f.register("a", "proc-a", 1)
	done := startExecute(f, "k1")
	shards := awaitLeased(t, f, rega.WorkerID, 1)
	if len(shards) != 1 {
		t.Fatalf("worker a leased %d shards", len(shards))
	}
	// b registers and keeps polling; a goes silent and must expire.
	regb, _ := f.register("b", "proc-b", 1)
	var re []WireShard
	deadline := time.Now().Add(5 * time.Second)
	for len(re) == 0 {
		resp, err := f.pollWorker(PollRequest{WorkerID: regb.WorkerID, Want: 1})
		if err != nil {
			t.Fatal(err)
		}
		re = resp.Shards
		if time.Now().After(deadline) {
			t.Fatal("dead worker's shard never re-leased")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if re[0].Run.Key != "k1" {
		t.Fatalf("re-leased %q, want k1", re[0].Run.Key)
	}
	res := core.Result{Cycles: 7}
	if _, err := f.pollWorker(PollRequest{
		WorkerID: regb.WorkerID,
		Results:  []ShardResult{{ShardID: re[0].ID, Key: "k1", Result: &res}},
	}); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err != nil || out.res.Cycles != 7 {
		t.Fatalf("outcome after re-lease = %+v", out)
	}
	snap := f.snapshot()
	if snap.Requeued != 1 || snap.WorkersLive != 1 || snap.Completed != 1 {
		t.Fatalf("snapshot after death = %+v", snap)
	}
	// The dead worker's late report (it was alive all along, just
	// partitioned) is dropped as stale, not double-applied.
	if _, err := f.pollWorker(PollRequest{WorkerID: rega.WorkerID}); !errors.Is(err, errUnknownWorker) {
		t.Fatalf("expired worker poll: %v, want errUnknownWorker", err)
	}
}

func TestFabricLastWorkerDeathFailsOver(t *testing.T) {
	f := newFabric(50*time.Millisecond, 5*time.Millisecond)
	defer f.close()
	reg, _ := f.register("only", "proc-only", 1)
	done := startExecute(f, "k1")
	awaitLeased(t, f, reg.WorkerID, 1)
	// The only worker dies: the waiter must fall back to local
	// simulation via errNoWorkers instead of hanging.
	select {
	case out := <-done:
		if !errors.Is(out.err, errNoWorkers) {
			t.Fatalf("outcome = %+v, want errNoWorkers", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after the last worker died")
	}
}

func TestFabricStaleResultDropped(t *testing.T) {
	f := newFabric(time.Minute, 5*time.Millisecond)
	defer f.close()
	reg, _ := f.register("w", "proc-w", 1)
	done := startExecute(f, "k1")
	shards := awaitLeased(t, f, reg.WorkerID, 1)
	res := core.Result{Cycles: 1}
	report := PollRequest{
		WorkerID: reg.WorkerID,
		Results:  []ShardResult{{ShardID: shards[0].ID, Key: "k1", Result: &res}},
	}
	if _, err := f.pollWorker(report); err != nil {
		t.Fatal(err)
	}
	<-done
	// Duplicate report for the completed shard, and a report for a key
	// the fabric never issued: both dropped and counted.
	if _, err := f.pollWorker(report); err != nil {
		t.Fatal(err)
	}
	bogus := PollRequest{WorkerID: reg.WorkerID, Results: []ShardResult{{Key: "never-issued", Result: &res}}}
	if _, err := f.pollWorker(bogus); err != nil {
		t.Fatal(err)
	}
	snap := f.snapshot()
	if snap.StaleResults != 2 || snap.Completed != 1 {
		t.Fatalf("snapshot = %+v, want 2 stale results and 1 completion", snap)
	}
}

func TestFabricWorkerErrorFailsShardDeterministically(t *testing.T) {
	f := newFabric(time.Minute, 5*time.Millisecond)
	defer f.close()
	reg, _ := f.register("w", "proc-w", 1)
	done := startExecute(f, "k1")
	shards := awaitLeased(t, f, reg.WorkerID, 1)
	if _, err := f.pollWorker(PollRequest{
		WorkerID: reg.WorkerID,
		Results:  []ShardResult{{ShardID: shards[0].ID, Key: "k1", Error: "simulation panic: bad config"}},
	}); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err == nil || !strings.Contains(out.err.Error(), "bad config") {
		t.Fatalf("outcome = %+v, want the worker's error", out)
	}
	if snap := f.snapshot(); snap.Failed != 1 {
		t.Fatalf("snapshot = %+v, want 1 failed shard", snap)
	}
}

func TestFabricDeregisterRequeues(t *testing.T) {
	f := newFabric(time.Minute, 5*time.Millisecond)
	defer f.close()
	rega, _ := f.register("a", "proc-a", 1)
	regb, _ := f.register("b", "proc-b", 1)
	done := startExecute(f, "k1")
	// Make sure a (not b) holds the lease before deregistering it.
	shards := awaitLeased(t, f, rega.WorkerID, 1)
	if err := f.deregister(rega.WorkerID); err != nil {
		t.Fatal(err)
	}
	re := awaitLeased(t, f, regb.WorkerID, 1)
	if re[0].Run.Key != shards[0].Run.Key {
		t.Fatalf("re-leased %q, want %q", re[0].Run.Key, shards[0].Run.Key)
	}
	res := core.Result{Cycles: 9}
	f.pollWorker(PollRequest{WorkerID: regb.WorkerID, Results: []ShardResult{{Key: "k1", Result: &res}}})
	if out := <-done; out.err != nil || out.res.Cycles != 9 {
		t.Fatalf("outcome = %+v", out)
	}
}

// --- integration tests: real Server + real Workers + real simulations ---

// fabricOpts is the smallest useful harness for cluster tests.
func fabricOpts() exp.Options {
	var subset []workload.Spec
	for _, name := range []string{"Other-Stream-Triad", "Rodinia-Hotspot", "HPC-RSBench", "Lonestar-SP"} {
		s, ok := workload.ByName(name)
		if !ok {
			panic("missing workload " + name)
		}
		subset = append(subset, s)
	}
	return exp.Options{Divisor: 16, IterScale: 0.1, MaxCTAs: 64, Workloads: subset, Parallelism: 4}
}

// clusterServer boots a coordinator with a fast lease clock for tests.
func clusterServer(t *testing.T, cacheDir string) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv, err := New(Config{
		Options:    fabricOpts(),
		CacheDir:   cacheDir,
		Workers:    2,
		LeaseTTL:   300 * time.Millisecond,
		FabricPoll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, NewClient(ts.URL)
}

func startTestWorker(t *testing.T, url, name string, window int) (*Worker, context.CancelFunc, chan error) {
	t.Helper()
	w := NewWorker(WorkerConfig{
		CoordinatorURL: url,
		Name:           name,
		Window:         window,
		Poll:           10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- w.Run(ctx) }()
	t.Cleanup(cancel)
	return w, cancel, errc
}

// sweepBytes runs the canonical test sweep on a server and returns the
// result payload.
func sweepBytes(t *testing.T, c *Client) []byte {
	t.Helper()
	req := SweepRequest{Preset: "base", Sockets: 2}
	j, err := c.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := c.Wait(ctx, j.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	b, err := c.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// awaitWorkers blocks until n workers are registered.
func awaitWorkers(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.fabric.snapshot().WorkersLive < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers registered, want %d", srv.fabric.snapshot().WorkersLive, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterTwoWorkersByteIdenticalExactlyOnce is the tentpole
// acceptance test: a 2-worker cluster produces byte-identical sweep
// output to a worker-less (purely local) daemon, with every simulation
// executed exactly once cluster-wide, all of it observable in the
// run-count metrics.
func TestClusterTwoWorkersByteIdenticalExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Baseline: no workers — the coordinator simulates locally.
	_, _, baseClient := clusterServer(t, "")
	want := sweepBytes(t, baseClient)

	srv, ts, c := clusterServer(t, t.TempDir())
	w1, _, _ := startTestWorker(t, ts.URL, "w1", 1)
	w2, _, _ := startTestWorker(t, ts.URL, "w2", 1)
	awaitWorkers(t, srv, 2)

	got := sweepBytes(t, c)
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster sweep differs from local sweep:\n%s\nvs\n%s", got, want)
	}

	uniq := uint64(len(fabricOpts().Workloads))
	if st := srv.RunnerStats(); st.Simulations != 0 || st.RemoteRuns != uniq {
		t.Fatalf("coordinator stats = %+v, want 0 local sims and %d remote runs", st, uniq)
	}
	snap := srv.fabric.snapshot()
	if snap.ShardsTotal != uniq || snap.Completed != uniq || snap.StaleResults != 0 {
		t.Fatalf("fabric snapshot = %+v, want %d shards completed exactly once", snap, uniq)
	}
	if total := w1.Stats().Simulations + w2.Stats().Simulations; total != uniq {
		t.Fatalf("workers simulated %d times for %d unique keys (w1 %d, w2 %d)",
			total, uniq, w1.Stats().Simulations, w2.Stats().Simulations)
	}

	// The disk cache is the source of truth: worker results must be
	// replayable from it without any fleet at all.
	metrics, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, wantLine := range []string{
		"numagpud_simulations_total 0\n",
		"numagpud_fabric_results_stale_total 0\n",
	} {
		if !strings.Contains(metrics, wantLine) {
			t.Fatalf("metrics missing %q:\n%s", wantLine, metrics)
		}
	}
}

// TestClusterWorkerKillMidSweep kills one worker while it holds a
// lease and requires: the coordinator re-leases its shards to the
// survivor, the sweep output stays byte-identical, and no simulation
// ran twice cluster-wide (exact run counts — the killed worker's
// blocked shard never simulated).
func TestClusterWorkerKillMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	_, _, baseClient := clusterServer(t, "")
	want := sweepBytes(t, baseClient)

	srv, ts, c := clusterServer(t, t.TempDir())
	w1 := NewWorker(WorkerConfig{CoordinatorURL: ts.URL, Name: "victim", Window: 1, Poll: 10 * time.Millisecond})
	// The victim's executor blocks forever: it leases a shard, starts
	// "simulating", and never finishes — modelling SIGKILL mid-run.
	w1.beforeRun = func(string) { select {} }
	go w1.Run(context.Background())

	w2, _, _ := startTestWorker(t, ts.URL, "survivor", 1)
	awaitWorkers(t, srv, 2)

	// Submit the sweep, wait until the victim holds a lease, then kill.
	req := SweepRequest{Preset: "base", Sockets: 2}
	j, err := c.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := srv.fabric.snapshot()
		victimLeased := 0
		for _, ws := range snap.Workers {
			if ws.Name == "victim" {
				victimLeased = ws.Leased
			}
		}
		if victimLeased > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	w1.kill()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := c.Wait(ctx, j.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got, err := c.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-kill sweep differs from local sweep:\n%s\nvs\n%s", got, want)
	}

	uniq := uint64(len(fabricOpts().Workloads))
	snap := srv.fabric.snapshot()
	if snap.Requeued < 1 {
		t.Fatalf("no shards re-queued after worker kill: %+v", snap)
	}
	if snap.Completed != uniq || snap.StaleResults != 0 {
		t.Fatalf("fabric snapshot = %+v, want %d completions and 0 stale", snap, uniq)
	}
	if st := srv.RunnerStats(); st.Simulations != 0 {
		t.Fatalf("coordinator simulated locally (%d) despite a live survivor", st.Simulations)
	}
	// Exactly once: the victim's blocked shard never simulated, so the
	// survivor's count alone must equal the unique keys.
	if total := w1.Stats().Simulations + w2.Stats().Simulations; total != uniq {
		t.Fatalf("cluster simulated %d times for %d unique keys (victim %d, survivor %d)",
			total, uniq, w1.Stats().Simulations, w2.Stats().Simulations)
	}
}

// TestClusterWorkerDrainOnCancel: cancelling a worker's context must
// finish and ship its in-flight shards, deregister, and leave the
// sweep to complete correctly (here: on the coordinator, locally).
func TestClusterWorkerDrainOnCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	_, _, baseClient := clusterServer(t, "")
	want := sweepBytes(t, baseClient)

	srv, ts, c := clusterServer(t, t.TempDir())
	_, cancel, errc := startTestWorker(t, ts.URL, "draining", 2)
	awaitWorkers(t, srv, 1)

	req := SweepRequest{Preset: "base", Sockets: 2}
	j, err := c.SubmitSweep(req)
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker lease something, then ask it to drain.
	deadline := time.Now().Add(10 * time.Second)
	for srv.fabric.snapshot().Leased == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never leased a shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("worker drain returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker drain hung")
	}
	if srv.fabric.snapshot().WorkersLive != 0 {
		t.Fatal("worker did not deregister on drain")
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel2()
	if _, err := c.Wait(ctx, j.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got, err := c.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sweep output wrong after worker drain")
	}
	// Work is conserved: every unique key simulated exactly once
	// cluster-wide, split between the drained worker and the
	// coordinator's local fallback.
	uniq := uint64(len(fabricOpts().Workloads))
	snap := srv.fabric.snapshot()
	local := srv.RunnerStats().Simulations
	if snap.WorkerStats.Simulations+local != uniq || snap.StaleResults != 0 {
		t.Fatalf("worker sims %d + local sims %d != %d unique keys (snapshot %+v)",
			snap.WorkerStats.Simulations, local, uniq, snap)
	}
}

// gatedTransport simulates a network partition: while blocked, every
// request fails at the transport layer.
type gatedTransport struct{ blocked atomic.Bool }

func (g *gatedTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if g.blocked.Load() {
		return nil, errors.New("partitioned")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestWorkerReregistrationDoesNotDoubleCountStats partitions a worker
// past its lease TTL so the coordinator expires it (folding its last
// report into the departed accumulator), then heals the partition so
// the worker re-registers. Its pre-partition simulations must not be
// reported again under the new identity: cluster-wide worker
// simulation counts stay equal to unique runs.
func TestWorkerReregistrationDoesNotDoubleCountStats(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	srv, ts, c := clusterServer(t, "")
	gate := &gatedTransport{}
	w := NewWorker(WorkerConfig{
		CoordinatorURL: ts.URL,
		Name:           "flaky",
		Window:         2,
		Poll:           10 * time.Millisecond,
		HTTPClient:     &http.Client{Transport: gate},
	})
	go w.Run(context.Background())
	awaitWorkers(t, srv, 1)

	runSweep := func(workloads []string) {
		t.Helper()
		j, err := c.SubmitSweep(SweepRequest{Preset: "base", Sockets: 2, Workloads: workloads})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if _, err := c.Wait(ctx, j.ID, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	runSweep([]string{"Other-Stream-Triad"})
	// Make sure the simulation count reached the coordinator before
	// partitioning.
	deadline := time.Now().Add(10 * time.Second)
	for srv.fabric.snapshot().WorkerStats.Simulations != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("first simulation never reported: %+v", srv.fabric.snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	gate.blocked.Store(true)
	deadline = time.Now().Add(10 * time.Second)
	for srv.fabric.snapshot().WorkersLive != 0 {
		if time.Now().After(deadline) {
			t.Fatal("partitioned worker never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	gate.blocked.Store(false)
	awaitWorkers(t, srv, 1) // re-registered under a fresh identity

	runSweep([]string{"Rodinia-Hotspot"})
	deadline = time.Now().Add(10 * time.Second)
	var got uint64
	for {
		got = srv.fabric.snapshot().WorkerStats.Simulations
		if got >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got != 2 {
		t.Fatalf("cluster-wide worker simulations = %d after re-registration, want exactly 2 (no double count)", got)
	}
	if w.Stats().Simulations != 2 {
		t.Fatalf("worker process simulated %d times, want 2", w.Stats().Simulations)
	}
}

// TestFabricClientResubmitsOn404 pins the client's recovery from a
// coordinator that forgot a run (restart or retention eviction): a 404
// on the status poll triggers an idempotent resubmit, while any other
// HTTP error reply fails immediately instead of burning the transport
// retry budget.
func TestFabricClientResubmitsOn404(t *testing.T) {
	var posts, gets atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fabric/runs", func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) == 1 {
			writeJSON(w, http.StatusAccepted, RemoteRunStatus{ID: "x", State: JobRunning})
			return
		}
		res := core.Result{Name: "n", Cycles: 5}
		writeJSON(w, http.StatusAccepted, RemoteRunStatus{ID: "x", State: JobDone, Result: &res})
	})
	mux.HandleFunc("GET /v1/fabric/runs/x", func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		writeAPIError(w, http.StatusNotFound, codeNotFound, "unknown run")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	fc := NewFabricClient(ts.URL)
	fc.Poll = time.Millisecond
	spec, _ := workload.ByName("Other-Stream-Triad")
	res, err := fc.Execute("k", arch.Config{}, spec, workload.Options{})
	if err != nil || res.Cycles != 5 {
		t.Fatalf("Execute = %+v, %v; want resubmitted result", res, err)
	}
	if posts.Load() != 2 || gets.Load() != 1 {
		t.Fatalf("posts=%d gets=%d, want exactly one 404 then one resubmit", posts.Load(), gets.Load())
	}
}

func TestFabricClientFailsFastOnHTTPError(t *testing.T) {
	var gets atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fabric/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, RemoteRunStatus{ID: "x", State: JobRunning})
	})
	mux.HandleFunc("GET /v1/fabric/runs/x", func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		writeAPIError(w, http.StatusInternalServerError, codeJobFailed, "boom")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	fc := NewFabricClient(ts.URL)
	fc.Poll = time.Millisecond
	spec, _ := workload.ByName("Other-Stream-Triad")
	_, err := fc.Execute("k", arch.Config{}, spec, workload.Options{})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Execute err = %v, want the server's error", err)
	}
	if gets.Load() != 1 {
		t.Fatalf("client polled %d times against an authoritative error, want 1", gets.Load())
	}
}

// TestFabricRemoteRunEndpoint drives the coordinator's remote-run
// surface the way numagpu -remote does — via a FabricClient behind
// exp.NewRemoteRunner — against a worker-less coordinator (local
// fallback), and checks key-skew rejection.
func TestFabricRemoteRunEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	srv, ts, _ := clusterServer(t, t.TempDir())

	local := exp.NewRunner(fabricOpts())
	remote := exp.NewRemoteRunner(fabricOpts(), NewFabricClient(ts.URL))
	spec := fabricOpts().Workloads[0]
	want := local.Run(local.Base(2), spec)
	got := remote.Run(remote.Base(2), spec)
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
		t.Fatalf("remote run differs: %+v vs %+v", got, want)
	}
	if st := remote.Stats(); st.RemoteRuns != 1 || st.Simulations != 0 {
		t.Fatalf("client stats = %+v, want 1 remote run", st)
	}
	if st := srv.RunnerStats(); st.Simulations != 1 {
		t.Fatalf("coordinator stats = %+v, want exactly 1 local simulation", st)
	}

	// Submitting again from a fresh client is a coordinator-side memo
	// hit: no second simulation.
	remote2 := exp.NewRemoteRunner(fabricOpts(), NewFabricClient(ts.URL))
	got2 := remote2.Run(remote2.Base(2), spec)
	if got2.Cycles != want.Cycles {
		t.Fatal("second remote run differs")
	}
	if st := srv.RunnerStats(); st.Simulations != 1 {
		t.Fatalf("repeat submission re-simulated: %+v", st)
	}

	// A doctored key — simulator version skew — is refused loudly.
	fc := NewFabricClient(ts.URL)
	_, err := fc.Execute("v999|bogus", local.Base(2), spec, workload.Options{IterScale: 0.1, MaxCTAs: 64})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("key skew accepted: %v", err)
	}
}
