package service

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// journal is the coordinator's durable state: an append-only,
// checksummed write-ahead log of job submissions, shard grants, and
// shard completions, compacted into an atomically-replaced snapshot
// (temp file + rename, the same discipline as DiskCache). Together with
// the content-addressed DiskCache — which already holds every completed
// result — it is everything a restarted coordinator needs to rebuild
// its job queue and shard table and resume an in-flight sweep with zero
// duplicate simulations.
//
// On-disk layout under the state directory (default: "state" under the
// cache directory):
//
//	snapshot.json   last compacted state, written via temp+rename
//	journal.log     records appended since the snapshot
//
// Each log record is framed as an 8-byte little-endian header — 4-byte
// payload length, 4-byte CRC32 (IEEE) of the payload — followed by the
// JSON payload. Appends are fsynced, so a record either survives a
// kill -9 whole or is a detectable torn tail. Replay applies the
// snapshot, then every record up to the first torn or checksum-failing
// one (anything past a torn record is unordered garbage by definition),
// which recovers exactly the state the last successful append captured.
type journal struct {
	dir string

	mu       sync.Mutex
	f        *os.File
	logBytes int64
	snapSize int64
	replays  uint64 // cumulative restarts that recovered state (persisted)
	closed   bool
}

// journalRecord is one WAL entry. T selects the operation; the other
// fields are per-type payloads.
type journalRecord struct {
	T string `json:"t"` // submit | done | fail | grant | complete | requeue
	// submit
	Job *jobRecord `json:"job,omitempty"`
	// done / fail
	ID string `json:"id,omitempty"`
	// grant / complete / requeue
	Key string `json:"key,omitempty"`
	// grant: owning worker process (stable across re-registrations)
	Proc string `json:"proc,omitempty"`
}

// jobRecord is the durable form of one submitted job.
type jobRecord struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	Name       string          `json:"name"`
	Sweep      json.RawMessage `json:"sweep,omitempty"`
	Tenant     string          `json:"tenant,omitempty"`
	DeadlineMs int64           `json:"deadline_unix_ms,omitempty"`
}

// grantRecord is one shard lease that was live when the journal state
// was captured: the shard's RunKey and the worker process holding it.
type grantRecord struct {
	Key  string `json:"key"`
	Proc string `json:"proc"`
}

// journalState is the replayed coordinator state: every journaled job
// not yet finished (in submission order) and every granted shard not
// yet completed or re-queued.
type journalState struct {
	Version   int           `json:"version"`
	NextJobID int           `json:"next_job_id"`
	Jobs      []jobRecord   `json:"jobs"`
	Grants    []grantRecord `json:"grants"`
	Replays   uint64        `json:"replays"`
}

// recovered reports whether the state carries anything worth resuming.
func (st *journalState) recovered() bool {
	return len(st.Jobs) > 0 || len(st.Grants) > 0
}

// apply folds one record into the state.
func (st *journalState) apply(rec journalRecord) {
	switch rec.T {
	case "submit":
		if rec.Job != nil {
			st.Jobs = append(st.Jobs, *rec.Job)
			var n int
			if _, err := fmt.Sscanf(rec.Job.ID, "job-%d", &n); err == nil && n > st.NextJobID {
				st.NextJobID = n
			}
		}
	case "done", "fail":
		for i, j := range st.Jobs {
			if j.ID == rec.ID {
				st.Jobs = append(st.Jobs[:i], st.Jobs[i+1:]...)
				break
			}
		}
	case "grant":
		st.dropGrant(rec.Key)
		st.Grants = append(st.Grants, grantRecord{Key: rec.Key, Proc: rec.Proc})
	case "complete", "requeue":
		st.dropGrant(rec.Key)
	}
}

func (st *journalState) dropGrant(key string) {
	for i, g := range st.Grants {
		if g.Key == key {
			st.Grants = append(st.Grants[:i], st.Grants[i+1:]...)
			return
		}
	}
}

const (
	snapshotName = "snapshot.json"
	logName      = "journal.log"
)

// openJournal opens (creating if needed) the journal at dir, replays
// snapshot + log into a journalState, and compacts: the recovered state
// becomes the new snapshot and the log is truncated, so replay cost
// stays proportional to activity since the last restart. The returned
// state is what the coordinator should rebuild from.
func openJournal(dir string) (*journal, *journalState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	j := &journal{dir: dir}
	st := &journalState{Version: 1}

	if b, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		var snap journalState
		// A torn snapshot cannot happen under the temp+rename discipline;
		// a corrupt one (external damage) degrades to an empty state, the
		// same contract as a corrupt DiskCache entry degrading to a miss.
		if json.Unmarshal(b, &snap) == nil && snap.Version == 1 {
			st = &snap
		}
	}
	replayLog(filepath.Join(dir, logName), st)
	j.replays = st.Replays
	if st.recovered() {
		j.replays++
		st.Replays = j.replays
	}

	if err := j.compact(st); err != nil {
		return nil, nil, err
	}
	return j, st, nil
}

// replayLog applies every intact record of the log file to st, stopping
// at the first torn or checksum-failing record.
func replayLog(path string, st *journalState) {
	b, err := os.ReadFile(path)
	if err != nil {
		return
	}
	for len(b) >= 8 {
		n := binary.LittleEndian.Uint32(b[0:4])
		sum := binary.LittleEndian.Uint32(b[4:8])
		if uint64(len(b)) < 8+uint64(n) {
			return // torn tail: the append died mid-write
		}
		payload := b[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return // corrupt record; nothing after it is trustworthy
		}
		var rec journalRecord
		if json.Unmarshal(payload, &rec) == nil {
			st.apply(rec)
		}
		b = b[8+n:]
	}
}

// append journals one record durably (framed, checksummed, fsynced).
// Errors are swallowed like DiskCache I/O errors: a journal that cannot
// be written degrades durability, never availability.
func (j *journal) append(rec journalRecord) {
	if j == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.f == nil {
		return
	}
	if _, err := j.f.Write(frame); err != nil {
		return
	}
	j.f.Sync()
	j.logBytes += int64(len(frame))
}

// compact atomically replaces the snapshot with st and truncates the
// log, releasing its accumulated records.
func (j *journal) compact(st *journalState) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("service: journal closed")
	}
	tmp, err := os.CreateTemp(j.dir, ".snapshot-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(j.dir, snapshotName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	j.snapSize = int64(len(b))

	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(filepath.Join(j.dir, logName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		j.f = nil
		return err
	}
	j.f = f
	j.logBytes = 0
	return nil
}

// bytes reports the journal's on-disk footprint (snapshot + log).
func (j *journal) bytes() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapSize + j.logBytes
}

// replayCount reports how many restarts (ever) recovered state.
func (j *journal) replayCount() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replays
}

// close releases the log file handle without compacting — the log
// remains authoritative for the next open. Server.Close compacts first
// for a clean shutdown; Server.kill (tests) just drops the handle,
// which is exactly what kill -9 leaves behind.
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}
