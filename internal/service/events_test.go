package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
)

// waitJobState polls until the job reaches want or the deadline hits.
func waitJobState(t *testing.T, srv *Server, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := srv.lookup(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := srv.status(j)
		if st.State == want {
			return st
		}
		if terminal(st.State) {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// submitSweepHTTP posts one sweep and returns the accepted job status.
func submitSweepHTTP(t *testing.T, ts *httptest.Server, req SweepRequest) JobStatus {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit sweep: HTTP %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// readSSE consumes one /events connection until the server closes it,
// returning the decoded events in arrival order. lastEventID, when non
// zero, is sent as the Last-Event-ID resume header.
func readSSE(t *testing.T, base, jobID string, lastEventID int) []JobEvent {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("events: HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var events []JobEvent
	var frameID int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			frameID, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "data: "):
			var ev JobEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event data %q: %v", line, err)
			}
			if ev.ID != frameID {
				t.Fatalf("frame id %d disagrees with body id %d", frameID, ev.ID)
			}
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("events read: %v", err)
	}
	return events
}

// requireDense asserts the events carry consecutive IDs starting at
// from, with no gaps or duplicates.
func requireDense(t *testing.T, events []JobEvent, from int) {
	t.Helper()
	for i, ev := range events {
		if want := from + i; ev.ID != want {
			t.Fatalf("event %d has ID %d, want %d (gap or duplicate)", i, ev.ID, want)
		}
	}
}

// TestEventStreamLifecycle runs one sweep to completion and checks the
// full event contract: the replayed stream is dense from ID 1, begins
// with state=queued, carries exactly one run_done per unique run, ends
// with the terminal state event, and resumes exactly — no gaps, no
// duplicates — from any Last-Event-ID.
func TestEventStreamLifecycle(t *testing.T) {
	srv, err := New(Config{Options: tinyServiceOpts(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submitSweepHTTP(t, ts, SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Other-Stream-Triad", "Rodinia-Hotspot"}})
	waitJobState(t, srv, st.ID, JobDone)

	events := readSSE(t, ts.URL, st.ID, 0)
	requireDense(t, events, 1)
	if len(events) < 5 { // queued, running, plan progress, 2 run_done, done
		t.Fatalf("too few events: %+v", events)
	}
	if events[0].Type != EventState || events[0].State != JobQueued {
		t.Fatalf("first event = %+v, want state=queued", events[0])
	}
	last := events[len(events)-1]
	if last.Type != EventState || last.State != JobDone {
		t.Fatalf("last event = %+v, want state=done", last)
	}
	var runDone, plan int
	seen := map[string]bool{}
	for _, ev := range events {
		switch ev.Type {
		case EventRunDone:
			runDone++
			if ev.Run == nil || ev.Run.Run == "" || ev.Run.Cycles == 0 || ev.Run.Total != 2 {
				t.Fatalf("malformed run_done: %+v", ev.Run)
			}
			if seen[ev.Run.Run] {
				t.Fatalf("run %s reported twice", ev.Run.Run)
			}
			seen[ev.Run.Run] = true
		case EventProgress:
			plan++
			if !strings.Contains(ev.Message, "planned 2 runs") {
				t.Fatalf("plan event message = %q", ev.Message)
			}
		}
	}
	if runDone != 2 || plan != 1 {
		t.Fatalf("%d run_done / %d progress events, want 2/1", runDone, plan)
	}

	// Resume from every position: the tail must continue exactly where
	// the client left off.
	for lastID := 1; lastID < len(events); lastID++ {
		tail := readSSE(t, ts.URL, st.ID, lastID)
		requireDense(t, tail, lastID+1)
		if len(tail) != len(events)-lastID {
			t.Fatalf("resume from %d returned %d events, want %d", lastID, len(tail), len(events)-lastID)
		}
	}
}

// TestStreamJobFollowsLiveJob covers the client consumer against a job
// that completes while being streamed: a disconnect mid-stream resumes
// via Last-Event-ID and the callback still sees every event exactly
// once, ending at the terminal state.
func TestStreamJobFollowsLiveJob(t *testing.T) {
	srv, ts, blocker := blockedServer(t, Config{Workers: 1, QueueDepth: 4})
	defer srv.Close()
	c := NewClient(ts.URL)

	st := submitSweepHTTP(t, ts, SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Other-Stream-Triad"}})
	waitJobState(t, srv, st.ID, JobRunning)

	type streamResult struct {
		events []JobEvent
		err    error
	}
	done := make(chan streamResult, 1)
	go func() {
		var events []JobEvent
		err := c.StreamJob(context.Background(), st.ID, func(ev JobEvent) error {
			events = append(events, ev)
			return nil
		})
		done <- streamResult{events, err}
	}()

	// Let the stream attach and deliver the queued/running prefix, then
	// release the wedged simulation.
	time.Sleep(50 * time.Millisecond)
	unblock(t, srv, blocker)

	res := <-done
	if res.err != nil {
		t.Fatalf("StreamJob: %v", res.err)
	}
	requireDense(t, res.events, 1)
	last := res.events[len(res.events)-1]
	if last.Type != EventState || last.State != JobDone {
		t.Fatalf("stream ended on %+v, want state=done", last)
	}
	var sources []exp.RunSource
	for _, ev := range res.events {
		if ev.Type == EventRunDone {
			sources = append(sources, ev.Run.Source)
		}
	}
	if len(sources) != 1 || sources[0] != exp.SourceRemote {
		t.Fatalf("run sources = %v, want exactly one remote completion", sources)
	}
}

// TestConcurrentJobsAttributeOwnRuns pins the cross-job attribution
// bugfix: with two jobs running concurrently, each job's event stream
// and run counters must cover exactly its own runs — the old shared
// progress fanout appended every line to every active job.
func TestConcurrentJobsAttributeOwnRuns(t *testing.T) {
	srv, ts, blocker := blockedServer(t, Config{Workers: 2, QueueDepth: 4})
	defer srv.Close()

	a := submitSweepHTTP(t, ts, SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Other-Stream-Triad"}})
	b := submitSweepHTTP(t, ts, SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Rodinia-Hotspot"}})
	// Both jobs must be mid-flight together before any run completes.
	waitJobState(t, srv, a.ID, JobRunning)
	waitJobState(t, srv, b.ID, JobRunning)
	unblock(t, srv, blocker)
	stA := waitJobState(t, srv, a.ID, JobDone)
	stB := waitJobState(t, srv, b.ID, JobDone)

	if stA.RunsDone != 1 || stB.RunsDone != 1 {
		t.Fatalf("runs_done = %d/%d, want 1 each", stA.RunsDone, stB.RunsDone)
	}
	workloadsOf := func(id string) []string {
		var out []string
		for _, ev := range readSSE(t, ts.URL, id, 0) {
			if ev.Type == EventRunDone {
				out = append(out, ev.Run.Workload)
			}
		}
		return out
	}
	wa, wb := workloadsOf(a.ID), workloadsOf(b.ID)
	if len(wa) != 1 || wa[0] != "Other-Stream-Triad" {
		t.Fatalf("job A saw runs %v, want exactly its own workload", wa)
	}
	if len(wb) != 1 || wb[0] != "Rodinia-Hotspot" {
		t.Fatalf("job B saw runs %v, want exactly its own workload", wb)
	}
}

// TestSweepDeltaPlanning is the service-level delta assertion: sweep B
// overlapping an already-finished sweep A by one key simulates exactly
// |B|-1 new runs, reports the overlap in runs_cached, counts it into
// Stats.DeltaHits, and surfaces it on /metrics. The replayed run_done
// of the overlapping key carries the same content-addressed run
// reference as A's — served from cache, never re-simulated.
func TestSweepDeltaPlanning(t *testing.T) {
	srv, err := New(Config{Options: tinyServiceOpts(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	a := submitSweepHTTP(t, ts, SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Other-Stream-Triad"}})
	waitJobState(t, srv, a.ID, JobDone)
	if st := srv.RunnerStats(); st.Simulations != 1 || st.DeltaHits != 0 {
		t.Fatalf("after sweep A: %+v", st)
	}

	b := submitSweepHTTP(t, ts, SweepRequest{Preset: "base", Sockets: 2, Workloads: []string{"Other-Stream-Triad", "Rodinia-Hotspot"}})
	stB := waitJobState(t, srv, b.ID, JobDone)
	if st := srv.RunnerStats(); st.Simulations != 2 || st.DeltaHits != 1 {
		t.Fatalf("after sweep B: %+v, want 2 simulations (|A|+|B|-1) and 1 delta hit", st)
	}
	if stB.RunsTotal != 2 || stB.RunsDone != 2 || stB.RunsCached != 1 {
		t.Fatalf("sweep B counters = %+v, want 2 total / 2 done / 1 cached", stB)
	}

	runRefs := func(id string) map[string]exp.RunSource {
		out := map[string]exp.RunSource{}
		for _, ev := range readSSE(t, ts.URL, id, 0) {
			if ev.Type == EventRunDone {
				out[ev.Run.Workload] = ev.Run.Source
			}
		}
		return out
	}
	bRefs := runRefs(b.ID)
	if bRefs["Other-Stream-Triad"] != exp.SourceCached {
		t.Fatalf("overlapping run resolved as %q, want cached", bRefs["Other-Stream-Triad"])
	}
	if bRefs["Rodinia-Hotspot"] != exp.SourceSimulated {
		t.Fatalf("new run resolved as %q, want simulated", bRefs["Rodinia-Hotspot"])
	}
	// The exactly-once reference: B's cached completion names the same
	// content address A's simulation produced.
	refOf := func(id, workload string) string {
		for _, ev := range readSSE(t, ts.URL, id, 0) {
			if ev.Type == EventRunDone && ev.Run.Workload == workload {
				return ev.Run.Run
			}
		}
		return ""
	}
	if ra, rb := refOf(a.ID, "Other-Stream-Triad"), refOf(b.ID, "Other-Stream-Triad"); ra == "" || ra != rb {
		t.Fatalf("run references differ across sweeps: %q vs %q", ra, rb)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "numagpud_delta_hits_total 1\n") {
		t.Fatalf("metrics missing delta hits:\n%s", metrics)
	}
}

// TestEndpointErrorEnvelope asserts every endpoint's failure shape: one
// {"error": {"code", "message"}} envelope with the documented stable
// code and status.
func TestEndpointErrorEnvelope(t *testing.T) {
	srv, err := New(Config{Options: tinyServiceOpts(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Synthesized job states for the /result conflict paths.
	srv.mu.Lock()
	srv.jobs["job-queued"] = &job{id: "job-queued", state: JobQueued}
	srv.jobs["job-bad"] = &job{id: "job-bad", state: JobFailed, err: "boom"}
	srv.mu.Unlock()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"unknown experiment", "POST", "/v1/experiments/figNaN", "", 404, "not_found"},
		{"unknown job", "GET", "/v1/jobs/job-999", "", 404, "not_found"},
		{"unknown job events", "GET", "/v1/jobs/job-999/events", "", 404, "not_found"},
		{"unknown job result", "GET", "/v1/jobs/job-999/result", "", 404, "not_found"},
		{"bad list limit", "GET", "/v1/jobs?limit=zero", "", 400, "invalid_argument"},
		{"bad list cursor", "GET", "/v1/jobs?after=nope", "", 400, "invalid_argument"},
		{"bad events resume", "GET", "/v1/jobs/job-queued/events", "", 400, "invalid_argument"},
		{"malformed sweep", "POST", "/v1/sweeps", "{nope", 400, "invalid_argument"},
		{"unknown preset", "POST", "/v1/sweeps", `{"preset":"warp-drive"}`, 400, "invalid_argument"},
		{"unfinished result", "GET", "/v1/jobs/job-queued/result", "", 409, "not_ready"},
		{"failed result", "GET", "/v1/jobs/job-bad/result", "", 500, "job_failed"},
		{"malformed fabric run", "POST", "/v1/fabric/runs", "{nope", 400, "invalid_argument"},
		{"unknown fabric run", "GET", "/v1/fabric/runs/nope", "", 404, "not_found"},
		{"unknown worker deregister", "DELETE", "/v1/fabric/workers/nope", "", 410, "unknown_worker"},
		{"unknown worker poll", "POST", "/v1/fabric/poll", `{"worker_id":"nope"}`, 410, "unknown_worker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			if tc.name == "bad events resume" {
				req.Header.Set("Last-Event-ID", "three")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("HTTP %d, want %d", resp.StatusCode, tc.status)
			}
			var env struct {
				Error APIError `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("body is not the error envelope: %v", err)
			}
			if env.Error.Code != tc.code {
				t.Fatalf("code = %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}

	// The shed-load shape: code mirrors the admission reason and the
	// retry hint rides both the header and the body.
	rec := httptest.NewRecorder()
	writeSubmitError(rec, &admissionError{reason: "queue_full", retryAfter: 3 * time.Second})
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") != "3" {
		t.Fatalf("shed response = %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	var env struct {
		Error APIError `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "queue_full" || env.Error.RetryAfterMs != 3000 {
		t.Fatalf("shed envelope = %+v", env.Error)
	}

	// Draining: submissions after Close are refused for good.
	srv.Close()
	resp, err := http.Post(ts.URL+"/v1/experiments/fig2", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close submit: HTTP %d, want 503", resp.StatusCode)
	}
	env.Error = APIError{}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != "draining" {
		t.Fatalf("post-Close envelope = %+v (err %v), want draining", env.Error, err)
	}
}

// TestVersionSkewEnvelope exercises the fabric submit key-mismatch path
// through the full stack (it needs a valid config to reach the check).
func TestVersionSkewEnvelope(t *testing.T) {
	srv, err := New(Config{Options: tinyServiceOpts(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cfg := srv.runner.Base(2)
	body, _ := json.Marshal(WireRun{Key: "v0|stale-key", Cfg: cfg, Workload: "Other-Stream-Triad", IterScale: 0.1, MaxCTAs: 64})
	resp, err := http.Post(ts.URL+"/v1/fabric/runs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("HTTP %d, want 409: %s", resp.StatusCode, b)
	}
	var env struct {
		Error APIError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != "version_skew" {
		t.Fatalf("envelope = %+v (err %v), want version_skew", env.Error, err)
	}
}
