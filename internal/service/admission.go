package service

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// admission is the submit-side load shedder: it bounds the job queue
// with an explicit 429 + Retry-After (instead of an opaque failure) and
// enforces per-tenant token-bucket quotas keyed by the X-Tenant header.
// The shedding order is strict: new submissions are rejected first and
// in-flight work is never shed — a job that got past admission runs to
// completion (or its deadline).
//
// Retry-After is derived from observed load: queue depth × the EWMA of
// per-job latency, divided across the worker pool, so a client backing
// off as told arrives when a slot is plausibly free.
type admission struct {
	quota float64 // jobs per minute per tenant; 0 disables quotas

	mu       sync.Mutex
	buckets  map[string]*tokenBucket
	ewmaSec  float64 // observed per-job latency, exponentially weighted
	rejected map[admissionKey]uint64
}

type admissionKey struct {
	Reason string
	Tenant string
}

// tokenBucket is a standard leaky token bucket: capacity = one minute
// of quota (the burst), refilled continuously at quota/minute.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// admissionError rejects one submission. It carries the machine-readable
// reason (the metric label) and the Retry-After hint.
type admissionError struct {
	reason     string
	retryAfter time.Duration
}

func (e *admissionError) Error() string {
	return fmt.Sprintf("service: submission rejected (%s), retry after %s", e.reason, e.retryAfter.Round(time.Second))
}

func newAdmission(quota float64) *admission {
	return &admission{
		quota:    quota,
		buckets:  make(map[string]*tokenBucket),
		rejected: make(map[admissionKey]uint64),
	}
}

// defaultTenant is the bucket the CLI and header-less clients share.
const defaultTenant = "default"

// admitTenant charges one job to tenant's bucket, rejecting with the
// time until the next token when the bucket is dry.
func (a *admission) admitTenant(tenant string) error {
	if a.quota <= 0 {
		return nil
	}
	if tenant == "" {
		tenant = defaultTenant
	}
	rate := a.quota / 60.0 // tokens per second
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: a.quota, last: now}
		a.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rate
	if b.tokens > a.quota {
		b.tokens = a.quota
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
		a.rejected[admissionKey{"quota", tenant}]++
		return &admissionError{reason: "quota", retryAfter: wait}
	}
	b.tokens--
	return nil
}

// rejectFull records a queue-full rejection and computes its
// Retry-After from current load: the queued backlog times the observed
// per-job latency, spread over the worker pool.
func (a *admission) rejectFull(tenant string, queued, workers int) error {
	if tenant == "" {
		tenant = defaultTenant
	}
	if workers < 1 {
		workers = 1
	}
	a.mu.Lock()
	lat := a.ewmaSec
	a.rejected[admissionKey{"queue_full", tenant}]++
	a.mu.Unlock()
	if lat <= 0 {
		lat = 1 // no sample yet: assume a second per job
	}
	wait := time.Duration(lat * float64(queued) / float64(workers) * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return &admissionError{reason: "queue_full", retryAfter: wait}
}

// refundTenant returns one token after a submission that passed the
// quota check but failed a later admission stage, so a rejected request
// does not consume quota.
func (a *admission) refundTenant(tenant string) {
	if a.quota <= 0 {
		return
	}
	if tenant == "" {
		tenant = defaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.buckets[tenant]; ok && b.tokens < a.quota {
		b.tokens++
	}
}

// observe feeds one finished job's wall time into the latency EWMA.
func (a *admission) observe(d time.Duration) {
	const alpha = 0.3
	a.mu.Lock()
	defer a.mu.Unlock()
	sec := d.Seconds()
	if a.ewmaSec == 0 {
		a.ewmaSec = sec
		return
	}
	a.ewmaSec = alpha*sec + (1-alpha)*a.ewmaSec
}

// rejections snapshots the rejection counters, sorted for deterministic
// metric rendering.
func (a *admission) rejections() []struct {
	Key   admissionKey
	Count uint64
} {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]struct {
		Key   admissionKey
		Count uint64
	}, 0, len(a.rejected))
	for k, c := range a.rejected {
		out = append(out, struct {
			Key   admissionKey
			Count uint64
		}{k, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Reason != out[j].Key.Reason {
			return out[i].Key.Reason < out[j].Key.Reason
		}
		return out[i].Key.Tenant < out[j].Key.Tenant
	})
	return out
}

// rejectedTotal sums rejections across reasons and tenants.
func (a *admission) rejectedTotal() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n uint64
	for _, c := range a.rejected {
		n += c
	}
	return n
}
