package service

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// journalDir opens a journal, appends records, and returns its dir with
// the file handle dropped un-compacted — the on-disk state a kill -9
// leaves behind.
func journalDir(t *testing.T, recs ...journalRecord) string {
	t.Helper()
	dir := t.TempDir()
	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	if st.recovered() {
		t.Fatalf("fresh journal claims recovered state: %+v", st)
	}
	for _, rec := range recs {
		j.append(rec)
	}
	j.close()
	return dir
}

func submitRec(id, kind, name string) journalRecord {
	return journalRecord{T: "submit", Job: &jobRecord{ID: id, Kind: kind, Name: name}}
}

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := journalDir(t,
		submitRec("job-1", "experiment", "fig3"),
		submitRec("job-2", "sweep", "base"),
		journalRecord{T: "done", ID: "job-1"},
		journalRecord{T: "grant", Key: "k1", Proc: "p1"},
		journalRecord{T: "grant", Key: "k2", Proc: "p2"},
		journalRecord{T: "complete", Key: "k2"},
		journalRecord{T: "grant", Key: "k1", Proc: "p3"}, // re-grant replaces
	)

	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.close()
	if !st.recovered() {
		t.Fatal("state not recovered")
	}
	if len(st.Jobs) != 1 || st.Jobs[0].ID != "job-2" {
		t.Fatalf("jobs = %+v, want only job-2", st.Jobs)
	}
	if st.NextJobID != 2 {
		t.Fatalf("NextJobID = %d, want 2", st.NextJobID)
	}
	if len(st.Grants) != 1 || st.Grants[0] != (grantRecord{Key: "k1", Proc: "p3"}) {
		t.Fatalf("grants = %+v, want k1 owned by p3", st.Grants)
	}
	if j.replayCount() != 1 {
		t.Fatalf("replays = %d, want 1", j.replayCount())
	}

	// The open compacted: the log is empty, the snapshot carries the
	// state, and a third open recovers the same picture (replays now 2).
	if info, err := os.Stat(filepath.Join(dir, logName)); err != nil || info.Size() != 0 {
		t.Fatalf("log not truncated after compaction: %v, %v", info, err)
	}
	j.close()
	j2, st2, err := openJournal(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer j2.close()
	if len(st2.Jobs) != 1 || len(st2.Grants) != 1 || st2.Replays != 2 {
		t.Fatalf("snapshot replay = %+v, want same state, 2 replays", st2)
	}
}

// TestJournalTornTail truncates the log mid-record: replay must recover
// everything before the torn record and nothing after.
func TestJournalTornTail(t *testing.T) {
	dir := journalDir(t,
		submitRec("job-1", "experiment", "fig3"),
		submitRec("job-2", "experiment", "fig6"),
	)
	path := filepath.Join(dir, logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the second record's payload.
	if err := os.WriteFile(path, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer j.close()
	if len(st.Jobs) != 1 || st.Jobs[0].ID != "job-1" {
		t.Fatalf("jobs = %+v, want exactly the pre-tear job-1", st.Jobs)
	}
}

// TestJournalBadChecksum flips a payload byte: the corrupt record and
// everything after it are discarded, everything before survives.
func TestJournalBadChecksum(t *testing.T) {
	dir := journalDir(t,
		submitRec("job-1", "experiment", "fig3"),
		submitRec("job-2", "experiment", "fig6"),
		submitRec("job-3", "experiment", "fig9"),
	)
	path := filepath.Join(dir, logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the second record's payload.
	n1 := binary.LittleEndian.Uint32(b[0:4])
	second := 8 + int(n1)
	b[second+8+4] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatalf("reopen over corrupt record: %v", err)
	}
	defer j.close()
	if len(st.Jobs) != 1 || st.Jobs[0].ID != "job-1" {
		t.Fatalf("jobs = %+v, want only job-1 (corruption truncates)", st.Jobs)
	}

	// Sanity: the frame we corrupted really does fail its checksum.
	n2 := binary.LittleEndian.Uint32(b[second : second+4])
	sum2 := binary.LittleEndian.Uint32(b[second+4 : second+8])
	if crc32.ChecksumIEEE(b[second+8:second+8+int(n2)]) == sum2 {
		t.Fatal("test corrupted the wrong bytes")
	}
}

// TestJournalCorruptSnapshotDegradesToEmpty replaces the snapshot with
// garbage: the journal opens with empty state (plus whatever the log
// holds) instead of failing or corrupting.
func TestJournalCorruptSnapshotDegradesToEmpty(t *testing.T) {
	dir := journalDir(t, submitRec("job-1", "experiment", "fig3"))
	// Compact job-1 into the snapshot, then corrupt it.
	j, st, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 1 {
		t.Fatalf("setup: jobs = %+v", st.Jobs)
	}
	j.close()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, st2, err := openJournal(dir)
	if err != nil {
		t.Fatalf("open over corrupt snapshot: %v", err)
	}
	defer j2.close()
	if st2.recovered() {
		t.Fatalf("corrupt snapshot produced state: %+v", st2)
	}
}

// TestJournalAppendAfterCloseIsNoop pins the kill path: appends after
// close must neither panic nor write.
func TestJournalAppendAfterCloseIsNoop(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	j.close()
	j.append(submitRec("job-1", "experiment", "fig3"))
	if info, err := os.Stat(filepath.Join(dir, logName)); err != nil || info.Size() != 0 {
		t.Fatalf("append after close wrote bytes: %v, %v", info, err)
	}

	// And the nil journal (durability off) is inert everywhere.
	var nilJ *journal
	nilJ.append(submitRec("job-9", "x", "y"))
	nilJ.close()
	if nilJ.bytes() != 0 || nilJ.replayCount() != 0 {
		t.Fatal("nil journal reported state")
	}
}

// TestJournalStateRecordShapes pins the wire shape of the snapshot so
// accidental field renames (which would orphan real on-disk state) show
// up as a test failure.
func TestJournalStateRecordShapes(t *testing.T) {
	st := journalState{
		Version:   1,
		NextJobID: 7,
		Jobs:      []jobRecord{{ID: "job-7", Kind: "sweep", Name: "base", Tenant: "t", DeadlineMs: 123}},
		Grants:    []grantRecord{{Key: "k", Proc: "p"}},
		Replays:   2,
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":1,"next_job_id":7,"jobs":[{"id":"job-7","kind":"sweep","name":"base","tenant":"t","deadline_unix_ms":123}],"grants":[{"key":"k","proc":"p"}],"replays":2}`
	if string(b) != want {
		t.Fatalf("snapshot wire shape drifted:\n got %s\nwant %s", b, want)
	}
}
