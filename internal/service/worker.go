package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/workload"
)

// WorkerConfig sizes one fabric worker (numagpud -worker).
type WorkerConfig struct {
	// CoordinatorURL is the coordinator's base URL,
	// e.g. "http://127.0.0.1:8377".
	CoordinatorURL string
	// Name is the worker's display name (default "host-pid").
	Name string
	// Window is the number of simulations the worker runs in flight
	// (default GOMAXPROCS); the coordinator never leases it more shards
	// than this.
	Window int
	// Poll is the fallback poll interval used until the coordinator
	// advertises one (default 250ms).
	Poll time.Duration
	// Mirror, when non-nil, receives per-run progress lines.
	Mirror io.Writer
	// EngineShards, when > 1, runs each leased simulation on a sharded
	// engine (exp.Options.EngineShards). Results stay byte-identical,
	// so shard counts may differ across a fabric's workers.
	EngineShards int
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// Worker is the pull half of the sweep fabric: it registers with a
// coordinator, polls for leased shards (each poll doubling as the
// heartbeat that keeps its leases alive), simulates them locally on its
// own runner set, and ships results — tagged with their RunKey — back
// on the next poll. It keeps no persistent cache: the coordinator's
// DiskCache is the single source of truth, and a worker restart costs
// at most the re-execution of its in-flight shards.
//
// Run blocks until the context is cancelled; cancellation is a graceful
// drain — the worker stops accepting shards, finishes what it holds,
// ships the final results, and deregisters so the coordinator re-leases
// nothing.
type Worker struct {
	cfg     WorkerConfig
	client  *Client
	runners *runnerSet

	// process identifies this worker process across re-registrations
	// (lease expiry + 410 + re-register): the coordinator keys its
	// stats accounting by it, so the absolute counters a re-registered
	// worker reports supersede — never add to — what its previous
	// registration already reported.
	process string

	mu       sync.Mutex
	id       string
	inflight int
	running  map[string]bool // RunKeys currently simulating
	results  []ShardResult

	// seq numbers every poll so the coordinator can ignore duplicate or
	// reordered deliveries (chaos transports duplicate requests); it also
	// lets the coordinator reconcile leases against Holding.
	seq      atomic.Int64
	draining atomic.Bool

	wake   chan struct{} // buffered; poked when a shard finishes
	killed chan struct{} // test hook: abrupt death, no drain

	// beforeRun, when non-nil, is called before executing each leased
	// shard (test hook for deterministic mid-sweep failure injection).
	beforeRun func(key string)
}

// NewWorker builds a worker for the coordinator at cfg.CoordinatorURL.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Window < 1 {
		cfg.Window = runtime.GOMAXPROCS(0)
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &Worker{
		cfg:     cfg,
		process: fmt.Sprintf("%s/%d/%d", cfg.Name, os.Getpid(), workerSeq.Add(1)),
		client:  &Client{BaseURL: cfg.CoordinatorURL, HTTPClient: cfg.HTTPClient},
		running: make(map[string]bool),
		wake:    make(chan struct{}, 1),
		killed:  make(chan struct{}),
	}
	base := exp.Options{Progress: cfg.Mirror, EngineShards: cfg.EngineShards}
	w.runners = newRunnerSet(base)
	return w
}

// Stats reports the worker's aggregate run counters.
func (w *Worker) Stats() exp.Stats { return w.runners.stats() }

// Name reports the worker's display name.
func (w *Worker) Name() string { return w.cfg.Name }

// Inflight reports how many leased shards are currently simulating.
func (w *Worker) Inflight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight
}

// Run registers with the coordinator and serves the poll loop until ctx
// is cancelled, then drains: finishes in-flight shards, ships their
// results, and deregisters. It returns nil on a clean drain.
func (w *Worker) Run(ctx context.Context) error {
	poll, err := w.register(ctx)
	if err != nil {
		return err
	}
	draining := false
	failures := 0
	for {
		if !draining && ctx.Err() != nil {
			draining = true
			w.draining.Store(true)
		}
		req := w.buildPoll(draining)
		var resp PollResponse
		err := w.client.do("POST", "/v1/fabric/poll", req, &resp)
		switch {
		case err == nil:
			failures = 0
			w.clearShipped(len(req.Results))
			if resp.PollMs > 0 {
				poll = time.Duration(resp.PollMs) * time.Millisecond
			}
			for _, sh := range resp.Shards {
				w.startShard(sh)
			}
		case isGone(err):
			// The coordinator forgot us (lease expiry, restart). While
			// draining there is nothing useful left to say; otherwise
			// re-register and carry on — results are keyed by RunKey,
			// so work finished under the old identity still lands.
			if draining && w.idle() {
				return nil
			}
			if _, rerr := w.reregister(ctx); rerr != nil {
				return rerr
			}
			continue
		default:
			// Transient coordinator trouble: keep results queued and
			// retry. Give up only when asked to stop.
			failures++
			if draining && failures > 20 {
				return fmt.Errorf("service: worker drain abandoned after repeated poll failures: %w", err)
			}
		}
		if draining && w.idle() {
			w.deregister()
			return nil
		}
		select {
		case <-w.killed:
			return errors.New("service: worker killed")
		case <-w.wake:
		case <-time.After(poll):
		case <-ctx.Done():
			// First cancellation flips to draining on the next
			// iteration; the loop keeps spinning until idle.
		}
	}
}

// register obtains a worker identity, retrying until ctx is cancelled.
func (w *Worker) register(ctx context.Context) (time.Duration, error) {
	poll := w.cfg.Poll
	for {
		var resp RegisterResponse
		err := w.client.do("POST", "/v1/fabric/workers", RegisterRequest{Name: w.cfg.Name, Window: w.cfg.Window, Process: w.process}, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.mu.Unlock()
			if resp.PollMs > 0 {
				poll = time.Duration(resp.PollMs) * time.Millisecond
			}
			return poll, nil
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("service: worker registration: %w", err)
		case <-w.killed:
			return 0, errors.New("service: worker killed")
		case <-time.After(poll):
		}
	}
}

func (w *Worker) reregister(ctx context.Context) (time.Duration, error) {
	w.mu.Lock()
	w.id = ""
	w.mu.Unlock()
	return w.register(ctx)
}

func (w *Worker) deregister() {
	w.mu.Lock()
	id := w.id
	w.mu.Unlock()
	if id == "" {
		return
	}
	w.client.do("DELETE", "/v1/fabric/workers/"+id, nil, nil)
}

// buildPoll snapshots the poll request: a copy of the finished-result
// outbox (cleared via clearShipped only after the poll succeeds, so a
// failed poll loses nothing), the current run counters (taken after the
// results, so any shipped result's simulation is covered by this or an
// earlier report), and Want — the free slice of the window, zero while
// draining so no new work is leased.
func (w *Worker) buildPoll(draining bool) PollRequest {
	w.mu.Lock()
	defer w.mu.Unlock()
	req := PollRequest{
		WorkerID: w.id,
		Seq:      w.seq.Add(1),
		Results:  append([]ShardResult(nil), w.results...),
		Stats:    w.runners.stats(),
	}
	// Holding enumerates every RunKey this worker still owes the
	// coordinator — simulating or queued in the outbox — so the
	// coordinator can re-queue leases lost to a dropped response.
	for key := range w.running {
		req.Holding = append(req.Holding, key)
	}
	for _, r := range w.results {
		req.Holding = append(req.Holding, r.Key)
	}
	if !draining {
		// Results shipped in this request release their leases during
		// the same round trip (the coordinator ingests before
		// granting), so only genuinely in-flight work occupies the
		// window.
		req.Want = w.cfg.Window - w.inflight
		if req.Want < 0 {
			req.Want = 0
		}
	}
	return req
}

// workerSeq disambiguates multiple Workers in one OS process (tests).
var workerSeq atomic.Int64

// clearShipped drops results that a successful poll delivered.
func (w *Worker) clearShipped(n int) {
	w.mu.Lock()
	w.results = w.results[n:]
	w.mu.Unlock()
}

// idle reports whether nothing is simulating and nothing is waiting to
// be shipped.
func (w *Worker) idle() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inflight == 0 && len(w.results) == 0
}

// startShard begins simulating one leased shard on its own goroutine.
func (w *Worker) startShard(sh WireShard) {
	w.mu.Lock()
	w.inflight++
	w.running[sh.Run.Key] = true
	w.mu.Unlock()
	go func() {
		res := w.runShard(sh)
		w.mu.Lock()
		w.inflight--
		delete(w.running, sh.Run.Key)
		w.results = append(w.results, res)
		w.mu.Unlock()
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}()
}

// runShard executes one shard, converting panics (invalid configs) and
// version skew into shard errors the coordinator fails deterministically.
func (w *Worker) runShard(sh WireShard) (out ShardResult) {
	out = ShardResult{ShardID: sh.ID, Key: sh.Run.Key}
	defer func() {
		if p := recover(); p != nil {
			out.Result = nil
			out.Error = fmt.Sprintf("simulation panic: %v", p)
		}
	}()
	if w.beforeRun != nil {
		w.beforeRun(sh.Run.Key)
	}
	spec, ok := workload.ByName(sh.Run.Workload)
	if !ok {
		out.Error = fmt.Sprintf("unknown workload %q", sh.Run.Workload)
		return out
	}
	runner := w.runners.runner(sh.Run.IterScale, sh.Run.MaxCTAs)
	if want := runner.RunKey(sh.Run.Cfg, spec); want != sh.Run.Key {
		out.Error = fmt.Sprintf("run key mismatch (coordinator %q, worker %q): simulator version skew?", sh.Run.Key, want)
		return out
	}
	res := runner.Run(sh.Run.Cfg, spec)
	out.Result = &res
	return out
}

// kill stops the worker abruptly — no drain, no deregistration — so
// tests can model a crashed worker whose leases must expire.
func (w *Worker) kill() { close(w.killed) }

// isGone reports whether an API error is HTTP 410 (unknown worker).
func isGone(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Status == http.StatusGone
}

// Handler serves the worker's own observability surface: liveness and
// readiness probes plus a small Prometheus /metrics with its run
// counters. Readiness goes false the moment a drain starts, so a load
// balancer (or the operator) sees the worker leave before it actually
// disappears.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	live := func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok", "worker": w.cfg.Name})
	}
	mux.HandleFunc("GET /healthz", live)
	mux.HandleFunc("GET /healthz/live", live)
	mux.HandleFunc("GET /healthz/ready", func(rw http.ResponseWriter, r *http.Request) {
		killed := false
		select {
		case <-w.killed:
			killed = true
		default:
		}
		if w.draining.Load() || killed {
			writeJSON(rw, http.StatusServiceUnavailable, map[string]string{"status": "draining", "worker": w.cfg.Name})
			return
		}
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ready", "worker": w.cfg.Name})
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		st := w.Stats()
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p := func(format string, args ...any) { fmt.Fprintf(rw, format, args...) }
		p("# HELP numagpud_worker_simulations_total Simulations executed by this worker.\n")
		p("# TYPE numagpud_worker_simulations_total counter\n")
		p("numagpud_worker_simulations_total %d\n", st.Simulations)
		p("# HELP numagpud_worker_inflight Leased shards currently simulating.\n")
		p("# TYPE numagpud_worker_inflight gauge\n")
		p("numagpud_worker_inflight %d\n", w.Inflight())
	})
	return mux
}
