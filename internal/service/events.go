package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/exp"
)

// Event types on a job's event log (GET /v1/jobs/{id}/events).
const (
	// EventState marks a lifecycle transition; State carries the new
	// JobState. Every job's log begins with state=queued and ends with
	// state=done or state=failed.
	EventState = "state"
	// EventRunDone reports one completed run of a sweep or experiment;
	// Run carries the details.
	EventRunDone = "run_done"
	// EventProgress is a human-readable note (e.g. the sweep's delta
	// plan summary); Message carries it.
	EventProgress = "progress"
	// EventError reports the failure message of a job that ended in
	// state=failed; Message carries it.
	EventError = "error"
)

// JobEvent is one entry of a job's append-only event log. IDs are dense
// and 1-based within the job, which is what makes SSE resume exact: a
// client reconnecting with Last-Event-ID: N receives event N+1 onward,
// no gaps, no duplicates.
//
// Events are observability, not state: they are not journaled, so a
// coordinator restart resets a replayed job's log (like result bytes,
// which are also rebuilt by re-execution — see docs/ROBUSTNESS.md). The
// run_done events of the re-execution carry the same content-addressed
// run references, served from the disk cache rather than re-simulated.
type JobEvent struct {
	ID      int      `json:"id"`
	Type    string   `json:"type"`
	State   JobState `json:"state,omitempty"`
	Message string   `json:"message,omitempty"`
	Run     *RunDone `json:"run,omitempty"`
}

// RunDone is the payload of a run_done event: one completed run,
// identified by the same content address the fabric run endpoints use
// (the hex SHA-256 of the RunKey), so a streamed completion can be
// correlated with cache entries and remote runs. Source says how the
// result was obtained (simulated, cached, remote, coalesced) — an SSE
// replay after reconnect re-sends the same reference, never a
// re-simulation.
type RunDone struct {
	Run      string        `json:"run"`
	Workload string        `json:"workload"`
	Source   exp.RunSource `json:"source"`
	Cycles   uint64        `json:"cycles"`
	Done     int           `json:"done"`
	Total    int           `json:"total,omitempty"`
}

// appendEventLocked stamps the next dense ID on ev, appends it to the
// job's log, and wakes every streaming reader. Caller holds s.mu.
func (s *Server) appendEventLocked(j *job, ev JobEvent) {
	ev.ID = len(j.events) + 1
	j.events = append(j.events, ev)
	s.eventCond.Broadcast()
}

// appendEvent is appendEventLocked for callers not holding s.mu.
func (s *Server) appendEvent(j *job, ev JobEvent) {
	s.mu.Lock()
	s.appendEventLocked(j, ev)
	s.mu.Unlock()
}

// handleJobEvents streams a job's event log as Server-Sent Events: one
// frame per JobEvent (id: the dense event ID, event: the type, data:
// the JSON body). The stream replays the log from the beginning — or
// from the event after Last-Event-ID on reconnect — then follows live
// until the job reaches a terminal state and the log is drained, at
// which point the stream ends cleanly. Reads concurrent with execution
// see every event exactly once.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	sent := 0
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		n, err := strconv.Atoi(lid)
		if err != nil || n < 0 {
			writeAPIError(w, http.StatusBadRequest, codeInvalidArgument, "bad Last-Event-ID %q", lid)
			return
		}
		sent = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeAPIError(w, http.StatusInternalServerError, codeInvalidArgument, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A disconnected client must not leave this handler parked on the
	// cond forever: wake every waiter when the request context ends and
	// let the loop notice its own context died.
	stop := context.AfterFunc(r.Context(), func() {
		s.mu.Lock()
		s.eventCond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	for {
		s.mu.Lock()
		for len(j.events) <= sent && !terminal(j.state) && !s.closing && r.Context().Err() == nil {
			s.eventCond.Wait()
		}
		batch := append([]JobEvent(nil), j.events[sent:]...)
		done := terminal(j.state) || s.closing
		s.mu.Unlock()

		sent += len(batch)
		for _, ev := range batch {
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data)
		}
		if len(batch) > 0 {
			flusher.Flush()
		}
		if r.Context().Err() != nil || done {
			return
		}
	}
}

// terminal reports whether a job state is final.
func terminal(st JobState) bool { return st == JobDone || st == JobFailed }
