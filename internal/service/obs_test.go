package service_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/service"
)

// TestSweepObs exercises the sweep observability path end to end: a
// request with an enabled obs block completes, ships per-run series
// (and a parseable Chrome trace) in the job result aligned with the
// results array, and changes neither the simulation results nor the
// payload shape of plain sweeps.
func TestSweepObs(t *testing.T) {
	_, c, stop := newTestServer(t, "")
	defer stop()

	// Invalid spec is a client error, not a failed job.
	bad := service.SweepRequest{
		Sockets:   2,
		Workloads: []string{"Other-Stream-Triad"},
		Obs:       &arch.ObsSpec{Series: true, SamplePeriod: -1},
	}
	if _, err := c.SubmitSweep(bad); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("invalid obs spec: want 400, got %v", err)
	}

	observed, err := c.SubmitSweep(service.SweepRequest{
		Sockets:   2,
		Workloads: []string{"Other-Stream-Triad", "Rodinia-Hotspot"},
		Obs:       &arch.ObsSpec{Series: true, Trace: true, SamplePeriod: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, c, observed.ID)
	sweep, err := c.SweepResult(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 2 || len(sweep.Obs) != 2 {
		t.Fatalf("observed sweep payload: %d results, %d obs entries, want 2 and 2", len(sweep.Results), len(sweep.Obs))
	}
	for i, o := range sweep.Obs {
		if o == nil {
			t.Fatalf("obs[%d] missing", i)
		}
		if o.Workload != sweep.Results[i].Name {
			t.Fatalf("obs[%d] is for %q, results[%d] is %q: misaligned", i, o.Workload, i, sweep.Results[i].Name)
		}
		if len(o.Series.Series) == 0 {
			t.Fatalf("obs[%d] has no series", i)
		}
		var samples int
		for _, s := range o.Series.Series {
			samples += len(s.Samples)
		}
		if samples == 0 {
			t.Fatalf("obs[%d] series are all empty", i)
		}
		var trace struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(o.Trace, &trace); err != nil {
			t.Fatalf("obs[%d] trace does not parse: %v", i, err)
		}
		if len(trace.TraceEvents) == 0 {
			t.Fatalf("obs[%d] trace is empty", i)
		}
	}

	// The same sweep without obs: identical results, no "obs" key in the
	// payload (observation must not change what plain clients see).
	plain, err := c.SubmitSweep(service.SweepRequest{
		Sockets:   2,
		Workloads: []string{"Other-Stream-Triad", "Rodinia-Hotspot"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pst := waitDone(t, c, plain.ID)
	raw, err := c.Result(pst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"obs"`)) {
		t.Fatalf("plain sweep payload grew an obs key: %s", raw)
	}
	psweep, err := c.SweepResult(pst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(psweep.Results, sweep.Results) {
		t.Fatalf("observation changed sweep results:\n%+v\nvs\n%+v", sweep.Results, psweep.Results)
	}
}
