package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
)

// DiskCache is a content-addressed, disk-backed implementation of
// exp.Cache: one JSON file per simulation result, named by the SHA-256
// of the run key and sharded into 256 prefix directories. Entries
// survive process restarts, which is what lets a restarted numagpud
// serve a warm sweep without re-simulating.
//
// Writes are atomic (temp file + rename) and reads verify the stored
// key, so a hash collision or a torn/corrupted file degrades to a
// cache miss, never to a wrong result. All methods are safe for
// concurrent use; the cache is best-effort and swallows I/O errors
// (a failed Put simply means the next run simulates again).
type DiskCache struct {
	dir string

	// Footprint counters, seeded by one walk at open and maintained on
	// Put, so /metrics scrapes don't re-walk the tree. putMu also
	// serializes writers, keeping the exists-check + rename + counter
	// update atomic with respect to other Puts.
	putMu sync.Mutex
	stats DiskStats
}

// OpenDiskCache creates (if needed) and opens a cache rooted at dir,
// walking it once to count existing entries.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &DiskCache{dir: dir}
	c.stats = c.walk()
	return c, nil
}

// Dir reports the cache root.
func (c *DiskCache) Dir() string { return c.dir }

// diskEntry is the on-disk schema. Key is stored alongside the result
// so Get can reject hash collisions and humans can grep the cache.
type diskEntry struct {
	Key    string      `json:"key"`
	Result core.Result `json:"result"`
}

func (c *DiskCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, name[:2], name+".json")
}

// Get implements exp.Cache.
func (c *DiskCache) Get(key string) (core.Result, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return core.Result{}, false
	}
	var e diskEntry
	if json.Unmarshal(b, &e) != nil || e.Key != key {
		return core.Result{}, false
	}
	return e.Result, true
}

// Put implements exp.Cache.
func (c *DiskCache) Put(key string, res core.Result) {
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	b, err := json.Marshal(diskEntry{Key: key, Result: res})
	if err != nil {
		return
	}
	c.putMu.Lock()
	defer c.putMu.Unlock()
	var oldSize int64 = -1 // -1: no existing entry
	if info, err := os.Stat(path); err == nil {
		oldSize = info.Size()
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if oldSize < 0 {
		c.stats.Entries++
		c.stats.Bytes += int64(len(b))
	} else {
		c.stats.Bytes += int64(len(b)) - oldSize
	}
}

// DiskStats summarizes the cache's on-disk footprint.
type DiskStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Stats reports the maintained entry and byte counts (no directory
// walk; external deletions are not noticed until reopen).
func (c *DiskCache) Stats() DiskStats {
	c.putMu.Lock()
	defer c.putMu.Unlock()
	return c.stats
}

// walk counts entries and bytes on disk (open-time seeding). The
// default state directory (the coordinator journal, see journal.go)
// nests under the cache root and is not cache content, so it is
// skipped.
func (c *DiskCache) walk() DiskStats {
	var st DiskStats
	stateDir := filepath.Join(c.dir, "state")
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && d.IsDir() && path == stateDir {
			return fs.SkipDir
		}
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		if info, err := d.Info(); err == nil {
			st.Entries++
			st.Bytes += info.Size()
		}
		return nil
	})
	return st
}
