package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// APIError is the one error body every v1 endpoint speaks:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": N}}
//
// Code is a stable machine-readable string (clients switch on it; the
// HTTP status is advisory), Message is human-readable and free to
// change, and RetryAfterMs accompanies shed-load responses (429), where
// it mirrors the Retry-After header in milliseconds.
type APIError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// The stable error codes. Admission rejections reuse the
// admissionError reason strings ("quota", "queue_full") verbatim, so
// the body code matches the reason label on the
// numagpud_admission_rejected_total metric.
const (
	// codeInvalidArgument: the request body, path, or headers failed
	// validation (HTTP 400).
	codeInvalidArgument = "invalid_argument"
	// codeNotFound: no such experiment, job, or run (HTTP 404).
	codeNotFound = "not_found"
	// codeNotReady: the resource exists but is not in a state the
	// request can use — a /result poll on a job still queued or
	// running (HTTP 409).
	codeNotReady = "not_ready"
	// codeVersionSkew: client and coordinator derive different content
	// addresses for the same run — mixed simulator versions (HTTP 409).
	codeVersionSkew = "version_skew"
	// codeUnknownWorker: the fabric worker's registration is gone;
	// re-register (HTTP 410).
	codeUnknownWorker = "unknown_worker"
	// codeJobFailed: the job executed and failed; the message carries
	// the failure (HTTP 500).
	codeJobFailed = "job_failed"
	// codeDraining: the server is shutting down for good (HTTP 503).
	codeDraining = "draining"
)

// writeAPIError renders one error envelope.
func writeAPIError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, struct {
		Error APIError `json:"error"`
	}{APIError{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeAPIErrorRetry renders a shed-load envelope: the Retry-After
// header in whole seconds (rounded up to at least 1, per RFC 9110) and
// the same hint in the body at millisecond precision.
func writeAPIErrorRetry(w http.ResponseWriter, status int, code string, retryAfter time.Duration, format string, args ...any) {
	secs := int64(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1000 * secs
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, struct {
		Error APIError `json:"error"`
	}{APIError{Code: code, Message: fmt.Sprintf(format, args...), RetryAfterMs: ms}})
}
