package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
)

// Client is a minimal typed client for a numagpud server. The zero
// value is not usable; construct with NewClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: base, HTTPClient: http.DefaultClient}
}

// apiError is the decoded {"error": "..."} body of a non-2xx reply.
// RetryAfter carries the parsed Retry-After header (0 when absent) so
// shed clients can honor the server's backoff hint.
type apiError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *apiError) Error() string {
	return fmt.Sprintf("numagpud: HTTP %d: %s", e.Status, e.Message)
}

// do issues one JSON round trip. in (when non-nil) is marshaled as the
// request body; a 2xx response body is decoded into out (when non-nil).
func (c *Client) do(method, path string, in, out any) error {
	body, err := c.raw(method, path, in)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// raw issues the request and returns the verbatim 2xx response body.
func (c *Client) raw(method, path string, in any) ([]byte, error) {
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(body)
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		ae := &apiError{Status: resp.StatusCode, Message: msg}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, ae
	}
	return body, nil
}

// Experiments lists the experiments the server can run.
func (c *Client) Experiments() ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	err := c.do("GET", "/v1/experiments", nil, &out)
	return out, err
}

// SubmitExperiment enqueues one experiment by registry name and
// returns the queued job.
func (c *Client) SubmitExperiment(name string) (JobStatus, error) {
	var out JobStatus
	err := c.do("POST", "/v1/experiments/"+name, nil, &out)
	return out, err
}

// SubmitSweep enqueues a configuration sweep and returns the queued
// job.
func (c *Client) SubmitSweep(req SweepRequest) (JobStatus, error) {
	var out JobStatus
	err := c.do("POST", "/v1/sweeps", req, &out)
	return out, err
}

// Job fetches the current status of a job.
func (c *Client) Job(id string) (JobStatus, error) {
	var out JobStatus
	err := c.do("GET", "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Wait polls a job until it reaches a terminal state (done or failed),
// the poll interval elapsing between attempts. A failed job is
// returned alongside an error carrying its message.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Job(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case JobDone:
			return st, nil
		case JobFailed:
			return st, fmt.Errorf("numagpud: job %s failed: %s", id, st.Error)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Result returns the raw, deterministic result JSON of a finished job.
func (c *Client) Result(id string) ([]byte, error) {
	return c.raw("GET", "/v1/jobs/"+id+"/result", nil)
}

// ExperimentResult is the decoded result payload of an experiment job:
// the exact type the server marshals, so the two cannot drift.
type ExperimentResult = exp.NamedResult

// ExperimentResult decodes a finished experiment job's result.
func (c *Client) ExperimentResult(id string) (ExperimentResult, error) {
	var out ExperimentResult
	b, err := c.Result(id)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(b, &out)
	return out, err
}

// SweepResult is the decoded result payload of a sweep job: one
// core.Result per requested workload, in request order. Obs is present
// only when the request enabled observability; it is aligned
// index-for-index with Results.
type SweepResult struct {
	Results []core.Result `json:"results"`
	Obs     []*SweepObs   `json:"obs,omitempty"`
}

// SweepResult decodes a finished sweep job's result.
func (c *Client) SweepResult(id string) (SweepResult, error) {
	var out SweepResult
	b, err := c.Result(id)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(b, &out)
	return out, err
}

// CacheStats fetches the server's cache and run-count statistics.
func (c *Client) CacheStats() (CacheStatus, error) {
	var out CacheStatus
	err := c.do("GET", "/v1/cache", nil, &out)
	return out, err
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	b, err := c.raw("GET", "/metrics", nil)
	return string(b), err
}
