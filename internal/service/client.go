package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
)

// Client is a minimal typed client for a numagpud server. The zero
// value is not usable; construct with NewClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: base, HTTPClient: http.DefaultClient}
}

// Error is the typed form of a non-2xx numagpud reply, decoded from
// the {"error": {"code", "message", "retry_after_ms"}} envelope every
// endpoint speaks. Code is the stable machine-readable string clients
// should switch on (see errors.go); Status is the HTTP status;
// RetryAfter carries the server's backoff hint (from the body's
// retry_after_ms, falling back to the Retry-After header; 0 when
// absent). Every Client method returns a *Error for API failures:
//
//	var apiErr *service.Error
//	if errors.As(err, &apiErr) && apiErr.Code == "queue_full" { ... }
type Error struct {
	Status     int
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("numagpud: HTTP %d: %s", e.Status, e.Message)
}

// do issues one JSON round trip. in (when non-nil) is marshaled as the
// request body; a 2xx response body is decoded into out (when non-nil).
func (c *Client) do(method, path string, in, out any) error {
	body, err := c.raw(method, path, in)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// raw issues the request and returns the verbatim 2xx response body.
func (c *Client) raw(method, path string, in any) ([]byte, error) {
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, decodeError(resp.StatusCode, resp.Header, body)
	}
	return body, nil
}

// decodeError builds the typed *Error from a non-2xx reply. It decodes
// the structured envelope, falling back to the pre-envelope
// {"error": "..."} string shape (an older daemon) and finally to the
// raw body.
func decodeError(status int, hdr http.Header, body []byte) *Error {
	ae := &Error{Status: status, Message: string(body)}
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && len(env.Error) > 0 {
		var obj APIError
		var legacy string
		switch {
		case json.Unmarshal(env.Error, &obj) == nil && obj.Message != "":
			ae.Code = obj.Code
			ae.Message = obj.Message
			ae.RetryAfter = time.Duration(obj.RetryAfterMs) * time.Millisecond
		case json.Unmarshal(env.Error, &legacy) == nil && legacy != "":
			ae.Message = legacy
		}
	}
	if ae.RetryAfter == 0 {
		if ra := hdr.Get("Retry-After"); ra != "" {
			if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return ae
}

// Experiments lists the experiments the server can run.
func (c *Client) Experiments() ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	err := c.do("GET", "/v1/experiments", nil, &out)
	return out, err
}

// SubmitExperiment enqueues one experiment by registry name and
// returns the queued job.
func (c *Client) SubmitExperiment(name string) (JobStatus, error) {
	var out JobStatus
	err := c.do("POST", "/v1/experiments/"+name, nil, &out)
	return out, err
}

// SubmitSweep enqueues a configuration sweep and returns the queued
// job.
func (c *Client) SubmitSweep(req SweepRequest) (JobStatus, error) {
	var out JobStatus
	err := c.do("POST", "/v1/sweeps", req, &out)
	return out, err
}

// Job fetches the current status of a job.
func (c *Client) Job(id string) (JobStatus, error) {
	var out JobStatus
	err := c.do("GET", "/v1/jobs/"+id, nil, &out)
	return out, err
}

// JobsQuery selects one page of the jobs listing. The zero value asks
// for the first page at the server's default size.
type JobsQuery struct {
	// Limit caps the page size (server default when 0).
	Limit int
	// After is the cursor from the previous page's Next field.
	After string
}

// Jobs fetches one page of jobs in submission order. Iterate by
// passing each page's Next as the following query's After until Next
// comes back empty.
func (c *Client) Jobs(q JobsQuery) (JobsPage, error) {
	v := url.Values{}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.After != "" {
		v.Set("after", q.After)
	}
	path := "/v1/jobs"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var out JobsPage
	err := c.do("GET", path, nil, &out)
	return out, err
}

// StreamJob follows a job's typed event stream (SSE), invoking on for
// every event in log order until the job reaches a terminal state, the
// context ends, or the callback returns an error (which aborts the
// stream and is returned). Transport interruptions are resumed
// transparently with Last-Event-ID, so the callback sees every event
// exactly once — replayed run_done events carry the same
// content-addressed run references, never a re-simulation. API
// refusals (e.g. an unknown job) return a *Error without retrying.
func (c *Client) StreamJob(ctx context.Context, id string, on func(JobEvent) error) error {
	last := 0
	for {
		terminalSeen, err := c.streamEvents(ctx, id, &last, on)
		if terminalSeen || ctx.Err() != nil {
			return err
		}
		if err != nil {
			var ae *Error
			if errors.As(err, &ae) {
				return err
			}
			var cbErr *callbackError
			if errors.As(err, &cbErr) {
				return cbErr.err
			}
		} else {
			// Clean end of stream without a terminal event: the server
			// was draining. If the job is in fact finished, we are done;
			// otherwise fall through to reconnect.
			if st, serr := c.Job(id); serr == nil && (st.State == JobDone || st.State == JobFailed) {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// callbackError marks a StreamJob callback failure so the resume loop
// can tell it apart from a transport interruption.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }

// streamEvents runs one SSE connection, delivering events after *last
// and advancing it. It reports whether a terminal state event arrived.
func (c *Client) streamEvents(ctx context.Context, id string, last *int, on func(JobEvent) error) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *last > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*last))
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return false, decodeError(resp.StatusCode, resp.Header, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = []byte(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "" && len(data) > 0:
			var ev JobEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return false, err
			}
			data = nil
			if ev.ID <= *last {
				continue // duplicate after a racy resume
			}
			*last = ev.ID
			if err := on(ev); err != nil {
				return false, &callbackError{err}
			}
			if ev.Type == EventState && (ev.State == JobDone || ev.State == JobFailed) {
				return true, nil
			}
		}
	}
	return false, sc.Err()
}

// Wait polls a job until it reaches a terminal state (done or failed),
// the poll interval elapsing between attempts. A failed job is
// returned alongside an error carrying its message.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		st, err := c.Job(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case JobDone:
			return st, nil
		case JobFailed:
			return st, fmt.Errorf("numagpud: job %s failed: %s", id, st.Error)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Result returns the raw, deterministic result JSON of a finished job.
func (c *Client) Result(id string) ([]byte, error) {
	return c.raw("GET", "/v1/jobs/"+id+"/result", nil)
}

// ExperimentResult is the decoded result payload of an experiment job:
// the exact type the server marshals, so the two cannot drift.
type ExperimentResult = exp.NamedResult

// ExperimentResult decodes a finished experiment job's result.
func (c *Client) ExperimentResult(id string) (ExperimentResult, error) {
	var out ExperimentResult
	b, err := c.Result(id)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(b, &out)
	return out, err
}

// SweepResult is the decoded result payload of a sweep job: one
// core.Result per requested workload, in request order. Obs is present
// only when the request enabled observability; it is aligned
// index-for-index with Results.
type SweepResult struct {
	Results []core.Result `json:"results"`
	Obs     []*SweepObs   `json:"obs,omitempty"`
}

// SweepResult decodes a finished sweep job's result.
func (c *Client) SweepResult(id string) (SweepResult, error) {
	var out SweepResult
	b, err := c.Result(id)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(b, &out)
	return out, err
}

// CacheStats fetches the server's cache and run-count statistics.
func (c *Client) CacheStats() (CacheStatus, error) {
	var out CacheStatus
	err := c.do("GET", "/v1/cache", nil, &out)
	return out, err
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	b, err := c.raw("GET", "/metrics", nil)
	return string(b), err
}
