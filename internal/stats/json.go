package stats

import "encoding/json"

// tableJSON is the wire form of a Table: the same three pieces the text
// renderer uses, with rows as a matrix of already-formatted cells. It
// exists so Table can keep its rows unexported while still round-
// tripping through the numagpud HTTP API and the -json CLI output.
type tableJSON struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON encodes the table as {"title","columns","rows"}. The
// encoding is deterministic: same table, same bytes.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Title: t.Title, Columns: t.Columns, Rows: rows})
}

// UnmarshalJSON decodes the MarshalJSON form, replacing the table's
// contents.
func (t *Table) UnmarshalJSON(b []byte) error {
	var raw tableJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	t.Title, t.Columns, t.rows = raw.Title, raw.Columns, raw.Rows
	return nil
}

// Cell reports the formatted cell at (row, col), empty when out of
// range. It gives JSON consumers (and tests) positional access without
// exposing the row slice for mutation.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.Columns) {
		return ""
	}
	return t.rows[row][col]
}
