package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table renders experiment results as aligned text, the way the paper's
// tables and per-workload bar charts are reported by the harness.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; cells beyond the column count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with %v for strings and
// ints, and two decimals for floats.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, FormatFloat(v))
		case float32:
			row = append(row, FormatFloat(float64(v)))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// SortBy sorts rows by the named column, descending if desc, using
// numeric comparison when both cells parse as floats.
func (t *Table) SortBy(column string, desc bool) {
	idx := -1
	for i, c := range t.Columns {
		if c == column {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, b := t.rows[i][idx], t.rows[j][idx]
		fa, ea := parseFloat(a)
		fb, eb := parseFloat(b)
		var less bool
		if ea && eb {
			less = fa < fb
		} else {
			less = a < b
		}
		if desc {
			return !less
		}
		return less
	})
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", width[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 1)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func parseFloat(s string) (float64, bool) {
	var f float64
	_, err := fmt.Sscanf(strings.TrimSuffix(s, "x"), "%g", &f)
	return f, err == nil
}

// FormatFloat renders a float with two decimals, trimming noise.
func FormatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// GeoMean reports the geometric mean of vs, ignoring non-positive
// entries; 0 when nothing qualifies. The paper reports both arithmetic
// and geometric means for its per-workload speedups.
func GeoMean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean reports the arithmetic mean, 0 for empty input.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// CSV renders the table as RFC-4180-style CSV (header row + data rows),
// for plotting the figures outside the harness.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
