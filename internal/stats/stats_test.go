package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMeterBasics(t *testing.T) {
	var m Meter
	m.Add(100)
	m.Add(50)
	if m.Total() != 150 || m.WindowBytes() != 150 {
		t.Fatalf("total=%d window=%d, want 150/150", m.Total(), m.WindowBytes())
	}
	m.Reset(1000)
	if m.Total() != 150 {
		t.Fatal("reset must not clear the lifetime total")
	}
	if m.WindowBytes() != 0 {
		t.Fatal("reset must clear the window")
	}
}

func TestMeterUtilization(t *testing.T) {
	var m Meter
	m.Reset(0)
	m.Add(500)
	// 500 bytes over 100 cycles at 10 B/cycle = 50%.
	if u := m.Utilization(100, 10); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
	if u := m.Utilization(100, 0); u != 0 {
		t.Fatal("zero bandwidth must read 0 utilization")
	}
	if u := m.Utilization(0, 10); u != 0 {
		t.Fatal("zero elapsed must read 0 utilization")
	}
}

// TestPropertyMeterWindowSum: total always equals the sum of windows.
func TestPropertyMeterWindowSum(t *testing.T) {
	f := func(chunks []uint16) bool {
		var m Meter
		var sum uint64
		for i, c := range chunks {
			m.Add(uint64(c))
			sum += uint64(c)
			if i%3 == 0 {
				m.Reset(sim.Time(i))
			}
		}
		return m.Total() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Advance(9)
	if c.Value() != 10 {
		t.Fatalf("counter %d, want 10", c.Value())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty series must read 0")
	}
	s.Record(10, 1.0)
	s.Record(20, 3.0)
	if s.Mean() != 2.0 {
		t.Fatalf("mean %v, want 2", s.Mean())
	}
	if s.Max() != 3.0 {
		t.Fatalf("max %v, want 3", s.Max())
	}
}

func TestHitRate(t *testing.T) {
	var h HitRate
	if h.Rate() != 0 {
		t.Fatal("empty hit rate must be 0")
	}
	h.Hits.Advance(3)
	h.Misses.Advance(1)
	if h.Rate() != 0.75 {
		t.Fatalf("rate %v, want 0.75", h.Rate())
	}
	if h.Accesses() != 4 {
		t.Fatalf("accesses %d, want 4", h.Accesses())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "B")
	tb.AddRow("x", "1")
	tb.AddRowf("y", 2.5)
	out := tb.String()
	for _, want := range []string{"Title", "A", "B", "x", "y", "2.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("rows %d, want 2", tb.Rows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("only-one")
	out := tb.String()
	if !strings.Contains(out, "only-one") {
		t.Fatal("short row dropped")
	}
	tb.AddRow("a", "b", "c", "dropped")
	if strings.Contains(tb.String(), "dropped") {
		t.Fatal("extra cells must be dropped")
	}
}

func TestTableSortBy(t *testing.T) {
	tb := NewTable("", "Name", "Val")
	tb.AddRowf("row-a", 1.0)
	tb.AddRowf("row-b", 3.0)
	tb.AddRowf("row-c", 2.0)
	tb.SortBy("Val", true)
	out := tb.String()
	ib := strings.Index(out, "row-b")
	ic := strings.Index(out, "row-c")
	ia := strings.Index(out, "row-a")
	if !(ib < ic && ic < ia) {
		t.Fatalf("descending sort wrong:\n%s", out)
	}
	tb.SortBy("missing-column", true) // must not panic
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatal("empty geomean must be 0")
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatal("non-positive entries are ignored")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean %v, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatal("empty mean must be 0")
	}
}

// TestPropertyGeoMeanBounds: geomean of positive values lies between
// min and max.
func TestPropertyGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var vs []float64
		for _, r := range raw {
			vs = append(vs, float64(r%1000)+1)
		}
		if len(vs) == 0 {
			return true
		}
		g := GeoMean(vs)
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGeoMeanLeqMean: AM-GM inequality holds.
func TestPropertyGeoMeanLeqMean(t *testing.T) {
	f := func(raw []uint16) bool {
		var vs []float64
		for _, r := range raw {
			vs = append(vs, float64(r%1000)+1)
		}
		if len(vs) == 0 {
			return true
		}
		return GeoMean(vs) <= Mean(vs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatFloat(t *testing.T) {
	if FormatFloat(math.NaN()) != "n/a" {
		t.Fatal("NaN must render n/a")
	}
	if FormatFloat(math.Inf(1)) != "n/a" {
		t.Fatal("Inf must render n/a")
	}
	if FormatFloat(1.234) != "1.23" {
		t.Fatalf("got %q", FormatFloat(1.234))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored title", "Name", "Val")
	tb.AddRow("plain", "1.0")
	tb.AddRow("needs,quote", "say \"hi\"")
	csv := tb.CSV()
	want := "Name,Val\nplain,1.0\n\"needs,quote\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", csv, want)
	}
}
