// Package stats provides the measurement primitives the NUMA GPU model
// and its runtime policies rely on: windowed bandwidth meters (the link
// balancer and cache partitioner both sample saturation over fixed
// windows), plain counters, and time-series recorders for the
// utilization profiles shown in Figure 5 of the paper.
package stats

import "repro/internal/sim"

// Meter accumulates bytes transferred through a resource and exposes
// both lifetime totals and per-window readings. Windows are closed
// explicitly by the policy that samples the meter, so different policies
// can share one meter only if they share a sampling period; the model
// gives each consumer its own meter instead.
type Meter struct {
	total       uint64
	window      uint64
	windowStart sim.Time
}

// Add records n bytes.
func (m *Meter) Add(n uint64) {
	m.total += n
	m.window += n
}

// Total reports lifetime bytes.
func (m *Meter) Total() uint64 { return m.total }

// WindowBytes reports bytes recorded since the last Reset.
func (m *Meter) WindowBytes() uint64 { return m.window }

// Utilization reports window bytes as a fraction of what a resource
// with the given bandwidth (bytes/cycle) could move since the window
// opened at time now. A resource that never idled reads 1.0.
func (m *Meter) Utilization(now sim.Time, bandwidth float64) float64 {
	elapsed := now - m.windowStart
	if elapsed == 0 || bandwidth <= 0 {
		return 0
	}
	return float64(m.window) / (bandwidth * float64(elapsed))
}

// Reset closes the current window and opens a new one at time now.
func (m *Meter) Reset(now sim.Time) {
	m.window = 0
	m.windowStart = now
}

// Counter is a named event counter.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Advance adds n.
func (c *Counter) Advance(n uint64) { c.n += n }

// Value reports the count.
func (c *Counter) Value() uint64 { return c.n }

// Sample is one point of a recorded utilization time series.
type Sample struct {
	At    sim.Time
	Value float64
}

// Series records a time series of float samples, e.g. per-window link
// utilization for the Figure 5 profile.
type Series struct {
	Name    string
	Samples []Sample
}

// Record appends a sample.
func (s *Series) Record(at sim.Time, v float64) {
	s.Samples = append(s.Samples, Sample{At: at, Value: v})
}

// Mean reports the arithmetic mean of the recorded values, 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Samples {
		sum += p.Value
	}
	return sum / float64(len(s.Samples))
}

// Max reports the maximum recorded value, 0 if empty.
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Samples {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// HitRate is a convenience pair of counters for cache statistics.
type HitRate struct {
	Hits   Counter
	Misses Counter
}

// Rate reports hits/(hits+misses), 0 when no accesses happened.
func (h *HitRate) Rate() float64 {
	t := h.Hits.Value() + h.Misses.Value()
	if t == 0 {
		return 0
	}
	return float64(h.Hits.Value()) / float64(t)
}

// Accesses reports the total number of lookups.
func (h *HitRate) Accesses() uint64 { return h.Hits.Value() + h.Misses.Value() }
