// Cachepartition demonstrates the Section 5 mechanism on an RSBench-
// style workload: every warp performs random lookups into a shared
// cross-section table. With the memory-side L2 the table is re-fetched
// over the links forever; the NUMA-aware partitioner detects the
// saturated interconnect and converts L2 (and L1) ways into remote
// cache capacity until the table lives on-socket.
//
//	go run ./examples/cachepartition
package main

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/workload"
)

func run(mode arch.CacheMode) (core.Result, *core.System) {
	cfg := arch.ScaledConfig(8)
	cfg.CacheMode = mode
	spec, ok := workload.ByName("HPC-RSBench")
	if !ok {
		panic("workload missing")
	}
	sys := core.MustSystem(cfg)
	res := sys.Run(spec.Program(workload.Options{IterScale: 0.5}))
	return res, sys
}

func main() {
	fmt.Println("HPC-RSBench (random lookups into a shared 512KB table) on 4 sockets:")
	fmt.Println()

	modes := []arch.CacheMode{
		arch.CacheMemSideLocal,
		arch.CacheStaticPartition,
		arch.CacheSharedCoherent,
		arch.CacheNUMAAware,
	}
	var baseline core.Result
	for i, m := range modes {
		res, sys := run(m)
		if i == 0 {
			baseline = res
		}
		l2 := sys.Socket(0).L2()
		ways := "-"
		if l2.Partitioned() {
			ways = fmt.Sprintf("%d local / %d remote", l2.Ways(mem.ClassLocal), l2.Ways(mem.ClassRemote))
		}
		fmt.Printf("%-18s: %9d cycles  speedup %5.2fx  L2 remote hit %.2f  link %6.1f MB  ways: %s\n",
			m, res.Cycles, res.SpeedupOver(baseline), res.L2RemoteHitRate,
			float64(res.LinkBytes)/(1<<20), ways)
	}
	fmt.Println()
	fmt.Println("The NUMA-aware configuration ends with most ways assigned to")
	fmt.Println("remote data (Figure 7d's algorithm), trading local capacity it")
	fmt.Println("does not need for interconnect traffic it cannot afford.")
}
