// Quickstart: build a 4-socket NUMA-aware GPU, run one workload from
// the paper's suite on it, and compare against a single GPU.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// A 1/8-scale machine keeps the demo fast; ratios match Table 1.
	base := arch.ScaledConfig(8)

	// The paper's full proposal: locality runtime + dynamic asymmetric
	// links + NUMA-aware L1/L2 partitioning.
	numa := base
	numa.Sockets = 4
	numa.Sched = arch.SchedBlock
	numa.Placement = arch.PlaceFirstTouch
	numa.CacheMode = arch.CacheNUMAAware
	numa.LinkMode = arch.LinkDynamic

	single := base
	single.Sockets = 1

	opts := workload.Options{IterScale: 0.5}
	for _, name := range []string{"Rodinia-Hotspot", "HPC-CoMD"} {
		spec, ok := workload.ByName(name)
		if !ok {
			panic("workload missing")
		}
		fmt.Printf("workload: %s (paper: %d CTAs, %d MB footprint)\n",
			spec.Name, spec.PaperCTAs, spec.PaperFootprintMB)

		r1 := core.MustSystem(single).Run(spec.Program(opts))
		fmt.Printf("  single GPU   : %10d cycles  L1 hit %.2f\n", r1.Cycles, r1.L1HitRate)

		r4 := core.MustSystem(numa).Run(spec.Program(opts))
		fmt.Printf("  4-socket NUMA: %10d cycles  L1 hit %.2f  remote %.1f%%  link %.1f MB  lane turns %d  way shifts %d\n",
			r4.Cycles, r4.L1HitRate, 100*r4.RemoteAccessFraction,
			float64(r4.LinkBytes)/(1<<20), r4.LaneTurns, r4.WayShifts)
		fmt.Printf("  speedup over single GPU: %.2fx; interconnect power (paper-scale est.): %.1f W\n\n",
			r4.SpeedupOver(r1), r4.InterconnectPower()*8)
	}
	fmt.Println("A local stencil scales near-linearly; a gather-heavy MD code is")
	fmt.Println("NUMA-limited — exactly the spread Figures 3 and 10 report.")
}
