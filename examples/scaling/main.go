// Scaling sweeps a few representative workloads across 2-, 4- and
// 8-socket NUMA-aware GPUs and prints speedup over a single GPU next
// to the hypothetical monolithic GPU of the same size — a miniature
// Figure 11.
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

func speedup(cfg arch.Config, spec workload.Spec, base core.Result, opts workload.Options) float64 {
	res := core.MustSystem(cfg).Run(spec.Program(opts))
	return res.SpeedupOver(base)
}

func main() {
	names := []string{
		"Other-Stream-Triad",   // bandwidth-bound, embarrassingly local
		"Rodinia-Hotspot",      // stencil
		"HPC-CoMD",             // mixed with gather phases
		"HPC-RSBench",          // shared-table, interconnect-crushed
		"Other-Bitcoin-Crypto", // 60 CTAs: cannot fill big GPUs
	}
	opts := workload.Options{IterScale: 0.35}
	scale := arch.ScaledConfig(8)

	fmt.Printf("%-22s %8s %8s %8s   %8s %8s %8s\n", "workload",
		"2-sock", "4-sock", "8-sock", "2x GPU", "4x GPU", "8x GPU")
	for _, name := range names {
		spec, ok := workload.ByName(name)
		if !ok {
			panic("workload missing: " + name)
		}
		single := scale
		single.Sockets = 1
		base := core.MustSystem(single).Run(spec.Program(opts))

		row := []float64{}
		for _, n := range []int{2, 4, 8} {
			cfg := scale.WithSockets(n)
			cfg.CacheMode = arch.CacheNUMAAware
			cfg.LinkMode = arch.LinkDynamic
			row = append(row, speedup(cfg, spec, base, opts))
		}
		for _, n := range []int{2, 4, 8} {
			row = append(row, speedup(single.Monolithic(n), spec, base, opts))
		}
		fmt.Printf("%-22s %8.2f %8.2f %8.2f   %8.2f %8.2f %8.2f\n",
			name, row[0], row[1], row[2], row[3], row[4], row[5])
	}
	fmt.Println("\nLocal workloads track the unbuildable monolithic GPU almost 1:1;")
	fmt.Println("small grids (Bitcoin, 60 CTAs) plateau on both machines; irregular")
	fmt.Println("remote-bound codes remain NUMA-limited at this short run length -")
	fmt.Println("run ./cmd/numagpu fig11 for the converged full-scale sweep.")
}
