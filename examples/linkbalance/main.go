// Linkbalance demonstrates the Section 4 mechanism on a gather-style
// workload: CTAs on sockets 1–3 write their results into buffers homed
// on socket 0, saturating their egress lanes while ingress sits idle.
// The dynamic balancer re-points lanes and the kernel speeds up; the
// per-GPU utilization profile (Figure 5 style) is printed for both
// configurations.
//
//	go run ./examples/linkbalance
package main

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xlink"
)

func run(mode arch.LinkMode) (core.Result, []core.LinkProfile) {
	cfg := arch.ScaledConfig(8)
	cfg.LinkMode = mode

	spec, ok := workload.ByName("ML-AlexNet-cudnn-Lev2") // gather-heavy
	if !ok {
		panic("workload missing")
	}
	sys := core.MustSystem(cfg)
	sys.EnableLinkProfile(5000)
	res := sys.Run(spec.Program(workload.Options{IterScale: 0.5}))
	prof, _ := sys.LinkProfiles()
	return res, prof
}

func bar(v float64) string {
	n := int(v * 20)
	if n > 20 {
		n = 20
	}
	return strings.Repeat("#", n) + strings.Repeat(".", 20-n)
}

func main() {
	static, sprof := run(arch.LinkStatic)
	dynamic, dprof := run(arch.LinkDynamic)

	fmt.Println("GPU0 ingress vs GPU1 egress utilization over time (static links):")
	fmt.Println("   window    GPU0-in               GPU1-out")
	for i := 0; i < len(sprof[0].Ingress.Samples) && i < 12; i++ {
		fmt.Printf("   %7d    %s  %s\n", sprof[0].Ingress.Samples[i].At,
			bar(sprof[0].Ingress.Samples[i].Value), bar(sprof[1].Egress.Samples[i].Value))
	}

	fmt.Printf("\nstatic links : %10d cycles (GPU1 egress mean %.2f, ingress mean %.2f)\n",
		static.Cycles, sprof[1].Egress.Mean(), sprof[1].Ingress.Mean())
	fmt.Printf("dynamic links: %10d cycles (GPU1 egress mean %.2f, ingress mean %.2f), %d lane turns\n",
		dynamic.Cycles, dprof[1].Egress.Mean(), dprof[1].Ingress.Mean(), dynamic.LaneTurns)
	fmt.Printf("\nspeedup from dynamic lane assignment: %.2fx\n", dynamic.SpeedupOver(static))
	_ = xlink.Egress
}
